// Package killsafe is the public API of a Go reproduction of "Kill-Safe
// Synchronization Abstractions" (Flatt & Findler, PLDI 2004).
//
// It provides a task runtime in the style of MzScheme's: threads that can
// be suspended, resumed, and killed from outside; custodians that control
// the right of threads and resources to exist; the two-argument
// thread-resume primitive (ResumeVia) that lets shared abstractions'
// manager threads survive exactly as long as their users; and the
// Concurrent ML event combinators with the paper's strengthened
// negative-acknowledgment semantics.
//
// This package is a thin, generically-typed facade over internal/core; the
// kill-safe abstractions built from these primitives — queues, selective
// message queues, swap channels, bounded buffers, ivars, multicast
// channels, RPC services, byte streams — live under abstractions/.
//
//	rt := killsafe.NewRuntime()
//	defer rt.Shutdown()
//	_ = rt.Run(func(th *killsafe.Thread) {
//		q := queue.New[string](th)
//		_ = q.Send(th, "hello")
//		v, _ := q.Recv(th)
//		fmt.Println(v)
//	})
package killsafe

import (
	"time"

	"repro/internal/core"
)

// Core type aliases: the facade and internal/core share identities so the
// abstraction packages interoperate with both.
type (
	// Runtime is an instance of the task runtime.
	Runtime = core.Runtime
	// Thread is a suspendable, resumable, killable unit of execution.
	Thread = core.Thread
	// Custodian is a hierarchical resource controller.
	Custodian = core.Custodian
	// Unit is the value of events that carry no information.
	Unit = core.Unit
	// RawEvent is the untyped event representation used by internal/core
	// and the abstraction packages.
	RawEvent = core.Event
	// Semaphore is a counting semaphore integrated with the event system.
	Semaphore = core.Semaphore
	// External is a one-shot completion cell bridging blocking OS calls
	// into the event system: construct with NewExternal, then Start a
	// helper (or StartEvt for a lazily started one) or Complete it by
	// hand; observe via Evt.
	External = core.External
)

// Errors re-exported from the core runtime.
var (
	ErrBreak         = core.ErrBreak
	ErrCustodianDead = core.ErrCustodianDead
	ErrRuntimeDown   = core.ErrRuntimeDown
)

// NewRuntime creates a fresh runtime with a root custodian.
func NewRuntime() *Runtime { return core.NewRuntime() }

// NewCustodian creates a sub-custodian of parent.
func NewCustodian(parent *Custodian) *Custodian { return core.NewCustodian(parent) }

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(rt *Runtime, count int) *Semaphore { return core.NewSemaphore(rt, count) }

// NewExternal creates an uncompleted external-completion cell.
func NewExternal(rt *Runtime) *External { return core.NewExternal(rt) }

// Resume resumes an explicitly suspended thread that still has a live
// custodian.
func Resume(t *Thread) { core.Resume(t) }

// ResumeWith adds custodian c to t's controllers and resumes it.
func ResumeWith(t *Thread, c *Custodian) { core.ResumeWith(t, c) }

// ResumeVia is the paper's key primitive: it makes t survive at least as
// long as by — resuming t, adding by's custodians to t, and chaining
// future resumes and custodian grants from by to t. Guarding each
// operation of a shared abstraction with ResumeVia(manager, currentThread)
// is what makes the abstraction kill-safe.
func ResumeVia(t, by *Thread) { core.ResumeVia(t, by) }

// Sleep blocks th for d, honoring suspension, kill, and break signals.
func Sleep(th *Thread, d time.Duration) error { return core.Sleep(th, d) }
