// Package integration exercises cross-module scenarios: the paper's
// abstractions composed with each other and with the web substrate, under
// aggressive termination. Unit tests prove each module's contract; these
// tests prove the contracts compose.
package integration_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	killsafe "repro"
	"repro/abstractions/barrier"
	"repro/abstractions/buffer"
	"repro/abstractions/ivar"
	"repro/abstractions/msgqueue"
	"repro/abstractions/pool"
	"repro/abstractions/queue"
	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/web"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestPipelineOfAbstractions chains queue → buffer → msgqueue across three
// relay tasks, kills the middle relay's task mid-flow, replaces it, and
// verifies no committed item is lost or duplicated.
func TestPipelineOfAbstractions(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[int](th)
		buf := buffer.New[int](th, 4)
		mq := msgqueue.New[int](th)

		spawnRelayAB := func(c *core.Custodian) {
			th.WithCustodian(c, func() {
				th.Spawn("relay-ab", func(x *core.Thread) {
					for {
						v, err := q.Recv(x)
						if err != nil {
							return
						}
						if err := buf.Send(x, v); err != nil {
							return
						}
					}
				})
			})
		}
		th.Spawn("relay-bc", func(x *core.Thread) {
			for {
				v, err := buf.Recv(x)
				if err != nil {
					return
				}
				if err := mq.Send(x, v); err != nil {
					return
				}
			}
		})

		relayCust := core.NewCustodian(rt.RootCustodian())
		spawnRelayAB(relayCust)

		const n = 200
		th.Spawn("producer", func(x *core.Thread) {
			for i := 0; i < n; i++ {
				if err := q.Send(x, i); err != nil {
					return
				}
			}
		})

		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			if i == 50 {
				// Axe the first relay mid-flow and replace it. A value
				// the relay had received from q but not yet pushed into
				// buf is in the relay's hands when it dies — that loss
				// is inherent to killing a courier (the paper's model
				// kills tasks, not transactions); what must NOT happen
				// is duplication, reordering within survivors, or a
				// wedged pipeline.
				relayCust.Shutdown()
				rt.TerminateCondemned()
				spawnRelayAB(core.NewCustodian(rt.RootCustodian()))
			}
			v, err := core.Sync(th, core.Choice(
				mq.RecvEvt(msgqueue.Any[int]),
				core.Wrap(core.After(rt, 2*time.Second), func(core.Value) core.Value { return nil }),
			))
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if v == nil {
				// Timeout: allow exactly the couriered losses (≤ 1 per
				// kill) and stop.
				if i < n-3 {
					t.Fatalf("pipeline wedged after %d items", i)
				}
				break
			}
			if seen[v.(int)] {
				t.Fatalf("duplicate item %d", v)
			}
			seen[v.(int)] = true
		}
	})
}

// TestServletsShareManyAbstractions: two servlet sessions share a queue, a
// swap channel, and a document; the administrator kills one session; every
// abstraction keeps serving the survivor.
func TestServletsShareManyAbstractions(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/setup", func(x *core.Thread, s *web.Session, _ *web.Request) web.Response {
			srv.Publish("q", queue.New[string](x))
			srv.Publish("sw", swapchan.NewKillSafe[string](x))
			srv.Publish("doc", doc.New(x))
			return web.Response{Status: 200, Body: "ok"}
		})
		srv.Handle("/use", func(x *core.Thread, s *web.Session, req *web.Request) web.Response {
			qv, _ := srv.Lookup("q")
			dv, _ := srv.Lookup("doc")
			q := qv.(*queue.Queue[string])
			d := dv.(*doc.Document)
			tag := fmt.Sprintf("s%d:%s", s.ID, req.Query["m"])
			if err := q.Send(x, tag); err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			got, err := q.Recv(x)
			if err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			if _, err := d.Append(x, got); err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			_, lines, err := d.Snapshot(x)
			if err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			return web.Response{Status: 200, Body: strings.Join(lines, ",")}
		})

		b1, s1 := srv.Connect(th)
		b2, _ := srv.Connect(th)
		if st, _, err := b1.Get(th, "/setup"); err != nil || st != 200 {
			t.Fatalf("setup: %d %v", st, err)
		}
		if st, body, err := b1.Get(th, "/use?m=a"); err != nil || st != 200 || body != "s1:a" {
			t.Fatalf("b1 use: %d %q %v", st, body, err)
		}
		srv.Terminate(s1.ID) // kill the session that created everything
		if st, body, err := b2.Get(th, "/use?m=b"); err != nil || st != 200 || body != "s1:a,s2:b" {
			t.Fatalf("b2 after kill: %d %q %v", st, body, err)
		}
	})
}

// TestBarrierSynchronizesQueueConsumers: barrier + queue + pool composed;
// parties that die between cycles are replaced without wedging anything.
func TestBarrierSynchronizesQueueConsumers(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		const parties = 3
		bar := barrier.New(th, parties)
		work := queue.New[int](th)
		results := queue.New[[2]int](th)
		mu := pool.NewMutex(th)

		spawnWorker := func(c *core.Custodian) {
			th.WithCustodian(c, func() {
				th.Spawn("worker", func(x *core.Thread) {
					for {
						gen, err := bar.Wait(x)
						if err != nil {
							return
						}
						v, err := work.Recv(x)
						if err != nil {
							return
						}
						if err := mu.With(x, func() error {
							return results.Send(x, [2]int{gen, v})
						}); err != nil {
							return
						}
					}
				})
			})
		}
		custs := make([]*core.Custodian, parties-1)
		for i := range custs {
			custs[i] = core.NewCustodian(rt.RootCustodian())
			spawnWorker(custs[i])
		}

		for cycle := 0; cycle < 5; cycle++ {
			if cycle == 2 {
				custs[0].Shutdown() // kill one worker between cycles
				rt.TerminateCondemned()
				spawnWorker(core.NewCustodian(rt.RootCustodian()))
			}
			for i := 0; i < parties-1; i++ {
				if err := work.Send(th, cycle*10+i); err != nil {
					t.Fatal(err)
				}
			}
			gen, err := bar.Wait(th) // main is the final party each cycle
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			_ = gen
			for i := 0; i < parties-1; i++ {
				v, err := results.Recv(th)
				if err != nil {
					t.Fatalf("cycle %d results: %v", cycle, err)
				}
				if v[1]/10 != cycle {
					t.Fatalf("cycle %d got stale item %v", cycle, v)
				}
			}
		}
	})
}

// TestIVarFanInAcrossKills: N producers race to fill an ivar; all but the
// winner are killed; every surviving reader sees the winner's value.
func TestIVarFanInAcrossKills(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		var threads []*core.Thread
		for i := 0; i < 5; i++ {
			i := i
			threads = append(threads, th.Spawn("producer", func(x *core.Thread) {
				_ = core.Sleep(x, time.Duration(i)*time.Millisecond)
				_ = iv.Put(x, i)
			}))
		}
		v, err := iv.Get(th)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range threads {
			p.Kill()
		}
		// Readers after the massacre still see the committed value.
		for i := 0; i < 3; i++ {
			got, err := iv.Get(th)
			if err != nil || got != v {
				t.Fatalf("(%v, %v), want %v", got, err, v)
			}
		}
	})
}

// TestFacadeTypedEventsAcrossAbstractions mixes typed facade events with
// abstraction events in one choice.
func TestFacadeTypedEventsAcrossAbstractions(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		q := queue.New[string](th)
		sw := swapchan.NewKillSafe[string](th)
		th.Spawn("swapper", func(x *killsafe.Thread) { _, _ = sw.Swap(x, "swapped") })
		ev := killsafe.Choice(
			killsafe.FromRaw[string](q.RecvEvt()),
			killsafe.FromRaw[string](sw.SwapEvt("mine")),
			killsafe.Wrap(killsafe.After(rt, 5*time.Second), func(killsafe.Unit) string { return "timeout" }),
		)
		v, err := killsafe.Sync(th, ev)
		if err != nil || v != "swapped" {
			t.Errorf("(%q, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWholeSystemShutdownLeavesNothingRunning is the global no-conspiracy
// check across every abstraction at once.
func TestWholeSystemShutdownLeavesNothingRunning(t *testing.T) {
	rt := core.NewRuntime()
	inner := core.NewCustodian(rt.RootCustodian())
	err := rt.Run(func(th *core.Thread) {
		th.WithCustodian(inner, func() {
			th.Spawn("world", func(x *core.Thread) {
				q := queue.New[int](x)
				_ = buffer.New[int](x, 2)
				_ = msgqueue.New[int](x)
				_ = swapchan.NewKillSafe[int](x)
				_ = ivar.New[int](x)
				_ = pool.New(x, 3)
				_ = barrier.New(x, 2)
				_ = doc.New(x)
				_ = q.Send(x, 1)
				_ = core.Sleep(x, time.Hour)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.LiveThreads() < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	inner.Shutdown()
	reaped := rt.TerminateCondemned()
	if reaped < 9 {
		t.Fatalf("reaped %d threads, want at least 9 (world + 8 managers)", reaped)
	}
	deadline = time.Now().Add(5 * time.Second)
	for rt.LiveThreads() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := rt.LiveThreads(); n != 0 {
		t.Fatalf("%d threads still live after whole-system shutdown", n)
	}
	rt.Shutdown()
}
