// Package ivar implements a kill-safe write-once synchronizing cell
// (Concurrent ML's I-variable, Reppy ch. 5). A Put succeeds exactly once;
// GetEvt is ready once the cell is full and yields the value to any number
// of readers, any number of times. The cell is managed by a thread so it
// stays usable across the termination of any subset of its users, and both
// operations use the nack-guard request idiom of the paper's Figure 9 so
// abandoned requests never accumulate in the manager.
package ivar

import (
	"errors"

	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// ErrFull is returned by Put when the cell already holds a value.
var ErrFull = errors.New("ivar: already full")

// IVar is a write-once cell of T.
type IVar[T any] struct {
	rt    *core.Runtime
	putCh *core.Chan // carries *putReq
	getCh *core.Chan // carries *getReq
	mgr   *core.Thread
}

type putReq struct {
	v      core.Value
	reply  *core.Chan // receives nil or ErrFull
	gaveUp core.Event
}

type getReq struct {
	reply     *core.Chan // receives the value once available
	gaveUp    core.Event
	immediate bool // reply notReady instead of queueing when empty
}

// New creates an empty IVar managed by a thread under the creating
// thread's current custodian.
func New[T any](th *core.Thread) *IVar[T] {
	rt := th.Runtime()
	iv := &IVar[T]{
		rt:    rt,
		putCh: core.NewChanNamed(rt, "ivar-put"),
		getCh: core.NewChanNamed(rt, "ivar-get"),
	}
	iv.mgr = th.Spawn("ivar-manager", iv.serve)
	return iv
}

// Manager exposes the manager thread for tests and diagnostics.
func (iv *IVar[T]) Manager() *core.Thread { return iv.mgr }

func (iv *IVar[T]) serve(mgr *core.Thread) {
	var (
		full    bool
		value   core.Value
		readers []*getReq
	)
	removeReader := func(gr *getReq) {
		for i, x := range readers {
			if x == gr {
				readers = append(readers[:i], readers[i+1:]...)
				return
			}
		}
	}
	for {
		evts := []core.Event{
			core.Wrap(iv.putCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					pr := v.(*putReq)
					var res core.Value
					if full {
						res = ErrFull
					} else {
						full, value = true, pr.v
					}
					replyEventually(mgr, pr.reply, res, pr.gaveUp)
				}
			}),
			core.Wrap(iv.getCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					gr := v.(*getReq)
					switch {
					case full:
						replyEventually(mgr, gr.reply, value, gr.gaveUp)
					case gr.immediate:
						replyEventually(mgr, gr.reply, notReady{}, gr.gaveUp)
					default:
						readers = append(readers, gr)
					}
				}
			}),
		}
		if full && len(readers) > 0 {
			// Wake queued readers one per iteration so the loop stays
			// responsive to new puts and gets.
			gr := readers[0]
			evts = append(evts, core.Wrap(core.Always(nil), func(core.Value) core.Value {
				return func() {
					readers = readers[1:]
					replyEventually(mgr, gr.reply, value, gr.gaveUp)
				}
			}))
		}
		// Prune queued readers whose sync gave up (lost choice, escape,
		// or termination), so they do not accumulate while the cell is
		// empty.
		for _, gr := range readers {
			gr := gr
			evts = append(evts, core.Wrap(gr.gaveUp, func(core.Value) core.Value {
				return func() { removeReader(gr) }
			}))
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// replyEventually answers a request in a fresh thread so an absent
// requester cannot block the manager; the delivery gives up when the
// requester's gave-up event fires.
func replyEventually(mgr *core.Thread, ch *core.Chan, v core.Value, gaveUp core.Event) {
	core.SpawnYoked(mgr, "ivar-reply", func(d *core.Thread) {
		_, _ = core.Sync(d, core.Choice(ch.SendEvt(v), gaveUp))
	})
}

// PutEvt returns an event that attempts to fill the cell with v; its value
// is nil on success or ErrFull.
func (iv *IVar[T]) PutEvt(v T) core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(iv.mgr, th)
		reply := core.NewChanNamed(iv.rt, "ivar-put-reply")
		return guard.RequestReply(th, iv.putCh, &putReq{v: v, reply: reply, gaveUp: gaveUp}, reply)
	})
}

// GetEvt returns an event that is ready once the cell is full; its value
// is the cell's value.
func (iv *IVar[T]) GetEvt() core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(iv.mgr, th)
		reply := core.NewChanNamed(iv.rt, "ivar-get-reply")
		return guard.RequestReply(th, iv.getCh, &getReq{reply: reply, gaveUp: gaveUp}, reply)
	})
}

// Put fills the cell, failing with ErrFull if it already holds a value.
func (iv *IVar[T]) Put(th *core.Thread, v T) error {
	res, err := core.Sync(th, iv.PutEvt(v))
	if err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	return res.(error)
}

// Get blocks until the cell is full and returns its value.
func (iv *IVar[T]) Get(th *core.Thread) (T, error) {
	v, err := core.Sync(th, iv.GetEvt())
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// TryGet returns the value and true if the cell is already full, without
// blocking for a Put: the manager answers an immediate request with a
// not-ready marker when the cell is empty.
func (iv *IVar[T]) TryGet(th *core.Thread) (T, bool, error) {
	var zero T
	ev := core.NackGuard(func(g *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(iv.mgr, g)
		reply := core.NewChanNamed(iv.rt, "ivar-tryget-reply")
		return guard.RequestReply(g, iv.getCh, &getReq{reply: reply, gaveUp: gaveUp, immediate: true}, reply)
	})
	v, err := core.Sync(th, ev)
	if err != nil {
		return zero, false, err
	}
	if _, miss := v.(notReady); miss {
		return zero, false, nil
	}
	return v.(T), true, nil
}

type notReady struct{}
