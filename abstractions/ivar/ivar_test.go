package ivar_test

import (
	"testing"
	"time"

	"repro/abstractions/ivar"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPutThenGet(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[string](th)
		if err := iv.Put(th, "value"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ { // reads are idempotent
			v, err := iv.Get(th)
			if err != nil || v != "value" {
				t.Fatalf("get %d: (%v, %v)", i, v, err)
			}
		}
	})
}

func TestSecondPutFails(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		if err := iv.Put(th, 1); err != nil {
			t.Fatal(err)
		}
		if err := iv.Put(th, 2); err != ivar.ErrFull {
			t.Fatalf("second put: %v, want ErrFull", err)
		}
		if v, _ := iv.Get(th); v != 1 {
			t.Fatalf("value overwritten: %v", v)
		}
	})
}

func TestGetBlocksUntilPut(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		got := make(chan int, 3)
		for i := 0; i < 3; i++ {
			th.Spawn("getter", func(x *core.Thread) {
				if v, err := iv.Get(x); err == nil {
					got <- v
				}
			})
		}
		select {
		case <-got:
			t.Fatal("get completed before put")
		case <-time.After(20 * time.Millisecond):
		}
		if err := iv.Put(th, 9); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			select {
			case v := <-got:
				if v != 9 {
					t.Fatalf("got %d", v)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("getter %d never woke", i)
			}
		}
	})
}

func TestTryGet(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		if _, ok, err := iv.TryGet(th); err != nil || ok {
			t.Fatalf("tryget on empty: ok=%v err=%v", ok, err)
		}
		if err := iv.Put(th, 5); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := iv.TryGet(th); err != nil || !ok || v != 5 {
			t.Fatalf("tryget on full: (%v, %v, %v)", v, ok, err)
		}
	})
}

func TestAbandonedGetterDoesNotLeak(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		// Lose a get in a choice many times; then a real put/get works
		// and the abandoned readers are gone (delivery would otherwise
		// spawn reply threads that block forever).
		for i := 0; i < 10; i++ {
			v, err := core.Sync(th, core.Choice(
				iv.GetEvt(),
				core.Wrap(core.After(rt, time.Millisecond), func(core.Value) core.Value { return "timeout" }),
			))
			if err != nil || v != "timeout" {
				t.Fatalf("iteration %d: (%v, %v)", i, v, err)
			}
		}
		if err := iv.Put(th, 1); err != nil {
			t.Fatal(err)
		}
		if v, err := iv.Get(th); err != nil || v != 1 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		share := make(chan *ivar.IVar[int], 1)
		th.WithCustodian(c, func() {
			th.Spawn("creator", func(x *core.Thread) {
				iv := ivar.New[int](x)
				_ = iv.Put(x, 11)
				share <- iv
				_ = core.Sleep(x, time.Hour)
			})
		})
		iv := <-share
		c.Shutdown()
		if v, err := iv.Get(th); err != nil || v != 11 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestKilledGetterDoesNotStrandOthers(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		iv := ivar.New[int](th)
		doomed := th.Spawn("doomed", func(x *core.Thread) {
			_, _ = iv.Get(x)
		})
		time.Sleep(5 * time.Millisecond)
		doomed.Kill()
		if err := iv.Put(th, 3); err != nil {
			t.Fatal(err)
		}
		if v, err := iv.Get(th); err != nil || v != 3 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}
