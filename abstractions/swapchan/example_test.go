package swapchan_test

import (
	"fmt"

	"repro/abstractions/swapchan"
	"repro/internal/core"
)

// A swap channel exchanges values between two synchronizing tasks.
func ExampleSwap() {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *core.Thread) {
		sc := swapchan.NewKillSafe[string](th)
		got := make(chan string, 1)
		th.Spawn("partner", func(x *core.Thread) {
			v, _ := sc.Swap(x, "from partner")
			got <- v
		})
		mine, _ := sc.Swap(th, "from main")
		fmt.Println("main received:", mine)
		fmt.Println("partner received:", <-got)
	})
	// Output:
	// main received: from partner
	// partner received: from main
}
