package swapchan_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/abstractions/swapchan"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func testBasicSwap(t *testing.T, mk func(*core.Thread) *swapchan.Swap[string]) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sc := mk(th)
		got := make(chan string, 1)
		th.Spawn("partner", func(x *core.Thread) {
			v, err := sc.Swap(x, "from-partner")
			if err != nil {
				t.Errorf("partner swap: %v", err)
				return
			}
			got <- v
		})
		v, err := sc.Swap(th, "from-main")
		if err != nil || v != "from-partner" {
			t.Fatalf("main got (%v, %v)", v, err)
		}
		select {
		case pv := <-got:
			if pv != "from-main" {
				t.Fatalf("partner got %q", pv)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("partner never completed")
		}
	})
}

func TestDirectSwap(t *testing.T)   { testBasicSwap(t, swapchan.New[string]) }
func TestKillSafeSwap(t *testing.T) { testBasicSwap(t, swapchan.NewKillSafe[string]) }

func testManySwaps(t *testing.T, mk func(*core.Thread) *swapchan.Swap[int]) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sc := mk(th)
		const pairs = 20
		sum := make(chan int, 2*pairs)
		for i := 0; i < 2*pairs; i++ {
			i := i
			th.Spawn("swapper", func(x *core.Thread) {
				v, err := sc.Swap(x, i)
				if err != nil {
					t.Errorf("swap: %v", err)
					return
				}
				sum <- v
			})
		}
		seen := make(map[int]bool)
		for i := 0; i < 2*pairs; i++ {
			select {
			case v := <-sum:
				if seen[v] {
					t.Fatalf("value %d delivered twice", v)
				}
				seen[v] = true
			case <-time.After(10 * time.Second):
				t.Fatalf("stalled after %d swaps", i)
			}
		}
	})
}

func TestDirectManySwaps(t *testing.T)   { testManySwaps(t, swapchan.New[int]) }
func TestKillSafeManySwaps(t *testing.T) { testManySwaps(t, swapchan.NewKillSafe[int]) }

// TestDirectSwapBreakSafe: a break delivered during the committed second
// phase must not prevent either side from getting its value (the wrap
// disables breaks).
func TestDirectSwapBreakSafe(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		for i := 0; i < 50; i++ {
			sc := swapchan.New[int](th)
			res := make(chan int, 1)
			p := th.Spawn("partner", func(x *core.Thread) {
				v, err := sc.Swap(x, 1)
				if err != nil {
					res <- -1
					return
				}
				res <- v
			})
			// Race a break against the swap, at varying offsets so both
			// outcomes (fully broken, fully swapped) occur.
			delay := time.Duration(i%5) * 100 * time.Microsecond
			go func() {
				time.Sleep(delay)
				p.Break()
			}()
			// The break may exclude the swap entirely (partner aborts
			// pre-commit), leaving nobody to swap with: bound the wait.
			v, err := core.Sync(th, core.Choice(
				sc.SwapEvt(2),
				core.Wrap(core.After(rt, 100*time.Millisecond),
					func(core.Value) core.Value { return nil }),
			))
			if err != nil {
				t.Fatalf("main swap err: %v", err)
			}
			pv := <-res
			mainGot := v != nil
			partnerGot := pv != -1
			if mainGot != partnerGot {
				t.Fatalf("half-completed swap: main=%v partner=%d", v, pv)
			}
			if mainGot && (v != 1 || pv != 2) {
				t.Fatalf("values crossed wrong: main=%v partner=%d", v, pv)
			}
		}
	})
}

// TestKillSafeSwapSurvivesPartnerTaskKill: killing the creator's task
// suspends the manager only until another user's guard resurrects it.
func TestKillSafeSwapSurvivesCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *swapchan.Swap[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("creator", func(x *core.Thread) {
				share <- swapchan.NewKillSafe[int](x)
				_ = core.Sleep(x, time.Hour)
			})
		})
		sc := <-share
		c1.Shutdown()
		got := make(chan int, 1)
		th.Spawn("a", func(x *core.Thread) {
			if v, err := sc.Swap(x, 10); err == nil {
				got <- v
			}
		})
		v, err := sc.Swap(th, 20)
		if err != nil || v != 10 {
			t.Fatalf("swap after creator shutdown: (%v, %v)", v, err)
		}
		if <-got != 20 {
			t.Fatal("partner got wrong value")
		}
	})
}

// TestKillSafeSwapSurvivesWaiterKill: a client waiting for a partner is
// killed; the manager observes the gave-up event and pairs the next two
// clients correctly.
func TestKillSafeSwapSurvivesWaiterKill(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sc := swapchan.NewKillSafe[int](th)
		doomed := th.Spawn("doomed", func(x *core.Thread) {
			_, _ = sc.Swap(x, 666)
			t.Error("doomed swap returned")
		})
		time.Sleep(10 * time.Millisecond)
		doomed.Kill()
		waitUntil(t, "doomed thread reaped", doomed.Done)

		got := make(chan int, 1)
		th.Spawn("a", func(x *core.Thread) {
			if v, err := sc.Swap(x, 1); err == nil {
				got <- v
			}
		})
		v, err := sc.Swap(th, 2)
		if err != nil {
			t.Fatalf("swap: %v", err)
		}
		if v == 666 {
			t.Fatal("received the killed client's value")
		}
		if pv := <-got; pv == 666 {
			t.Fatal("partner received the killed client's value")
		}
	})
}

// TestDirectSwapNotKillSafe demonstrates why Figure 12 exists: with the
// direct implementation, killing one party after it commits (as server)
// but before the reply phase strands the abstraction's users... the
// observable, deterministic version: a waiting party whose task dies
// leaves a request in the channel that a later swapper consumes, stranding
// that swapper waiting on a reply that never comes.
func TestDirectSwapNotKillSafe(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sc := swapchan.New[int](th)
		c := core.NewCustodian(rt.RootCustodian())
		th.WithCustodian(c, func() {
			th.Spawn("doomed", func(x *core.Thread) {
				_, _ = sc.Swap(x, 666) // blocks waiting for a partner
			})
		})
		time.Sleep(10 * time.Millisecond)
		c.Shutdown() // doomed is suspended while its offer stands

		done := make(chan int, 1)
		th.Spawn("victim", func(x *core.Thread) {
			if v, err := sc.Swap(x, 1); err == nil {
				done <- v
			}
		})
		select {
		case v := <-done:
			// The suspended party cannot rendezvous, so the victim can
			// only complete against... nobody. Completion means the
			// runtime let a suspended thread communicate — a bug.
			t.Fatalf("swap with a suspended partner completed: %d", v)
		case <-time.After(50 * time.Millisecond):
			// The victim is stuck: the direct swap is wedged for
			// everyone because there is no manager to resurrect.
		}
	})
}

// TestKillSafeSwapXorNotPreserved reproduces the paper's observation that
// the kill-safe swap does NOT preserve SyncEnableBreak's exclusive-or
// guarantee: a break can land between the manager's commit and the
// client's receive. We verify the weaker property that actually holds: a
// break never corrupts the abstraction (the next swaps still work).
func TestKillSafeSwapBreakDoesNotCorrupt(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sc := swapchan.NewKillSafe[int](th)
		var broken, swapped atomic.Int64
		for i := 0; i < 30; i++ {
			res := make(chan struct{})
			p := th.Spawn("partner", func(x *core.Thread) {
				defer close(res)
				x.WithBreaks(false, func() {
					if _, err := core.SyncEnableBreak(x, sc.SwapEvt(1)); err == core.ErrBreak {
						broken.Add(1)
					} else {
						swapped.Add(1)
					}
				})
			})
			go p.Break()
			main := make(chan error, 1)
			th.Spawn("main-side", func(x *core.Thread) {
				_, err := x2swap(x, sc)
				main <- err
			})
			<-res
			select {
			case <-main:
			case <-time.After(100 * time.Millisecond):
				// Partner was broken mid-protocol; our side may be
				// waiting for a new partner. Supply one.
				th.Spawn("rescue", func(x *core.Thread) { _, _ = sc.Swap(x, 99) })
				if err := <-main; err != nil {
					t.Fatalf("rescue swap failed: %v", err)
				}
			}
		}
		// The abstraction still works after all that.
		got := make(chan int, 1)
		th.Spawn("final", func(x *core.Thread) {
			if v, err := sc.Swap(x, 7); err == nil {
				got <- v
			}
		})
		if v, err := sc.Swap(th, 8); err != nil || v != 7 {
			t.Fatalf("final swap got (%v, %v)", v, err)
		}
		if <-got != 8 {
			t.Fatal("final partner got wrong value")
		}
	})
}

func x2swap(x *core.Thread, sc *swapchan.Swap[int]) (int, error) {
	return sc.Swap(x, 2)
}
