// Package swapchan implements the paper's swap channels (Figures 11–12 of
// "Kill-Safe Synchronization Abstractions"): a channel over which two
// synchronizing threads each provide a value to the other.
//
// Two implementations are provided, mirroring the paper's discussion of the
// tension between break-safety and kill-safety:
//
//   - New (Figure 11) is the direct, manager-less implementation. One
//     thread is elected client and one server by the choice of who receives
//     the request; the second phase — the server sending its value back —
//     runs inside a wrap procedure, where breaks are implicitly disabled,
//     so the abstraction is break-safe and preserves SyncEnableBreak's
//     exclusive-or guarantee. It is not kill-safe: killing one party
//     between the phases strands the other.
//
//   - NewKillSafe (Figure 12) routes swaps through a manager thread that
//     pairs clients and delivers each the other's value via send-eventually
//     threads. It is kill-safe — a swap survives the termination of the
//     partner's task, and the manager is yoked to its users — but, exactly
//     as the paper observes, the manager commits the swap before the
//     clients receive their values, so SyncEnableBreak's exclusive-or
//     guarantee is not preserved (a break can land after the manager
//     commits but before the client's receive).
package swapchan

import (
	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// Swap is a two-way synchronous channel of T.
type Swap[T any] struct {
	rt  *core.Runtime
	ch  *core.Chan
	mgr *core.Thread // nil for the direct implementation
}

// request is one party's offer in the direct protocol, or one client's
// enrollment in the kill-safe protocol.
type request struct {
	v      core.Value
	ch     *core.Chan
	gaveUp core.Event // kill-safe protocol only
}

// New creates the direct, break-safe swap channel of Figure 11.
func New[T any](th *core.Thread) *Swap[T] {
	return &Swap[T]{rt: th.Runtime(), ch: core.NewChanNamed(th.Runtime(), "swap")}
}

// NewKillSafe creates the manager-based, kill-safe swap channel of
// Figure 12. The manager is controlled by the creating thread's current
// custodian and yoked to every user by the per-operation guard.
func NewKillSafe[T any](th *core.Thread) *Swap[T] {
	s := &Swap[T]{rt: th.Runtime(), ch: core.NewChanNamed(th.Runtime(), "swap-req")}
	s.mgr = th.Spawn("swap-manager", s.serve)
	return s
}

// Manager exposes the manager thread (nil for the direct implementation).
func (s *Swap[T]) Manager() *core.Thread { return s.mgr }

// serve pairs clients two at a time: wait for a first client, then either
// pair it with a second or observe that the first gave up and start over.
func (s *Swap[T]) serve(mgr *core.Thread) {
	for {
		// Phase 1: get the first client.
		av, err := core.Sync(mgr, s.ch.RecvEvt())
		if err != nil {
			continue
		}
		a := av.(*request)
		// Phase 2: get a second client, or lose the first.
		res, err := core.Sync(mgr, core.Choice(
			core.Wrap(s.ch.RecvEvt(), func(v core.Value) core.Value { return v }),
			core.Wrap(a.gaveUp, func(core.Value) core.Value { return nil }),
		))
		if err != nil || res == nil {
			continue // first client gave up; start over
		}
		b := res.(*request)
		// Committed: deliver each the other's value, eventually — the
		// recipient might not be ready (or might be gone), so each
		// delivery gets its own thread rather than blocking the manager.
		sendEventually(mgr, a, b.v)
		sendEventually(mgr, b, a.v)
	}
}

// sendEventually delivers v to a committed client in a fresh thread. The
// delivery gives up if the client's gave-up event fires (it was killed, or
// its sync escaped after the manager committed the pair — the mismatch
// that costs the kill-safe swap its exclusive-or break guarantee).
func sendEventually(mgr *core.Thread, to *request, v core.Value) {
	core.SpawnYoked(mgr, "swap-deliver", func(d *core.Thread) {
		_, _ = core.Sync(d, core.Choice(to.ch.SendEvt(v), to.gaveUp))
	})
}

// SwapEvt returns an event that swaps v with another thread's offered
// value; the event's value is the partner's value.
func (s *Swap[T]) SwapEvt(v T) core.Event {
	if s.mgr == nil {
		return s.directSwapEvt(v)
	}
	return s.killSafeSwapEvt(v)
}

// directSwapEvt is Figure 11: elect roles via choice; the committed second
// phase runs inside the wrap, where breaks are implicitly disabled.
func (s *Swap[T]) directSwapEvt(v T) core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		in := core.NewChanNamed(s.rt, "swap-in")
		return core.Choice(
			// Maybe act as server and receive the partner's request.
			core.Wrap(s.ch.RecvEvt(), func(rv core.Value) core.Value {
				req := rv.(*request)
				// Reply with our value; a break cannot interrupt this.
				_, _ = core.Sync(th, req.ch.SendEvt(v))
				return req.v
			}),
			// Maybe act as client and send our request.
			core.Wrap(s.ch.SendEvt(&request{v: v, ch: in}), func(core.Value) core.Value {
				res, _ := core.Sync(th, in.RecvEvt())
				return res
			}),
		)
	})
}

// killSafeSwapEvt is Figure 12: enroll with the manager under a nack
// guard, then receive the partner's value.
func (s *Swap[T]) killSafeSwapEvt(v T) core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(s.mgr, th)
		in := core.NewChanNamed(s.rt, "swap-in")
		return guard.RequestReply(th, s.ch, &request{v: v, ch: in, gaveUp: gaveUp}, in)
	})
}

// Swap exchanges v for the partner's value, blocking until a partner
// arrives.
func (s *Swap[T]) Swap(th *core.Thread, v T) (T, error) {
	res, err := core.Sync(th, s.SwapEvt(v))
	if err != nil {
		var zero T
		return zero, err
	}
	return res.(T), nil
}
