// Package msgqueue implements the paper's selective-dequeue message queue
// (Figures 8–10 of "Kill-Safe Synchronization Abstractions"), the kind of
// queue a GUI needs when a task wants to handle only refresh messages while
// leaving mouse clicks intact.
//
// A receive takes a predicate; the manager satisfies the request with the
// first queued item the predicate accepts, preserving the queue order of
// the other items. The request idiom is Concurrent ML's client–server
// pattern: the client sends the manager a request carrying a private reply
// channel, then syncs on the reply. Three design stages from the paper are
// selectable:
//
//   - Figure 8 (Options{Nacks: false}): abandoned requests — a losing
//     branch of a choice, or a terminated client — pile up in the manager's
//     request list forever. The leak is observable via PendingRequests.
//   - Figure 9 (Options{Nacks: true}, the default): each request carries a
//     gave-up event (the nack of the client's guard); the manager services
//     a request or observes its abandonment, never both, thanks to the
//     rendezvous commit.
//   - Figure 10 (Options{RemotePredicates: true}): predicates run in a
//     fresh thread under the *client's* custodian instead of the manager
//     thread, so a hostile predicate — one that blocks forever or suspends
//     its own thread — incapacitates only its submitter, and the
//     predicate-running thread can execute only while the client may.
package msgqueue

import (
	"sync/atomic"

	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// Options selects the design stage. The zero value plus Nacks:true is the
// paper's recommended configuration (Figure 9).
type Options struct {
	// Nacks enables gave-up tracking so the manager drops abandoned
	// requests (Figure 9). Without it the queue reproduces Figure 8's
	// space leak.
	Nacks bool
	// RemotePredicates runs each predicate in a fresh thread under the
	// requesting client's custodian (Figure 10).
	RemotePredicates bool
}

// Queue is a selective-dequeue message queue of T.
type Queue[T any] struct {
	rt      *core.Runtime
	inCh    *core.Chan
	reqCh   *core.Chan
	mgr     *core.Thread
	opts    Options
	pending atomic.Int64
}

// box gives queued items an identity independent of their (possibly
// non-comparable) values, plus a monotonic enqueue sequence number so
// predicate-testing progress survives removals elsewhere in the queue.
type box struct {
	v   core.Value
	seq int64
}

// request is the manager's record of one outstanding selective receive.
type request struct {
	pred    func(*core.Thread, core.Value) bool
	outCh   *core.Chan
	gaveUp  core.Event      // nil without nacks
	cust    *core.Custodian // client's custodian, for remote predicates
	okItems []*box          // remote mode: known acceptable items
	reply   *core.Chan      // remote mode: in-flight predicate reply, or nil
	tested  int64           // remote mode: sequence high-water mark of
	// items already submitted to a predicate run; sequence-based (not
	// index-based) so removals by other requests cannot cause an
	// untested item to be skipped.
}

// New creates a message queue with the paper's recommended configuration
// (nacks on, inline predicates).
func New[T any](th *core.Thread) *Queue[T] {
	return NewWith[T](th, Options{Nacks: true})
}

// NewWith creates a message queue with explicit options.
func NewWith[T any](th *core.Thread, opts Options) *Queue[T] {
	rt := th.Runtime()
	q := &Queue[T]{
		rt:    rt,
		inCh:  core.NewChanNamed(rt, "msgq-in"),
		reqCh: core.NewChanNamed(rt, "msgq-req"),
		opts:  opts,
	}
	q.mgr = th.Spawn("msgq-manager", q.serve)
	return q
}

// Manager exposes the manager thread for tests and diagnostics.
func (q *Queue[T]) Manager() *core.Thread { return q.mgr }

// PendingRequests reports the number of receive requests currently held by
// the manager. Figure 8 mode leaks abandoned requests here.
func (q *Queue[T]) PendingRequests() int { return int(q.pending.Load()) }

func (q *Queue[T]) serve(mgr *core.Thread) {
	var items []*box
	var reqs []*request
	var nextSeq int64

	removeItem := func(b *box) {
		for i, x := range items {
			if x == b {
				items = append(items[:i], items[i+1:]...)
				break
			}
		}
		for _, r := range reqs {
			for i, x := range r.okItems {
				if x == b {
					r.okItems = append(r.okItems[:i], r.okItems[i+1:]...)
					break
				}
			}
		}
	}
	removeReq := func(r *request) {
		for i, x := range reqs {
			if x == r {
				reqs = append(reqs[:i], reqs[i+1:]...)
				q.pending.Add(-1)
				break
			}
		}
		if r.reply != nil {
			// A predicate run is in flight; drain its eventual reply so
			// the predicate thread is not blocked forever. The drainer
			// runs under the client's custodian, like the predicate.
			reply := r.reply
			mgr.WithCustodian(r.cust, func() {
				mgr.Spawn("msgq-pred-drain", func(d *core.Thread) {
					_, _ = core.Sync(d, reply.RecvEvt())
				})
			})
			r.reply = nil
		}
	}

	// serviceEvt returns an event that advances one request, or nil if
	// the request cannot make progress right now.
	serviceEvt := func(r *request) core.Event {
		if !q.opts.RemotePredicates {
			// Figure 8/9: the manager runs the predicate itself, at
			// event-construction time — the hazard Figure 10 removes.
			for _, b := range items {
				if r.pred(mgr, b.v) {
					b := b
					return core.Wrap(r.outCh.SendEvt(b.v), func(core.Value) core.Value {
						return func() {
							removeItem(b)
							removeReq(r)
						}
					})
				}
			}
			return nil
		}
		// Figure 10: remote predicates.
		if len(r.okItems) > 0 {
			b := r.okItems[0]
			return core.Wrap(r.outCh.SendEvt(b.v), func(core.Value) core.Value {
				return func() {
					removeItem(b)
					removeReq(r)
				}
			})
		}
		if r.reply == nil && len(items) > 0 && items[len(items)-1].seq >= r.tested {
			// Start a predicate run over the untested items, in a new
			// thread under the client's custodian: the predicate can
			// execute only when the client is still allowed to execute,
			// and it cannot harm the manager. As in the paper's
			// ok-items-evt, the reply-receive event joins this very
			// sync's choice (deferring it a round would deadlock the
			// manager against its own predicate runner).
			var snapshot []*box
			for _, b := range items {
				if b.seq >= r.tested {
					snapshot = append(snapshot, b)
				}
			}
			r.tested = items[len(items)-1].seq + 1
			reply := core.NewChanNamed(q.rt, "msgq-pred-reply")
			r.reply = reply
			pred := r.pred
			mgr.WithCustodian(r.cust, func() {
				mgr.Spawn("msgq-pred-run", func(p *core.Thread) {
					var ok []*box
					for _, b := range snapshot {
						if pred(p, b.v) {
							ok = append(ok, b)
						}
					}
					_, _ = core.Sync(p, reply.SendEvt(ok))
				})
			})
		}
		if r.reply != nil {
			reply := r.reply
			return core.Wrap(reply.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					r.reply = nil
					// Keep only results that are still queued.
					still := make(map[*box]bool, len(items))
					for _, b := range items {
						still[b] = true
					}
					for _, b := range v.([]*box) {
						if still[b] {
							r.okItems = append(r.okItems, b)
						}
					}
				}
			})
		}
		return nil
	}

	for {
		evts := []core.Event{
			core.Wrap(q.inCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					items = append(items, &box{v: v, seq: nextSeq})
					nextSeq++
				}
			}),
			core.Wrap(q.reqCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					reqs = append(reqs, v.(*request))
					q.pending.Add(1)
				}
			}),
		}
		for _, r := range reqs {
			r := r
			if ev := serviceEvt(r); ev != nil {
				evts = append(evts, ev)
			}
			if r.gaveUp != nil {
				evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
					return func() { removeReq(r) }
				}))
			}
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// SendEvt returns an event that posts v to the queue when chosen.
func (q *Queue[T]) SendEvt(v T) core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		core.ResumeVia(q.mgr, th)
		return q.inCh.SendEvt(v)
	})
}

// Send posts v to the queue; it never blocks except to synchronize with
// the manager.
func (q *Queue[T]) Send(th *core.Thread, v T) error {
	_, err := core.Sync(th, q.SendEvt(v))
	return err
}

// RecvEvt returns an event that dequeues the first queued item satisfying
// pred, leaving other items intact and ordered.
func (q *Queue[T]) RecvEvt(pred func(T) bool) core.Event {
	return q.RecvThreadEvt(func(_ *core.Thread, v T) bool { return pred(v) })
}

// RecvThreadEvt is RecvEvt for predicates that need a thread handle (for
// example to block via runtime primitives). With RemotePredicates the
// handle is the predicate-running thread under the client's custodian;
// otherwise it is the manager thread — which is exactly how a hostile
// predicate incapacitates a Figure 8/9 queue.
func (q *Queue[T]) RecvThreadEvt(pred func(*core.Thread, T) bool) core.Event {
	p := func(th *core.Thread, v core.Value) bool { return pred(th, v.(T)) }
	mk := func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(q.mgr, th)
		r := &request{
			pred:   p,
			outCh:  core.NewChanNamed(q.rt, "msgq-out"),
			gaveUp: gaveUp,
			cust:   th.CurrentCustodian(),
		}
		return guard.RequestReply(th, q.reqCh, r, r.outCh)
	}
	if q.opts.Nacks {
		return core.NackGuard(mk)
	}
	return core.Guard(func(th *core.Thread) core.Event { return mk(th, nil) })
}

// Recv dequeues the first item satisfying pred, blocking until one exists.
func (q *Queue[T]) Recv(th *core.Thread, pred func(T) bool) (T, error) {
	v, err := core.Sync(th, q.RecvEvt(pred))
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Any is a predicate accepting every item, making Recv behave like a plain
// queue receive.
func Any[T any](T) bool { return true }
