package msgqueue_test

import (
	"testing"
	"time"

	"repro/abstractions/msgqueue"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func odd(v int) bool  { return v%2 == 1 }
func even(v int) bool { return v%2 == 0 }

func TestSelectiveDequeuePreservesOrder(t *testing.T) {
	for _, opts := range []msgqueue.Options{
		{Nacks: true},
		{Nacks: true, RemotePredicates: true},
	} {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			q := msgqueue.NewWith[int](th, opts)
			for _, v := range []int{1, 2, 3, 4, 5} {
				if err := q.Send(th, v); err != nil {
					t.Fatal(err)
				}
			}
			// Take the evens first; odds must keep their order.
			if v, err := q.Recv(th, even); err != nil || v != 2 {
				t.Fatalf("opts=%+v: got (%v, %v), want 2", opts, v, err)
			}
			if v, err := q.Recv(th, even); err != nil || v != 4 {
				t.Fatalf("opts=%+v: got (%v, %v), want 4", opts, v, err)
			}
			for _, want := range []int{1, 3, 5} {
				if v, err := q.Recv(th, msgqueue.Any[int]); err != nil || v != want {
					t.Fatalf("opts=%+v: got (%v, %v), want %d", opts, v, err, want)
				}
			}
		})
	}
}

func TestRecvBlocksUntilMatch(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.New[int](th)
		if err := q.Send(th, 2); err != nil {
			t.Fatal(err)
		}
		got := make(chan int, 1)
		th.Spawn("oddseeker", func(x *core.Thread) {
			v, err := q.Recv(x, odd)
			if err == nil {
				got <- v
			}
		})
		select {
		case v := <-got:
			t.Fatalf("odd recv matched %d with only evens queued", v)
		case <-time.After(20 * time.Millisecond):
		}
		if err := q.Send(th, 3); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-got:
			if v != 3 {
				t.Fatalf("got %d", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("matching send did not satisfy request")
		}
		// The even item is still there.
		if v, err := q.Recv(th, msgqueue.Any[int]); err != nil || v != 2 {
			t.Fatalf("got (%v, %v), want 2", v, err)
		}
	})
}

// TestLeakWithoutNacks reproduces the Figure 8 space leak: a choice of two
// selective receives sends two requests; one is serviced, and the leftover
// request is stuck in the manager's list forever.
func TestLeakWithoutNacks(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: false})
		const rounds = 20
		for i := 0; i < rounds; i++ {
			if err := q.Send(th, 1); err != nil {
				t.Fatal(err)
			}
			if err := q.Send(th, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := core.Sync(th, core.Choice(q.RecvEvt(odd), q.RecvEvt(even))); err != nil {
				t.Fatal(err)
			}
		}
		waitUntil(t, "leaked requests", func() bool { return q.PendingRequests() >= rounds })
	})
}

// TestNacksCleanAbandonedRequests reproduces the Figure 9 fix: the manager
// observes gave-up events and keeps its request list clean.
func TestNacksCleanAbandonedRequests(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.New[int](th)
		const rounds = 20
		for i := 0; i < rounds; i++ {
			if err := q.Send(th, 1); err != nil {
				t.Fatal(err)
			}
			if err := q.Send(th, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := core.Sync(th, core.Choice(q.RecvEvt(odd), q.RecvEvt(even))); err != nil {
				t.Fatal(err)
			}
		}
		waitUntil(t, "request list drained", func() bool { return q.PendingRequests() == 0 })
	})
}

// TestNackOnClientTermination: a client killed mid-request must not leave a
// stale request behind.
func TestNackOnClientTermination(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.New[int](th)
		c := core.NewCustodian(rt.RootCustodian())
		th.WithCustodian(c, func() {
			th.Spawn("doomed", func(x *core.Thread) {
				_, _ = q.Recv(x, odd) // blocks: no odd item will ever come
			})
		})
		waitUntil(t, "request arrival", func() bool { return q.PendingRequests() == 1 })
		c.Shutdown()
		// Suspension alone must not abandon the request (the client could
		// be resumed).
		time.Sleep(10 * time.Millisecond)
		if q.PendingRequests() != 1 {
			t.Fatal("request dropped on mere suspension")
		}
		rt.TerminateCondemned()
		waitUntil(t, "request cleanup after termination", func() bool {
			return q.PendingRequests() == 0
		})
		// The queue still works.
		if err := q.Send(th, 4); err != nil {
			t.Fatal(err)
		}
		if v, err := q.Recv(th, even); err != nil || v != 4 {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

// TestHostilePredicateWedgesInlineQueue demonstrates the Section 8.1
// hazard: with inline predicates, a predicate that suspends the current
// thread suspends the *manager*, incapacitating the queue for everyone.
func TestHostilePredicateWedgesInlineQueue(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.New[int](th)
		if err := q.Send(th, 1); err != nil {
			t.Fatal(err)
		}
		die := func(x *core.Thread, _ int) bool {
			x.Suspend() // suspends whoever runs the predicate
			return false
		}
		th.Spawn("hostile", func(x *core.Thread) {
			_, _ = core.Sync(x, q.RecvThreadEvt(die))
		})
		waitUntil(t, "manager suspension", q.Manager().Suspended)

		// An innocent client is now stuck — "probably stuck", as the
		// paper puts it. (ResumeVia does not help: it cannot clear the
		// manager's *explicit* suspension ... actually it can resume it.
		// The wedge here is that the manager re-runs the hostile
		// predicate and suspends again on every service attempt.)
		got := make(chan int, 1)
		th.Spawn("innocent", func(x *core.Thread) {
			if v, err := q.Recv(x, odd); err == nil {
				got <- v
			}
		})
		select {
		case v := <-got:
			// With explicit resume-on-use the innocent client may still
			// win a race before the predicate re-suspends the manager;
			// accept either outcome but verify the hostile request never
			// completes.
			if v != 1 {
				t.Fatalf("got %d", v)
			}
		case <-time.After(50 * time.Millisecond):
			// wedged, as Section 8.1 predicts
		}
	})
}

// TestHostilePredicateCannotWedgeRemoteQueue demonstrates the Figure 10
// fix: the predicate runs in a disposable thread under the client's
// custodian, so the manager and other clients are unharmed.
func TestHostilePredicateCannotWedgeRemoteQueue(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
		if err := q.Send(th, 1); err != nil {
			t.Fatal(err)
		}
		die := func(x *core.Thread, _ int) bool {
			x.Suspend()
			return false
		}
		hostileCust := core.NewCustodian(rt.RootCustodian())
		th.WithCustodian(hostileCust, func() {
			th.Spawn("hostile", func(x *core.Thread) {
				_, _ = core.Sync(x, q.RecvThreadEvt(die))
			})
		})
		time.Sleep(10 * time.Millisecond)
		if q.Manager().Suspended() {
			t.Fatal("manager suspended by a remote predicate")
		}
		// An innocent client gets served.
		if v, err := q.Recv(th, odd); err != nil || v != 1 {
			t.Fatalf("innocent client got (%v, %v)", v, err)
		}
		// Terminating the hostile client reaps its predicate thread.
		hostileCust.Shutdown()
		rt.TerminateCondemned()
		waitUntil(t, "hostile request cleanup", func() bool {
			return q.PendingRequests() == 0
		})
	})
}

// TestRemotePredicateRunsUnderClientCustodian: suspending the client (via
// its custodian) suspends the predicate run; resuming lets it finish.
func TestRemotePredicateRunsUnderClientCustodian(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
		c := core.NewCustodian(rt.RootCustodian())
		started := make(chan *core.Thread, 1)
		got := make(chan int, 1)
		slow := func(x *core.Thread, v int) bool {
			started <- x
			_ = core.Sleep(x, 20*time.Millisecond)
			return v == 42
		}
		th.WithCustodian(c, func() {
			th.Spawn("client", func(x *core.Thread) {
				if v, err := core.Sync(x, q.RecvThreadEvt(slow)); err == nil {
					got <- v.(int)
				}
			})
		})
		if err := q.Send(th, 42); err != nil {
			t.Fatal(err)
		}
		pred := <-started
		if pred.CurrentCustodian() != c && !containsCustodian(pred, c) {
			t.Fatal("predicate thread not under client custodian")
		}
		select {
		case v := <-got:
			if v != 42 {
				t.Fatalf("got %d", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("slow predicate request not serviced")
		}
	})
}

func containsCustodian(th *core.Thread, c *core.Custodian) bool {
	for _, x := range th.Custodians() {
		if x == c {
			return true
		}
	}
	return false
}

// TestKillSafety: the msg-queue manager survives its creator's shutdown.
func TestKillSafety(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *msgqueue.Queue[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("creator", func(x *core.Thread) {
				q := msgqueue.New[int](x)
				_ = q.Send(x, 5)
				share <- q
				_ = core.Sleep(x, time.Hour)
			})
		})
		q := <-share
		c1.Shutdown()
		if v, err := q.Recv(th, odd); err != nil || v != 5 {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

// TestMixedPredicatesConcurrently stresses request bookkeeping.
func TestMixedPredicatesConcurrently(t *testing.T) {
	for _, opts := range []msgqueue.Options{
		{Nacks: true},
		{Nacks: true, RemotePredicates: true},
	} {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			q := msgqueue.NewWith[int](th, opts)
			const n = 40
			oddGot := make(chan int, n)
			evenGot := make(chan int, n)
			th.Spawn("odd-consumer", func(x *core.Thread) {
				for {
					v, err := q.Recv(x, odd)
					if err != nil {
						return
					}
					oddGot <- v
				}
			})
			th.Spawn("even-consumer", func(x *core.Thread) {
				for {
					v, err := q.Recv(x, even)
					if err != nil {
						return
					}
					evenGot <- v
				}
			})
			th.Spawn("producer", func(x *core.Thread) {
				for i := 1; i <= 2*n; i++ {
					if err := q.Send(x, i); err != nil {
						return
					}
				}
			})
			lastOdd, lastEven := 0, 0
			for i := 0; i < 2*n; i++ {
				select {
				case v := <-oddGot:
					if v <= lastOdd {
						t.Fatalf("opts=%+v: odd order violated: %d after %d", opts, v, lastOdd)
					}
					lastOdd = v
				case v := <-evenGot:
					if v <= lastEven {
						t.Fatalf("opts=%+v: even order violated: %d after %d", opts, v, lastEven)
					}
					lastEven = v
				case <-time.After(10 * time.Second):
					t.Fatalf("opts=%+v: stalled at %d", opts, i)
				}
			}
		})
	}
}
