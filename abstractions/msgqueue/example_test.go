package msgqueue_test

import (
	"fmt"

	"repro/abstractions/msgqueue"
	"repro/internal/core"
)

// Selective dequeue takes the first matching item, leaving the others in
// order — a GUI can handle refresh messages while leaving clicks queued.
func ExampleQueue_Recv() {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *core.Thread) {
		q := msgqueue.New[string](th)
		for _, m := range []string{"click:1", "refresh", "click:2"} {
			_ = q.Send(th, m)
		}
		isRefresh := func(m string) bool { return m == "refresh" }
		m, _ := q.Recv(th, isRefresh)
		fmt.Println("handled:", m)
		rest, _ := q.Recv(th, msgqueue.Any[string])
		fmt.Println("still queued first:", rest)
	})
	// Output:
	// handled: refresh
	// still queued first: click:1
}
