package msgqueue_test

import (
	"testing"
	"testing/quick"

	"repro/abstractions/msgqueue"
	"repro/internal/core"
)

// Property: selective dequeue partitions the queue — draining with
// predicate P and then with not-P yields the P-items in order followed by
// the rest in order, for arbitrary items and arbitrary residue-class
// predicates, in both predicate disciplines.
func TestQuickSelectivePartition(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(vals []int16, m, r uint8, remote bool) bool {
		mod := int16(m%5) + 2
		res := int16(r) % mod
		pred := func(v int16) bool { return ((v%mod)+mod)%mod == res }
		notPred := func(v int16) bool { return !pred(v) }
		if len(vals) > 24 {
			vals = vals[:24]
		}
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			q := msgqueue.NewWith[int16](th, msgqueue.Options{Nacks: true, RemotePredicates: remote})
			var want, rest []int16
			for _, v := range vals {
				if err := q.Send(th, v); err != nil {
					return
				}
				if pred(v) {
					want = append(want, v)
				} else {
					rest = append(rest, v)
				}
			}
			for _, w := range want {
				got, err := q.Recv(th, pred)
				if err != nil || got != w {
					return
				}
			}
			for _, w := range rest {
				got, err := q.Recv(th, notPred)
				if err != nil || got != w {
					return
				}
			}
			q.Manager().Kill()
			ok = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
