// Package buffer implements a kill-safe bounded buffer (a buffered channel
// with back-pressure), one of the standard Concurrent ML abstractions the
// paper's technique applies to: sends block while the buffer is full,
// receives block while it is empty, and a manager thread serializes access
// so the buffer stays consistent across the suspension and resurrection of
// any of its users.
package buffer

import "repro/internal/core"

// Buffer is a bounded FIFO buffer of T with a kill-safe manager.
type Buffer[T any] struct {
	rt    *core.Runtime
	inCh  *core.Chan
	outCh *core.Chan
	mgr   *core.Thread
	cap   int
}

// New creates a bounded buffer with the given capacity (at least 1),
// managed by a thread under the creating thread's current custodian.
func New[T any](th *core.Thread, capacity int) *Buffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	rt := th.Runtime()
	b := &Buffer[T]{
		rt:    rt,
		inCh:  core.NewChanNamed(rt, "buf-in"),
		outCh: core.NewChanNamed(rt, "buf-out"),
		cap:   capacity,
	}
	b.mgr = th.Spawn("buffer-manager", b.serve)
	return b
}

// Manager exposes the manager thread for tests and diagnostics.
func (b *Buffer[T]) Manager() *core.Thread { return b.mgr }

// Cap returns the buffer's capacity.
func (b *Buffer[T]) Cap() int { return b.cap }

func (b *Buffer[T]) serve(mgr *core.Thread) {
	var items []core.Value
	for {
		var evts []core.Event
		if len(items) < b.cap {
			evts = append(evts, core.Wrap(b.inCh.RecvEvt(), func(v core.Value) core.Value {
				return func() { items = append(items, v) }
			}))
		}
		if len(items) > 0 {
			head := items[0]
			evts = append(evts, core.Wrap(b.outCh.SendEvt(head), func(core.Value) core.Value {
				return func() { items = items[1:] }
			}))
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// SendEvt returns an event that deposits v when buffer space is available.
func (b *Buffer[T]) SendEvt(v T) core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		core.ResumeVia(b.mgr, th)
		return b.inCh.SendEvt(v)
	})
}

// RecvEvt returns an event that removes and yields the oldest item.
func (b *Buffer[T]) RecvEvt() core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		core.ResumeVia(b.mgr, th)
		return b.outCh.RecvEvt()
	})
}

// Send deposits v, blocking while the buffer is full.
func (b *Buffer[T]) Send(th *core.Thread, v T) error {
	_, err := core.Sync(th, b.SendEvt(v))
	return err
}

// Recv removes the oldest item, blocking while the buffer is empty.
func (b *Buffer[T]) Recv(th *core.Thread) (T, error) {
	v, err := core.Sync(th, b.RecvEvt())
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
