package buffer_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/abstractions/buffer"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFIFO(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := buffer.New[int](th, 4)
		for i := 0; i < 4; i++ {
			if err := b.Send(th, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			v, err := b.Recv(th)
			if err != nil || v != i {
				t.Fatalf("got (%v, %v), want %d", v, err, i)
			}
		}
	})
}

func TestBackPressure(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := buffer.New[int](th, 2)
		var sent atomic.Int64
		th.Spawn("sender", func(s *core.Thread) {
			for i := 0; i < 5; i++ {
				if err := b.Send(s, i); err != nil {
					return
				}
				sent.Add(1)
			}
		})
		time.Sleep(20 * time.Millisecond)
		if n := sent.Load(); n != 2 {
			t.Fatalf("sender deposited %d items into a capacity-2 buffer", n)
		}
		for i := 0; i < 5; i++ {
			v, err := b.Recv(th)
			if err != nil || v != i {
				t.Fatalf("got (%v, %v), want %d", v, err, i)
			}
		}
	})
}

func TestCapacityClamp(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := buffer.New[int](th, 0)
		if b.Cap() != 1 {
			t.Fatalf("cap = %d, want 1", b.Cap())
		}
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *buffer.Buffer[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("creator", func(x *core.Thread) {
				b := buffer.New[int](x, 3)
				_ = b.Send(x, 1)
				_ = b.Send(x, 2)
				share <- b
				_ = core.Sleep(x, time.Hour)
			})
		})
		b := <-share
		c1.Shutdown()
		// The survivor resurrects the manager and finds the contents
		// intact.
		if v, err := b.Recv(th); err != nil || v != 1 {
			t.Fatalf("got (%v, %v)", v, err)
		}
		if err := b.Send(th, 3); err != nil {
			t.Fatal(err)
		}
		if v, err := b.Recv(th); err != nil || v != 2 {
			t.Fatalf("got (%v, %v)", v, err)
		}
		if v, err := b.Recv(th); err != nil || v != 3 {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

func TestEventsCompose(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		full := buffer.New[string](th, 1)
		if err := full.Send(th, "x"); err != nil {
			t.Fatal(err)
		}
		// Send into a full buffer loses the choice to a timeout without
		// corrupting the buffer.
		v, err := core.Sync(th, core.Choice(
			core.Wrap(full.SendEvt("y"), func(core.Value) core.Value { return "sent" }),
			core.Wrap(core.After(rt, 5*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("got (%v, %v)", v, err)
		}
		if v, err := full.Recv(th); err != nil || v != "x" {
			t.Fatalf("buffer corrupted: (%v, %v)", v, err)
		}
	})
}

func TestConcurrentStress(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := buffer.New[int](th, 3)
		const n = 300
		done := make(chan map[int]bool, 1)
		th.Spawn("consumer", func(r *core.Thread) {
			seen := make(map[int]bool)
			for i := 0; i < n; i++ {
				v, err := b.Recv(r)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
			}
			done <- seen
		})
		for p := 0; p < 3; p++ {
			p := p
			th.Spawn("producer", func(s *core.Thread) {
				for i := 0; i < n/3; i++ {
					if err := b.Send(s, p*(n/3)+i); err != nil {
						return
					}
				}
			})
		}
		select {
		case seen := <-done:
			if len(seen) != n {
				t.Fatalf("saw %d distinct items, want %d", len(seen), n)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("stress test stalled")
		}
	})
}
