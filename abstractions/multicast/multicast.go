// Package multicast implements a kill-safe multicast channel (Reppy ch. 5):
// every value sent is delivered to every subscribed port, in order. Each
// port buffers independently, so a slow — or suspended, or terminated —
// subscriber never blocks the sender or the other subscribers; this
// isolation is exactly the paper's motivation for building abstractions
// from manager threads and unbounded queues.
package multicast

import (
	"repro/abstractions/queue"
	"repro/internal/core"
)

// Chan is a multicast channel of T.
type Chan[T any] struct {
	rt    *core.Runtime
	sendC *core.Chan // carries values
	ctlC  *core.Chan // carries *ctl
	mgr   *core.Thread
}

// Port receives the values sent to a multicast channel after the port's
// creation.
type Port[T any] struct {
	mc *Chan[T]
	q  *queue.Queue[T]
}

type ctl struct {
	port        any // *Port[T]
	unsubscribe bool
	reply       *core.Chan
}

// New creates a multicast channel managed by a thread under the creating
// thread's current custodian.
func New[T any](th *core.Thread) *Chan[T] {
	rt := th.Runtime()
	mc := &Chan[T]{
		rt:    rt,
		sendC: core.NewChanNamed(rt, "mcast-send"),
		ctlC:  core.NewChanNamed(rt, "mcast-ctl"),
	}
	mc.mgr = th.Spawn("mcast-manager", mc.serve)
	return mc
}

// Manager exposes the manager thread for tests and diagnostics.
func (mc *Chan[T]) Manager() *core.Thread { return mc.mgr }

func (mc *Chan[T]) serve(mgr *core.Thread) {
	var ports []*Port[T]
	for {
		act, err := core.Sync(mgr, core.Choice(
			core.Wrap(mc.sendC.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					// Forward into each port's unbounded queue; a queue
					// send never blocks, so one dead subscriber cannot
					// stall the fan-out.
					for _, p := range ports {
						_ = p.q.Send(mgr, v.(T))
					}
				}
			}),
			core.Wrap(mc.ctlC.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					c := v.(*ctl)
					p := c.port.(*Port[T])
					if c.unsubscribe {
						for i, x := range ports {
							if x == p {
								ports = append(ports[:i], ports[i+1:]...)
								break
							}
						}
					} else {
						ports = append(ports, p)
					}
					core.SpawnYoked(mgr, "mcast-ack", func(d *core.Thread) {
						_, _ = core.Sync(d, c.reply.SendEvt(nil))
					})
				}
			}),
		))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// SendEvt returns an event that multicasts v to all current ports.
func (mc *Chan[T]) SendEvt(v T) core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		core.ResumeVia(mc.mgr, th)
		return mc.sendC.SendEvt(v)
	})
}

// Send multicasts v; it never blocks except to synchronize with the
// manager.
func (mc *Chan[T]) Send(th *core.Thread, v T) error {
	_, err := core.Sync(th, mc.SendEvt(v))
	return err
}

// Subscribe creates a new port that will receive every value sent after
// this call returns. The port's buffer is itself a kill-safe queue whose
// manager runs under th's current custodian.
func (mc *Chan[T]) Subscribe(th *core.Thread) (*Port[T], error) {
	p := &Port[T]{mc: mc, q: queue.New[T](th)}
	// The port queue's manager must run whenever the multicast manager
	// needs to forward into it, so yoke it to the multicast manager.
	core.ResumeVia(p.q.Manager(), mc.mgr)
	if err := mc.control(th, p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// Unsubscribe removes the port; values sent afterwards are not delivered
// to it (already-buffered values remain receivable).
func (p *Port[T]) Unsubscribe(th *core.Thread) error {
	return p.mc.control(th, p, true)
}

func (mc *Chan[T]) control(th *core.Thread, p *Port[T], unsub bool) error {
	core.ResumeVia(mc.mgr, th)
	reply := core.NewChanNamed(mc.rt, "mcast-ctl-reply")
	if _, err := core.Sync(th, mc.ctlC.SendEvt(&ctl{port: p, unsubscribe: unsub, reply: reply})); err != nil {
		return err
	}
	_, err := core.Sync(th, reply.RecvEvt())
	return err
}

// RecvEvt returns an event yielding the port's next value.
func (p *Port[T]) RecvEvt() core.Event { return p.q.RecvEvt() }

// Recv blocks until the port has a value and returns it.
func (p *Port[T]) Recv(th *core.Thread) (T, error) { return p.q.Recv(th) }
