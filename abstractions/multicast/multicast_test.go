package multicast_test

import (
	"testing"
	"time"

	"repro/abstractions/multicast"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFanOutInOrder(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		mc := multicast.New[int](th)
		p1, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := mc.Send(th, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			if v, err := p1.Recv(th); err != nil || v != i {
				t.Fatalf("p1: (%v, %v), want %d", v, err, i)
			}
			if v, err := p2.Recv(th); err != nil || v != i {
				t.Fatalf("p2: (%v, %v), want %d", v, err, i)
			}
		}
	})
}

func TestLateSubscriberMissesEarlierSends(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		mc := multicast.New[int](th)
		if err := mc.Send(th, 1); err != nil {
			t.Fatal(err)
		}
		p, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Send(th, 2); err != nil {
			t.Fatal(err)
		}
		if v, err := p.Recv(th); err != nil || v != 2 {
			t.Fatalf("(%v, %v), want 2", v, err)
		}
	})
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		mc := multicast.New[int](th)
		p, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Send(th, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.Unsubscribe(th); err != nil {
			t.Fatal(err)
		}
		if err := mc.Send(th, 2); err != nil {
			t.Fatal(err)
		}
		if v, err := p.Recv(th); err != nil || v != 1 {
			t.Fatalf("(%v, %v), want 1", v, err)
		}
		// Nothing further arrives.
		v, err := core.Sync(th, core.Choice(
			p.RecvEvt(),
			core.Wrap(core.After(rt, 10*time.Millisecond), func(core.Value) core.Value { return "silence" }),
		))
		if err != nil || v != "silence" {
			t.Fatalf("(%v, %v), want silence", v, err)
		}
	})
}

func TestSuspendedSubscriberDoesNotBlockOthers(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		mc := multicast.New[int](th)
		cSlow := core.NewCustodian(rt.RootCustodian())
		ready := make(chan *multicast.Port[int], 1)
		th.WithCustodian(cSlow, func() {
			th.Spawn("slow", func(x *core.Thread) {
				p, err := mc.Subscribe(x)
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				ready <- p
				_ = core.Sleep(x, time.Hour) // never reads
			})
		})
		<-ready
		pFast, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		cSlow.Shutdown() // the slow subscriber's task dies

		for i := 0; i < 10; i++ {
			if err := mc.Send(th, i); err != nil {
				t.Fatal(err)
			}
			if v, err := pFast.Recv(th); err != nil || v != i {
				t.Fatalf("fast subscriber stalled at %d: (%v, %v)", i, v, err)
			}
		}
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		share := make(chan *multicast.Chan[int], 1)
		th.WithCustodian(c, func() {
			th.Spawn("creator", func(x *core.Thread) {
				share <- multicast.New[int](x)
				_ = core.Sleep(x, time.Hour)
			})
		})
		mc := <-share
		c.Shutdown()
		p, err := mc.Subscribe(th)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Send(th, 42); err != nil {
			t.Fatal(err)
		}
		if v, err := p.Recv(th); err != nil || v != 42 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}
