package supervise

import (
	"errors"
	"time"

	"repro/internal/core"
)

// ErrDeadline is the value a WithDeadline event yields — and the error
// SyncWithDeadline and bounded callers return — when the deadline wins.
var ErrDeadline = errors.New("supervise: deadline exceeded")

// WithDeadline bounds evt: the returned event becomes ready when evt
// does (yielding evt's value) or once d has elapsed from sync time,
// yielding ErrDeadline as the value. Because the timer is a first-class
// event (core.After), the deadline composes under further Choice/Wrap
// and, in deterministic mode, fires only when the virtual clock is
// advanced. The deadline starts at sync time, per After's guard.
func WithDeadline(rt *core.Runtime, evt core.Event, d time.Duration) core.Event {
	return core.Choice(
		evt,
		core.Wrap(core.After(rt, d), func(core.Value) core.Value { return ErrDeadline }),
	)
}

// SyncWithDeadline syncs on evt bounded by d and folds the deadline into
// the error return: (nil, ErrDeadline) if the timer won, otherwise evt's
// value. Callers whose events can legitimately yield ErrDeadline should
// use WithDeadline directly.
func SyncWithDeadline(th *core.Thread, evt core.Event, d time.Duration) (core.Value, error) {
	v, err := core.Sync(th, WithDeadline(th.Runtime(), evt, d))
	if err != nil {
		return nil, err
	}
	if e, ok := v.(error); ok && errors.Is(e, ErrDeadline) {
		return nil, ErrDeadline
	}
	return v, nil
}

// RetryPolicy bounds a Retry loop.
type RetryPolicy struct {
	// MaxAttempts caps the attempts. 0 means the default (3); negative
	// means retry forever.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt up to MaxDelay. 0 means the default (10ms); negative means
	// no delay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 1s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	} else if p.BaseDelay < 0 {
		p.BaseDelay = 0
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// Delay returns the backoff slept after failed attempt n (1-based):
// BaseDelay·2^(n-1), capped at MaxDelay. Exposed so tests can check the
// arithmetic a deterministic run must replay bit-identically.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Retry runs fn until it returns nil or the policy is exhausted, sleeping
// the exponential backoff between attempts via core.Sleep (so the delays
// are virtual-clock alarms in deterministic mode). It returns fn's last
// error, or the sleep's error if the thread was broken mid-backoff.
func Retry(th *core.Thread, p RetryPolicy, fn func(attempt int) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(attempt); err == nil {
			return nil
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return err
		}
		if d := p.Delay(attempt); d > 0 {
			if serr := core.Sleep(th, d); serr != nil {
				return serr
			}
		}
	}
}
