package supervise_test

import (
	"testing"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	rt.SetPanicHandler(func(*core.Thread, *core.ThreadPanicError) {})
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// park blocks its thread at a safe point until killed.
func park(x *core.Thread) { _, _ = core.Sync(x, core.Never()) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func fastOpts() supervise.Options {
	return supervise.Options{
		MaxRestarts: -1,
		Window:      time.Minute,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}
}

func TestPermanentChildRestartsAfterKill(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		restarts := make(chan int, 16)
		opts := fastOpts()
		opts.OnRestart = func(_ string, n int) { restarts <- n }
		sup := supervise.New(th, opts)
		defer sup.Stop()
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Permanent, Start: park})

		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		first := sup.ChildThread("svc")
		first.Kill()

		select {
		case <-restarts:
		case <-time.After(5 * time.Second):
			t.Fatal("no restart after kill")
		}
		waitFor(t, "second incarnation", func() bool {
			cur := sup.ChildThread("svc")
			return cur != nil && cur != first
		})
		if sup.Incarnations("svc") < 2 {
			t.Fatalf("incarnations = %d, want >= 2", sup.Incarnations("svc"))
		}
	})
}

func TestPermanentChildRestartsAfterNormalReturn(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		defer sup.Stop()
		ran := make(chan struct{}, 16)
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Permanent, Start: func(x *core.Thread) {
			ran <- struct{}{}
		}})
		// A permanent child is restarted even after returning normally.
		for i := 0; i < 3; i++ {
			select {
			case <-ran:
			case <-time.After(5 * time.Second):
				t.Fatalf("incarnation %d never ran", i)
			}
		}
	})
}

func TestTransientChildNotRestartedAfterNormalReturn(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		defer sup.Stop()
		done := make(chan struct{})
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Transient, Start: func(x *core.Thread) {
			close(done)
		}})
		<-done
		time.Sleep(20 * time.Millisecond) // would be plenty for a 1ms-backoff restart
		if n := sup.Incarnations("svc"); n != 1 {
			t.Fatalf("incarnations = %d, want 1 (transient, normal exit)", n)
		}
		if n := sup.Restarts(); n != 0 {
			t.Fatalf("restarts = %d, want 0", n)
		}
	})
}

func TestTransientChildRestartedAfterKill(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		defer sup.Stop()
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Transient, Start: park})
		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		sup.ChildThread("svc").Kill()
		waitFor(t, "restart after abnormal exit", func() bool { return sup.Incarnations("svc") >= 2 })
	})
}

func TestTransientChildRestartedAfterPanic(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		defer sup.Stop()
		first := true
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Transient, Start: func(x *core.Thread) {
			if first {
				first = false
				panic("boom")
			}
			park(x)
		}})
		waitFor(t, "restart after panic", func() bool { return sup.Incarnations("svc") >= 2 })
	})
}

func TestTemporaryChildNeverRestarted(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		defer sup.Stop()
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Temporary, Start: park})
		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		sup.ChildThread("svc").Kill()
		waitFor(t, "incarnation reaped", func() bool { return sup.ChildThread("svc").Done() })
		time.Sleep(20 * time.Millisecond)
		if n := sup.Incarnations("svc"); n != 1 {
			t.Fatalf("incarnations = %d, want 1 (temporary)", n)
		}
	})
}

func TestEscalationShutsDownSupervisor(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		opts := fastOpts()
		opts.MaxRestarts = 2
		sup := supervise.New(th, opts)
		defer sup.Stop()
		// A crash-looping child: every incarnation dies immediately, so the
		// restart intensity blows through MaxRestarts within the window and
		// the supervisor must give up by shutting down its own custodian.
		sup.Start(th, supervise.ChildSpec{Name: "crashloop", Policy: supervise.Permanent, Start: func(x *core.Thread) {
			panic("crash")
		}})
		if _, err := core.Sync(th, sup.DeadEvt()); err != nil {
			t.Fatalf("DeadEvt sync: %v", err)
		}
		if !sup.Escalated() {
			t.Fatal("supervisor dead but not via escalation")
		}
		if !sup.Custodian().Dead() {
			t.Fatal("escalation must shut the supervisor custodian down")
		}
		if n := sup.Restarts(); n != 2 {
			t.Fatalf("restarts before escalation = %d, want 2", n)
		}
	})
}

func TestStopDuringBackoffLeavesNoLiveThreads(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		opts := fastOpts()
		opts.BaseBackoff = time.Hour // park the monitor in backoff
		restarting := make(chan struct{}, 1)
		opts.OnRestart = func(string, int) { restarting <- struct{}{} }
		sup := supervise.New(th, opts)
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Permanent, Start: park})
		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		sup.ChildThread("svc").Kill()
		<-restarting // the monitor is now heading into its 1h backoff sleep

		// A stop while the monitor sleeps in backoff must reap everything:
		// the supervisor's world drains to the single root thread.
		sup.Stop()
		waitFor(t, "threads drained after Stop", func() bool { return rt.LiveThreads() <= 1 })
		if n := sup.Custodian().ManagedThreads(); n != 0 {
			t.Fatalf("supervisor custodian still manages %d threads", n)
		}
	})
}

func TestSupervisorCustodianShutdownStopsRestarting(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sup := supervise.New(th, fastOpts())
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Permanent, Start: park})
		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		// Hammer: shut the custodian down out from under the supervisor,
		// then reap the condemned threads like a GC would.
		sup.Custodian().Shutdown()
		rt.TerminateCondemned()
		waitFor(t, "world drained", func() bool { return rt.LiveThreads() <= 1 })
		n := sup.Incarnations("svc")
		time.Sleep(20 * time.Millisecond)
		if got := sup.Incarnations("svc"); got != n {
			t.Fatalf("child still being restarted after custodian shutdown: %d -> %d", n, got)
		}
	})
}
