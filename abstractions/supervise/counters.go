package supervise

import "sync/atomic"

// Package-level transition counters: process-wide totals across every
// supervisor and breaker, complementing the per-instance accessors
// (Supervisor restarts via OnRestart, Breaker.Trips). They feed the
// observability surface the same way the runtime's obs metrics do —
// single atomic adds at each transition, snapshot on demand.
var counters struct {
	restarts    atomic.Int64
	escalations atomic.Int64
	trips       atomic.Int64
	halfOpens   atomic.Int64
	closes      atomic.Int64
}

// CountersSnapshot is a point-in-time copy of the package-wide
// supervision transition counters.
type CountersSnapshot struct {
	Restarts         int64 `json:"restarts"`           // child restarts performed
	Escalations      int64 `json:"escalations"`        // supervisors that gave up
	BreakerTrips     int64 `json:"breaker_trips"`      // breakers tripped open
	BreakerHalfOpens int64 `json:"breaker_half_opens"` // cooldown probes begun
	BreakerCloses    int64 `json:"breaker_closes"`     // breakers recovered closed
}

// Counters returns the package-wide supervision transition totals.
func Counters() CountersSnapshot {
	return CountersSnapshot{
		Restarts:         counters.restarts.Load(),
		Escalations:      counters.escalations.Load(),
		BreakerTrips:     counters.trips.Load(),
		BreakerHalfOpens: counters.halfOpens.Load(),
		BreakerCloses:    counters.closes.Load(),
	}
}
