package supervise_test

import (
	"errors"
	"testing"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
)

func TestRetrySucceedsAfterFailures(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var attempts []int
		err := supervise.Retry(th, supervise.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, func(n int) error {
			attempts = append(attempts, n)
			if n < 3 {
				return errBoom
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Retry: %v", err)
		}
		if len(attempts) != 3 || attempts[2] != 3 {
			t.Fatalf("attempts = %v, want [1 2 3]", attempts)
		}
	})
}

func TestRetryExhaustedReturnsLastError(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		calls := 0
		err := supervise.Retry(th, supervise.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, func(int) error {
			calls++
			return errBoom
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("Retry = %v, want errBoom", err)
		}
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
	})
}

func TestRetryDelayArithmetic(t *testing.T) {
	p := supervise.RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // after attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestWithDeadlineEventWins(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		v, err := supervise.SyncWithDeadline(th, core.Always("hi"), time.Hour)
		if err != nil || v != "hi" {
			t.Fatalf("(%v, %v), want (hi, nil)", v, err)
		}
	})
}

func TestWithDeadlineTimerWins(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		blocked := core.NewChanNamed(rt, "nobody-sends")
		start := time.Now()
		v, err := supervise.SyncWithDeadline(th, blocked.RecvEvt(), 5*time.Millisecond)
		if !errors.Is(err, supervise.ErrDeadline) || v != nil {
			t.Fatalf("(%v, %v), want (nil, ErrDeadline)", v, err)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatal("deadline took far too long")
		}
	})
}

func TestWithDeadlineComposesInChoice(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		blocked := core.NewChanNamed(rt, "nobody-sends")
		// WithDeadline is an ordinary event: it can lose a larger choice.
		v, err := core.Sync(th, core.Choice(
			supervise.WithDeadline(rt, blocked.RecvEvt(), time.Hour),
			core.Always("other"),
		))
		if err != nil || v != "other" {
			t.Fatalf("(%v, %v), want (other, nil)", v, err)
		}
	})
}
