package supervise

import (
	"errors"
	"sync"
	"time"

	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// ErrBreakerOpen is returned by Breaker.Do while the breaker is open (or
// half-open with its probe already outstanding).
var ErrBreakerOpen = errors.New("supervise: circuit breaker open")

// State is a breaker state, for diagnostics.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions configures a Breaker.
type BreakerOptions struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// while closed. Default 3.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before a request may
	// probe (half-open). Default 100ms.
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown == 0 {
		o.Cooldown = 100 * time.Millisecond
	}
	return o
}

// Breaker is a circuit breaker implemented the paper's way: all state —
// closed/open/half-open, the consecutive-failure count, the set of
// outstanding permits — lives in a single manager thread, so transitions
// appear atomic to every client and survive clients being killed
// mid-call. Acquiring a permit is a nack-guarded request/reply (the
// rpcsvc idiom): withdrawal (kill, break, lost choice) reliably excludes
// acceptance, so the manager never counts a permit the client never got.
// A client killed *while holding* a permit is detected through its
// DoneEvt and counted as a failure — the manager needs no cooperation
// from the corpse.
//
// The manager is a resumable service thread: each acquire yokes it to the
// caller (ResumeVia), so the breaker stays serviceable exactly as long as
// some client may run, and suspending every client suspends the breaker
// rather than wedging it in limbo.
//
// Open → half-open is decided lazily, by comparing the runtime clock to
// the trip time when the next request arrives; there is no timer thread,
// so in deterministic mode the transition is driven purely by
// virtual-clock advances.
type Breaker struct {
	rt    *core.Runtime
	reqCh *core.Chan
	mgr   *core.Thread
	opts  BreakerOptions

	mu    sync.Mutex
	state State
	trips int
}

type breakerReq struct {
	reply  *core.Chan
	gaveUp core.Event
	holder *core.Thread
}

// permit is what a granted client holds; reporting the call's outcome on
// resultCh returns it.
type permit struct {
	resultCh *core.Chan
}

type inflight struct {
	p      *permit
	holder *core.Thread
	probe  bool
}

type outcome struct {
	fl *inflight
	ok bool
}

// NewBreaker creates a breaker and spawns its manager thread under th's
// current custodian.
func NewBreaker(th *core.Thread, opts BreakerOptions) *Breaker {
	b := &Breaker{
		rt:    th.Runtime(),
		reqCh: core.NewChanNamed(th.Runtime(), "breaker-acquire"),
		opts:  opts.withDefaults(),
		state: Closed,
	}
	b.mgr = th.Spawn("breaker-manager", b.serve)
	return b
}

// Manager exposes the manager thread for tests and diagnostics.
func (b *Breaker) Manager() *core.Thread { return b.mgr }

// State returns the last state the manager committed. Because open →
// half-open happens lazily at the next request, State may still report
// Open after the cooldown has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) noteState(s State, tripped bool) {
	b.mu.Lock()
	b.state = s
	if tripped {
		b.trips++
	}
	b.mu.Unlock()
	switch {
	case tripped:
		counters.trips.Add(1)
	case s == HalfOpen:
		counters.halfOpens.Add(1)
	case s == Closed:
		counters.closes.Add(1)
	}
}

func (b *Breaker) serve(mgr *core.Thread) {
	var (
		state     = Closed
		failures  int
		reopenAt  time.Time
		inflights []*inflight
		probeOut  bool
	)
	trip := func() {
		state = Open
		probeOut = false
		failures = 0
		reopenAt = b.rt.Now().Add(b.opts.Cooldown)
		b.noteState(Open, true)
	}
	for {
		evts := make([]core.Event, 0, 1+2*len(inflights))
		evts = append(evts, b.reqCh.RecvEvt())
		for _, fl := range inflights {
			fl := fl
			evts = append(evts,
				core.Wrap(fl.p.resultCh.RecvEvt(), func(v core.Value) core.Value { return outcome{fl, v.(bool)} }),
				// A holder that dies without reporting abandoned its call:
				// count it as a failure. Once the result is consumed the
				// inflight leaves this set, so a holder finishing *after*
				// reporting is not double-counted.
				core.Wrap(fl.holder.DoneEvt(), func(core.Value) core.Value { return outcome{fl, false} }),
			)
		}
		v, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		switch x := v.(type) {
		case *breakerReq:
			if state == Open && !b.rt.Now().Before(reopenAt) {
				state = HalfOpen
				b.noteState(HalfOpen, false)
			}
			grant := state == Closed || (state == HalfOpen && !probeOut)
			if !grant {
				b.deliver(mgr, x, ErrBreakerOpen)
				continue
			}
			fl := &inflight{
				p:      &permit{resultCh: core.NewChanNamed(b.rt, "breaker-result")},
				holder: x.holder,
				probe:  state == HalfOpen,
			}
			if b.deliver(mgr, x, fl.p) {
				inflights = append(inflights, fl)
				if fl.probe {
					probeOut = true
				}
			}
		case outcome:
			for i, fl := range inflights {
				if fl == x.fl {
					inflights = append(inflights[:i], inflights[i+1:]...)
					break
				}
			}
			if x.fl.probe {
				probeOut = false
			}
			if x.ok {
				if state == HalfOpen && x.fl.probe {
					state = Closed
					b.noteState(Closed, false)
				}
				if state == Closed {
					failures = 0
				}
			} else {
				switch state {
				case Closed:
					failures++
					if failures >= b.opts.FailureThreshold {
						trip()
					}
				case HalfOpen:
					// The probe failed, or a stale closed-era call failed
					// while probing: back to open for another cooldown.
					trip()
				case Open:
					// Already open; a stale in-flight failure neither
					// extends nor resets the cooldown.
				}
			}
		}
	}
}

// deliver hands v (a permit or ErrBreakerOpen) to the requester, or
// learns that it gave up; the nack makes the two outcomes exclusive, so
// a client killed between sending the request and collecting the reply
// cannot wedge the manager or leak a permit.
func (b *Breaker) deliver(mgr *core.Thread, r *breakerReq, v core.Value) bool {
	for {
		got, err := core.Sync(mgr, core.Choice(
			core.Wrap(r.reply.SendEvt(v), func(core.Value) core.Value { return true }),
			core.Wrap(r.gaveUp, func(core.Value) core.Value { return false }),
		))
		if err == nil {
			return got.(bool)
		}
	}
}

// acquireEvt returns the event that acquires a permit (or learns the
// breaker is open); its value is either a *permit or ErrBreakerOpen.
// Abandoning the event withdraws the request.
func (b *Breaker) acquireEvt() core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(b.mgr, th)
		reply := core.NewChanNamed(b.rt, "breaker-reply")
		return guard.RequestReply(th, b.reqCh, &breakerReq{reply: reply, gaveUp: gaveUp, holder: th}, reply)
	})
}

// Do runs fn under the breaker: it acquires a permit (returning
// ErrBreakerOpen without running fn if the breaker refuses), runs fn, and
// reports the outcome to the manager. A panic in fn is reported as a
// failure before it propagates; a kill needs no reporting — the manager
// observes the holder's DoneEvt and counts the abandonment as a failure.
func (b *Breaker) Do(th *core.Thread, fn func(*core.Thread) error) error {
	v, err := core.Sync(th, b.acquireEvt())
	if err != nil {
		return err
	}
	if e, ok := v.(error); ok {
		return e
	}
	p := v.(*permit)
	report := func(ok bool) {
		for {
			if _, serr := core.Sync(th, p.resultCh.SendEvt(ok)); serr == nil {
				return
			}
		}
	}
	reported := false
	defer func() {
		// Reached only when fn panicked (reported stays false) — a killed
		// thread must not re-enter Sync, and the manager learns of kills
		// through DoneEvt anyway.
		if !reported && !th.Killed() {
			report(false)
		}
	}()
	ferr := fn(th)
	reported = true
	report(ferr == nil)
	return ferr
}
