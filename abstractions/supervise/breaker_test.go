package supervise_test

import (
	"errors"
	"testing"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
)

var errBoom = errors.New("boom")

func fail(*core.Thread) error { return errBoom }
func ok(*core.Thread) error   { return nil }

func TestBreakerPassesThroughWhenClosed(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{})
		if err := b.Do(th, ok); err != nil {
			t.Fatalf("Do(ok): %v", err)
		}
		if err := b.Do(th, fail); !errors.Is(err, errBoom) {
			t.Fatalf("Do(fail) = %v, want the fn's own error", err)
		}
		if b.State() != supervise.Closed {
			t.Fatalf("state = %v, want closed", b.State())
		}
	})
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 2, Cooldown: time.Hour})
		for i := 0; i < 2; i++ {
			if err := b.Do(th, fail); !errors.Is(err, errBoom) {
				t.Fatalf("failure %d: %v", i, err)
			}
		}
		ran := false
		err := b.Do(th, func(*core.Thread) error { ran = true; return nil })
		if !errors.Is(err, supervise.ErrBreakerOpen) {
			t.Fatalf("Do while open = %v, want ErrBreakerOpen", err)
		}
		if ran {
			t.Fatal("fn ran despite open breaker")
		}
		if b.State() != supervise.Open || b.Trips() != 1 {
			t.Fatalf("state=%v trips=%d, want open/1", b.State(), b.Trips())
		}
	})
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 2, Cooldown: time.Hour})
		// fail, succeed, fail, succeed … never two consecutive failures.
		for i := 0; i < 4; i++ {
			_ = b.Do(th, fail)
			if err := b.Do(th, ok); err != nil {
				t.Fatalf("round %d: breaker tripped on non-consecutive failures: %v", i, err)
			}
		}
		if b.Trips() != 0 {
			t.Fatalf("trips = %d, want 0", b.Trips())
		}
	})
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: 5 * time.Millisecond})
		_ = b.Do(th, fail) // trip
		if err := b.Do(th, ok); !errors.Is(err, supervise.ErrBreakerOpen) {
			t.Fatalf("expected fast-fail while open, got %v", err)
		}
		if err := core.Sleep(th, 10*time.Millisecond); err != nil {
			t.Fatalf("sleep: %v", err)
		}
		// First request after the cooldown is the half-open probe; its
		// success closes the breaker.
		if err := b.Do(th, ok); err != nil {
			t.Fatalf("probe after cooldown: %v", err)
		}
		// The manager commits the state transition on its own thread after
		// the result rendezvous, so observe it with a wait.
		waitFor(t, "closed after probe success", func() bool { return b.State() == supervise.Closed })
		if b.Trips() != 1 {
			t.Fatalf("trips = %d, want 1", b.Trips())
		}
	})
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: 5 * time.Millisecond})
		_ = b.Do(th, fail) // trip
		_ = core.Sleep(th, 10*time.Millisecond)
		if err := b.Do(th, fail); !errors.Is(err, errBoom) {
			t.Fatalf("probe: %v", err)
		}
		// The failed probe re-opens for a fresh cooldown.
		if err := b.Do(th, ok); !errors.Is(err, supervise.ErrBreakerOpen) {
			t.Fatalf("after failed probe: %v, want ErrBreakerOpen", err)
		}
		if b.Trips() != 2 {
			t.Fatalf("trips = %d, want 2", b.Trips())
		}
	})
}

func TestBreakerSingleProbeWhileHalfOpen(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: time.Millisecond})
		_ = b.Do(th, fail) // trip
		_ = core.Sleep(th, 5*time.Millisecond)

		probing := make(chan struct{})
		release := core.NewChanNamed(rt, "release")
		probeErr := make(chan error, 1)
		th.Spawn("prober", func(x *core.Thread) {
			probeErr <- b.Do(x, func(x *core.Thread) error {
				close(probing)
				_, _ = core.Sync(x, release.RecvEvt())
				return nil
			})
		})
		<-probing
		// While the probe is outstanding, further requests fast-fail.
		if err := b.Do(th, ok); !errors.Is(err, supervise.ErrBreakerOpen) {
			t.Fatalf("second request during probe: %v, want ErrBreakerOpen", err)
		}
		if _, err := core.Sync(th, release.SendEvt(nil)); err != nil {
			t.Fatalf("release: %v", err)
		}
		if err := <-probeErr; err != nil {
			t.Fatalf("probe: %v", err)
		}
		if err := b.Do(th, ok); err != nil {
			t.Fatalf("after probe success: %v", err)
		}
	})
}

func TestBreakerKilledHolderCountsAsFailure(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: 5 * time.Millisecond})
		holding := make(chan struct{})
		holder := th.Spawn("holder", func(x *core.Thread) {
			_ = b.Do(x, func(x *core.Thread) error {
				close(holding)
				return park2(x)
			})
		})
		<-holding
		// Killing the permit holder mid-call must read as an abandoned
		// (failed) call: the manager sees the holder's DoneEvt and trips.
		holder.Kill()
		waitFor(t, "trip after holder kill", func() bool { return b.Trips() >= 1 })

		// And the breaker recovers: cooldown, probe, closed again.
		waitFor(t, "recovery", func() bool {
			time.Sleep(6 * time.Millisecond)
			return b.Do(th, ok) == nil
		})
	})
}

// park2 parks and pretends to return an error (never reached).
func park2(x *core.Thread) error {
	_, _ = core.Sync(x, core.Never())
	return nil
}

func TestBreakerPanicInFnCountsAsFailure(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: time.Hour})
		panicker := th.Spawn("panicker", func(x *core.Thread) {
			_ = b.Do(x, func(*core.Thread) error { panic("handler exploded") })
		})
		waitFor(t, "panicker done", panicker.Done)
		waitFor(t, "trip after panic", func() bool { return b.Trips() >= 1 })
		if err := b.Do(th, ok); !errors.Is(err, supervise.ErrBreakerOpen) {
			t.Fatalf("after panic: %v, want ErrBreakerOpen", err)
		}
	})
}
