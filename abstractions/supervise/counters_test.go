package supervise_test

import (
	"errors"
	"testing"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
)

// The package-level transition counters are process-wide observability
// (E21); tests assert deltas, not absolutes, so they compose with the
// rest of the suite in any order.

func TestCountersTickOnRestart(t *testing.T) {
	before := supervise.Counters()
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		restarts := make(chan int, 16)
		opts := fastOpts()
		opts.OnRestart = func(_ string, n int) { restarts <- n }
		sup := supervise.New(th, opts)
		defer sup.Stop()
		sup.Start(th, supervise.ChildSpec{Name: "svc", Policy: supervise.Permanent, Start: park})
		waitFor(t, "first incarnation", func() bool { return sup.ChildThread("svc") != nil })
		sup.ChildThread("svc").Kill()
		select {
		case <-restarts:
		case <-time.After(5 * time.Second):
			t.Fatal("no restart after kill")
		}
	})
	after := supervise.Counters()
	if after.Restarts <= before.Restarts {
		t.Fatalf("restart counter did not advance: %d -> %d", before.Restarts, after.Restarts)
	}
}

func TestCountersTickOnBreakerTransitions(t *testing.T) {
	before := supervise.Counters()
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := supervise.NewBreaker(th, supervise.BreakerOptions{FailureThreshold: 1, Cooldown: time.Millisecond})
		if err := b.Do(th, fail); !errors.Is(err, errBoom) {
			t.Fatalf("Do(fail): %v", err)
		}
		if err := core.Sleep(th, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		// Cooldown elapsed: this call is the half-open probe; success
		// closes the breaker again.
		if err := b.Do(th, ok); err != nil {
			t.Fatalf("half-open probe: %v", err)
		}
		// The manager applies the probe's close transition after Do
		// returns; wait for it before tearing the runtime down.
		waitFor(t, "breaker to close", func() bool { return b.State() == supervise.Closed })
	})
	after := supervise.Counters()
	if after.BreakerTrips <= before.BreakerTrips {
		t.Fatalf("trip counter did not advance: %d -> %d", before.BreakerTrips, after.BreakerTrips)
	}
	if after.BreakerHalfOpens <= before.BreakerHalfOpens {
		t.Fatalf("half-open counter did not advance: %d -> %d", before.BreakerHalfOpens, after.BreakerHalfOpens)
	}
	if after.BreakerCloses <= before.BreakerCloses {
		t.Fatalf("close counter did not advance: %d -> %d", before.BreakerCloses, after.BreakerCloses)
	}
}
