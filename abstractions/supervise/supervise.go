// Package supervise is the kill-safe supervision and resilience layer:
// a supervisor that runs each child service under its own sub-custodian
// and restarts it when it dies (by kill, crash, or custodian shutdown),
// plus resilience combinators — WithDeadline, Retry, and a circuit
// Breaker implemented paper-style as a resumable service thread.
//
// The supervisor inherits the paper's custodian discipline rather than
// fighting it: every child incarnation lives under a fresh custodian
// parented by the supervisor's own, so shutting the supervisor's
// custodian down takes the whole tree with it, and escalation (too many
// restarts inside the intensity window) is expressed as exactly that
// shutdown. Monitoring composes from first-class events: an incarnation
// has ended when Choice(child.DoneEvt(), childCust.DeadEvt()) is ready.
//
// All timing goes through core.After/core.Sleep, so under the
// deterministic scheduler (internal/explore) backoff and restart
// scheduling are driven entirely by the virtual clock and replay
// bit-identically.
package supervise

import (
	"sync"
	"time"

	"repro/internal/core"
)

// RestartPolicy says when a child is restarted after an incarnation ends.
type RestartPolicy int

const (
	// Permanent children are always restarted, even after a normal return.
	Permanent RestartPolicy = iota
	// Transient children are restarted only after an abnormal end: a
	// kill, a panic, or their custodian dying out from under them.
	Transient
	// Temporary children are never restarted.
	Temporary
)

func (p RestartPolicy) String() string {
	switch p {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	case Temporary:
		return "temporary"
	}
	return "unknown"
}

// Options configures a Supervisor.
type Options struct {
	// MaxRestarts is the restart-intensity ceiling: if more than this many
	// restarts (across all children) land inside Window, the supervisor
	// escalates by shutting down its own custodian. 0 means the default
	// (3); negative means unlimited.
	MaxRestarts int
	// Window is the sliding restart-intensity window and also the uptime
	// after which a child's backoff resets to BaseBackoff. Default 5s.
	Window time.Duration
	// BaseBackoff is the delay before the first restart of a child; it
	// doubles per consecutive restart up to MaxBackoff. 0 means the
	// default (10ms); negative means no backoff at all.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 1s.
	MaxBackoff time.Duration
	// OnRestart, if set, is called from the monitor thread just before
	// each restart with the child name and the supervisor-wide restart
	// count so far. It must be plain non-blocking Go.
	OnRestart func(name string, restarts int)
}

func (o Options) withDefaults() Options {
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 3
	}
	if o.Window == 0 {
		o.Window = 5 * time.Second
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = 10 * time.Millisecond
	} else if o.BaseBackoff < 0 {
		o.BaseBackoff = 0
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// ChildSpec describes one supervised child service.
type ChildSpec struct {
	Name   string
	Policy RestartPolicy
	// Start is the child body; each incarnation runs it on a fresh thread
	// under a fresh custodian parented by the supervisor's custodian.
	Start func(*core.Thread)
}

// Supervisor restarts child services, one-for-one, under sub-custodians.
type Supervisor struct {
	rt   *core.Runtime
	cust *core.Custodian
	opts Options

	mu         sync.Mutex
	monitors   []*core.Thread
	children   map[string]*childState
	restartLog []time.Time
	restarts   int
	escalated  bool
}

type childState struct {
	th           *core.Thread
	cust         *core.Custodian
	incarnations int
}

// New creates a supervisor whose custodian is a child of th's current
// custodian, so the supervisor tree dies with whoever created it.
func New(th *core.Thread, opts Options) *Supervisor {
	return &Supervisor{
		rt:       th.Runtime(),
		cust:     core.NewCustodian(th.CurrentCustodian()),
		opts:     opts.withDefaults(),
		children: make(map[string]*childState),
	}
}

// Custodian is the supervisor's own custodian; shutting it down stops the
// supervisor and every child.
func (s *Supervisor) Custodian() *core.Custodian { return s.cust }

// DeadEvt is ready once the supervisor's custodian is dead — either an
// explicit Shutdown/Stop or an escalation. Like Custodian.DeadEvt it is
// level-triggered: once ready it stays ready.
func (s *Supervisor) DeadEvt() core.Event { return s.cust.DeadEvt() }

// Restarts returns the supervisor-wide restart count.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Escalated reports whether the supervisor shut itself down because the
// restart intensity exceeded MaxRestarts within Window.
func (s *Supervisor) Escalated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.escalated
}

// ChildThread returns the current incarnation's thread for a child (nil
// before the first incarnation is spawned).
func (s *Supervisor) ChildThread(name string) *core.Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.children[name]; cs != nil {
		return cs.th
	}
	return nil
}

// Incarnations returns how many times a child has been spawned.
func (s *Supervisor) Incarnations(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.children[name]; cs != nil {
		return cs.incarnations
	}
	return 0
}

// Start registers a child and spawns its monitor thread under the
// supervisor's custodian. One monitor per child: one-for-one supervision.
// Must be called from a runtime thread.
func (s *Supervisor) Start(th *core.Thread, spec ChildSpec) {
	var mon *core.Thread
	th.WithCustodian(s.cust, func() {
		mon = th.Spawn("sup-"+spec.Name, func(x *core.Thread) { s.supervise(x, spec) })
	})
	s.mu.Lock()
	s.monitors = append(s.monitors, mon)
	s.mu.Unlock()
}

// Stop shuts the supervisor down and reaps every thread it created —
// monitor threads and current child incarnations — so no goroutine is
// left parked. The custodian shutdown condemns the threads; the kills
// make them unwind without waiting for a TerminateCondemned sweep.
func (s *Supervisor) Stop() {
	s.cust.Shutdown()
	s.mu.Lock()
	ths := append([]*core.Thread(nil), s.monitors...)
	for _, cs := range s.children {
		if cs.th != nil {
			ths = append(ths, cs.th)
		}
	}
	s.mu.Unlock()
	for _, t := range ths {
		t.Kill()
	}
}

// supervise is the per-child monitor loop: spawn an incarnation under a
// fresh sub-custodian, wait for it to end, decide on a restart.
func (s *Supervisor) supervise(mon *core.Thread, spec ChildSpec) {
	backoff := s.opts.BaseBackoff
	for {
		ccust := core.NewCustodian(s.cust)
		if ccust.Dead() {
			return // the supervisor's custodian is already down
		}
		started := s.rt.Now()

		// normal is written by the child after its body returns; the
		// monitor reads it only after the child's DoneEvt commits, so the
		// write happens-before the read.
		var normal bool
		var child *core.Thread
		mon.WithCustodian(ccust, func() {
			child = mon.Spawn(spec.Name, func(x *core.Thread) {
				spec.Start(x)
				normal = true
			})
		})
		s.mu.Lock()
		cs := s.children[spec.Name]
		if cs == nil {
			cs = &childState{}
			s.children[spec.Name] = cs
		}
		cs.th, cs.cust = child, ccust
		cs.incarnations++
		s.mu.Unlock()

		// The incarnation has ended when its thread is done or its
		// custodian has died out from under it (leaving it suspended).
		for {
			if _, err := core.Sync(mon, core.Choice(child.DoneEvt(), ccust.DeadEvt())); err == nil {
				break
			}
		}
		// Tear the incarnation down completely before classifying the
		// exit: reap the custodian, kill the (possibly suspended) thread,
		// and wait for it to finish unwinding so `normal` is settled.
		ccust.Shutdown()
		child.Kill()
		for {
			if _, err := core.Sync(mon, child.DoneEvt()); err == nil {
				break
			}
		}
		abnormal := !normal || child.Err() != nil

		if spec.Policy == Temporary || (spec.Policy == Transient && !abnormal) {
			return
		}

		// Restart-intensity accounting over the sliding window, shared
		// across the supervisor's children.
		now := s.rt.Now()
		s.mu.Lock()
		keep := s.restartLog[:0]
		for _, t := range s.restartLog {
			if now.Sub(t) < s.opts.Window {
				keep = append(keep, t)
			}
		}
		s.restartLog = append(keep, now)
		intensity := len(s.restartLog)
		escalating := s.opts.MaxRestarts >= 0 && intensity > s.opts.MaxRestarts
		if !escalating {
			s.restarts++
			counters.restarts.Add(1)
		}
		total := s.restarts
		s.mu.Unlock()
		if escalating {
			s.escalate()
			return
		}
		if h := s.opts.OnRestart; h != nil {
			h(spec.Name, total)
		}

		// Exponential backoff, reset once an incarnation stayed up long
		// enough to count as healthy. A break during the sleep just cuts
		// the backoff short; the kill/shutdown cases end the monitor at
		// the sleep's safe point instead.
		if now.Sub(started) >= s.opts.Window {
			backoff = s.opts.BaseBackoff
		}
		if backoff > 0 {
			_ = core.Sleep(mon, backoff)
		}
		backoff *= 2
		if backoff > s.opts.MaxBackoff {
			backoff = s.opts.MaxBackoff
		}
	}
}

// escalate shuts down the supervisor's own custodian: every monitor and
// child incarnation is condemned, and DeadEvt observers learn that the
// supervisor has given up. The paper's discipline makes this a single
// primitive operation.
func (s *Supervisor) escalate() {
	s.mu.Lock()
	if !s.escalated {
		counters.escalations.Add(1)
	}
	s.escalated = true
	s.mu.Unlock()
	s.cust.Shutdown()
}
