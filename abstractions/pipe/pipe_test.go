package pipe_test

import (
	"io"
	"testing"
	"time"

	"repro/abstractions/pipe"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		a, b := pipe.NewConnPair(th)
		echoed := make(chan string, 1)
		th.Spawn("peer", func(x *core.Thread) {
			r := b.Reader(x)
			line, err := r.ReadLine()
			if err != nil {
				t.Errorf("peer read: %v", err)
				return
			}
			if _, err := b.WriteString(x, "echo:"+line+"\n"); err != nil {
				t.Errorf("peer write: %v", err)
			}
		})
		if _, err := a.WriteString(th, "hello\n"); err != nil {
			t.Fatal(err)
		}
		th.Spawn("collector", func(x *core.Thread) {
			line, err := a.Reader(x).ReadLine()
			if err == nil {
				echoed <- line
			}
		})
		select {
		case line := <-echoed:
			if line != "echo:hello" {
				t.Fatalf("got %q", line)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("round trip stalled")
		}
	})
}

func TestReadAcrossChunkBoundaries(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		for _, chunk := range []string{"ab", "c\nde", "f\n"} {
			if _, err := s.WriteString(th, chunk); err != nil {
				t.Fatal(err)
			}
		}
		r := pipe.NewReader(th, s)
		if line, err := r.ReadLine(); err != nil || line != "abc" {
			t.Fatalf("(%q, %v)", line, err)
		}
		if line, err := r.ReadLine(); err != nil || line != "def" {
			t.Fatalf("(%q, %v)", line, err)
		}
	})
}

func TestCloseYieldsEOFAfterDrain(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		if _, err := s.WriteString(th, "tail"); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(th); err != nil {
			t.Fatal(err)
		}
		r := pipe.NewReader(th, s)
		buf := make([]byte, 16)
		n, err := r.Read(buf)
		if err != nil || string(buf[:n]) != "tail" {
			t.Fatalf("(%q, %v)", buf[:n], err)
		}
		if _, err := r.Read(buf); err != io.EOF {
			t.Fatalf("err = %v, want io.EOF", err)
		}
		// ReadLine at EOF.
		if _, err := r.ReadLine(); err != io.EOF {
			t.Fatalf("err = %v, want io.EOF", err)
		}
	})
}

func TestPartialReads(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		if _, err := s.WriteString(th, "abcdef"); err != nil {
			t.Fatal(err)
		}
		r := pipe.NewReader(th, s)
		buf := make([]byte, 2)
		var got string
		for len(got) < 6 {
			n, err := r.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			got += string(buf[:n])
		}
		if got != "abcdef" {
			t.Fatalf("got %q", got)
		}
	})
}

// TestStreamSurvivesWriterTermination: the help-system property — internal
// tasks of one side are terminated mid-conversation and the stream keeps
// working for everyone else.
func TestStreamSurvivesWriterTermination(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		c := core.NewCustodian(rt.RootCustodian())
		wrote := make(chan struct{})
		th.WithCustodian(c, func() {
			th.Spawn("doomed-writer", func(x *core.Thread) {
				if _, err := x2write(x, s, "first\n"); err != nil {
					return
				}
				close(wrote)
				for {
					if _, err := x2write(x, s, "noise\n"); err != nil {
						return
					}
					if err := core.Sleep(x, time.Millisecond); err != nil {
						return
					}
				}
			})
		})
		<-wrote
		c.Shutdown() // terminate the writer's task mid-stream
		// The reader still gets everything that was committed, and the
		// stream still accepts new traffic.
		r := pipe.NewReader(th, s)
		if line, err := r.ReadLine(); err != nil || line != "first" {
			t.Fatalf("(%q, %v)", line, err)
		}
		if _, err := s.WriteString(th, "after\n"); err != nil {
			t.Fatal(err)
		}
		for {
			line, err := r.ReadLine()
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if line == "after" {
				return
			}
			if line != "noise" {
				t.Fatalf("unexpected line %q", line)
			}
		}
	})
}

func x2write(x *core.Thread, s *pipe.Stream, str string) (int, error) {
	return s.WriteString(x, str)
}
