// Package pipe implements the socket-like abstraction at the core of the
// DrScheme help system described in Section 2.2 of the paper: a byte
// stream whose core is an asynchronous buffered (kill-safe) queue. The PLT
// web server and the browser run in the same virtual machine and talk
// through a pair of such streams instead of TCP sockets; because the
// underlying queue is kill-safe, terminating browser- or server-internal
// tasks (a cancelled click, an aborted request) cannot wreak havoc with
// the stream.
package pipe

import (
	"errors"
	"io"

	"repro/abstractions/queue"
	"repro/internal/core"
)

// ErrClosed is returned by writes to a closed stream.
var ErrClosed = errors.New("pipe: closed")

// eof is the in-band end-of-stream marker.
type eof struct{}

// Stream is a unidirectional byte stream: any number of writers, any
// number of readers, kill-safe in both directions.
type Stream struct {
	q *queue.Queue[core.Value] // []byte chunks or eof
}

// NewStream creates a byte stream whose queue manager runs under th's
// current custodian.
func NewStream(th *core.Thread) *Stream {
	return &Stream{q: queue.New[core.Value](th)}
}

// Manager exposes the underlying queue's manager thread.
func (s *Stream) Manager() *core.Thread { return s.q.Manager() }

// Write enqueues p (copied); it never blocks except to synchronize with
// the queue manager.
func (s *Stream) Write(th *core.Thread, p []byte) (int, error) {
	buf := make([]byte, len(p))
	copy(buf, p)
	if err := s.q.Send(th, buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteString writes the bytes of str.
func (s *Stream) WriteString(th *core.Thread, str string) (int, error) {
	return s.Write(th, []byte(str))
}

// Close marks end-of-stream; readers see io.EOF after draining buffered
// data. Writes after Close are still accepted by the queue but appear
// after the EOF marker and are never read; callers should stop writing.
func (s *Stream) Close(th *core.Thread) error {
	return s.q.Send(th, eof{})
}

// RecvEvt returns an event yielding the next chunk ([]byte) or eof.
func (s *Stream) recvEvt() core.Event { return s.q.RecvEvt() }

// Conn is a bidirectional connection: a pair of streams.
type Conn struct {
	in  *Stream // what this side reads
	out *Stream // what this side writes
}

// NewConnPair creates two connected endpoints, like a socketpair. Each
// stream's manager runs under th's current custodian and is yoked to every
// user by the queue's kill-safety guard.
func NewConnPair(th *core.Thread) (*Conn, *Conn) {
	a2b := NewStream(th)
	b2a := NewStream(th)
	return &Conn{in: b2a, out: a2b}, &Conn{in: a2b, out: b2a}
}

// Write sends p to the peer.
func (c *Conn) Write(th *core.Thread, p []byte) (int, error) { return c.out.Write(th, p) }

// WriteString sends str to the peer.
func (c *Conn) WriteString(th *core.Thread, s string) (int, error) { return c.out.WriteString(th, s) }

// Close closes the outgoing direction.
func (c *Conn) Close(th *core.Thread) error { return c.out.Close(th) }

// Reader returns a stateful reader of the incoming direction, bound to th.
// Readers are not safe for concurrent use from multiple threads; create
// one per reading thread.
func (c *Conn) Reader(th *core.Thread) *Reader { return NewReader(th, c.in) }

// Reader adapts a Stream to io.Reader for a particular thread, buffering
// partially consumed chunks.
type Reader struct {
	th     *core.Thread
	s      *Stream
	buf    []byte
	sawEOF bool
}

// NewReader creates a reader of s bound to th.
func NewReader(th *core.Thread, s *Stream) *Reader {
	return &Reader{th: th, s: s}
}

// Use rebinds the reader to another thread for subsequent reads. The
// caller is responsible for serializing use across threads.
func (r *Reader) Use(th *core.Thread) { r.th = th }

var _ io.Reader = (*Reader)(nil)

// Read implements io.Reader: it blocks until data or end-of-stream
// arrives. A break signal surfaces as the underlying error. Empty chunks
// are consumed transparently rather than misread as end-of-stream.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 && !r.sawEOF {
		v, err := core.Sync(r.th, r.s.recvEvt())
		if err != nil {
			return 0, err
		}
		switch x := v.(type) {
		case eof:
			r.sawEOF = true
		case []byte:
			r.buf = x
		}
	}
	if len(r.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// ReadLine reads up to and including the next '\n' (or EOF) and returns
// the line without the newline.
func (r *Reader) ReadLine() (string, error) {
	var line []byte
	for {
		for i, b := range r.buf {
			if b == '\n' {
				line = append(line, r.buf[:i]...)
				r.buf = r.buf[i+1:]
				return string(line), nil
			}
		}
		line = append(line, r.buf...)
		r.buf = nil
		if r.sawEOF {
			if len(line) == 0 {
				return "", io.EOF
			}
			return string(line), nil
		}
		v, err := core.Sync(r.th, r.s.recvEvt())
		if err != nil {
			return string(line), err
		}
		switch x := v.(type) {
		case eof:
			r.sawEOF = true
		case []byte:
			r.buf = x
		}
	}
}
