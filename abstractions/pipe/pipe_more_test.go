package pipe_test

import (
	"strings"
	"testing"
	"time"

	"repro/abstractions/pipe"
	"repro/internal/core"
)

// TestWritesAreAtomicChunks: concurrent writers never tear each other's
// chunks — each Write is one queue item.
func TestWritesAreAtomicChunks(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		const writers, lines = 4, 25
		for w := 0; w < writers; w++ {
			w := w
			th.Spawn("writer", func(x *core.Thread) {
				tag := strings.Repeat(string(rune('a'+w)), 8)
				for i := 0; i < lines; i++ {
					if _, err := s.WriteString(x, tag+"\n"); err != nil {
						return
					}
				}
			})
		}
		r := pipe.NewReader(th, s)
		counts := map[string]int{}
		for i := 0; i < writers*lines; i++ {
			line, err := r.ReadLine()
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if len(line) != 8 || strings.Count(line, line[:1]) != 8 {
				t.Fatalf("torn line %q", line)
			}
			counts[line]++
		}
		for tag, n := range counts {
			if n != lines {
				t.Fatalf("tag %q seen %d times, want %d", tag, n, lines)
			}
		}
	})
}

func TestReaderUseRebinds(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		if _, err := s.WriteString(th, "one\ntwo\n"); err != nil {
			t.Fatal(err)
		}
		r := pipe.NewReader(th, s)
		if line, err := r.ReadLine(); err != nil || line != "one" {
			t.Fatalf("(%q, %v)", line, err)
		}
		// Another thread takes over the reader, keeping buffered state.
		got := make(chan string, 1)
		th.Spawn("taker", func(x *core.Thread) {
			r.Use(x)
			if line, err := r.ReadLine(); err == nil {
				got <- line
			}
		})
		select {
		case line := <-got:
			if line != "two" {
				t.Fatalf("got %q", line)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("rebound reader stalled")
		}
	})
}

func TestZeroLengthWriteAndRead(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := pipe.NewStream(th)
		if n, err := s.Write(th, nil); err != nil || n != 0 {
			t.Fatalf("(%d, %v)", n, err)
		}
		if _, err := s.WriteString(th, "x"); err != nil {
			t.Fatal(err)
		}
		r := pipe.NewReader(th, s)
		buf := make([]byte, 4)
		// The empty chunk is consumed transparently; the read returns
		// the next real data.
		n, err := r.Read(buf)
		for n == 0 && err == nil {
			n, err = r.Read(buf)
		}
		if err != nil || string(buf[:n]) != "x" {
			t.Fatalf("(%q, %v)", buf[:n], err)
		}
	})
}

func TestConnPairIsFullDuplex(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		a, b := pipe.NewConnPair(th)
		// Both directions at once.
		th.Spawn("peer", func(x *core.Thread) {
			r := b.Reader(x)
			for {
				line, err := r.ReadLine()
				if err != nil {
					return
				}
				if _, err := b.WriteString(x, "ack:"+line+"\n"); err != nil {
					return
				}
			}
		})
		r := a.Reader(th)
		for i := 0; i < 10; i++ {
			msg := strings.Repeat("x", i+1)
			if _, err := a.WriteString(th, msg+"\n"); err != nil {
				t.Fatal(err)
			}
			line, err := r.ReadLine()
			if err != nil || line != "ack:"+msg {
				t.Fatalf("(%q, %v)", line, err)
			}
		}
	})
}
