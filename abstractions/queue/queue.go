// Package queue implements the paper's running example: an asynchronous
// buffered queue (Figures 5–7 of "Kill-Safe Synchronization Abstractions").
//
// Values sent into the queue are parceled out one-by-one to receivers. A
// send never blocks (except to synchronize access); a receive blocks only
// when the queue is empty. The queue is managed by an internal thread that
// pipes items from an input channel to an output channel, so access to the
// internal item list is implicitly single-threaded.
//
// New returns the kill-safe variant of Figure 7: every operation is guarded
// by ResumeVia(manager, currentThread), which both resumes a suspended
// manager and adds the caller's custodians to the manager's controllers, so
// the manager runs whenever any queue-using thread runs — and stops only
// when every using task has been terminated. NewUnsafe returns the Figure 5
// baseline without the guard, which a custodian shutdown of the creating
// task wedges permanently for all other users.
package queue

import "repro/internal/core"

// Queue is an asynchronous buffered channel of T.
type Queue[T any] struct {
	rt       *core.Runtime
	inCh     *core.Chan
	outCh    *core.Chan
	mgr      *core.Thread
	killSafe bool
}

// New creates a kill-safe queue whose manager thread is controlled, per the
// paper, by the creating thread's current custodian.
func New[T any](th *core.Thread) *Queue[T] {
	return newQueue[T](th, true)
}

// NewUnsafe creates the Figure 5 baseline: thread-safe but not kill-safe.
// It exists so that tests and benchmarks can demonstrate exactly what the
// guard buys.
func NewUnsafe[T any](th *core.Thread) *Queue[T] {
	return newQueue[T](th, false)
}

func newQueue[T any](th *core.Thread, killSafe bool) *Queue[T] {
	rt := th.Runtime()
	q := &Queue[T]{
		rt:       rt,
		inCh:     core.NewChanNamed(rt, "queue-in"),
		outCh:    core.NewChanNamed(rt, "queue-out"),
		killSafe: killSafe,
	}
	q.mgr = th.Spawn("queue-manager", q.serve)
	return q
}

// Manager exposes the manager thread for tests and diagnostics.
func (q *Queue[T]) Manager() *core.Thread { return q.mgr }

// serve is the manager loop: accept a send, or supply a receive, whichever
// is ready; with both enabled, choice picks fairly.
func (q *Queue[T]) serve(mgr *core.Thread) {
	var items []core.Value
	for {
		var ev core.Event
		if len(items) == 0 {
			// Nothing to supply a recv until we accept a send.
			ev = core.Wrap(q.inCh.RecvEvt(), func(v core.Value) core.Value {
				return func() { items = append(items, v) }
			})
		} else {
			head := items[0]
			ev = core.Choice(
				core.Wrap(q.inCh.RecvEvt(), func(v core.Value) core.Value {
					return func() { items = append(items, v) }
				}),
				core.Wrap(q.outCh.SendEvt(head), func(core.Value) core.Value {
					return func() { items = items[1:] }
				}),
			)
		}
		act, err := core.Sync(mgr, ev)
		if err != nil {
			continue // a stray break signal; the manager keeps serving
		}
		act.(func())()
	}
}

// guard makes the manager run whenever the calling thread runs. It is the
// entire difference between Figure 5 and Figure 6.
func (q *Queue[T]) guard(th *core.Thread) {
	if q.killSafe {
		core.ResumeVia(q.mgr, th)
	}
}

// SendEvt returns an event that enqueues v when chosen. The event's value
// is core.Unit.
func (q *Queue[T]) SendEvt(v T) core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		q.guard(th)
		return q.inCh.SendEvt(v)
	})
}

// RecvEvt returns an event that dequeues the item at the head of the queue
// when chosen; the event's value is the item.
func (q *Queue[T]) RecvEvt() core.Event {
	return core.Guard(func(th *core.Thread) core.Event {
		q.guard(th)
		return q.outCh.RecvEvt()
	})
}

// Send enqueues v, blocking only to synchronize with the manager.
func (q *Queue[T]) Send(th *core.Thread, v T) error {
	_, err := core.Sync(th, q.SendEvt(v))
	return err
}

// Recv dequeues the next item, blocking while the queue is empty.
func (q *Queue[T]) Recv(th *core.Thread) (T, error) {
	v, err := core.Sync(th, q.RecvEvt())
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
