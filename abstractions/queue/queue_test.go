package queue_test

import (
	"testing"
	"time"

	"repro/abstractions/queue"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[string](th)
		if err := q.Send(th, "Hello"); err != nil {
			t.Fatal(err)
		}
		if err := q.Send(th, "Bye"); err != nil {
			t.Fatal(err)
		}
		if v, err := q.Recv(th); err != nil || v != "Hello" {
			t.Fatalf("got (%q, %v)", v, err)
		}
		if v, err := q.Recv(th); err != nil || v != "Bye" {
			t.Fatalf("got (%q, %v)", v, err)
		}
	})
}

func TestSendNeverBlocks(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[int](th)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = rt.Run(func(s *core.Thread) {
				for i := 0; i < 1000; i++ {
					if err := q.Send(s, i); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
				}
			})
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("sends blocked")
		}
		for i := 0; i < 1000; i++ {
			v, err := q.Recv(th)
			if err != nil || v != i {
				t.Fatalf("recv %d: got (%v, %v)", i, v, err)
			}
		}
	})
}

func TestRecvBlocksWhenEmpty(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[int](th)
		got := make(chan int, 1)
		th.Spawn("receiver", func(r *core.Thread) {
			v, err := q.Recv(r)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got <- v
		})
		select {
		case <-got:
			t.Fatal("recv completed on empty queue")
		case <-time.After(20 * time.Millisecond):
		}
		if err := q.Send(th, 7); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-got:
			if v != 7 {
				t.Fatalf("got %d", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("recv did not complete after send")
		}
	})
}

func TestManyProducersManyConsumers(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[int](th)
		const producers, perProducer, consumers = 8, 50, 4
		results := make(chan int, producers*perProducer)
		for p := 0; p < producers; p++ {
			p := p
			th.Spawn("producer", func(s *core.Thread) {
				for i := 0; i < perProducer; i++ {
					if err := q.Send(s, p*perProducer+i); err != nil {
						t.Errorf("send: %v", err)
					}
				}
			})
		}
		for c := 0; c < consumers; c++ {
			th.Spawn("consumer", func(r *core.Thread) {
				for {
					v, err := q.Recv(r)
					if err != nil {
						return
					}
					results <- v
				}
			})
		}
		seen := make(map[int]bool)
		for i := 0; i < producers*perProducer; i++ {
			select {
			case v := <-results:
				if seen[v] {
					t.Fatalf("duplicate item %d", v)
				}
				seen[v] = true
			case <-time.After(10 * time.Second):
				t.Fatalf("stalled after %d items", i)
			}
		}
	})
}

// TestUnsafeQueueWedgesAfterCreatorShutdown reproduces the Figure 5 failure:
// t1 (custodian c1) creates the queue and shares it with t2 (custodian c2);
// shutting down c1 suspends the manager, so t2's send gets stuck — and a
// send into a buffered queue should never get stuck.
func TestUnsafeQueueWedgesAfterCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *queue.Queue[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("t1", func(x *core.Thread) {
				share <- queue.NewUnsafe[int](x)
				_ = core.Sleep(x, time.Hour)
			})
		})
		q := <-share
		c1.Shutdown()

		sent := make(chan error, 1)
		th.WithCustodian(c2, func() {
			th.Spawn("t2", func(x *core.Thread) {
				sent <- q.Send(x, 10)
			})
		})
		select {
		case err := <-sent:
			t.Fatalf("send into unsafe queue completed (err=%v) after creator shutdown", err)
		case <-time.After(50 * time.Millisecond):
			// stuck, as the paper predicts
		}
		if !q.Manager().Suspended() {
			t.Fatal("unsafe queue's manager is not suspended")
		}
	})
}

// TestKillSafeQueueSurvivesCreatorShutdown reproduces the Figure 6 fix: the
// ResumeVia guard resumes the manager and adds t2's custodian to it, so the
// queue works for t2 even after c1 is shut down.
func TestKillSafeQueueSurvivesCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *queue.Queue[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("t1", func(x *core.Thread) {
				share <- queue.New[int](x)
				_ = core.Sleep(x, time.Hour)
			})
		})
		q := <-share
		c1.Shutdown()

		got := make(chan int, 1)
		th.WithCustodian(c2, func() {
			th.Spawn("t2", func(x *core.Thread) {
				if err := q.Send(x, 10); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				v, err := q.Recv(x)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				got <- v
			})
		})
		select {
		case v := <-got:
			if v != 10 {
				t.Fatalf("got %d", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("kill-safe queue wedged after creator shutdown")
		}
	})
}

// TestManagerStopsWhenAllUsersDie verifies the no-extra-privilege property:
// after every custodian of every using task is shut down, the manager is
// suspended (and TerminateCondemned reaps it).
func TestManagerStopsWhenAllUsersDie(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *queue.Queue[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("t1", func(x *core.Thread) {
				q := queue.New[int](x)
				share <- q
				_ = q.Send(x, 1)
				_ = core.Sleep(x, time.Hour)
			})
		})
		q := <-share
		used := make(chan struct{})
		th.WithCustodian(c2, func() {
			th.Spawn("t2", func(x *core.Thread) {
				if _, err := q.Recv(x); err != nil {
					return
				}
				close(used)
				_ = core.Sleep(x, time.Hour)
			})
		})
		<-used // t2's guard has yoked the manager to c2

		c1.Shutdown()
		if q.Manager().Suspended() {
			t.Fatal("manager suspended while c2 lives")
		}
		c2.Shutdown()
		if !q.Manager().Suspended() {
			t.Fatal("manager runnable after all user custodians died")
		}
		rt.TerminateCondemned()
		deadline := time.Now().Add(5 * time.Second)
		for !q.Manager().Done() {
			if time.Now().After(deadline) {
				t.Fatal("manager not reaped")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestQueueSuspensionPreservesContents verifies the essence of kill-safety:
// consistency across suspend and resume. Items enqueued before the
// manager's suspension are all delivered, in order, after resurrection.
func TestQueueSuspensionPreservesContents(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *queue.Queue[int], 1)
		th.WithCustodian(c1, func() {
			th.Spawn("t1", func(x *core.Thread) {
				q := queue.New[int](x)
				for i := 0; i < 10; i++ {
					if err := q.Send(x, i); err != nil {
						t.Errorf("send: %v", err)
					}
				}
				share <- q
				_ = core.Sleep(x, time.Hour)
			})
		})
		q := <-share
		c1.Shutdown() // manager "mostly dead" with 10 items inside
		for i := 0; i < 10; i++ {
			v, err := q.Recv(th) // guard resurrects the manager
			if err != nil || v != i {
				t.Fatalf("recv %d: got (%v, %v)", i, v, err)
			}
		}
	})
}

// TestQueueEventsComposeWithChoice exercises the first-class status of
// queue events (Section 6.1): multiplexing two queues with choice.
func TestQueueEventsComposeWithChoice(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		qa := queue.New[string](th)
		qb := queue.New[string](th)
		if err := qb.Send(th, "from-b"); err != nil {
			t.Fatal(err)
		}
		v, err := core.Sync(th, core.Choice(
			core.Wrap(qa.RecvEvt(), func(v core.Value) core.Value { return "a:" + v.(string) }),
			core.Wrap(qb.RecvEvt(), func(v core.Value) core.Value { return "b:" + v.(string) }),
		))
		if err != nil || v != "b:from-b" {
			t.Fatalf("got (%v, %v)", v, err)
		}
		// A queue recv can also lose a choice to a timeout without
		// corrupting the queue.
		v, err = core.Sync(th, core.Choice(
			qa.RecvEvt(),
			core.Wrap(core.After(rt, 5*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("got (%v, %v)", v, err)
		}
		if err := qa.Send(th, "late"); err != nil {
			t.Fatal(err)
		}
		if v, err := qa.Recv(th); err != nil || v != "late" {
			t.Fatalf("queue corrupted by lost choice: (%v, %v)", v, err)
		}
	})
}

// TestKillStorm hammers a kill-safe queue while killing user tasks at
// random; survivors must never wedge, and committed items must be neither
// duplicated nor reordered relative to each producer.
func TestKillStorm(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		q := queue.New[[2]int](th)
		const workers = 6
		custs := make([]*core.Custodian, workers)
		for w := 0; w < workers; w++ {
			w := w
			custs[w] = core.NewCustodian(rt.RootCustodian())
			th.WithCustodian(custs[w], func() {
				th.Spawn("victim-producer", func(x *core.Thread) {
					for i := 0; ; i++ {
						if err := q.Send(x, [2]int{w, i}); err != nil {
							return
						}
					}
				})
			})
		}
		// Consumer owned by the (surviving) main task.
		type rec struct {
			v  [2]int
			ok bool
		}
		out := make(chan rec, 4096)
		th.Spawn("consumer", func(r *core.Thread) {
			for {
				v, err := q.Recv(r)
				out <- rec{v, err == nil}
				if err != nil {
					return
				}
			}
		})
		// Kill producers one by one while consuming.
		lastSeen := map[int]int{}
		killIdx := 0
		deadline := time.Now().Add(10 * time.Second)
		for received := 0; killIdx < workers; received++ {
			if time.Now().After(deadline) {
				t.Fatal("kill storm stalled")
			}
			if received%50 == 49 {
				custs[killIdx].Shutdown()
				killIdx++
			}
			select {
			case r := <-out:
				if !r.ok {
					t.Fatal("consumer recv failed")
				}
				w, i := r.v[0], r.v[1]
				if prev, seen := lastSeen[w]; seen && i <= prev {
					t.Fatalf("producer %d items reordered or duplicated: %d after %d", w, i, prev)
				}
				lastSeen[w] = i
			case <-time.After(5 * time.Second):
				t.Fatal("consumer wedged after kills — queue is not kill-safe")
			}
		}
		rt.TerminateCondemned()
	})
}
