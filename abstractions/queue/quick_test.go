package queue_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/abstractions/queue"
	"repro/internal/core"
)

// Property: the queue is FIFO — for an arbitrary batch of values, receive
// order equals send order.
func TestQuickFIFO(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(vals []int32) bool {
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			q := queue.New[int32](th)
			for _, v := range vals {
				if err := q.Send(th, v); err != nil {
					return
				}
			}
			for _, want := range vals {
				got, err := q.Recv(th)
				if err != nil || got != want {
					return
				}
			}
			q.Manager().Kill()
			ok = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: killing the creator task at an arbitrary point in the send
// sequence never loses, duplicates, or reorders the items whose sends had
// committed; the survivor receives exactly the committed prefix.
func TestQuickKillSafetyPreservesCommittedPrefix(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(vals []int32, killAt uint8) bool {
		if len(vals) == 0 {
			return true
		}
		cut := int(killAt) % (len(vals) + 1)
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			c := core.NewCustodian(rt.RootCustodian())
			handOff := make(chan *queue.Queue[int32], 1)
			sent := make(chan struct{})
			th.WithCustodian(c, func() {
				th.Spawn("creator", func(x *core.Thread) {
					q := queue.New[int32](x)
					handOff <- q
					for _, v := range vals[:cut] {
						if err := q.Send(x, v); err != nil {
							return
						}
					}
					close(sent)
					_ = core.Sleep(x, time.Hour)
				})
			})
			q := <-handOff
			<-sent
			c.Shutdown() // kill the creator after exactly cut sends
			for _, want := range vals[:cut] {
				got, err := q.Recv(th)
				if err != nil || got != want {
					return
				}
			}
			// And the queue remains usable.
			if err := q.Send(th, 7); err != nil {
				return
			}
			got, err := q.Recv(th)
			ok = err == nil && got == 7
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
