package kvtxn

import (
	"sync"

	"repro/internal/core"
)

// Gateway is the cross-runtime door to a store. Under ServeSharded each
// shard is a whole runtime, and runtime primitives must not cross
// runtimes — so the store lives on one runtime and the other shards'
// servlets reach it through a Gateway: a plain-Go queue (mutex-guarded,
// never suspendable, so a killed enqueuer cannot wedge it) feeding a
// manager thread on the store's runtime, with each caller parked on a
// core.External of its *own* runtime — the two legal bridges, Post-from-
// anywhere and Complete-from-anywhere, back to back.
//
// Create the Gateway before the fleet, Bind it from the store-owning
// shard's setup, and hand it to every other shard's Mount. Callers on the
// owning runtime may equally use it (or the Store directly).
//
// Interactive transactions are deliberately not part of the gateway
// surface: a cross-runtime client cannot be death-watched (its DoneEvt is
// unreachable from the store's runtime), so only wholesale operations —
// Get/Put/Delete/Multi, each atomic on the store side — cross the bridge.
type Gateway struct {
	mu       sync.Mutex
	q        []*gwOp
	inflight map[*gwOp]bool
	sem      *core.Semaphore // created at Bind, owned by the store's runtime
	down     bool
}

type gwKind int

const (
	gwGet gwKind = iota
	gwPut
	gwDelete
	gwMulti
	gwStats
)

type gwOp struct {
	kind  gwKind
	key   string
	val   string
	ops   []Op
	reply *core.External // caller-runtime completion cell
}

type gwResult struct {
	val      string
	found    bool
	multi    MultiResult
	counters Counters
	err      error
}

// NewGateway creates an unbound gateway. Operations submitted before
// Bind queue up and are served once the store side attaches.
func NewGateway() *Gateway {
	return &Gateway{inflight: make(map[*gwOp]bool)}
}

// Bind attaches the gateway to a store, spawning the executor manager on
// the store's runtime from th. The gateway registers with th's current
// custodian: when that custodian dies, pending and in-flight operations
// complete with ErrStoreDown instead of wedging their callers.
func (g *Gateway) Bind(th *core.Thread, s *Store) {
	g.mu.Lock()
	g.sem = core.NewSemaphore(s.rt, len(g.q))
	g.mu.Unlock()
	_ = th.CurrentCustodian().Register(gwCloser{g})
	th.Spawn("kvtxn-gw", func(mgr *core.Thread) {
		for {
			if _, err := core.Sync(mgr, g.sem.WaitEvt()); err != nil {
				continue
			}
			op := g.pop()
			if op == nil {
				continue
			}
			mgr.Spawn("kvtxn-gw-op", func(x *core.Thread) {
				g.finish(op, g.exec(x, s, op))
			})
		}
	})
}

func (g *Gateway) pop() *gwOp {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.q) == 0 {
		return nil
	}
	op := g.q[0]
	g.q = g.q[1:]
	g.inflight[op] = true
	return op
}

func (g *Gateway) finish(op *gwOp, res gwResult) {
	g.mu.Lock()
	delete(g.inflight, op)
	g.mu.Unlock()
	op.reply.Complete(res)
}

func (g *Gateway) exec(x *core.Thread, s *Store, op *gwOp) gwResult {
	switch op.kind {
	case gwGet:
		val, found, err := s.Get(x, op.key)
		return gwResult{val: val, found: found, err: err}
	case gwPut:
		return gwResult{err: s.Put(x, op.key, op.val)}
	case gwDelete:
		return gwResult{err: s.Delete(x, op.key)}
	case gwStats:
		return gwResult{counters: s.Counters()}
	}
	multi, err := s.Multi(x, op.ops)
	return gwResult{multi: multi, err: err}
}

// gwCloser is the custodian hook that fails outstanding operations over
// to ErrStoreDown when the store side shuts down.
type gwCloser struct{ g *Gateway }

func (c gwCloser) Close() error {
	g := c.g
	g.mu.Lock()
	g.down = true
	orphans := append(append([]*gwOp(nil), g.q...), keys(g.inflight)...)
	g.q = nil
	g.inflight = make(map[*gwOp]bool)
	g.mu.Unlock()
	for _, op := range orphans {
		op.reply.Complete(gwResult{err: ErrStoreDown})
	}
	return nil
}

func keys(m map[*gwOp]bool) []*gwOp {
	out := make([]*gwOp, 0, len(m))
	for op := range m {
		out = append(out, op)
	}
	return out
}

// do submits one operation and parks the caller on its completion cell.
func (g *Gateway) do(th *core.Thread, op *gwOp) (gwResult, error) {
	op.reply = core.NewExternal(th.Runtime())
	g.mu.Lock()
	if g.down {
		g.mu.Unlock()
		return gwResult{}, ErrStoreDown
	}
	g.q = append(g.q, op)
	sem := g.sem
	g.mu.Unlock()
	if sem != nil {
		sem.Post()
	}
	v, err := core.Sync(th, op.reply.Evt())
	if err != nil {
		// The caller was killed or broken while waiting; the operation
		// proceeds (and completes into the abandoned cell) on the store
		// side — it is atomic there, so no cleanup is owed here.
		return gwResult{}, err
	}
	res := v.(gwResult)
	return res, res.err
}

// Get implements Client across runtimes.
func (g *Gateway) Get(th *core.Thread, key string) (string, bool, error) {
	res, err := g.do(th, &gwOp{kind: gwGet, key: key})
	return res.val, res.found, err
}

// Put implements Client across runtimes.
func (g *Gateway) Put(th *core.Thread, key, val string) error {
	_, err := g.do(th, &gwOp{kind: gwPut, key: key, val: val})
	return err
}

// Delete implements Client across runtimes.
func (g *Gateway) Delete(th *core.Thread, key string) error {
	_, err := g.do(th, &gwOp{kind: gwDelete, key: key})
	return err
}

// Multi implements Client across runtimes.
func (g *Gateway) Multi(th *core.Thread, ops []Op) (MultiResult, error) {
	res, err := g.do(th, &gwOp{kind: gwMulti, ops: ops})
	return res.multi, err
}

// Stats implements Client across runtimes.
func (g *Gateway) Stats(th *core.Thread) (Counters, error) {
	res, err := g.do(th, &gwOp{kind: gwStats})
	return res.counters, err
}
