package kvtxn_test

import (
	"strings"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/web"
)

// dispatch drives the mounted servlet the way a transport would.
func dispatch(th *core.Thread, srv *web.Server, s *web.Session, method, path string, query map[string]string) web.Response {
	if query == nil {
		query = map[string]string{}
	}
	return srv.Dispatch(th, s, &web.Request{Method: method, Path: path, Query: query})
}

func TestServletWireAPI(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		store := kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.OCC, Shards: 4})
		srv := web.NewServer(th)
		kvtxn.Mount(srv, store, "/kv")
		sess := srv.AttachSession(core.NewCustodian(rt.RootCustodian()))

		if r := dispatch(th, srv, sess, "PUT", "/kv", map[string]string{"key": "a", "val": "1"}); r.Status != 200 {
			t.Fatalf("PUT: %+v", r)
		}
		if r := dispatch(th, srv, sess, "GET", "/kv", map[string]string{"key": "a"}); r.Status != 200 || r.Body != "1" {
			t.Fatalf("GET: %+v", r)
		}
		if r := dispatch(th, srv, sess, "GET", "/kv", map[string]string{"key": "nope"}); r.Status != 404 {
			t.Fatalf("GET missing: %+v", r)
		}
		if r := dispatch(th, srv, sess, "DELETE", "/kv", map[string]string{"key": "a"}); r.Status != 200 {
			t.Fatalf("DELETE: %+v", r)
		}

		r := dispatch(th, srv, sess, "GET", "/kv/multi", map[string]string{"ops": "w:x:10,w:y:20,r:x,r:gone"})
		if r.Status != 200 {
			t.Fatalf("multi: %+v", r)
		}
		lines := strings.Split(strings.TrimSpace(r.Body), "\n")
		if lines[0] != "COMMITTED" || lines[1] != "x=10" || lines[2] != "gone!" {
			t.Fatalf("multi body: %q", r.Body)
		}

		if r := dispatch(th, srv, sess, "GET", "/kv/multi", map[string]string{"ops": "zap"}); r.Status != 400 {
			t.Fatalf("bad spec: %+v", r)
		}
		if r := dispatch(th, srv, sess, "GET", "/kv/stats", nil); r.Status != 200 || !strings.Contains(r.Body, "\"commits\"") {
			t.Fatalf("stats: %+v", r)
		}
	})
}

func TestGatewayCrossRuntime(t *testing.T) {
	// The ServeSharded topology in miniature: the store lives on one
	// runtime, a client thread on a second runtime reaches it through the
	// gateway.
	ownerRT := core.NewRuntime()
	defer ownerRT.Shutdown()
	clientRT := core.NewRuntime()
	defer clientRT.Shutdown()

	gw := kvtxn.NewGateway()

	// Enqueue before Bind: the gateway must hold the op until the store
	// side attaches.
	early := make(chan error, 1)
	clientRT.Spawn("early", func(th *core.Thread) {
		early <- gw.Put(th, "pre", "bound")
	})

	ready := make(chan struct{})
	ownerRT.Spawn("owner", func(th *core.Thread) {
		s := kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, Shards: 2})
		gw.Bind(th, s)
		close(ready)
		_ = core.Sleep(th, time.Hour)
	})
	<-ready
	if err := <-early; err != nil {
		t.Fatalf("pre-bind Put: %v", err)
	}

	res := make(chan string, 1)
	clientRT.Spawn("client", func(th *core.Thread) {
		if err := gw.Put(th, "a", "1"); err != nil {
			res <- "put: " + err.Error()
			return
		}
		v, found, err := gw.Get(th, "a")
		if err != nil || !found {
			res <- "get failed"
			return
		}
		m, err := gw.Multi(th, []kvtxn.Op{
			{Kind: kvtxn.OpRead, Key: "pre"},
			{Kind: kvtxn.OpWrite, Key: "b", Val: "2"},
		})
		if err != nil || !m.Committed || m.Reads[0].Val != "bound" {
			res <- "multi failed"
			return
		}
		res <- v
	})
	if got := <-res; got != "1" {
		t.Fatalf("cross-runtime ops: %s", got)
	}
}

func TestGatewayStoreDownFailsOver(t *testing.T) {
	ownerRT := core.NewRuntime()
	defer ownerRT.Shutdown()
	clientRT := core.NewRuntime()
	defer clientRT.Shutdown()

	gw := kvtxn.NewGateway()
	cust := make(chan *core.Custodian, 1)
	ownerRT.Spawn("owner", func(th *core.Thread) {
		c := core.NewCustodian(th.Runtime().RootCustodian())
		th.WithCustodian(c, func() {
			s := kvtxn.NewWith(th, kvtxn.Options{})
			gw.Bind(th, s)
		})
		cust <- c
		_ = core.Sleep(th, time.Hour)
	})
	owner := <-cust

	probe := make(chan error, 1)
	clientRT.Spawn("probe", func(th *core.Thread) {
		probe <- gw.Put(th, "k", "v")
	})
	if err := <-probe; err != nil {
		t.Fatalf("Put while up: %v", err)
	}

	owner.Shutdown()

	after := make(chan error, 1)
	clientRT.Spawn("after", func(th *core.Thread) {
		after <- gw.Put(th, "k", "v2")
	})
	if err := <-after; err != kvtxn.ErrStoreDown {
		t.Fatalf("Put after store death = %v, want ErrStoreDown", err)
	}
}
