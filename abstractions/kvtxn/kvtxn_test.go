package kvtxn_test

import (
	"fmt"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func strategies() []kvtxn.Strategy { return []kvtxn.Strategy{kvtxn.Locking, kvtxn.OCC} }

func TestAutocommitOps(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{Strategy: strat, Shards: 4})
				if err := s.Put(th, "a", "1"); err != nil {
					t.Fatal(err)
				}
				v, found, err := s.Get(th, "a")
				if err != nil || !found || v != "1" {
					t.Fatalf("Get a = %q,%v,%v", v, found, err)
				}
				if err := s.Delete(th, "a"); err != nil {
					t.Fatal(err)
				}
				if _, found, _ := s.Get(th, "a"); found {
					t.Fatal("a survived Delete")
				}
			})
		})
	}
}

func TestTxnCommitMultiShard(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{Strategy: strat, Shards: 4})
				// Spread writes across every shard so the commit exercises
				// the multi-shard finisher path.
				tx, err := s.Begin(th)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 16; i++ {
					_ = tx.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
				}
				if err := tx.Commit(th); err != nil {
					t.Fatalf("Commit: %v", err)
				}
				for i := 0; i < 16; i++ {
					v, found, err := s.Get(th, fmt.Sprintf("k%d", i))
					if err != nil || !found || v != fmt.Sprintf("v%d", i) {
						t.Fatalf("k%d = %q,%v,%v", i, v, found, err)
					}
				}
				audit, err := s.Audit(th)
				if err != nil {
					t.Fatal(err)
				}
				if audit != (kvtxn.Integrity{}) {
					t.Fatalf("audit after commit: %+v", audit)
				}
				if c := s.Counters(); c.Commits != 1 {
					t.Fatalf("commits = %d, want 1", c.Commits)
				}
			})
		})
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{Strategy: strat})
				_ = s.Put(th, "x", "old")
				tx, _ := s.Begin(th)
				_ = tx.Put("x", "new")
				v, found, err := tx.Get(th, "x")
				if err != nil || !found || v != "new" {
					t.Fatalf("read-your-write: %q,%v,%v", v, found, err)
				}
				_ = tx.Delete("x")
				if _, found, _ := tx.Get(th, "x"); found {
					t.Fatal("read-your-delete: still found")
				}
				if err := tx.Abort(th); err != nil {
					t.Fatal(err)
				}
				// Abort left the committed value intact.
				if v, _, _ := s.Get(th, "x"); v != "old" {
					t.Fatalf("after abort x = %q, want old", v)
				}
			})
		})
	}
}

func TestOCCConflictAborts(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.OCC})
		_ = s.Put(th, "x", "0")
		tx, _ := s.Begin(th)
		if _, _, err := tx.Get(th, "x"); err != nil {
			t.Fatal(err)
		}
		// A foreign write between read and commit invalidates the snapshot.
		_ = s.Put(th, "x", "1")
		_ = tx.Put("x", "2")
		if err := tx.Commit(th); err != kvtxn.ErrConflict {
			t.Fatalf("Commit = %v, want ErrConflict", err)
		}
		if v, _, _ := s.Get(th, "x"); v != "1" {
			t.Fatalf("x = %q after conflict abort, want 1", v)
		}
		audit, _ := s.Audit(th)
		if audit != (kvtxn.Integrity{}) {
			t.Fatalf("audit: %+v", audit)
		}
	})
}

func TestLockingConflictTimesOut(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, LockWait: 20 * time.Millisecond})
		_ = s.Put(th, "x", "0")
		holder, _ := s.Begin(th)
		if _, _, err := holder.Get(th, "x"); err != nil { // takes the lock
			t.Fatal(err)
		}
		done := make(chan error, 1)
		th.Spawn("contender", func(x *core.Thread) {
			tx, err := s.Begin(x)
			if err != nil {
				done <- err
				return
			}
			_, _, err = tx.Get(x, "x")
			_ = tx.Abort(x)
			done <- err
		})
		var got error
		waitUntil(t, "contender timeout", func() bool {
			select {
			case got = <-done:
				return true
			default:
				return false
			}
		})
		if got != kvtxn.ErrConflict {
			t.Fatalf("contender Get = %v, want ErrConflict", got)
		}
		if err := holder.Commit(th); err != nil {
			t.Fatal(err)
		}
	})
}

func TestKillMidTxnReleasesLocks(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, Shards: 4})
		_ = s.Put(th, "a", "1")
		_ = s.Put(th, "b", "2")

		locked := make(chan struct{})
		victim := th.Spawn("victim", func(x *core.Thread) {
			tx, err := s.Begin(x)
			if err != nil {
				return
			}
			_, _, _ = tx.Get(x, "a")
			_, _, _ = tx.Get(x, "b")
			_ = tx.Put("a", "evil")
			close(locked)
			_ = core.Sleep(x, time.Hour) // parked holding two locks
		})
		<-locked
		victim.Kill()

		// The death watch releases the locks; a fresh transaction over the
		// same keys must succeed, and the victim's buffered write must not
		// exist.
		waitUntil(t, "locks reclaimed", func() bool {
			var ok bool
			done := make(chan struct{})
			th.Spawn("probe", func(x *core.Thread) {
				defer close(done)
				tx, err := s.Begin(x)
				if err != nil {
					return
				}
				if _, _, err := tx.Get(x, "a"); err != nil {
					_ = tx.Abort(x)
					return
				}
				if _, _, err := tx.Get(x, "b"); err != nil {
					_ = tx.Abort(x)
					return
				}
				ok = tx.Commit(x) == nil
			})
			<-done
			return ok
		})
		if v, _, _ := s.Get(th, "a"); v != "1" {
			t.Fatalf("a = %q after kill-abort, want 1 (no trace)", v)
		}
		waitUntil(t, "registry drained", func() bool {
			audit, err := s.Audit(th)
			return err == nil && audit == kvtxn.Integrity{}
		})
		if c := s.Counters(); c.KillAborts != 1 {
			t.Fatalf("killAborts = %d, want 1", c.KillAborts)
		}
	})
}

func TestKillAfterCommitHandoffStillCommits(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{Strategy: strat, Shards: 4})
				// The victim hands off a multi-shard commit and is killed
				// while (possibly) waiting for the verdict. The store-owned
				// finisher must complete the commit anyway: all 16 keys
				// appear, or — only if the kill outran the hand-off
				// rendezvous itself — none do.
				victim := th.Spawn("victim", func(x *core.Thread) {
					tx, err := s.Begin(x)
					if err != nil {
						return
					}
					for i := 0; i < 16; i++ {
						_ = tx.Put(fmt.Sprintf("k%d", i), "v")
					}
					_ = tx.Commit(x)
				})
				time.Sleep(time.Millisecond)
				victim.Kill()
				waitUntil(t, "victim gone", victim.Done)
				waitUntil(t, "store quiesced", func() bool {
					audit, err := s.Audit(th)
					return err == nil && audit == kvtxn.Integrity{}
				})
				present := 0
				for i := 0; i < 16; i++ {
					if _, found, _ := s.Get(th, fmt.Sprintf("k%d", i)); found {
						present++
					}
				}
				if present != 0 && present != 16 {
					t.Fatalf("half-commit: %d of 16 keys present", present)
				}
			})
		})
	}
}

func TestMultiWholesale(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{Strategy: strat})
				res, err := s.Multi(th, []kvtxn.Op{
					{Kind: kvtxn.OpWrite, Key: "a", Val: "1"},
					{Kind: kvtxn.OpWrite, Key: "b", Val: "2"},
				})
				if err != nil || !res.Committed {
					t.Fatalf("multi write: %+v, %v", res, err)
				}
				res, err = s.Multi(th, []kvtxn.Op{
					{Kind: kvtxn.OpRead, Key: "a"},
					{Kind: kvtxn.OpDelete, Key: "b"},
					{Kind: kvtxn.OpRead, Key: "b"},
				})
				if err != nil || !res.Committed {
					t.Fatalf("multi rmw: %+v, %v", res, err)
				}
				if len(res.Reads) != 2 || res.Reads[0].Val != "1" || res.Reads[1].Found {
					t.Fatalf("reads: %+v", res.Reads)
				}
			})
		})
	}
}

func TestStoreSurvivesCreatorCustodianDeath(t *testing.T) {
	// The kill-safety claim itself: the store's managers were spawned
	// under a custodian that dies, but a user in another custodian keeps
	// them alive via the per-operation ResumeVia guards.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		maker := core.NewCustodian(rt.RootCustodian())
		var s *kvtxn.Store
		made := make(chan struct{})
		th.WithCustodian(maker, func() {
			th.Spawn("maker", func(x *core.Thread) {
				s = kvtxn.NewWith(x, kvtxn.Options{Strategy: kvtxn.Locking})
				close(made)
				_ = core.Sleep(x, time.Hour)
			})
		})
		<-made
		if err := s.Put(th, "pre", "1"); err != nil { // yoke managers to us
			t.Fatal(err)
		}
		maker.Shutdown()
		if err := s.Put(th, "post", "2"); err != nil {
			t.Fatalf("Put after creator custodian death: %v", err)
		}
		if v, _, _ := s.Get(th, "post"); v != "2" {
			t.Fatal("store lost a write after creator custodian death")
		}
	})
}
