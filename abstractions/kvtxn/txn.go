package kvtxn

import (
	"sort"

	"repro/internal/core"
)

// Txn is a client-side transaction handle: a read-set, a buffered
// write-set, and (under Locking) the set of shards where the client holds
// read locks. The handle itself owns no store state — everything durable
// lives behind the shard managers — so a client killed while holding a
// Txn leaves only locks, and those are reclaimed by the transaction
// manager's death watch. A Txn is not safe for concurrent use; it belongs
// to the thread that began it.
type Txn struct {
	s        *Store
	id       uint64
	finished bool

	readSet   map[string]getReply
	readOrder []string
	writeSet  map[string]writeOp
	wOrder    []string
	touched   map[int]bool // locking: shards holding our read locks
}

// Begin starts a transaction owned by th. Under Locking the transaction
// is registered with the transaction manager, which from this moment
// watches th's DoneEvt: killing th at any later instant releases every
// lock the transaction holds. Under OCC there is nothing to register —
// an optimistic transaction owns nothing until commit.
func (s *Store) Begin(th *core.Thread) (*Txn, error) {
	t := &Txn{
		s:        s,
		id:       s.nextTxn.Add(1),
		readSet:  make(map[string]getReply),
		writeSet: make(map[string]writeOp),
		touched:  make(map[int]bool),
	}
	if s.opts.Strategy == Locking {
		if _, err := s.tm.request(th, &txnReq{kind: tmBegin, txn: t.id, client: th}); err != nil {
			return nil, err
		}
	}
	s.begins.Add(1)
	return t, nil
}

// ID exposes the transaction id (for tests pinning commit order).
func (t *Txn) ID() uint64 { return t.id }

// Get reads key within the transaction: the buffered write if one exists,
// the cached earlier read otherwise (repeatable reads), else the store.
// Under Locking the first read of a key acquires its exclusive lock,
// waiting its turn up to LockWait — a timeout reports ErrConflict and the
// caller should Abort. Under OCC the read is an unlocked snapshot whose
// version is validated at commit.
func (t *Txn) Get(th *core.Thread, key string) (string, bool, error) {
	if t.finished {
		return "", false, ErrTxnDone
	}
	if w, ok := t.writeSet[key]; ok {
		if w.del {
			return "", false, nil
		}
		return w.val, true, nil
	}
	if r, ok := t.readSet[key]; ok {
		return r.val, r.found, nil
	}
	t.s.gets.Add(1)
	shard := t.s.ShardOf(key)
	var v core.Value
	var err error
	if t.s.opts.Strategy == Locking {
		v, err = t.s.shardRequest(th, t.s.shards[shard], &shardReq{kind: reqLockGet, txn: t.id, key: key}, t.s.opts.LockWait)
	} else {
		v, err = t.s.shardRequest(th, t.s.shards[shard], &shardReq{kind: reqGet, key: key}, 0)
	}
	if err != nil {
		return "", false, err
	}
	if _, timedOut := v.(lockTimeout); timedOut {
		return "", false, ErrConflict
	}
	r := v.(getReply)
	t.readSet[key] = r
	t.readOrder = append(t.readOrder, key)
	if t.s.opts.Strategy == Locking {
		t.touched[shard] = true
	}
	return r.val, r.found, nil
}

// Put buffers key=val in the write-set; nothing reaches the store until
// Commit.
func (t *Txn) Put(key, val string) error {
	return t.bufferWrite(writeOp{key: key, val: val})
}

// Delete buffers a deletion of key.
func (t *Txn) Delete(key string) error {
	return t.bufferWrite(writeOp{key: key, del: true})
}

func (t *Txn) bufferWrite(w writeOp) error {
	if t.finished {
		return ErrTxnDone
	}
	if _, ok := t.writeSet[w.key]; !ok {
		t.wOrder = append(t.wOrder, w.key)
	}
	t.writeSet[w.key] = w
	return nil
}

// plan groups the transaction's footprint by shard, sorted by shard
// index.
func (t *Txn) plan() []shardPlan {
	byShard := make(map[int]*shardPlan)
	at := func(shard int) *shardPlan {
		p := byShard[shard]
		if p == nil {
			p = &shardPlan{shard: shard}
			byShard[shard] = p
		}
		return p
	}
	if t.s.opts.Strategy == OCC {
		for _, key := range t.readOrder {
			at(t.s.ShardOf(key)).reads = append(at(t.s.ShardOf(key)).reads, readCheck{key: key, ver: t.readSet[key].ver})
		}
	}
	for shard := range t.touched {
		at(shard).touched = true
	}
	for _, key := range t.wOrder {
		at(t.s.ShardOf(key)).writes = append(at(t.s.ShardOf(key)).writes, t.writeSet[key])
	}
	plans := make([]shardPlan, 0, len(byShard))
	for _, p := range byShard {
		plans = append(plans, *p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].shard < plans[j].shard })
	return plans
}

// Commit submits the transaction. Under Locking and multi-shard OCC this
// is a single rendezvous handing the plan to the transaction manager:
// once that rendezvous commits, a store-owned finisher drives the install
// to completion and the client is dispensable — kill it and the
// transaction still commits atomically. Before the rendezvous, the nack
// guarantee withdraws the request and the death watch releases any locks:
// the transaction never happened. ErrConflict means validation or lock
// acquisition failed and nothing was installed.
func (t *Txn) Commit(th *core.Thread) error {
	if t.finished {
		return ErrTxnDone
	}
	t.finished = true
	plan := t.plan()
	if len(plan) == 0 {
		// Empty transaction: nothing to install, but a Locking Begin
		// registered with the transaction manager — retire the entry or
		// it lingers until the owner thread dies (and then miscounts as
		// a kill-abort).
		if t.s.opts.Strategy == Locking {
			t.s.tm.retire(th, t.id)
		}
		t.s.commits.Add(1)
		return nil
	}
	if t.s.opts.Strategy == OCC && len(plan) == 1 {
		// Single-shard fast path: validate + install atomically inside
		// the one shard manager, no transaction-manager round trip.
		p := plan[0]
		v, err := t.s.shardRequest(th, t.s.shards[p.shard], &shardReq{kind: reqOCCCommit, txn: t.id, reads: p.reads, writes: p.writes}, 0)
		if err != nil {
			return err
		}
		if !v.(okReply).ok {
			t.s.aborts.Add(1)
			return ErrConflict
		}
		return nil
	}
	v, err := t.s.tm.request(th, &txnReq{kind: tmCommit, txn: t.id, plan: plan})
	if err != nil {
		return err
	}
	if !v.(okReply).ok {
		return ErrConflict
	}
	return nil
}

// Abort abandons the transaction, releasing any locks it holds.
func (t *Txn) Abort(th *core.Thread) error {
	if t.finished {
		return ErrTxnDone
	}
	t.finished = true
	t.s.aborts.Add(1)
	if t.s.opts.Strategy != Locking {
		return nil // nothing in the store belongs to an uncommitted OCC txn
	}
	_, err := t.s.tm.request(th, &txnReq{kind: tmAbort, txn: t.id})
	return err
}

// OpKind tags a step of a wholesale multi-op transaction.
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite
	OpDelete
)

// Op is one step of a transaction submitted wholesale via Multi — the
// form the wire servlet and the cross-runtime gateway speak.
type Op struct {
	Kind OpKind
	Key  string
	Val  string
}

// ReadResult is the outcome of one OpRead.
type ReadResult struct {
	Key   string
	Val   string
	Found bool
}

// MultiResult reports a Multi execution: reads observed and whether the
// transaction committed (false means a clean conflict abort).
type MultiResult struct {
	Committed bool
	Reads     []ReadResult
}

// Multi runs ops in order inside one transaction and commits. A conflict
// anywhere aborts cleanly and returns Committed=false; other errors
// (kill, runtime shutdown) propagate.
func (s *Store) Multi(th *core.Thread, ops []Op) (MultiResult, error) {
	t, err := s.Begin(th)
	if err != nil {
		return MultiResult{}, err
	}
	var res MultiResult
	for _, op := range ops {
		switch op.Kind {
		case OpRead:
			val, found, err := t.Get(th, op.Key)
			if err == ErrConflict {
				_ = t.Abort(th)
				return MultiResult{}, nil
			}
			if err != nil {
				_ = t.Abort(th)
				return MultiResult{}, err
			}
			res.Reads = append(res.Reads, ReadResult{Key: op.Key, Val: val, Found: found})
		case OpWrite:
			_ = t.Put(op.Key, op.Val)
		case OpDelete:
			_ = t.Delete(op.Key)
		}
	}
	switch err := t.Commit(th); err {
	case nil:
		res.Committed = true
		return res, nil
	case ErrConflict:
		return MultiResult{}, nil
	default:
		return MultiResult{}, err
	}
}
