package kvtxn

import (
	"fmt"

	"repro/internal/core"
)

// tmKind discriminates transaction-manager requests.
type tmKind int

const (
	tmBegin  tmKind = iota // register a locking transaction
	tmCommit               // hand off a commit plan; the manager owns its fate
	tmAbort                // explicit abort: release and retire
	tmRetire               // finisher/aborter: drop the registry entry
	tmAudit                // live-transaction count
)

// shardPlan is a transaction's footprint in one shard, assembled by the
// client at commit time. Plans are sorted by shard index so finishers
// acquire locks in a global order (no finisher/finisher deadlock) and so
// execution is deterministic under the virtual clock.
type shardPlan struct {
	shard   int
	reads   []readCheck // OCC validation entries
	writes  []writeOp
	touched bool // locking: client already holds read locks here
}

// txnReq is one request to the transaction manager.
type txnReq struct {
	kind   tmKind
	txn    uint64
	client *core.Thread // tmBegin: the owner whose death aborts the txn
	plan   []shardPlan  // tmCommit

	out    *core.Chan
	gaveUp core.Event
	res    core.Value
}

// txnRec is the registry entry for one live locking transaction.
type txnRec struct {
	client *core.Thread
	// committing means a finisher or aborter owns the transaction's fate;
	// the registry must not also react to the owner's death. Set in the
	// same manager action that observes the commit/abort/death, so exactly
	// one agent ever acts on a transaction.
	committing bool
}

// txnMgr is the store-wide transaction registry. It watches every live
// transaction owner's DoneEvt and spawns store-owned aborters for the
// dead — the reason a kill can wedge nothing — and it is the only spawner
// of commit finishers, which is the reason a commit, once handed off, is
// all-or-nothing regardless of what happens to the client.
type txnMgr struct {
	store *Store
	th    *core.Thread
	reqCh *core.Chan
}

func newTxnMgr(th *core.Thread, s *Store) *txnMgr {
	tm := &txnMgr{
		store: s,
		reqCh: core.NewChanNamed(s.rt, "kvtxn-tm-req"),
	}
	tm.th = th.Spawn("kvtxn-tm", tm.serve)
	return tm
}

func (tm *txnMgr) serve(mgr *core.Thread) {
	recs := make(map[uint64]*txnRec)
	var order []uint64 // registry iteration order: registration order
	var done []*txnReq

	removeDone := func(r *txnReq) {
		for i, x := range done {
			if x == r {
				done = append(done[:i], done[i+1:]...)
				return
			}
		}
	}
	retire := func(txn uint64) {
		if _, ok := recs[txn]; !ok {
			return
		}
		delete(recs, txn)
		for i, id := range order {
			if id == txn {
				order = append(order[:i], order[i+1:]...)
				return
			}
		}
	}

	handle := func(r *txnReq) {
		switch r.kind {
		case tmBegin:
			// Registered at dequeue: if the client dies before it even
			// receives this reply, the DoneEvt arm below cleans up.
			recs[r.txn] = &txnRec{client: r.client}
			order = append(order, r.txn)
			r.res = okReply{ok: true}
			done = append(done, r)
		case tmCommit:
			// The hand-off. From this action on, the transaction's fate
			// belongs to the finisher; the owner's death is irrelevant.
			if rec := recs[r.txn]; rec != nil {
				rec.committing = true
			}
			if tm.store.opts.Strategy == OCC {
				core.SpawnYoked(mgr, fmt.Sprintf("kvtxn-fin-%d", r.txn), func(fin *core.Thread) {
					tm.finishOCC(fin, r)
				})
			} else {
				core.SpawnYoked(mgr, fmt.Sprintf("kvtxn-fin-%d", r.txn), func(fin *core.Thread) {
					tm.finishLocking(fin, r)
				})
			}
		case tmAbort:
			if rec := recs[r.txn]; rec != nil {
				rec.committing = true
			}
			core.SpawnYoked(mgr, fmt.Sprintf("kvtxn-abort-%d", r.txn), func(ab *core.Thread) {
				tm.releaseEverywhere(ab, r.txn)
				_, _ = core.Sync(ab, core.Choice(r.out.SendEvt(okReply{ok: true}), r.gaveUp))
				tm.retire(ab, r.txn)
			})
		case tmRetire:
			retire(r.txn)
		case tmAudit:
			r.res = len(recs)
			done = append(done, r)
		}
	}

	for {
		evts := []core.Event{
			core.Wrap(tm.reqCh.RecvEvt(), func(v core.Value) core.Value {
				return func() { handle(v.(*txnReq)) }
			}),
		}
		for _, id := range order {
			id, rec := id, recs[id]
			if rec.committing {
				continue
			}
			// The breaker idiom, store-wide: a live transaction whose
			// owner dies is aborted by a store-owned thread. The aborter
			// is yoked to the manager, so it is as kill-safe as the
			// manager itself.
			evts = append(evts, core.Wrap(rec.client.DoneEvt(), func(core.Value) core.Value {
				return func() {
					rec.committing = true
					tm.store.killAborts.Add(1)
					core.SpawnYoked(mgr, fmt.Sprintf("kvtxn-abort-%d", id), func(ab *core.Thread) {
						tm.releaseEverywhere(ab, id)
						tm.retire(ab, id)
					})
				}
			}))
		}
		for _, r := range done {
			r := r
			evts = append(evts, core.Wrap(r.out.SendEvt(r.res), func(core.Value) core.Value {
				return func() { removeDone(r) }
			}))
			if r.gaveUp != nil {
				evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
					return func() { removeDone(r) }
				}))
			}
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// request is the client-side exchange with the transaction manager,
// nack-guarded like every store operation.
func (tm *txnMgr) request(th *core.Thread, req *txnReq) (core.Value, error) {
	ev := core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
		core.ResumeVia(tm.th, g)
		req.gaveUp = nack
		req.out = core.NewChanNamed(tm.store.rt, "kvtxn-tm-reply")
		if _, err := core.Sync(g, tm.reqCh.SendEvt(req)); err != nil {
			g.Break()
			return core.Never()
		}
		return req.out.RecvEvt()
	})
	return core.Sync(th, ev)
}

func (tm *txnMgr) liveCount(th *core.Thread) (int, error) {
	v, err := tm.request(th, &txnReq{kind: tmAudit})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// retire tells the manager to drop the registry entry; a no-op for
// transactions that were never registered (OCC).
func (tm *txnMgr) retire(th *core.Thread, txn uint64) {
	core.ResumeVia(tm.th, th)
	_, _ = core.Sync(th, tm.reqCh.SendEvt(&txnReq{kind: tmRetire, txn: txn}))
}

// releaseEverywhere releases txn's locks and prepare stashes in every
// shard. Used by aborters, which may not know the transaction's footprint
// (the owner died without telling anyone); release is idempotent.
func (tm *txnMgr) releaseEverywhere(th *core.Thread, txn uint64) {
	for _, sh := range tm.store.shards {
		_, _ = tm.store.shardRequest(th, sh, &shardReq{kind: reqRelease, txn: txn}, 0)
	}
}

// finishLocking drives a locking commit: acquire write locks shard by
// shard in sorted order (phase 1), then install and release (phase 2).
// The moment phase 1 completes, every key the transaction read or will
// write is exclusively locked, so the install is serializable; each key
// stays locked until the install request that writes it has been applied
// by its shard manager, so no reader can observe half a commit.
func (tm *txnMgr) finishLocking(fin *core.Thread, req *txnReq) {
	s := tm.store
	ok := true
	for _, p := range req.plan {
		if len(p.writes) == 0 {
			continue
		}
		keys := make([]string, len(p.writes))
		for i, w := range p.writes {
			keys[i] = w.key
		}
		v, err := s.shardRequest(fin, s.shards[p.shard], &shardReq{kind: reqLockKeys, txn: req.txn, keys: keys}, s.opts.LockWait)
		if err != nil {
			return // runtime going down; nothing installed, locks die with it
		}
		if _, timedOut := v.(lockTimeout); timedOut {
			ok = false
			break
		}
	}
	if ok {
		s.commits.Add(1)
		if fn := s.opts.OnCommit; fn != nil {
			fn(req.txn)
		}
		for _, p := range req.plan {
			if len(p.writes) > 0 {
				if _, err := s.shardRequest(fin, s.shards[p.shard], &shardReq{kind: reqInstall, txn: req.txn, writes: p.writes}, 0); err != nil {
					return
				}
			} else if p.touched {
				if _, err := s.shardRequest(fin, s.shards[p.shard], &shardReq{kind: reqRelease, txn: req.txn}, 0); err != nil {
					return
				}
			}
		}
	} else {
		s.aborts.Add(1)
		tm.releaseEverywhere(fin, req.txn)
	}
	_, _ = core.Sync(fin, core.Choice(req.out.SendEvt(okReply{ok: ok}), req.gaveUp))
	tm.retire(fin, req.txn)
}

// finishOCC drives a multi-shard OCC commit: prepare each shard in sorted
// order (validate the read-set, prepare-lock the write-set), then finish
// every shard with the common verdict. Prepare-marks make cross-shard
// installs opaque: any concurrent validator that touches a prepared key
// conflicts instead of seeing one shard new and another old.
func (tm *txnMgr) finishOCC(fin *core.Thread, req *txnReq) {
	s := tm.store
	ok := true
	for _, p := range req.plan {
		v, err := s.shardRequest(fin, s.shards[p.shard], &shardReq{kind: reqOCCPrepare, txn: req.txn, reads: p.reads, writes: p.writes}, 0)
		if err != nil {
			return
		}
		if !v.(okReply).ok {
			ok = false
			break
		}
	}
	for _, p := range req.plan {
		if _, err := s.shardRequest(fin, s.shards[p.shard], &shardReq{kind: reqOCCFinish, txn: req.txn, commitIt: ok}, 0); err != nil {
			return
		}
	}
	if ok {
		s.commits.Add(1)
		if fn := s.opts.OnCommit; fn != nil {
			fn(req.txn)
		}
	} else {
		s.aborts.Add(1)
	}
	_, _ = core.Sync(fin, core.Choice(req.out.SendEvt(okReply{ok: ok}), req.gaveUp))
}
