package kvtxn

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/web"
)

// Client is the store surface the wire servlet speaks: implemented by
// *Store for single-runtime serving and by *Gateway for sharded serving,
// where the store lives on one runtime and the servlet replicas on the
// others reach it cross-runtime.
type Client interface {
	Get(th *core.Thread, key string) (string, bool, error)
	Put(th *core.Thread, key, val string) error
	Delete(th *core.Thread, key string) error
	Multi(th *core.Thread, ops []Op) (MultiResult, error)
	// Stats snapshots the store's operation counters, wherever the store
	// lives (named apart from Store.Counters, which needs no thread).
	Stats(th *core.Thread) (Counters, error)
}

// Mount registers the transactional KV wire API on ws under prefix
// (say "/kv"):
//
//	GET    prefix?key=K            -> 200 "V" | 404
//	PUT    prefix?key=K&val=V      -> 200 "OK" | 409 on lock conflict
//	DELETE prefix?key=K            -> 200 "OK" | 409
//	GET    prefix/multi?ops=SPEC   -> 200, first line COMMITTED|ABORTED,
//	                                  then one "key=val" (or "key!") line
//	                                  per read, in op order
//	GET    prefix/stats            -> 200, counters as JSON
//
// SPEC is comma-separated steps: r:key, w:key:val, d:key. The whole
// transaction is submitted wholesale — begin, ops, commit — so a session
// terminated mid-request can never leave the transaction open: either the
// servlet thread reached Commit's hand-off rendezvous and the store
// finishes the commit, or the death watch aborts it without trace.
func Mount(ws *web.Server, c Client, prefix string) {
	ws.Handle(prefix, func(th *core.Thread, _ *web.Session, req *web.Request) web.Response {
		key := req.Query["key"]
		if key == "" {
			return web.Response{Status: 400, Body: "missing key"}
		}
		switch req.Method {
		case "GET":
			val, found, err := c.Get(th, key)
			if err != nil {
				return errResponse(err)
			}
			if !found {
				return web.Response{Status: 404, Body: "missing"}
			}
			return web.Response{Status: 200, Body: val}
		case "PUT", "POST":
			if err := c.Put(th, key, req.Query["val"]); err != nil {
				return errResponse(err)
			}
			return web.Response{Status: 200, Body: "OK"}
		case "DELETE":
			if err := c.Delete(th, key); err != nil {
				return errResponse(err)
			}
			return web.Response{Status: 200, Body: "OK"}
		}
		return web.Response{Status: 405, Body: "method " + req.Method}
	})

	ws.Handle(prefix+"/multi", func(th *core.Thread, _ *web.Session, req *web.Request) web.Response {
		ops, err := ParseOps(req.Query["ops"])
		if err != nil {
			return web.Response{Status: 400, Body: err.Error()}
		}
		res, err := c.Multi(th, ops)
		if err != nil {
			return errResponse(err)
		}
		var b strings.Builder
		if res.Committed {
			b.WriteString("COMMITTED\n")
		} else {
			b.WriteString("ABORTED conflict\n")
		}
		for _, r := range res.Reads {
			if r.Found {
				fmt.Fprintf(&b, "%s=%s\n", r.Key, r.Val)
			} else {
				fmt.Fprintf(&b, "%s!\n", r.Key)
			}
		}
		return web.Response{Status: 200, Body: b.String()}
	})

	ws.Handle(prefix+"/stats", func(th *core.Thread, _ *web.Session, _ *web.Request) web.Response {
		ctr, err := c.Stats(th)
		if err != nil {
			return errResponse(err)
		}
		out, _ := json.Marshal(ctr)
		return web.Response{Status: 200, Body: string(out)}
	})
}

func errResponse(err error) web.Response {
	switch err {
	case ErrConflict:
		return web.Response{Status: 409, Body: "conflict"}
	case ErrStoreDown:
		return web.Response{Status: 503, Body: "store down"}
	}
	return web.Response{Status: 500, Body: err.Error()}
}

// ParseOps decodes the wire SPEC (r:key, w:key:val, d:key, comma
// separated) into ops. Keys and values therefore must avoid ',' and ':';
// the wire format is for workloads, not arbitrary payloads.
func ParseOps(spec string) ([]Op, error) {
	if spec == "" {
		return nil, fmt.Errorf("empty ops spec")
	}
	var ops []Op
	for _, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(part, ":", 3)
		switch {
		case len(fields) == 2 && fields[0] == "r":
			ops = append(ops, Op{Kind: OpRead, Key: fields[1]})
		case len(fields) == 3 && fields[0] == "w":
			ops = append(ops, Op{Kind: OpWrite, Key: fields[1], Val: fields[2]})
		case len(fields) == 2 && fields[0] == "d":
			ops = append(ops, Op{Kind: OpDelete, Key: fields[1]})
		default:
			return nil, fmt.Errorf("bad op %q", part)
		}
	}
	return ops, nil
}
