package kvtxn

import (
	"fmt"

	"repro/internal/core"
)

// reqKind discriminates shard-manager requests.
type reqKind int

const (
	// Serviced at dequeue time (mutate-then-reply; the sender is either a
	// store-owned finisher that never abandons its reply, or — for reqGet
	// and reqOCCCommit — a client whose desertion after the request
	// rendezvous is semantically "after the operation happened").
	reqGet       reqKind = iota // committed snapshot read
	reqOCCCommit                // single-shard validate + install, atomically
	reqInstall                  // finisher: apply writes, release txn's locks here
	reqRelease                  // aborter/finisher: release txn's locks + prepares
	reqOCCPrepare               // finisher: validate reads, prepare-lock writes
	reqOCCFinish                // finisher: install (or discard) prepared writes
	reqAudit                    // integrity self-report

	// Parked in the wait list until serviceable; the grant mutates only in
	// the reply arm's action, so an abandoned waiter (nack) leaves no
	// trace — the CQS abortable-waiter semantics.
	reqSet      // autocommit write: wait for key to be unlocked
	reqLockGet  // locking txn: acquire exclusive key lock + read
	reqLockKeys // finisher: acquire the txn's write locks in this shard
)

// writeOp is one buffered mutation of a transaction's write-set.
type writeOp struct {
	key string
	val string
	del bool
}

// readCheck is one read-set entry for OCC validation: the version the
// transaction observed (0 = key absent).
type readCheck struct {
	key string
	ver uint64
}

// shardReq is one request to a shard manager. out/gaveUp follow the
// msgqueue request idiom; res carries the reply for dequeue-serviced
// kinds awaiting delivery.
type shardReq struct {
	kind     reqKind
	txn      uint64
	key      string
	val      string
	del      bool
	keys     []string    // reqLockKeys
	reads    []readCheck // occ validation entries owned by this shard
	writes   []writeOp   // reqInstall / reqOCCPrepare
	commitIt bool        // reqOCCFinish: install (true) or discard

	out    *core.Chan
	gaveUp core.Event
	res    core.Value
}

// getReply answers reads; okReply answers grants, installs, and OCC
// verdicts.
type getReply struct {
	val   string
	ver   uint64
	found bool
}

type okReply struct{ ok bool }

// entry is one key's committed state.
type entry struct {
	val string
	ver uint64
}

// shardMgr is one data shard: a manager thread owning a slice of the
// keyspace, its exclusive lock table, and its OCC prepare stashes. All
// state below the thread handle is touched only by the manager, between
// two Syncs — which is exactly what makes installs kill-atomic: a kill
// lands only at a safe point, and the manager's safe points are all in
// its top-level Sync.
type shardMgr struct {
	store *Store
	idx   int
	th    *core.Thread
	reqCh *core.Chan
}

func newShardMgr(th *core.Thread, s *Store, idx int) *shardMgr {
	sh := &shardMgr{
		store: s,
		idx:   idx,
		reqCh: core.NewChanNamed(s.rt, fmt.Sprintf("kvtxn-shard-%d-req", idx)),
	}
	sh.th = th.Spawn(fmt.Sprintf("kvtxn-shard-%d", idx), sh.serve)
	return sh
}

func (sh *shardMgr) serve(mgr *core.Thread) {
	data := make(map[string]*entry)
	locks := make(map[string]uint64)  // key -> holding txn (also OCC prepare-marks)
	held := make(map[uint64][]string) // txn -> keys it locks in this shard
	prep := make(map[uint64][]writeOp)
	var verSeq uint64 // shard-wide monotonic version source
	var wait []*shardReq
	var done []*shardReq

	remove := func(list *[]*shardReq, r *shardReq) {
		for i, x := range *list {
			if x == r {
				*list = append((*list)[:i], (*list)[i+1:]...)
				return
			}
		}
	}

	read := func(key string) getReply {
		if e, ok := data[key]; ok {
			return getReply{val: e.val, ver: e.ver, found: true}
		}
		return getReply{}
	}
	apply := func(writes []writeOp) {
		for _, w := range writes {
			if w.del {
				delete(data, w.key)
				continue
			}
			verSeq++
			data[w.key] = &entry{val: w.val, ver: verSeq}
		}
	}
	lock := func(txn uint64, key string) {
		if locks[key] != txn {
			locks[key] = txn
			held[txn] = append(held[txn], key)
		}
	}
	release := func(txn uint64) {
		for _, k := range held[txn] {
			if locks[k] == txn {
				delete(locks, k)
			}
		}
		delete(held, txn)
		delete(prep, txn)
	}
	curVer := func(key string) uint64 {
		if e, ok := data[key]; ok {
			return e.ver
		}
		return 0
	}
	// validate checks a read-set against current versions. A key that is
	// prepare-locked by *another* transaction also fails: its new value is
	// mid-install somewhere in the store, and accepting the old version
	// here could let a cross-shard reader see shard A after a commit and
	// shard B before it.
	validate := func(txn uint64, reads []readCheck) bool {
		for _, rc := range reads {
			if curVer(rc.key) != rc.ver {
				return false
			}
			if l := locks[rc.key]; l != 0 && l != txn {
				return false
			}
		}
		return true
	}

	// handle services a dequeue-time request and queues its reply.
	handle := func(r *shardReq) {
		switch r.kind {
		case reqGet:
			r.res = read(r.key)
		case reqOCCCommit:
			ok := validate(r.txn, r.reads)
			if ok {
				for _, w := range r.writes {
					if l := locks[w.key]; l != 0 && l != r.txn {
						ok = false
						break
					}
				}
			}
			if ok {
				apply(r.writes)
				sh.store.commits.Add(1)
				if fn := sh.store.opts.OnCommit; fn != nil {
					fn(r.txn)
				}
			}
			r.res = okReply{ok: ok}
		case reqInstall:
			apply(r.writes)
			release(r.txn)
			r.res = okReply{ok: true}
		case reqRelease:
			release(r.txn)
			r.res = okReply{ok: true}
		case reqOCCPrepare:
			ok := validate(r.txn, r.reads)
			if ok {
				for _, w := range r.writes {
					if l := locks[w.key]; l != 0 && l != r.txn {
						ok = false
						break
					}
				}
			}
			if ok {
				for _, w := range r.writes {
					lock(r.txn, w.key)
				}
				prep[r.txn] = r.writes
			}
			r.res = okReply{ok: ok}
		case reqOCCFinish:
			if r.commitIt {
				apply(prep[r.txn])
			}
			release(r.txn)
			r.res = okReply{ok: true}
		case reqAudit:
			r.res = Integrity{
				HeldLocks:    len(locks),
				WaitingReqs:  len(wait),
				PreparedTxns: len(prep),
			}
		}
		done = append(done, r)
	}

	// serviceEvt returns the grant event for a parked request, or nil if
	// it must keep waiting. Reply values are computed here, at arm
	// construction: the manager's state is frozen while it is parked in
	// Sync, and exactly one arm commits per Sync, so the value cannot go
	// stale. Mutations live in the arm's action — after the reply
	// rendezvous commits — so a waiter that gives up (nack) mutates
	// nothing.
	serviceEvt := func(r *shardReq) core.Event {
		switch r.kind {
		case reqSet:
			if locks[r.key] != 0 {
				return nil
			}
			return core.Wrap(r.out.SendEvt(okReply{ok: true}), func(core.Value) core.Value {
				return func() {
					apply([]writeOp{{key: r.key, val: r.val, del: r.del}})
					remove(&wait, r)
				}
			})
		case reqLockGet:
			if l := locks[r.key]; l != 0 && l != r.txn {
				return nil
			}
			return core.Wrap(r.out.SendEvt(read(r.key)), func(core.Value) core.Value {
				return func() {
					lock(r.txn, r.key)
					remove(&wait, r)
				}
			})
		case reqLockKeys:
			for _, k := range r.keys {
				if l := locks[k]; l != 0 && l != r.txn {
					return nil
				}
			}
			return core.Wrap(r.out.SendEvt(okReply{ok: true}), func(core.Value) core.Value {
				return func() {
					for _, k := range r.keys {
						lock(r.txn, k)
					}
					remove(&wait, r)
				}
			})
		}
		return nil
	}

	for {
		evts := []core.Event{
			core.Wrap(sh.reqCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					r := v.(*shardReq)
					if r.kind >= reqSet {
						wait = append(wait, r)
						return
					}
					handle(r)
				}
			}),
		}
		for _, r := range wait {
			r := r
			if ev := serviceEvt(r); ev != nil {
				evts = append(evts, ev)
			}
			if r.gaveUp != nil {
				evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
					return func() { remove(&wait, r) }
				}))
			}
		}
		for _, r := range done {
			r := r
			evts = append(evts, core.Wrap(r.out.SendEvt(r.res), func(core.Value) core.Value {
				return func() { remove(&done, r) }
			}))
			if r.gaveUp != nil {
				evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
					return func() { remove(&done, r) }
				}))
			}
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}
