// Package kvtxn is a sharded in-memory key/value store with multi-key
// transactions, built so that a participant killed at any instant either
// commits atomically or leaves no trace. It is the strongest stress of the
// paper's central claim: a client killed between lock-acquire and commit
// must neither wedge a lock nor leak a half-commit.
//
// The store is a small society of manager threads. Each data shard is one
// manager owning a slice of the keyspace — values, versions, and an
// exclusive per-key lock table. A store-wide transaction manager owns the
// transaction registry and, crucially, the *fate* of every commit: a
// client's Commit is only a rendezvous that hands the write-set to the
// transaction manager, which marks the transaction committing and spawns a
// store-owned finisher thread to drive the two-phase install. Once the
// hand-off rendezvous commits, the client is no longer needed — killing it
// cannot stop the finisher — and before the rendezvous, the client has
// published nothing, so killing it aborts cleanly. There is no instant at
// which a kill yields half a commit.
//
// Locks are abortable in the CQS sense ("A Formally-Verified Framework for
// Fair and Abortable Synchronization"): a kill of a *waiting* lock acquirer
// is an abort of its queue entry, implemented with the paper's
// negative-acknowledgment guarantee — every lock request is wrapped in a
// nack guard, so the shard manager either grants the request or observes
// its abandonment, never both. Locks *held* by a transaction whose owner
// thread dies are reclaimed by the transaction manager, which folds each
// live transaction owner's DoneEvt into its own service choice and spawns
// an aborter to release the dead client's locks (the breaker idiom from
// abstractions/breaker, lifted to multi-shard state).
//
// Two commit strategies are selectable per store:
//
//   - Locking: interactive two-phase locking. Txn.Get eagerly acquires the
//     key's exclusive lock (waiting its turn in the shard's FIFO wait list,
//     with a client-side timeout that converts contention into ErrConflict);
//     writes are buffered; the finisher acquires write locks shard-by-shard
//     in sorted order, installs, and releases.
//   - OCC: Txn.Get is a snapshot read (value + version, no lock); Commit
//     validates the read-set and installs the write-set — atomically inside
//     one shard manager when the transaction touches a single shard, or via
//     a prepare/finish round driven by a finisher when it spans shards,
//     with the lock table doubling as prepare-marks.
//
// All manager threads are kill-safe in the paper's sense: every operation
// guards with ResumeVia, so the managers can execute whenever any of their
// users can, and a custodian shutdown of the store's creator cannot strand
// a client that other custodians still want alive.
package kvtxn

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Strategy selects the commit protocol for a store.
type Strategy int

const (
	// Locking is interactive two-phase locking: reads take exclusive
	// per-key locks as they happen; commit locks the write-set and
	// installs under a store-owned finisher.
	Locking Strategy = iota
	// OCC is optimistic concurrency: reads are unlocked snapshots;
	// commit validates versions and installs, aborting on conflict.
	OCC
)

func (s Strategy) String() string {
	if s == OCC {
		return "occ"
	}
	return "lock"
}

// ParseStrategy maps the sweep-harness spelling back to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "lock", "locking":
		return Locking, nil
	case "occ":
		return OCC, nil
	}
	return 0, fmt.Errorf("kvtxn: unknown strategy %q", s)
}

// Options configures a store.
type Options struct {
	// Shards is the number of data-shard manager threads (default 8).
	Shards int
	// Strategy selects the commit protocol (default Locking).
	Strategy Strategy
	// LockWait bounds how long a client or finisher waits for a
	// contended lock before converting the wait into ErrConflict
	// (default 100ms). In deterministic mode the timeout is a virtual
	// alarm, so the explorer can drive a stuck acquire past it.
	LockWait time.Duration
	// OnCommit, if set, is called with the transaction id on the thread
	// that decides the commit (the shard manager for the OCC single-shard
	// fast path, the finisher otherwise), in commit order per shard. The
	// deterministic replay test uses it to pin commit ordering.
	OnCommit func(txn uint64)
}

// Errors reported by transaction operations.
var (
	// ErrConflict: the operation lost a race — a lock wait timed out, or
	// OCC validation observed a newer version. The transaction is doomed;
	// Abort it and retry.
	ErrConflict = errors.New("kvtxn: conflict")
	// ErrTxnDone: the handle was used after Commit or Abort.
	ErrTxnDone = errors.New("kvtxn: transaction finished")
	// ErrStoreDown: a remote gateway's backing store is gone.
	ErrStoreDown = errors.New("kvtxn: store down")
)

// Counters is a snapshot of the store's operation counters. Reads of a
// live store are per-counter consistent; after quiescence they are exact.
type Counters struct {
	Begins     int64 `json:"begins"`
	Commits    int64 `json:"commits"`
	Aborts     int64 `json:"aborts"`      // explicit aborts + conflicts
	KillAborts int64 `json:"kill_aborts"` // aborts initiated by owner death
	Gets       int64 `json:"gets"`
	Puts       int64 `json:"puts"`
	Deletes    int64 `json:"deletes"`
}

// Integrity is the store's self-audit, gathered by rendezvous with every
// manager: after quiescence all fields must be zero, or a kill has wedged
// a lock or leaked a transaction.
type Integrity struct {
	HeldLocks    int `json:"held_locks"`    // keys currently locked/prepared
	WaitingReqs  int `json:"waiting_reqs"`  // requests parked in shard wait lists
	PreparedTxns int `json:"prepared_txns"` // OCC prepare stashes outstanding
	LiveTxns     int `json:"live_txns"`     // registry entries (locking mode)
}

// Store is a sharded transactional KV store. All methods are safe for
// concurrent use by any threads of the store's runtime; cross-runtime
// callers go through a Gateway.
type Store struct {
	rt     *core.Runtime
	opts   Options
	shards []*shardMgr
	tm     *txnMgr

	nextTxn atomic.Uint64

	begins     atomic.Int64
	commits    atomic.Int64
	aborts     atomic.Int64
	killAborts atomic.Int64
	gets       atomic.Int64
	puts       atomic.Int64
	dels       atomic.Int64
}

// New creates a store with default options, spawning its manager threads
// from th (they start under th's current custodian, and — being guarded —
// survive as long as any user's custodian).
func New(th *core.Thread) *Store { return NewWith(th, Options{}) }

// NewWith creates a store with explicit options.
func NewWith(th *core.Thread, opts Options) *Store {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.LockWait <= 0 {
		opts.LockWait = 100 * time.Millisecond
	}
	s := &Store{rt: th.Runtime(), opts: opts}
	s.shards = make([]*shardMgr, opts.Shards)
	for i := range s.shards {
		s.shards[i] = newShardMgr(th, s, i)
	}
	s.tm = newTxnMgr(th, s)
	return s
}

// Runtime returns the runtime the store's managers live on.
func (s *Store) Runtime() *core.Runtime { return s.rt }

// Strategy reports the store's commit protocol.
func (s *Store) Strategy() Strategy { return s.opts.Strategy }

// NumShards reports the data-shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf reports which data shard owns key; exported so tests and
// explorer scenarios can construct deliberately same- or cross-shard
// keys.
func (s *Store) ShardOf(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Counters snapshots the operation counters.
func (s *Store) Counters() Counters {
	return Counters{
		Begins:     s.begins.Load(),
		Commits:    s.commits.Load(),
		Aborts:     s.aborts.Load(),
		KillAborts: s.killAborts.Load(),
		Gets:       s.gets.Load(),
		Puts:       s.puts.Load(),
		Deletes:    s.dels.Load(),
	}
}

// Stats implements Client on the store itself: a plain atomic snapshot
// (the thread argument exists for the cross-runtime Gateway's sake).
func (s *Store) Stats(_ *core.Thread) (Counters, error) { return s.Counters(), nil }

// Get reads key's committed value (autocommit snapshot read: it never
// blocks on locks, exactly like a transaction-free GET should).
func (s *Store) Get(th *core.Thread, key string) (string, bool, error) {
	s.gets.Add(1)
	sh := s.shards[s.ShardOf(key)]
	v, err := s.shardRequest(th, sh, &shardReq{kind: reqGet, key: key}, 0)
	if err != nil {
		return "", false, err
	}
	r := v.(getReply)
	return r.val, r.found, nil
}

// Put writes key=val as a single-key transaction. Under the Locking
// strategy it respects (waits for) the key's lock; a wait that outlives
// LockWait returns ErrConflict.
func (s *Store) Put(th *core.Thread, key, val string) error {
	s.puts.Add(1)
	return s.autocommitWrite(th, key, val, false)
}

// Delete removes key as a single-key transaction, with Put's locking
// behavior.
func (s *Store) Delete(th *core.Thread, key string) error {
	s.dels.Add(1)
	return s.autocommitWrite(th, key, "", true)
}

func (s *Store) autocommitWrite(th *core.Thread, key, val string, del bool) error {
	sh := s.shards[s.ShardOf(key)]
	v, err := s.shardRequest(th, sh, &shardReq{kind: reqSet, key: key, val: val, del: del}, s.opts.LockWait)
	if err != nil {
		return err
	}
	if _, timedOut := v.(lockTimeout); timedOut {
		return ErrConflict
	}
	return nil
}

// Audit rendezvouses with every shard manager and the transaction manager
// and sums their self-reports. Call after quiescence to assert that kills
// left no wedged locks, parked waiters, prepare stashes, or registry
// entries.
func (s *Store) Audit(th *core.Thread) (Integrity, error) {
	var total Integrity
	for _, sh := range s.shards {
		v, err := s.shardRequest(th, sh, &shardReq{kind: reqAudit}, 0)
		if err != nil {
			return total, err
		}
		r := v.(Integrity)
		total.HeldLocks += r.HeldLocks
		total.WaitingReqs += r.WaitingReqs
		total.PreparedTxns += r.PreparedTxns
	}
	live, err := s.tm.liveCount(th)
	if err != nil {
		return total, err
	}
	total.LiveTxns = live
	return total, nil
}

// lockTimeout is the sentinel a client-side timeout arm yields in place of
// a shard reply.
type lockTimeout struct{}

// shardRequest performs one nack-guarded request/reply exchange with a
// shard manager. If wait > 0, a timeout arm joins the guarded branch as a
// sibling in the outer choice — sibling, not nested: the nack fires iff
// the guarded event is NOT chosen, so a timeout nested inside the guard
// would count as "chosen" and never withdraw the parked request. As a
// sibling, the timeout winning fires the nack, the shard drops the
// waiter (the rendezvous makes service and withdrawal exclusive), and
// the caller sees a lockTimeout sentinel.
func (s *Store) shardRequest(th *core.Thread, sh *shardMgr, req *shardReq, wait time.Duration) (core.Value, error) {
	ev := core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
		core.ResumeVia(sh.th, g)
		req.gaveUp = nack
		req.out = core.NewChanNamed(s.rt, "kvtxn-reply")
		if _, err := core.Sync(g, sh.reqCh.SendEvt(req)); err != nil {
			g.Break()
			return core.Never()
		}
		return req.out.RecvEvt()
	})
	if wait > 0 {
		ev = core.Choice(
			ev,
			core.Wrap(core.After(s.rt, wait), func(core.Value) core.Value { return lockTimeout{} }),
		)
	}
	return core.Sync(th, ev)
}
