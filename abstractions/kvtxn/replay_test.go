package kvtxn_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/explore"
)

// commitOrderScenario is a contended workload whose only observable is
// the store-reported commit order: three workers read-modify-write an
// overlapping chain of counters, so which transaction commits when is
// entirely a function of the schedule.
func commitOrderScenario(strat kvtxn.Strategy, record func(uint64)) explore.Scenario {
	return explore.Scenario{
		Name: "kvtxn-commit-order",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			rt.Spawn("init", func(th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{
					Strategy: strat,
					Shards:   2,
					LockWait: 20 * time.Millisecond,
					OnCommit: record,
				})
				keys := [4]string{"k0", "k1", "k2", "k3"}
				for _, k := range keys {
					// The explorer may fire the lock-wait alarm before an
					// uncontended grant; retry scheduling-noise conflicts.
					for {
						err := s.Put(th, k, "0")
						if err == nil {
							break
						}
						if err != kvtxn.ErrConflict {
							return
						}
					}
				}
				for i := 0; i < 3; i++ {
					i := i
					w := th.Spawn(fmt.Sprintf("worker%d", i), func(x *core.Thread) {
						for attempt := 0; attempt < 20; attempt++ {
							tx, err := s.Begin(x)
							if err != nil {
								return
							}
							a, b := keys[i], keys[i+1]
							av, _, err := tx.Get(x, a)
							if err != nil {
								_ = tx.Abort(x)
								continue
							}
							n, _ := strconv.Atoi(av)
							_ = tx.Put(a, strconv.Itoa(n+1))
							_ = tx.Put(b, strconv.Itoa(n+1))
							if err := tx.Commit(x); err == nil {
								return
							}
						}
					})
					sim.MustFinish(w)
				}
			})
			sim.LimitFaults(0)
		},
	}
}

// TestDeterministicCommitOrderReplay runs the same contended workload on
// the deterministic runtime twice with the same seed and asserts the
// commit order reported by Options.OnCommit is bit-identical: commit
// ordering is a pure function of the schedule, with no hidden real-time
// or map-iteration dependence.
func TestDeterministicCommitOrderReplay(t *testing.T) {
	for _, strat := range []kvtxn.Strategy{kvtxn.Locking, kvtxn.OCC} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			run := func(seed int64) []uint64 {
				var mu sync.Mutex
				var order []uint64
				sc := commitOrderScenario(strat, func(id uint64) {
					mu.Lock()
					order = append(order, id)
					mu.Unlock()
				})
				o := explore.RunOnce(sc, explore.NewRandomPicker(seed, 0), seed, explore.Options{MaxSteps: 5000})
				if o.Status != explore.StatusPass {
					t.Fatalf("seed %d: status=%v err=%v steps=%d", seed, o.Status, o.Err, len(o.Trace.Actions))
				}
				return order
			}
			first := run(7)
			second := run(7)
			if len(first) == 0 {
				t.Fatal("no commits observed")
			}
			if len(first) != len(second) {
				t.Fatalf("commit counts diverge: %v vs %v", first, second)
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("commit order diverges at %d: %v vs %v", i, first, second)
				}
			}
		})
	}
}
