package kvtxn_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/obs"
)

// chaosSeed returns the seed for a randomized chaos run: the value of
// KILLSAFE_CHAOS_SEED if set, a fresh random seed otherwise. The seed is
// always logged so any failure can be reproduced by re-running with the
// env var set to the logged value.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("KILLSAFE_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("KILLSAFE_CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from KILLSAFE_CHAOS_SEED)", n)
		return n
	}
	n := time.Now().UnixNano()
	t.Logf("chaos seed %d (rerun with KILLSAFE_CHAOS_SEED=%d)", n, n)
	return n
}

// transferOnce runs one sum-preserving transfer transaction. It returns
// true if the transfer committed, false on a clean conflict abort, and an
// error only for unexpected failures.
func transferOnce(x *core.Thread, s *kvtxn.Store, src, dst string, amount int) (bool, error) {
	tx, err := s.Begin(x)
	if err != nil {
		return false, err
	}
	readInt := func(key string) (int, bool) {
		v, found, err := tx.Get(x, key)
		if err != nil || !found {
			return 0, false
		}
		n, err := strconv.Atoi(v)
		return n, err == nil
	}
	sv, ok := readInt(src)
	if !ok {
		_ = tx.Abort(x)
		return false, nil
	}
	dv, ok := readInt(dst)
	if !ok {
		_ = tx.Abort(x)
		return false, nil
	}
	_ = tx.Put(src, strconv.Itoa(sv-amount))
	_ = tx.Put(dst, strconv.Itoa(dv+amount))
	switch err := tx.Commit(x); err {
	case nil:
		return true, nil
	case kvtxn.ErrConflict:
		return false, nil
	default:
		return false, err
	}
}

// TestChaosKillStorm hammers a store with transfer workers while a killer
// thread terminates them at random instants, under both commit
// strategies. Invariants: the store audits clean after the storm (zero
// wedged locks, parked waiters, prepare stashes, or registry entries),
// the account sum is exactly preserved (no half-commits, no lost
// transfers), and the observability books balance — every spawned thread
// is accounted as a normal exit or a kill, with nothing left live.
func TestChaosKillStorm(t *testing.T) {
	for _, strat := range []kvtxn.Strategy{kvtxn.Locking, kvtxn.OCC} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			const (
				accounts = 8
				workers  = 10
				kills    = 6
				initial  = 1000
				runFor   = 60 * time.Millisecond
			)
			rng := rand.New(rand.NewSource(chaosSeed(t)))
			// Pre-draw all randomness on the test goroutine so worker and
			// killer threads never share the rng.
			workerSeeds := make([]int64, workers)
			for i := range workerSeeds {
				workerSeeds[i] = rng.Int63()
			}
			victims := make([]int, kills)
			delays := make([]time.Duration, kills)
			for i := range victims {
				victims[i] = rng.Intn(workers)
				delays[i] = time.Duration(1+rng.Intn(8)) * time.Millisecond
			}

			o := obs.New()
			rt := core.NewRuntime()
			o.Attach(rt)
			err := rt.Run(func(th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{
					Strategy: strat,
					Shards:   4,
					LockWait: 5 * time.Millisecond,
				})
				keys := make([]string, accounts)
				for i := range keys {
					keys[i] = fmt.Sprintf("acct%d", i)
					if err := s.Put(th, keys[i], strconv.Itoa(initial)); err != nil {
						t.Errorf("seed %s: %v", keys[i], err)
						return
					}
				}

				var stop atomic.Bool
				ws := make([]*core.Thread, workers)
				for i := 0; i < workers; i++ {
					wr := rand.New(rand.NewSource(workerSeeds[i]))
					ws[i] = th.Spawn(fmt.Sprintf("worker%d", i), func(x *core.Thread) {
						for !stop.Load() {
							src := wr.Intn(accounts)
							dst := wr.Intn(accounts)
							if src == dst {
								dst = (dst + 1) % accounts
							}
							if _, err := transferOnce(x, s, keys[src], keys[dst], 1+wr.Intn(5)); err != nil {
								t.Errorf("worker transfer: %v", err)
								return
							}
						}
					})
				}
				killer := th.Spawn("killer", func(x *core.Thread) {
					for i := 0; i < kills; i++ {
						if core.Sleep(x, delays[i]) != nil {
							return
						}
						ws[victims[i]].Kill()
					}
				})

				_ = core.Sleep(th, runFor)
				stop.Store(true)
				for _, w := range ws {
					_, _ = core.Sync(th, w.DoneEvt())
				}
				_, _ = core.Sync(th, killer.DoneEvt())

				// Death-watch aborters may still be draining; audit until
				// the store reports no trace of any killed participant.
				deadline := time.Now().Add(5 * time.Second)
				for {
					a, err := s.Audit(th)
					if err != nil {
						t.Errorf("audit: %v", err)
						return
					}
					if a == (kvtxn.Integrity{}) {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("store never quiesced: %+v", a)
						return
					}
					_ = core.Sleep(th, time.Millisecond)
				}

				sum := 0
				for _, k := range keys {
					v, found, err := s.Get(th, k)
					if err != nil || !found {
						t.Errorf("read %s after storm: found=%v err=%v", k, found, err)
						return
					}
					n, err := strconv.Atoi(v)
					if err != nil {
						t.Errorf("value %s=%q: %v", k, v, err)
						return
					}
					sum += n
				}
				if sum != accounts*initial {
					t.Errorf("sum = %d, want %d: a kill half-committed or lost a transfer", sum, accounts*initial)
				}
				c := s.Counters()
				t.Logf("commits=%d aborts=%d killAborts=%d", c.Commits, c.Aborts, c.KillAborts)
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			rt.Shutdown()

			snap := o.Snapshot()
			if snap.Spawns != snap.Dones {
				t.Errorf("thread books: spawns=%d dones=%d (leaked threads)", snap.Spawns, snap.Dones)
			}
			if snap.Exits+snap.Kills != snap.Dones {
				t.Errorf("thread books: exits=%d + kills=%d != dones=%d", snap.Exits, snap.Kills, snap.Dones)
			}
			if snap.LiveThreads != 0 {
				t.Errorf("live threads after shutdown: %d", snap.LiveThreads)
			}
		})
	}
}
