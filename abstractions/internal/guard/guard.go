// Package guard holds the shared client-side half of the Concurrent ML
// request/reply idiom used by the kill-safe abstractions: inside a guard,
// send the manager a request over its request channel, then hand the outer
// sync the event that receives the reply on the request's private channel.
package guard

import "repro/internal/core"

// RequestReply sends req over reqCh from inside a guard running on th and
// returns the event that receives the manager's reply from replyCh. If the
// nested send is interrupted by a break, the break is re-posted to the
// thread — so the outer sync raises it — and a never-ready event is
// returned; the manager never became aware of the request, so no cleanup
// is needed (the rendezvous makes withdrawal and acceptance exclusive).
func RequestReply(th *core.Thread, reqCh *core.Chan, req core.Value, replyCh *core.Chan) core.Event {
	if _, err := core.Sync(th, reqCh.SendEvt(req)); err != nil {
		th.Break()
		return core.Never()
	}
	return replyCh.RecvEvt()
}
