package pool_test

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/abstractions/pool"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestAcquireRelease(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		p := pool.New(th, 2)
		if err := p.Acquire(th); err != nil {
			t.Fatal(err)
		}
		if err := p.Acquire(th); err != nil {
			t.Fatal(err)
		}
		if err := p.Release(th); err != nil {
			t.Fatal(err)
		}
		if err := p.Release(th); err != nil {
			t.Fatal(err)
		}
		if err := p.Release(th); err != pool.ErrNotHolder {
			t.Fatalf("over-release: %v, want ErrNotHolder", err)
		}
	})
}

func TestCapacityEnforced(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		p := pool.New(th, 1)
		if err := p.Acquire(th); err != nil {
			t.Fatal(err)
		}
		var got atomic.Bool
		th.Spawn("waiter", func(x *core.Thread) {
			if err := p.Acquire(x); err == nil {
				got.Store(true)
			}
		})
		time.Sleep(10 * time.Millisecond)
		if got.Load() {
			t.Fatal("second acquire succeeded on a capacity-1 pool")
		}
		if err := p.Release(th); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "waiter acquisition", got.Load)
	})
}

func TestMutualExclusion(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		m := pool.NewMutex(th)
		var inside, maxInside, violations atomic.Int64
		done := make(chan struct{}, 8)
		for i := 0; i < 8; i++ {
			th.Spawn("worker", func(x *core.Thread) {
				defer func() { done <- struct{}{} }()
				for j := 0; j < 20; j++ {
					err := m.With(x, func() error {
						n := inside.Add(1)
						if n > maxInside.Load() {
							maxInside.Store(n)
						}
						if n > 1 {
							violations.Add(1)
						}
						_ = x.Yield()
						inside.Add(-1)
						return nil
					})
					if err != nil {
						return
					}
				}
			})
		}
		for i := 0; i < 8; i++ {
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("workers stalled")
			}
		}
		if violations.Load() > 0 {
			t.Fatalf("%d mutual-exclusion violations (max inside %d)",
				violations.Load(), maxInside.Load())
		}
	})
}

// TestTerminatedHolderReleasesToken: the headline property — killing a
// token holder cannot leak pool capacity.
func TestTerminatedHolderReleasesToken(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		m := pool.NewMutex(th)
		acquired := make(chan struct{})
		holder := th.Spawn("holder", func(x *core.Thread) {
			if err := m.Lock(x); err != nil {
				return
			}
			close(acquired)
			_ = core.Sleep(x, time.Hour)
		})
		<-acquired
		holder.Kill()
		// The manager reclaims the token via the holder's done event.
		errCh := make(chan error, 1)
		th.Spawn("next", func(x *core.Thread) { errCh <- m.Lock(x) })
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("lock after holder kill: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("lock not reclaimed from terminated holder")
		}
	})
}

// TestSuspendedHolderKeepsToken: suspension is not termination — a
// mostly-dead holder's token is NOT reclaimed, and resuming the holder
// lets it release normally.
func TestSuspendedHolderKeepsToken(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		m := pool.NewMutex(th)
		c := core.NewCustodian(rt.RootCustodian())
		acquired := make(chan *core.Thread, 1)
		th.WithCustodian(c, func() {
			th.Spawn("holder", func(x *core.Thread) {
				if err := m.Lock(x); err != nil {
					return
				}
				acquired <- x
				_ = core.Sleep(x, 30*time.Millisecond)
				_ = m.Unlock(x)
			})
		})
		holder := <-acquired
		c.Shutdown() // holder suspended, not dead
		var got atomic.Bool
		th.Spawn("waiter", func(x *core.Thread) {
			if err := m.Lock(x); err == nil {
				got.Store(true)
			}
		})
		time.Sleep(20 * time.Millisecond)
		if got.Load() {
			t.Fatal("token reclaimed from a merely suspended holder")
		}
		// Resume the holder: it finishes its sleep and unlocks.
		core.ResumeWith(holder, rt.RootCustodian())
		waitUntil(t, "waiter gets lock after resume", got.Load)
	})
}

func TestAbandonedAcquireWithdraws(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		p := pool.New(th, 1)
		if err := p.Acquire(th); err != nil {
			t.Fatal(err)
		}
		// Lose an acquire to a timeout; the manager must drop the
		// waiter so a later release does not grant to a ghost.
		v, err := core.Sync(th, core.Choice(
			p.AcquireEvt(),
			core.Wrap(core.After(rt, 5*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("(%v, %v)", v, err)
		}
		if err := p.Release(th); err != nil {
			t.Fatal(err)
		}
		// The token is available for a real acquirer.
		if err := p.Acquire(th); err != nil {
			t.Fatal(err)
		}
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		share := make(chan *pool.Pool, 1)
		th.WithCustodian(c, func() {
			th.Spawn("creator", func(x *core.Thread) {
				share <- pool.New(x, 2)
				_ = core.Sleep(x, time.Hour)
			})
		})
		p := <-share
		c.Shutdown()
		if err := p.Acquire(th); err != nil {
			t.Fatalf("acquire after creator shutdown: %v", err)
		}
		if err := p.Release(th); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: token conservation — after arbitrary interleavings of k
// acquisitions and releases plus terminated holders, the number of
// grantable tokens returns to capacity.
func TestQuickTokenConservation(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(capRaw, holdersRaw uint8) bool {
		capacity := int(capRaw%3) + 1
		holders := int(holdersRaw % 6)
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			p := pool.New(th, capacity)
			// Spawn holders that acquire and are then killed.
			done := make(chan *core.Thread, holders)
			for i := 0; i < holders; i++ {
				t := th.Spawn("holder", func(x *core.Thread) {
					if err := p.Acquire(x); err != nil {
						return
					}
					_ = core.Sleep(x, time.Hour)
				})
				done <- t
			}
			time.Sleep(5 * time.Millisecond)
			for i := 0; i < holders; i++ {
				(<-done).Kill()
			}
			// All capacity must be reacquirable.
			for i := 0; i < capacity; i++ {
				errCh := make(chan error, 1)
				th.Spawn("reacquire", func(x *core.Thread) { errCh <- p.Acquire(x) })
				select {
				case err := <-errCh:
					if err != nil {
						return
					}
				case <-time.After(5 * time.Second):
					return
				}
			}
			p.Manager().Kill()
			ok = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
