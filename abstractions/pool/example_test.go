package pool_test

import (
	"fmt"
	"time"

	"repro/abstractions/pool"
	"repro/internal/core"
)

// A kill-safe mutex releases automatically when its holder is terminated:
// termination cannot leak the lock.
func ExampleMutex() {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *core.Thread) {
		m := pool.NewMutex(th)
		locked := make(chan struct{})
		holder := th.Spawn("holder", func(x *core.Thread) {
			_ = m.Lock(x)
			close(locked)
			_ = core.Sleep(x, time.Hour) // never unlocks
		})
		<-locked
		holder.Kill()

		if err := m.Lock(th); err == nil {
			fmt.Println("lock reclaimed from terminated holder")
		}
	})
	// Output: lock reclaimed from terminated holder
}
