// Package pool implements a kill-safe resource pool: n tokens, acquired
// and released through a manager thread. It showcases a capability that
// falls out of the paper's machinery but none of its figures spell out:
// because the manager can sync on a holder thread's done event, a token
// whose holder is *terminated* is reclaimed automatically — termination
// cannot leak pool capacity — while a holder that is merely suspended
// (custodian down, possibly to be resumed) keeps its token, exactly
// matching the paper's distinction between mostly dead and all dead.
//
// A Mutex is the capacity-1 pool.
package pool

import (
	"errors"

	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// ErrNotHolder is returned by Release when the calling thread does not
// hold a token.
var ErrNotHolder = errors.New("pool: calling thread holds no token")

// Pool is a kill-safe pool of n identical tokens.
type Pool struct {
	rt    *core.Runtime
	reqCh *core.Chan // *acquireReq
	relCh *core.Chan // *releaseReq
	mgr   *core.Thread
	cap   int
}

type acquireReq struct {
	th     *core.Thread // the would-be holder
	reply  *core.Chan
	gaveUp core.Event
}

type releaseReq struct {
	th    *core.Thread
	reply *core.Chan // error or nil
}

// New creates a pool with n tokens (at least 1), managed by a thread
// under the creating thread's current custodian.
func New(th *core.Thread, n int) *Pool {
	if n < 1 {
		n = 1
	}
	rt := th.Runtime()
	p := &Pool{
		rt:    rt,
		reqCh: core.NewChanNamed(rt, "pool-acquire"),
		relCh: core.NewChanNamed(rt, "pool-release"),
		cap:   n,
	}
	p.mgr = th.Spawn("pool-manager", p.serve)
	return p
}

// Manager exposes the manager thread for tests and diagnostics.
func (p *Pool) Manager() *core.Thread { return p.mgr }

// Cap returns the pool's capacity.
func (p *Pool) Cap() int { return p.cap }

func (p *Pool) serve(mgr *core.Thread) {
	free := p.cap
	holders := map[*core.Thread]int{} // thread -> tokens held
	var waiting []*acquireReq

	removeWaiter := func(r *acquireReq) {
		for i, x := range waiting {
			if x == r {
				waiting = append(waiting[:i], waiting[i+1:]...)
				return
			}
		}
	}
	grant := func(r *acquireReq) core.Event {
		return core.Wrap(r.reply.SendEvt(nil), func(core.Value) core.Value {
			return func() {
				free--
				holders[r.th]++
				removeWaiter(r)
			}
		})
	}

	for {
		evts := []core.Event{
			core.Wrap(p.reqCh.RecvEvt(), func(v core.Value) core.Value {
				return func() { waiting = append(waiting, v.(*acquireReq)) }
			}),
			core.Wrap(p.relCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					r := v.(*releaseReq)
					var res core.Value
					if holders[r.th] == 0 {
						res = ErrNotHolder
					} else {
						holders[r.th]--
						if holders[r.th] == 0 {
							delete(holders, r.th)
						}
						free++
					}
					core.SpawnYoked(mgr, "pool-reply", func(d *core.Thread) {
						_, _ = core.Sync(d, r.reply.SendEvt(res))
					})
				}
			}),
		}
		// Reclaim tokens from terminated holders. Suspension is not
		// termination: a mostly-dead holder keeps its token.
		for h, n := range holders {
			h, n := h, n
			evts = append(evts, core.Wrap(h.DoneEvt(), func(core.Value) core.Value {
				return func() {
					delete(holders, h)
					free += n
				}
			}))
		}
		if free > 0 {
			for _, r := range waiting {
				evts = append(evts, grant(r))
			}
		}
		// Drop acquirers that gave up (lost a choice, broke, or died).
		for _, r := range waiting {
			r := r
			evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
				return func() { removeWaiter(r) }
			}))
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// AcquireEvt returns an event that obtains a token for the syncing
// thread when one is available.
func (p *Pool) AcquireEvt() core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(p.mgr, th)
		reply := core.NewChanNamed(p.rt, "pool-grant")
		return guard.RequestReply(th, p.reqCh, &acquireReq{th: th, reply: reply, gaveUp: gaveUp}, reply)
	})
}

// Acquire blocks until the calling thread obtains a token.
func (p *Pool) Acquire(th *core.Thread) error {
	_, err := core.Sync(th, p.AcquireEvt())
	return err
}

// Release returns one of the calling thread's tokens to the pool. It
// returns ErrNotHolder if the thread holds none.
func (p *Pool) Release(th *core.Thread) error {
	core.ResumeVia(p.mgr, th)
	reply := core.NewChanNamed(p.rt, "pool-release-reply")
	if _, err := core.Sync(th, p.relCh.SendEvt(&releaseReq{th: th, reply: reply})); err != nil {
		return err
	}
	res, err := core.Sync(th, reply.RecvEvt())
	if err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	return res.(error)
}

// With acquires a token, runs fn, and releases the token even if fn
// panics.
func (p *Pool) With(th *core.Thread, fn func() error) error {
	if err := p.Acquire(th); err != nil {
		return err
	}
	defer func() { _ = p.Release(th) }()
	return fn()
}

// Mutex is a kill-safe mutual-exclusion lock: a capacity-1 Pool. A lock
// whose holder is terminated is released automatically; a lock whose
// holder is merely suspended stays held until the holder is resumed or
// finally collected.
type Mutex struct {
	p *Pool
}

// NewMutex creates a kill-safe mutex.
func NewMutex(th *core.Thread) *Mutex { return &Mutex{p: New(th, 1)} }

// Manager exposes the manager thread for tests and diagnostics.
func (m *Mutex) Manager() *core.Thread { return m.p.Manager() }

// LockEvt returns an event that locks the mutex for the syncing thread.
func (m *Mutex) LockEvt() core.Event { return m.p.AcquireEvt() }

// Lock blocks until the calling thread holds the mutex.
func (m *Mutex) Lock(th *core.Thread) error { return m.p.Acquire(th) }

// Unlock releases the mutex; ErrNotHolder if the thread does not hold it.
func (m *Mutex) Unlock(th *core.Thread) error { return m.p.Release(th) }

// With runs fn while holding the mutex.
func (m *Mutex) With(th *core.Thread, fn func() error) error { return m.p.With(th, fn) }
