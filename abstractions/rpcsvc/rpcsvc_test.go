package rpcsvc_test

import (
	"testing"
	"time"

	"repro/abstractions/rpcsvc"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func double(_ *core.Thread, v int) int { return v * 2 }

func TestBasicCall(t *testing.T) {
	for _, opts := range []rpcsvc.Options{{}, {PerCallThreads: true}} {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			svc := rpcsvc.NewWith(th, double, opts)
			v, err := svc.Call(th, 21)
			if err != nil || v != 42 {
				t.Fatalf("opts=%+v: (%v, %v)", opts, v, err)
			}
		})
	}
}

func TestConcurrentCalls(t *testing.T) {
	for _, opts := range []rpcsvc.Options{{}, {PerCallThreads: true}} {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			svc := rpcsvc.NewWith(th, double, opts)
			results := make(chan [2]int, 20)
			for i := 0; i < 20; i++ {
				i := i
				th.Spawn("caller", func(x *core.Thread) {
					v, err := svc.Call(x, i)
					if err != nil {
						t.Errorf("call %d: %v", i, err)
						return
					}
					results <- [2]int{i, v}
				})
			}
			for n := 0; n < 20; n++ {
				select {
				case r := <-results:
					if r[1] != r[0]*2 {
						t.Fatalf("call %d returned %d", r[0], r[1])
					}
				case <-time.After(10 * time.Second):
					t.Fatal("calls stalled")
				}
			}
		})
	}
}

func TestAbandonedCallWithdraws(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		slow := func(x *core.Thread, v int) int {
			_ = core.Sleep(x, 30*time.Millisecond)
			return v
		}
		svc := rpcsvc.New(th, slow)
		// Lose the call to a timeout: withdrawal must not corrupt the
		// service.
		v, err := core.Sync(th, core.Choice(
			svc.CallEvt(1),
			core.Wrap(core.After(rt, time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("(%v, %v)", v, err)
		}
		// The service still answers.
		if v, err := svc.Call(th, 5); err != nil || v != 5 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestHostileCallWedgesInlineService(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		hostile := func(x *core.Thread, v int) int {
			if v < 0 {
				_ = core.Sleep(x, time.Hour) // blocks the manager
			}
			return v
		}
		svc := rpcsvc.New(th, hostile)
		th.Spawn("attacker", func(x *core.Thread) {
			_, _ = svc.Call(x, -1)
		})
		time.Sleep(10 * time.Millisecond)
		done := make(chan int, 1)
		th.Spawn("victim", func(x *core.Thread) {
			if v, err := svc.Call(x, 7); err == nil {
				done <- v
			}
		})
		select {
		case <-done:
			t.Fatal("inline service served a call while the handler was blocked")
		case <-time.After(50 * time.Millisecond):
			// wedged, as expected for the inline discipline
		}
	})
}

func TestHostileCallCannotWedgeRemoteService(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		hostile := func(x *core.Thread, v int) int {
			if v < 0 {
				_ = core.Sleep(x, time.Hour)
			}
			return v
		}
		svc := rpcsvc.NewWith(th, hostile, rpcsvc.Options{PerCallThreads: true})
		attackerCust := core.NewCustodian(rt.RootCustodian())
		th.WithCustodian(attackerCust, func() {
			th.Spawn("attacker", func(x *core.Thread) {
				_, _ = svc.Call(x, -1)
			})
		})
		time.Sleep(10 * time.Millisecond)
		if v, err := svc.Call(th, 7); err != nil || v != 7 {
			t.Fatalf("victim call: (%v, %v)", v, err)
		}
		// Terminating the attacker reaps its worker thread.
		attackerCust.Shutdown()
		rt.TerminateCondemned()
	})
}

func TestKilledCallerDoesNotStrandService(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		slow := func(x *core.Thread, v int) int {
			_ = core.Sleep(x, 20*time.Millisecond)
			return v
		}
		svc := rpcsvc.New(th, slow)
		doomed := th.Spawn("doomed", func(x *core.Thread) {
			_, _ = svc.Call(x, 1)
			t.Error("doomed call returned")
		})
		time.Sleep(5 * time.Millisecond)
		doomed.Kill()
		if v, err := svc.Call(th, 9); err != nil || v != 9 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		share := make(chan *rpcsvc.Service[int, int], 1)
		th.WithCustodian(c, func() {
			th.Spawn("creator", func(x *core.Thread) {
				share <- rpcsvc.New(x, double)
				_ = core.Sleep(x, time.Hour)
			})
		})
		svc := <-share
		c.Shutdown()
		if v, err := svc.Call(th, 4); err != nil || v != 8 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}
