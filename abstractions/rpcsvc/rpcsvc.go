// Package rpcsvc implements the kill-safe client–server (remote procedure
// call) pattern that the paper's msg-queue example instantiates: clients
// send requests carrying a private reply channel; a manager thread serves
// them; nack-guarded withdrawal keeps the server's state clean when a
// client abandons a call (loses a choice, is broken, or is terminated).
//
// Two serving disciplines are available, mirroring Section 8.1:
//
//   - Inline (default): the handler runs on the manager thread. Cheap, but
//     the handler is trusted — a handler that blocks forever incapacitates
//     the service. Appropriate when the service owns its handler.
//   - Remote (PerCallThreads): each call runs in a fresh thread under the
//     *client's* custodian, so a call can execute only while its client
//     may, and a hostile workload cannot wedge the manager.
package rpcsvc

import (
	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// Handler computes a reply from a request. With PerCallThreads the thread
// argument is the per-call worker thread; otherwise it is the manager.
type Handler[Req, Resp any] func(*core.Thread, Req) Resp

// Options configures a Service.
type Options struct {
	// PerCallThreads runs each call in a fresh thread under the calling
	// client's custodian.
	PerCallThreads bool
}

// Service is a kill-safe RPC server.
type Service[Req, Resp any] struct {
	rt      *core.Runtime
	callCh  *core.Chan
	mgr     *core.Thread
	handler Handler[Req, Resp]
	opts    Options
}

type call struct {
	req    core.Value
	reply  *core.Chan
	gaveUp core.Event
	cust   *core.Custodian
}

// New creates a service with an inline handler.
func New[Req, Resp any](th *core.Thread, h Handler[Req, Resp]) *Service[Req, Resp] {
	return NewWith(th, h, Options{})
}

// NewWith creates a service with explicit options.
func NewWith[Req, Resp any](th *core.Thread, h Handler[Req, Resp], opts Options) *Service[Req, Resp] {
	rt := th.Runtime()
	s := &Service[Req, Resp]{
		rt:      rt,
		callCh:  core.NewChanNamed(rt, "rpc-call"),
		handler: h,
		opts:    opts,
	}
	s.mgr = th.Spawn("rpc-manager", s.serve)
	return s
}

// Manager exposes the manager thread for tests and diagnostics.
func (s *Service[Req, Resp]) Manager() *core.Thread { return s.mgr }

func (s *Service[Req, Resp]) serve(mgr *core.Thread) {
	for {
		cv, err := core.Sync(mgr, s.callCh.RecvEvt())
		if err != nil {
			continue
		}
		c := cv.(*call)
		if !s.opts.PerCallThreads {
			resp := s.handler(mgr, c.req.(Req))
			deliver(mgr, c, resp)
			continue
		}
		// Remote discipline: the call runs under the client's custodian
		// and delivers its own reply; the manager is immediately free.
		h := s.handler
		mgr.WithCustodian(c.cust, func() {
			mgr.Spawn("rpc-worker", func(w *core.Thread) {
				deliver(w, c, h(w, c.req.(Req)))
			})
		})
	}
}

// deliver sends the reply in a fresh thread yoked to th (so the delivery
// can run exactly when the manager or worker may), abandoning it if the
// client gave up.
func deliver(th *core.Thread, c *call, resp core.Value) {
	core.SpawnYoked(th, "rpc-reply", func(d *core.Thread) {
		_, _ = core.Sync(d, core.Choice(c.reply.SendEvt(resp), c.gaveUp))
	})
}

// CallEvt returns an event that performs the call when synced on; its
// value is the handler's reply. Abandoning the event withdraws the call:
// withdrawal reliably excludes completion and vice versa.
func (s *Service[Req, Resp]) CallEvt(req Req) core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(s.mgr, th)
		reply := core.NewChanNamed(s.rt, "rpc-reply")
		c := &call{req: req, reply: reply, gaveUp: gaveUp, cust: th.CurrentCustodian()}
		return guard.RequestReply(th, s.callCh, c, reply)
	})
}

// Call performs the call, blocking until the reply arrives.
func (s *Service[Req, Resp]) Call(th *core.Thread, req Req) (Resp, error) {
	v, err := core.Sync(th, s.CallEvt(req))
	if err != nil {
		var zero Resp
		return zero, err
	}
	return v.(Resp), nil
}
