package barrier_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/abstractions/barrier"
	"repro/internal/core"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGroupRelease(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := barrier.New(th, 3)
		gens := make(chan int, 3)
		for i := 0; i < 2; i++ {
			th.Spawn("party", func(x *core.Thread) {
				if g, err := b.Wait(x); err == nil {
					gens <- g
				}
			})
		}
		select {
		case <-gens:
			t.Fatal("barrier tripped before the group was complete")
		case <-time.After(20 * time.Millisecond):
		}
		g, err := b.Wait(th) // the third party
		if err != nil {
			t.Fatal(err)
		}
		gens <- g
		for i := 0; i < 3; i++ {
			select {
			case got := <-gens:
				if got != 0 {
					t.Fatalf("generation = %d, want 0", got)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("party never released")
			}
		}
	})
}

func TestCyclesIncrementGeneration(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := barrier.New(th, 2)
		for cycle := 0; cycle < 3; cycle++ {
			got := make(chan int, 1)
			th.Spawn("party", func(x *core.Thread) {
				if g, err := b.Wait(x); err == nil {
					got <- g
				}
			})
			g, err := b.Wait(th)
			if err != nil || g != cycle {
				t.Fatalf("cycle %d: (%d, %v)", cycle, g, err)
			}
			if pg := <-got; pg != cycle {
				t.Fatalf("cycle %d: partner saw %d", cycle, pg)
			}
		}
	})
}

// TestKilledPartyDoesNotWedgeBarrier: an enrolled party is killed; its
// enrollment withdraws, and the group completes with a replacement.
func TestKilledPartyDoesNotWedgeBarrier(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := barrier.New(th, 2)
		doomed := th.Spawn("doomed", func(x *core.Thread) {
			_, _ = b.Wait(x)
			t.Error("doomed wait returned")
		})
		time.Sleep(5 * time.Millisecond)
		doomed.Kill()
		time.Sleep(5 * time.Millisecond)

		got := make(chan int, 1)
		th.Spawn("replacement", func(x *core.Thread) {
			if g, err := b.Wait(x); err == nil {
				got <- g
			}
		})
		g, err := b.Wait(th)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case pg := <-got:
			if pg != g {
				t.Fatalf("generations differ: %d vs %d", pg, g)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("replacement never released — ghost enrollment counted")
		}
	})
}

func TestAbandonedWaitWithdraws(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		b := barrier.New(th, 2)
		// Lose a wait to a timeout.
		v, err := core.Sync(th, core.Choice(
			b.WaitEvt(),
			core.Wrap(core.After(rt, 5*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("(%v, %v)", v, err)
		}
		// A fresh pair must be required: one more enrollment alone must
		// not trip the barrier (the abandoned one is gone).
		got := make(chan int, 1)
		th.Spawn("p1", func(x *core.Thread) {
			if g, err := b.Wait(x); err == nil {
				got <- g
			}
		})
		select {
		case <-got:
			t.Fatal("barrier tripped with an abandoned enrollment")
		case <-time.After(20 * time.Millisecond):
		}
		if _, err := b.Wait(th); err != nil {
			t.Fatal(err)
		}
		<-got
	})
}

func TestKillSafetyAcrossCreatorShutdown(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		share := make(chan *barrier.Barrier, 1)
		th.WithCustodian(c, func() {
			th.Spawn("creator", func(x *core.Thread) {
				share <- barrier.New(x, 2)
				_ = core.Sleep(x, time.Hour)
			})
		})
		b := <-share
		c.Shutdown()
		got := make(chan int, 1)
		th.Spawn("party", func(x *core.Thread) {
			if g, err := b.Wait(x); err == nil {
				got <- g
			}
		})
		if _, err := b.Wait(th); err != nil {
			t.Fatalf("wait after creator shutdown: %v", err)
		}
		<-got
	})
}

func TestManyCyclesStress(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		const parties, cycles = 4, 25
		b := barrier.New(th, parties)
		var maxGen atomic.Int64
		done := make(chan struct{}, parties)
		for p := 0; p < parties; p++ {
			th.Spawn("party", func(x *core.Thread) {
				defer func() { done <- struct{}{} }()
				prev := -1
				for i := 0; i < cycles; i++ {
					g, err := b.Wait(x)
					if err != nil {
						t.Errorf("wait: %v", err)
						return
					}
					if g <= prev {
						t.Errorf("generation went backwards: %d after %d", g, prev)
						return
					}
					prev = g
					if int64(g) > maxGen.Load() {
						maxGen.Store(int64(g))
					}
				}
			})
		}
		for p := 0; p < parties; p++ {
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("stress stalled")
			}
		}
		if maxGen.Load() != cycles-1 {
			t.Fatalf("max generation %d, want %d", maxGen.Load(), cycles-1)
		}
	})
}
