// Package barrier implements a kill-safe cyclic barrier: n parties
// enroll, and when the n-th arrives all of them are released together
// with the current generation number; the barrier then resets for the
// next cycle.
//
// Kill-safety makes the interesting cases work: an enrolled party that is
// terminated, breaks out, or loses a choice withdraws (its gave-up event
// fires), so the barrier never waits for a ghost; and the manager thread
// is yoked to every party, so the barrier survives the termination of the
// task that created it.
package barrier

import (
	"repro/abstractions/internal/guard"
	"repro/internal/core"
)

// Barrier releases parties in groups of n.
type Barrier struct {
	rt    *core.Runtime
	reqCh *core.Chan
	mgr   *core.Thread
	n     int
}

type enrollReq struct {
	reply  *core.Chan // receives the generation number (int)
	gaveUp core.Event
}

// New creates a barrier for groups of n parties (at least 1), managed by
// a thread under the creating thread's current custodian.
func New(th *core.Thread, n int) *Barrier {
	if n < 1 {
		n = 1
	}
	rt := th.Runtime()
	b := &Barrier{
		rt:    rt,
		reqCh: core.NewChanNamed(rt, "barrier-enroll"),
		n:     n,
	}
	b.mgr = th.Spawn("barrier-manager", b.serve)
	return b
}

// Manager exposes the manager thread for tests and diagnostics.
func (b *Barrier) Manager() *core.Thread { return b.mgr }

// Parties returns the barrier's group size.
func (b *Barrier) Parties() int { return b.n }

func (b *Barrier) serve(mgr *core.Thread) {
	generation := 0
	var enrolled []*enrollReq

	removeEnrolled := func(r *enrollReq) {
		for i, x := range enrolled {
			if x == r {
				enrolled = append(enrolled[:i], enrolled[i+1:]...)
				return
			}
		}
	}

	for {
		var evts []core.Event
		if len(enrolled) < b.n {
			evts = append(evts, core.Wrap(b.reqCh.RecvEvt(), func(v core.Value) core.Value {
				return func() {
					enrolled = append(enrolled, v.(*enrollReq))
					if len(enrolled) == b.n {
						// Trip: the barrier commits the group. Each
						// release is delivered by a yoked helper that
						// gives up if its party has by now given up —
						// a party killed after the trip loses only its
						// own notification.
						gen := generation
						generation++
						for _, r := range enrolled {
							r := r
							core.SpawnYoked(mgr, "barrier-release", func(d *core.Thread) {
								_, _ = core.Sync(d, core.Choice(r.reply.SendEvt(gen), r.gaveUp))
							})
						}
						enrolled = nil
					}
				}
			}))
		}
		for _, r := range enrolled {
			r := r
			evts = append(evts, core.Wrap(r.gaveUp, func(core.Value) core.Value {
				return func() { removeEnrolled(r) }
			}))
		}
		act, err := core.Sync(mgr, core.Choice(evts...))
		if err != nil {
			continue
		}
		act.(func())()
	}
}

// WaitEvt returns an event that enrolls the syncing thread and becomes
// ready, with the generation number, when the group is complete.
func (b *Barrier) WaitEvt() core.Event {
	return core.NackGuard(func(th *core.Thread, gaveUp core.Event) core.Event {
		core.ResumeVia(b.mgr, th)
		reply := core.NewChanNamed(b.rt, "barrier-release")
		return guard.RequestReply(th, b.reqCh, &enrollReq{reply: reply, gaveUp: gaveUp}, reply)
	})
}

// Wait enrolls and blocks until the group is complete, returning the
// generation number.
func (b *Barrier) Wait(th *core.Thread) (int, error) {
	v, err := core.Sync(th, b.WaitEvt())
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}
