package killsafe_test

import (
	"fmt"
	"time"

	killsafe "repro"
	"repro/abstractions/queue"
)

// The paper's Section 4 scenario as a runnable example: a queue created by
// a terminable task keeps working for a survivor, because every operation
// is guarded by ResumeVia.
func Example_killSafeQueue() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		cust := killsafe.NewCustodian(rt.RootCustodian())
		handOff := make(chan *queue.Queue[string], 1)
		th.WithCustodian(cust, func() {
			th.Spawn("creator", func(x *killsafe.Thread) {
				q := queue.New[string](x)
				_ = q.Send(x, "survives termination")
				handOff <- q
				_ = killsafe.Sleep(x, time.Hour)
			})
		})
		q := <-handOff
		cust.Shutdown() // terminate the creator's task

		v, _ := q.Recv(th) // the guard resurrects the manager
		fmt.Println(v)
	})
	// Output: survives termination
}

// Events are first-class: a queue receive multiplexed against a timeout.
func Example_choiceWithTimeout() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		q := queue.New[int](th)
		v, _ := killsafe.Sync(th, killsafe.Choice(
			killsafe.Wrap(killsafe.FromRaw[int](q.RecvEvt()),
				func(n int) string { return fmt.Sprint("item ", n) }),
			killsafe.Wrap(killsafe.After(rt, 10*time.Millisecond),
				func(killsafe.Unit) string { return "timed out" }),
		))
		fmt.Println(v)
	})
	// Output: timed out
}

// Rendezvous channels synchronize two tasks and exchange one value.
func ExampleChannel() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		ch := killsafe.NewChannel[string](rt)
		th.Spawn("sender", func(s *killsafe.Thread) {
			_ = ch.Send(s, "Hello")
		})
		v, _ := ch.Recv(th)
		fmt.Println(v)
	})
	// Output: Hello
}

// Guard defers event construction to sync time: the paper's timeout idiom.
func ExampleGuard() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		// The alarm time is computed when the event is synced on, not
		// when it is created.
		timeout := killsafe.Guard(func(*killsafe.Thread) killsafe.Event[killsafe.Unit] {
			return killsafe.After(rt, 5*time.Millisecond)
		})
		for i := 0; i < 2; i++ {
			_, _ = killsafe.Sync(th, timeout)
			fmt.Println("tick", i)
		}
	})
	// Output:
	// tick 0
	// tick 1
}

// NackGuard tells an abstraction when its event was not chosen.
func ExampleNackGuard() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		notChosen := make(chan struct{})
		ev := killsafe.Choice(
			killsafe.Always("immediate"),
			killsafe.NackGuard(func(g *killsafe.Thread, nack killsafe.Event[killsafe.Unit]) killsafe.Event[string] {
				g.Spawn("watcher", func(w *killsafe.Thread) {
					_, _ = killsafe.Sync(w, nack)
					close(notChosen)
				})
				return killsafe.Never[string]()
			}),
		)
		v, _ := killsafe.Sync(th, ev)
		<-notChosen
		fmt.Println(v, "(loser's nack fired)")
	})
	// Output: immediate (loser's nack fired)
}

// Custodians terminate whole tasks, however many threads they spawned.
func ExampleCustodian() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		cust := killsafe.NewCustodian(rt.RootCustodian())
		var workers []*killsafe.Thread
		th.WithCustodian(cust, func() {
			for i := 0; i < 3; i++ {
				workers = append(workers, th.Spawn("worker", func(x *killsafe.Thread) {
					_ = killsafe.Sleep(x, time.Hour)
				}))
			}
		})
		cust.Shutdown()
		suspended := 0
		for _, w := range workers {
			if w.Suspended() {
				suspended++
			}
		}
		fmt.Printf("%d of 3 workers suspended\n", suspended)
	})
	// Output: 3 of 3 workers suspended
}
