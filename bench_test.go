package killsafe_test

// The benchmark harness for EXPERIMENTS.md. The paper (PLDI 2004) has no
// quantitative tables — its evaluation is the set of worked figures and
// behavioural claims — so these benchmarks characterize the reproduced
// system and the costs of the design choices the paper discusses: the
// per-operation kill-safety guard, the global-lock rendezvous, NACK
// bookkeeping vs the Figure 8 leak, remote predicate execution, and the
// manager-based vs direct swap. Experiment IDs (E1–E14) refer to the
// experiment index in DESIGN.md.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	killsafe "repro"
	"repro/abstractions/msgqueue"
	"repro/abstractions/queue"
	"repro/abstractions/supervise"
	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/interp"
	"repro/internal/netsvc"
	"repro/internal/obs"
	"repro/internal/web"
)

// benchRun binds the benchmark goroutine to a runtime thread, runs fn,
// and shuts the runtime down.
func benchRun(b *testing.B, fn func(rt *killsafe.Runtime, th *killsafe.Thread)) {
	b.Helper()
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *killsafe.Thread) { fn(rt, th) }); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// E12 baseline: the runtime's rendezvous channel vs a native Go channel.
func BenchmarkChannelRendezvous(b *testing.B) {
	b.Run("runtime", func(b *testing.B) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			ch := killsafe.NewChannel[int](rt)
			th.Spawn("echo", func(x *killsafe.Thread) {
				for {
					if _, err := ch.Recv(x); err != nil {
						return
					}
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ch.Send(th, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("go-native", func(b *testing.B) {
		ch := make(chan int)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range ch {
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch <- i
		}
		b.StopTimer()
		close(ch)
		<-done
	})
}

// E1/E2/E12 ablation: cost of the per-operation ResumeVia guard — the
// entire price of kill-safety for the queue.
func BenchmarkGuardOverhead(b *testing.B) {
	bench := func(b *testing.B, mk func(*killsafe.Thread) *queue.Queue[int]) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			q := mk(th)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Send(th, i); err != nil {
					b.Fatal(err)
				}
				if _, err := q.Recv(th); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("unsafe-queue", func(b *testing.B) { bench(b, queue.NewUnsafe[int]) })
	b.Run("killsafe-queue", func(b *testing.B) { bench(b, queue.New[int]) })
}

// E2: queue throughput with concurrent producers and consumers.
func BenchmarkQueueThroughput(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("producers-%d", workers), func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				q := queue.New[int](th)
				per := b.N / workers
				for w := 0; w < workers; w++ {
					th.Spawn("producer", func(x *killsafe.Thread) {
						for i := 0; i < per; i++ {
							if err := q.Send(x, i); err != nil {
								return
							}
						}
					})
				}
				b.ResetTimer()
				for i := 0; i < per*workers; i++ {
					if _, err := q.Recv(th); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// E3: queue events as first-class values — receive through a choice.
func BenchmarkQueueEvtChoice(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		qa := queue.New[int](th)
		qb := queue.New[int](th)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := qa.Send(th, i); err != nil {
				b.Fatal(err)
			}
			if _, err := core.Sync(th, core.Choice(qa.RecvEvt(), qb.RecvEvt())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E4 vs E5: the Figure 8 space leak against the Figure 9 NACK cleanup.
// Each iteration abandons one selective-receive request (it loses a
// choice). Without nacks the manager's request list grows without bound —
// reported as the final-requests metric and visible as rising ns/op.
func BenchmarkMsgQueueAbandon(b *testing.B) {
	bench := func(b *testing.B, opts msgqueue.Options) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			q := msgqueue.NewWith[int](th, opts)
			never := func(int) bool { return false }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := core.Sync(th, core.Choice(
					q.RecvEvt(never),
					core.Always(core.Unit{}),
				))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Let in-flight gave-up processing settle before reading.
			deadline := time.Now().Add(2 * time.Second)
			for opts.Nacks && q.PendingRequests() > 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			b.ReportMetric(float64(q.PendingRequests()), "final-requests")
		})
	}
	b.Run("fig8-leaky", func(b *testing.B) { bench(b, msgqueue.Options{Nacks: false}) })
	b.Run("fig9-nacks", func(b *testing.B) { bench(b, msgqueue.Options{Nacks: true}) })
}

// E5/E6: selective dequeue service cost, inline vs remote predicates.
func BenchmarkMsgQueueRecv(b *testing.B) {
	bench := func(b *testing.B, opts msgqueue.Options) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			q := msgqueue.NewWith[int](th, opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Send(th, i); err != nil {
					b.Fatal(err)
				}
				if _, err := q.Recv(th, msgqueue.Any[int]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("inline-pred", func(b *testing.B) { bench(b, msgqueue.Options{Nacks: true}) })
	b.Run("remote-pred", func(b *testing.B) {
		bench(b, msgqueue.Options{Nacks: true, RemotePredicates: true})
	})
}

// E7 vs E8: direct (break-safe) swap against manager-based (kill-safe)
// swap — the cost of the extra manager hop and delivery threads.
func BenchmarkSwap(b *testing.B) {
	bench := func(b *testing.B, mk func(*killsafe.Thread) *swapchan.Swap[int]) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			sc := mk(th)
			th.Spawn("partner", func(x *killsafe.Thread) {
				for {
					if _, err := sc.Swap(x, 0); err != nil {
						return
					}
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Swap(th, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("direct", func(b *testing.B) { bench(b, swapchan.New[int]) })
	b.Run("killsafe", func(b *testing.B) { bench(b, swapchan.NewKillSafe[int]) })
}

// E9: the servlet scenario's shared document — one edit plus snapshot.
func BenchmarkServletDoc(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		d := doc.New(th)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Append(th, "line"); err != nil {
				b.Fatal(err)
			}
			if i%64 == 0 {
				if _, _, err := d.Snapshot(th); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// E10: help-system round trip — browser request through the kill-safe
// byte-stream pipe to a servlet and back.
func BenchmarkHelpSystem(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/help", func(_ *killsafe.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "help for " + req.Query["topic"]}
		})
		browser, _ := srv.Connect(th)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			status, _, err := browser.Get(th, "/help?topic=events")
			if err != nil || status != 200 {
				b.Fatalf("(%d, %v)", status, err)
			}
		}
	})
}

// E11: ResumeVia cost — the guard primitive itself — against yoke-chain
// depth (custodian grants propagate transitively through beneficiaries).
func BenchmarkResumeYoke(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chain-%d", depth), func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				mgr := th.Spawn("mgr", func(x *killsafe.Thread) {
					_ = killsafe.Sleep(x, time.Hour)
				})
				prev := mgr
				for i := 1; i < depth; i++ {
					next := th.Spawn("link", func(x *killsafe.Thread) {
						_ = killsafe.Sleep(x, time.Hour)
					})
					killsafe.ResumeVia(prev, next)
					prev = next
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					killsafe.ResumeVia(mgr, th)
				}
			})
		})
	}
}

// Custodian shutdown latency against the number of controlled threads.
func BenchmarkCustodianShutdown(b *testing.B) {
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				for i := 0; i < b.N; i++ {
					c := killsafe.NewCustodian(rt.RootCustodian())
					th.WithCustodian(c, func() {
						for j := 0; j < n; j++ {
							th.Spawn("victim", func(x *killsafe.Thread) {
								_ = killsafe.Sleep(x, time.Hour)
							})
						}
					})
					c.Shutdown()
					rt.TerminateCondemned()
				}
			})
		})
	}
}

// E13: queue throughput while user tasks are killed continuously — the
// kill-storm. The measured op is a consumer receive; producers come and
// go under the axe.
func BenchmarkKillStorm(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		q := queue.New[int](th)
		spawnProducer := func() *killsafe.Custodian {
			c := killsafe.NewCustodian(rt.RootCustodian())
			th.WithCustodian(c, func() {
				th.Spawn("producer", func(x *killsafe.Thread) {
					for i := 0; ; i++ {
						if err := q.Send(x, i); err != nil {
							return
						}
					}
				})
			})
			return c
		}
		cust := spawnProducer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%100 == 99 {
				b.StopTimer()
				cust.Shutdown() // kill the producer mid-stream
				rt.TerminateCondemned()
				cust = spawnProducer()
				b.StartTimer()
			}
			if _, err := q.Recv(th); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E14: the paper's Figure 7 queue running as Scheme source under mzmini,
// compared against the native Go queue (BenchmarkGuardOverhead). Each
// iteration is one send plus one receive. The queue is recreated in
// batches because mzmini's wrap procedures consume Go stack (documented
// interpreter limitation).
func BenchmarkInterpQueue(b *testing.B) {
	const batch = 64
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	in.SetOutput(&strings.Builder{})
	setup := `
(define-struct q (in-ch out-ch mgr-t))
(define (queue)
  (define in-ch (channel))
  (define out-ch (channel))
  (define (serve items)
    (if (null? items)
        (serve (list (sync (channel-recv-evt in-ch))))
        (sync (choice-evt
               (wrap-evt (channel-recv-evt in-ch)
                         (lambda (v) (serve (append items (list v)))))
               (wrap-evt (channel-send-evt out-ch (car items))
                         (lambda (void) (serve (cdr items))))))))
  (define mgr-t (spawn (lambda () (serve (list)))))
  (make-q in-ch out-ch mgr-t))
(define (queue-send-evt q v)
  (guard-evt (lambda ()
    (thread-resume (q-mgr-t q) (current-thread))
    (channel-send-evt (q-in-ch q) v))))
(define (queue-recv-evt q)
  (guard-evt (lambda ()
    (thread-resume (q-mgr-t q) (current-thread))
    (channel-recv-evt (q-out-ch q)))))
(define (bench-batch n)
  (define q (queue))
  (let loop ([i 0])
    (if (< i n)
        (begin
          (sync (queue-send-evt q i))
          (sync (queue-recv-evt q))
          (loop (add1 i)))
        (kill-thread (q-mgr-t q)))))
`
	err := rt.Run(func(th *core.Thread) {
		if _, err := in.EvalString(th, setup); err != nil {
			b.Fatalf("setup: %v", err)
		}
		b.ResetTimer()
		remaining := b.N
		for remaining > 0 {
			n := batch
			if remaining < n {
				n = remaining
			}
			if _, err := in.EvalString(th, fmt.Sprintf("(bench-batch %d)", n)); err != nil {
				b.Fatalf("batch: %v", err)
			}
			remaining -= n
		}
	})
	if err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// netsvcClient is a plain-goroutine HTTP/1.0 client for the loopback
// serving benchmarks: one keep-alive connection, redialing when the
// server (or an administrator's kill) closes it.
type netsvcClient struct {
	addr string
	c    net.Conn
	r    *bufio.Reader
}

func (cl *netsvcClient) close() {
	if cl.c != nil {
		cl.c.Close()
		cl.c = nil
	}
}

// get performs one request, transparently redialing and retrying if the
// connection was cut (a kill-storm casualty counts only once served).
func (cl *netsvcClient) get(target string) error {
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		if cl.c == nil {
			c, err := net.Dial("tcp", cl.addr)
			if err != nil {
				lastErr = err
				continue
			}
			cl.c = c
			cl.r = bufio.NewReader(c)
		}
		_, err := fmt.Fprintf(cl.c, "GET %s HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", target)
		if err == nil {
			err = cl.readResponse()
		}
		if err == nil {
			return nil
		}
		lastErr = err
		cl.close()
	}
	return fmt.Errorf("gave up after 100 attempts: %w", lastErr)
}

func (cl *netsvcClient) readResponse() error {
	n := -1
	for {
		ln, err := cl.r.ReadString('\n')
		if err != nil {
			return err
		}
		ln = strings.TrimRight(ln, "\r\n")
		if ln == "" {
			break
		}
		if rest, ok := strings.CutPrefix(strings.ToLower(ln), "content-length:"); ok {
			fmt.Sscanf(strings.TrimSpace(rest), "%d", &n)
		}
	}
	if n < 0 {
		return fmt.Errorf("response missing Content-Length")
	}
	_, err := io.CopyN(io.Discard, cl.r, int64(n))
	return err
}

// benchServe starts a netsvc server with a trivial /ping servlet.
func benchServe(b *testing.B, th *killsafe.Thread) (*netsvc.Server, *web.Server) {
	b.Helper()
	ws := web.NewServer(th)
	ws.Handle("/ping", func(_ *killsafe.Thread, _ *web.Session, _ *web.Request) web.Response {
		return web.Response{Status: 200, Body: "pong"}
	})
	s, err := netsvc.Serve(th, ws, netsvc.Config{MaxConns: 32, IdleTimeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	return s, ws
}

// E17: full TCP round-trip latency through the serving bridge — pump
// goroutine → semaphore handoff → session thread Sync → servlet dispatch
// → blocking-write helper — one keep-alive client, sequential requests.
func BenchmarkNetsvcRoundTrip(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		s, _ := benchServe(b, th)
		cl := &netsvcClient{addr: s.Addr().String()}
		defer cl.close()
		if err := cl.get("/ping"); err != nil { // warm the connection
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.get("/ping"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		cl.close()
		if err := s.Shutdown(th, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	})
}

// E17: serving throughput with N concurrent keep-alive clients.
func BenchmarkNetsvcThroughput(b *testing.B) {
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				s, _ := benchServe(b, th)
				addr := s.Addr().String()
				per := b.N / clients
				errc := make(chan error, clients)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						cl := &netsvcClient{addr: addr}
						defer cl.close()
						for i := 0; i < per; i++ {
							if err := cl.get("/ping"); err != nil {
								errc <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errc:
					b.Fatal(err)
				default:
				}
				if err := s.Shutdown(th, 2*time.Second); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

// E20: sharded serving throughput — clients × shards. Each shard is an
// independent runtime (own custodian tree, own servlet instance) behind
// one listener, so the per-runtime global rendezvous lock is contended
// only within a shard and throughput can scale with cores. On a
// single-core runner the shards time-slice one CPU and the curve stays
// flat — see BENCH_scaling.json for readings.
func BenchmarkNetsvcScaling(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, clients := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("shards-%d/clients-%d", shards, clients), func(b *testing.B) {
				m, err := netsvc.ServeSharded(
					netsvc.Config{MaxConns: 64, IdleTimeout: 10 * time.Second, Shards: shards},
					func(th *killsafe.Thread, _ int) *web.Server {
						ws := web.NewServer(th)
						ws.Handle("/ping", func(_ *killsafe.Thread, _ *web.Session, _ *web.Request) web.Response {
							return web.Response{Status: 200, Body: "pong"}
						})
						return ws
					})
				if err != nil {
					b.Fatal(err)
				}
				addr := m.Addr().String()
				per := b.N / clients
				errc := make(chan error, clients)
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						cl := &netsvcClient{addr: addr}
						defer cl.close()
						for i := 0; i < per; i++ {
							if err := cl.get("/ping"); err != nil {
								errc <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errc:
					b.Fatal(err)
				default:
				}
				if err := m.Shutdown(2 * time.Second); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// E17 under fire: throughput while an administrator terminates a random
// live session every couple of milliseconds. Clients redial and retry;
// the measured op is a *served* request, so the delta against the quiet
// throughput run is the price of kills (reconnects + reaping).
func BenchmarkNetsvcKillStorm(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		s, ws := benchServe(b, th)
		addr := s.Addr().String()
		const clients = 4
		per := b.N / clients
		errc := make(chan error, clients)
		var wg sync.WaitGroup
		done := make(chan struct{})
		b.ResetTimer()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl := &netsvcClient{addr: addr}
				defer cl.close()
				for i := 0; i < per; i++ {
					if err := cl.get("/ping"); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		go func() { wg.Wait(); close(done) }()
		for k := 0; ; k++ {
			select {
			case <-done:
			default:
				if err := killsafe.Sleep(th, 2*time.Millisecond); err != nil {
					b.Fatal(err)
				}
				if ids := ws.Sessions(); len(ids) > 0 {
					ws.Terminate(ids[k%len(ids)])
				}
				continue
			}
			break
		}
		b.StopTimer()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
		if err := s.Shutdown(th, 2*time.Second); err != nil {
			b.Fatal(err)
		}
	})
}

// E19: one full kill→restart cycle through the supervisor — monitor
// observes the child's done event, shuts the dead incarnation's
// custodian, spawns a fresh thread under a fresh custodian (no backoff,
// so the measured op is pure supervision machinery).
func BenchmarkSupervisorRestart(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		restarted := make(chan struct{}, 1)
		sup := supervise.New(th, supervise.Options{
			MaxRestarts: -1,
			BaseBackoff: -1,
			OnRestart:   func(string, int) { restarted <- struct{}{} },
		})
		sup.Start(th, supervise.ChildSpec{
			Name:   "worker",
			Policy: supervise.Permanent,
			Start:  func(x *killsafe.Thread) { _ = killsafe.Sleep(x, time.Hour) },
		})
		waitChild := func(prev *killsafe.Thread) *killsafe.Thread {
			for {
				cur := sup.ChildThread("worker")
				if cur != nil && cur != prev && !cur.Done() {
					return cur
				}
				runtime.Gosched()
			}
		}
		child := waitChild(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			child.Kill()
			<-restarted
			child = waitChild(child)
		}
		b.StopTimer()
		sup.Stop()
	})
}

// E19: closed-state circuit breaker overhead — one Do is two rendezvous
// with the manager thread (permit acquire via nack-guarded request,
// result report) around a no-op call.
func BenchmarkBreakerDo(b *testing.B) {
	benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
		brk := supervise.NewBreaker(th, supervise.BreakerOptions{})
		nop := func(*killsafe.Thread) error { return nil }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := brk.Do(th, nop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E21: instrumentation overhead — the cost of the observability layer
// against the uninstrumented fast path.

// BenchmarkSyncSingle is the single-event Sync fast path (semaphore wait
// against a ready semaphore): obs-off is the seed configuration — the
// instrumentation hook is one atomic load and a nil check, and the op
// pool keeps the path allocation-free; obs-on adds the metrics counter
// taps; obs-rec adds the flight-recorder ring write on top.
func BenchmarkSyncSingle(b *testing.B) {
	modes := []struct {
		name     string
		metrics  bool
		recorder bool
	}{
		{"obs-off", false, false},
		{"obs-on", true, false},
		{"obs-rec", true, true},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				if m.metrics {
					o := obs.New()
					if m.recorder {
						o.EnableRecorder(0)
					}
					o.Attach(rt)
				}
				sem := core.NewSemaphore(rt, 1)
				evt := sem.WaitEvt()
				if _, err := core.Sync(th, evt); err != nil { // warm the op pool
					b.Fatal(err)
				}
				sem.Post()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Sync(th, evt); err != nil {
						b.Fatal(err)
					}
					sem.Post()
				}
			})
		})
	}
}

// E25: direct core-level contention — N rendezvous pairs ping-ponging on
// disjoint channels vs all on one shared channel, swept across GOMAXPROCS.
// Under the old design both legs serialized on the per-runtime global lock
// and the disjoint/shared gap was noise; with per-event locks and the op
// claim protocol, disjoint pairs touch disjoint mutexes and disjoint ops,
// so the disjoint leg scales with cores while the shared leg measures the
// per-object lock, not a runtime-wide one. On a 1-core container the two
// GOMAXPROCS legs time-slice the same CPU and the sweep mainly bounds the
// scheduling overhead; see BENCH_scaling.json for the disclosure.
func BenchmarkCoreContention(b *testing.B) {
	const pairs = 4
	bench := func(b *testing.B, shared bool) {
		benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
			chs := make([]*core.Chan, pairs)
			one := core.NewChanNamed(rt, "shared")
			for i := range chs {
				if shared {
					chs[i] = one
				} else {
					chs[i] = core.NewChanNamed(rt, "disjoint")
				}
			}
			per := b.N/pairs + 1
			var wg sync.WaitGroup
			b.ResetTimer()
			for p := 0; p < pairs; p++ {
				ch := chs[p]
				wg.Add(2)
				th.Spawn("recv", func(x *killsafe.Thread) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := ch.Recv(x); err != nil {
							return
						}
					}
				})
				th.Spawn("send", func(x *killsafe.Thread) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := ch.Send(x, i); err != nil {
							return
						}
					}
				})
			}
			wg.Wait()
		})
	}
	for _, procs := range []int{1, 4} {
		for _, mode := range []string{"disjoint", "shared"} {
			shared := mode == "shared"
			b.Run(fmt.Sprintf("gomaxprocs-%d/%s", procs, mode), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				bench(b, shared)
			})
		}
	}
}

// BenchmarkNetsvcServedRequest is one served request end to end (the
// BenchmarkNetsvcRoundTrip path) under each instrumentation mode: the
// obs-off leg is the fence against BENCH_scaling.json's round-trip
// reading, and the obs-on/obs-rec spread is the overhead the CI fence
// bounds. The body-string/body-bytes pair is the zero-copy response
// path's before/after: body-string serializes the servlet's string body
// into the pooled batch buffer (the legacy copy), body-bytes hands the
// codec a []byte payload that is appended straight into the batch —
// allocs/op is the headline number for the pair.
func BenchmarkNetsvcServedRequest(b *testing.B) {
	modes := []struct {
		name      string
		cfg       netsvc.Config
		bytesBody bool
	}{
		{"obs-off/body-string", netsvc.Config{MaxConns: 32, IdleTimeout: 10 * time.Second, DisableObs: true}, false},
		{"obs-off/body-bytes", netsvc.Config{MaxConns: 32, IdleTimeout: 10 * time.Second, DisableObs: true}, true},
		{"obs-on", netsvc.Config{MaxConns: 32, IdleTimeout: 10 * time.Second}, false},
		{"obs-rec", netsvc.Config{MaxConns: 32, IdleTimeout: 10 * time.Second, FlightRecorder: 8192}, false},
	}
	pongBytes := []byte("pong")
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			benchRun(b, func(rt *killsafe.Runtime, th *killsafe.Thread) {
				ws := web.NewServer(th)
				if m.bytesBody {
					ws.Handle("/ping", func(_ *killsafe.Thread, _ *web.Session, _ *web.Request) web.Response {
						return web.Response{Status: 200, BodyBytes: pongBytes}
					})
				} else {
					ws.Handle("/ping", func(_ *killsafe.Thread, _ *web.Session, _ *web.Request) web.Response {
						return web.Response{Status: 200, Body: "pong"}
					})
				}
				s, err := netsvc.Serve(th, ws, m.cfg)
				if err != nil {
					b.Fatal(err)
				}
				cl := &netsvcClient{addr: s.Addr().String()}
				defer cl.close()
				if err := cl.get("/ping"); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cl.get("/ping"); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				cl.close()
				if err := s.Shutdown(th, 2*time.Second); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}
