package killsafe

import (
	"time"

	"repro/internal/core"
)

// Event is a typed first-class synchronization event producing a T. It
// wraps the untyped core representation; Raw converts for interoperation
// with abstraction packages that traffic in core events.
type Event[T any] struct {
	raw core.Event
}

// FromRaw types an untyped event whose values are known to be T.
func FromRaw[T any](e core.Event) Event[T] { return Event[T]{raw: e} }

// Raw returns the untyped event.
func (e Event[T]) Raw() core.Event { return e.raw }

// Sync blocks until e is ready, commits it atomically, and returns its
// value. It returns ErrBreak if a break signal arrives while the thread
// waits with breaks enabled.
func Sync[T any](th *Thread, e Event[T]) (T, error) {
	v, err := core.Sync(th, e.raw)
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// SyncEnableBreak is Sync with breaks enabled during the wait and the
// exclusive-or guarantee: a break is delivered or an event is chosen,
// never both.
func SyncEnableBreak[T any](th *Thread, e Event[T]) (T, error) {
	v, err := core.SyncEnableBreak(th, e.raw)
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Choice combines events; the combination is ready when any constituent
// is, and a ready constituent is chosen arbitrarily but fairly.
func Choice[T any](evts ...Event[T]) Event[T] {
	raws := make([]core.Event, len(evts))
	for i, e := range evts {
		raws[i] = e.raw
	}
	return Event[T]{raw: core.Choice(raws...)}
}

// Wrap post-processes a chosen event's value with fn, which runs in the
// syncing thread with breaks implicitly disabled.
func Wrap[S, T any](e Event[S], fn func(S) T) Event[T] {
	return Event[T]{raw: core.Wrap(e.raw, func(v core.Value) core.Value {
		return fn(v.(S))
	})}
}

// Guard defers event construction to sync time; fn runs in the syncing
// thread and may itself block.
func Guard[T any](fn func(*Thread) Event[T]) Event[T] {
	return Event[T]{raw: core.Guard(func(th *Thread) core.Event {
		return fn(th).raw
	})}
}

// NackGuard is Guard plus a negative-acknowledgment event that becomes
// ready if the guarded event is not chosen: the sync chose another event,
// escaped via a break, or the syncing thread was terminated.
func NackGuard[T any](fn func(th *Thread, nack Event[Unit]) Event[T]) Event[T] {
	return Event[T]{raw: core.NackGuard(func(th *Thread, nack core.Event) core.Event {
		return fn(th, Event[Unit]{raw: nack}).raw
	})}
}

// Always returns an event that is always ready with v.
func Always[T any](v T) Event[T] { return Event[T]{raw: core.Always(v)} }

// Never returns an event that is never ready.
func Never[T any]() Event[T] { return Event[T]{raw: core.Never()} }

// After returns an event ready once d has elapsed from sync time.
func After(rt *Runtime, d time.Duration) Event[Unit] {
	return Event[Unit]{raw: core.After(rt, d)}
}

// AlarmAt returns an event ready at or after the absolute time at.
func AlarmAt(rt *Runtime, at time.Time) Event[Unit] {
	return Event[Unit]{raw: core.AlarmAt(rt, at)}
}

// DoneEvt returns an event ready when t terminates (suspension is not
// termination).
func DoneEvt(t *Thread) Event[Unit] {
	return Event[Unit]{raw: t.DoneEvt()}
}

// WaitEvt returns an event ready when s's count is positive, decrementing
// it upon commit.
func WaitEvt(s *Semaphore) Event[Unit] {
	return Event[Unit]{raw: s.WaitEvt()}
}

// Channel is a typed synchronous rendezvous channel: the runtime's
// primitive, kill-safe synchronization abstraction.
type Channel[T any] struct {
	c *core.Chan
}

// NewChannel creates a channel.
func NewChannel[T any](rt *Runtime) Channel[T] {
	return Channel[T]{c: core.NewChan(rt)}
}

// NewChannelNamed creates a channel with a diagnostic name.
func NewChannelNamed[T any](rt *Runtime, name string) Channel[T] {
	return Channel[T]{c: core.NewChanNamed(rt, name)}
}

// SendEvt returns an event ready when a receiver accepts v simultaneously.
func (c Channel[T]) SendEvt(v T) Event[Unit] {
	return Event[Unit]{raw: c.c.SendEvt(v)}
}

// RecvEvt returns an event ready when a sender provides a value
// simultaneously.
func (c Channel[T]) RecvEvt() Event[T] {
	return Event[T]{raw: c.c.RecvEvt()}
}

// Send performs Sync on SendEvt.
func (c Channel[T]) Send(th *Thread, v T) error {
	return c.c.Send(th, v)
}

// Recv performs Sync on RecvEvt.
func (c Channel[T]) Recv(th *Thread) (T, error) {
	v, err := c.c.Recv(th)
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Raw exposes the untyped channel for interoperation with internal/core.
func (c Channel[T]) Raw() *core.Chan { return c.c }
