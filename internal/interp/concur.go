package interp

import (
	"time"

	"repro/internal/core"
)

// installConcurrencyBuiltins binds the task and event primitives — the
// MzScheme kernel surface the paper builds on.
func (in *Interp) installConcurrencyBuiltins(env *Env) {
	def := func(name string, fn func(*Ctx, []Value) Value) {
		env.Define(Symbol(name), &Builtin{Name: name, Fn: fn})
	}

	// --- threads ---
	def("spawn", func(ctx *Ctx, a []Value) Value {
		arity("spawn", a, 1)
		thunk := a[0]
		return ctx.Th.Spawn("scheme-thread", func(t *core.Thread) {
			sub := &Ctx{In: ctx.In, Th: t}
			defer recoverSchemeError(ctx.In)
			sub.Apply(thunk, nil)
		})
	})
	def("current-thread", func(ctx *Ctx, a []Value) Value {
		arity("current-thread", a, 0)
		return ctx.Th
	})
	def("thread-suspend", func(_ *Ctx, a []Value) Value {
		arity("thread-suspend", a, 1)
		asThread("thread-suspend", a[0]).Suspend()
		return Void{}
	})
	def("thread-resume", func(_ *Ctx, a []Value) Value {
		if len(a) != 1 && len(a) != 2 {
			raise("thread-resume: expects 1 or 2 arguments")
		}
		t := asThread("thread-resume", a[0])
		if len(a) == 1 {
			core.Resume(t)
			return Void{}
		}
		switch by := a[1].(type) {
		case *core.Thread:
			core.ResumeVia(t, by)
		case *core.Custodian:
			core.ResumeWith(t, by)
		default:
			raise("thread-resume: second argument must be a thread or custodian")
		}
		return Void{}
	})
	def("kill-thread", func(_ *Ctx, a []Value) Value {
		arity("kill-thread", a, 1)
		asThread("kill-thread", a[0]).Kill()
		return Void{}
	})
	def("break-thread", func(_ *Ctx, a []Value) Value {
		arity("break-thread", a, 1)
		asThread("break-thread", a[0]).Break()
		return Void{}
	})
	def("thread-done-evt", func(_ *Ctx, a []Value) Value {
		arity("thread-done-evt", a, 1)
		return asThread("thread-done-evt", a[0]).DoneEvt()
	})
	def("thread-suspended?", func(_ *Ctx, a []Value) Value {
		arity("thread-suspended?", a, 1)
		return asThread("thread-suspended?", a[0]).Suspended()
	})
	def("thread-done?", func(_ *Ctx, a []Value) Value {
		arity("thread-done?", a, 1)
		return asThread("thread-done?", a[0]).Done()
	})
	def("sleep", func(ctx *Ctx, a []Value) Value {
		arity("sleep", a, 1)
		ms := toFloat(a[0])
		if err := core.Sleep(ctx.Th, time.Duration(ms*float64(time.Millisecond))); err != nil {
			raise("sleep: %v", err)
		}
		return Void{}
	})
	def("yield", func(ctx *Ctx, a []Value) Value {
		if err := ctx.Th.Yield(); err != nil {
			raise("yield: %v", err)
		}
		return Void{}
	})

	// --- custodians ---
	def("make-custodian", func(ctx *Ctx, a []Value) Value {
		switch len(a) {
		case 0:
			return core.NewCustodian(ctx.Th.CurrentCustodian())
		case 1:
			return core.NewCustodian(asCustodian("make-custodian", a[0]))
		}
		raise("make-custodian: expects 0 or 1 arguments")
		return nil
	})
	def("custodian-shutdown-all", func(_ *Ctx, a []Value) Value {
		arity("custodian-shutdown-all", a, 1)
		asCustodian("custodian-shutdown-all", a[0]).Shutdown()
		return Void{}
	})
	def("current-custodian", func(ctx *Ctx, a []Value) Value {
		arity("current-custodian", a, 0)
		return ctx.Th.CurrentCustodian()
	})
	def("terminate-condemned!", func(ctx *Ctx, a []Value) Value {
		arity("terminate-condemned!", a, 0)
		return int64(ctx.In.rt.TerminateCondemned())
	})

	// --- channels and events ---
	def("channel", func(ctx *Ctx, a []Value) Value {
		arity("channel", a, 0)
		return core.NewChan(ctx.In.rt)
	})
	def("channel-send-evt", func(_ *Ctx, a []Value) Value {
		arity("channel-send-evt", a, 2)
		return asChan("channel-send-evt", a[0]).SendEvt(a[1])
	})
	def("channel-recv-evt", func(_ *Ctx, a []Value) Value {
		arity("channel-recv-evt", a, 1)
		return asChan("channel-recv-evt", a[0]).RecvEvt()
	})
	def("always-evt", func(_ *Ctx, a []Value) Value {
		arity("always-evt", a, 1)
		return core.Always(a[0])
	})
	def("never-evt", func(_ *Ctx, a []Value) Value {
		arity("never-evt", a, 0)
		return core.Never()
	})
	def("choice-evt", func(_ *Ctx, a []Value) Value {
		evts := make([]core.Event, len(a))
		for i, v := range a {
			evts[i] = toEvent(v)
		}
		return core.Choice(evts...)
	})
	def("wrap-evt", func(ctx *Ctx, a []Value) Value {
		arity("wrap-evt", a, 2)
		inner := toEvent(a[0])
		fn := a[1]
		interp := ctx.In
		return core.WrapWithThread(inner, func(t *core.Thread, v core.Value) core.Value {
			sub := &Ctx{In: interp, Th: t}
			return sub.Apply(fn, []Value{v})
		})
	})
	def("guard-evt", func(ctx *Ctx, a []Value) Value {
		arity("guard-evt", a, 1)
		fn := a[0]
		interp := ctx.In
		return core.Guard(func(t *core.Thread) core.Event {
			sub := &Ctx{In: interp, Th: t}
			return toEvent(sub.Apply(fn, nil))
		})
	})
	def("nack-guard-evt", func(ctx *Ctx, a []Value) Value {
		arity("nack-guard-evt", a, 1)
		fn := a[0]
		interp := ctx.In
		return core.NackGuard(func(t *core.Thread, nack core.Event) core.Event {
			sub := &Ctx{In: interp, Th: t}
			return toEvent(sub.Apply(fn, []Value{nack}))
		})
	})
	def("sync", func(ctx *Ctx, a []Value) Value {
		return doSync(ctx, a, core.Sync)
	})
	def("sync/enable-break", func(ctx *Ctx, a []Value) Value {
		return doSync(ctx, a, core.SyncEnableBreak)
	})

	// --- time events ---
	def("current-time", func(ctx *Ctx, a []Value) Value {
		arity("current-time", a, 0)
		return int64(time.Since(ctx.In.start) / time.Millisecond)
	})
	def("time-evt", func(ctx *Ctx, a []Value) Value {
		arity("time-evt", a, 1)
		at := ctx.In.start.Add(time.Duration(toFloat(a[0])) * time.Millisecond)
		return core.AlarmAt(ctx.In.rt, at)
	})
	def("after-evt", func(ctx *Ctx, a []Value) Value {
		arity("after-evt", a, 1)
		return core.After(ctx.In.rt, time.Duration(toFloat(a[0])*float64(time.Millisecond)))
	})

	// --- semaphores ---
	def("make-semaphore", func(ctx *Ctx, a []Value) Value {
		n := int64(0)
		if len(a) == 1 {
			n = toInt(a[0])
		} else if len(a) != 0 {
			raise("make-semaphore: expects 0 or 1 arguments")
		}
		return core.NewSemaphore(ctx.In.rt, int(n))
	})
	def("semaphore-post", func(_ *Ctx, a []Value) Value {
		arity("semaphore-post", a, 1)
		asSem("semaphore-post", a[0]).Post()
		return Void{}
	})
	def("semaphore-wait", func(ctx *Ctx, a []Value) Value {
		arity("semaphore-wait", a, 1)
		if err := asSem("semaphore-wait", a[0]).Wait(ctx.Th); err != nil {
			raise("semaphore-wait: %v", err)
		}
		return Void{}
	})
	def("semaphore-wait-evt", func(_ *Ctx, a []Value) Value {
		arity("semaphore-wait-evt", a, 1)
		return asSem("semaphore-wait-evt", a[0]).WaitEvt()
	})
}

func doSync(ctx *Ctx, a []Value, syncFn func(*core.Thread, core.Event) (core.Value, error)) Value {
	if len(a) == 0 {
		raise("sync: expects at least 1 event")
	}
	var ev core.Event
	if len(a) == 1 {
		ev = toEvent(a[0])
	} else {
		evts := make([]core.Event, len(a))
		for i, v := range a {
			evts[i] = toEvent(v)
		}
		ev = core.Choice(evts...)
	}
	v, err := syncFn(ctx.Th, ev)
	if err != nil {
		raise("sync: %v", err)
	}
	if v == nil {
		return Void{}
	}
	if _, isUnit := v.(core.Unit); isUnit {
		return Void{}
	}
	return v
}

// toEvent coerces a Scheme value to an event. As in MzScheme, several
// kinds of values are events themselves: a channel syncs as a receive, a
// thread as its done event.
func toEvent(v Value) core.Event {
	switch x := v.(type) {
	case core.Event:
		return x
	case *core.Chan:
		return x.RecvEvt()
	case *core.Thread:
		return x.DoneEvt()
	case *core.Semaphore:
		return x.WaitEvt()
	}
	raise("sync: not an event: %s", WriteString(v))
	return nil
}

func asThread(name string, v Value) *core.Thread {
	t, ok := v.(*core.Thread)
	if !ok {
		raise("%s: expects a thread, given %s", name, WriteString(v))
	}
	return t
}

func asCustodian(name string, v Value) *core.Custodian {
	c, ok := v.(*core.Custodian)
	if !ok {
		raise("%s: expects a custodian, given %s", name, WriteString(v))
	}
	return c
}

func asChan(name string, v Value) *core.Chan {
	c, ok := v.(*core.Chan)
	if !ok {
		raise("%s: expects a channel, given %s", name, WriteString(v))
	}
	return c
}

func asSem(name string, v Value) *core.Semaphore {
	s, ok := v.(*core.Semaphore)
	if !ok {
		raise("%s: expects a semaphore, given %s", name, WriteString(v))
	}
	return s
}
