package interp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

// runFigure loads a paper-figure transcription from examples/figures and
// returns its printed output.
func runFigure(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "figures", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	var out strings.Builder
	in.SetOutput(&out)
	if err := in.RunString(string(src)); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", name, err, out.String())
	}
	return out.String()
}

func TestFigure7File(t *testing.T) {
	out := runFigure(t, "fig07-queue.scm")
	want := "Hello\nBye\nmanager mostly dead: #t\nrecv after shutdown: 10\nsend+recv after shutdown: 11\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestFigure9File(t *testing.T) {
	out := runFigure(t, "fig09-msg-queue.scm")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	for i, want := range []string{"first even: 2", "first odd:  1", "next odd:   3"} {
		if lines[i] != want {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want)
		}
	}
	// The choice takes 1 or 2 arbitrarily; the remaining item is the
	// other, and the abandoned request must not corrupt the queue.
	got, rem := lines[3], lines[4]
	okA := got == "choice got: 1" && rem == "remaining:  2"
	okB := got == "choice got: 2" && rem == "remaining:  1"
	if !okA && !okB {
		t.Fatalf("unexpected tail: %q / %q", got, rem)
	}
}

func TestFigure10File(t *testing.T) {
	out := runFigure(t, "fig10-remote-pred.scm")
	want := "even item: 2\n" +
		"manager suspended by hostile pred: #f\n" +
		"odd item:  1\n" +
		"condemned reaped: #t\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestFigure11File(t *testing.T) {
	out := runFigure(t, "fig11-swap.scm")
	want := "main got:    apple\npartner got: orange\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestFigure12File(t *testing.T) {
	out := runFigure(t, "fig12-killsafe-swap.scm")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if lines[0] != "main got:    apple" || lines[1] != "partner got: orange" {
		t.Fatalf("basic swap: %q", out)
	}
	if lines[2] != "after kill:  left" || lines[3] != "partner got: right" {
		t.Fatalf("post-kill swap: %q", out)
	}
}
