package interp

import "repro/internal/core"

// Ctx is the evaluation context: the interpreter instance plus the runtime
// thread the evaluation is running on. Every interpreter thread — the top
// level and each (spawn ...) — evaluates with its own Ctx.
type Ctx struct {
	In *Interp
	Th *core.Thread
}

// Eval evaluates expr in env with proper tail calls: manager loops such as
// the paper's serve functions recur without growing the Go stack.
func (ctx *Ctx) Eval(expr Value, env *Env) Value {
	for {
		switch e := expr.(type) {
		case Symbol:
			return env.Lookup(e)
		case *Pair:
			// A compound form: special form or application.
			if sym, ok := e.Car.(Symbol); ok {
				handled, result, tailExpr, tailEnv := ctx.special(sym, e, env)
				if handled {
					if tailExpr == nil {
						return result
					}
					expr, env = tailExpr, tailEnv
					continue
				}
			}
			fn := ctx.Eval(e.Car, env)
			argForms := listToSlice(e.Cdr)
			args := make([]Value, len(argForms))
			for i, a := range argForms {
				args[i] = ctx.Eval(a, env)
			}
			switch f := fn.(type) {
			case *Builtin:
				return f.Fn(ctx, args)
			case *Closure:
				env = bindParams(f, args)
				if len(f.Body) == 0 {
					return Void{}
				}
				for i := 0; i < len(f.Body)-1; i++ {
					ctx.Eval(f.Body[i], env)
				}
				expr = f.Body[len(f.Body)-1]
				continue
			case *StructType:
				raise("%s: struct types are not applicable; use make-%s", f.Name, f.Name)
			default:
				raise("application: not a procedure: %s", WriteString(fn))
			}
		default:
			return e // self-evaluating: numbers, strings, booleans, ...
		}
	}
}

// Apply calls a procedure value with already-evaluated arguments. It is
// used by builtins (map, apply) and by the event combinators to run
// Scheme-level wrap and guard procedures.
func (ctx *Ctx) Apply(fn Value, args []Value) Value {
	switch f := fn.(type) {
	case *Builtin:
		return f.Fn(ctx, args)
	case *Closure:
		env := bindParams(f, args)
		var result Value = Void{}
		for i, b := range f.Body {
			if i == len(f.Body)-1 {
				result = ctx.Eval(b, env)
			} else {
				ctx.Eval(b, env)
			}
		}
		return result
	default:
		raise("application: not a procedure: %s", WriteString(fn))
		return nil
	}
}

func bindParams(f *Closure, args []Value) *Env {
	env := NewEnv(f.Env)
	if f.Rest == "" && len(args) != len(f.Params) {
		raise("%s: expects %d arguments, given %d", closureName(f), len(f.Params), len(args))
	}
	if f.Rest != "" && len(args) < len(f.Params) {
		raise("%s: expects at least %d arguments, given %d", closureName(f), len(f.Params), len(args))
	}
	for i, p := range f.Params {
		env.Define(p, args[i])
	}
	if f.Rest != "" {
		env.Define(f.Rest, List(args[len(f.Params):]...))
	}
	return env
}

func closureName(f *Closure) string {
	if f.Name == "" {
		return "#<procedure>"
	}
	return f.Name
}

// special dispatches special forms. It returns handled=false for ordinary
// applications. For forms with a tail expression (if, begin, let bodies,
// ...) it returns tailExpr/tailEnv for the caller's trampoline; otherwise
// tailExpr is nil and result is the form's value.
func (ctx *Ctx) special(sym Symbol, form *Pair, env *Env) (handled bool, result Value, tailExpr Value, tailEnv *Env) {
	args := func() []Value { return listToSlice(form.Cdr) }
	switch sym {
	case "quote":
		a := args()
		if len(a) != 1 {
			raise("quote: expects 1 part")
		}
		return true, a[0], nil, nil

	case "if":
		a := args()
		if len(a) != 2 && len(a) != 3 {
			raise("if: expects 2 or 3 parts")
		}
		if isTrue(ctx.Eval(a[0], env)) {
			return true, nil, a[1], env
		}
		if len(a) == 3 {
			return true, nil, a[2], env
		}
		return true, Void{}, nil, nil

	case "when", "unless":
		a := args()
		if len(a) < 1 {
			raise("%s: expects a test and a body", sym)
		}
		test := isTrue(ctx.Eval(a[0], env))
		if sym == "unless" {
			test = !test
		}
		if !test || len(a) == 1 {
			return true, Void{}, nil, nil
		}
		return ctx.tailSeq(a[1:], env)

	case "begin":
		a := args()
		if len(a) == 0 {
			return true, Void{}, nil, nil
		}
		return ctx.tailSeq(a, env)

	case "define":
		a := args()
		if len(a) < 1 {
			raise("define: bad syntax")
		}
		switch target := a[0].(type) {
		case Symbol:
			if len(a) != 2 {
				raise("define: expects an identifier and an expression")
			}
			v := ctx.Eval(a[1], env)
			if cl, ok := v.(*Closure); ok && cl.Name == "" {
				cl.Name = string(target)
			}
			env.Define(target, v)
		case *Pair:
			// (define (name . params) body...)
			name, ok := target.Car.(Symbol)
			if !ok {
				raise("define: bad function name")
			}
			params, rest := parseParams(target.Cdr)
			env.Define(name, &Closure{Name: string(name), Params: params, Rest: rest, Body: a[1:], Env: env})
		default:
			raise("define: bad syntax")
		}
		return true, Void{}, nil, nil

	case "set!":
		a := args()
		if len(a) != 2 {
			raise("set!: expects an identifier and an expression")
		}
		id, ok := a[0].(Symbol)
		if !ok {
			raise("set!: bad identifier")
		}
		env.Set(id, ctx.Eval(a[1], env))
		return true, Void{}, nil, nil

	case "lambda":
		a := args()
		if len(a) < 1 {
			raise("lambda: missing parameter list")
		}
		params, rest := parseParams(a[0])
		return true, &Closure{Params: params, Rest: rest, Body: a[1:], Env: env}, nil, nil

	case "let":
		a := args()
		if len(a) < 1 {
			raise("let: bad syntax")
		}
		// Named let: (let loop ([x e] ...) body...)
		if name, ok := a[0].(Symbol); ok {
			if len(a) < 2 {
				raise("let: bad named-let syntax")
			}
			ids, inits := parseBindings(a[1])
			loopEnv := NewEnv(env)
			cl := &Closure{Name: string(name), Params: ids, Body: a[2:], Env: loopEnv}
			loopEnv.Define(name, cl)
			argv := make([]Value, len(inits))
			for i, init := range inits {
				argv[i] = ctx.Eval(init, env)
			}
			callEnv := bindParams(cl, argv)
			return ctx.tailSeqIn(cl.Body, callEnv)
		}
		ids, inits := parseBindings(a[0])
		newEnv := NewEnv(env)
		for i, id := range ids {
			newEnv.Define(id, ctx.Eval(inits[i], env))
		}
		return ctx.tailSeqIn(a[1:], newEnv)

	case "let*":
		a := args()
		if len(a) < 1 {
			raise("let*: bad syntax")
		}
		ids, inits := parseBindings(a[0])
		cur := env
		for i, id := range ids {
			next := NewEnv(cur)
			next.Define(id, ctx.Eval(inits[i], cur))
			cur = next
		}
		return ctx.tailSeqIn(a[1:], cur)

	case "letrec":
		a := args()
		if len(a) < 1 {
			raise("letrec: bad syntax")
		}
		ids, inits := parseBindings(a[0])
		newEnv := NewEnv(env)
		for _, id := range ids {
			newEnv.Define(id, Void{})
		}
		for i, id := range ids {
			newEnv.Define(id, ctx.Eval(inits[i], newEnv))
		}
		return ctx.tailSeqIn(a[1:], newEnv)

	case "cond":
		for _, clause := range args() {
			p, ok := clause.(*Pair)
			if !ok {
				raise("cond: bad clause")
			}
			if test, isSym := p.Car.(Symbol); isSym && test == "else" {
				return ctx.tailSeq(listToSlice(p.Cdr), env)
			}
			tv := ctx.Eval(p.Car, env)
			if isTrue(tv) {
				body := listToSlice(p.Cdr)
				if len(body) == 0 {
					return true, tv, nil, nil
				}
				return ctx.tailSeq(body, env)
			}
		}
		return true, Void{}, nil, nil

	case "and":
		a := args()
		if len(a) == 0 {
			return true, true, nil, nil
		}
		for i := 0; i < len(a)-1; i++ {
			v := ctx.Eval(a[i], env)
			if !isTrue(v) {
				return true, v, nil, nil
			}
		}
		return true, nil, a[len(a)-1], env

	case "or":
		a := args()
		if len(a) == 0 {
			return true, false, nil, nil
		}
		for i := 0; i < len(a)-1; i++ {
			v := ctx.Eval(a[i], env)
			if isTrue(v) {
				return true, v, nil, nil
			}
		}
		return true, nil, a[len(a)-1], env

	case "define-struct":
		ctx.defineStruct(args(), env)
		return true, Void{}, nil, nil

	case "parameterize":
		a := args()
		if len(a) < 1 {
			raise("parameterize: bad syntax")
		}
		return true, ctx.parameterize(a[0], a[1:], env), nil, nil
	}
	return false, nil, nil, nil
}

// tailSeq evaluates all but the last expression and returns the last as
// the tail expression in env.
func (ctx *Ctx) tailSeq(body []Value, env *Env) (bool, Value, Value, *Env) {
	return ctx.tailSeqIn(body, env)
}

func (ctx *Ctx) tailSeqIn(body []Value, env *Env) (bool, Value, Value, *Env) {
	if len(body) == 0 {
		return true, Void{}, nil, nil
	}
	for i := 0; i < len(body)-1; i++ {
		ctx.Eval(body[i], env)
	}
	return true, nil, body[len(body)-1], env
}

// defineStruct implements (define-struct name (field ...)): it binds
// make-name, name?, and name-field selectors.
func (ctx *Ctx) defineStruct(a []Value, env *Env) {
	if len(a) != 2 {
		raise("define-struct: expects a name and a field list")
	}
	name, ok := a[0].(Symbol)
	if !ok {
		raise("define-struct: bad name")
	}
	var fields []Symbol
	for _, f := range listToSlice(a[1]) {
		fs, ok := f.(Symbol)
		if !ok {
			raise("define-struct: bad field name")
		}
		fields = append(fields, fs)
	}
	st := &StructType{Name: name, Fields: fields}
	env.Define(name, st)
	env.Define("make-"+name, &Builtin{
		Name: "make-" + string(name),
		Fn: func(_ *Ctx, args []Value) Value {
			if len(args) != len(st.Fields) {
				raise("make-%s: expects %d arguments, given %d", st.Name, len(st.Fields), len(args))
			}
			vals := make([]Value, len(args))
			copy(vals, args)
			return &StructVal{Type: st, Fields: vals}
		},
	})
	env.Define(name+"?", &Builtin{
		Name: string(name) + "?",
		Fn: func(_ *Ctx, args []Value) Value {
			if len(args) != 1 {
				raise("%s?: expects 1 argument", st.Name)
			}
			sv, ok := args[0].(*StructVal)
			return ok && sv.Type == st
		},
	})
	for i, f := range fields {
		i, f := i, f
		sel := string(name) + "-" + string(f)
		env.Define(Symbol(sel), &Builtin{
			Name: sel,
			Fn: func(_ *Ctx, args []Value) Value {
				if len(args) != 1 {
					raise("%s: expects 1 argument", sel)
				}
				sv, ok := args[0].(*StructVal)
				if !ok || sv.Type != st {
					raise("%s: expects a %s, given %s", sel, st.Name, WriteString(args[0]))
				}
				return sv.Fields[i]
			},
		})
	}
}

// parameterize supports the two parameters the paper's code uses:
// current-custodian and break-enabled.
func (ctx *Ctx) parameterize(bindings Value, body []Value, env *Env) Value {
	ids, inits := parseBindings(bindings)
	run := func() Value {
		var result Value = Void{}
		for i, b := range body {
			if i == len(body)-1 {
				result = ctx.Eval(b, env)
			} else {
				ctx.Eval(b, env)
			}
		}
		return result
	}
	// Nest the parameterizations innermost-last.
	for i := len(ids) - 1; i >= 0; i-- {
		id, init, next := ids[i], inits[i], run
		switch id {
		case "current-custodian":
			run = func() Value {
				c, ok := ctx.Eval(init, env).(*core.Custodian)
				if !ok {
					raise("parameterize: current-custodian expects a custodian")
				}
				var out Value
				ctx.Th.WithCustodian(c, func() { out = next() })
				return out
			}
		case "break-enabled":
			run = func() Value {
				on := isTrue(ctx.Eval(init, env))
				var out Value
				ctx.Th.WithBreaks(on, func() { out = next() })
				return out
			}
		default:
			raise("parameterize: unsupported parameter %s", id)
		}
	}
	return run()
}

// parseParams parses a lambda parameter list, which may be a symbol (rest
// only), a proper list, or a dotted list.
func parseParams(v Value) (params []Symbol, rest Symbol) {
	switch x := v.(type) {
	case Symbol:
		return nil, x
	}
	for {
		switch x := v.(type) {
		case Empty:
			return params, ""
		case Symbol:
			return params, x
		case *Pair:
			s, ok := x.Car.(Symbol)
			if !ok {
				raise("lambda: bad parameter")
			}
			params = append(params, s)
			v = x.Cdr
		default:
			raise("lambda: bad parameter list")
		}
	}
}

// parseBindings parses ([id expr] ...) binding lists.
func parseBindings(v Value) (ids []Symbol, inits []Value) {
	for _, b := range listToSlice(v) {
		p, ok := b.(*Pair)
		if !ok {
			raise("bad binding")
		}
		id, ok := p.Car.(Symbol)
		if !ok {
			raise("bad binding identifier")
		}
		rest := listToSlice(p.Cdr)
		if len(rest) != 1 {
			raise("binding for %s expects one expression", id)
		}
		ids = append(ids, id)
		inits = append(inits, rest[0])
	}
	return ids, inits
}

func isTrue(v Value) bool {
	b, ok := v.(bool)
	return !ok || b // everything except #f is true
}
