package interp

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
)

// Interp is an mzmini interpreter instance bound to a runtime.
type Interp struct {
	rt     *core.Runtime
	global *Env
	start  time.Time

	outMu sync.Mutex
	out   io.Writer
}

// New creates an interpreter with the kernel builtins installed. Output
// (printf, display) goes to os.Stdout unless redirected with SetOutput.
func New(rt *core.Runtime) *Interp {
	in := &Interp{
		rt:     rt,
		global: NewEnv(nil),
		start:  time.Now(),
		out:    os.Stdout,
	}
	in.installCoreBuiltins(in.global)
	in.installConcurrencyBuiltins(in.global)
	return in
}

// Runtime returns the interpreter's runtime.
func (in *Interp) Runtime() *core.Runtime { return in.rt }

// Global returns the global environment, so embedders can add builtins.
func (in *Interp) Global() *Env { return in.global }

// SetOutput redirects printf/display/write output.
func (in *Interp) SetOutput(w io.Writer) {
	in.outMu.Lock()
	in.out = w
	in.outMu.Unlock()
}

func (in *Interp) print(s string) {
	in.outMu.Lock()
	_, _ = io.WriteString(in.out, s)
	in.outMu.Unlock()
}

// recoverSchemeError converts a Scheme-level panic in a spawned thread
// into a diagnostic on the interpreter's output (a kill unwinding through
// the trampoline is re-raised untouched).
func recoverSchemeError(in *Interp) {
	switch e := recover().(type) {
	case nil:
	case *Error:
		in.print("thread error: " + e.Msg + "\n")
	default:
		panic(e)
	}
}

// EvalString parses and evaluates src on the given runtime thread,
// returning the value of the last top-level form.
func (in *Interp) EvalString(th *core.Thread, src string) (Value, error) {
	forms, err := ReadAll(src)
	if err != nil {
		return nil, err
	}
	ctx := &Ctx{In: in, Th: th}
	var result Value = Void{}
	for _, form := range forms {
		v, err := in.evalProtected(ctx, form)
		if err != nil {
			return nil, err
		}
		result = v
	}
	return result, nil
}

func (in *Interp) evalProtected(ctx *Ctx, form Value) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*Error); ok {
				err = se
				return
			}
			panic(r)
		}
	}()
	return ctx.Eval(form, in.global), nil
}

// RunFile loads and evaluates a source file on a fresh runtime thread
// bound to the calling goroutine.
func (in *Interp) RunFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return in.RunString(string(src))
}

// RunString evaluates src on a fresh runtime thread bound to the calling
// goroutine (the usual entry point for programs and tests).
func (in *Interp) RunString(src string) error {
	var evalErr error
	runErr := in.rt.Run(func(th *core.Thread) {
		_, evalErr = in.EvalString(th, src)
	})
	if evalErr != nil {
		return evalErr
	}
	if runErr != nil {
		return fmt.Errorf("mzmini: %w", runErr)
	}
	return nil
}
