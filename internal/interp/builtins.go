package interp

import "strings"

// installCoreBuiltins binds the non-concurrency primitives into env.
func (in *Interp) installCoreBuiltins(env *Env) {
	def := func(name string, fn func(*Ctx, []Value) Value) {
		env.Define(Symbol(name), &Builtin{Name: name, Fn: fn})
	}

	// --- numbers ---
	def("+", func(_ *Ctx, a []Value) Value {
		return numFold(a, 0, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
	})
	def("*", func(_ *Ctx, a []Value) Value {
		return numFold(a, 1, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
	})
	def("-", func(_ *Ctx, a []Value) Value {
		if len(a) == 0 {
			raise("-: expects at least 1 argument")
		}
		if len(a) == 1 {
			return numFold([]Value{int64(0), a[0]}, 0, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
		}
		return numFoldFrom(a, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
	})
	def("/", func(_ *Ctx, a []Value) Value {
		if len(a) < 2 {
			raise("/: expects at least 2 arguments")
		}
		result := toFloat(a[0])
		for _, v := range a[1:] {
			d := toFloat(v)
			if d == 0 {
				raise("/: division by zero")
			}
			result /= d
		}
		return result
	})
	def("quotient", func(_ *Ctx, a []Value) Value { return intOp2("quotient", a, func(x, y int64) int64 { return x / y }) })
	def("remainder", func(_ *Ctx, a []Value) Value { return intOp2("remainder", a, func(x, y int64) int64 { return x % y }) })
	def("modulo", func(_ *Ctx, a []Value) Value {
		return intOp2("modulo", a, func(x, y int64) int64 {
			m := x % y
			if m != 0 && (m < 0) != (y < 0) {
				m += y
			}
			return m
		})
	})
	def("=", cmpOp("=", func(x, y float64) bool { return x == y }))
	def("<", cmpOp("<", func(x, y float64) bool { return x < y }))
	def(">", cmpOp(">", func(x, y float64) bool { return x > y }))
	def("<=", cmpOp("<=", func(x, y float64) bool { return x <= y }))
	def(">=", cmpOp(">=", func(x, y float64) bool { return x >= y }))
	def("add1", func(_ *Ctx, a []Value) Value {
		return numFold(append(a, int64(1)), 0, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
	})
	def("sub1", func(_ *Ctx, a []Value) Value {
		arity("sub1", a, 1)
		return numFoldFrom([]Value{a[0], int64(1)}, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
	})
	def("zero?", func(_ *Ctx, a []Value) Value { arity("zero?", a, 1); return toFloat(a[0]) == 0 })
	def("odd?", func(_ *Ctx, a []Value) Value { arity("odd?", a, 1); return toInt(a[0])%2 != 0 })
	def("even?", func(_ *Ctx, a []Value) Value { arity("even?", a, 1); return toInt(a[0])%2 == 0 })
	def("number?", func(_ *Ctx, a []Value) Value { arity("number?", a, 1); return isNumber(a[0]) })
	def("max", func(_ *Ctx, a []Value) Value {
		return numFoldFrom(a, func(x, y int64) int64 { return max64(x, y) }, func(x, y float64) float64 { return maxF(x, y) })
	})
	def("min", func(_ *Ctx, a []Value) Value {
		return numFoldFrom(a, func(x, y int64) int64 { return -max64(-x, -y) }, func(x, y float64) float64 { return -maxF(-x, -y) })
	})

	// --- booleans and equality ---
	def("not", func(_ *Ctx, a []Value) Value { arity("not", a, 1); return !isTrue(a[0]) })
	def("boolean?", func(_ *Ctx, a []Value) Value { arity("boolean?", a, 1); _, ok := a[0].(bool); return ok })
	def("eq?", func(_ *Ctx, a []Value) Value { arity("eq?", a, 2); return eqv(a[0], a[1]) })
	def("eqv?", func(_ *Ctx, a []Value) Value { arity("eqv?", a, 2); return eqv(a[0], a[1]) })
	def("equal?", func(_ *Ctx, a []Value) Value { arity("equal?", a, 2); return deepEqual(a[0], a[1]) })

	// --- pairs and lists ---
	def("cons", func(_ *Ctx, a []Value) Value { arity("cons", a, 2); return Cons(a[0], a[1]) })
	def("car", func(_ *Ctx, a []Value) Value { arity("car", a, 1); return asPair("car", a[0]).Car })
	def("cdr", func(_ *Ctx, a []Value) Value { arity("cdr", a, 1); return asPair("cdr", a[0]).Cdr })
	def("cadr", func(_ *Ctx, a []Value) Value {
		arity("cadr", a, 1)
		return asPair("cadr", asPair("cadr", a[0]).Cdr).Car
	})
	def("null?", func(_ *Ctx, a []Value) Value { arity("null?", a, 1); _, ok := a[0].(Empty); return ok })
	def("pair?", func(_ *Ctx, a []Value) Value { arity("pair?", a, 1); _, ok := a[0].(*Pair); return ok })
	def("list", func(_ *Ctx, a []Value) Value { return List(a...) })
	def("length", func(_ *Ctx, a []Value) Value { arity("length", a, 1); return int64(len(listToSlice(a[0]))) })
	def("append", func(_ *Ctx, a []Value) Value {
		var all []Value
		for i, l := range a {
			if i == len(a)-1 {
				// last argument may be any value (improper append);
				// handle the common proper-list case.
			}
			all = append(all, listToSlice(l)...)
		}
		return List(all...)
	})
	def("reverse", func(_ *Ctx, a []Value) Value {
		arity("reverse", a, 1)
		s := listToSlice(a[0])
		out := make([]Value, len(s))
		for i, v := range s {
			out[len(s)-1-i] = v
		}
		return List(out...)
	})
	def("list-ref", func(_ *Ctx, a []Value) Value {
		arity("list-ref", a, 2)
		s := listToSlice(a[0])
		i := toInt(a[1])
		if i < 0 || int(i) >= len(s) {
			raise("list-ref: index %d out of range", i)
		}
		return s[i]
	})
	def("caar", func(_ *Ctx, a []Value) Value {
		arity("caar", a, 1)
		return asPair("caar", asPair("caar", a[0]).Car).Car
	})
	def("cddr", func(_ *Ctx, a []Value) Value {
		arity("cddr", a, 1)
		return asPair("cddr", asPair("cddr", a[0]).Cdr).Cdr
	})
	def("caddr", func(_ *Ctx, a []Value) Value {
		arity("caddr", a, 1)
		return asPair("caddr", asPair("caddr", asPair("caddr", a[0]).Cdr).Cdr).Car
	})
	def("list-tail", func(_ *Ctx, a []Value) Value {
		arity("list-tail", a, 2)
		v := a[0]
		for i := int64(0); i < toInt(a[1]); i++ {
			v = asPair("list-tail", v).Cdr
		}
		return v
	})
	def("last", func(_ *Ctx, a []Value) Value {
		arity("last", a, 1)
		s := listToSlice(a[0])
		if len(s) == 0 {
			raise("last: empty list")
		}
		return s[len(s)-1]
	})
	def("assq", func(_ *Ctx, a []Value) Value {
		arity("assq", a, 2)
		for _, entry := range listToSlice(a[1]) {
			p, ok := entry.(*Pair)
			if ok && eqv(p.Car, a[0]) {
				return p
			}
		}
		return false
	})
	def("assoc", func(_ *Ctx, a []Value) Value {
		arity("assoc", a, 2)
		for _, entry := range listToSlice(a[1]) {
			p, ok := entry.(*Pair)
			if ok && deepEqual(p.Car, a[0]) {
				return p
			}
		}
		return false
	})
	def("abs", func(_ *Ctx, a []Value) Value {
		arity("abs", a, 1)
		switch x := a[0].(type) {
		case int64:
			if x < 0 {
				return -x
			}
			return x
		case float64:
			if x < 0 {
				return -x
			}
			return x
		}
		raise("abs: expects a number")
		return nil
	})
	def("member", func(_ *Ctx, a []Value) Value {
		arity("member", a, 2)
		rest := a[1]
		for {
			p, ok := rest.(*Pair)
			if !ok {
				return false
			}
			if deepEqual(p.Car, a[0]) {
				return rest
			}
			rest = p.Cdr
		}
	})
	def("remove", func(_ *Ctx, a []Value) Value {
		arity("remove", a, 2)
		s := listToSlice(a[1])
		out := make([]Value, 0, len(s))
		removed := false
		for _, v := range s {
			if !removed && eqv(v, a[0]) {
				removed = true
				continue
			}
			out = append(out, v)
		}
		return List(out...)
	})
	def("map", func(ctx *Ctx, a []Value) Value {
		if len(a) < 2 {
			raise("map: expects a procedure and at least one list")
		}
		lists := make([][]Value, len(a)-1)
		for i, l := range a[1:] {
			lists[i] = listToSlice(l)
		}
		n := len(lists[0])
		out := make([]Value, n)
		for i := 0; i < n; i++ {
			args := make([]Value, len(lists))
			for j := range lists {
				args[j] = lists[j][i]
			}
			out[i] = ctx.Apply(a[0], args)
		}
		return List(out...)
	})
	def("for-each", func(ctx *Ctx, a []Value) Value {
		if len(a) != 2 {
			raise("for-each: expects a procedure and a list")
		}
		for _, v := range listToSlice(a[1]) {
			ctx.Apply(a[0], []Value{v})
		}
		return Void{}
	})
	def("filter", func(ctx *Ctx, a []Value) Value {
		arity("filter", a, 2)
		var out []Value
		for _, v := range listToSlice(a[1]) {
			if isTrue(ctx.Apply(a[0], []Value{v})) {
				out = append(out, v)
			}
		}
		return List(out...)
	})
	def("apply", func(ctx *Ctx, a []Value) Value {
		if len(a) < 2 {
			raise("apply: expects a procedure and arguments")
		}
		args := make([]Value, 0, len(a))
		args = append(args, a[1:len(a)-1]...)
		args = append(args, listToSlice(a[len(a)-1])...)
		return ctx.Apply(a[0], args)
	})
	def("procedure?", func(_ *Ctx, a []Value) Value {
		arity("procedure?", a, 1)
		switch a[0].(type) {
		case *Closure, *Builtin:
			return true
		}
		return false
	})

	// --- strings and symbols ---
	def("string?", func(_ *Ctx, a []Value) Value { arity("string?", a, 1); _, ok := a[0].(string); return ok })
	def("symbol?", func(_ *Ctx, a []Value) Value { arity("symbol?", a, 1); _, ok := a[0].(Symbol); return ok })
	def("string-append", func(_ *Ctx, a []Value) Value {
		var sb strings.Builder
		for _, v := range a {
			s, ok := v.(string)
			if !ok {
				raise("string-append: expects strings")
			}
			sb.WriteString(s)
		}
		return sb.String()
	})
	def("string-length", func(_ *Ctx, a []Value) Value {
		arity("string-length", a, 1)
		s, ok := a[0].(string)
		if !ok {
			raise("string-length: expects a string")
		}
		return int64(len(s))
	})
	def("string=?", func(_ *Ctx, a []Value) Value {
		arity("string=?", a, 2)
		x, ok1 := a[0].(string)
		y, ok2 := a[1].(string)
		if !ok1 || !ok2 {
			raise("string=?: expects strings")
		}
		return x == y
	})
	def("number->string", func(_ *Ctx, a []Value) Value { arity("number->string", a, 1); return DisplayString(a[0]) })
	def("symbol->string", func(_ *Ctx, a []Value) Value {
		arity("symbol->string", a, 1)
		s, ok := a[0].(Symbol)
		if !ok {
			raise("symbol->string: expects a symbol")
		}
		return string(s)
	})
	def("format", func(_ *Ctx, a []Value) Value {
		if len(a) < 1 {
			raise("format: expects a format string")
		}
		f, ok := a[0].(string)
		if !ok {
			raise("format: expects a format string")
		}
		return formatScheme(f, a[1:])
	})

	// --- output ---
	def("printf", func(ctx *Ctx, a []Value) Value {
		if len(a) < 1 {
			raise("printf: expects a format string")
		}
		f, ok := a[0].(string)
		if !ok {
			raise("printf: expects a format string")
		}
		ctx.In.print(formatScheme(f, a[1:]))
		return Void{}
	})
	def("display", func(ctx *Ctx, a []Value) Value {
		arity("display", a, 1)
		ctx.In.print(DisplayString(a[0]))
		return Void{}
	})
	def("write", func(ctx *Ctx, a []Value) Value {
		arity("write", a, 1)
		ctx.In.print(WriteString(a[0]))
		return Void{}
	})
	def("newline", func(ctx *Ctx, a []Value) Value {
		ctx.In.print("\n")
		return Void{}
	})
	def("void", func(_ *Ctx, a []Value) Value { return Void{} })
	def("void?", func(_ *Ctx, a []Value) Value { arity("void?", a, 1); _, ok := a[0].(Void); return ok })
	def("error", func(_ *Ctx, a []Value) Value {
		parts := make([]string, len(a))
		for i, v := range a {
			parts[i] = DisplayString(v)
		}
		raise("%s", strings.Join(parts, " "))
		return nil
	})
}

// formatScheme implements the MzScheme format directives the paper's code
// uses: ~a (display), ~s/~v (write), ~n (newline), ~~ (tilde).
func formatScheme(f string, args []Value) string {
	var sb strings.Builder
	ai := 0
	for i := 0; i < len(f); i++ {
		if f[i] != '~' || i+1 >= len(f) {
			sb.WriteByte(f[i])
			continue
		}
		i++
		switch f[i] {
		case 'a', 'A':
			if ai >= len(args) {
				raise("format: too few arguments for ~a")
			}
			sb.WriteString(DisplayString(args[ai]))
			ai++
		case 's', 'S', 'v', 'V':
			if ai >= len(args) {
				raise("format: too few arguments for ~s")
			}
			sb.WriteString(WriteString(args[ai]))
			ai++
		case 'n', '%':
			sb.WriteByte('\n')
		case '~':
			sb.WriteByte('~')
		default:
			raise("format: unknown directive ~%c", f[i])
		}
	}
	return sb.String()
}

func arity(name string, a []Value, n int) {
	if len(a) != n {
		raise("%s: expects %d argument(s), given %d", name, n, len(a))
	}
}

func isNumber(v Value) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

func toFloat(v Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	raise("expects a number, given %s", WriteString(v))
	return 0
}

func toInt(v Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	}
	raise("expects an integer, given %s", WriteString(v))
	return 0
}

func allInts(a []Value) bool {
	for _, v := range a {
		if _, ok := v.(int64); !ok {
			return false
		}
	}
	return true
}

func numFold(a []Value, id int64, fi func(int64, int64) int64, ff func(float64, float64) float64) Value {
	if allInts(a) {
		acc := id
		for _, v := range a {
			acc = fi(acc, v.(int64))
		}
		return acc
	}
	acc := float64(id)
	for _, v := range a {
		acc = ff(acc, toFloat(v))
	}
	return acc
}

func numFoldFrom(a []Value, fi func(int64, int64) int64, ff func(float64, float64) float64) Value {
	if len(a) == 0 {
		raise("expects at least 1 argument")
	}
	if allInts(a) {
		acc := a[0].(int64)
		for _, v := range a[1:] {
			acc = fi(acc, v.(int64))
		}
		return acc
	}
	acc := toFloat(a[0])
	for _, v := range a[1:] {
		acc = ff(acc, toFloat(v))
	}
	return acc
}

func intOp2(name string, a []Value, f func(int64, int64) int64) Value {
	arity(name, a, 2)
	y := toInt(a[1])
	if y == 0 {
		raise("%s: division by zero", name)
	}
	return f(toInt(a[0]), y)
}

func cmpOp(name string, f func(float64, float64) bool) func(*Ctx, []Value) Value {
	return func(_ *Ctx, a []Value) Value {
		if len(a) < 2 {
			raise("%s: expects at least 2 arguments", name)
		}
		for i := 0; i < len(a)-1; i++ {
			if !f(toFloat(a[i]), toFloat(a[i+1])) {
				return false
			}
		}
		return true
	}
}

func max64(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}

func maxF(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// eqv compares identities: pointers for heap values, value equality for
// immediates. It never panics on uncomparable dynamic types.
func eqv(x, y Value) bool {
	switch a := x.(type) {
	case Symbol:
		b, ok := y.(Symbol)
		return ok && a == b
	case int64:
		b, ok := y.(int64)
		return ok && a == b
	case float64:
		b, ok := y.(float64)
		return ok && a == b
	case bool:
		b, ok := y.(bool)
		return ok && a == b
	case string:
		b, ok := y.(string)
		return ok && a == b
	case Empty:
		_, ok := y.(Empty)
		return ok
	case Void:
		_, ok := y.(Void)
		return ok
	case *Pair:
		b, ok := y.(*Pair)
		return ok && a == b
	case *Closure:
		b, ok := y.(*Closure)
		return ok && a == b
	case *Builtin:
		b, ok := y.(*Builtin)
		return ok && a == b
	case *StructVal:
		b, ok := y.(*StructVal)
		return ok && a == b
	case *StructType:
		b, ok := y.(*StructType)
		return ok && a == b
	default:
		// Runtime objects (threads, channels, custodians, events): all
		// are pointer-shaped and comparable.
		return x == y
	}
}

func deepEqual(x, y Value) bool {
	if eqv(x, y) {
		return true
	}
	a, ok1 := x.(*Pair)
	b, ok2 := y.(*Pair)
	if ok1 && ok2 {
		return deepEqual(a.Car, b.Car) && deepEqual(a.Cdr, b.Cdr)
	}
	return false
}

func asPair(name string, v Value) *Pair {
	p, ok := v.(*Pair)
	if !ok {
		raise("%s: expects a pair, given %s", name, WriteString(v))
	}
	return p
}
