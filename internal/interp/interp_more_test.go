package interp_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

func TestExtendedListBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"(caar '((1 2) 3))", "1"},
		{"(cddr '(1 2 3 4))", "(3 4)"},
		{"(caddr '(1 2 3 4))", "3"},
		{"(list-tail '(a b c d) 2)", "(c d)"},
		{"(last '(1 2 3))", "3"},
		{"(assq 'b '((a 1) (b 2)))", "(b 2)"},
		{"(assq 'z '((a 1)))", "#f"},
		{"(assoc '(1) '(((1) one) ((2) two)))", "((1) one)"},
		{"(abs -5)", "5"},
		{"(abs 2.5)", "2.5"},
		{"(for-each (lambda (x) x) '(1 2))", "#<void>"},
	}
	for _, c := range cases {
		if got := interp.WriteString(evalValue(t, c.src)); got != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParameterizeBreakEnabled(t *testing.T) {
	// A break sent while breaks are disabled is delayed, exactly like
	// core.WithBreaks: the sleep completes, then the next blocking
	// operation (with breaks re-enabled) raises.
	out := run(t, `
(define t
  (spawn (lambda ()
           (parameterize ([break-enabled #f])
             (sleep 20))
           (printf "slept~n")
           ;; breaks re-enabled: the delayed break interrupts this wait
           (sync (channel-recv-evt (channel))))))
(sleep 5)
(break-thread t)
(sync (thread-done-evt t))
(printf "done~n")`)
	slept := strings.Index(out, "slept")
	done := strings.Index(out, "done")
	if slept < 0 || done < 0 || slept > done {
		t.Fatalf("got %q: want full sleep before the delayed break", out)
	}
}

func TestSyncEnableBreakInScheme(t *testing.T) {
	// sync/enable-break lets a break interrupt a wait even when breaks
	// are disabled in the surrounding extent.
	out := run(t, `
(define done (channel))
(define t
  (spawn (lambda ()
           (parameterize ([break-enabled #f])
             (sync/enable-break (channel-recv-evt (channel)))))))
(sleep 5)
(break-thread t)
(sync (thread-done-evt t))
(printf "interrupted~n")`)
	if !strings.Contains(out, "interrupted") {
		t.Fatalf("got %q", out)
	}
}

func TestCondemnedBuiltin(t *testing.T) {
	out := run(t, `
(define c (make-custodian))
(parameterize ([current-custodian c])
  (spawn (lambda () (sleep 1000000)))
  (spawn (lambda () (sleep 1000000))))
(sleep 5)
(custodian-shutdown-all c)
(printf "~a~n" (>= (terminate-condemned!) 2))`)
	if out != "#t\n" {
		t.Fatalf("got %q", out)
	}
}

func TestNestedCustodiansInScheme(t *testing.T) {
	out := run(t, `
(define outer (make-custodian))
(define inner (parameterize ([current-custodian outer]) (make-custodian)))
(define t (parameterize ([current-custodian inner])
            (spawn (lambda () (sleep 1000000)))))
(custodian-shutdown-all outer)
(printf "~a~n" (thread-suspended? t))`)
	if out != "#t\n" {
		t.Fatalf("got %q", out)
	}
}

func TestSemaphoreEvtInScheme(t *testing.T) {
	out := run(t, `
(define s (make-semaphore 1))
(printf "~a~n" (sync (wrap-evt (semaphore-wait-evt s) (lambda (void) 'took))))`)
	if out != "took\n" {
		t.Fatalf("got %q", out)
	}
}

func TestSyncMultipleArgsIsChoice(t *testing.T) {
	out := run(t, `
(define c (channel))
(spawn (lambda () (sync (channel-send-evt c 'msg))))
(printf "~a~n" (sync (channel-recv-evt c) (after-evt 5000)))`)
	if out != "msg\n" {
		t.Fatalf("got %q", out)
	}
}

func TestChannelAsEventSyncsAsReceive(t *testing.T) {
	// MzScheme treats a channel itself as an event meaning "receive".
	out := run(t, `
(define c (channel))
(spawn (lambda () (sync (channel-send-evt c 42))))
(printf "~a~n" (sync c))`)
	if out != "42\n" {
		t.Fatalf("got %q", out)
	}
}

func TestThreadAsEventSyncsAsDone(t *testing.T) {
	out := run(t, `
(define t (spawn (lambda () (sleep 1))))
(sync t)
(printf "done~n")`)
	if out != "done\n" {
		t.Fatalf("got %q", out)
	}
}

func TestStructPredicatesAreTypeSpecific(t *testing.T) {
	out := run(t, `
(define-struct a (x))
(define-struct b (x))
(printf "~a ~a~n" (a? (make-a 1)) (a? (make-b 1)))`)
	if out != "#t #f\n" {
		t.Fatalf("got %q", out)
	}
}

func TestSelectorErrorsOnWrongStruct(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	err := in.RunString(`
(define-struct a (x))
(define-struct b (x))
(a-x (make-b 1))`)
	if err == nil {
		t.Fatal("selector accepted wrong struct type")
	}
}

func TestUnsupportedParameterizeErrors(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	if err := in.RunString(`(parameterize ([unknown-param 1]) 2)`); err == nil {
		t.Fatal("unsupported parameter accepted")
	}
}

func TestDeepRecursionViaMutualTailCalls(t *testing.T) {
	src := `
(define (ping n) (if (zero? n) 'done (pong (sub1 n))))
(define (pong n) (ping n))
(ping 300000)`
	if got := interp.WriteString(evalValue(t, src)); got != "done" {
		t.Fatalf("got %s", got)
	}
}

func TestShadowingBuiltins(t *testing.T) {
	src := `
(define (car x) 'shadowed)
(car '(1 2))`
	if got := interp.WriteString(evalValue(t, src)); got != "shadowed" {
		t.Fatalf("got %s", got)
	}
}

func TestClosureCapturesLoopVariableViaLet(t *testing.T) {
	src := `
(define fs
  (let loop ([i 0] [acc '()])
    (if (= i 3)
        (reverse acc)
        (loop (add1 i) (cons (lambda () i) acc)))))
(map (lambda (f) (f)) fs)`
	if got := interp.WriteString(evalValue(t, src)); got != "(0 1 2)" {
		t.Fatalf("got %s", got)
	}
}
