package interp_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

// run evaluates src on a fresh runtime and returns printed output.
func run(t *testing.T, src string) string {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	var out strings.Builder
	in.SetOutput(&out)
	if err := in.RunString(src); err != nil {
		t.Fatalf("RunString: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

// evalValue evaluates src and returns the last form's value.
func evalValue(t *testing.T, src string) interp.Value {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	var v interp.Value
	var evalErr error
	err := rt.Run(func(th *core.Thread) {
		v, evalErr = in.EvalString(th, src)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if evalErr != nil {
		t.Fatalf("EvalString: %v", evalErr)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want interp.Value
	}{
		{"(+ 1 2 3)", int64(6)},
		{"(- 10 3 2)", int64(5)},
		{"(- 4)", int64(-4)},
		{"(* 2 3 4)", int64(24)},
		{"(/ 10 4)", 2.5},
		{"(modulo -7 3)", int64(2)},
		{"(remainder -7 3)", int64(-1)},
		{"(quotient 17 5)", int64(3)},
		{"(max 1 9 4)", int64(9)},
		{"(min 3 -2 8)", int64(-2)},
		{"(add1 41)", int64(42)},
		{"(sub1 43)", int64(42)},
		{"(< 1 2 3)", true},
		{"(< 1 3 2)", false},
		{"(= 2 2 2)", true},
		{"(+ 1 2.5)", 3.5},
	}
	for _, c := range cases {
		if got := evalValue(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestListsAndPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"(cons 1 2)", "(1 . 2)"},
		{"(list 1 2 3)", "(1 2 3)"},
		{"(car '(a b))", "a"},
		{"(cdr '(a b))", "(b)"},
		{"(cadr '(a b c))", "b"},
		{"(append '(1 2) '(3) '())", "(1 2 3)"},
		{"(reverse '(1 2 3))", "(3 2 1)"},
		{"(length '(a b c))", "3"},
		{"(map (lambda (x) (* x x)) '(1 2 3))", "(1 4 9)"},
		{"(filter odd? '(1 2 3 4 5))", "(1 3 5)"},
		{"(remove 2 '(1 2 3 2))", "(1 3 2)"},
		{"(member 2 '(1 2 3))", "(2 3)"},
		{"(apply + 1 2 '(3 4))", "10"},
		{"(null? '())", "#t"},
		{"(pair? '(1))", "#t"},
		{"(equal? '(1 (2)) '(1 (2)))", "#t"},
		{"(eq? 'a 'a)", "#t"},
		{"(list-ref '(a b c) 1)", "b"},
	}
	for _, c := range cases {
		if got := interp.WriteString(evalValue(t, c.src)); got != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestSpecialForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"(if #t 'yes 'no)", "yes"},
		{"(if #f 'yes 'no)", "no"},
		{"(if 0 'yes 'no)", "yes"}, // only #f is false
		{"(cond (#f 1) (else 2))", "2"},
		{"(cond ((= 1 1) 'eq))", "eq"},
		{"(and 1 2 3)", "3"},
		{"(and 1 #f 3)", "#f"},
		{"(or #f #f 7)", "7"},
		{"(or #f)", "#f"},
		{"(when #t 1 2)", "2"},
		{"(unless #f 'ran)", "ran"},
		{"(let ([x 2] [y 3]) (+ x y))", "5"},
		{"(let* ([x 2] [y (* x x)]) y)", "4"},
		{"(letrec ([even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1))))] [odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))]) (even2? 10))", "#t"},
		{"(begin 1 2 3)", "3"},
		{"(let loop ([i 0] [acc '()]) (if (= i 3) (reverse acc) (loop (add1 i) (cons i acc))))", "(0 1 2)"},
	}
	for _, c := range cases {
		if got := interp.WriteString(evalValue(t, c.src)); got != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestClosuresAndState(t *testing.T) {
	src := `
(define (make-counter)
  (let ([n 0])
    (lambda () (set! n (add1 n)) n)))
(define c1 (make-counter))
(define c2 (make-counter))
(c1) (c1)
(list (c1) (c2))`
	if got := interp.WriteString(evalValue(t, src)); got != "(3 1)" {
		t.Fatalf("got %s", got)
	}
}

func TestProperTailCalls(t *testing.T) {
	// A million-iteration self tail call must not grow the stack.
	src := `
(define (loop i)
  (if (zero? i) 'done (loop (sub1 i))))
(loop 1000000)`
	if got := interp.WriteString(evalValue(t, src)); got != "done" {
		t.Fatalf("got %s", got)
	}
}

func TestDefineStruct(t *testing.T) {
	src := `
(define-struct point (x y))
(define p (make-point 3 4))
(list (point? p) (point? 5) (point-x p) (point-y p))`
	if got := interp.WriteString(evalValue(t, src)); got != "(#t #f 3 4)" {
		t.Fatalf("got %s", got)
	}
}

func TestVariadicLambda(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"((lambda args args) 1 2 3)", "(1 2 3)"},
		{"((lambda (a . rest) (list a rest)) 1 2 3)", "(1 (2 3))"},
	}
	for _, c := range cases {
		if got := interp.WriteString(evalValue(t, c.src)); got != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestPrintfAndFormat(t *testing.T) {
	out := run(t, `(printf "x=~a y=~s~n" 42 "hi")`)
	if out != "x=42 y=\"hi\"\n" {
		t.Fatalf("got %q", out)
	}
	if got := evalValue(t, `(format "~a-~a" 1 2)`); got != "1-2" {
		t.Fatalf("format: %v", got)
	}
}

func TestReaderErrors(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	for _, src := range []string{"(", "(1 . )", `"unterminated`, "#q", ")"} {
		if err := in.RunString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSchemeErrors(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	for _, src := range []string{
		"unbound",
		"(car 5)",
		"(1 2)",
		"(error \"boom\")",
		"(/ 1 0)",
		"(set! nope 1)",
	} {
		if err := in.RunString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestThreadsAndChannels(t *testing.T) {
	out := run(t, `
(define c (channel))
(spawn (lambda () (sync (channel-send-evt c "Hello"))))
(printf "~a~n" (sync (channel-recv-evt c)))`)
	if out != "Hello\n" {
		t.Fatalf("got %q", out)
	}
}

func TestChoiceAndWrapInScheme(t *testing.T) {
	out := run(t, `
(define c1 (channel))
(define c2 (channel))
(spawn (lambda () (sync (channel-send-evt c1 "Hello"))))
(spawn (lambda () (sync (channel-send-evt c2 "Nihao"))))
(define cc (choice-evt
  (wrap-evt (channel-recv-evt c1) (lambda (x) (list x "from 1")))
  (wrap-evt (channel-recv-evt c2) (lambda (x) (list x "from 2")))))
(define a (sync cc))
(define b (sync cc))
(printf "~a~n" (length (list a b)))`)
	if out != "2\n" {
		t.Fatalf("got %q", out)
	}
}

func TestThreadDoneEvtInScheme(t *testing.T) {
	out := run(t, `
(define t1 (spawn (lambda () (printf "Hello~n"))))
(sync (thread-done-evt t1))
(printf "Bye~n")`)
	if out != "Hello\nBye\n" {
		t.Fatalf("got %q", out)
	}
}

func TestGuardTimeoutInScheme(t *testing.T) {
	// The paper's one-sec-timeout example, scaled down.
	out := run(t, `
(define short-timeout
  (guard-evt (lambda () (time-evt (+ 5 (current-time))))))
(sync short-timeout)
(sync short-timeout)
(printf "twice~n")`)
	if out != "twice\n" {
		t.Fatalf("got %q", out)
	}
}

func TestNackGuardInScheme(t *testing.T) {
	// The paper's Section 5 nack example: the guarded event loses, so its
	// nack fires and the watcher prints.
	out := run(t, `
(define done (channel))
(sync (choice-evt
       (wrap-evt (after-evt 1) (lambda (void) "Hello"))
       (nack-guard-evt
        (lambda (nack)
          (spawn (lambda () (sync nack) (sync (channel-send-evt done 'nacked))))
          (channel-recv-evt (channel))))))
(printf "~a~n" (sync (channel-recv-evt done)))`)
	if out != "nacked\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCustodianInScheme(t *testing.T) {
	out := run(t, `
(define cust (make-custodian))
(define t
  (parameterize ([current-custodian cust])
    (spawn (lambda () (sleep 100000)))))
(custodian-shutdown-all cust)
(printf "suspended=~a~n" (thread-suspended? t))
(thread-resume t)                ; no custodian: no effect
(printf "still=~a~n" (thread-suspended? t))`)
	if out != "suspended=#t\nstill=#t\n" {
		t.Fatalf("got %q", out)
	}
}

func TestThreadResumeYokeInScheme(t *testing.T) {
	out := run(t, `
(define c1 (make-custodian))
(define c2 (make-custodian))
(define t1 (parameterize ([current-custodian c1]) (spawn (lambda () (sleep 100000)))))
(define t2 (parameterize ([current-custodian c2]) (spawn (lambda () (sleep 100000)))))
(thread-resume t1 t2)            ; t1 survives at least as long as t2
(custodian-shutdown-all c1)
(printf "after-c1=~a~n" (thread-suspended? t1))
(custodian-shutdown-all c2)
(printf "after-c2=~a~n" (thread-suspended? t1))`)
	if out != "after-c1=#f\nafter-c2=#t\n" {
		t.Fatalf("got %q", out)
	}
}

// figure7Queue is the paper's Figure 7 — the complete kill-safe queue —
// transcribed into mzmini.
const figure7Queue = `
(define-struct q (in-ch out-ch mgr-t))

(define (queue)
  (define in-ch (channel))
  (define out-ch (channel))
  (define (serve items)
    (if (null? items)
        (serve (list (sync (channel-recv-evt in-ch))))
        (sync
         (choice-evt
          (wrap-evt (channel-recv-evt in-ch)
                    (lambda (v)
                      (serve (append items (list v)))))
          (wrap-evt (channel-send-evt out-ch (car items))
                    (lambda (void)
                      (serve (cdr items))))))))
  (define mgr-t (spawn (lambda () (serve (list)))))
  (make-q in-ch out-ch mgr-t))

(define (queue-send-evt q v)
  (guard-evt
   (lambda ()
     (thread-resume (q-mgr-t q) (current-thread))
     (channel-send-evt (q-in-ch q) v))))

(define (queue-recv-evt q)
  (guard-evt
   (lambda ()
     (thread-resume (q-mgr-t q) (current-thread))
     (channel-recv-evt (q-out-ch q)))))
`

func TestFigure7QueueInScheme(t *testing.T) {
	out := run(t, figure7Queue+`
(define q (queue))
(sync (queue-send-evt q "Hello"))
(sync (queue-send-evt q "Bye"))
(printf "~a~n" (sync (queue-recv-evt q)))
(printf "~a~n" (sync (queue-recv-evt q)))`)
	if out != "Hello\nBye\n" {
		t.Fatalf("got %q", out)
	}
}

func TestFigure7QueueIsKillSafeInScheme(t *testing.T) {
	// The paper's Section 4 scenario, in Scheme: t1 (custodian c1)
	// creates the queue; c1 is shut down; t2 can still use the queue
	// because the guard resumes and re-custodies the manager.
	out := run(t, figure7Queue+`
(define c1 (make-custodian))
(define hand-off (channel))
(parameterize ([current-custodian c1])
  (spawn (lambda ()
           (define q (queue))
           (sync (queue-send-evt q 10))
           (sync (channel-send-evt hand-off q))
           (sleep 100000))))
(define q (sync (channel-recv-evt hand-off)))
(custodian-shutdown-all c1)
(printf "suspended=~a~n" (thread-suspended? (q-mgr-t q)))
(printf "got=~a~n" (sync (queue-recv-evt q)))
(sync (queue-send-evt q 11))
(printf "then=~a~n" (sync (queue-recv-evt q)))`)
	want := "suspended=#t\ngot=10\nthen=11\n"
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestUnsafeQueueWedgesInScheme(t *testing.T) {
	// Figure 5's flaw, demonstrated in Scheme: without the guards, after
	// c1 dies a send gets stuck, and the probe's timeout wins instead.
	out := run(t, `
(define-struct q (in-ch out-ch mgr-t))
(define (queue)
  (define in-ch (channel))
  (define out-ch (channel))
  (define (serve items)
    (if (null? items)
        (serve (list (sync (channel-recv-evt in-ch))))
        (sync
         (choice-evt
          (wrap-evt (channel-recv-evt in-ch)
                    (lambda (v) (serve (append items (list v)))))
          (wrap-evt (channel-send-evt out-ch (car items))
                    (lambda (void) (serve (cdr items))))))))
  (define mgr-t (spawn (lambda () (serve (list)))))
  (make-q in-ch out-ch mgr-t))
(define c1 (make-custodian))
(define hand-off (channel))
(parameterize ([current-custodian c1])
  (spawn (lambda ()
           (sync (channel-send-evt hand-off (queue)))
           (sleep 100000))))
(define q (sync (channel-recv-evt hand-off)))
(custodian-shutdown-all c1)
(printf "~a~n"
  (sync (choice-evt
         (wrap-evt (channel-send-evt (q-in-ch q) 10) (lambda (void) 'sent))
         (wrap-evt (after-evt 30) (lambda (void) 'stuck)))))`)
	if out != "stuck\n" {
		t.Fatalf("got %q", out)
	}
}

func TestBreakInScheme(t *testing.T) {
	out := run(t, `
(define done (channel))
(define t (spawn (lambda ()
                   (sync (channel-recv-evt (channel))))))
(sleep 5)
(break-thread t)
(sync (thread-done-evt t))
(printf "broke~n")`)
	// The break unwinds the thread's blocking sync; the thread's error
	// handler reports it and the thread finishes.
	if !strings.Contains(out, "broke") {
		t.Fatalf("got %q", out)
	}
}

func TestSemaphoreInScheme(t *testing.T) {
	out := run(t, `
(define s (make-semaphore 0))
(define c (channel))
(spawn (lambda () (semaphore-wait s) (sync (channel-send-evt c 'acquired))))
(semaphore-post s)
(printf "~a~n" (sync (channel-recv-evt c)))`)
	if out != "acquired\n" {
		t.Fatalf("got %q", out)
	}
}

func TestKillThreadFiresNackInScheme(t *testing.T) {
	out := run(t, `
(define report (channel))
(define victim
  (spawn (lambda ()
           (sync (nack-guard-evt
                  (lambda (nack)
                    (spawn (lambda ()
                             (sync nack)
                             (sync (channel-send-evt report 'gave-up))))
                    (channel-recv-evt (channel))))))))
(sleep 5)
(kill-thread victim)
(printf "~a~n" (sync (channel-recv-evt report)))`)
	if out != "gave-up\n" {
		t.Fatalf("got %q", out)
	}
}
