// Package interp implements "mzmini", a small Scheme interpreter exposing
// the task and event primitives of internal/core under the names the paper
// uses — spawn, make-custodian, custodian-shutdown-all, thread-resume,
// sync, channel, choice-evt, wrap-evt, guard-evt, nack-guard-evt, and so
// on — so that the code in the paper's Figures 5–12 runs essentially as
// written. It is a tree-walking evaluator with proper tail calls (manager
// loops like the queue's serve recur indefinitely), lexical closures,
// define-struct, and parameterize for current-custodian and break-enabled.
package interp

import (
	"fmt"
	"strings"
	"sync"
)

// Value is any Scheme value. The representations are:
//
//	Symbol          symbols
//	int64, float64  numbers
//	string          strings
//	bool            booleans
//	*Pair, Empty    lists
//	Void            the unspecified value
//	*Closure        lambdas
//	*Builtin        primitive procedures
//	*StructType     a define-struct type descriptor
//	*StructVal      a structure instance
//	*core.Thread, *core.Custodian, *core.Chan, core.Event, *core.Semaphore
//	                runtime objects, passed through opaquely
type Value = any

// Symbol is a Scheme symbol.
type Symbol string

// Empty is the empty list '().
type Empty struct{}

// Void is the unspecified value returned by define, set!, printf, etc.
type Void struct{}

// Pair is a cons cell. Pairs are immutable (mzmini has no set-car!).
type Pair struct {
	Car Value
	Cdr Value
}

// Cons builds a pair.
func Cons(car, cdr Value) *Pair { return &Pair{Car: car, Cdr: cdr} }

// List builds a proper list.
func List(items ...Value) Value {
	var out Value = Empty{}
	for i := len(items) - 1; i >= 0; i-- {
		out = Cons(items[i], out)
	}
	return out
}

// listToSlice converts a proper list to a slice; it panics on improper
// lists.
func listToSlice(v Value) []Value {
	var out []Value
	for {
		switch x := v.(type) {
		case Empty:
			return out
		case *Pair:
			out = append(out, x.Car)
			v = x.Cdr
		default:
			panic(&Error{Msg: "expected a proper list"})
		}
	}
}

// Closure is a user-defined procedure.
type Closure struct {
	Name   string
	Params []Symbol
	Rest   Symbol // "" if none
	Body   []Value
	Env    *Env
}

// Builtin is a primitive procedure.
type Builtin struct {
	Name string
	Fn   func(ctx *Ctx, args []Value) Value
}

// StructType describes a define-struct type.
type StructType struct {
	Name   Symbol
	Fields []Symbol
}

// StructVal is an instance of a StructType.
type StructVal struct {
	Type   *StructType
	Fields []Value
}

// Error is a Scheme-level error, raised as a Go panic and recovered at the
// interpreter's entry points.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "mzmini: " + e.Msg }

func raise(format string, args ...any) {
	panic(&Error{Msg: fmt.Sprintf(format, args...)})
}

// Env is a lexical environment frame. Frames are shared across interpreter
// threads, so access is locked.
type Env struct {
	mu     sync.RWMutex
	vars   map[Symbol]Value
	parent *Env
}

// NewEnv creates a frame with the given parent (nil for the global frame).
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[Symbol]Value), parent: parent}
}

// Lookup resolves a symbol, panicking with a Scheme error if unbound.
func (e *Env) Lookup(s Symbol) Value {
	for f := e; f != nil; f = f.parent {
		f.mu.RLock()
		v, ok := f.vars[s]
		f.mu.RUnlock()
		if ok {
			return v
		}
	}
	raise("unbound identifier: %s", s)
	return nil
}

// Define binds s in this frame.
func (e *Env) Define(s Symbol, v Value) {
	e.mu.Lock()
	e.vars[s] = v
	e.mu.Unlock()
}

// Set assigns to the nearest binding of s, panicking if unbound.
func (e *Env) Set(s Symbol, v Value) {
	for f := e; f != nil; f = f.parent {
		f.mu.Lock()
		if _, ok := f.vars[s]; ok {
			f.vars[s] = v
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
	}
	raise("set!: unbound identifier: %s", s)
}

// WriteString renders a value in write notation (strings quoted).
func WriteString(v Value) string {
	var sb strings.Builder
	writeValue(&sb, v, true)
	return sb.String()
}

// DisplayString renders a value in display notation (strings bare).
func DisplayString(v Value) string {
	var sb strings.Builder
	writeValue(&sb, v, false)
	return sb.String()
}

func writeValue(sb *strings.Builder, v Value, quoted bool) {
	switch x := v.(type) {
	case nil:
		sb.WriteString("#<nil>")
	case Symbol:
		sb.WriteString(string(x))
	case bool:
		if x {
			sb.WriteString("#t")
		} else {
			sb.WriteString("#f")
		}
	case int64:
		fmt.Fprintf(sb, "%d", x)
	case float64:
		fmt.Fprintf(sb, "%g", x)
	case string:
		if quoted {
			fmt.Fprintf(sb, "%q", x)
		} else {
			sb.WriteString(x)
		}
	case Empty:
		sb.WriteString("()")
	case Void:
		sb.WriteString("#<void>")
	case *Pair:
		sb.WriteByte('(')
		writeValue(sb, x.Car, quoted)
		rest := x.Cdr
		for {
			switch r := rest.(type) {
			case *Pair:
				sb.WriteByte(' ')
				writeValue(sb, r.Car, quoted)
				rest = r.Cdr
				continue
			case Empty:
				sb.WriteByte(')')
				return
			default:
				sb.WriteString(" . ")
				writeValue(sb, rest, quoted)
				sb.WriteByte(')')
				return
			}
		}
	case *Closure:
		name := x.Name
		if name == "" {
			name = "lambda"
		}
		fmt.Fprintf(sb, "#<procedure:%s>", name)
	case *Builtin:
		fmt.Fprintf(sb, "#<procedure:%s>", x.Name)
	case *StructType:
		fmt.Fprintf(sb, "#<struct-type:%s>", x.Name)
	case *StructVal:
		fmt.Fprintf(sb, "#<%s", x.Type.Name)
		for _, f := range x.Fields {
			sb.WriteByte(' ')
			writeValue(sb, f, quoted)
		}
		sb.WriteByte('>')
	default:
		fmt.Fprintf(sb, "#<%T>", v)
	}
}
