package interp

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// reader parses s-expressions.
type reader struct {
	src []rune
	pos int
}

// ReadAll parses every top-level form in src.
func ReadAll(src string) ([]Value, error) {
	r := &reader{src: []rune(src)}
	var forms []Value
	for {
		r.skipAtmosphere()
		if r.eof() {
			return forms, nil
		}
		form, err := r.read()
		if err != nil {
			return nil, err
		}
		forms = append(forms, form)
	}
}

func (r *reader) eof() bool { return r.pos >= len(r.src) }

func (r *reader) peek() rune { return r.src[r.pos] }

func (r *reader) next() rune {
	c := r.src[r.pos]
	r.pos++
	return c
}

// skipAtmosphere skips whitespace and comments (; to end of line, #| |#
// block comments).
func (r *reader) skipAtmosphere() {
	for !r.eof() {
		c := r.peek()
		switch {
		case unicode.IsSpace(c):
			r.pos++
		case c == ';':
			for !r.eof() && r.peek() != '\n' {
				r.pos++
			}
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			depth := 1
			r.pos += 2
			for !r.eof() && depth > 0 {
				if r.pos+1 < len(r.src) && r.src[r.pos] == '#' && r.src[r.pos+1] == '|' {
					depth++
					r.pos += 2
				} else if r.pos+1 < len(r.src) && r.src[r.pos] == '|' && r.src[r.pos+1] == '#' {
					depth--
					r.pos += 2
				} else {
					r.pos++
				}
			}
		default:
			return
		}
	}
}

func (r *reader) read() (Value, error) {
	r.skipAtmosphere()
	if r.eof() {
		return nil, fmt.Errorf("mzmini: unexpected end of input")
	}
	c := r.peek()
	switch {
	case c == '(' || c == '[':
		return r.readList(c)
	case c == ')' || c == ']':
		return nil, fmt.Errorf("mzmini: unexpected %q", c)
	case c == '\'':
		r.pos++
		q, err := r.read()
		if err != nil {
			return nil, err
		}
		return List(Symbol("quote"), q), nil
	case c == '"':
		return r.readString()
	case c == '#':
		return r.readHash()
	default:
		return r.readAtom()
	}
}

func (r *reader) readList(open rune) (Value, error) {
	close := ')'
	if open == '[' {
		close = ']'
	}
	r.pos++ // consume open
	var items []Value
	var tail Value = Empty{}
	for {
		r.skipAtmosphere()
		if r.eof() {
			return nil, fmt.Errorf("mzmini: unterminated list")
		}
		if r.peek() == close {
			r.pos++
			break
		}
		if r.peek() == '.' && r.pos+1 < len(r.src) && isDelimiter(r.src[r.pos+1]) {
			r.pos++
			t, err := r.read()
			if err != nil {
				return nil, err
			}
			tail = t
			r.skipAtmosphere()
			if r.eof() || r.next() != close {
				return nil, fmt.Errorf("mzmini: malformed dotted list")
			}
			break
		}
		item, err := r.read()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = Cons(items[i], out)
	}
	return out, nil
}

func (r *reader) readString() (Value, error) {
	r.pos++ // consume quote
	var sb strings.Builder
	for {
		if r.eof() {
			return nil, fmt.Errorf("mzmini: unterminated string")
		}
		c := r.next()
		switch c {
		case '"':
			return sb.String(), nil
		case '\\':
			if r.eof() {
				return nil, fmt.Errorf("mzmini: unterminated string escape")
			}
			e := r.next()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\':
				sb.WriteRune(e)
			default:
				return nil, fmt.Errorf("mzmini: unknown string escape \\%c", e)
			}
		default:
			sb.WriteRune(c)
		}
	}
}

func (r *reader) readHash() (Value, error) {
	r.pos++ // consume '#'
	if r.eof() {
		return nil, fmt.Errorf("mzmini: lone #")
	}
	c := r.next()
	switch c {
	case 't':
		return true, nil
	case 'f':
		return false, nil
	default:
		return nil, fmt.Errorf("mzmini: unsupported reader syntax #%c", c)
	}
}

func isDelimiter(c rune) bool {
	return unicode.IsSpace(c) || strings.ContainsRune("()[]\";", c)
}

func (r *reader) readAtom() (Value, error) {
	start := r.pos
	for !r.eof() && !isDelimiter(r.peek()) {
		r.pos++
	}
	tok := string(r.src[start:r.pos])
	if tok == "" {
		return nil, fmt.Errorf("mzmini: empty token")
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, nil
	}
	return Symbol(tok), nil
}
