package wire

import (
	"strings"
	"testing"

	"repro/internal/web"
)

func respParseAll(t *testing.T, c Codec, input string) []*Frame {
	t.Helper()
	var frames []*Frame
	buf := []byte(input)
	for {
		f, rest, err := c.Parse(buf)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		buf = rest
		if f == nil {
			break
		}
		frames = append(frames, f)
	}
	if len(buf) != 0 {
		t.Fatalf("%d unconsumed bytes: %q", len(buf), buf)
	}
	return frames
}

func TestRESPInlineCommands(t *testing.T) {
	c := NewRESP("/kv")
	frames := respParseAll(t, c, "PING\r\nGET a\r\nSET a 1\r\nDEL a\r\nSTATS\r\n\r\nQUIT\r\n")
	if len(frames) != 6 {
		t.Fatalf("got %d frames, want 6", len(frames))
	}
	if string(frames[0].Immediate) != "+PONG\r\n" {
		t.Errorf("PING: %q", frames[0].Immediate)
	}
	get := frames[1].Req
	if get == nil || get.Method != "GET" || get.Path != "/kv" || get.Query["key"] != "a" {
		t.Errorf("GET: %+v", get)
	}
	set := frames[2].Req
	if set == nil || set.Method != "PUT" || set.Query["key"] != "a" || set.Query["val"] != "1" {
		t.Errorf("SET: %+v", set)
	}
	del := frames[3].Req
	if del == nil || del.Method != "DELETE" || del.Query["key"] != "a" {
		t.Errorf("DEL: %+v", del)
	}
	if frames[4].Req == nil || frames[4].Req.Path != "/kv/stats" {
		t.Errorf("STATS: %+v", frames[4].Req)
	}
	if string(frames[5].Immediate) != "+OK\r\n" || !frames[5].Close {
		t.Errorf("QUIT: %+v", frames[5])
	}
}

func TestRESPMultiBulk(t *testing.T) {
	c := NewRESP("/kv")
	input := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"
	// Whole and byte-at-a-time delivery must both yield one SET frame.
	for _, n := range []int{1, len(input)} {
		frames := feed(t, NewRESP("/kv"), input, n)
		if len(frames) != 1 || frames[0].Req == nil {
			t.Fatalf("chunk=%d: frames %+v", n, frames)
		}
		if frames[0].Req.Query["key"] != "k" || frames[0].Req.Query["val"] != "hello" {
			t.Fatalf("chunk=%d: query %v", n, frames[0].Req.Query)
		}
	}
	// Bulk args may contain spaces — inline args cannot.
	f, _, err := c.Parse([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$3\r\na b\r\n"))
	if err != nil || f == nil || f.Req.Query["val"] != "a b" {
		t.Fatalf("bulk with space: %+v err=%v", f, err)
	}
}

func TestRESPMultiExec(t *testing.T) {
	c := NewRESP("/kv")
	frames := respParseAll(t, c, "MULTI\r\nSET a 1\r\nGET b\r\nDEL c\r\nEXEC\r\n")
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	for i, want := range []string{"+OK\r\n", "+QUEUED\r\n", "+QUEUED\r\n", "+QUEUED\r\n"} {
		if string(frames[i].Immediate) != want {
			t.Errorf("frame %d: %q, want %q", i, frames[i].Immediate, want)
		}
	}
	exec := frames[4]
	if exec.Req == nil || exec.Req.Path != "/kv/multi" {
		t.Fatalf("EXEC frame: %+v", exec)
	}
	if ops := exec.Req.Query["ops"]; ops != "w:a:1,r:b,d:c" {
		t.Errorf("ops spec: %q", ops)
	}

	// EXEC response: committed with one read that hit and the encoding of
	// the reads is in op order.
	out := string(c.AppendResponse(nil, exec, web.Response{Status: 200, Body: "COMMITTED\nb=2\n"}, false))
	if out != "*2\r\n+COMMITTED\r\n$1\r\n2\r\n" {
		t.Errorf("EXEC encoding: %q", out)
	}
	out = string(c.AppendResponse(nil, exec, web.Response{Status: 200, Body: "COMMITTED\nb!\n"}, false))
	if out != "*2\r\n+COMMITTED\r\n$-1\r\n" {
		t.Errorf("EXEC missing-read encoding: %q", out)
	}
	out = string(c.AppendResponse(nil, exec, web.Response{Status: 200, Body: "ABORTED conflict\n"}, false))
	if out != "*1\r\n-ABORTED conflict\r\n" {
		t.Errorf("EXEC abort encoding: %q", out)
	}
}

func TestRESPMultiStateMachine(t *testing.T) {
	c := NewRESP("/kv")
	// Empty EXEC answers *0 without a dispatch.
	frames := respParseAll(t, c, "MULTI\r\nEXEC\r\n")
	if string(frames[1].Immediate) != "*0\r\n" {
		t.Errorf("empty EXEC: %+v", frames[1])
	}
	// DISCARD resets; the next GET is a plain dispatch.
	frames = respParseAll(t, c, "MULTI\r\nSET a 1\r\nDISCARD\r\nGET a\r\n")
	if string(frames[2].Immediate) != "+OK\r\n" || frames[3].Req == nil {
		t.Errorf("DISCARD: %+v / %+v", frames[2], frames[3])
	}
	// A bad queued command dirties the transaction: EXEC aborts client-side.
	frames = respParseAll(t, c, "MULTI\r\nSET a:b 1\r\nSET ok 2\r\nEXEC\r\n")
	if !strings.HasPrefix(string(frames[1].Immediate), "-ERR") {
		t.Errorf("bad key: %q", frames[1].Immediate)
	}
	if string(frames[2].Immediate) != "+QUEUED\r\n" {
		t.Errorf("queue after error: %q", frames[2].Immediate)
	}
	if !strings.HasPrefix(string(frames[3].Immediate), "-EXECABORT") {
		t.Errorf("dirty EXEC: %q", frames[3].Immediate)
	}
	// EXEC/DISCARD outside MULTI, nested MULTI, unknown commands.
	frames = respParseAll(t, c, "EXEC\r\nMULTI\r\nMULTI\r\nDISCARD\r\nBOGUS\r\n")
	for i, want := range []string{"-ERR EXEC", "+OK", "-ERR MULTI calls", "+OK", "-ERR unknown"} {
		if !strings.HasPrefix(string(frames[i].Immediate), want) {
			t.Errorf("frame %d: %q, want prefix %q", i, frames[i].Immediate, want)
		}
	}
}

func TestRESPResponses(t *testing.T) {
	c := NewRESP("/kv")
	frame := func(cmdline string) *Frame {
		f, _, err := c.Parse([]byte(cmdline + "\r\n"))
		if err != nil || f == nil {
			t.Fatalf("%q: %v", cmdline, err)
		}
		return f
	}
	cases := []struct {
		cmd  string
		resp web.Response
		want string
	}{
		{"GET a", web.Response{Status: 200, Body: "v1"}, "$2\r\nv1\r\n"},
		{"GET a", web.Response{Status: 404, Body: "no such key\n"}, "$-1\r\n"},
		{"SET a 1", web.Response{Status: 200, Body: "ok\n"}, "+OK\r\n"},
		{"SET a 1", web.Response{Status: 409, Body: "conflict\n"}, "-CONFLICT 409 conflict\r\n"},
		{"DEL a", web.Response{Status: 200, Body: "ok\n"}, ":1\r\n"},
		{"STATS", web.Response{Status: 200, Body: `{"gets":1}`}, "$10\r\n{\"gets\":1}\r\n"},
		{"CALL /debug/x", web.Response{Status: 200, Body: "blob"}, "$4\r\nblob\r\n"},
		{"GET a", web.Response{Status: 503, Body: "store down\n"}, "-UNAVAILABLE 503 store down\r\n"},
	}
	for _, tc := range cases {
		got := string(c.AppendResponse(nil, frame(tc.cmd), tc.resp, false))
		if got != tc.want {
			t.Errorf("%s / %d: got %q, want %q", tc.cmd, tc.resp.Status, got, tc.want)
		}
	}
	if got := string(c.AppendFault(nil, 408, "idle timeout")); got != "-TIMEOUT 408 idle timeout\r\n" {
		t.Errorf("fault: %q", got)
	}
}

func TestRESPParseErrors(t *testing.T) {
	for _, input := range []string{
		"*x\r\n",
		"*2\r\nnope\r\n",
		"*1\r\n$-5\r\n",
		"*1\r\n$3\r\nabcde\r\n", // bulk not CRLF-terminated at declared length
		"*999\r\n",
	} {
		if _, _, err := NewRESP("/kv").Parse([]byte(input)); err == nil {
			t.Errorf("%q: want parse error", input)
		}
	}
	// Incomplete frames are not errors.
	for _, input := range []string{"*2\r\n$3\r\nGET\r\n", "GET partial"} {
		f, _, err := NewRESP("/kv").Parse([]byte(input))
		if f != nil || err != nil {
			t.Errorf("%q: want incomplete, got f=%v err=%v", input, f, err)
		}
	}
	// Blank lines between commands are skipped.
	frames := respParseAll(t, NewRESP("/kv"), "\r\n\r\nPING\r\n")
	if len(frames) != 1 || string(frames[0].Immediate) != "+PONG\r\n" {
		t.Errorf("blank-line skip: %+v", frames)
	}
}

func TestWireNew(t *testing.T) {
	for _, name := range []string{"", "http", "http/1.1"} {
		fac, err := New(name, Options{})
		if err != nil || fac().Name() != "http/1.1" {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	fac, err := New("resp", Options{})
	if err != nil || fac().Name() != "resp" {
		t.Fatalf("New(resp): %v", err)
	}
	// Factories mint independent codecs: MULTI state must not leak.
	a, b := fac(), fac()
	if f, _, _ := a.Parse([]byte("MULTI\r\n")); f == nil {
		t.Fatal("MULTI on a")
	}
	f, _, _ := b.Parse([]byte("GET k\r\n"))
	if f == nil || f.Req == nil {
		t.Fatalf("codec b leaked MULTI state: %+v", f)
	}
	if _, err := New("gopher", Options{}); err == nil {
		t.Error("New(gopher): want error")
	}
}
