package wire

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/web"
)

// maxHeadBytes caps an HTTP request head; a client that never finishes
// its headers is a protocol error, not backpressure.
const maxHeadBytes = 64 << 10

// maxBodyBytes caps a Content-Length body. Servlets are GET-shaped (the
// body is consumed and discarded), so this is an abuse bound, not a
// feature limit.
const maxBodyBytes = 1 << 20

// httpCodec is the HTTP/1.1 codec: persistent connections by default,
// pipelining (Parse consumes one frame at a time and leaves the rest
// buffered), Content-Length bodies, and status lines that echo the
// request's protocol version instead of hardcoding HTTP/1.0.
type httpCodec struct{}

// NewHTTP creates an HTTP/1.1 codec. HTTP/1.0 clients are still served
// with 1.0 semantics: their version is echoed and the connection closes
// unless they ask for keep-alive.
func NewHTTP() Codec { return httpCodec{} }

func (httpCodec) Name() string { return "http/1.1" }

// Parse extracts one complete request (head and, when Content-Length
// says so, body) from buf. Pipelined requests simply stay in the
// remainder for the next call.
func (httpCodec) Parse(buf []byte) (*Frame, []byte, error) {
	head, rest, ok := cutHead(buf)
	if !ok {
		if len(buf) > maxHeadBytes {
			return nil, buf, fmt.Errorf("request head exceeds %d bytes", maxHeadBytes)
		}
		return nil, buf, nil
	}
	lines := strings.Split(head, "\n")
	fields := strings.Fields(strings.TrimRight(lines[0], "\r"))
	if len(fields) < 2 {
		return nil, rest, fmt.Errorf("malformed request line %q", strings.TrimRight(lines[0], "\r"))
	}
	method, target := fields[0], fields[1]
	proto := "HTTP/1.0"
	if len(fields) >= 3 {
		proto = fields[2]
	}
	// Keep-alive default is the version's: 1.1 persists unless the client
	// says close; 1.0 closes unless the client says keep-alive.
	keep := proto == "HTTP/1.1"
	contentLn := 0
	for _, ln := range lines[1:] {
		ln = strings.TrimRight(ln, "\r")
		if ln == "" {
			continue
		}
		k, v, found := strings.Cut(ln, ":")
		if !found {
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(k) {
		case "connection":
			if strings.EqualFold(v, "keep-alive") {
				keep = true
			} else if strings.EqualFold(v, "close") {
				keep = false
			}
		case "content-length":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, rest, fmt.Errorf("bad Content-Length %q", v)
			}
			contentLn = n
		}
	}
	if contentLn > maxBodyBytes {
		return nil, rest, fmt.Errorf("body of %d bytes exceeds %d", contentLn, maxBodyBytes)
	}
	// The frame is complete only once the whole body is buffered; the
	// body itself is discarded (servlets take their input from the query).
	if len(rest) < contentLn {
		return nil, buf, nil
	}
	rest = rest[contentLn:]
	f := &Frame{Req: targetToRequest(method, target), Close: !keep, proto: proto}
	return f, rest, nil
}

// appendHead serializes a response head directly onto dst: status line,
// framing headers, blank line. Plain appends plus AppendInt instead of
// fmt, so serializing into the pooled connection batch buffer allocates
// nothing — the body copy in the caller is the only copy a response makes
// between the servlet and the wire.
func appendHead(dst []byte, proto string, status, contentLen int, connHdr string) []byte {
	dst = append(dst, proto...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(status), 10)
	dst = append(dst, ' ')
	dst = append(dst, StatusText(status)...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(contentLen), 10)
	dst = append(dst, "\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: "...)
	dst = append(dst, connHdr...)
	return append(dst, "\r\n\r\n"...)
}

// AppendResponse serializes one response, echoing the request's protocol
// version in the status line. The body is appended straight from the
// servlet's representation (string or bytes) into dst — the zero-copy
// response path: no fmt machinery, no intermediate buffer.
func (httpCodec) AppendResponse(dst []byte, f *Frame, resp web.Response, close bool) []byte {
	connHdr := "keep-alive"
	if close {
		connHdr = "close"
	}
	dst = appendHead(dst, f.proto, resp.Status, resp.BodyLen(), connHdr)
	return resp.AppendBody(dst)
}

// AppendFault answers a connection-level fault. No request is in hand, so
// the status line uses the lowest version any client understands.
func (httpCodec) AppendFault(dst []byte, status int, msg string) []byte {
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	dst = appendHead(dst, "HTTP/1.0", status, len(msg), "close")
	return append(dst, msg...)
}

// AppendOverload answers one admission-shed request with 503 plus a
// Retry-After hint. The whole frame is appended in one piece (the codec
// contract), and unless close is set the connection stays usable: a shed
// request costs the client one round trip, not its connection.
func (httpCodec) AppendOverload(dst []byte, retryAfter time.Duration, close bool) []byte {
	connHdr := "keep-alive"
	if close {
		connHdr = "close"
	}
	sec := int(retryAfter.Round(time.Second) / time.Second)
	if sec < 1 {
		sec = 1
	}
	const body = "overloaded\n"
	dst = append(dst, "HTTP/1.1 503 "...)
	dst = append(dst, StatusText(503)...)
	dst = append(dst, "\r\nRetry-After: "...)
	dst = strconv.AppendInt(dst, int64(sec), 10)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, "\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: "...)
	dst = append(dst, connHdr...)
	dst = append(dst, "\r\n\r\n"...)
	return append(dst, body...)
}

// cutHead splits buf at the first blank line (CRLF CRLF or LF LF),
// returning the head and the remainder.
func cutHead(buf []byte) (head string, rest []byte, ok bool) {
	s := string(buf)
	best, sepLen := -1, 0
	for _, sep := range []string{"\r\n\r\n", "\n\n"} {
		if i := strings.Index(s, sep); i >= 0 && (best < 0 || i < best) {
			best, sepLen = i, len(sep)
		}
	}
	if best < 0 {
		return "", buf, false
	}
	return s[:best], buf[best+sepLen:], true
}

// targetToRequest converts a request target into the servlet router's
// request shape (method, path, query map).
func targetToRequest(method, target string) *web.Request {
	out := &web.Request{Method: method, Query: map[string]string{}}
	if i := strings.IndexByte(target, '?'); i >= 0 {
		for _, kv := range strings.Split(target[i+1:], "&") {
			if kv == "" {
				continue
			}
			k, v, _ := strings.Cut(kv, "=")
			out.Query[k] = v
		}
		target = target[:i]
	}
	out.Path = target
	return out
}

// StatusText renders the reason phrase for the status codes the serving
// layer produces.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 408:
		return "Request Timeout"
	case 409:
		return "Conflict"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}
