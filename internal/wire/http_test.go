package wire

import (
	"strings"
	"testing"

	"repro/internal/web"
)

// feed runs Parse over input delivered in chunks of n bytes, collecting
// every frame, mimicking the transport's buffer-and-reparse loop.
func feed(t *testing.T, c Codec, input string, n int) []*Frame {
	t.Helper()
	var frames []*Frame
	var buf []byte
	for len(input) > 0 || len(buf) > 0 {
		if len(input) > 0 {
			k := n
			if k > len(input) {
				k = len(input)
			}
			buf = append(buf, input[:k]...)
			input = input[k:]
		}
		for {
			f, rest, err := c.Parse(buf)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			buf = rest
			if f == nil {
				break
			}
			frames = append(frames, f)
		}
		if len(input) == 0 {
			break
		}
	}
	return frames
}

func TestHTTPParseKeepAliveMatrix(t *testing.T) {
	cases := []struct {
		req  string
		keep bool
	}{
		{"GET / HTTP/1.1\r\n\r\n", true},
		{"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
		{"GET / HTTP/1.0\r\n\r\n", false},
		{"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
		{"GET /\r\n\r\n", false}, // no version: HTTP/1.0 semantics
	}
	c := NewHTTP()
	for _, tc := range cases {
		f, rest, err := c.Parse([]byte(tc.req))
		if err != nil || f == nil {
			t.Fatalf("%q: frame=%v err=%v", tc.req, f, err)
		}
		if len(rest) != 0 {
			t.Errorf("%q: %d unconsumed bytes", tc.req, len(rest))
		}
		if f.Close == tc.keep {
			t.Errorf("%q: Close=%v, want keep=%v", tc.req, f.Close, tc.keep)
		}
	}
}

func TestHTTPParseIncremental(t *testing.T) {
	req := "GET /kv?key=a&val=b HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
	for _, n := range []int{1, 2, 7, len(req)} {
		frames := feed(t, NewHTTP(), req, n)
		if len(frames) != 1 {
			t.Fatalf("chunk=%d: got %d frames, want 1", n, len(frames))
		}
		f := frames[0]
		if f.Req == nil || f.Req.Method != "GET" || f.Req.Path != "/kv" {
			t.Fatalf("chunk=%d: bad request %+v", n, f.Req)
		}
		if f.Req.Query["key"] != "a" || f.Req.Query["val"] != "b" {
			t.Fatalf("chunk=%d: bad query %v", n, f.Req.Query)
		}
	}
}

func TestHTTPParsePipelined(t *testing.T) {
	input := strings.Repeat("GET /a HTTP/1.1\r\n\r\n", 3) + "GET /last HTTP/1.1\r\nConnection: close\r\n\r\n"
	for _, n := range []int{3, len(input)} {
		frames := feed(t, NewHTTP(), input, n)
		if len(frames) != 4 {
			t.Fatalf("chunk=%d: got %d frames, want 4", n, len(frames))
		}
		for i, f := range frames[:3] {
			if f.Req.Path != "/a" || f.Close {
				t.Fatalf("chunk=%d frame=%d: %+v", n, i, f)
			}
		}
		if frames[3].Req.Path != "/last" || !frames[3].Close {
			t.Fatalf("chunk=%d: last frame %+v", n, frames[3])
		}
	}
}

func TestHTTPParseErrors(t *testing.T) {
	c := NewHTTP()
	for _, req := range []string{
		"GARBAGE\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n",
	} {
		if _, _, err := c.Parse([]byte(req)); err == nil {
			t.Errorf("%q: want parse error", req)
		}
	}
	// An over-long head with no blank line is an error too.
	if _, _, err := c.Parse([]byte("GET /" + strings.Repeat("x", maxHeadBytes) + "\r\n")); err == nil {
		t.Error("oversized head: want parse error")
	}
}

func TestHTTPAppendResponseEchoesVersion(t *testing.T) {
	c := NewHTTP()
	for _, proto := range []string{"HTTP/1.0", "HTTP/1.1"} {
		f, _, err := c.Parse([]byte("GET / " + proto + "\r\n\r\n"))
		if err != nil {
			t.Fatal(err)
		}
		out := string(c.AppendResponse(nil, f, web.Response{Status: 200, Body: "ok\n"}, false))
		if !strings.HasPrefix(out, proto+" 200 OK\r\n") {
			t.Errorf("proto %s: status line %q", proto, out[:strings.Index(out, "\r\n")])
		}
		if !strings.Contains(out, "Connection: keep-alive\r\n") {
			t.Errorf("proto %s: missing keep-alive header in %q", proto, out)
		}
		if !strings.Contains(out, "Content-Length: 3\r\n") || !strings.HasSuffix(out, "\r\n\r\nok\n") {
			t.Errorf("proto %s: bad framing %q", proto, out)
		}
	}
	// close=true flips the Connection header.
	f, _, _ := c.Parse([]byte("GET / HTTP/1.1\r\n\r\n"))
	out := string(c.AppendResponse(nil, f, web.Response{Status: 200, Body: "x"}, true))
	if !strings.Contains(out, "Connection: close\r\n") {
		t.Errorf("close response missing Connection: close: %q", out)
	}
}

func TestHTTPAppendFault(t *testing.T) {
	out := string(NewHTTP().AppendFault(nil, 408, "request timeout"))
	if !strings.HasPrefix(out, "HTTP/1.0 408 Request Timeout\r\n") {
		t.Errorf("fault status line: %q", out)
	}
	if !strings.Contains(out, "Connection: close\r\n") || !strings.HasSuffix(out, "request timeout\n") {
		t.Errorf("fault framing: %q", out)
	}
}

func TestHTTPBatchedAppend(t *testing.T) {
	// Multiple responses appended to one batch stay whole, in order.
	c := NewHTTP()
	var batch []byte
	for i, body := range []string{"one", "two"} {
		f, _, _ := c.Parse([]byte("GET / HTTP/1.1\r\n\r\n"))
		batch = c.AppendResponse(batch, f, web.Response{Status: 200, Body: body}, i == 1)
	}
	s := string(batch)
	if strings.Count(s, "HTTP/1.1 200 OK\r\n") != 2 {
		t.Fatalf("batch: %q", s)
	}
	if !strings.Contains(s, "one") || !strings.Contains(s, "two") ||
		strings.Index(s, "one") > strings.Index(s, "two") {
		t.Fatalf("batch order: %q", s)
	}
}
