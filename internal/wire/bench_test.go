package wire

import (
	"fmt"
	"testing"

	"repro/internal/web"
)

// BenchmarkAppendResponse isolates the response serialization that
// BenchmarkNetsvcServedRequest buries under parsing and dispatch: the
// fmt-copy leg is the pre-refactor implementation (fmt.Appendf with the
// body as an operand), the zero-copy legs are the shipping codec writing
// head and body straight into the reused batch buffer. allocs/op is the
// point: the fmt path allocates per response; the direct path does not
// once the buffer has grown.
func BenchmarkAppendResponse(b *testing.B) {
	c := NewHTTP()
	f, _, err := c.Parse([]byte("GET /ping HTTP/1.1\r\n\r\n"))
	if err != nil || f == nil {
		b.Fatalf("parse: %v %v", f, err)
	}
	body := "pong"
	bodyBytes := []byte(body)

	fmtCopy := func(dst []byte, resp web.Response) []byte {
		return fmt.Appendf(dst,
			"%s %d %s\r\nContent-Length: %d\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: %s\r\n\r\n%s",
			"HTTP/1.1", resp.Status, StatusText(resp.Status), len(resp.Body), "keep-alive", resp.Body)
	}

	b.Run("fmt-copy", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = fmtCopy(buf[:0], web.Response{Status: 200, Body: body})
		}
	})
	b.Run("zero-copy/body-string", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = c.AppendResponse(buf[:0], f, web.Response{Status: 200, Body: body}, false)
		}
	})
	b.Run("zero-copy/body-bytes", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = c.AppendResponse(buf[:0], f, web.Response{Status: 200, BodyBytes: bodyBytes}, false)
		}
	})
}
