package wire

import (
	"strings"
	"testing"
	"time"
)

// Top-level bulk-string commands: $<len>\r\n<command>\r\n is the third
// RESP command form, equivalent to the inline form it wraps.
func TestRESPTopLevelBulkString(t *testing.T) {
	c := NewRESP("/kv")
	frames := respParseAll(t, c, "$5\r\nGET a\r\n$9\r\nSET a two\r\n")
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	get := frames[0].Req
	if get == nil || get.Method != "GET" || get.Query["key"] != "a" {
		t.Errorf("bulk GET: %+v", get)
	}
	set := frames[1].Req
	if set == nil || set.Method != "PUT" || set.Query["key"] != "a" || set.Query["val"] != "two" {
		t.Errorf("bulk SET: %+v", set)
	}
}

// Incremental delivery: a bulk-string command split at every byte
// boundary still parses to the same frame, with no torn reads.
func TestRESPTopLevelBulkStringIncremental(t *testing.T) {
	input := "$5\r\nGET a\r\n"
	for cut := 0; cut < len(input); cut++ {
		c := NewRESP("/kv")
		f, rest, err := c.Parse([]byte(input[:cut]))
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if f != nil {
			t.Fatalf("cut %d: frame from incomplete input", cut)
		}
		f, rest, err = c.Parse(append(rest, input[cut:]...))
		if err != nil || f == nil || f.Req == nil {
			t.Fatalf("cut %d: completed parse = %+v, %v", cut, f, err)
		}
		if f.Req.Query["key"] != "a" {
			t.Fatalf("cut %d: wrong request %+v", cut, f.Req)
		}
	}
}

func TestRESPTopLevelBulkStringErrors(t *testing.T) {
	for _, bad := range []string{
		"$x\r\nGET a\r\n",      // malformed length
		"$-4\r\nGET a\r\n",     // negative length
		"$99999999\r\nGET\r\n", // over the bulk cap
		"$5\r\nGET aXX",        // payload not CRLF-terminated
	} {
		c := NewRESP("/kv")
		if _, _, err := c.Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed bulk string", bad)
		}
	}
}

// AppendOverload framing: RESP sheds with a protocol error carrying the
// retry hint; HTTP sheds with 503 + Retry-After and honors keep-alive —
// a shed costs the client a round trip, not its connection.
func TestAppendOverload(t *testing.T) {
	resp := NewRESP("/kv").AppendOverload(nil, 250*time.Millisecond, false)
	if string(resp) != "-OVERLOADED shed by admission control, retry after 250ms\r\n" {
		t.Errorf("RESP overload frame: %q", resp)
	}

	h := NewHTTP().AppendOverload(nil, 250*time.Millisecond, false)
	s := string(h)
	if !strings.HasPrefix(s, "HTTP/1.1 503 ") {
		t.Errorf("HTTP overload status line: %q", s)
	}
	if !strings.Contains(s, "Retry-After: 1\r\n") {
		t.Errorf("HTTP overload missing Retry-After (rounded up to 1s): %q", s)
	}
	if !strings.Contains(s, "Connection: keep-alive\r\n") {
		t.Errorf("HTTP overload on keep-alive conn must not close: %q", s)
	}
	if !strings.HasSuffix(s, "\r\n\r\noverloaded\n") {
		t.Errorf("HTTP overload body framing: %q", s)
	}
	hc := string(NewHTTP().AppendOverload(nil, 2*time.Second, true))
	if !strings.Contains(hc, "Connection: close\r\n") || !strings.Contains(hc, "Retry-After: 2\r\n") {
		t.Errorf("HTTP overload close variant: %q", hc)
	}
}
