// Package wire defines the serving layer's wire-protocol codecs: the
// state machines that turn bytes read off a socket into servlet requests
// and servlet responses back into bytes, independently of the transport
// that moves them. internal/netsvc owns the sockets, the custodians, and
// the pumps; a Codec owns only framing.
//
// The contract is built around kill-safety. A codec is a pure
// parse/serialize machine — it never blocks, never talks to the runtime,
// and never touches a file descriptor — so every wait stays inside the
// session thread's Sync calls where a kill can land safely. Responses are
// serialized by *appending whole frames* to a caller-owned batch buffer;
// the transport hands complete batches to its write pump. A frame
// therefore either reaches the wire entirely or not at all: a session
// killed mid-pipeline can lose the tail of the conversation, but it can
// never emit a torn frame followed by more traffic.
//
// Two codecs ship with the package: an HTTP/1.1 codec (persistent
// connections, pipelining, Content-Length bodies, version echo) and a
// RESP-style codec (inline, multi-bulk, and top-level bulk-string
// commands; GET/SET/DEL/
// MULTI/EXEC/STATS mapping onto the transactional KV servlet's routes),
// so a Redis-style client can drive kill-atomic transactions through the
// same serving layer.
package wire

import (
	"fmt"
	"time"

	"repro/internal/web"
)

// Frame is one parsed request frame. Either Req is set (the frame needs
// a servlet dispatch) or Immediate is set (the codec answered it from
// protocol state alone — PING, a queued MULTI command, a QUIT).
type Frame struct {
	// Req is the servlet request this frame maps to; nil for Immediate
	// frames.
	Req *web.Request
	// Immediate is the pre-serialized response for frames that need no
	// dispatch; nil otherwise.
	Immediate []byte
	// Close reports that the connection must close once this frame's
	// response is written (HTTP "Connection: close" or a 1.0 request
	// without keep-alive; RESP QUIT).
	Close bool

	// Response-shaping state, private to the codecs.
	proto string // HTTP: protocol version to echo in the status line
	cmd   string // RESP: command word, selects the reply encoding
}

// Codec is a per-connection wire-protocol state machine. Implementations
// are stateful (RESP's MULTI queue, say) and are therefore created fresh
// per connection via a Factory; they are used by one session thread at a
// time and need no locking.
type Codec interface {
	// Name identifies the protocol ("http/1.1", "resp") for stats and
	// diagnostics.
	Name() string
	// Parse tries to extract one complete frame from buf. It returns
	// (nil, buf, nil) when more bytes are needed, or the frame plus the
	// unconsumed remainder. A non-nil error is fatal for the connection;
	// the transport answers with AppendFault and closes.
	Parse(buf []byte) (*Frame, []byte, error)
	// AppendResponse serializes resp for frame f onto dst and returns the
	// extended buffer. close tells the codec the server will close the
	// connection after this response (HTTP sets "Connection: close";
	// RESP has no framing for it).
	AppendResponse(dst []byte, f *Frame, resp web.Response, close bool) []byte
	// AppendFault serializes a connection-level fault — parse error, idle
	// timeout, drain — in the protocol's vocabulary. The connection
	// always closes after a fault.
	AppendFault(dst []byte, status int, msg string) []byte
	// AppendOverload serializes a per-request admission refusal. Unlike a
	// fault it does not end the conversation: a keep-alive client that had
	// one request shed keeps its connection and may retry after retryAfter
	// (HTTP: 503 with a Retry-After header; RESP: an -OVERLOADED error).
	// close mirrors AppendResponse's close (the transport will hang up
	// after this frame for its own reasons, e.g. the client asked to).
	AppendOverload(dst []byte, retryAfter time.Duration, close bool) []byte
}

// Factory creates a fresh per-connection codec.
type Factory func() Codec

// Options parameterize the stock codecs.
type Options struct {
	// KVPrefix is the servlet mount point RESP commands map onto
	// (default "/kv": GET k -> GET {KVPrefix}?key=k, EXEC ->
	// GET {KVPrefix}/multi?ops=..., STATS -> GET {KVPrefix}/stats).
	KVPrefix string
}

// New resolves a protocol name to a codec factory. Supported names:
// "http" (alias "http/1.1") and "resp".
func New(protocol string, opt Options) (Factory, error) {
	if opt.KVPrefix == "" {
		opt.KVPrefix = "/kv"
	}
	switch protocol {
	case "", "http", "http/1.1":
		return func() Codec { return NewHTTP() }, nil
	case "resp":
		prefix := opt.KVPrefix
		return func() Codec { return NewRESP(prefix) }, nil
	}
	return nil, fmt.Errorf("wire: unknown protocol %q (want http or resp)", protocol)
}
