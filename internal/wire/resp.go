package wire

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/web"
)

// maxRESPArgs and maxRESPBulk bound a multi-bulk command; past either the
// connection is answering an abuser, not a client.
const (
	maxRESPArgs = 64
	maxRESPBulk = 1 << 20
)

// respCodec speaks a RESP-style protocol (the Redis serialization
// protocol's framing) and maps its commands onto the transactional KV
// servlet mounted at prefix, so a redis-cli-style session drives
// kill-atomic transactions through the ordinary servlet dispatch path:
//
//	GET k            -> GET  {prefix}?key=k          ($val | $-1)
//	SET k v          -> PUT  {prefix}?key=k&val=v    (+OK | -CONFLICT)
//	DEL k            -> DELETE {prefix}?key=k        (:1)
//	MULTI .. EXEC    -> GET  {prefix}/multi?ops=...  (*[status, reads...])
//	STATS            -> GET  {prefix}/stats          ($json)
//	CALL path        -> GET  path                    ($body) — any route,
//	                    e.g. CALL /debug/killsafe/stats
//	PING / QUIT      -> answered by the codec itself
//
// MULTI queues GET/SET/DEL commands (+QUEUED) and EXEC submits them as
// one wholesale transaction to the store — begin, ops, commit — so a
// session killed mid-EXEC can never leave the transaction open: the
// commit either reached the store's hand-off rendezvous and finishes, or
// the death watch aborts it without trace. Because the queued ops travel
// in the servlet's compact spec, keys and values inside MULTI must avoid
// ':' and ','.
type respCodec struct {
	prefix string
	multi  bool     // inside MULTI..EXEC
	ops    []string // queued op specs (r:k, w:k:v, d:k)
	dirty  bool     // a queued command was rejected; EXEC must abort
}

// NewRESP creates a RESP codec whose commands map onto the KV servlet
// mounted at prefix ("/kv", say).
func NewRESP(prefix string) Codec { return &respCodec{prefix: prefix} }

func (c *respCodec) Name() string { return "resp" }

// Parse extracts one command — inline ("GET k\r\n"), multi-bulk
// ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"), or a top-level bulk string
// ("$5\r\nGET k\r\n" — the bulk's payload is an inline command line, so
// binary-unsafe whitespace splitting applies) — and translates it to a
// frame.
func (c *respCodec) Parse(buf []byte) (*Frame, []byte, error) {
	for {
		args, rest, err := parseRESPCommand(buf)
		if err != nil || args == nil {
			return nil, rest, err
		}
		if len(args) == 0 {
			buf = rest // empty inline line: skip it
			continue
		}
		f, err := c.command(args)
		if err != nil {
			return nil, rest, err
		}
		return f, rest, nil
	}
}

// parseRESPCommand extracts one raw command's arguments. args == nil with
// err == nil means the frame is incomplete; an empty non-nil args slice
// is a blank inline line.
func parseRESPCommand(buf []byte) (args []string, rest []byte, err error) {
	if len(buf) == 0 {
		return nil, buf, nil
	}
	if buf[0] == '$' {
		// Top-level bulk string: $<len> framing around one inline command
		// line ("$5\r\nGET k\r\n"). Length-prefixed framing, whitespace
		// argument splitting.
		line, r, ok := cutLine(buf)
		if !ok {
			return nil, buf, nil
		}
		ln, err := strconv.Atoi(line[1:])
		if err != nil || ln < 0 || ln > maxRESPBulk {
			return nil, r, fmt.Errorf("bad bulk length %q", line)
		}
		if len(r) < ln+2 {
			return nil, buf, nil // payload (plus CRLF) not fully buffered
		}
		if r[ln] != '\r' || r[ln+1] != '\n' {
			return nil, r, fmt.Errorf("bulk of %d bytes not CRLF-terminated", ln)
		}
		return strings.Fields(string(r[:ln])), r[ln+2:], nil
	}
	if buf[0] != '*' {
		// Inline command: one whitespace-separated line.
		line, rest, ok := cutLine(buf)
		if !ok {
			if len(buf) > maxHeadBytes {
				return nil, buf, fmt.Errorf("inline command exceeds %d bytes", maxHeadBytes)
			}
			return nil, buf, nil
		}
		return strings.Fields(line), rest, nil
	}
	// Multi-bulk: *<n>, then n of $<len><bytes>.
	line, r, ok := cutLine(buf)
	if !ok {
		return nil, buf, nil
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > maxRESPArgs {
		return nil, r, fmt.Errorf("bad multi-bulk count %q", line)
	}
	args = make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, r2, ok := cutLine(r)
		if !ok {
			return nil, buf, nil
		}
		if len(line) == 0 || line[0] != '$' {
			return nil, r2, fmt.Errorf("expected bulk length, got %q", line)
		}
		ln, err := strconv.Atoi(line[1:])
		if err != nil || ln < 0 || ln > maxRESPBulk {
			return nil, r2, fmt.Errorf("bad bulk length %q", line)
		}
		if len(r2) < ln+2 {
			return nil, buf, nil // bulk body (plus CRLF) not fully buffered
		}
		arg := string(r2[:ln])
		if r2[ln] != '\r' || r2[ln+1] != '\n' {
			return nil, r2, fmt.Errorf("bulk of %d bytes not CRLF-terminated", ln)
		}
		args = append(args, arg)
		r = r2[ln+2:]
	}
	return args, r, nil
}

// cutLine splits buf at the first LF, returning the line without its
// (CR)LF and the remainder.
func cutLine(buf []byte) (line string, rest []byte, ok bool) {
	for i, b := range buf {
		if b == '\n' {
			line = string(buf[:i])
			return strings.TrimSuffix(line, "\r"), buf[i+1:], true
		}
	}
	return "", buf, false
}

// command maps one parsed command to a frame, running the MULTI state
// machine for the transactional forms.
func (c *respCodec) command(args []string) (*Frame, error) {
	cmd := strings.ToUpper(args[0])
	if c.multi {
		switch cmd {
		case "EXEC":
			ops := c.ops
			dirty := c.dirty
			c.multi, c.ops, c.dirty = false, nil, false
			if dirty {
				return immediate("-EXECABORT transaction discarded because of previous errors\r\n"), nil
			}
			if len(ops) == 0 {
				return immediate("*0\r\n"), nil
			}
			return &Frame{
				cmd: "exec",
				Req: &web.Request{Method: "GET", Path: c.prefix + "/multi",
					Query: map[string]string{"ops": strings.Join(ops, ",")}},
			}, nil
		case "DISCARD":
			c.multi, c.ops, c.dirty = false, nil, false
			return immediate("+OK\r\n"), nil
		case "MULTI":
			c.dirty = true
			return immediate("-ERR MULTI calls can not be nested\r\n"), nil
		}
		op, err := queuedOp(cmd, args)
		if err != nil {
			c.dirty = true
			return immediate("-ERR " + err.Error() + "\r\n"), nil
		}
		c.ops = append(c.ops, op)
		return immediate("+QUEUED\r\n"), nil
	}

	switch cmd {
	case "PING":
		return immediate("+PONG\r\n"), nil
	case "QUIT":
		f := immediate("+OK\r\n")
		f.Close = true
		return f, nil
	case "MULTI":
		c.multi = true
		return immediate("+OK\r\n"), nil
	case "EXEC", "DISCARD":
		return immediate("-ERR " + cmd + " without MULTI\r\n"), nil
	case "GET":
		if len(args) != 2 {
			return arityErr(cmd), nil
		}
		return &Frame{cmd: "get", Req: &web.Request{Method: "GET", Path: c.prefix,
			Query: map[string]string{"key": args[1]}}}, nil
	case "SET":
		if len(args) != 3 {
			return arityErr(cmd), nil
		}
		return &Frame{cmd: "set", Req: &web.Request{Method: "PUT", Path: c.prefix,
			Query: map[string]string{"key": args[1], "val": args[2]}}}, nil
	case "DEL":
		if len(args) != 2 {
			return arityErr(cmd), nil
		}
		return &Frame{cmd: "del", Req: &web.Request{Method: "DELETE", Path: c.prefix,
			Query: map[string]string{"key": args[1]}}}, nil
	case "STATS":
		return &Frame{cmd: "stats", Req: &web.Request{Method: "GET", Path: c.prefix + "/stats",
			Query: map[string]string{}}}, nil
	case "CALL":
		if len(args) != 2 {
			return arityErr(cmd), nil
		}
		return &Frame{cmd: "call", Req: targetToRequest("GET", args[1])}, nil
	}
	return immediate("-ERR unknown command '" + args[0] + "'\r\n"), nil
}

// queuedOp translates a command inside MULTI into the servlet's compact
// op spec. The spec's separators are ':' and ',', so they are forbidden
// in queued keys and values.
func queuedOp(cmd string, args []string) (string, error) {
	bad := func(s string) bool { return strings.ContainsAny(s, ":,") }
	switch cmd {
	case "GET":
		if len(args) != 2 {
			return "", fmt.Errorf("wrong number of arguments for 'GET'")
		}
		if bad(args[1]) {
			return "", fmt.Errorf("':' and ',' not allowed in MULTI keys")
		}
		return "r:" + args[1], nil
	case "SET":
		if len(args) != 3 {
			return "", fmt.Errorf("wrong number of arguments for 'SET'")
		}
		if bad(args[1]) || bad(args[2]) {
			return "", fmt.Errorf("':' and ',' not allowed in MULTI keys or values")
		}
		return "w:" + args[1] + ":" + args[2], nil
	case "DEL":
		if len(args) != 2 {
			return "", fmt.Errorf("wrong number of arguments for 'DEL'")
		}
		if bad(args[1]) {
			return "", fmt.Errorf("':' and ',' not allowed in MULTI keys")
		}
		return "d:" + args[1], nil
	}
	return "", fmt.Errorf("command '" + cmd + "' not allowed inside MULTI")
}

func immediate(s string) *Frame { return &Frame{Immediate: []byte(s)} }

func arityErr(cmd string) *Frame {
	return immediate("-ERR wrong number of arguments for '" + cmd + "'\r\n")
}

// AppendResponse encodes the servlet's answer in the reply discipline of
// the command that produced it.
func (c *respCodec) AppendResponse(dst []byte, f *Frame, resp web.Response, _ bool) []byte {
	switch f.cmd {
	case "get":
		if resp.Status == 200 {
			return appendBulkResp(dst, &resp)
		}
		if resp.Status == 404 {
			return append(dst, "$-1\r\n"...)
		}
	case "set":
		if resp.Status == 200 {
			return append(dst, "+OK\r\n"...)
		}
	case "del":
		if resp.Status == 200 {
			return append(dst, ":1\r\n"...)
		}
		if resp.Status == 404 {
			return append(dst, ":0\r\n"...)
		}
	case "exec":
		if resp.Status == 200 {
			return appendExec(dst, resp.BodyString())
		}
	case "stats", "call":
		if resp.Status == 200 {
			return appendBulkResp(dst, &resp)
		}
	}
	return appendStatusErr(dst, resp.Status, resp.BodyString())
}

// AppendFault encodes a connection-level fault as a RESP error.
func (c *respCodec) AppendFault(dst []byte, status int, msg string) []byte {
	return appendStatusErr(dst, status, msg)
}

// AppendOverload encodes one admission-shed request as an -OVERLOADED
// error carrying the retry hint in milliseconds. The connection stays
// open; the client retries the command after the hint.
func (c *respCodec) AppendOverload(dst []byte, retryAfter time.Duration, _ bool) []byte {
	return fmt.Appendf(dst, "-OVERLOADED shed by admission control, retry after %dms\r\n",
		retryAfter.Milliseconds())
}

// appendExec encodes the servlet's multi response — "COMMITTED" or
// "ABORTED conflict" on the first line, then one "key=val" or "key!"
// line per read, in op order — as a RESP array: a status element
// followed by the read values (null bulk for a missing key).
func appendExec(dst []byte, body string) []byte {
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	dst = fmt.Appendf(dst, "*%d\r\n", len(lines))
	if strings.HasPrefix(lines[0], "COMMITTED") {
		dst = append(dst, "+COMMITTED\r\n"...)
	} else {
		dst = append(dst, "-ABORTED conflict\r\n"...)
	}
	for _, ln := range lines[1:] {
		if _, val, found := strings.Cut(ln, "="); found {
			dst = appendBulk(dst, val)
		} else {
			dst = append(dst, "$-1\r\n"...) // "key!": read found nothing
		}
	}
	return dst
}

func appendBulk(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// appendBulkResp is appendBulk straight off the response's own body
// representation: a BodyBytes payload reaches the batch buffer without
// an intermediate string.
func appendBulkResp(dst []byte, resp *web.Response) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(resp.BodyLen()), 10)
	dst = append(dst, '\r', '\n')
	dst = resp.AppendBody(dst)
	return append(dst, '\r', '\n')
}

// appendStatusErr folds a non-200 servlet status into a RESP error with
// a recognizable class prefix.
func appendStatusErr(dst []byte, status int, body string) []byte {
	class := "ERR"
	switch status {
	case 404:
		class = "NOTFOUND"
	case 408:
		class = "TIMEOUT"
	case 409:
		class = "CONFLICT"
	case 503:
		class = "UNAVAILABLE"
	}
	msg := strings.ReplaceAll(strings.TrimSpace(body), "\n", " ")
	msg = strings.ReplaceAll(msg, "\r", " ")
	return fmt.Appendf(dst, "-%s %d %s\r\n", class, status, msg)
}
