package netsvc

import (
	"fmt"
	"sync/atomic"
)

// Stats is the serving layer's counter set. All fields are written with
// atomics so the snapshot is safe from any goroutine (the /debug/stats
// route, tests, plain monitoring goroutines).
type Stats struct {
	accepted    atomic.Int64 // conns accepted by the OS listener
	active      atomic.Int64 // conns currently being served
	drained     atomic.Int64 // sessions that ended cleanly (EOF, close, timeout response sent)
	killed      atomic.Int64 // sessions terminated by custodian shutdown mid-service
	timedOut    atomic.Int64 // conns closed by the idle deadline
	rejected    atomic.Int64 // conns closed unserved (shutdown races, dead custodians)
	shed        atomic.Int64 // conns answered 503 by the pump: pending queue over MaxPending
	admShed     atomic.Int64 // requests refused by adaptive admission (all classes)
	admShedBulk atomic.Int64 // bulk-class requests among admShed
	migrated    atomic.Int64 // queued conns rehomed to a sibling shard by a drain
	reqAdmin    atomic.Int64 // dispatched requests classified admin
	reqNormal   atomic.Int64 // dispatched requests classified normal
	reqBulk     atomic.Int64 // dispatched requests classified bulk
	deadlined   atomic.Int64 // requests cut off by the per-request deadline
	restarts    atomic.Int64 // accept-loop restarts performed by the supervisor
	requests    atomic.Int64 // protocol frames parsed off the wire
	responses   atomic.Int64 // responses serialized (faults excluded)
	pipelineHWM atomic.Int64 // most responses ever coalesced into one write batch
}

// noteClass counts one classified request dispatch.
func (s *Stats) noteClass(p Priority) {
	switch p {
	case ClassAdmin:
		s.reqAdmin.Add(1)
	case ClassBulk:
		s.reqBulk.Add(1)
	default:
		s.reqNormal.Add(1)
	}
}

// notePipelineDepth raises the pipelined-depth high-water mark to n.
func (s *Stats) notePipelineDepth(n int64) {
	for {
		cur := s.pipelineHWM.Load()
		if n <= cur || s.pipelineHWM.CompareAndSwap(cur, n) {
			return
		}
	}
}

// StatsSnapshot is a point-in-time copy of the counters. Protocol names
// the listener's wire codec; when snapshots are aggregated across shards
// the counters sum, PipelineHWM and SojournEWMAus take the fleet
// maximum, and Overloaded is true if any shard is shedding.
type StatsSnapshot struct {
	Protocol     string `json:"protocol"`
	Accepted     int64  `json:"accepted"`
	Active       int64  `json:"active"`
	Drained      int64  `json:"drained"`
	Killed       int64  `json:"killed"`
	TimedOut     int64  `json:"timed_out"`
	Rejected     int64  `json:"rejected"`
	Shed         int64  `json:"shed"`
	AdmShed      int64  `json:"adm_shed"`
	AdmShedBulk  int64  `json:"adm_shed_bulk"`
	Migrated     int64  `json:"migrated"`
	ReqAdmin     int64  `json:"req_admin"`
	ReqNormal    int64  `json:"req_normal"`
	ReqBulk      int64  `json:"req_bulk"`
	Deadlined    int64  `json:"deadlined"`
	Restarts     int64  `json:"restarts"`
	Requests     int64  `json:"requests"`
	Responses    int64  `json:"responses"`
	PipelineHWM  int64  `json:"pipeline_hwm"`
	SojournEWMAus int64 `json:"sojourn_ewma_us"` // smoothed queue delay, µs
	Overloaded   bool   `json:"overloaded"`      // admission controller currently shedding
	// ShardsDrained counts completed live drain/handoff cycles; only the
	// fleet-level (ShardedServer) snapshot sets it.
	ShardsDrained int64 `json:"shards_drained"`
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Accepted:    s.accepted.Load(),
		Active:      s.active.Load(),
		Drained:     s.drained.Load(),
		Killed:      s.killed.Load(),
		TimedOut:    s.timedOut.Load(),
		Rejected:    s.rejected.Load(),
		Shed:        s.shed.Load(),
		AdmShed:     s.admShed.Load(),
		AdmShedBulk: s.admShedBulk.Load(),
		Migrated:    s.migrated.Load(),
		ReqAdmin:    s.reqAdmin.Load(),
		ReqNormal:   s.reqNormal.Load(),
		ReqBulk:     s.reqBulk.Load(),
		Deadlined:   s.deadlined.Load(),
		Restarts:    s.restarts.Load(),
		Requests:    s.requests.Load(),
		Responses:   s.responses.Load(),
		PipelineHWM: s.pipelineHWM.Load(),
	}
}

// json renders the snapshot without importing encoding/json into the
// serving path (the shape is fixed and flat).
func (v StatsSnapshot) json() string {
	return fmt.Sprintf(
		`{"protocol":%q,"accepted":%d,"active":%d,"drained":%d,"killed":%d,"timed_out":%d,"rejected":%d,"shed":%d,"adm_shed":%d,"adm_shed_bulk":%d,"migrated":%d,"req_admin":%d,"req_normal":%d,"req_bulk":%d,"deadlined":%d,"restarts":%d,"requests":%d,"responses":%d,"pipeline_hwm":%d,"sojourn_ewma_us":%d,"overloaded":%t,"shards_drained":%d}`,
		v.Protocol, v.Accepted, v.Active, v.Drained, v.Killed, v.TimedOut, v.Rejected, v.Shed,
		v.AdmShed, v.AdmShedBulk, v.Migrated, v.ReqAdmin, v.ReqNormal, v.ReqBulk,
		v.Deadlined, v.Restarts, v.Requests, v.Responses, v.PipelineHWM,
		v.SojournEWMAus, v.Overloaded, v.ShardsDrained)
}
