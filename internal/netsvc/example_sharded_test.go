package netsvc_test

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// SharedState is the cross-shard state pattern. Each shard is a whole
// runtime — its own custodian tree and its own servlet instance — so a
// core.Chan, core.Semaphore, or any other runtime primitive captured by
// a servlet belongs to exactly one shard; sharing it across shards would
// panic (the core's cross-runtime guard). State that must be visible to
// every shard therefore lives *outside* the runtimes, in plain Go,
// guarded by an ordinary sync.Mutex: plain Go code is not suspendable or
// killable, so a servlet thread killed mid-handler can never die holding
// this lock — the critical section contains no safe point.
type SharedState struct {
	mu   sync.Mutex
	hits map[string]int
}

func (s *SharedState) bump(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits[key]++
	return s.hits[key]
}

// Example_sharedState shows the servlet state contract for sharded
// serving: ServeSharded's setup runs once per shard and must build a
// fresh *web.Server there, so per-instance servlet state is per-shard;
// the SharedState store, created before the fleet and captured by every
// shard's handlers, is the one piece all shards see.
func Example_sharedState() {
	store := &SharedState{hits: map[string]int{}}
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, func(th *core.Thread, shard int) *web.Server {
		ws := web.NewServer(th)
		ws.Handle("/hit", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			return web.Response{Status: 200, Body: fmt.Sprintf("%d\n", store.bump("page"))}
		})
		return ws
	})
	if err != nil {
		fmt.Println("serve:", err)
		return
	}
	defer m.Shutdown(time.Second)

	// Requests land on different shards (round-robin), yet observe one
	// monotone counter: the store is outside every runtime.
	var last string
	for i := 0; i < 4; i++ {
		_, body, err := get(m.Addr().String(), "/hit")
		if err != nil {
			fmt.Println("get:", err)
			return
		}
		last = strings.TrimSpace(body)
	}
	fmt.Println("hits after 4 requests across 2 shards:", last)
	// Output:
	// hits after 4 requests across 2 shards: 4
}
