package netsvc_test

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLoadShed is the companion to TestMaxConnsBackpressure: where that
// test shows over-cap connections *wait* and eventually get served, this
// one shows connections beyond MaxConns+MaxPending are answered 503 and
// closed immediately — load shedding instead of unbounded queueing —
// while the queued connections still complete.
func TestLoadShed(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		gate := core.NewChanNamed(rt, "gate")
		ws.Handle("/slow", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			_, _ = core.Sync(x, gate.RecvEvt())
			return web.Response{Status: 200, Body: "done"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{MaxConns: 1, MaxPending: 1})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()

		dialSlow := func() net.Conn {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			_ = c.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := fmt.Fprintf(c, "GET /slow HTTP/1.0\r\n\r\n"); err != nil {
				t.Fatal(err)
			}
			return c
		}

		// conn1 occupies the single serving slot.
		c1 := dialSlow()
		defer c1.Close()
		pollUntil(t, "conn1 being served", func() bool { return s.Stats().Active == 1 })

		// conn2 fills the single pending seat.
		c2 := dialSlow()
		defer c2.Close()
		pollUntil(t, "conn2 pending", func() bool { return s.Stats().Accepted >= 2 })

		// conn3 is over capacity: the pump must shed it with a 503.
		c3 := dialSlow()
		defer c3.Close()
		status, body, err := readResponseConn(c3)
		if err != nil {
			t.Fatalf("reading shed response: %v", err)
		}
		if !strings.Contains(status, "503") || body != "server busy\n" {
			t.Fatalf("shed response = %q / %q, want 503 / server busy", status, body)
		}
		if got := s.Stats().Shed; got != 1 {
			t.Fatalf("shed counter = %d, want 1", got)
		}

		// The queued connections were not harmed: release them in turn.
		for i, c := range []net.Conn{c1, c2} {
			if _, err := core.Sync(th, gate.SendEvt(nil)); err != nil {
				t.Fatalf("release %d: %v", i+1, err)
			}
			status, body, err := readResponseConn(c)
			if err != nil || !strings.Contains(status, "200") || body != "done" {
				t.Fatalf("conn%d: %q / %q / %v", i+1, status, body, err)
			}
		}
		if err := s.Shutdown(th, time.Second); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	})
}

func readResponseConn(c net.Conn) (string, string, error) {
	return readResponse(bufio.NewReader(c))
}

// TestRequestDeadline: with RequestTimeout set, a handler that blocks
// forever is cut off — worker killed, client answered 503 — while fast
// handlers are unaffected, and the graceful shutdown still leaves zero
// leaked goroutines.
func TestRequestDeadline(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		g0 := runtime.NumGoroutine()
		ws := web.NewServer(th)
		ws.Handle("/hang", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			_ = core.Sleep(x, time.Hour)
			return web.Response{Status: 200, Body: "late"}
		})
		ws.Handle("/fast", func(*core.Thread, *web.Session, *web.Request) web.Response {
			return web.Response{Status: 200, Body: "fast"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{RequestTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()

		status, body, err := get(addr, "/fast")
		if err != nil || !strings.Contains(status, "200") || body != "fast" {
			t.Fatalf("/fast: %q / %q / %v", status, body, err)
		}
		status, body, err = get(addr, "/hang")
		if err != nil || !strings.Contains(status, "503") || body != "request deadline exceeded\n" {
			t.Fatalf("/hang: %q / %q / %v", status, body, err)
		}
		if got := s.Stats().Deadlined; got != 1 {
			t.Fatalf("deadlined counter = %d, want 1", got)
		}
		if err := s.Shutdown(th, time.Second); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		waitGoroutines(t, g0, "after deadline + shutdown")
	})
}

// TestAcceptorRestart: killing the acceptor thread out from under the
// server does not leave it deaf — the supervisor restarts the accept
// loop (surfacing the restart in stats) and new connections are served.
func TestAcceptorRestart(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		ws.Handle("/hello", func(*core.Thread, *web.Session, *web.Request) web.Response {
			return web.Response{Status: 200, Body: "hello"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()

		if status, _, err := get(addr, "/hello"); err != nil || !strings.Contains(status, "200") {
			t.Fatalf("before kill: %q / %v", status, err)
		}

		first := s.Supervisor().ChildThread("netsvc-accept")
		if first == nil {
			t.Fatal("no acceptor incarnation")
		}
		first.Kill()
		pollUntil(t, "acceptor restart", func() bool { return s.Stats().Restarts >= 1 })
		pollUntil(t, "new incarnation", func() bool {
			cur := s.Supervisor().ChildThread("netsvc-accept")
			return cur != nil && cur != first && !cur.Done()
		})

		if status, body, err := get(addr, "/hello"); err != nil || !strings.Contains(status, "200") || body != "hello" {
			t.Fatalf("after restart: %q / %q / %v", status, body, err)
		}
		if err := s.Shutdown(th, time.Second); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	})
}
