package netsvc

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
)

// Admin surface: the /debug/killsafe/* routes served by every session
// thread (see serveConn's dispatch) and reusable by an out-of-band HTTP
// mux (cmd/killserve's -admin listener). All renderers read atomic
// counters or take per-runtime snapshots; none of them is a hot path.

// adminShardStats is one shard's slice of the stats document.
type adminShardStats struct {
	Shard   int           `json:"shard"`
	Serving StatsSnapshot `json:"serving"`
	Runtime *obs.Snapshot `json:"runtime,omitempty"` // nil under DisableObs
	Live    int           `json:"live_threads"`      // runtime accounting, not counters
}

// adminStats is the /debug/killsafe/stats document: fleet totals plus
// the per-shard breakdown (a standalone server is a one-shard fleet).
type adminStats struct {
	Shards   int               `json:"shards"`
	Serving  StatsSnapshot     `json:"serving"`
	Runtime  *obs.Snapshot     `json:"runtime,omitempty"`
	PerShard []adminShardStats `json:"per_shard"`
}

// adminServers returns the servers the admin document covers: every
// live shard engine of the fleet, or just this server when unsharded.
// Engines retired by DrainShard are excluded — their counters live in
// the fleet's retired fold, which AdminStatsJSON adds separately.
func (s *Server) adminServers() []*Server {
	if s.sharded == nil {
		return []*Server{s}
	}
	out := make([]*Server, 0, s.sharded.NumShards())
	for _, sh := range s.sharded.shards {
		if sh.retired.Load() {
			continue
		}
		out = append(out, sh.server())
	}
	return out
}

// AdminStatsJSON renders the /debug/killsafe/stats document.
func (s *Server) AdminStatsJSON() string {
	servers := s.adminServers()
	doc := adminStats{Shards: len(servers)}
	var agg obs.Snapshot
	haveObs := false
	for _, sv := range servers {
		entry := adminShardStats{
			Shard:   sv.shard,
			Serving: sv.Stats(),
			Live:    sv.rt.LiveThreads(),
		}
		doc.Serving = addStats(doc.Serving, entry.Serving)
		if sv.obs != nil {
			snap := sv.obs.Snapshot()
			entry.Runtime = &snap
			agg = agg.Add(snap)
			haveObs = true
		}
		doc.PerShard = append(doc.PerShard, entry)
	}
	// Fold in the engines retired by live drains: the fleet totals must
	// never lose served work to a handoff, and ShardsDrained is a
	// fleet-level fact no live engine carries.
	if m := s.sharded; m != nil {
		doc.Shards = m.NumShards()
		m.mu.Lock()
		doc.Serving = addStats(doc.Serving, m.retired)
		doc.Serving.ShardsDrained = m.drains
		retiredObs := m.retiredObs
		m.mu.Unlock()
		if haveObs {
			agg = retiredObs.Add(agg)
		}
	}
	if haveObs {
		doc.Runtime = &agg
	}
	return marshalAdmin(doc)
}

// adminCustodians is the /debug/killsafe/custodians document: the live
// custodian tree of each runtime, straight from runtime accounting.
type adminCustodians struct {
	Shard      int                  `json:"shard"`
	Custodians []core.CustodianInfo `json:"custodians"`
}

// AdminCustodiansJSON renders the /debug/killsafe/custodians document.
func (s *Server) AdminCustodiansJSON() string {
	servers := s.adminServers()
	out := make([]adminCustodians, 0, len(servers))
	for _, sv := range servers {
		out = append(out, adminCustodians{Shard: sv.shard, Custodians: sv.rt.CustodianSnapshot()})
	}
	return marshalAdmin(out)
}

// AdminTraceText renders shard's flight recorder in the explore trace
// format (shard -1 means this server's own). It returns ok=false if the
// flight recorder is not enabled (or the shard index is out of range).
func (s *Server) AdminTraceText(shard int) (string, bool) {
	sv := s
	if shard >= 0 {
		if s.sharded == nil {
			if shard != s.shard {
				return "", false
			}
		} else {
			if shard >= s.sharded.NumShards() {
				return "", false
			}
			sv = s.sharded.Shard(shard)
		}
	}
	if sv.obs == nil {
		return "", false
	}
	rec := sv.obs.Recorder()
	if rec == nil {
		return "", false
	}
	return rec.TraceText(fmt.Sprintf("netsvc-shard-%d", sv.shard), 0), true
}

// adminDispatch answers the /debug/killsafe/* routes; ok=false means
// the path is not an admin route.
func (s *Server) adminDispatch(path string, query map[string]string) (status int, body string, ok bool) {
	switch path {
	case "/debug/killsafe/stats":
		return 200, s.AdminStatsJSON() + "\n", true
	case "/debug/killsafe/custodians":
		return 200, s.AdminCustodiansJSON() + "\n", true
	case "/debug/killsafe/trace":
		shard := -1
		if v, have := query["shard"]; have {
			if n, err := strconv.Atoi(v); err == nil {
				shard = n
			}
		}
		text, found := s.AdminTraceText(shard)
		if !found {
			return 404, "flight recorder not enabled (set Config.FlightRecorder)\n", true
		}
		return 200, text, true
	}
	return 0, "", false
}

// addStats folds two serving snapshots: counters sum, the pipelined-depth
// high-water mark is a fleet maximum, and the protocol name carries over
// (every shard of a fleet speaks the same protocol).
func addStats(a, b StatsSnapshot) StatsSnapshot {
	if a.Protocol == "" {
		a.Protocol = b.Protocol
	}
	a.Accepted += b.Accepted
	a.Active += b.Active
	a.Drained += b.Drained
	a.Killed += b.Killed
	a.TimedOut += b.TimedOut
	a.Rejected += b.Rejected
	a.Shed += b.Shed
	a.AdmShed += b.AdmShed
	a.AdmShedBulk += b.AdmShedBulk
	a.Migrated += b.Migrated
	a.ReqAdmin += b.ReqAdmin
	a.ReqNormal += b.ReqNormal
	a.ReqBulk += b.ReqBulk
	a.Deadlined += b.Deadlined
	a.Restarts += b.Restarts
	a.Requests += b.Requests
	a.Responses += b.Responses
	a.ShardsDrained += b.ShardsDrained
	if b.PipelineHWM > a.PipelineHWM {
		a.PipelineHWM = b.PipelineHWM
	}
	if b.SojournEWMAus > a.SojournEWMAus {
		a.SojournEWMAus = b.SojournEWMAus
	}
	a.Overloaded = a.Overloaded || b.Overloaded
	return a
}

func marshalAdmin(v any) string {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// PublishExpvar exposes the runtime metrics of every shard this server
// belongs to as expvar variables "name.shardN" (for /debug/vars on a
// plain HTTP mux). With obs disabled it is a no-op.
func (s *Server) PublishExpvar(name string) {
	for _, sv := range s.adminServers() {
		if sv.obs != nil {
			obs.PublishExpvar(fmt.Sprintf("%s.shard%d", name, sv.shard), sv.obs)
		}
	}
}

// PublishExpvar exposes the fleet's per-shard runtime metrics as expvar
// variables "name.shardN". With obs disabled it is a no-op.
func (m *ShardedServer) PublishExpvar(name string) {
	m.Shard(0).PublishExpvar(name)
}

// Obs returns shard i's observability layer (nil under DisableObs).
// After a DrainShard the layer belongs to the replacement engine.
func (m *ShardedServer) Obs(i int) *obs.Obs { return m.shards[i].server().obs }

// ObsSnapshot returns the fleet-wide aggregate of the per-shard runtime
// metrics (the zero snapshot under DisableObs), including the folded
// totals of engines retired by drains.
func (m *ShardedServer) ObsSnapshot() obs.Snapshot {
	m.mu.Lock()
	agg := m.retiredObs
	m.mu.Unlock()
	for _, sh := range m.shards {
		if sh.retired.Load() {
			continue
		}
		if o := sh.server().obs; o != nil {
			agg = agg.Add(o.Snapshot())
		}
	}
	return agg
}
