// Package netsvc is the kill-safe TCP serving layer: it bridges the
// runtime's safe-point world to real OS sockets, turning the paper's
// closed-world servlet scenario (internal/web, which speaks only
// in-process pipes) into a servable system.
//
// The bridging problem is the one CQS-style production frameworks call
// the hard part: abortable waiting on external resources. A goroutine
// blocked in accept(2) or read(2) cannot be suspended or killed, so no
// runtime thread ever issues a blocking OS call. Instead:
//
//   - A plain *pump* goroutine per listener (and per connection) performs
//     the blocking call and hands results across a buffered Go channel,
//     signalling availability through a core.Semaphore — Post is callable
//     from outside the runtime, and a semaphore wait is an ordinary
//     event, so runtime threads multiplex socket readiness with alarms,
//     drain signals, and anything else via Choice.
//   - One-shot calls go through a core.External completion cell
//     (NewExternal(rt).Start / .StartEvt).
//   - Every fd is registered with a custodian. The pump goroutines are
//     unstoppable by construction, but closing the fd forces their
//     blocking call to return; custodian shutdown is therefore exactly
//     the reclamation story the paper gives for MzScheme's ports.
//
// Each accepted connection is served by a runtime thread under a fresh
// per-connection custodian (a child of the server's), registered with the
// mounted web.Server as a session — so the administrator's Terminate
// closes the socket and reclaims the session without endangering any
// shared kill-safe abstraction, exactly as in the in-process scenario.
package netsvc

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/web"
	"repro/internal/wire"
)

// Config carries the serving knobs.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// MaxConns caps concurrently served connections; further accepted
	// connections wait (and eventually the OS listen backlog fills, which
	// is the backpressure story). Default 64.
	MaxConns int
	// IdleTimeout bounds the wait for (the rest of) a request on an open
	// connection; an idle connection is closed with 408. Default 10s.
	IdleTimeout time.Duration
	// AcceptBacklog bounds connections accepted by the pump but not yet
	// claimed by the acceptor thread. Default 16.
	AcceptBacklog int
	// MaxPending caps connections that have been accepted but are not yet
	// being served (queued for the acceptor or waiting for a MaxConns
	// slot). Past the cap the pump sheds load: it answers 503 directly and
	// closes, instead of queueing without bound while the service is
	// wedged. The zero value means "default" (32); any negative value
	// means "unlimited" — shedding is disabled and the pump applies pure
	// backpressure (it blocks on a full handoff queue and the kernel
	// listen backlog absorbs the rest). This static cap is a backstop;
	// AdmitTarget replaces the cliff with delay-based shedding.
	MaxPending int
	// AdmitTarget enables CoDel-style adaptive admission control: each
	// request's queue sojourn (accept-to-dispatch for a connection's first
	// request, arrival-to-dispatch for later ones) is measured, and when
	// it stays above AdmitTarget for a full AdmitInterval the server
	// sheds — every bulk request, and normal requests at CoDel's paced
	// rate — until delay falls back under the target. Admin-class
	// requests are never shed. Shed responses are whole frames in the
	// listener's protocol (HTTP 503 + Retry-After, RESP -OVERLOADED) and
	// do not cost the client its connection. Zero disables adaptive
	// admission; the static MaxPending backstop still applies.
	AdmitTarget time.Duration
	// AdmitInterval is the admission controller's control window: how
	// long sojourn must stay above AdmitTarget before shedding engages,
	// and the base gap of the paced shed schedule. Default 100ms.
	AdmitInterval time.Duration
	// Classifier assigns each parsed request a priority class for
	// admission control. Nil means the default: paths under /debug/,
	// /admin/, /chaos/ and the /healthz path are ClassAdmin; a
	// "class=bulk" query parameter or a /bulk/ path prefix is ClassBulk;
	// everything else is ClassNormal. Classification is per request, so
	// one keep-alive connection may mix classes.
	Classifier func(*web.Request) Priority
	// RequestTimeout bounds a single servlet dispatch: the handler runs in
	// a worker thread and is killed if the deadline (a core.After event,
	// so virtual-clock drivable) fires first; the client gets 503. Zero
	// means unlimited — handlers may block indefinitely, as the paper's
	// servlet scenario assumes.
	RequestTimeout time.Duration
	// Shards is the number of independent runtime shards for ServeSharded:
	// each shard is a whole paper-faithful VM (its own core.Runtime,
	// custodian tree, supervisor, and servlet instance), and the accept
	// pump spreads connections across them. Default min(GOMAXPROCS, 8).
	// MaxConns and MaxPending are per-shard limits. Serve ignores a value
	// of 1 and rejects larger ones — a single *web.Server cannot be
	// sharded; use ServeSharded with a setup function instead.
	Shards int
	// DisableObs turns off the observability layer. By default every
	// serving runtime gets an obs.Obs attached (always-on metrics: a few
	// uncontended atomic adds per scheduler event), backing the
	// /debug/killsafe/* admin surface. Disabling it is for overhead
	// measurement, not production.
	DisableObs bool
	// FlightRecorder, when non-zero, enables the lock-free flight
	// recorder on each serving runtime, keeping the most recent n
	// scheduler events (negative means obs.DefaultRecorderSize) for
	// /debug/killsafe/trace. Requires the obs layer (ignored under
	// DisableObs).
	FlightRecorder int
	// Protocol selects the listener's wire protocol: "http" (the default;
	// HTTP/1.1 with persistent connections and pipelining) or "resp"
	// (Redis-style commands mapped onto the KV servlet mounted at
	// RESPPrefix). Under ServeSharded every shard speaks the same
	// protocol. See internal/wire.
	Protocol string
	// RESPPrefix is the servlet mount point the RESP codec's commands
	// address (default "/kv"). Ignored for HTTP.
	RESPPrefix string
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 16
	}
	// MaxPending: 0 means default, negative means unlimited (kept
	// negative so the submit path can distinguish "no cap" cheaply).
	if c.MaxPending == 0 {
		c.MaxPending = 32
	}
	if c.AdmitInterval <= 0 {
		c.AdmitInterval = 100 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	return c
}

// Server is a live TCP serving layer mounted on a web.Server's routes.
// In sharded operation (ServeSharded) a Server is one shard: it owns no
// listener of its own — the sharded accept pump feeds it via submit — but
// is otherwise the complete serving engine for its runtime.
type Server struct {
	rt    *core.Runtime
	cfg   Config
	web   *web.Server
	cust  *core.Custodian // server custodian; conn custodians are children
	ln    net.Listener    // nil for a shard (the ShardedServer owns the listener)
	shard int             // shard index, 0 for a standalone server

	// aggStats, when set (sharded operation), supplies the fleet-wide
	// snapshot served by /debug/stats in place of this shard's own.
	aggStats func() StatsSnapshot
	// sharded, when set, is the fleet this server is one shard of; the
	// admin surface uses it to aggregate across shards.
	sharded *ShardedServer

	obs *obs.Obs // runtime observability; nil under Config.DisableObs

	newCodec  wire.Factory // mints the per-connection protocol codec
	protoName string       // codec name, for the stats surface

	adm      *admission               // adaptive admission; nil unless Config.AdmitTarget > 0
	classify func(*web.Request) Priority

	stats    *Stats
	sup      *supervise.Supervisor
	slots    *core.Semaphore // MaxConns tokens; one held per served conn
	pending  *core.Semaphore // counts conns handed off in connCh
	pendingN atomic.Int64    // accepted-but-unserved conns, for load shedding
	connCh   chan pendingConn
	quit     chan struct{}  // closed by custodian shutdown; unblocks the pump's handoff
	drain    *core.External // completed when Shutdown begins
	migrate  *core.External // completed by DrainShard: the acceptor rehomes instead of serving
	rehome   func(net.Conn) bool // sharded: move a queued conn to a healthy sibling shard
	pumpRet  *core.External // completed when the accept pump exits

	mu      sync.Mutex
	conns   map[int64]*connState
	threads map[*core.Thread]struct{} // every runtime thread we spawned
	nextID  int64
}

// connState is the server's record of one live connection.
type connState struct {
	id        int64
	c         net.Conn
	queuedAt  time.Time // accept time; first-request admission sojourn baseline
	cust      *core.Custodian
	sess      *web.Session
	th        *core.Thread // session thread
	completed bool         // set under s.mu when the session ends cleanly
}

// pendingConn is one accepted connection in flight to the acceptor,
// stamped with its accept time so the admission controller can charge
// the first request for its whole accept-queue wait.
type pendingConn struct {
	c        net.Conn
	queuedAt time.Time
}

// closerFunc adapts a func to io.Closer for Custodian.Register.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// Serve opens a TCP listener and starts serving ws's routes through the
// runtime. The server's custodian is a child of th's current custodian.
//
// Serve runs everything on th's runtime: one VM, one global rendezvous
// lock, so throughput does not scale with client concurrency. For a
// server that should scale across cores, use ServeSharded, which spins up
// Config.Shards independent runtimes. Serve rejects Config.Shards > 1:
// the caller's single *web.Server is bound to the caller's runtime and
// cannot be instantiated once per shard.
func Serve(th *core.Thread, ws *web.Server, cfg Config) (*Server, error) {
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("netsvc: Serve cannot shard a single *web.Server (Shards=%d); use ServeSharded", cfg.Shards)
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s, err := serveOn(th, ws, cfg, ln)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	go s.acceptPump()
	return s, nil
}

// serveOn builds the serving engine for one runtime. ln may be nil: a
// shard has no listener of its own, and its accept pump duties (and
// pumpRet) are the ShardedServer's. cfg has defaults applied.
func serveOn(th *core.Thread, ws *web.Server, cfg Config, ln net.Listener) (*Server, error) {
	rt := th.Runtime()
	codec, err := wire.New(cfg.Protocol, wire.Options{KVPrefix: cfg.RESPPrefix})
	if err != nil {
		return nil, err
	}
	// The handoff channel must hold every conn shedding lets through, so
	// the pump only ever blocks when shedding is disabled.
	capacity := cfg.AcceptBacklog
	if cfg.MaxPending > capacity {
		capacity = cfg.MaxPending
	}
	s := &Server{
		rt:      rt,
		cfg:     cfg,
		web:     ws,
		cust:    core.NewCustodian(th.CurrentCustodian()),
		ln:      ln,
		stats:   &Stats{},
		slots:   core.NewSemaphore(rt, cfg.MaxConns),
		pending: core.NewSemaphore(rt, 0),
		connCh:  make(chan pendingConn, capacity),
		quit:    make(chan struct{}),
		drain:   core.NewExternal(rt),
		migrate: core.NewExternal(rt),
		pumpRet: core.NewExternal(rt),
		conns:   make(map[int64]*connState),
		threads: make(map[*core.Thread]struct{}),
	}
	s.newCodec = codec
	s.protoName = codec().Name()
	if cfg.AdmitTarget > 0 {
		s.adm = newAdmission(cfg.AdmitTarget, cfg.AdmitInterval)
	}
	s.classify = cfg.Classifier
	if s.classify == nil {
		s.classify = defaultClassify
	}
	if !cfg.DisableObs {
		s.obs = obs.New()
		if cfg.FlightRecorder != 0 {
			s.obs.EnableRecorder(cfg.FlightRecorder)
		}
		s.obs.Attach(rt)
	}
	if ln != nil {
		if err := s.cust.Register(ln); err != nil {
			return nil, err
		}
	} else {
		s.pumpRet.Complete(core.Unit{}) // no pump of our own to wait for
	}
	quit := s.quit
	if err := s.cust.Register(closerFunc(func() error { close(quit); return nil })); err != nil {
		return nil, err
	}
	// The acceptor runs under a supervisor: if it dies abnormally (a stray
	// kill, a panic in the accept path) it is restarted with backoff
	// rather than silently leaving the server deaf. A normal return (the
	// drain path) is final — Transient. The supervisor's custodian is a
	// child of the server's, so both shutdown paths take it down too.
	th.WithCustodian(s.cust, func() {
		s.sup = supervise.New(th, supervise.Options{
			MaxRestarts: 8,
			Window:      time.Minute,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
			OnRestart:   func(string, int) { s.stats.restarts.Add(1) },
		})
	})
	s.sup.Start(th, supervise.ChildSpec{
		Name:   "netsvc-accept",
		Policy: supervise.Transient,
		Start: func(x *core.Thread) {
			s.mu.Lock()
			s.threads[x] = struct{}{}
			s.mu.Unlock()
			s.acceptLoop(x)
		},
	})
	return s, nil
}

// Supervisor exposes the accept-loop supervisor for tests and
// diagnostics.
func (s *Server) Supervisor() *supervise.Supervisor { return s.sup }

// Addr returns the listener's address (useful with Addr "host:0"). A
// shard has no listener of its own; use ShardedServer.Addr.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Custodian returns the server custodian. Shutting it down is the abrupt
// ("administrator kills the whole server") path: every fd closes and every
// serving thread is suspended; pair it with Runtime.TerminateCondemned or
// use Shutdown for the graceful path.
func (s *Server) Custodian() *core.Custodian { return s.cust }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() StatsSnapshot {
	snap := s.stats.snapshot()
	snap.Protocol = s.protoName
	if s.adm != nil {
		snap.SojournEWMAus = s.adm.sojournEWMA().Microseconds()
		snap.Overloaded = s.adm.overloaded()
	}
	return snap
}

// Obs returns the server's runtime observability layer, or nil if the
// config disabled it.
func (s *Server) Obs() *obs.Obs { return s.obs }

// acceptPump is the plain goroutine that owns the blocking accept(2)
// loop of a standalone (unsharded) server.
func (s *Server) acceptPump() {
	defer s.pumpRet.Complete(core.Unit{})
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain or custodian shutdown)
		}
		s.stats.accepted.Add(1)
		s.submit(c)
	}
}

// submit hands an accepted connection to this server's acceptor thread.
// It is called from a plain pump goroutine — the standalone server's own
// accept pump, or the ShardedServer's. The conn is registered with the
// server custodian *before* the handoff so an fd is never outside
// custodian control. A full connCh blocks the pump — and, transitively,
// the OS listen backlog — which is the accept backpressure.
func (s *Server) submit(c net.Conn) {
	if s.cust.Register(c) != nil {
		// Server custodian already dead: Register closed the conn.
		s.stats.rejected.Add(1)
		return
	}
	// Load shedding: past MaxPending accepted-but-unserved conns the
	// service is wedged or overwhelmed; answer 503 now rather than
	// queueing a request that would only time out later.
	if s.cfg.MaxPending > 0 && s.pendingN.Load() >= int64(s.cfg.MaxPending) {
		s.shedConn(c)
		return
	}
	s.pendingN.Add(1)
	select {
	case s.connCh <- pendingConn{c: c, queuedAt: time.Now()}:
		s.pending.Post()
	case <-s.quit:
		s.pendingN.Add(-1)
		_ = c.Close()
		s.stats.rejected.Add(1)
	}
}

// load is the shard-assignment metric: connections currently being served
// plus those accepted but not yet claimed. Readable from any goroutine.
func (s *Server) load() int64 {
	return s.stats.active.Load() + s.pendingN.Load()
}

// pendingLoadWeight over-weights accepted-but-unclaimed connections in the
// shard-assignment score. An active session may be an idle keep-alive, but
// a deep pending queue means the engine's acceptor is not keeping up —
// slots exhausted, servlets stalled, runtime busy — so a queued conn
// predicts far more added latency than a served one. The weight makes the
// fleet's least-loaded override shed assignment away from a hot shard well
// before its pending backstop (MaxPending) starts refusing connections.
const pendingLoadWeight = 4

// assignScore is the load figure the sharded assigner compares: conns
// being served plus pending-queue depth, the latter re-weighted.
func (s *Server) assignScore() int64 {
	return s.stats.active.Load() + pendingLoadWeight*s.pendingN.Load()
}

// shedConn answers an over-capacity connection straight from the pump
// goroutine — a plain blocking write with a short deadline; the conn
// never enters the runtime's world — and closes it. The refusal speaks
// the listener's own protocol (a fresh codec, used once).
func (s *Server) shedConn(c net.Conn) {
	// Count the decision before the refusal is written: a client that has
	// read the 503 must already observe it in Stats.
	s.stats.shed.Add(1)
	msg := s.newCodec().AppendFault(nil, 503, "server busy\n")
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	_, _ = c.Write(msg)
	s.cust.Unregister(c)
	_ = c.Close()
}

// acceptLoop is the acceptor runtime thread: it claims pumped
// connections, enforces the connection cap, and spawns a session plus its
// monitor per connection. Being a runtime thread, it is suspendable and
// killable at every Sync.
func (s *Server) acceptLoop(th *core.Thread) {
	// Hoisted once per acceptor lifetime: no per-connection event allocs.
	drainEvt := core.Wrap(s.drain.Evt(), func(core.Value) core.Value { return "drain" })
	connEvt := core.Wrap(s.pending.WaitEvt(), func(core.Value) core.Value { return "conn" })
	connChoice := core.Choice(
		connEvt,
		drainEvt,
		core.Wrap(s.migrate.Evt(), func(core.Value) core.Value { return "migrate" }),
	)
	// Once migration has begun its completed External is always ready;
	// from then on wait without that arm.
	migConnChoice := core.Choice(connEvt, drainEvt)
	slotChoice := core.Choice(
		core.Wrap(s.slots.WaitEvt(), func(core.Value) core.Value { return "slot" }),
		drainEvt,
	)
	// Checked on entry, not just learned from the event: the supervisor
	// may restart the acceptor in the middle of a drain-triggered
	// migration, and the restarted incarnation must keep rehoming.
	migrating := s.migrate.Completed()
	for {
		choice := connChoice
		if migrating {
			choice = migConnChoice
		}
		v, err := core.Sync(th, choice)
		if err != nil {
			continue // stray break
		}
		switch v {
		case "drain":
			return
		case "migrate":
			migrating = true
			continue
		}
		// pending.Post happens only after the conn is in connCh, so this
		// receive cannot block.
		pc := <-s.connCh
		if migrating {
			// This shard is being drained: hand the queued conn to a
			// sibling instead of serving it here.
			s.rehomeConn(pc.c)
			continue
		}

		// Respect the connection cap before spawning: while no slot is
		// free we also stop claiming, connCh fills, the pump blocks, and
		// the kernel's backlog does the rest.
		for {
			v, err = core.Sync(th, slotChoice)
			if err == nil {
				break
			}
		}
		if v == "drain" {
			s.pendingN.Add(-1)
			_ = pc.c.Close()
			s.stats.rejected.Add(1)
			return
		}
		s.startConn(th, pc)
	}
}

// rehomeConn moves one accepted-but-unclaimed conn off a draining shard.
// The sharded assigner resubmits it to the least-loaded healthy sibling,
// which registers it with its own custodian before this shard lets go,
// so the fd is never uncontrolled. With no sibling available (fleet
// going down, or a single-shard fleet) the conn is refused.
func (s *Server) rehomeConn(c net.Conn) {
	s.pendingN.Add(-1)
	if s.rehome != nil && s.rehome(c) {
		s.cust.Unregister(c)
		s.stats.migrated.Add(1)
		return
	}
	s.cust.Unregister(c)
	_ = c.Close()
	s.stats.rejected.Add(1)
}

// startConn places the conn under a fresh per-connection custodian,
// attaches a web session, and spawns the session thread and its monitor.
func (s *Server) startConn(th *core.Thread, pc pendingConn) {
	c := pc.c
	s.pendingN.Add(-1) // the conn is being served from here on
	ccust := core.NewCustodian(s.cust)
	// Move the fd under the connection custodian (register first so the
	// conn is never uncontrolled; double close on races is harmless).
	if ccust.Register(c) != nil {
		s.cust.Unregister(c)
		_ = c.Close()
		s.stats.rejected.Add(1)
		s.slots.Post()
		return
	}
	s.cust.Unregister(c)

	cs := &connState{c: c, queuedAt: pc.queuedAt, cust: ccust, sess: s.web.AttachSession(ccust)}
	s.mu.Lock()
	s.nextID++
	cs.id = s.nextID
	s.mu.Unlock()

	// cs.th must be assigned before cs is published in s.conns: Shutdown
	// reads cs.th from the map under s.mu, so the session thread is
	// spawned first and the insert is the publication point. The monitor
	// is spawned only after the insert — its cleanup deletes cs from the
	// map, and a session dying instantly must not race the delete past
	// the insert (a stale entry would wedge Shutdown's drain loop).
	th.WithCustodian(ccust, func() {
		cs.th = th.Spawn(fmt.Sprintf("netsvc-conn-%d", cs.id), func(x *core.Thread) {
			s.serveConn(x, cs)
		})
	})
	s.mu.Lock()
	s.conns[cs.id] = cs
	s.threads[cs.th] = struct{}{}
	s.mu.Unlock()
	s.stats.active.Add(1)

	var mon *core.Thread
	th.WithCustodian(s.cust, func() {
		mon = th.Spawn(fmt.Sprintf("netsvc-mon-%d", cs.id), func(x *core.Thread) {
			s.monitorConn(x, cs)
		})
	})
	s.mu.Lock()
	s.threads[mon] = struct{}{}
	s.mu.Unlock()
}

// monitorConn waits for the connection to end — the session thread
// returning, or the connection custodian being shut down by the
// administrator — and performs the one-time cleanup: close the fd (via
// custodian shutdown), release the connection slot, reap the session
// thread, and classify the outcome for the stats surface.
func (s *Server) monitorConn(th *core.Thread, cs *connState) {
	for {
		if _, err := core.Sync(th, core.Choice(cs.th.DoneEvt(), cs.cust.DeadEvt())); err == nil {
			break
		}
	}
	cs.cust.Shutdown() // idempotent; closes the conn and the reader's quit closer
	s.web.Detach(cs.sess.ID)
	s.mu.Lock()
	delete(s.conns, cs.id)
	delete(s.threads, cs.th)
	completed := cs.completed
	s.mu.Unlock()
	s.stats.active.Add(-1)
	if completed {
		s.stats.drained.Add(1)
	} else {
		s.stats.killed.Add(1)
	}
	s.slots.Post()
	// The session thread is condemned (its only custodian is dead); reap
	// it deterministically so long-running servers do not accumulate
	// suspended threads. This is TerminateCondemned, scoped to one thread.
	cs.th.Kill()
	s.mu.Lock()
	delete(s.threads, th)
	s.mu.Unlock()
}

// ErrServerDown is returned by Shutdown if called twice.
var ErrServerDown = errors.New("netsvc: server is shut down")

// Shutdown gracefully drains the server from a runtime thread: stop
// accepting, let in-flight sessions finish for up to grace, then shut the
// server custodian down (closing every remaining fd) and reap every
// serving thread. On return no netsvc-owned runtime thread is live and no
// netsvc-owned goroutine remains (pumps unblock as their fds close).
func (s *Server) Shutdown(th *core.Thread, grace time.Duration) error {
	if !s.drain.Complete(core.Unit{}) {
		return ErrServerDown
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	deadline := time.Now().Add(grace)
	for {
		s.mu.Lock()
		var waitFor *core.Thread
		for _, cs := range s.conns {
			waitFor = cs.th
			break
		}
		s.mu.Unlock()
		if waitFor == nil {
			break
		}
		v, err := core.Sync(th, core.Choice(
			core.Wrap(waitFor.DoneEvt(), func(core.Value) core.Value { return "done" }),
			core.Wrap(core.AlarmAt(s.rt, deadline), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil {
			continue
		}
		if v == "timeout" {
			break
		}
		// Let the monitor finish its cleanup before re-scanning.
		if err := core.Sleep(th, time.Millisecond); err != nil {
			return err
		}
	}
	// Grace expired (or every session finished): terminate stragglers
	// through their own custodians while the monitors are still live, so
	// the normal cleanup path runs and the stats classify them as killed.
	// (The server-custodian shutdown below would suspend the monitors
	// along with everything else, losing the accounting.)
	s.mu.Lock()
	strays := make([]*connState, 0, len(s.conns))
	for _, cs := range s.conns {
		strays = append(strays, cs)
	}
	s.mu.Unlock()
	for _, cs := range strays {
		cs.cust.Shutdown()
	}
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if err := core.Sleep(th, time.Millisecond); err != nil {
			return err
		}
	}
	s.cust.Shutdown()
	// Reap the supervisor first — its monitor thread must not respawn the
	// acceptor while we kill it below (the custodian is already dead, so
	// any respawn would be stillborn, but the monitor itself would stay
	// parked in its backoff sleep forever).
	s.sup.Stop()
	// Reap every thread we spawned. Loop because a startConn racing the
	// shutdown may insert its spawns after the first snapshot; once the
	// acceptor is dead the map stops refilling and the loop terminates.
	for {
		s.mu.Lock()
		ths := make([]*core.Thread, 0, len(s.threads))
		for t := range s.threads {
			ths = append(ths, t)
		}
		s.threads = make(map[*core.Thread]struct{})
		s.mu.Unlock()
		if len(ths) == 0 {
			break
		}
		for _, t := range ths {
			t.Kill()
		}
		if err := core.Sleep(th, time.Millisecond); err != nil {
			return err
		}
	}
	// Wait for the accept pump to exit so "no goroutines leaked" holds
	// the moment Shutdown returns.
	_, err := core.Sync(th, s.pumpRet.Evt())
	return err
}
