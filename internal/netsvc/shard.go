package netsvc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/web"
)

// ShardedServer is a share-nothing-per-core serving fleet: one listener,
// Config.Shards independent runtimes behind it. Each shard is a whole
// paper-faithful VM — its own core.Runtime, custodian tree, supervisor,
// and servlet instance — so the per-runtime global rendezvous lock is
// contended only by the sessions of one shard, and throughput scales
// with shards (given cores to run them on).
//
// The isolation boundary is strict: channels, semaphores, externals, and
// custodians belong to one runtime and must never be shared across
// shards; the core panics on any attempt (see core's cross-runtime
// guard). Kill-safety is therefore per-shard — an administrator killing
// sessions, or a custodian avalanche, on shard 0 cannot perturb shard 3,
// by construction rather than by care. State that must be visible across
// shards lives outside the runtimes in plain Go, guarded by ordinary
// sync primitives (see SharedState in the package example).
//
// Shards are also individually replaceable under traffic: DrainShard
// retires one shard's runtime — custodian shutdown is the reclamation
// story — and boots a fresh engine in its place without dropping the
// fleet's listener.
type ShardedServer struct {
	cfg      Config
	setup    func(th *core.Thread, shard int) *web.Server
	ln       net.Listener
	shards   []*shard
	next     atomic.Uint64 // round-robin cursor for shard assignment
	pumpDone chan struct{} // closed when the accept pump exits

	// opMu serializes shard lifecycle operations: at most one
	// DrainShard runs at a time, and Shutdown's teardown waits for an
	// in-flight drain to finish its handoff (or observe down and bail)
	// before walking the shard list.
	opMu sync.Mutex

	mu         sync.Mutex
	down       bool
	drains     int64         // completed drain/handoff cycles
	retired    StatsSnapshot // folded counters of retired shard engines
	retiredObs obs.Snapshot  // folded runtime metrics of retired engines
}

// shard is one slot in the fleet: a runtime plus its serving engine,
// both replaceable by DrainShard.
type shard struct {
	idx      int
	draining atomic.Bool // drain in progress: the assigner routes around it
	retired  atomic.Bool // engine reaped with no replacement; skip everywhere

	// srvP is the current serving engine, read lock-free on the accept
	// hot path and swapped by startShard.
	srvP atomic.Pointer[Server]

	// Lifecycle fields: written by startShard under m.mu, read by the
	// accessors under m.mu and by DrainShard/Shutdown under m.opMu.
	rt      *core.Runtime
	ws      *web.Server
	stop    *core.External // completed with the grace time.Duration to begin drain
	runDone chan error     // the shard main thread's rt.Run result
	sdErr   error          // the shard's Shutdown error; read only after runDone
}

// server returns the shard's current serving engine.
func (sh *shard) server() *Server { return sh.srvP.Load() }

// ServeSharded opens one TCP listener and serves it with cfg.Shards
// independent runtimes. setup runs once per shard, on that shard's main
// runtime thread, and must build and return the shard's own *web.Server —
// servlet instances are per-shard (see the package's servlet state
// contract); cross-shard state goes through an external Go-side store.
// setup is retained: DrainShard calls it again to build a drained
// shard's replacement engine, so it must be safe to run more than once
// per shard index.
//
// MaxConns and MaxPending are per-shard limits. The accept pump assigns
// each connection round-robin, stepping aside to a strictly less loaded
// shard when the fleet is unbalanced (load = conns being served plus
// conns accepted-but-unclaimed on that shard).
func ServeSharded(cfg Config, setup func(th *core.Thread, shard int) *web.Server) (*ShardedServer, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	m := &ShardedServer{cfg: cfg, setup: setup, ln: ln, pumpDone: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		m.shards = append(m.shards, &shard{idx: i})
	}
	var setupErrs []error
	for _, sh := range m.shards {
		if err := m.startShard(sh); err != nil {
			setupErrs = append(setupErrs, err)
		}
	}
	if len(setupErrs) > 0 {
		_ = ln.Close()
		close(m.pumpDone) // never started
		m.mu.Lock()
		m.down = true
		m.mu.Unlock()
		for _, sh := range m.shards {
			sh.stop.Complete(time.Duration(0))
			<-sh.runDone
			sh.rt.Shutdown()
		}
		return nil, errors.Join(setupErrs...)
	}
	go m.acceptPump()
	return m, nil
}

// startShard boots one shard engine — a fresh runtime, custodian tree,
// supervisor, and servlet instance — and wires it into the fleet. It is
// used both at fleet startup and by DrainShard to build a replacement;
// it returns once the engine is serving (or its setup failed, in which
// case the runtime has exited and the caller owns reaping runDone).
func (m *ShardedServer) startShard(sh *shard) error {
	rt := core.NewRuntime()
	stop := core.NewExternal(rt)
	runDone := make(chan error, 1)
	m.mu.Lock()
	sh.rt, sh.stop, sh.runDone, sh.sdErr = rt, stop, runDone, nil
	m.mu.Unlock()
	ready := make(chan error, 1)
	go func() {
		runDone <- rt.Run(func(th *core.Thread) {
			ws := m.setup(th, sh.idx)
			srv, err := serveOn(th, ws, m.cfg, nil)
			if err != nil {
				ready <- fmt.Errorf("shard %d: %w", sh.idx, err)
				return
			}
			srv.shard = sh.idx
			srv.aggStats = m.Stats
			srv.sharded = m
			srv.rehome = func(c net.Conn) bool { return m.rehome(c, sh.idx) }
			m.mu.Lock()
			sh.ws = ws
			m.mu.Unlock()
			sh.srvP.Store(srv)
			ready <- nil
			// The shard main thread now just waits for the drain order;
			// the serving engine runs in its own threads.
			for {
				v, err := core.Sync(th, stop.Evt())
				if err != nil {
					continue // stray break
				}
				sh.sdErr = srv.Shutdown(th, v.(time.Duration))
				return
			}
		})
	}()
	return <-ready
}

// acceptPump is the fleet's single accept(2) loop: it owns the listener
// and hands each connection to a shard. Registration with the shard's
// custodian, shedding, and backpressure all happen inside submit, on the
// chosen shard's own terms.
func (m *ShardedServer) acceptPump() {
	defer close(m.pumpDone)
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		srv := m.pick().server()
		srv.stats.accepted.Add(1)
		srv.submit(c)
	}
}

// pick chooses the shard for the next connection: round-robin, with a
// least-loaded override — the cursor's shard is kept unless some shard
// scores strictly lower, so a balanced fleet rotates evenly and a stalled
// shard (slow servlet, drained slots) stops receiving new work. The score
// is load-aware, not just the draining flag: pending-queue depth is
// over-weighted (see assignScore), so a shard whose acceptor has fallen
// behind sheds new-conn assignment to its siblings while it catches up.
// A draining shard is routed around entirely; if every shard is draining
// (a single-shard fleet mid-handoff) the cursor is used anyway and the
// engine's own refusal path answers.
func (m *ShardedServer) pick() *shard {
	n := uint64(len(m.shards))
	cursor := m.shards[m.next.Add(1)%n]
	var best *shard
	var bestScore int64
	if !cursor.draining.Load() && !cursor.retired.Load() {
		best, bestScore = cursor, cursor.server().assignScore()
	}
	for _, sh := range m.shards {
		if sh.draining.Load() || sh.retired.Load() {
			continue
		}
		if l := sh.server().assignScore(); best == nil || l < bestScore {
			best, bestScore = sh, l
		}
	}
	if best == nil {
		return cursor
	}
	return best
}

// rehome moves one conn off a draining shard onto the least-loaded
// healthy sibling (called by the draining shard's acceptor via the
// engine's rehome hook). The sibling registers the conn with its own
// custodian inside submit before the caller releases it, so the fd is
// never uncontrolled. Returns false when no sibling can take it — fleet
// going down, or a single-shard fleet.
func (m *ShardedServer) rehome(c net.Conn, from int) bool {
	m.mu.Lock()
	down := m.down
	m.mu.Unlock()
	if down {
		return false
	}
	var best *shard
	var bestLoad int64
	for _, sh := range m.shards {
		if sh.idx == from || sh.draining.Load() || sh.retired.Load() {
			continue
		}
		if l := sh.server().assignScore(); best == nil || l < bestLoad {
			best, bestLoad = sh, l
		}
	}
	if best == nil {
		return false
	}
	// Not counted accepted again: the conn was counted when the OS
	// listener produced it.
	best.server().submit(c)
	return true
}

// Addr returns the fleet listener's address.
func (m *ShardedServer) Addr() net.Addr { return m.ln.Addr() }

// NumShards reports the number of shards.
func (m *ShardedServer) NumShards() int { return len(m.shards) }

// Shard returns shard i's current serving engine, for diagnostics and
// tests. After a DrainShard the engine is a different *Server.
func (m *ShardedServer) Shard(i int) *Server { return m.shards[i].server() }

// Web returns shard i's servlet server (each shard has its own instance).
func (m *ShardedServer) Web(i int) *web.Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shards[i].ws
}

// Runtime returns shard i's runtime.
func (m *ShardedServer) Runtime(i int) *core.Runtime {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shards[i].rt
}

// Stats returns the fleet-wide aggregate of the per-shard counters,
// including the folded totals of every engine retired by a drain — a
// completed handoff never makes served work disappear from the books.
func (m *ShardedServer) Stats() StatsSnapshot {
	m.mu.Lock()
	agg := m.retired
	drains := m.drains
	m.mu.Unlock()
	for _, sh := range m.shards {
		if sh.retired.Load() {
			continue
		}
		agg = addStats(agg, sh.server().Stats())
	}
	agg.ShardsDrained = drains
	return agg
}

// ShardStats returns each live shard engine's own snapshot, indexed by
// shard (retired engines' counters live in the fleet aggregate).
func (m *ShardedServer) ShardStats() []StatsSnapshot {
	out := make([]StatsSnapshot, len(m.shards))
	for i, sh := range m.shards {
		if sh.retired.Load() {
			continue
		}
		out[i] = sh.server().Stats()
	}
	return out
}

// ErrBadShard reports a shard index out of range (or a shard already
// retired without replacement).
var ErrBadShard = errors.New("netsvc: no such shard")

// DrainShard retires shard i's runtime under traffic and replaces it
// with a fresh engine — zero-downtime handoff, driven entirely through
// the custodian tree:
//
//  1. the shard is marked draining, so the assigner routes new
//     connections to its siblings;
//  2. the engine's migrate cell is completed: its acceptor thread stops
//     serving its accept queue and rehomes every queued connection to
//     the least-loaded healthy sibling (register-with-sibling before
//     release, so no fd is ever uncontrolled);
//  3. once the queue is empty, the shard's graceful Shutdown is ordered
//     through its main thread — in-flight sessions finish under the
//     grace window, stragglers are reclaimed by custodian shutdown;
//  4. the old runtime is reaped and its counters fold into the fleet
//     aggregate (Stats never loses served work to a handoff);
//  5. a replacement engine boots on a fresh runtime (setup runs again
//     for this shard index) and the shard rejoins the rotation.
//
// DrainShard is callable only from plain Go, not from a runtime thread
// of this fleet (step 3 waits on sessions that could be the caller).
// Drains serialize; a drain racing the fleet's Shutdown is safe —
// whichever takes the shard first wins and the loser reports
// ErrServerDown.
func (m *ShardedServer) DrainShard(i int, grace time.Duration) error {
	if i < 0 || i >= len(m.shards) {
		return ErrBadShard
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()
	if m.isDown() {
		return ErrServerDown
	}
	sh := m.shards[i]
	if sh.retired.Load() {
		return ErrBadShard
	}
	old := sh.server()
	sh.draining.Store(true)
	old.migrate.Complete(core.Unit{})
	// Wait for the acceptor to rehome its queued accept share. The
	// pending count can rise only from a pump thread that picked this
	// shard just before the draining flag was set; requiring it to hold
	// zero across a settle window closes that window.
	for {
		if m.isDown() {
			// Fleet Shutdown has begun: leave the engine to its teardown
			// (it reaps every non-retired shard after taking opMu).
			return ErrServerDown
		}
		if old.pendingN.Load() == 0 {
			time.Sleep(2 * time.Millisecond)
			if old.pendingN.Load() == 0 {
				break
			}
			continue
		}
		time.Sleep(500 * time.Microsecond)
	}
	// Order the graceful shutdown through the shard's main thread — the
	// same custodian-tree path a fleet Shutdown uses — and reap the old
	// runtime. The shard is marked retired first so fleet-wide Stats
	// readers never see the engine both live and folded.
	sh.retired.Store(true)
	sh.stop.Complete(grace)
	var errs []error
	if err := <-sh.runDone; err != nil {
		errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
	} else if sh.sdErr != nil {
		errs = append(errs, fmt.Errorf("shard %d: %w", i, sh.sdErr))
	}
	oldStats := old.Stats()
	var oldObs *obs.Snapshot
	if old.obs != nil {
		snap := old.obs.Snapshot()
		oldObs = &snap
	}
	sh.rt.Shutdown()
	m.mu.Lock()
	m.retired = addStats(m.retired, oldStats)
	if oldObs != nil {
		m.retiredObs = m.retiredObs.Add(*oldObs)
	}
	m.drains++
	m.mu.Unlock()
	if m.isDown() {
		// The fleet died while the old engine drained: no replacement.
		// The shard stays retired; teardown skips it.
		return ErrServerDown
	}
	if err := m.startShard(sh); err != nil {
		// Replacement failed to boot. Reap its runtime and leave the
		// shard retired — the fleet serves on with one shard fewer.
		<-sh.runDone
		sh.rt.Shutdown()
		errs = append(errs, fmt.Errorf("shard %d replacement: %w", i, err))
		return errors.Join(errs...)
	}
	sh.retired.Store(false)
	sh.draining.Store(false)
	return errors.Join(errs...)
}

// isDown reports whether the fleet Shutdown has begun.
func (m *ShardedServer) isDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// DrainAll performs a rolling drain: every shard in turn is retired and
// replaced, one at a time, while its siblings carry the traffic.
func (m *ShardedServer) DrainAll(grace time.Duration) error {
	var errs []error
	for i := range m.shards {
		if err := m.DrainShard(i, grace); err != nil {
			errs = append(errs, fmt.Errorf("drain shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Shutdown gracefully drains the fleet: stop accepting, then order every
// shard to drain concurrently under the shared grace deadline, wait for
// all of them, and tear the runtimes down. Callable from plain Go code
// (it is not a runtime-thread operation — each shard's drain runs on
// that shard's own main thread).
func (m *ShardedServer) Shutdown(grace time.Duration) error {
	m.mu.Lock()
	if m.down {
		m.mu.Unlock()
		return ErrServerDown
	}
	m.down = true
	m.mu.Unlock()

	_ = m.ln.Close()
	<-m.pumpDone
	// An in-flight DrainShard holds opMu: wait for it to finish its
	// handoff (or observe down and bail) so the shard list is stable.
	m.opMu.Lock()
	defer m.opMu.Unlock()
	// Fan the drain order out first so every shard's grace window runs
	// concurrently — total shutdown time is one grace period, not Shards
	// of them.
	for _, sh := range m.shards {
		if !sh.retired.Load() {
			sh.stop.Complete(grace)
		}
	}
	var errs []error
	for _, sh := range m.shards {
		if sh.retired.Load() {
			continue
		}
		if err := <-sh.runDone; err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.idx, err))
		} else if sh.sdErr != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.idx, sh.sdErr))
		}
		sh.rt.Shutdown()
	}
	return errors.Join(errs...)
}
