package netsvc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/web"
)

// ShardedServer is a share-nothing-per-core serving fleet: one listener,
// Config.Shards independent runtimes behind it. Each shard is a whole
// paper-faithful VM — its own core.Runtime, custodian tree, supervisor,
// and servlet instance — so the per-runtime global rendezvous lock is
// contended only by the sessions of one shard, and throughput scales
// with shards (given cores to run them on).
//
// The isolation boundary is strict: channels, semaphores, externals, and
// custodians belong to one runtime and must never be shared across
// shards; the core panics on any attempt (see core's cross-runtime
// guard). Kill-safety is therefore per-shard — an administrator killing
// sessions, or a custodian avalanche, on shard 0 cannot perturb shard 3,
// by construction rather than by care. State that must be visible across
// shards lives outside the runtimes in plain Go, guarded by ordinary
// sync primitives (see SharedState in the package example).
type ShardedServer struct {
	cfg      Config
	ln       net.Listener
	shards   []*shard
	next     atomic.Uint64 // round-robin cursor for shard assignment
	pumpDone chan struct{} // closed when the accept pump exits

	mu   sync.Mutex
	down bool
}

// shard is one runtime plus its serving engine.
type shard struct {
	idx     int
	rt      *core.Runtime
	srv     *Server
	ws      *web.Server
	stop    *core.External // completed with the grace time.Duration to begin drain
	runDone chan error     // the shard main thread's rt.Run result
	sdErr   error          // the shard's Shutdown error; read only after runDone
}

// ServeSharded opens one TCP listener and serves it with cfg.Shards
// independent runtimes. setup runs once per shard, on that shard's main
// runtime thread, and must build and return the shard's own *web.Server —
// servlet instances are per-shard (see the package's servlet state
// contract); cross-shard state goes through an external Go-side store.
//
// MaxConns and MaxPending are per-shard limits. The accept pump assigns
// each connection round-robin, stepping aside to a strictly less loaded
// shard when the fleet is unbalanced (load = conns being served plus
// conns accepted-but-unclaimed on that shard).
func ServeSharded(cfg Config, setup func(th *core.Thread, shard int) *web.Server) (*ShardedServer, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	m := &ShardedServer{cfg: cfg, ln: ln, pumpDone: make(chan struct{})}

	ready := make(chan error) // one send per shard, nil on success
	for i := 0; i < cfg.Shards; i++ {
		rt := core.NewRuntime()
		sh := &shard{idx: i, rt: rt, runDone: make(chan error, 1)}
		sh.stop = core.NewExternal(rt)
		m.shards = append(m.shards, sh)
		go func() {
			sh.runDone <- rt.Run(func(th *core.Thread) {
				ws := setup(th, sh.idx)
				srv, err := serveOn(th, ws, cfg, nil)
				if err != nil {
					ready <- fmt.Errorf("shard %d: %w", sh.idx, err)
					return
				}
				srv.shard = sh.idx
				srv.aggStats = m.Stats
				srv.sharded = m
				sh.srv, sh.ws = srv, ws
				ready <- nil
				// The shard main thread now just waits for the drain
				// order; the serving engine runs in its own threads.
				for {
					v, err := core.Sync(th, sh.stop.Evt())
					if err != nil {
						continue // stray break
					}
					sh.sdErr = srv.Shutdown(th, v.(time.Duration))
					return
				}
			})
		}()
	}
	var setupErrs []error
	for range m.shards {
		if err := <-ready; err != nil {
			setupErrs = append(setupErrs, err)
		}
	}
	if len(setupErrs) > 0 {
		_ = ln.Close()
		close(m.pumpDone) // never started
		m.mu.Lock()
		m.down = true
		m.mu.Unlock()
		for _, sh := range m.shards {
			sh.stop.Complete(time.Duration(0))
			<-sh.runDone
			sh.rt.Shutdown()
		}
		return nil, errors.Join(setupErrs...)
	}
	go m.acceptPump()
	return m, nil
}

// acceptPump is the fleet's single accept(2) loop: it owns the listener
// and hands each connection to a shard. Registration with the shard's
// custodian, shedding, and backpressure all happen inside submit, on the
// chosen shard's own terms.
func (m *ShardedServer) acceptPump() {
	defer close(m.pumpDone)
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		sh := m.pick()
		sh.srv.stats.accepted.Add(1)
		sh.srv.submit(c)
	}
}

// pick chooses the shard for the next connection: round-robin, with a
// least-loaded override — the cursor's shard is kept unless some shard is
// strictly less loaded, so a balanced fleet rotates evenly and a stalled
// shard (slow servlet, drained slots) stops receiving new work.
func (m *ShardedServer) pick() *shard {
	n := uint64(len(m.shards))
	best := m.shards[m.next.Add(1)%n]
	bestLoad := best.srv.load()
	for _, sh := range m.shards {
		if l := sh.srv.load(); l < bestLoad {
			best, bestLoad = sh, l
		}
	}
	return best
}

// Addr returns the fleet listener's address.
func (m *ShardedServer) Addr() net.Addr { return m.ln.Addr() }

// NumShards reports the number of shards.
func (m *ShardedServer) NumShards() int { return len(m.shards) }

// Shard returns shard i's serving engine, for diagnostics and tests.
func (m *ShardedServer) Shard(i int) *Server { return m.shards[i].srv }

// Web returns shard i's servlet server (each shard has its own instance).
func (m *ShardedServer) Web(i int) *web.Server { return m.shards[i].ws }

// Runtime returns shard i's runtime.
func (m *ShardedServer) Runtime(i int) *core.Runtime { return m.shards[i].rt }

// Stats returns the fleet-wide aggregate of the per-shard counters.
func (m *ShardedServer) Stats() StatsSnapshot {
	var agg StatsSnapshot
	for _, sh := range m.shards {
		agg = addStats(agg, sh.srv.Stats())
	}
	return agg
}

// ShardStats returns each shard's own snapshot, indexed by shard.
func (m *ShardedServer) ShardStats() []StatsSnapshot {
	out := make([]StatsSnapshot, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.srv.Stats()
	}
	return out
}

// Shutdown gracefully drains the fleet: stop accepting, then order every
// shard to drain concurrently under the shared grace deadline, wait for
// all of them, and tear the runtimes down. Callable from plain Go code
// (it is not a runtime-thread operation — each shard's drain runs on
// that shard's own main thread).
func (m *ShardedServer) Shutdown(grace time.Duration) error {
	m.mu.Lock()
	if m.down {
		m.mu.Unlock()
		return ErrServerDown
	}
	m.down = true
	m.mu.Unlock()

	_ = m.ln.Close()
	<-m.pumpDone
	// Fan the drain order out first so every shard's grace window runs
	// concurrently — total shutdown time is one grace period, not Shards
	// of them.
	for _, sh := range m.shards {
		sh.stop.Complete(grace)
	}
	var errs []error
	for _, sh := range m.shards {
		if err := <-sh.runDone; err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.idx, err))
		} else if sh.sdErr != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", sh.idx, sh.sdErr))
		}
		sh.rt.Shutdown()
	}
	return errors.Join(errs...)
}
