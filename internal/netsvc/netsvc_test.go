package netsvc_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// get dials addr and performs one HTTP/1.0 request, returning status line
// and body.
func get(addr, target string) (status string, body string, err error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return "", "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(c, "GET %s HTTP/1.0\r\n\r\n", target); err != nil {
		return "", "", err
	}
	return readResponse(bufio.NewReader(c))
}

// readResponse parses one response off r: status line, headers
// (Content-Length honored), body.
func readResponse(r *bufio.Reader) (status, body string, err error) {
	status, err = r.ReadString('\n')
	if err != nil {
		return "", "", err
	}
	status = strings.TrimRight(status, "\r\n")
	n := -1
	for {
		ln, err := r.ReadString('\n')
		if err != nil {
			return status, "", err
		}
		ln = strings.TrimRight(ln, "\r\n")
		if ln == "" {
			break
		}
		if k, v, ok := strings.Cut(ln, ":"); ok && strings.EqualFold(k, "Content-Length") {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &n)
		}
	}
	if n < 0 {
		b, err := io.ReadAll(r)
		return status, string(b), err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return status, string(buf), err
	}
	return status, string(buf), nil
}

// waitGoroutines waits for the goroutine count to return to base.
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("%s: %d goroutines, baseline %d\n%s", what, n, base, buf[:runtime.Stack(buf, true)])
	}
}

func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1 // not Linux; skip fd accounting
	}
	return len(ents)
}

// TestEndToEndKillMidRequest is the acceptance scenario: real TCP,
// concurrent requests, one session's custodian killed mid-request. The
// killed client's conn closes, every other request completes correctly,
// and a graceful shutdown leaves zero leaked goroutines.
func TestEndToEndKillMidRequest(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		g0 := runtime.NumGoroutine()
		fd0 := openFDs(t)

		ws := web.NewServer(th)
		ws.Handle("/hello", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "hello " + req.Query["n"]}
		})
		blocked := core.NewExternal(rt)
		ws.Handle("/block", func(x *core.Thread, s *web.Session, _ *web.Request) web.Response {
			blocked.Complete(s.ID)
			_ = core.Sleep(x, time.Hour) // hold the request open until killed
			return web.Response{Status: 200, Body: "late"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{MaxConns: 16})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()

		// The victim: a request that blocks server-side.
		victim := make(chan error, 1)
		go func() {
			_, body, err := get(addr, "/block")
			if err == nil && body == "late" {
				victim <- fmt.Errorf("killed request completed normally")
				return
			}
			victim <- nil // closed early: expected
		}()

		// Concurrent survivors, issued while the victim is in flight.
		if _, err := core.Sync(th, blocked.Evt()); err != nil {
			t.Fatal(err)
		}
		const survivors = 8
		results := make(chan error, survivors)
		for i := 0; i < survivors; i++ {
			i := i
			go func() {
				status, body, err := get(addr, fmt.Sprintf("/hello?n=%d", i))
				if err != nil {
					results <- err
					return
				}
				if !strings.Contains(status, "200") || body != fmt.Sprintf("hello %d", i) {
					results <- fmt.Errorf("got (%q, %q)", status, body)
					return
				}
				results <- nil
			}()
		}

		// The administrator kills the blocked session mid-request.
		v, err := core.Sync(th, blocked.Evt())
		if err != nil {
			t.Fatal(err)
		}
		ws.Terminate(v.(int))

		select {
		case err := <-victim:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("killed client's connection did not close")
		}
		for i := 0; i < survivors; i++ {
			if err := <-results; err != nil {
				t.Fatalf("survivor: %v", err)
			}
		}

		// Killed and Drained tick at session teardown, which can lag the
		// client-observed response or close; poll rather than snapshot.
		deadline := time.Now().Add(5 * time.Second)
		st := s.Stats()
		for (st.Killed < 1 || st.Drained < survivors) && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
			st = s.Stats()
		}
		if st.Killed < 1 {
			t.Errorf("stats.Killed = %d, want >= 1", st.Killed)
		}
		if st.Drained < survivors {
			t.Errorf("stats.Drained = %d, want >= %d", st.Drained, survivors)
		}

		// Graceful shutdown drains with zero leaked goroutines or fds.
		if err := s.Shutdown(th, time.Second); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, g0, "after shutdown")
		if fd0 >= 0 {
			deadline := time.Now().Add(5 * time.Second)
			for openFDs(t) > fd0 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if n := openFDs(t); n > fd0 {
				t.Errorf("%d fds open after shutdown, baseline %d", n, fd0)
			}
		}
		if n := rt.PendingExternals(); n != 0 {
			t.Errorf("%d external helpers still pending", n)
		}
	})
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		s, err := netsvc.Serve(th, ws, netsvc.Config{IdleTimeout: 30 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)

		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))
		// Send nothing: the idle deadline must answer 408 and close.
		status, body, err := readResponse(bufio.NewReader(c))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !strings.Contains(status, "408") {
			t.Fatalf("status %q, want 408", status)
		}
		if !strings.Contains(body, "timeout") {
			t.Fatalf("body %q", body)
		}
		if st := s.Stats(); st.TimedOut < 1 {
			t.Fatalf("stats.TimedOut = %d", st.TimedOut)
		}
	})
}

func TestKeepAliveServesSequentialRequests(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		ws.Handle("/n", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "n=" + req.Query["v"]}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)

		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(c)
		for i := 0; i < 3; i++ {
			if _, err := fmt.Fprintf(c, "GET /n?v=%d HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", i); err != nil {
				t.Fatal(err)
			}
			status, body, err := readResponse(r)
			if err != nil || !strings.Contains(status, "200") || body != fmt.Sprintf("n=%d", i) {
				t.Fatalf("request %d: (%q, %q, %v)", i, status, body, err)
			}
		}
		// One connection, three requests.
		if st := s.Stats(); st.Accepted != 1 {
			t.Fatalf("stats.Accepted = %d, want 1", st.Accepted)
		}
	})
}

func TestDebugStatsRoute(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		s, err := netsvc.Serve(th, ws, netsvc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)
		status, body, err := get(s.Addr().String(), "/debug/stats")
		if err != nil || !strings.Contains(status, "200") {
			t.Fatalf("(%q, %v)", status, err)
		}
		for _, key := range []string{`"accepted"`, `"active"`, `"drained"`, `"killed"`, `"timed_out"`, `"rejected"`} {
			if !strings.Contains(body, key) {
				t.Fatalf("stats body %q missing %s", body, key)
			}
		}
	})
}

// TestMaxConnsBackpressure: with a cap of 2 and both slots held by
// blocked sessions, a third connection is accepted by the pump but not
// served until a slot frees.
func TestMaxConnsBackpressure(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		gate := core.NewChan(rt)
		ws.Handle("/gate", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			v, err := gate.Recv(x)
			if err != nil {
				return web.Response{Status: 500, Body: "gate error"}
			}
			return web.Response{Status: 200, Body: fmt.Sprintf("gated %v", v)}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{MaxConns: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)
		addr := s.Addr().String()

		results := make(chan error, 3)
		for i := 0; i < 3; i++ {
			go func() {
				status, _, err := get(addr, "/gate")
				if err == nil && !strings.Contains(status, "200") {
					err = fmt.Errorf("status %q", status)
				}
				results <- err
			}()
		}
		// Both slots fill; the third conn must stay unserved.
		deadline := time.Now().Add(5 * time.Second)
		for s.Stats().Active < 2 && time.Now().Before(deadline) {
			if err := core.Sleep(th, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := core.Sleep(th, 30*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if a := s.Stats().Active; a != 2 {
			t.Fatalf("active = %d, want 2 (cap)", a)
		}
		// Release everyone; all three must complete.
		for i := 0; i < 3; i++ {
			if err := gate.Send(th, i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if err := <-results; err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestServerCustodianShutdownAbrupt: killing the server's custodian (the
// administrator's whole-server hammer) closes the listener and every
// conn; TerminateCondemned then reaps the suspended serving threads and
// no goroutines leak.
func TestServerCustodianShutdownAbrupt(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		g0 := runtime.NumGoroutine()
		ws := web.NewServer(th)
		ws.Handle("/spin", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			_ = core.Sleep(x, time.Hour)
			return web.Response{Status: 200, Body: "never"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()
		clients := make(chan struct{}, 4)
		for i := 0; i < 4; i++ {
			go func() {
				_, _, _ = get(addr, "/spin") // will be cut off
				clients <- struct{}{}
			}()
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.Stats().Active < 4 && time.Now().Before(deadline) {
			if err := core.Sleep(th, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		s.Custodian().Shutdown()
		for i := 0; i < 4; i++ {
			select {
			case <-clients:
			case <-time.After(10 * time.Second):
				t.Fatal("client connection not closed by custodian shutdown")
			}
		}
		rt.TerminateCondemned()
		waitGoroutines(t, g0, "after custodian shutdown + reap")
	})
}
