package netsvc

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/web"
)

// TestHotShardShedsAssignment exercises the load-aware accept
// re-weighting: a shard whose pending accept queue is deep must stop
// receiving new-conn assignment even though it is neither draining nor
// at its connection limit — and the pending depth must be over-weighted
// against active sessions, so a shard with many (possibly idle)
// keep-alive conns still beats a shard whose acceptor has fallen behind.
func TestHotShardShedsAssignment(t *testing.T) {
	m, err := ServeSharded(Config{Shards: 2, MaxConns: 8, IdleTimeout: time.Second},
		func(th *core.Thread, shard int) *web.Server {
			ws := web.NewServer(th)
			ws.Handle("/ping", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
				return web.Response{Status: 200, Body: "pong"}
			})
			return ws
		})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(time.Second)

	s0, s1 := m.shards[0].server(), m.shards[1].server()

	// Balanced fleet: round-robin visits both shards.
	seen := map[*shard]int{}
	for i := 0; i < 10; i++ {
		seen[m.pick()]++
	}
	if len(seen) != 2 {
		t.Fatalf("balanced fleet did not rotate: %d shards visited", len(seen))
	}

	// Make shard 0 hot: a deep pending queue (acceptor not keeping up).
	// Every new assignment must go to shard 1 — the draining flag is
	// down, so this is purely the load-aware score.
	s0.pendingN.Add(6)
	for i := 0; i < 20; i++ {
		if got := m.pick(); got != m.shards[1] {
			t.Fatalf("pick %d: hot shard 0 (pending=6) still assigned", i)
		}
	}

	// Re-weighting, not tie-breaking: shard 1 carries more raw
	// connections (5 active vs 0), but shard 0's queue depth of 6 scores
	// 6*pendingLoadWeight = 24 against shard 1's 5 — the backed-up
	// acceptor loses even to the busier-looking sibling.
	s1.stats.active.Add(5)
	if s0.assignScore() <= s1.assignScore() {
		t.Fatalf("scores not re-weighted: s0=%d s1=%d", s0.assignScore(), s1.assignScore())
	}
	for i := 0; i < 20; i++ {
		if got := m.pick(); got != m.shards[1] {
			t.Fatalf("pick %d: deep-queue shard 0 preferred over active shard 1", i)
		}
	}

	// Queue drained: assignment balances again.
	s0.pendingN.Add(-6)
	s1.stats.active.Add(-5)
	seen = map[*shard]int{}
	for i := 0; i < 10; i++ {
		seen[m.pick()]++
	}
	if len(seen) != 2 {
		t.Fatalf("recovered fleet did not rotate: %d shards visited", len(seen))
	}
}
