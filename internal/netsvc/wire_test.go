package netsvc_test

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// readRESP reads one RESP reply off r: simple lines verbatim, bulk
// strings as their contents ("(nil)" for null bulk), arrays bracketed.
func readRESP(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", fmt.Errorf("empty reply line")
	}
	switch line[0] {
	case '+', '-', ':':
		return line, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return "", err
		}
		if n < 0 {
			return "(nil)", nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return "", err
		}
		parts := make([]string, n)
		for i := range parts {
			if parts[i], err = readRESP(r); err != nil {
				return "", err
			}
		}
		return "[" + strings.Join(parts, " ") + "]", nil
	}
	return "", fmt.Errorf("bad reply line %q", line)
}

// TestHTTP11PipelinedKeepAlive: an HTTP/1.1 client pipelines a burst of
// requests down one persistent connection; every response comes back in
// order, on the same connection, with the request's version echoed.
func TestHTTP11PipelinedKeepAlive(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		ws.Handle("/n", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "n=" + req.Query["v"]}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)

		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))

		const burst = 16
		var pipeline strings.Builder
		for i := 0; i < burst; i++ {
			fmt.Fprintf(&pipeline, "GET /n?v=%d HTTP/1.1\r\n\r\n", i)
		}
		if _, err := c.Write([]byte(pipeline.String())); err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(c)
		for i := 0; i < burst; i++ {
			status, body, err := readResponse(r)
			if err != nil {
				t.Fatalf("response %d: %v", i, err)
			}
			if !strings.HasPrefix(status, "HTTP/1.1 200") || body != fmt.Sprintf("n=%d", i) {
				t.Fatalf("response %d: (%q, %q)", i, status, body)
			}
		}
		st := s.Stats()
		if st.Accepted != 1 {
			t.Errorf("Accepted = %d, want 1 (one pipelined conn)", st.Accepted)
		}
		if st.Protocol != "http/1.1" {
			t.Errorf("Protocol = %q", st.Protocol)
		}
		if st.Requests < burst || st.Responses < burst {
			t.Errorf("Requests/Responses = %d/%d, want >= %d", st.Requests, st.Responses, burst)
		}
		// The burst outruns a socket round-trip per response, so at least
		// one batch must have coalesced more than one response.
		if st.PipelineHWM < 1 {
			t.Errorf("PipelineHWM = %d, want >= 1", st.PipelineHWM)
		}
	})
}

// TestRESPEndToEnd drives the transactional KV store through the RESP
// front end on a standalone server: plain commands, a MULTI/EXEC
// transaction, STATS, and the serving layer's own routes via CALL.
func TestRESPEndToEnd(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		kvtxn.Mount(ws, kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, Shards: 4}), "/kv")
		s, err := netsvc.Serve(th, ws, netsvc.Config{Protocol: "resp"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)

		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(c)
		send := func(cmd string) string {
			t.Helper()
			if _, err := fmt.Fprintf(c, "%s\r\n", cmd); err != nil {
				t.Fatalf("%s: %v", cmd, err)
			}
			reply, err := readRESP(r)
			if err != nil {
				t.Fatalf("%s: %v", cmd, err)
			}
			return reply
		}

		steps := []struct{ cmd, want string }{
			{"PING", "+PONG"},
			{"SET a 1", "+OK"},
			{"GET a", "1"},
			{"GET missing", "(nil)"},
			{"MULTI", "+OK"},
			{"SET b 2", "+QUEUED"},
			{"GET a", "+QUEUED"},
			{"EXEC", "[+COMMITTED 1]"},
			{"GET b", "2"},
			{"DEL a", ":1"},
			{"GET a", "(nil)"},
		}
		for _, tc := range steps {
			if got := send(tc.cmd); got != tc.want {
				t.Fatalf("%s: got %q, want %q", tc.cmd, got, tc.want)
			}
		}
		// Multi-bulk framing of the same commands.
		if _, err := c.Write([]byte("*3\r\n$3\r\nSET\r\n$1\r\nc\r\n$7\r\nwith sp\r\n")); err != nil {
			t.Fatal(err)
		}
		if reply, err := readRESP(r); err != nil || reply != "+OK" {
			t.Fatalf("multi-bulk SET: %q %v", reply, err)
		}
		if got := send("GET c"); got != "with sp" {
			t.Fatalf("GET c: %q", got)
		}
		// STATS reaches the store's counters; CALL reaches any route.
		if got := send("STATS"); !strings.Contains(got, `"commits"`) {
			t.Fatalf("STATS: %q", got)
		}
		if got := send("CALL /debug/stats"); !strings.Contains(got, `"protocol":"resp"`) {
			t.Fatalf("CALL /debug/stats: %q", got)
		}
		// QUIT answers +OK and closes.
		if got := send("QUIT"); got != "+OK" {
			t.Fatalf("QUIT: %q", got)
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Fatalf("after QUIT: %v, want EOF", err)
		}
	})
}

// TestRESPSharded runs the RESP front end over ServeSharded: every shard
// speaks RESP, the store lives on shard 0, and transactions from
// connections landing on any shard commit through the gateway.
func TestRESPSharded(t *testing.T) {
	gw := kvtxn.NewGateway()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2, Protocol: "resp"},
		func(th *core.Thread, shard int) *web.Server {
			ws := web.NewServer(th)
			if shard == 0 {
				gw.Bind(th, kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, Shards: 4}))
			}
			kvtxn.Mount(ws, gw, "/kv")
			return ws
		})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(time.Second)

	// Several connections, so both shards serve some.
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", m.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(c)
		fmt.Fprintf(c, "MULTI\r\nSET k%d v%d\r\nEXEC\r\nGET k%d\r\n", i, i, i)
		replies := make([]string, 4)
		for j := range replies {
			if replies[j], err = readRESP(r); err != nil {
				t.Fatalf("conn %d reply %d: %v", i, j, err)
			}
		}
		want := []string{"+OK", "+QUEUED", "[+COMMITTED]", fmt.Sprintf("v%d", i)}
		for j := range want {
			if replies[j] != want[j] {
				t.Fatalf("conn %d: replies %v, want %v", i, replies, want)
			}
		}
		_ = c.Close()
	}
	if st := m.Stats(); st.Protocol != "resp" || st.Requests < 16 {
		t.Errorf("fleet stats: %+v", st)
	}
}

// killMidPipeline is the strict no-torn-frame scenario for one protocol:
// a client pipelines requests with a blocker at position blockAt, waits
// until every response ahead of the blocker has arrived (the write pump
// is then idle), and the administrator kills the session. The wire must
// carry exactly the whole responses that were flushed and then EOF —
// not one byte of a torn frame.
func killMidPipeline(t *testing.T, protocol string) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var blockedSlot atomic.Pointer[core.External]
		ws := web.NewServer(th)
		ws.Handle("/hello", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "hello " + req.Query["i"]}
		})
		ws.Handle("/block", func(x *core.Thread, sess *web.Session, _ *web.Request) web.Response {
			blockedSlot.Load().Complete(sess.ID)
			_ = core.Sleep(x, time.Hour) // parked until killed
			return web.Response{Status: 200, Body: "late"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{Protocol: protocol})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(th, time.Second)
		addr := s.Addr().String()

		const depth = 6
		for blockAt := 0; blockAt < 4; blockAt++ {
			blocked := core.NewExternal(rt)
			blockedSlot.Store(blocked)

			var pipeline strings.Builder
			for i := 0; i < depth; i++ {
				target := fmt.Sprintf("/hello?i=%d", i)
				if i == blockAt {
					target = "/block"
				}
				if protocol == "resp" {
					fmt.Fprintf(&pipeline, "CALL %s\r\n", target)
				} else {
					fmt.Fprintf(&pipeline, "GET %s HTTP/1.1\r\n\r\n", target)
				}
			}

			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			_ = c.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := c.Write([]byte(pipeline.String())); err != nil {
				t.Fatal(err)
			}

			// The client drains the responses ahead of the blocker, then
			// reports how many extra bytes follow before EOF.
			type tail struct {
				extra int
				err   error
			}
			done := make(chan tail, 1)
			gotPrefix := make(chan struct{})
			go func() {
				r := bufio.NewReader(c)
				for i := 0; i < blockAt; i++ {
					if protocol == "resp" {
						body, err := readRESP(r)
						if err != nil || body != fmt.Sprintf("hello %d", i) {
							done <- tail{err: fmt.Errorf("reply %d: %q %v", i, body, err)}
							return
						}
					} else {
						status, body, err := readResponse(r)
						if err != nil || !strings.Contains(status, "200") || body != fmt.Sprintf("hello %d", i) {
							done <- tail{err: fmt.Errorf("response %d: (%q, %q, %v)", i, status, body, err)}
							return
						}
					}
				}
				close(gotPrefix)
				rest, err := io.ReadAll(r)
				if err != nil {
					done <- tail{err: err}
					return
				}
				done <- tail{extra: len(rest)}
			}()

			// Kill only once the blocker's handler is parked AND the client
			// has confirmed receipt of every response ahead of it: nothing
			// is then in flight, so the extra-byte count is exact.
			v, err := core.Sync(th, blocked.Evt())
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-gotPrefix:
			case res := <-done:
				t.Fatalf("%s blockAt=%d: prefix: %v", protocol, blockAt, res.err)
			}
			ws.Terminate(v.(int))
			rt.TerminateCondemned()

			res := <-done
			if res.err != nil {
				t.Fatalf("%s blockAt=%d: %v", protocol, blockAt, res.err)
			}
			if res.extra != 0 {
				t.Fatalf("%s blockAt=%d: %d torn bytes after %d whole responses",
					protocol, blockAt, res.extra, blockAt)
			}
			_ = c.Close()
		}
	})
}

func TestKillMidPipelineNoTornFrameHTTP(t *testing.T) { killMidPipeline(t, "http") }
func TestKillMidPipelineNoTornFrameRESP(t *testing.T) { killMidPipeline(t, "resp") }

// TestChaosKillMidPipeline randomizes the strict scenario: random
// pipeline depths, random blocker positions, kills issued without
// waiting for the client to drain. The received byte stream must always
// be a prefix of whole, in-order responses — a complete response for
// request i must say "hello i" — with any torn bytes confined to the
// very tail (the fd can close mid-write; nothing may follow).
func TestChaosKillMidPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	for _, protocol := range []string{"http", "resp"} {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			var blockedSlot atomic.Pointer[core.External]
			ws := web.NewServer(th)
			ws.Handle("/hello", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
				return web.Response{Status: 200, Body: "hello " + req.Query["i"]}
			})
			ws.Handle("/block", func(x *core.Thread, sess *web.Session, _ *web.Request) web.Response {
				blockedSlot.Load().Complete(sess.ID)
				_ = core.Sleep(x, time.Hour)
				return web.Response{Status: 200, Body: "late"}
			})
			s, err := netsvc.Serve(th, ws, netsvc.Config{Protocol: protocol})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Shutdown(th, time.Second)
			addr := s.Addr().String()

			for round := 0; round < 8; round++ {
				depth := 2 + rng.Intn(8)
				blockAt := rng.Intn(depth)
				blocked := core.NewExternal(rt)
				blockedSlot.Store(blocked)

				var pipeline strings.Builder
				for i := 0; i < depth; i++ {
					target := fmt.Sprintf("/hello?i=%d", i)
					if i == blockAt {
						target = "/block"
					}
					if protocol == "resp" {
						fmt.Fprintf(&pipeline, "CALL %s\r\n", target)
					} else {
						fmt.Fprintf(&pipeline, "GET %s HTTP/1.1\r\n\r\n", target)
					}
				}

				c, err := net.Dial("tcp", addr)
				if err != nil {
					t.Fatal(err)
				}
				_ = c.SetDeadline(time.Now().Add(10 * time.Second))
				if _, err := c.Write([]byte(pipeline.String())); err != nil {
					t.Fatal(err)
				}
				received := make(chan []byte, 1)
				go func() {
					all, _ := io.ReadAll(c)
					received <- all
				}()

				// Kill as soon as the blocker is parked — flushed bytes may
				// still be in flight, so the client may see any prefix.
				v, err := core.Sync(th, blocked.Evt())
				if err != nil {
					t.Fatal(err)
				}
				ws.Terminate(v.(int))
				rt.TerminateCondemned()

				all := <-received
				_ = c.Close()
				// Greedy-parse whole responses off the front; each must be
				// correct and in order. Whatever remains is tail truncation,
				// which is legal — but it must not hide a complete frame
				// (greedy parsing guarantees that by construction).
				r := bufio.NewReader(strings.NewReader(string(all)))
				for i := 0; ; i++ {
					if i > blockAt {
						t.Fatalf("%s round %d: response beyond the blocker (depth=%d blockAt=%d)",
							protocol, round, depth, blockAt)
					}
					var body string
					var err error
					if protocol == "resp" {
						body, err = readRESP(r)
					} else {
						_, body, err = readResponse(r)
					}
					if err != nil {
						break // incomplete tail (or clean EOF): stop parsing
					}
					if body != fmt.Sprintf("hello %d", i) {
						t.Fatalf("%s round %d: response %d reads %q (depth=%d blockAt=%d)",
							protocol, round, i, body, depth, blockAt)
					}
				}
			}
		})
	}
}
