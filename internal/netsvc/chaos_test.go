package netsvc_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// chaosSeed returns the seed for a randomized chaos run: the value of
// KILLSAFE_CHAOS_SEED if set, a fresh random seed otherwise. The seed is
// always logged so any failure can be reproduced by re-running with the
// env var set to the logged value.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("KILLSAFE_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("KILLSAFE_CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from KILLSAFE_CHAOS_SEED)", n)
		return n
	}
	n := time.Now().UnixNano()
	t.Logf("chaos seed %d (rerun with KILLSAFE_CHAOS_SEED=%d)", n, n)
	return n
}

// TestChaosRandomKillsUnderLoad hammers the server with concurrent
// clients while an adversarial administrator randomly terminates live
// sessions, then shuts the whole server custodian down. Invariants:
// every client unblocks (served or cut off — never wedged), killed work
// is accounted in stats, and after the dust settles neither goroutines
// nor fds have leaked.
func TestChaosRandomKillsUnderLoad(t *testing.T) {
	const (
		rounds      = 3
		clients     = 24
		killBudget  = 8
		slowEvery   = 3 // every Nth request hits the slow route
		slowRouteMs = 40
	)
	rng := rand.New(rand.NewSource(chaosSeed(t)))

	g0 := runtime.NumGoroutine()
	fd0 := openFDs(t)

	for round := 0; round < rounds; round++ {
		withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
			ws := web.NewServer(th)
			ws.Handle("/fast", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
				return web.Response{Status: 200, Body: "fast " + req.Query["n"]}
			})
			ws.Handle("/slow", func(x *core.Thread, _ *web.Session, req *web.Request) web.Response {
				if err := core.Sleep(x, slowRouteMs*time.Millisecond); err != nil {
					return web.Response{Status: 500, Body: "interrupted"}
				}
				return web.Response{Status: 200, Body: "slow " + req.Query["n"]}
			})
			s, err := netsvc.Serve(th, ws, netsvc.Config{
				MaxConns:    8,
				IdleTimeout: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr := s.Addr().String()

			var wg sync.WaitGroup
			var mu sync.Mutex
			served, cut := 0, 0
			for i := 0; i < clients; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					route := "/fast"
					if i%slowEvery == 0 {
						route = "/slow"
					}
					status, body, err := get(addr, fmt.Sprintf("%s?n=%d", route, i))
					mu.Lock()
					defer mu.Unlock()
					if err != nil || !strings.Contains(status, "200") {
						cut++ // killed, rejected, or drained mid-flight: fine
						return
					}
					want := strings.TrimPrefix(route, "/") + fmt.Sprintf(" %d", i)
					if body != want {
						t.Errorf("client %d: body %q, want %q", i, body, want)
					}
					served++
				}()
			}

			// The adversary: terminate random live sessions while the
			// clients are in flight.
			for k := 0; k < killBudget; k++ {
				if err := core.Sleep(th, time.Duration(rng.Intn(10)+1)*time.Millisecond); err != nil {
					t.Fatal(err)
				}
				ids := ws.Sessions()
				if len(ids) == 0 {
					continue
				}
				ws.Terminate(ids[rng.Intn(len(ids))])
			}

			// Every client must come back, one way or the other.
			allDone := make(chan struct{})
			go func() { wg.Wait(); close(allDone) }()
			select {
			case <-allDone:
			case <-time.After(30 * time.Second):
				t.Fatal("clients wedged under chaos")
			}

			// Alternate the ending: graceful drain vs. custodian hammer.
			if round%2 == 0 {
				if err := s.Shutdown(th, time.Second); err != nil {
					t.Fatal(err)
				}
			} else {
				s.Custodian().Shutdown()
				rt.TerminateCondemned()
			}

			st := s.Stats()
			mu.Lock()
			t.Logf("round %d: served=%d cut=%d stats=%+v", round, served, cut, st)
			if served == 0 {
				t.Error("chaos killed every request; expected survivors")
			}
			mu.Unlock()
			if st.Accepted < int64(clients)/2 {
				t.Errorf("accepted only %d of %d conns", st.Accepted, clients)
			}
		})
	}

	// Across all rounds: back to baseline.
	waitGoroutines(t, g0, "after chaos rounds")
	if fd0 >= 0 {
		deadline := time.Now().Add(5 * time.Second)
		for openFDs(t) > fd0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if n := openFDs(t); n > fd0 {
			t.Errorf("%d fds open after chaos, baseline %d", n, fd0)
		}
	}
}
