package netsvc_test

import (
	"encoding/json"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/netsvc"
)

// statsDoc mirrors the /debug/killsafe/stats document shape (the fields
// the test asserts on).
type statsDoc struct {
	Shards  int          `json:"shards"`
	Runtime *runtimeDoc  `json:"runtime"`
	Shard   []shardEntry `json:"per_shard"`
}

type runtimeDoc struct {
	Spawns      int64 `json:"spawns"`
	Dones       int64 `json:"dones"`
	Kills       int64 `json:"kills"`
	Exits       int64 `json:"exits"`
	LiveThreads int64 `json:"live_threads"`
	Syncs       int64 `json:"syncs"`
	SyncFast    int64 `json:"sync_fast"`
	SyncMulti   int64 `json:"sync_multi"`
}

type shardEntry struct {
	Shard   int         `json:"shard"`
	Runtime *runtimeDoc `json:"runtime"`
	Live    int         `json:"live_threads"`
}

// TestShardedObsKillStorm is the end-to-end observability check: a
// 4-shard fleet with the flight recorder on, parked sessions on every
// shard, the admin documents served in-band, then a hard drain — and the
// per-shard counters must balance (spawns = exits + kills, nothing live).
func TestShardedObsKillStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 4, FlightRecorder: 512}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	addr := m.Addr().String()

	// Warm every shard with fast requests, then park two slow sessions
	// on each so the drain below has stragglers to kill.
	for i := 0; i < 8; i++ {
		if _, _, err := get(addr, "/ping"); err != nil {
			t.Fatalf("get /ping: %v", err)
		}
	}
	// Let the warm-up sessions drain first, and serialize the slow dials
	// so each conn's load is visible before the next one is assigned: a
	// /ping session still counted active (or a placement not yet
	// registered) skews the least-loaded pick away from the 2-per-shard
	// balance asserted below.
	waitTotalActive(t, m, 0)
	conns := make([]net.Conn, 0, 8)
	for i := 0; i < 8; i++ {
		conns = append(conns, dialSlow(t, addr))
		waitTotalActive(t, m, int64(i+1))
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	waitShardActive(t, m, 2)

	// The stats document, served in-band while the storm is parked:
	// totals must agree with the runtime's own custodian accounting.
	status, body, err := get(addr, "/debug/killsafe/stats")
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("get stats: %q %v", status, err)
	}
	var doc statsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("stats document is not JSON: %v\n%s", err, body)
	}
	if doc.Shards != 4 || len(doc.Shard) != 4 || doc.Runtime == nil {
		t.Fatalf("stats document shape: shards=%d per_shard=%d runtime=%v", doc.Shards, len(doc.Shard), doc.Runtime)
	}
	var sumSpawns, sumLive int64
	for _, sh := range doc.Shard {
		if sh.Runtime == nil {
			t.Fatalf("shard %d has no runtime metrics", sh.Shard)
		}
		// Counter-derived live threads vs the runtime's own accounting,
		// taken in the same renderer call over a quiescent shard.
		if sh.Runtime.LiveThreads != int64(sh.Live) {
			t.Errorf("shard %d: counters say %d live threads, custodian accounting says %d",
				sh.Shard, sh.Runtime.LiveThreads, sh.Live)
		}
		if sh.Runtime.Syncs != sh.Runtime.SyncFast+sh.Runtime.SyncMulti {
			t.Errorf("shard %d: sync split %d+%d != %d", sh.Shard, sh.Runtime.SyncFast, sh.Runtime.SyncMulti, sh.Runtime.Syncs)
		}
		sumSpawns += sh.Runtime.Spawns
		sumLive += sh.Runtime.LiveThreads
	}
	if doc.Runtime.Spawns != sumSpawns || doc.Runtime.LiveThreads != sumLive {
		t.Errorf("aggregate (spawns=%d live=%d) != shard sums (%d, %d)",
			doc.Runtime.Spawns, doc.Runtime.LiveThreads, sumSpawns, sumLive)
	}

	// The custodian document renders and names every shard.
	status, body, err = get(addr, "/debug/killsafe/custodians")
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("get custodians: %q %v", status, err)
	}
	if !strings.Contains(body, `"custodians"`) || !strings.Contains(body, `"shard": 3`) {
		t.Fatalf("custodians document incomplete:\n%s", body)
	}

	// The in-band flight-recorder dump must parse as an explore trace.
	status, body, err = get(addr, "/debug/killsafe/trace")
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("get trace: %q %v", status, err)
	}
	tr, err := explore.DecodeTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("recorded trace does not decode: %v\n%s", err, body)
	}
	if !strings.HasPrefix(tr.Scenario, "netsvc-shard-") {
		t.Fatalf("trace scenario = %q", tr.Scenario)
	}

	// Hard drain: the grace window is far shorter than /slow's hold, so
	// every parked session must be killed, and the books must balance.
	if err := m.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var kills int64
	for i := 0; i < m.NumShards(); i++ {
		s := m.Obs(i).Snapshot()
		if s.Spawns != s.Dones {
			t.Errorf("shard %d: spawns (%d) != dones (%d) after shutdown", i, s.Spawns, s.Dones)
		}
		if s.LiveThreads != 0 {
			t.Errorf("shard %d: %d live threads after shutdown", i, s.LiveThreads)
		}
		if s.Kills < 2 {
			t.Errorf("shard %d: kills = %d, want >= 2 (two parked /slow sessions)", i, s.Kills)
		}
		if s.Exits != s.Dones-s.Kills {
			t.Errorf("shard %d: exits = %d, want dones-kills = %d", i, s.Exits, s.Dones-s.Kills)
		}
		kills += s.Kills
	}
	agg := m.ObsSnapshot()
	if agg.Kills != kills || agg.Spawns != agg.Dones {
		t.Errorf("fleet aggregate inconsistent: %+v (summed kills %d)", agg, kills)
	}
	waitGoroutines(t, base, "after obs kill-storm shutdown")
}

// TestObsDisabled: DisableObs leaves the hot path uninstrumented — the
// stats document omits runtime metrics and the trace route 404s.
func TestObsDisabled(t *testing.T) {
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2, DisableObs: true}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	defer func() { _ = m.Shutdown(time.Second) }()
	addr := m.Addr().String()
	if m.Obs(0) != nil {
		t.Fatal("DisableObs still attached an Obs")
	}
	status, body, err := get(addr, "/debug/killsafe/stats")
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("get stats: %q %v", status, err)
	}
	if strings.Contains(body, `"runtime"`) {
		t.Fatalf("stats document carries runtime metrics under DisableObs:\n%s", body)
	}
	status, _, err = get(addr, "/debug/killsafe/trace")
	if err != nil || !strings.Contains(status, "404") {
		t.Fatalf("trace route with recorder off: %q %v, want 404", status, err)
	}
}

// TestTraceShardQuery: ?shard=N selects a specific shard's recorder and
// out-of-range indexes 404.
func TestTraceShardQuery(t *testing.T) {
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2, FlightRecorder: 64}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	defer func() { _ = m.Shutdown(time.Second) }()
	addr := m.Addr().String()
	for i := 0; i < 4; i++ {
		if _, _, err := get(addr, "/ping"); err != nil {
			t.Fatalf("get /ping: %v", err)
		}
	}
	_, body, err := get(addr, "/debug/killsafe/trace?shard=1")
	if err != nil {
		t.Fatalf("get trace shard=1: %v", err)
	}
	if !strings.Contains(body, "scenario netsvc-shard-1") {
		t.Fatalf("shard=1 trace came from the wrong recorder:\n%s", body)
	}
	status, _, err := get(addr, "/debug/killsafe/trace?shard=7")
	if err != nil || !strings.Contains(status, "404") {
		t.Fatalf("out-of-range shard: %q %v, want 404", status, err)
	}
}
