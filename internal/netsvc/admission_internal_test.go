package netsvc

import (
	"testing"
	"time"

	"repro/internal/web"
)

// The MaxPending zero-value contract: 0 means the default backstop (32),
// negative means unlimited (pure backpressure).
func TestWithDefaultsMaxPending(t *testing.T) {
	if got := (Config{}).withDefaults().MaxPending; got != 32 {
		t.Fatalf("MaxPending zero value = %d, want default 32", got)
	}
	if got := (Config{MaxPending: -1}).withDefaults().MaxPending; got != -1 {
		t.Fatalf("MaxPending -1 = %d, want preserved (unlimited)", got)
	}
	if got := (Config{MaxPending: 7}).withDefaults().MaxPending; got != 7 {
		t.Fatalf("MaxPending 7 = %d, want preserved", got)
	}
	if got := (Config{}).withDefaults().AdmitInterval; got != 100*time.Millisecond {
		t.Fatalf("AdmitInterval zero value = %v, want 100ms", got)
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		path  string
		query map[string]string
		want  Priority
	}{
		{"/debug/killsafe/stats", nil, ClassAdmin},
		{"/admin/drain", nil, ClassAdmin},
		{"/healthz", nil, ClassAdmin},
		{"/kv/a", nil, ClassNormal},
		{"/", nil, ClassNormal},
		{"/bulk/export", nil, ClassBulk},
		{"/kv/a", map[string]string{"class": "bulk"}, ClassBulk},
	}
	for _, c := range cases {
		req := &web.Request{Path: c.path, Query: c.query}
		if got := defaultClassify(req); got != c.want {
			t.Errorf("classify(%s %v) = %v, want %v", c.path, c.query, got, c.want)
		}
	}
}

// Drive the CoDel state machine with a synthetic clock: below-target
// sojourns admit and disarm; sustained above-target sojourns engage
// shedding after one interval; admin is never shed; bulk is fully shed
// while dropping; normal sheds are paced, not total.
func TestAdmissionStateMachine(t *testing.T) {
	target := 5 * time.Millisecond
	interval := 100 * time.Millisecond
	adm := newAdmission(target, interval)
	now := time.Unix(1000, 0)

	// Below target: always admitted, controller stays disarmed.
	for i := 0; i < 10; i++ {
		if !adm.admit(now, time.Millisecond, ClassNormal) {
			t.Fatal("below-target sojourn was shed")
		}
		now = now.Add(10 * time.Millisecond)
	}
	if adm.overloaded() {
		t.Fatal("overloaded with below-target sojourns")
	}

	// Above target for less than one interval: still admitted (arming).
	if !adm.admit(now, 50*time.Millisecond, ClassNormal) {
		t.Fatal("first above-target sojourn was shed before the interval elapsed")
	}

	// Sustained above target past the interval: dropping engages.
	now = now.Add(interval + time.Millisecond)
	first := adm.admit(now, 50*time.Millisecond, ClassNormal)
	if first {
		t.Fatal("sojourn above target for a full interval was admitted")
	}
	if !adm.overloaded() {
		t.Fatal("controller not overloaded after engaging")
	}

	// While dropping: admin always admitted, bulk always shed.
	if !adm.admit(now, 500*time.Millisecond, ClassAdmin) {
		t.Fatal("admin request shed while dropping")
	}
	if adm.admit(now, 500*time.Millisecond, ClassBulk) {
		t.Fatal("bulk request admitted while dropping")
	}

	// Normal sheds are paced: immediately after a drop, the next normal
	// request is admitted (dropNext is in the future).
	if !adm.admit(now.Add(time.Millisecond), 50*time.Millisecond, ClassNormal) {
		t.Fatal("normal request shed before dropNext elapsed (pacing broken)")
	}

	// Brownout guard: while dropping, a normal request whose sojourn
	// already exceeds the full interval sheds regardless of pacing.
	if adm.admit(now.Add(time.Millisecond), interval+time.Millisecond, ClassNormal) {
		t.Fatal("normal request with sojourn past a full interval was admitted while dropping")
	}

	// Recovery: one below-target sojourn disarms the controller.
	if !adm.admit(now.Add(2*time.Millisecond), time.Millisecond, ClassNormal) {
		t.Fatal("below-target sojourn shed")
	}
	if adm.overloaded() {
		t.Fatal("controller still overloaded after below-target sojourn")
	}

	if adm.retryAfter() != interval {
		t.Fatalf("retryAfter = %v, want %v", adm.retryAfter(), interval)
	}
}
