package netsvc_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// reqMethod is get() for arbitrary HTTP methods.
func reqMethod(method, addr, target string) (status string, body string, err error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return "", "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(c, "%s %s HTTP/1.0\r\n\r\n", method, target); err != nil {
		return "", "", err
	}
	return readResponse(bufio.NewReader(c))
}

// TestKVTxnSharded runs the transactional store under the sharded server:
// the store lives on shard 0's runtime; every shard's servlet reaches it
// through the cross-runtime gateway, so writes accepted by one shard are
// visible to reads served by another.
func TestKVTxnSharded(t *testing.T) {
	gw := kvtxn.NewGateway()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 3}, func(th *core.Thread, shard int) *web.Server {
		ws := web.NewServer(th)
		if shard == 0 {
			// Ops submitted by other shards before this Bind queue up in
			// the gateway; no cross-setup synchronization is needed.
			gw.Bind(th, kvtxn.NewWith(th, kvtxn.Options{Strategy: kvtxn.Locking, Shards: 4}))
		}
		kvtxn.Mount(ws, gw, "/kv")
		return ws
	})
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	defer m.Shutdown(time.Second)
	addr := m.Addr().String()

	// Connections round-robin across shards; issue enough that every
	// shard serves at least one.
	for i := 0; i < 6; i++ {
		status, _, err := reqMethod("PUT", addr, fmt.Sprintf("/kv?key=k%d&val=v%d", i, i))
		if err != nil || !strings.Contains(status, "200") {
			t.Fatalf("PUT k%d: %s %v", i, status, err)
		}
	}
	for i := 0; i < 6; i++ {
		status, body, err := reqMethod("GET", addr, fmt.Sprintf("/kv?key=k%d", i))
		if err != nil || !strings.Contains(status, "200") || body != fmt.Sprintf("v%d", i) {
			t.Fatalf("GET k%d: %s %q %v", i, status, body, err)
		}
	}

	// A multi-key transaction through the wire, across whichever shard
	// picks up the connection.
	status, body, err := reqMethod("GET", addr, "/kv/multi?ops=r:k0,w:sum:done,d:k1")
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("multi: %s %v", status, err)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if lines[0] != "COMMITTED" || lines[1] != "k0=v0" {
		t.Fatalf("multi body: %q", body)
	}
	if status, _, _ := reqMethod("GET", addr, "/kv?key=k1"); !strings.Contains(status, "404") {
		t.Fatalf("k1 survived wire DELETE: %s", status)
	}
	if _, body, _ := reqMethod("GET", addr, "/kv?key=sum"); body != "done" {
		t.Fatalf("sum = %q", body)
	}
}
