package netsvc_test

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// shardSetup builds a per-shard servlet server with a fast route and a
// slow (long-held) route, as ServeSharded's setup callback.
func shardSetup(th *core.Thread, shard int) *web.Server {
	ws := web.NewServer(th)
	ws.Handle("/ping", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
		return web.Response{Status: 200, Body: fmt.Sprintf("pong from shard %d\n", shard)}
	})
	ws.Handle("/slow", func(x *core.Thread, s *web.Session, _ *web.Request) web.Response {
		if err := core.Sleep(x, 30*time.Second); err != nil {
			return web.Response{Status: 500, Body: "interrupted\n"}
		}
		return web.Response{Status: 200, Body: "done\n"}
	})
	return ws
}

// dialSlow opens a connection and fires a /slow request without waiting
// for the response, returning the conn.
func dialSlow(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_ = c.SetDeadline(time.Now().Add(60 * time.Second))
	if _, err := fmt.Fprintf(c, "GET /slow HTTP/1.0\r\n\r\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	return c
}

// waitShardActive polls until every shard serves at least want sessions.
func waitShardActive(t *testing.T, m *netsvc.ShardedServer, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, s := range m.ShardStats() {
			if s.Active < want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("shards never reached %d active sessions each: %+v", want, m.ShardStats())
}

// waitTotalActive polls until the fleet serves want sessions in total.
func waitTotalActive(t *testing.T, m *netsvc.ShardedServer, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var total int64
		for _, s := range m.ShardStats() {
			total += s.Active
		}
		if total == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d active sessions: %+v", want, m.ShardStats())
}

func TestServeShardedBasic(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	if m.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", m.NumShards())
	}
	addr := m.Addr().String()
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		status, body, err := get(addr, "/ping")
		if err != nil || !strings.Contains(status, "200") {
			t.Fatalf("get /ping: %q %v", status, err)
		}
		seen[strings.TrimSpace(body)] = true
	}
	// Round-robin assignment must have exercised both servlet instances.
	if len(seen) != 2 {
		t.Fatalf("8 requests reached %d distinct shards, want 2: %v", len(seen), seen)
	}
	// /debug/stats reports the fleet aggregate from any shard.
	_, body, err := get(addr, "/debug/stats")
	if err != nil {
		t.Fatalf("get /debug/stats: %v", err)
	}
	if !strings.Contains(body, `"accepted":9`) {
		t.Fatalf("aggregate stats should count all 9 conns across shards, got %s", body)
	}
	if err := m.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := m.Shutdown(time.Second); err != netsvc.ErrServerDown {
		t.Fatalf("second Shutdown = %v, want ErrServerDown", err)
	}
	waitGoroutines(t, base, "after sharded shutdown")
}

func TestServeRejectsShardsConfig(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		if _, err := netsvc.Serve(th, ws, netsvc.Config{Shards: 4}); err == nil {
			t.Fatal("Serve accepted Shards=4; want an error pointing at ServeSharded")
		} else if !strings.Contains(err.Error(), "ServeSharded") {
			t.Fatalf("Serve error %q should point at ServeSharded", err)
		}
	})
}

// TestShardChaosIsolation is the kill-storm independence test: with a
// 4-shard fleet under load, an administrator repeatedly terminating every
// session on shard 0 never perturbs shard 3 — its sessions stay live and
// its killed counter stays zero. Isolation is by construction (disjoint
// runtimes and custodian trees), and this pins it.
func TestShardChaosIsolation(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 4}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	addr := m.Addr().String()

	conns := make([]net.Conn, 0, 16)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < 16; i++ {
		conns = append(conns, dialSlow(t, addr))
	}
	waitShardActive(t, m, 1)
	// Every dialed conn must be assigned before the pre-storm snapshot: a
	// straggler landing on shard 3 mid-storm would read as cross-shard
	// perturbation when it is really just late accept-pump delivery.
	waitTotalActive(t, m, int64(len(conns)))
	before := m.ShardStats()

	// The storm: five rounds of "terminate every session on shard 0".
	// Each Terminate shuts the session's custodian down from plain Go —
	// the administrator thread of the paper's scenario — and
	// TerminateCondemned reaps the unwound threads.
	storms := 0
	for round := 0; round < 5; round++ {
		for _, id := range m.Web(0).Sessions() {
			m.Web(0).Terminate(id)
			storms++
		}
		m.Runtime(0).TerminateCondemned()
		time.Sleep(5 * time.Millisecond)
	}
	if storms == 0 {
		t.Fatal("kill storm found no sessions on shard 0; load was not spread")
	}

	// Shard 0 took the hits...
	deadline := time.Now().Add(10 * time.Second)
	for m.Shard(0).Stats().Killed < int64(before[0].Active) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	s0 := m.Shard(0).Stats()
	if s0.Killed == 0 {
		t.Fatalf("shard 0 killed = 0 after storm; stats %+v", s0)
	}
	// ...and shard 3 never noticed: same live sessions, nothing killed.
	s3 := m.Shard(3).Stats()
	if s3.Killed != 0 {
		t.Fatalf("shard 3 killed = %d, want 0 (cross-shard perturbation)", s3.Killed)
	}
	if s3.Active != before[3].Active {
		t.Fatalf("shard 3 active %d -> %d across shard-0 storm", before[3].Active, s3.Active)
	}
	// The fleet still serves.
	if status, _, err := get(addr, "/ping"); err != nil || !strings.Contains(status, "200") {
		t.Fatalf("fleet dead after shard-0 storm: %q %v", status, err)
	}

	if err := m.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, c := range conns {
		_ = c.Close()
	}
	conns = nil
	waitGoroutines(t, base, "after chaos shutdown")
}

// TestShardedShutdownUnderLoad pins the drain contract: with slow
// sessions live on every shard, Shutdown's grace window runs on all
// shards concurrently — the whole fleet is down in ~one grace period,
// stragglers killed, nothing leaked.
func TestShardedShutdownUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 4}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	addr := m.Addr().String()
	conns := make([]net.Conn, 0, 8)
	for i := 0; i < 8; i++ {
		conns = append(conns, dialSlow(t, addr))
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	waitShardActive(t, m, 1)

	const grace = 200 * time.Millisecond
	start := time.Now()
	if err := m.Shutdown(grace); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// /slow holds sessions for 30s; well-under-30s completion proves the
	// grace deadline cut them off, and a loose multiple of grace proves
	// the shards drained concurrently, not in sequence.
	if d := time.Since(start); d > 10*grace+2*time.Second {
		t.Fatalf("sharded drain took %v; shards did not drain concurrently under grace %v", d, grace)
	}
	st := m.Stats()
	if st.Active != 0 {
		t.Fatalf("active = %d after shutdown, want 0 (stats %+v)", st.Active, st)
	}
	if st.Killed == 0 {
		t.Fatal("no sessions were killed; /slow sessions should have outlived the grace window")
	}
	waitGoroutines(t, base, "after shutdown under load")
}
