package netsvc

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/web"
)

// atomicInt64Gauge is an exponentially smoothed gauge (alpha 1/8),
// updated lock-free from session threads.
type atomicInt64Gauge struct{ v atomic.Int64 }

func (g *atomicInt64Gauge) observe(x int64) {
	for {
		old := g.v.Load()
		nw := old + (x-old)/8
		if old == 0 {
			nw = x
		}
		if g.v.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (g *atomicInt64Gauge) load() int64 { return g.v.Load() }

// Priority classes order requests for admission control. Admission never
// sheds admin traffic (health checks, /debug/killsafe/*, drain control
// must survive the very storm that makes them interesting), sheds normal
// traffic at CoDel's paced rate, and sheds all bulk traffic while the
// controller is in its dropping state.
type Priority int8

const (
	// ClassNormal is the default class: interactive traffic, shed at the
	// controller's paced rate under sustained overload.
	ClassNormal Priority = iota
	// ClassAdmin is operational traffic — health, stats, drain control —
	// that admission never sheds.
	ClassAdmin
	// ClassBulk is background traffic, the first to shed: while the
	// controller is dropping, every bulk request is refused.
	ClassBulk
)

// String names the class for stats and logs.
func (p Priority) String() string {
	switch p {
	case ClassAdmin:
		return "admin"
	case ClassBulk:
		return "bulk"
	}
	return "normal"
}

// defaultClassify is the Config.Classifier default: operational path
// prefixes are admin, an explicit class=bulk query or /bulk/ prefix is
// bulk, everything else is normal.
func defaultClassify(req *web.Request) Priority {
	p := req.Path
	if strings.HasPrefix(p, "/debug/") || strings.HasPrefix(p, "/admin/") ||
		strings.HasPrefix(p, "/chaos/") || p == "/healthz" {
		return ClassAdmin
	}
	if req.Query["class"] == "bulk" || strings.HasPrefix(p, "/bulk/") {
		return ClassBulk
	}
	return ClassNormal
}

// admission is a CoDel-style delay controller for one server engine. The
// signal is per-request sojourn: how long the work waited between
// arriving (accept for a connection's first request, last byte arrival
// for later ones) and being picked up by a session thread. Sojourn under
// target resets the controller. Sojourn above target for a full interval
// arms the dropping state, in which bulk requests shed outright and
// normal requests shed on CoDel's control law — the gap to the next shed
// shrinks with interval/sqrt(count) — until the queue delay falls back
// under target. Shedding the *request* rather than the connection is
// what makes the controller cheap enough to be its own relief valve: a
// shed costs one response frame, so a clogged queue drains at wire speed
// the moment the controller engages.
//
// Session threads from one runtime consult the controller between Syncs,
// so it guards its state with a plain mutex; the critical section is a
// handful of comparisons.
type admission struct {
	target   time.Duration // sojourn the controller defends
	interval time.Duration // how long above target before shedding starts

	mu         sync.Mutex
	firstAbove time.Time // when the current above-target excursion arms
	dropNext   time.Time // next paced shed for normal traffic
	dropping   bool
	count      int // sheds this dropping episode, paces dropNext

	ewmaUs atomicInt64Gauge // smoothed sojourn, exported as a stat
}

func newAdmission(target, interval time.Duration) *admission {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &admission{target: target, interval: interval}
}

// admit decides one request. now is the dispatch instant, sojourn how
// long the request waited for it, class its priority.
func (a *admission) admit(now time.Time, sojourn time.Duration, class Priority) bool {
	a.ewmaUs.observe(sojourn.Microseconds())
	a.mu.Lock()
	defer a.mu.Unlock()
	if sojourn < a.target {
		// Below target: stand down. count is kept so the next episode
		// does not restart its pacing from scratch (CoDel's memory).
		a.firstAbove = time.Time{}
		a.dropping = false
		return true
	}
	if a.firstAbove.IsZero() {
		a.firstAbove = now.Add(a.interval)
	}
	if !a.dropping && now.After(a.firstAbove) {
		a.dropping = true
		if a.count > 2 {
			a.count -= 2
		} else {
			a.count = 1
		}
		a.dropNext = now
	}
	if !a.dropping || class == ClassAdmin {
		return true
	}
	if class == ClassBulk {
		a.count++
		return false
	}
	if sojourn >= a.interval {
		// Brownout guard. CoDel's sqrt pacing assumes an elastic source
		// that slows down when signaled; an open-loop source does not,
		// and the paced ramp can lag a queue growing at wire speed. A
		// request that already waited a full control interval is past
		// any budget the target defends — shed it outright so the
		// backlog drains no slower than it arrives.
		a.count++
		return false
	}
	if !now.Before(a.dropNext) {
		a.count++
		a.dropNext = now.Add(time.Duration(float64(a.interval) / math.Sqrt(float64(a.count))))
		return false
	}
	return true
}

// retryAfter is the hint sent with a shed response: one control
// interval, the soonest the controller could have stood down.
func (a *admission) retryAfter() time.Duration { return a.interval }

// overloaded reports whether the controller is currently shedding.
func (a *admission) overloaded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropping
}

// sojournEWMA is the smoothed sojourn estimate.
func (a *admission) sojournEWMA() time.Duration {
	return time.Duration(a.ewmaUs.load()) * time.Microsecond
}
