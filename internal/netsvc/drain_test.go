package netsvc_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

// rawGet issues one HTTP/1.0 request on a fresh conn and returns the
// full raw response (the server closes the conn after answering).
func rawGet(addr, target string) (string, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := fmt.Fprintf(c, "GET %s HTTP/1.0\r\n\r\n", target); err != nil {
		return "", err
	}
	raw, err := io.ReadAll(c)
	return string(raw), err
}

// Adaptive admission end to end: a storm of slow requests on a one-slot
// server pushes queue sojourn past the target; normal traffic gets paced
// 503s with Retry-After, bulk is shed outright, and admin requests ride
// through the whole storm unshedded.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ws := web.NewServer(th)
		ws.Handle("/work", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			_ = core.Sleep(x, 10*time.Millisecond)
			return web.Response{Status: 200, Body: "done\n"}
		})
		s, err := netsvc.Serve(th, ws, netsvc.Config{
			MaxConns:      1,
			MaxPending:    -1, // unlimited queue: admission, not the cliff, must shed
			AdmitTarget:   time.Millisecond,
			AdmitInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr().String()

		var ok200, shed503, other atomic.Int64
		var sawRetryAfter atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 20; w++ {
			target := "/work"
			if w%2 == 1 {
				target = "/work?class=bulk"
			}
			wg.Add(1)
			go func(target string) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					raw, err := rawGet(addr, target)
					switch {
					case err != nil:
						other.Add(1)
					case strings.HasPrefix(raw, "HTTP/1.1 200") || strings.HasPrefix(raw, "HTTP/1.0 200"):
						ok200.Add(1)
					case strings.Contains(raw, " 503 "):
						shed503.Add(1)
						if strings.Contains(raw, "Retry-After:") {
							sawRetryAfter.Store(true)
						}
					default:
						other.Add(1)
					}
				}
			}(target)
		}

		// Admin requests issued mid-storm must never be shed: they queue
		// like everyone else but admission always admits the class.
		adminDone := make(chan error, 1)
		go func() {
			for i := 0; i < 5; i++ {
				raw, err := rawGet(addr, "/debug/killsafe/stats")
				if err != nil {
					adminDone <- fmt.Errorf("admin get %d: %v", i, err)
					return
				}
				if !strings.Contains(raw, " 200 ") && !strings.Contains(raw, " 200\r\n") {
					adminDone <- fmt.Errorf("admin get %d not 200: %.80q", i, raw)
					return
				}
			}
			adminDone <- nil
		}()

		wg.Wait()
		if err := <-adminDone; err != nil {
			t.Fatal(err)
		}

		stats := s.Stats()
		if stats.AdmShed == 0 {
			t.Fatalf("admission never shed under a 20-worker storm: %+v", stats)
		}
		if stats.AdmShedBulk == 0 {
			t.Fatalf("no bulk request was shed: %+v", stats)
		}
		if shed503.Load() == 0 || !sawRetryAfter.Load() {
			t.Fatalf("clients saw %d shed responses (retry-after seen: %v), want >0 with Retry-After",
				shed503.Load(), sawRetryAfter.Load())
		}
		if ok200.Load() == 0 {
			t.Fatal("no request succeeded: admission shed everything")
		}
		if stats.ReqAdmin < 5 {
			t.Fatalf("admin class count = %d, want >= 5", stats.ReqAdmin)
		}
		if err := s.Shutdown(th, time.Second); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	})
}

// DrainShard under live traffic: the shard's runtime is replaced, no
// request fails, nothing is killed, and the fleet keeps serving.
func TestDrainShardUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	addr := m.Addr().String()

	stop := make(chan struct{})
	var loadErrs atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, _, err := get(addr, "/ping")
				if err != nil || !strings.Contains(status, "200") {
					loadErrs.Add(1)
					continue
				}
				served.Add(1)
			}
		}()
	}
	// Let the load establish, then drain shard 0 under it.
	for served.Load() < 20 {
		time.Sleep(time.Millisecond)
	}
	rt0 := m.Runtime(0)
	if err := m.DrainShard(0, 2*time.Second); err != nil {
		t.Fatalf("DrainShard: %v", err)
	}
	if m.Runtime(0) == rt0 {
		t.Fatal("DrainShard did not replace the shard's runtime")
	}
	// The replacement engine serves.
	before := served.Load()
	for served.Load() < before+20 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	stats := m.Stats()
	if loadErrs.Load() != 0 {
		t.Fatalf("%d requests failed across the drain (stats %+v)", loadErrs.Load(), stats)
	}
	if stats.ShardsDrained != 1 {
		t.Fatalf("ShardsDrained = %d, want 1", stats.ShardsDrained)
	}
	if stats.Killed != 0 {
		t.Fatalf("drain killed %d sessions, want 0", stats.Killed)
	}
	// Served-work accounting survived the handoff: the folded totals
	// include everything the retired engine served.
	if stats.Responses < served.Load() {
		t.Fatalf("aggregate responses %d < client-observed %d: retired counters lost",
			stats.Responses, served.Load())
	}
	if err := m.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitGoroutines(t, base, "after drain + shutdown")
}

// Repeated drains of the same shard: each replaces the previous
// replacement and the fleet aggregate counts every cycle.
func TestDrainShardRepeated(t *testing.T) {
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	addr := m.Addr().String()
	for i := 0; i < 3; i++ {
		if _, _, err := get(addr, "/ping"); err != nil {
			t.Fatalf("get before drain %d: %v", i, err)
		}
		if err := m.DrainShard(0, time.Second); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if got := m.Stats().ShardsDrained; got != 3 {
		t.Fatalf("ShardsDrained = %d, want 3", got)
	}
	if status, _, err := get(addr, "/ping"); err != nil || !strings.Contains(status, "200") {
		t.Fatalf("fleet not serving after repeated drains: %q %v", status, err)
	}
	// The in-band admin document must carry the same fleet-level facts:
	// the drains counter and the retired engines' folded counters (a
	// handoff must not make served work disappear from /debug/killsafe).
	raw, err := rawGet(addr, "/debug/killsafe/stats")
	if err != nil {
		t.Fatalf("admin stats after drains: %v", err)
	}
	if !strings.Contains(raw, `"shards_drained": 3`) {
		t.Fatalf("admin stats document lost the fleet drain count:\n%s", raw)
	}
	fleet := m.Stats()
	var admin struct {
		Serving netsvc.StatsSnapshot `json:"serving"`
	}
	if i := strings.Index(raw, "{"); i < 0 {
		t.Fatalf("no JSON body in admin stats response:\n%s", raw)
	} else if err := json.Unmarshal([]byte(raw[i:]), &admin); err != nil {
		t.Fatalf("decode admin stats: %v", err)
	}
	if admin.Serving.Requests < fleet.Requests-2 {
		t.Fatalf("admin document requests %d < fleet aggregate %d: retired counters lost",
			admin.Serving.Requests, fleet.Requests)
	}
	if err := m.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// DrainShard validates its input and refuses after fleet shutdown.
func TestDrainShardErrors(t *testing.T) {
	m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, shardSetup)
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	if err := m.DrainShard(-1, time.Second); err != netsvc.ErrBadShard {
		t.Fatalf("DrainShard(-1) = %v, want ErrBadShard", err)
	}
	if err := m.DrainShard(2, time.Second); err != netsvc.ErrBadShard {
		t.Fatalf("DrainShard(2) = %v, want ErrBadShard", err)
	}
	if err := m.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := m.DrainShard(0, time.Second); err != netsvc.ErrServerDown {
		t.Fatalf("DrainShard after Shutdown = %v, want ErrServerDown", err)
	}
}

// A graceful Shutdown racing a DrainShard on the same fleet: whichever
// takes a shard first wins, the loser reports ErrServerDown (or the
// drain completes first and Shutdown tears down the replacement), no
// listener share is double-closed, and every goroutine is reclaimed.
func TestDrainShardShutdownRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		base := runtime.NumGoroutine()
		m, err := netsvc.ServeSharded(netsvc.Config{Shards: 2}, shardSetup)
		if err != nil {
			t.Fatalf("round %d: ServeSharded: %v", round, err)
		}
		addr := m.Addr().String()
		// A little in-flight work so the race has sessions to classify.
		for i := 0; i < 4; i++ {
			if _, _, err := get(addr, "/ping"); err != nil {
				t.Fatalf("round %d: get: %v", round, err)
			}
		}
		drainErr := make(chan error, 1)
		shutErr := make(chan error, 1)
		go func() { drainErr <- m.DrainShard(0, time.Second) }()
		go func() {
			// Vary the interleaving across rounds.
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			shutErr <- m.Shutdown(time.Second)
		}()
		de, se := <-drainErr, <-shutErr
		if de != nil && de != netsvc.ErrServerDown {
			t.Fatalf("round %d: DrainShard = %v, want nil or ErrServerDown", round, de)
		}
		if se != nil {
			t.Fatalf("round %d: Shutdown = %v, want nil", round, se)
		}
		// The race must not lose sessions to the kill path: every conn
		// above finished before the race began.
		if st := m.Stats(); st.Killed != 0 {
			t.Fatalf("round %d: race killed %d sessions: %+v", round, st.Killed, st)
		}
		if err := m.DrainShard(1, time.Second); err != netsvc.ErrServerDown {
			t.Fatalf("round %d: DrainShard after race = %v, want ErrServerDown", round, err)
		}
		waitGoroutines(t, base, "after drain/shutdown race")
	}
}
