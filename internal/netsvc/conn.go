package netsvc

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/web"
)

// readChunk is one result from a connection's read pump.
type readChunk struct {
	data []byte
	err  error
}

// Size-classed buffer pools shared by every connection's read chunks and
// write batches, so a busy server recycles its per-request buffers
// across connections instead of allocating a copy per read. Classes keep
// a 30-byte request line from pinning a 4KiB block.
var bufClasses = [...]int{128, 1024, 4096}
var bufPools [len(bufClasses)]sync.Pool

// getBuf returns a length-n buffer from the smallest fitting class.
func getBuf(n int) []byte {
	for i, sz := range bufClasses {
		if n <= sz {
			if b, _ := bufPools[i].Get().([]byte); b != nil {
				return b[:n]
			}
			return make([]byte, n, sz)
		}
	}
	return make([]byte, n)
}

// putBuf recycles a buffer into the largest class its capacity covers.
// Buffers that grew far past a class (a megabyte response batch, say)
// are dropped to the GC rather than pinned in a pool; losing a buffer —
// a session killed with chunks in flight — is always safe.
func putBuf(b []byte) {
	c := cap(b)
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if c >= bufClasses[i] && c < 4*bufClasses[i] {
			bufPools[i].Put(b[:0])
			return
		}
	}
}

// connReader bridges a connection's blocking read(2) loop into the event
// system. A plain pump goroutine reads chunks and hands them over through
// a one-slot channel paired with a semaphore post, so a runtime thread
// waits for socket data inside Sync — suspendable, killable, and
// multiplexable with deadlines. The one-slot channel is the flow control:
// the pump issues the next read only after the previous chunk is
// consumed. quit (closed by the connection custodian) unblocks a pump
// stuck on the handoff after its consumer was terminated.
type connReader struct {
	sem  *core.Semaphore
	ch   chan readChunk
	quit chan struct{}
}

func newConnReader(rt *core.Runtime, cust *core.Custodian, c net.Conn) (*connReader, error) {
	r := &connReader{
		sem:  core.NewSemaphore(rt, 0),
		ch:   make(chan readChunk, 1),
		quit: make(chan struct{}),
	}
	quit := r.quit
	if err := cust.Register(closerFunc(func() error { close(quit); return nil })); err != nil {
		return nil, err
	}
	go func() {
		// One reusable read buffer; each chunk is copied out at its exact
		// size (into a pooled, size-classed buffer the consumer returns)
		// so a request head does not retain a 4KiB block per read.
		big := make([]byte, 4096)
		for {
			n, err := c.Read(big)
			var data []byte
			if n > 0 {
				data = getBuf(n)
				copy(data, big[:n])
			}
			select {
			case r.ch <- readChunk{data: data, err: err}:
				r.sem.Post()
			case <-r.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return r, nil
}

// RecvEvt returns an event ready when the next chunk is available; its
// value is a readChunk. The channel receive inside the wrap cannot block:
// the pump posts the semaphore only after the chunk is in the channel.
func (r *connReader) RecvEvt() core.Event {
	return core.Wrap(r.sem.WaitEvt(), func(core.Value) core.Value { return <-r.ch })
}

// tryRecv polls for an already-delivered chunk without waiting.
func (r *connReader) tryRecv() (readChunk, bool) {
	if !r.sem.TryWait() {
		return readChunk{}, false
	}
	return <-r.ch, true
}

// connWriter bridges blocking write(2)s into the event system with one
// persistent pump goroutine per connection. The session thread hands a
// *batch* — one or more whole response frames appended back to back — over
// a one-slot channel; the pump writes it with a single write(2) and posts
// a semaphore. Batches are double-buffered: while the pump writes batch N
// the session thread parses, dispatches, and serializes pipelined
// requests into batch N+1, so queued pipeline responses coalesce into one
// vectored write instead of a syscall per response.
//
// The handoff is the torn-frame guarantee. Frames reach the pump only as
// complete batches via a plain channel send between safe points — a kill
// lands inside Sync, never between appending half a frame and sending it —
// so the wire carries a prefix of whole responses and nothing after it.
// A session killed mid-reap leaves at most one stray semaphore token; the
// pump itself exits when the connection custodian closes quit.
type connWriter struct {
	ch      chan []byte
	quit    chan struct{}
	sem     *core.Semaphore
	doneEvt core.Event // hoisted sem.WaitEvt(): no per-write event allocs
	// First write error, sticky. Atomic because with pumpSlots > 1 the
	// session thread can read the error after reaping write N while the
	// pump concurrently finishes write N+1 — the semaphore only orders
	// stores for writes that have been waited on. Allocates only on the
	// error path; nil-error writes never touch it.
	err atomic.Pointer[error]

	pumped [][]byte // batches with the pump, FIFO; len is the in-flight count
	free   [][]byte // reclaimed buffers for future batches
}

// pumpSlots bounds batches with the pump at once: one being written plus
// one queued in the channel, so submit below never blocks while a session
// with a ready batch is never more than one write completion away from
// flushing it (see flush).
const pumpSlots = 2

func newConnWriter(rt *core.Runtime, cust *core.Custodian, c net.Conn) (*connWriter, error) {
	w := &connWriter{
		ch:   make(chan []byte, pumpSlots),
		quit: make(chan struct{}),
		sem:  core.NewSemaphore(rt, 0),
	}
	w.doneEvt = w.sem.WaitEvt()
	quit := w.quit
	if err := cust.Register(closerFunc(func() error { close(quit); return nil })); err != nil {
		return nil, err
	}
	go func() {
		for {
			select {
			case buf := <-w.ch:
				if _, err := c.Write(buf); err != nil {
					w.err.CompareAndSwap(nil, &err)
				}
				w.sem.Post()
			case <-w.quit:
				return
			}
		}
	}()
	return w, nil
}

// submit hands a batch to the pump. Only legal when canSubmit reports a
// free slot — the channel send is then guaranteed not to block, keeping
// it an ordinary plain-Go step between safe points (the kill-atomicity of
// a whole batch rests on this). Returns a recycled buffer for the
// caller's next batch.
func (w *connWriter) submit(batch []byte) []byte {
	w.ch <- batch
	w.pumped = append(w.pumped, batch)
	var next []byte
	if n := len(w.free); n > 0 {
		next, w.free = w.free[n-1], w.free[:n-1]
	}
	return next[:0]
}

func (w *connWriter) canSubmit() bool { return len(w.pumped) < pumpSlots }

// reclaim recycles the oldest in-flight batch's buffer; its write has
// completed (one semaphore token per completed write, FIFO).
func (w *connWriter) reclaim() {
	w.free = append(w.free, w.pumped[0][:0])
	w.pumped = w.pumped[1:]
}

// tryReap reclaims every completed write without waiting.
func (w *connWriter) tryReap() {
	for len(w.pumped) > 0 && w.sem.TryWait() {
		w.reclaim()
	}
}

// writeErr reports the connection's first write error, if any.
func (w *connWriter) writeErr() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

// reapOne waits (at a safe point) for the oldest in-flight write.
func (w *connWriter) reapOne(th *core.Thread) error {
	for len(w.pumped) > 0 {
		if _, err := core.Sync(th, w.doneEvt); err != nil {
			continue // break mid-wait: the write is still in flight; re-wait
		}
		w.reclaim()
		break
	}
	return w.writeErr()
}

// reapAll waits for every in-flight write, so the wire holds everything
// submitted before the caller lets the custodian close the fd.
func (w *connWriter) reapAll(th *core.Thread) error {
	for len(w.pumped) > 0 {
		if _, err := core.Sync(th, w.doneEvt); err != nil {
			continue
		}
		w.reclaim()
	}
	return w.writeErr()
}

// flush guarantees batch is with the pump on return: when both slots are
// taken it waits for the oldest write — a bounded wait on an in-progress
// write(2), never on future work. A session must flush before entering a
// servlet dispatch, which may block indefinitely; an answered response is
// never held hostage to the next request's handler.
func (w *connWriter) flush(th *core.Thread, batch []byte) ([]byte, error) {
	w.tryReap()
	if !w.canSubmit() {
		if err := w.reapOne(th); err != nil {
			return batch, err
		}
	}
	return w.submit(batch), nil
}

// flushFinal forces batch onto the wire and waits for every write to
// complete, so the last frames of a closing connection are with the
// kernel before the caller returns and the custodian closes the fd.
func (w *connWriter) flushFinal(th *core.Thread, batch []byte) error {
	if len(batch) > 0 {
		if _, err := w.flush(th, batch); err != nil {
			return err
		}
	}
	return w.reapAll(th)
}

// releaseBufs returns the session's reclaimed batch buffers (plus the
// current unsubmitted batch) to the shared pool. Only buffers the
// session owns outright are returned — anything still with the pump is
// left alone, so a kill racing the release can at worst leak a buffer.
func (w *connWriter) releaseBufs(batch []byte) {
	putBuf(batch)
	for _, b := range w.free {
		putBuf(b)
	}
	w.free = nil
}

// serveConn is the session thread body: parse protocol frames off the
// socket through the connection's wire codec, dispatch them to the
// mounted web.Server, and batch responses through the write pump — every
// wait a Sync, so an administrator's kill lands at a safe point and the
// shared abstractions the servlets use stay coherent.
func (s *Server) serveConn(th *core.Thread, cs *connState) {
	reader, err := newConnReader(s.rt, cs.cust, cs.c)
	if err != nil {
		return // custodian already dead; conn is closed
	}
	writer, err := newConnWriter(s.rt, cs.cust, cs.c)
	if err != nil {
		return
	}
	codec := s.newCodec()
	// Hoist the per-request events out of the loops: events are immutable
	// descriptions (guards and wraps re-evaluate at each sync), so building
	// them once removes every per-request event/choice allocation from the
	// serving hot path.
	recvEvt := reader.RecvEvt()
	timeoutEvt := core.Wrap(core.After(s.rt, s.cfg.IdleTimeout), func(core.Value) core.Value { return "timeout" })
	drainEvt := core.Wrap(s.drain.Evt(), func(core.Value) core.Value { return "drain" })
	waitChoice := core.Choice(recvEvt, timeoutEvt, drainEvt)

	var buf, batch []byte
	// Return session-owned buffers to the shared pool on the way out.
	// batch is nil'd after every flushFinal so a submitted-and-reclaimed
	// buffer (already back in the writer's free list) is never pooled
	// twice.
	defer func() { writer.releaseBufs(batch) }()
	batched := 0 // responses in the current batch: the pipelined depth
	sawEOF := false
	// arrivedAt is the admission controller's sojourn baseline: the
	// accept time for the connection's first request, the last chunk's
	// arrival for later ones (a fresh conn's bytes can only be read after
	// the conn is claimed, so the first request must be charged for its
	// accept-queue wait instead).
	arrivedAt := cs.queuedAt
	served := false
	for {
		// Serve every complete frame already buffered. Responses append to
		// the batch; whenever the write pump is idle the batch is handed
		// over, so a lone request flushes immediately while pipelined
		// requests behind a busy pump coalesce into one write.
		for {
			f, rest, perr := codec.Parse(buf)
			if perr != nil {
				batch = codec.AppendFault(batch, 400, "bad request: "+perr.Error())
				_ = writer.flushFinal(th, batch)
				batch = nil
				s.markCompleted(cs)
				return
			}
			buf = rest
			if f == nil {
				break
			}
			s.stats.requests.Add(1)
			closing := f.Close || s.drain.Completed()
			shed := false
			switch {
			case f.Immediate != nil:
				batch = append(batch, f.Immediate...)
			case s.shedRequest(f.Req, arrivedAt):
				// Adaptive admission refused the request: answer with a
				// whole overload frame (Retry-After / -OVERLOADED) and, on
				// a keep-alive conn, keep the conversation going — a shed
				// costs the client a round trip, not its connection.
				shed = true
				batch = codec.AppendOverload(batch, s.adm.retryAfter(), closing)
			default:
				// A dispatch may block indefinitely in a servlet; answered
				// responses must reach the wire first.
				if len(batch) > 0 {
					var ferr error
					if batch, ferr = writer.flush(th, batch); ferr != nil {
						return // client gone mid-write
					}
					batched = 0
				}
				resp, timedOut := s.dispatch(th, cs, f.Req)
				if timedOut {
					s.stats.deadlined.Add(1)
					batch = codec.AppendFault(batch, 503, "request deadline exceeded\n")
					_ = writer.flushFinal(th, batch)
					batch = nil
					s.markCompleted(cs)
					return
				}
				batch = codec.AppendResponse(batch, f, resp, closing)
			}
			served = true
			if !shed {
				s.stats.responses.Add(1)
			}
			batched++
			s.stats.notePipelineDepth(int64(batched))
			if closing {
				_ = writer.flushFinal(th, batch)
				batch = nil
				s.markCompleted(cs)
				return
			}
			// Opportunistic flush: hand the batch over whenever a pump slot
			// is free; with both slots busy keep accumulating — that is the
			// pipelined coalescing.
			writer.tryReap()
			if writer.canSubmit() {
				batch = writer.submit(batch)
				batched = 0
			}
		}

		// Input exhausted: force what is batched onto the wire before
		// parking (both pump slots may be busy with previous batches).
		if len(batch) > 0 {
			var ferr error
			if batch, ferr = writer.flush(th, batch); ferr != nil {
				return // client gone mid-write
			}
			batched = 0
		}
		if sawEOF {
			_ = writer.reapAll(th) // the last batch reaches the kernel before the fd closes
			if len(buf) == 0 {
				s.markCompleted(cs) // clean close between frames
			}
			return
		}

		// Park for more input (or idle timeout, or drain).
		v, serr := core.Sync(th, waitChoice)
		if serr != nil {
			continue // stray break
		}
		switch x := v.(type) {
		case string:
			if x == "timeout" {
				s.stats.timedOut.Add(1)
				batch = codec.AppendFault(batch, 408, "request timeout\n")
			} else { // drain
				// A request that raced the drain signal may already be
				// sitting in the reader's handoff slot; serve it before
				// refusing further traffic, so a live drain turns away as
				// few in-flight requests as possible.
				if ch, ready := reader.tryRecv(); ready {
					buf = append(buf, ch.data...)
					putBuf(ch.data)
					if ch.err != nil {
						sawEOF = true
					}
					continue
				}
				batch = codec.AppendFault(batch, 503, "server shutting down\n")
			}
			_ = writer.flushFinal(th, batch)
			batch = nil
			s.markCompleted(cs)
			return
		case readChunk:
			buf = append(buf, x.data...)
			putBuf(x.data)
			if x.err != nil {
				sawEOF = true
			}
			if served {
				arrivedAt = time.Now()
			}
		}
	}
}

// shedRequest classifies one request for the stats surface and, with
// adaptive admission enabled, consults the controller. arrivedAt is when
// the request's bytes (or, for a connection's first request, the
// connection itself) arrived; the gap to now is the queue sojourn the
// controller defends.
func (s *Server) shedRequest(req *web.Request, arrivedAt time.Time) bool {
	class := s.classify(req)
	s.stats.noteClass(class)
	if s.adm == nil {
		return false
	}
	now := time.Now()
	if s.adm.admit(now, now.Sub(arrivedAt), class) {
		return false
	}
	s.stats.admShed.Add(1)
	if class == ClassBulk {
		s.stats.admShedBulk.Add(1)
	}
	return true
}

// dispatch answers one servlet request: the admin surface and /debug/stats
// are the serving layer's own routes (in sharded operation they report
// fleet-wide aggregates, so any shard answers the same numbers);
// everything else goes to the mounted web.Server, bounded by
// cfg.RequestTimeout when set.
func (s *Server) dispatch(th *core.Thread, cs *connState, req *web.Request) (web.Response, bool) {
	if status, body, ok := s.adminDispatch(req.Path, req.Query); ok {
		return web.Response{Status: status, Body: body}, false
	}
	if req.Path == "/debug/stats" {
		snap := s.Stats()
		if s.aggStats != nil {
			snap = s.aggStats()
		}
		return web.Response{Status: 200, Body: snap.json() + "\n"}, false
	}
	if s.cfg.RequestTimeout > 0 {
		return s.dispatchBounded(th, cs, req)
	}
	return s.web.Dispatch(th, cs.sess, req), false
}

// dispatchBounded runs one servlet dispatch in a worker thread under the
// connection's custodian, bounded by cfg.RequestTimeout. The deadline is
// a core.After event, so the session thread waits at a safe point and in
// deterministic mode the timeout is driven by the virtual clock. On
// timeout the worker is killed — its next safe point unwinds it, and the
// per-connection custodian guarantees whatever it held is reclaimed.
func (s *Server) dispatchBounded(th *core.Thread, cs *connState, req *web.Request) (web.Response, bool) {
	var resp web.Response
	var finished bool // written by the worker before it returns
	var worker *core.Thread
	th.WithCustodian(cs.cust, func() {
		worker = th.Spawn(fmt.Sprintf("netsvc-req-%d", cs.id), func(x *core.Thread) {
			r := s.web.Dispatch(x, cs.sess, req)
			resp, finished = r, true
		})
	})
	s.mu.Lock()
	s.threads[worker] = struct{}{}
	s.mu.Unlock()
	var v core.Value
	for {
		var err error
		v, err = core.Sync(th, core.Choice(
			core.Wrap(worker.DoneEvt(), func(core.Value) core.Value { return "done" }),
			core.Wrap(core.After(s.rt, s.cfg.RequestTimeout), func(core.Value) core.Value { return "deadline" }),
		))
		if err == nil {
			break
		}
	}
	// finished is only read on the "done" path, after the worker's DoneEvt
	// committed — the write happens-before the read.
	timedOut := v != "done" || !finished
	if timedOut {
		worker.Kill()
	}
	s.mu.Lock()
	delete(s.threads, worker)
	s.mu.Unlock()
	if timedOut {
		// Do not touch resp: a worker killed mid-dispatch may still be
		// unwinding toward its safe point.
		return web.Response{}, true
	}
	return resp, false
}

// markCompleted classifies the session as cleanly ended for the monitor.
func (s *Server) markCompleted(cs *connState) {
	s.mu.Lock()
	cs.completed = true
	s.mu.Unlock()
}
