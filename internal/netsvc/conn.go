package netsvc

import (
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/web"
)

// readChunk is one result from a connection's read pump.
type readChunk struct {
	data []byte
	err  error
}

// connReader bridges a connection's blocking read(2) loop into the event
// system. A plain pump goroutine reads chunks and hands them over through
// a one-slot channel paired with a semaphore post, so a runtime thread
// waits for socket data inside Sync — suspendable, killable, and
// multiplexable with deadlines. The one-slot channel is the flow control:
// the pump issues the next read only after the previous chunk is
// consumed. quit (closed by the connection custodian) unblocks a pump
// stuck on the handoff after its consumer was terminated.
type connReader struct {
	sem  *core.Semaphore
	ch   chan readChunk
	quit chan struct{}
}

func newConnReader(rt *core.Runtime, cust *core.Custodian, c net.Conn) (*connReader, error) {
	r := &connReader{
		sem:  core.NewSemaphore(rt, 0),
		ch:   make(chan readChunk, 1),
		quit: make(chan struct{}),
	}
	quit := r.quit
	if err := cust.Register(closerFunc(func() error { close(quit); return nil })); err != nil {
		return nil, err
	}
	go func() {
		// One reusable read buffer; each chunk is copied out at its exact
		// size so a request head does not retain a 4KiB block per read.
		big := make([]byte, 4096)
		for {
			n, err := c.Read(big)
			data := append([]byte(nil), big[:n]...)
			select {
			case r.ch <- readChunk{data: data, err: err}:
				r.sem.Post()
			case <-r.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return r, nil
}

// RecvEvt returns an event ready when the next chunk is available; its
// value is a readChunk. The channel receive inside the wrap cannot block:
// the pump posts the semaphore only after the chunk is in the channel.
func (r *connReader) RecvEvt() core.Event {
	return core.Wrap(r.sem.WaitEvt(), func(core.Value) core.Value { return <-r.ch })
}

// connWriter bridges blocking write(2)s into the event system with one
// persistent pump goroutine per connection, replacing the old
// per-response External.StartEvt shape (which spawned a helper
// goroutine and allocated a completion cell for every write). The session thread hands
// the serialized response over a one-slot channel and waits on a
// semaphore the pump posts after the write completes; the session thread
// is sequential, so at most one write is ever in flight and the handoff
// never blocks. A session killed mid-wait leaves at most one stray
// semaphore token behind; the pump itself exits when the connection
// custodian closes quit.
type connWriter struct {
	ch      chan []byte
	quit    chan struct{}
	sem     *core.Semaphore
	doneEvt core.Event // hoisted sem.WaitEvt(): no per-write event allocs
	err     error      // write error; stored by the pump before Post, read after Wait
	buf     []byte     // reusable serialization buffer, owned by the session thread
}

func newConnWriter(rt *core.Runtime, cust *core.Custodian, c net.Conn) (*connWriter, error) {
	w := &connWriter{
		ch:   make(chan []byte, 1),
		quit: make(chan struct{}),
		sem:  core.NewSemaphore(rt, 0),
	}
	w.doneEvt = w.sem.WaitEvt()
	quit := w.quit
	if err := cust.Register(closerFunc(func() error { close(quit); return nil })); err != nil {
		return nil, err
	}
	go func() {
		for {
			select {
			case buf := <-w.ch:
				_, err := c.Write(buf)
				// The store is ordered before the read on the session
				// thread by the semaphore: Post releases rt.mu after the
				// store, the waiter's commit acquires it before the read.
				w.err = err
				w.sem.Post()
			case <-w.quit:
				return
			}
		}
	}()
	return w, nil
}

// writeResponse serializes an HTTP/1.0 response into the reusable buffer
// and writes it via the pump. The session thread waits at a safe point,
// so a kill mid-write unwinds cleanly (the pump exits when the custodian
// closes the fd and the quit closer).
func (w *connWriter) writeResponse(th *core.Thread, status int, keepAlive bool, body string) error {
	connHdr := "close"
	if keepAlive {
		connHdr = "keep-alive"
	}
	w.buf = fmt.Appendf(w.buf[:0],
		"HTTP/1.0 %d %s\r\nContent-Length: %d\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: %s\r\n\r\n%s",
		status, statusText(status), len(body), connHdr, body)
	w.ch <- w.buf
	for {
		if _, err := core.Sync(th, w.doneEvt); err != nil {
			continue // break mid-write: the write is still in flight; re-wait
		}
		return w.err
	}
}

// request is a parsed HTTP/1.0 request head.
type request struct {
	method    string
	target    string
	proto     string
	keepAlive bool
	contentLn int
}

// serveConn is the session thread body: parse HTTP/1.0 requests off the
// socket, dispatch them to the mounted web.Server, and write responses —
// every wait a Sync, so an administrator's kill lands at a safe point and
// the shared abstractions the servlets use stay coherent.
func (s *Server) serveConn(th *core.Thread, cs *connState) {
	reader, err := newConnReader(s.rt, cs.cust, cs.c)
	if err != nil {
		return // custodian already dead; conn is closed
	}
	writer, err := newConnWriter(s.rt, cs.cust, cs.c)
	if err != nil {
		return
	}
	// Hoist the per-request events out of the loops: events are immutable
	// descriptions (guards and wraps re-evaluate at each sync), so building
	// them once removes every per-request event/choice allocation from the
	// serving hot path.
	recvEvt := reader.RecvEvt()
	timeoutEvt := core.Wrap(core.After(s.rt, s.cfg.IdleTimeout), func(core.Value) core.Value { return "timeout" })
	drainEvt := core.Wrap(s.drain.Evt(), func(core.Value) core.Value { return "drain" })
	headChoice := core.Choice(recvEvt, timeoutEvt, drainEvt)
	bodyChoice := core.Choice(recvEvt, timeoutEvt)
	var buf []byte
	sawEOF := false
	for {
		// Wait for a complete request head (or timeout, or drain).
		var req *request
		for {
			if r, rest, perr := parseHead(buf); perr != nil {
				_ = writer.writeResponse(th, 400, false, "bad request: "+perr.Error())
				s.markCompleted(cs)
				return
			} else if r != nil {
				req, buf = r, rest
				break
			}
			if sawEOF {
				if len(buf) == 0 {
					s.markCompleted(cs) // clean close between requests
				}
				return
			}
			v, serr := core.Sync(th, headChoice)
			if serr != nil {
				continue // stray break
			}
			switch x := v.(type) {
			case string:
				if x == "timeout" {
					s.stats.timedOut.Add(1)
					_ = writer.writeResponse(th, 408, false, "request timeout\n")
				} else { // drain
					_ = writer.writeResponse(th, 503, false, "server shutting down\n")
				}
				s.markCompleted(cs)
				return
			case readChunk:
				buf = append(buf, x.data...)
				if x.err != nil {
					sawEOF = true
				}
			}
		}

		// Consume the body (HTTP/1.0: only if Content-Length says so);
		// servlets are GET-shaped, so the body is read and discarded.
		for len(buf) < req.contentLn && !sawEOF {
			v, serr := core.Sync(th, bodyChoice)
			if serr != nil {
				continue
			}
			if x, ok := v.(readChunk); ok {
				buf = append(buf, x.data...)
				if x.err != nil {
					sawEOF = true
				}
			} else {
				s.stats.timedOut.Add(1)
				s.markCompleted(cs)
				return
			}
		}
		if req.contentLn > 0 {
			if req.contentLn > len(buf) {
				// Client hung up mid-body: a client failure, not a kill.
				s.markCompleted(cs)
				return
			}
			buf = buf[req.contentLn:]
		}

		// Dispatch. /debug/stats and /debug/killsafe/* are the serving
		// layer's own surface; in sharded operation they report fleet-wide
		// aggregates (with per-shard breakdowns), so any shard answers the
		// same numbers.
		var resp web.Response
		path, query, _ := strings.Cut(req.target, "?")
		if status, body, ok := s.adminDispatch(path, query); ok {
			resp = web.Response{Status: status, Body: body}
		} else if path == "/debug/stats" {
			snap := s.Stats()
			if s.aggStats != nil {
				snap = s.aggStats()
			}
			resp = web.Response{Status: 200, Body: snap.json() + "\n"}
		} else if s.cfg.RequestTimeout > 0 {
			var timedOut bool
			resp, timedOut = s.dispatchBounded(th, cs, req)
			if timedOut {
				s.stats.deadlined.Add(1)
				_ = writer.writeResponse(th, 503, false, "request deadline exceeded\n")
				s.markCompleted(cs)
				return
			}
		} else {
			resp = s.web.Dispatch(th, cs.sess, toWebRequest(req))
		}
		keep := req.keepAlive && !s.drain.Completed()
		if err := writer.writeResponse(th, resp.Status, keep, resp.Body); err != nil {
			return
		}
		if !keep {
			s.markCompleted(cs)
			return
		}
	}
}

// dispatchBounded runs one servlet dispatch in a worker thread under the
// connection's custodian, bounded by cfg.RequestTimeout. The deadline is
// a core.After event, so the session thread waits at a safe point and in
// deterministic mode the timeout is driven by the virtual clock. On
// timeout the worker is killed — its next safe point unwinds it, and the
// per-connection custodian guarantees whatever it held is reclaimed.
func (s *Server) dispatchBounded(th *core.Thread, cs *connState, req *request) (web.Response, bool) {
	var resp web.Response
	var finished bool // written by the worker before it returns
	var worker *core.Thread
	th.WithCustodian(cs.cust, func() {
		worker = th.Spawn(fmt.Sprintf("netsvc-req-%d", cs.id), func(x *core.Thread) {
			r := s.web.Dispatch(x, cs.sess, toWebRequest(req))
			resp, finished = r, true
		})
	})
	s.mu.Lock()
	s.threads[worker] = struct{}{}
	s.mu.Unlock()
	var v core.Value
	for {
		var err error
		v, err = core.Sync(th, core.Choice(
			core.Wrap(worker.DoneEvt(), func(core.Value) core.Value { return "done" }),
			core.Wrap(core.After(s.rt, s.cfg.RequestTimeout), func(core.Value) core.Value { return "deadline" }),
		))
		if err == nil {
			break
		}
	}
	// finished is only read on the "done" path, after the worker's DoneEvt
	// committed — the write happens-before the read.
	timedOut := v != "done" || !finished
	if timedOut {
		worker.Kill()
	}
	s.mu.Lock()
	delete(s.threads, worker)
	s.mu.Unlock()
	if timedOut {
		// Do not touch resp: a worker killed mid-dispatch may still be
		// unwinding toward its safe point.
		return web.Response{}, true
	}
	return resp, false
}

// markCompleted classifies the session as cleanly ended for the monitor.
func (s *Server) markCompleted(cs *connState) {
	s.mu.Lock()
	cs.completed = true
	s.mu.Unlock()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 408:
		return "Request Timeout"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// parseHead tries to parse one request head from buf. It returns
// (nil, buf, nil) if the head is not yet complete, or the parsed request
// plus the unconsumed remainder.
func parseHead(buf []byte) (*request, []byte, error) {
	head, rest, ok := cutHead(buf)
	if !ok {
		if len(buf) > 64<<10 {
			return nil, buf, fmt.Errorf("request head exceeds 64KiB")
		}
		return nil, buf, nil
	}
	lines := strings.Split(head, "\n")
	fields := strings.Fields(strings.TrimRight(lines[0], "\r"))
	if len(fields) < 2 {
		return nil, rest, fmt.Errorf("malformed request line %q", lines[0])
	}
	req := &request{method: fields[0], target: fields[1]}
	if len(fields) >= 3 {
		req.proto = fields[2]
	}
	for _, ln := range lines[1:] {
		ln = strings.TrimRight(ln, "\r")
		if ln == "" {
			continue
		}
		k, v, found := strings.Cut(ln, ":")
		if !found {
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(k) {
		case "connection":
			req.keepAlive = strings.EqualFold(v, "keep-alive")
		case "content-length":
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				req.contentLn = n
			}
		}
	}
	return req, rest, nil
}

// cutHead splits buf at the first blank line (CRLF CRLF or LF LF),
// returning the head and the remainder.
func cutHead(buf []byte) (head string, rest []byte, ok bool) {
	s := string(buf)
	best, sepLen := -1, 0
	for _, sep := range []string{"\r\n\r\n", "\n\n"} {
		if i := strings.Index(s, sep); i >= 0 && (best < 0 || i < best) {
			best, sepLen = i, len(sep)
		}
	}
	if best < 0 {
		return "", buf, false
	}
	return s[:best], buf[best+sepLen:], true
}

// toWebRequest converts a parsed HTTP request to the servlet router's
// request shape (method, path, query).
func toWebRequest(req *request) *web.Request {
	out := &web.Request{Method: req.method, Query: map[string]string{}}
	target := req.target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		for _, kv := range strings.Split(target[i+1:], "&") {
			if kv == "" {
				continue
			}
			k, v, _ := strings.Cut(kv, "=")
			out.Query[k] = v
		}
		target = target[:i]
	}
	out.Path = target
	return out
}
