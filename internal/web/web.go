// Package web implements the paper's motivating scenario (Section 2) as a
// runnable substrate: an in-process web server whose servlet sessions are
// tasks that the administrator may terminate at any time, plus the
// in-process browser of the DrScheme help system (Section 2.2). Server and
// browser communicate through socket-like kill-safe byte streams
// (abstractions/pipe) rather than TCP, exactly as the help system does.
//
// Each session runs its servlet code in a thread under a per-session
// custodian that is a child of the server's custodian: the administrator
// can terminate one misbehaving session (Terminate), or the whole server
// (its custodian), and — per the paper — terminating a session never
// corrupts or freezes the kill-safe abstractions that sessions share.
package web

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/abstractions/pipe"
	"repro/internal/core"
)

// Request is a parsed servlet request.
type Request struct {
	Method string
	Path   string
	Query  map[string]string
}

// Response is a servlet's answer. The body has two representations: Body
// for the common literal-string case, and BodyBytes for servlets that
// already hold the payload as bytes (a pooled buffer, a serialized
// snapshot). When BodyBytes is non-nil it takes precedence, and the wire
// codecs append it straight into the pooled connection batch buffer —
// one copy onto the wire, no intermediate string conversion. The caller
// must not mutate BodyBytes until the response has been written.
type Response struct {
	Status    int
	Body      string
	BodyBytes []byte
}

// BodyLen returns the body length of whichever representation is set.
func (r *Response) BodyLen() int {
	if r.BodyBytes != nil {
		return len(r.BodyBytes)
	}
	return len(r.Body)
}

// AppendBody appends the body to dst without an intermediate conversion.
func (r *Response) AppendBody(dst []byte) []byte {
	if r.BodyBytes != nil {
		return append(dst, r.BodyBytes...)
	}
	return append(dst, r.Body...)
}

// BodyString returns the body as a string, converting (and copying) the
// bytes form if that is what the servlet produced. Off the serving hot
// path only; the codecs use AppendBody.
func (r *Response) BodyString() string {
	if r.BodyBytes != nil {
		return string(r.BodyBytes)
	}
	return r.Body
}

// Servlet handles requests for one route. It runs on the session's thread,
// under the session's custodian: anything it spawns or allocates dies with
// the session unless it is a kill-safe shared abstraction.
type Servlet func(th *core.Thread, s *Session, req *Request) Response

// Server is the in-process web server.
type Server struct {
	rt   *core.Runtime
	cust *core.Custodian

	mu       sync.Mutex
	routes   map[string]Servlet
	sessions map[int]*Session
	nextID   int
	board    map[string]any
}

// Session is one browser connection's server-side state.
type Session struct {
	ID   int
	srv  *Server
	cust *core.Custodian
}

// NewServer creates a server whose sessions live under a fresh custodian
// that is a child of the creating thread's current custodian.
func NewServer(th *core.Thread) *Server {
	return &Server{
		rt:       th.Runtime(),
		cust:     core.NewCustodian(th.CurrentCustodian()),
		routes:   make(map[string]Servlet),
		sessions: make(map[int]*Session),
		board:    make(map[string]any),
	}
}

// Handle registers a servlet for a path.
func (srv *Server) Handle(path string, s Servlet) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.routes[path] = s
}

// Publish places a value on the server's discovery board, which is how
// two servlet sessions find the abstractions they share (the paper's
// sessions "discover each other and wish to communicate").
func (srv *Server) Publish(key string, v any) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.board[key] = v
}

// Lookup retrieves a published value.
func (srv *Server) Lookup(key string) (any, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	v, ok := srv.board[key]
	return v, ok
}

// Sessions returns the IDs of live sessions.
func (srv *Server) Sessions() []int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	out := make([]int, 0, len(srv.sessions))
	for id := range srv.sessions {
		out = append(out, id)
	}
	return out
}

// AttachSession registers a session backed by an external transport (a
// real TCP connection served by internal/netsvc, say) whose lifecycle the
// caller manages through the given custodian. The session participates in
// the administrator's view — Sessions lists it, Terminate shuts its
// custodian down — but the server spawns no handler thread for it: the
// transport owner drives requests through Dispatch.
func (srv *Server) AttachSession(cust *core.Custodian) *Session {
	s := &Session{srv: srv, cust: cust}
	srv.mu.Lock()
	srv.nextID++
	s.ID = srv.nextID
	srv.sessions[s.ID] = s
	srv.mu.Unlock()
	return s
}

// Detach removes a session from the administrator's view without shutting
// its custodian down — the bookkeeping half of Terminate, for transports
// that clean up their own resources when a connection ends normally.
func (srv *Server) Detach(id int) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// Dispatch routes one request to its servlet on the calling thread. It is
// the transport-independent core of a session's serve loop, exported so
// external transports can mount the same routes.
func (srv *Server) Dispatch(th *core.Thread, s *Session, req *Request) Response {
	srv.mu.Lock()
	servlet := srv.routes[req.Path]
	srv.mu.Unlock()
	if servlet == nil {
		return Response{Status: 404, Body: "not found: " + req.Path}
	}
	return servlet(th, s, req)
}

// Custodian returns the custodian controlling the session's resources.
func (s *Session) Custodian() *core.Custodian { return s.cust }

// Terminate shuts down one session's custodian: its servlet threads and
// everything they allocated stop. This is the administrator's hammer for
// a misbehaving session.
func (srv *Server) Terminate(id int) {
	srv.mu.Lock()
	s := srv.sessions[id]
	delete(srv.sessions, id)
	srv.mu.Unlock()
	if s != nil {
		s.cust.Shutdown()
	}
}

// Shutdown terminates every session and the server itself.
func (srv *Server) Shutdown() {
	srv.cust.Shutdown()
	srv.mu.Lock()
	srv.sessions = make(map[int]*Session)
	srv.mu.Unlock()
}

// Custodian exposes the server's custodian (for nesting tests: running a
// whole server under a disposable custodian).
func (srv *Server) Custodian() *core.Custodian { return srv.cust }

// Connect opens a new browser connection: the server spawns a session
// handler under a fresh per-session custodian and returns the browser's
// endpoint. The connection's streams are created by the *browser's* thread
// so they survive session termination — they are shared, kill-safe
// abstractions, guarded on every operation.
func (srv *Server) Connect(th *core.Thread) (*Browser, *Session) {
	browserEnd, serverEnd := pipe.NewConnPair(th)

	cust := core.NewCustodian(srv.cust)
	s := &Session{srv: srv, cust: cust}
	srv.mu.Lock()
	srv.nextID++
	s.ID = srv.nextID
	srv.sessions[s.ID] = s
	srv.mu.Unlock()

	var handler *core.Thread
	th.WithCustodian(cust, func() {
		handler = th.Spawn(fmt.Sprintf("session-%d", s.ID), func(x *core.Thread) {
			s.serve(x, serverEnd)
		})
	})
	// The reaper watches for the session's death — the administrator's
	// Terminate (custodian shutdown) or a normal handler exit — and closes
	// the server→browser stream. Without it, a browser waiting on the rest
	// of a half-written response from a terminated session would block
	// forever: the shared stream survives the kill (it is kill-safe), but
	// nothing would ever finish the write. The reaper runs under the
	// browser's custodian — it polices the session, so it must not die
	// with it.
	th.Spawn(fmt.Sprintf("session-reaper-%d", s.ID), func(x *core.Thread) {
		for {
			if _, err := core.Sync(x, core.Choice(cust.DeadEvt(), handler.DoneEvt())); err == nil {
				break
			}
			// A stray break: keep watching.
		}
		for serverEnd.Close(x) != nil {
		}
	})
	return &Browser{conn: browserEnd}, s
}

// serve reads requests off the connection and dispatches servlets.
func (s *Session) serve(th *core.Thread, conn *pipe.Conn) {
	r := conn.Reader(th)
	for {
		line, err := r.ReadLine()
		if err != nil {
			return // EOF, break, or termination
		}
		req := parseRequest(line)
		resp := s.srv.Dispatch(th, s, req)
		if err := writeResponse(th, conn, resp); err != nil {
			return
		}
	}
}

func parseRequest(line string) *Request {
	req := &Request{Method: "GET", Query: map[string]string{}}
	fields := strings.Fields(line)
	target := ""
	switch len(fields) {
	case 0:
		return req
	case 1:
		target = fields[0]
	default:
		req.Method = fields[0]
		target = fields[1]
	}
	if i := strings.IndexByte(target, '?'); i >= 0 {
		for _, kv := range strings.Split(target[i+1:], "&") {
			if kv == "" {
				continue
			}
			k, v, _ := strings.Cut(kv, "=")
			req.Query[k] = v
		}
		target = target[:i]
	}
	req.Path = target
	return req
}

func writeResponse(th *core.Thread, conn *pipe.Conn, resp Response) error {
	header := fmt.Sprintf("%d %d\n", resp.Status, resp.BodyLen())
	if _, err := conn.WriteString(th, header); err != nil {
		return err
	}
	_, err := conn.WriteString(th, resp.BodyString())
	return err
}

// Browser is the client endpoint: the in-process browser of the help
// system.
type Browser struct {
	mu     sync.Mutex
	conn   *pipe.Conn
	reader *pipe.Reader
}

// Get issues a request and reads the response. Safe for use by one thread
// at a time per Browser.
func (b *Browser) Get(th *core.Thread, target string) (int, string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.conn.WriteString(th, "GET "+target+"\n"); err != nil {
		return 0, "", err
	}
	if b.reader == nil {
		b.reader = b.conn.Reader(th)
	}
	b.reader.Use(th)
	header, err := b.reader.ReadLine()
	if err != nil {
		return 0, "", err
	}
	var status, n int
	if _, err := fmt.Sscanf(header, "%d %d", &status, &n); err != nil {
		return 0, "", fmt.Errorf("web: malformed response header %q", header)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(b.reader, body); err != nil {
		return 0, "", err
	}
	return status, string(body), nil
}

// Close closes the browser's outgoing stream; the session handler sees
// EOF and exits.
func (b *Browser) Close(th *core.Thread) error { return b.conn.Close(th) }

// Itoa is a tiny convenience for servlets building query strings.
func Itoa(v int) string { return strconv.Itoa(v) }
