package web_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/web"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBasicRequestResponse(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/hello", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			name := req.Query["name"]
			if name == "" {
				name = "world"
			}
			return web.Response{Status: 200, Body: "hello " + name}
		})
		b, _ := srv.Connect(th)
		status, body, err := b.Get(th, "/hello?name=plt")
		if err != nil || status != 200 || body != "hello plt" {
			t.Fatalf("(%d, %q, %v)", status, body, err)
		}
	})
}

func TestNotFound(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		b, _ := srv.Connect(th)
		status, body, err := b.Get(th, "/missing")
		if err != nil || status != 404 {
			t.Fatalf("(%d, %q, %v)", status, body, err)
		}
	})
}

func TestQueryParsing(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/echo", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			var sb strings.Builder
			sb.WriteString(req.Method)
			for _, k := range []string{"a", "b", "empty"} {
				sb.WriteString(";" + k + "=" + req.Query[k])
			}
			return web.Response{Status: 200, Body: sb.String()}
		})
		b, _ := srv.Connect(th)
		_, body, err := b.Get(th, "/echo?a=1&b=two&empty=")
		if err != nil || body != "GET;a=1;b=two;empty=" {
			t.Fatalf("(%q, %v)", body, err)
		}
	})
}

func TestMultipleSessionsIsolated(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/id", func(_ *core.Thread, s *web.Session, _ *web.Request) web.Response {
			return web.Response{Status: 200, Body: web.Itoa(s.ID)}
		})
		b1, s1 := srv.Connect(th)
		b2, s2 := srv.Connect(th)
		if s1.ID == s2.ID {
			t.Fatal("sessions share an ID")
		}
		if _, body, _ := b1.Get(th, "/id"); body != web.Itoa(s1.ID) {
			t.Fatalf("b1 got %q", body)
		}
		if _, body, _ := b2.Get(th, "/id"); body != web.Itoa(s2.ID) {
			t.Fatalf("b2 got %q", body)
		}
		if n := len(srv.Sessions()); n != 2 {
			t.Fatalf("%d sessions, want 2", n)
		}
	})
}

func TestTerminateSessionLeavesOthersWorking(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/ping", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			return web.Response{Status: 200, Body: "pong"}
		})
		b1, s1 := srv.Connect(th)
		b2, _ := srv.Connect(th)
		if _, body, err := b1.Get(th, "/ping"); err != nil || body != "pong" {
			t.Fatalf("(%q, %v)", body, err)
		}
		srv.Terminate(s1.ID)
		// The surviving session is unaffected.
		if _, body, err := b2.Get(th, "/ping"); err != nil || body != "pong" {
			t.Fatalf("survivor: (%q, %v)", body, err)
		}
		// The dead session no longer answers.
		answered := make(chan struct{})
		th.Spawn("dead-session-probe", func(x *core.Thread) {
			if _, _, err := b1.Get(x, "/ping"); err == nil {
				close(answered)
			}
		})
		select {
		case <-answered:
			t.Fatal("terminated session answered a request")
		case <-time.After(30 * time.Millisecond):
		}
	})
}

// TestServletSharedDocumentScenario is the paper's Section 2 scenario end
// to end: two sessions share a collaborative document; the administrator
// terminates one; the document keeps serving the other; terminating both
// kills the document.
func TestServletSharedDocumentScenario(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/edit", func(x *core.Thread, s *web.Session, req *web.Request) web.Response {
			// Discover or create the shared document. The creating
			// session's custodian controls the manager initially; the
			// other session's operations promote it.
			var d *doc.Document
			if v, ok := srv.Lookup("doc"); ok {
				d = v.(*doc.Document)
			} else {
				d = doc.New(x)
				srv.Publish("doc", d)
			}
			if line := req.Query["line"]; line != "" {
				if _, err := d.Append(x, line); err != nil {
					return web.Response{Status: 500, Body: err.Error()}
				}
			}
			_, lines, err := d.Snapshot(x)
			if err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			return web.Response{Status: 200, Body: strings.Join(lines, "|")}
		})

		b1, s1 := srv.Connect(th)
		b2, _ := srv.Connect(th)

		if _, body, err := b1.Get(th, "/edit?line=alpha"); err != nil || body != "alpha" {
			t.Fatalf("b1 edit: (%q, %v)", body, err)
		}
		if _, body, err := b2.Get(th, "/edit?line=beta"); err != nil || body != "alpha|beta" {
			t.Fatalf("b2 edit: (%q, %v)", body, err)
		}

		// The administrator terminates session 1 (which created the
		// document). Session 2 must be able to keep editing.
		srv.Terminate(s1.ID)
		if _, body, err := b2.Get(th, "/edit?line=gamma"); err != nil || body != "alpha|beta|gamma" {
			t.Fatalf("b2 after terminate: (%q, %v)", body, err)
		}

		// Terminating the whole server kills the document too: the
		// "gray box" gained no privilege beyond its users.
		v, _ := srv.Lookup("doc")
		d := v.(*doc.Document)
		srv.Shutdown()
		if !d.Manager().Suspended() {
			t.Fatal("shared document survived all of its users")
		}
	})
}

// TestNestedServerTermination mirrors "testing DrScheme within DrScheme":
// a whole server runs under a disposable custodian; shutting that down
// reliably terminates the server, its sessions, and any queue managers the
// sessions were yoked to — here represented by the shared document.
func TestNestedServerTermination(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		inner := core.NewCustodian(rt.RootCustodian())
		docCh := make(chan *doc.Document, 1)
		ready := make(chan struct{})
		th.WithCustodian(inner, func() {
			th.Spawn("inner-main", func(x *core.Thread) {
				srv := web.NewServer(x)
				srv.Handle("/touch", func(y *core.Thread, _ *web.Session, _ *web.Request) web.Response {
					d := doc.New(y)
					docCh <- d
					_, _ = d.Append(y, "inner")
					return web.Response{Status: 200, Body: "ok"}
				})
				b, _ := srv.Connect(x)
				if _, _, err := b.Get(x, "/touch"); err != nil {
					t.Errorf("inner get: %v", err)
				}
				close(ready)
				_ = core.Sleep(x, time.Hour)
			})
		})
		<-ready
		d := <-docCh
		inner.Shutdown()
		if !d.Manager().Suspended() {
			t.Fatal("inner document manager survived inner shutdown")
		}
		if n := rt.TerminateCondemned(); n == 0 {
			t.Fatal("nothing condemned after inner shutdown")
		}
	})
}
