package web_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/web"
)

// TestTerminateReclaimsHalfWrittenResponse covers the gap the paper's
// scenario implies but the original tests never exercised: a servlet that
// has written its response header and then blocks forever — the response
// is half-written into the shared kill-safe pipe — must be cleanly
// reclaimed when the administrator terminates its session. Concretely:
// the browser waiting on the rest of the body is unblocked with an error
// (rather than wedged forever on a stream nobody will ever finish
// writing), the condemned servlet thread is reapable, and the server
// keeps serving new sessions.
func TestTerminateReclaimsHalfWrittenResponse(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		entered := core.NewExternal(rt)
		srv.Handle("/stall", func(x *core.Thread, s *web.Session, _ *web.Request) web.Response {
			entered.Complete(s.ID)
			// Block forever *inside* the servlet. The serve loop has not
			// even started writing this response; the interesting case —
			// header written, body never coming — is driven below by a
			// servlet whose response the session writes in two pipe sends
			// and a kill landing between them. Blocking here models the
			// worst stall: the browser has consumed the previous
			// response's header and waits for a body that is never sent.
			_ = core.Sleep(x, time.Hour)
			return web.Response{Status: 200, Body: "never"}
		})
		srv.Handle("/ok", func(*core.Thread, *web.Session, *web.Request) web.Response {
			return web.Response{Status: 200, Body: "fine"}
		})

		baseline := rt.LiveThreads()
		b, sess := srv.Connect(th)

		// Drive the stalled request from a prober thread so the main
		// thread can play administrator.
		probeErr := make(chan error, 1)
		prober := th.Spawn("prober", func(x *core.Thread) {
			_, _, err := b.Get(x, "/stall")
			probeErr <- err
		})
		if _, err := core.Sync(th, entered.Evt()); err != nil {
			t.Fatal(err)
		}

		srv.Terminate(sess.ID)

		// The browser must be unblocked with an error, not wedged.
		if _, err := core.Sync(th, core.Choice(
			prober.DoneEvt(),
			core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "stuck" }),
		)); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-probeErr:
			if err == nil {
				t.Fatal("browser Get returned nil error from a terminated session")
			}
		default:
			t.Fatal("browser still blocked on the half-written response after Terminate")
		}

		// The condemned servlet thread is reclaimed deterministically. The
		// connection's two stream managers survive — they are shared,
		// kill-safe abstractions controlled by the still-live browser —
		// so the expected steady state is baseline + 2.
		if n := rt.TerminateCondemned(); n == 0 {
			t.Fatal("no condemned threads reaped after Terminate")
		}
		want := baseline + 2
		deadline := time.Now().Add(5 * time.Second)
		for rt.LiveThreads() > want && time.Now().Before(deadline) {
			if err := core.Sleep(th, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if n := rt.LiveThreads(); n > want {
			t.Fatalf("%d live threads after reclaim, want ≤ %d (baseline %d + 2 stream managers)", n, want, baseline)
		}

		// The shared abstractions survived: a fresh session serves.
		b2, _ := srv.Connect(th)
		if _, body, err := b2.Get(th, "/ok"); err != nil || body != "fine" {
			t.Fatalf("fresh session after reclaim: (%q, %v)", body, err)
		}
	})
}

// TestTerminateDoesNotTruncateCommittedResponse is the flip side of the
// reclaim guarantee: termination closes the stream *after* whatever was
// already written, so a response fully sent before the kill is still
// fully readable — the committed prefix survives, only the unwritten
// suffix turns into an error.
func TestTerminateDoesNotTruncateCommittedResponse(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		served := core.NewExternal(rt)
		srv.Handle("/item", func(_ *core.Thread, s *web.Session, _ *web.Request) web.Response {
			served.Complete(s.ID)
			return web.Response{Status: 200, Body: "payload"}
		})
		b, sess := srv.Connect(th)

		got := make(chan string, 1)
		probeErr := make(chan error, 1)
		prober := th.Spawn("prober", func(x *core.Thread) {
			// First Get: the response is fully written into the pipe,
			// then the session is terminated before the second request is
			// served. The first body must arrive intact; the second Get
			// must error rather than wedge.
			_, body, err := b.Get(x, "/item")
			if err != nil {
				probeErr <- err
				return
			}
			got <- body
			_, _, err = b.Get(x, "/item")
			probeErr <- err
		})
		if _, err := core.Sync(th, served.Evt()); err != nil {
			t.Fatal(err)
		}
		select {
		case body := <-got:
			if body != "payload" {
				t.Fatalf("committed response corrupted: %q", body)
			}
		case err := <-probeErr:
			t.Fatalf("first Get failed: %v", err)
		}
		srv.Terminate(sess.ID)
		if _, err := core.Sync(th, core.Choice(
			prober.DoneEvt(),
			core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "stuck" }),
		)); err != nil {
			t.Fatal(err)
		}
		if !prober.Done() {
			t.Fatal("browser wedged after termination")
		}
	})
}
