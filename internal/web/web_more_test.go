package web_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/web"
)

func TestBrowserCloseEndsSession(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		b, _ := srv.Connect(th)
		if err := b.Close(th); err != nil {
			t.Fatal(err)
		}
		// The session handler sees EOF and returns; give it a moment.
		deadline := time.Now().Add(5 * time.Second)
		for rt.LiveThreads() > 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		// A fresh connection still works.
		srv.Handle("/ping", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			return web.Response{Status: 200, Body: "pong"}
		})
		b2, _ := srv.Connect(th)
		if _, body, err := b2.Get(th, "/ping"); err != nil || body != "pong" {
			t.Fatalf("(%q, %v)", body, err)
		}
	})
}

func TestEmptyAndOddRequests(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			return web.Response{Status: 200, Body: "empty-path"}
		})
		srv.Handle("/x", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: req.Method}
		})
		b, _ := srv.Connect(th)
		// Bare path without a method parses as GET.
		if _, body, err := b.Get(th, "/x"); err != nil || body != "GET" {
			t.Fatalf("(%q, %v)", body, err)
		}
	})
}

func TestPublishLookup(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		if _, ok := srv.Lookup("missing"); ok {
			t.Fatal("lookup of missing key succeeded")
		}
		srv.Publish("k", 42)
		v, ok := srv.Lookup("k")
		if !ok || v != 42 {
			t.Fatalf("(%v, %v)", v, ok)
		}
		srv.Publish("k", 43) // republish overwrites
		if v, _ := srv.Lookup("k"); v != 43 {
			t.Fatalf("got %v", v)
		}
	})
}

func TestManyConcurrentSessions(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/echo", func(_ *core.Thread, s *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: fmt.Sprintf("%d:%s", s.ID, req.Query["v"])}
		})
		const sessions, requests = 6, 15
		done := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			b, s := srv.Connect(th)
			b, sid := b, s.ID
			th.Spawn("client", func(x *core.Thread) {
				for j := 0; j < requests; j++ {
					want := fmt.Sprintf("%d:%d", sid, j)
					_, body, err := b.Get(x, fmt.Sprintf("/echo?v=%d", j))
					if err != nil {
						done <- err
						return
					}
					if body != want {
						done <- fmt.Errorf("got %q want %q", body, want)
						return
					}
				}
				done <- nil
			})
		}
		for i := 0; i < sessions; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("sessions stalled")
			}
		}
	})
}

func TestServerShutdownUnderLoad(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		srv := web.NewServer(th)
		srv.Handle("/slow", func(x *core.Thread, _ *web.Session, _ *web.Request) web.Response {
			_ = core.Sleep(x, time.Millisecond)
			return web.Response{Status: 200, Body: "ok"}
		})
		for i := 0; i < 4; i++ {
			b, _ := srv.Connect(th)
			th.Spawn("hammer", func(x *core.Thread) {
				for {
					if _, _, err := b.Get(x, "/slow"); err != nil {
						return
					}
				}
			})
		}
		time.Sleep(10 * time.Millisecond)
		srv.Shutdown() // must not deadlock with requests in flight
		if n := len(srv.Sessions()); n != 0 {
			t.Fatalf("%d sessions after shutdown", n)
		}
		rt.TerminateCondemned()
	})
}
