package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/explore/scenarios"
)

// TestMetricsBalanceUnderKills checks the core accounting identity: a
// runtime that spawns, syncs, kills, and shuts down ends with
// spawns == dones (nothing leaks), exits == dones - kills, and the
// sync fast/multi split summing to the total.
func TestMetricsBalanceUnderKills(t *testing.T) {
	o := New()
	rt := core.NewRuntime()
	o.Attach(rt)

	const workers = 8
	const killed = 4
	err := rt.Run(func(th *core.Thread) {
		sem := core.NewSemaphore(rt, 0)
		var ths []*core.Thread
		for i := 0; i < workers; i++ {
			ths = append(ths, th.Spawn("worker", func(x *core.Thread) {
				_, _ = core.Sync(x, sem.WaitEvt())
			}))
		}
		// Wait until every worker is parked in its sync.
		deadline := time.Now().Add(5 * time.Second)
		for o.Snapshot().Blocks < workers && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < killed; i++ {
			ths[i].Kill()
		}
		for i := killed; i < workers; i++ {
			sem.Post()
		}
		for i := killed; i < workers; i++ {
			for !ths[i].Done() {
				time.Sleep(time.Millisecond)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rt.Shutdown()

	s := o.Snapshot()
	if s.Spawns == 0 {
		t.Fatal("no spawns counted")
	}
	if s.Spawns != s.Dones {
		t.Fatalf("spawns (%d) != dones (%d) after shutdown", s.Spawns, s.Dones)
	}
	if s.LiveThreads != 0 {
		t.Fatalf("live_threads = %d after shutdown, want 0", s.LiveThreads)
	}
	if s.Kills < killed {
		t.Fatalf("kills = %d, want >= %d", s.Kills, killed)
	}
	if s.Exits != s.Dones-s.Kills {
		t.Fatalf("exits = %d, want dones-kills = %d", s.Exits, s.Dones-s.Kills)
	}
	if s.Syncs == 0 {
		t.Fatal("no syncs counted")
	}
	if s.SyncFast+s.SyncMulti != s.Syncs {
		t.Fatalf("sync split %d+%d != total %d", s.SyncFast, s.SyncMulti, s.Syncs)
	}
	// Runtime accounting must agree with the counters.
	if n := rt.LiveThreads(); int64(n) != s.LiveThreads {
		t.Fatalf("runtime reports %d live threads, counters say %d", n, s.LiveThreads)
	}
}

// TestAttachLiveRuntime: a passive instrumentation may be installed on a
// runtime that already has threads, and counters tick from then on.
func TestAttachLiveRuntime(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	o := New()
	err := rt.Run(func(th *core.Thread) {
		o.Attach(rt) // th exists: this must not panic (det mode unchanged)
		done := th.Spawn("late", func(*core.Thread) {})
		for !done.Done() {
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s := o.Snapshot(); s.Spawns == 0 || s.Dones == 0 {
		t.Fatalf("counters did not tick after live attach: %+v", s)
	}
}

func TestRecorderOverflowWraparound(t *testing.T) {
	r := NewRecorder(10) // rounds up to 16
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	const total = 100
	for i := 0; i < total; i++ {
		r.record(EvRunnable, int64(i), 0)
	}
	if r.Recorded() != total {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), total)
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot holds %d events, want the last 16", len(snap))
	}
	for i, e := range snap {
		wantSeq := uint64(total - 16 + i)
		if e.Seq != wantSeq || e.Thread != int64(wantSeq) {
			t.Fatalf("slot %d: seq=%d thread=%d, want seq=thread=%d (oldest-first after wrap)",
				i, e.Seq, e.Thread, wantSeq)
		}
		if e.Kind != EvRunnable {
			t.Fatalf("slot %d: kind %v", i, e.Kind)
		}
	}
}

// TestRecorderConcurrent hammers the ring from several writers while a
// reader snapshots continuously: no lock, no race (run under -race), no
// torn events — every surviving event must be internally consistent.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const writers = 4
	const perWriter = 5000
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot() {
				// Writer w writes (thread=w, arg=w): a torn slot would mix.
				if e.Thread != e.Arg {
					t.Errorf("torn event: thread=%d arg=%d", e.Thread, e.Arg)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.record(EvSync, id, id)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
}

// TestTraceTextDecodes: a recorded flight renders into the explore trace
// format and parses with the explore decoder, action lines and comments
// alike.
func TestTraceTextDecodes(t *testing.T) {
	r := NewRecorder(64)
	r.record(EvSpawn, 1, 0)
	r.record(EvRunnable, 1, 0)
	r.record(EvSync, 1, SyncArg(3, 1))
	r.record(EvKill, 2, 0)
	r.record(EvSuspend, 3, 0)
	r.record(EvResume, 3, 0)
	r.record(EvBreak, 4, 0)
	r.record(EvAlarm, 1, 0)
	r.record(EvShutdown, 7, 2)
	r.record(EvDone, 2, 0)

	text := r.TraceText("flight", 42)
	tr, err := explore.DecodeTrace(strings.NewReader(text))
	if err != nil {
		t.Fatalf("DecodeTrace: %v\n%s", err, text)
	}
	if tr.Scenario != "flight" || tr.Seed != 42 {
		t.Fatalf("header round-trip: scenario=%q seed=%d", tr.Scenario, tr.Seed)
	}
	// Action lines: r 1, k 2, s 3, u 3, b 4, c. Comments carry the rest.
	want := []explore.Action{
		{Kind: explore.ActRun, Thread: 1},
		{Kind: explore.ActKill, Thread: 2},
		{Kind: explore.ActSuspend, Thread: 3},
		{Kind: explore.ActResume, Thread: 3},
		{Kind: explore.ActBreak, Thread: 4},
		{Kind: explore.ActClock},
	}
	if len(tr.Actions) != len(want) {
		t.Fatalf("decoded %d actions, want %d:\n%s", len(tr.Actions), len(want), text)
	}
	for i, a := range tr.Actions {
		if a != want[i] {
			t.Fatalf("action %d = %+v, want %+v", i, a, want[i])
		}
	}
	cases, chosen := SyncShape(SyncArg(3, 1))
	if cases != 3 || chosen != 1 {
		t.Fatalf("SyncShape round-trip: (%d, %d)", cases, chosen)
	}
}

// TestExploreTeeRoundTrip runs a deterministic exploration with an Obs
// (recorder on) teed alongside the controller, dumps the flight in trace
// format, and feeds it back through the lenient replayer: the decoder
// must accept the dump and the replay must complete without a harness
// error. This is the live-server-to-systematic-replay bridge.
func TestExploreTeeRoundTrip(t *testing.T) {
	sc := scenarios.QueueKillSafe()
	o := New()
	o.EnableRecorder(4096)
	out := explore.RunOnce(sc, explore.NewRandomPicker(11, 0.25), 11,
		explore.Options{Instrument: o})
	if out.Status == explore.StatusError {
		t.Fatalf("instrumented run: harness error: %v", out.Err)
	}
	s := o.Snapshot()
	if s.Spawns == 0 || s.Syncs == 0 {
		t.Fatalf("tee did not reach the obs taps: %+v", s)
	}
	if o.Recorder().Recorded() == 0 {
		t.Fatal("flight recorder stayed empty during the run")
	}

	text := o.Recorder().TraceText(sc.Name, 11)
	tr, err := explore.DecodeTrace(strings.NewReader(text))
	if err != nil {
		t.Fatalf("DecodeTrace(recorded flight): %v\n%s", err, text)
	}
	if tr.Scenario != sc.Name {
		t.Fatalf("scenario header %q, want %q", tr.Scenario, sc.Name)
	}

	rep := explore.Replay(sc, tr, explore.Options{Lenient: true})
	if rep.Status == explore.StatusError {
		t.Fatalf("lenient replay of recorded flight: %v\ntrace:\n%s", rep.Err, text)
	}
}
