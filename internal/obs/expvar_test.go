package obs

import (
	"expvar"
	"strings"
	"testing"
)

// PublishExpvarFunc: the variable renders the function's value, and
// republishing under the same name re-points instead of panicking (the
// source object changes across server restarts and shard drains).
func TestPublishExpvarFuncRepoints(t *testing.T) {
	PublishExpvarFunc("test.expvarfunc", func() any { return map[string]int{"v": 1} })
	v := expvar.Get("test.expvarfunc")
	if v == nil {
		t.Fatal("variable not published")
	}
	if got := v.String(); !strings.Contains(got, `"v":1`) {
		t.Fatalf("first render = %s, want v=1", got)
	}
	PublishExpvarFunc("test.expvarfunc", func() any { return map[string]int{"v": 2} })
	if got := v.String(); !strings.Contains(got, `"v":2`) {
		t.Fatalf("render after republish = %s, want v=2", got)
	}
}
