package obs

import "sync/atomic"

// Metrics is the always-on counter core: one cache-friendly block of
// atomic counters incremented from the runtime's instrumentation taps.
// Increments are single atomic adds — no locks, no allocation — so the
// cost of leaving metrics enabled on a serving runtime is a handful of
// uncontended atomic ops per scheduler event.
//
// Counters are monotonic; gauges (live threads) are derived in Snapshot
// from counter differences so the hot path never needs a decrement-
// paired-with-increment invariant.
type Metrics struct {
	// Thread lifecycle.
	Spawns    atomic.Int64 // threads created
	Dones     atomic.Int64 // threads finished (returned or unwound a kill)
	Kills     atomic.Int64 // threads killed (subset of Dones once unwound)
	Suspends  atomic.Int64 // explicit suspensions
	Resumes   atomic.Int64 // explicit resumptions
	Condemned atomic.Int64 // threads that lost their last custodian
	Yokes     atomic.Int64 // ResumeVia/SpawnYoked yokings
	Breaks    atomic.Int64 // break signals delivered

	// Scheduling.
	CommitWakes atomic.Int64 // Runnable taps: wake-ups of parked threads
	Blocks      atomic.Int64 // threads parking on their condition variable
	Pauses      atomic.Int64 // safe points passed (gate/park exits)

	// Rendezvous.
	Syncs     atomic.Int64 // committed rendezvous
	SyncFast  atomic.Int64 // single-event fast-path commits (cases == 1)
	SyncMulti atomic.Int64 // multi-event choice commits (cases > 1)

	// Alarms and custodians.
	AlarmFires         atomic.Int64 // alarm (timer or virtual clock) wakes
	CustodianShutdowns atomic.Int64 // custodians shut down
	CustodianSwept     atomic.Int64 // threads directly controlled at shutdown
}

// Snapshot is a point-in-time copy of the counters plus derived gauges,
// JSON-ready for the admin surface.
type Snapshot struct {
	Spawns    int64 `json:"spawns"`
	Dones     int64 `json:"dones"`
	Kills     int64 `json:"kills"`
	Exits     int64 `json:"exits"` // normal returns: dones - kills
	Suspends  int64 `json:"suspends"`
	Resumes   int64 `json:"resumes"`
	Condemned int64 `json:"condemned"`
	Yokes     int64 `json:"yokes"`
	Breaks    int64 `json:"breaks"`

	LiveThreads int64 `json:"live_threads"` // spawns - dones
	CommitWakes int64 `json:"commit_wakes"`
	Blocks      int64 `json:"blocks"`
	Pauses      int64 `json:"pauses"`

	Syncs     int64 `json:"syncs"`
	SyncFast  int64 `json:"sync_fast"`
	SyncMulti int64 `json:"sync_multi"`

	AlarmFires         int64 `json:"alarm_fires"`
	CustodianShutdowns int64 `json:"custodian_shutdowns"`
	CustodianSwept     int64 `json:"custodian_swept_threads"`
}

// Snapshot copies the counters. Counters are read individually, so a
// snapshot taken under load is per-counter consistent, not globally
// consistent; after quiescence it is exact.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Spawns:    m.Spawns.Load(),
		Dones:     m.Dones.Load(),
		Kills:     m.Kills.Load(),
		Suspends:  m.Suspends.Load(),
		Resumes:   m.Resumes.Load(),
		Condemned: m.Condemned.Load(),
		Yokes:     m.Yokes.Load(),
		Breaks:    m.Breaks.Load(),

		CommitWakes: m.CommitWakes.Load(),
		Blocks:      m.Blocks.Load(),
		Pauses:      m.Pauses.Load(),

		Syncs:     m.Syncs.Load(),
		SyncFast:  m.SyncFast.Load(),
		SyncMulti: m.SyncMulti.Load(),

		AlarmFires:         m.AlarmFires.Load(),
		CustodianShutdowns: m.CustodianShutdowns.Load(),
		CustodianSwept:     m.CustodianSwept.Load(),
	}
	s.LiveThreads = s.Spawns - s.Dones
	if s.Exits = s.Dones - s.Kills; s.Exits < 0 {
		s.Exits = 0
	}
	return s
}

// Add returns the field-wise sum of two snapshots; the sharded server
// uses it to aggregate per-runtime metrics into fleet totals.
func (s Snapshot) Add(t Snapshot) Snapshot {
	s.Spawns += t.Spawns
	s.Dones += t.Dones
	s.Kills += t.Kills
	s.Exits += t.Exits
	s.Suspends += t.Suspends
	s.Resumes += t.Resumes
	s.Condemned += t.Condemned
	s.Yokes += t.Yokes
	s.Breaks += t.Breaks
	s.LiveThreads += t.LiveThreads
	s.CommitWakes += t.CommitWakes
	s.Blocks += t.Blocks
	s.Pauses += t.Pauses
	s.Syncs += t.Syncs
	s.SyncFast += t.SyncFast
	s.SyncMulti += t.SyncMulti
	s.AlarmFires += t.AlarmFires
	s.CustodianShutdowns += t.CustodianShutdowns
	s.CustodianSwept += t.CustodianSwept
	return s
}
