// Package obs is the runtime observability layer: always-on metrics and
// an optional lock-free flight recorder, packaged as a passive
// core.Instrumentation. An Obs attached to a runtime counts every
// scheduler event for the lifetime of the runtime at the cost of a few
// uncontended atomic adds per event, and — when the recorder is enabled
// — keeps the most recent scheduler decisions in a fixed ring, dumpable
// on demand in the explore trace format.
//
// Obs never influences execution: Deterministic() is false, every tap
// returns promptly, and no tap allocates or calls back into the runtime
// (per the Instrumentation locking contract).
package obs

import (
	"expvar"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Obs is a passive instrumentation: a metrics block plus an optional
// flight recorder. The zero value is usable; Attach installs it on a
// runtime (live runtimes included).
type Obs struct {
	m   Metrics
	rec atomic.Pointer[Recorder]
}

// New creates an Obs with metrics only; call EnableRecorder to add the
// flight recorder.
func New() *Obs { return &Obs{} }

// Attach installs o on rt. If rt already has an instrumentation (e.g.
// the deterministic explorer's controller), o is teed after it, so both
// observe every tap. Passive installation is legal on a live runtime:
// threads already alive at attach time are adopted into the spawn count,
// so the spawns/dones/live books balance from the first snapshot. (For
// exact adoption, attach at a moment when nothing is concurrently
// spawning — e.g. server bootstrap; a spawn racing Attach itself can be
// missed.)
func (o *Obs) Attach(rt *core.Runtime) {
	o.m.Spawns.Add(int64(rt.LiveThreads()))
	if existing := rt.Instrumentation(); existing != nil {
		rt.SetInstrumentation(core.TeeInstrumentation(existing, o))
		return
	}
	rt.SetInstrumentation(o)
}

// EnableRecorder turns on the flight recorder with capacity for the
// most recent n events (DefaultRecorderSize if n <= 0). Enabling is
// atomic; events begin recording with the next tap.
func (o *Obs) EnableRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderSize
	}
	r := NewRecorder(n)
	o.rec.Store(r)
	return r
}

// Recorder returns the flight recorder, or nil if not enabled.
func (o *Obs) Recorder() *Recorder { return o.rec.Load() }

// Metrics returns the live counter block.
func (o *Obs) Metrics() *Metrics { return &o.m }

// Snapshot copies the current counters.
func (o *Obs) Snapshot() Snapshot { return o.m.Snapshot() }

// Instrumentation tap implementations. Each is a counter add plus, when
// the recorder is on, one wait-free ring write.

func (o *Obs) Spawned(th *core.Thread) {
	o.m.Spawns.Add(1)
	if r := o.rec.Load(); r != nil {
		r.record(EvSpawn, th.ID(), 0)
	}
}

func (o *Obs) Runnable(th *core.Thread) {
	o.m.CommitWakes.Add(1)
	if r := o.rec.Load(); r != nil {
		r.record(EvRunnable, th.ID(), 0)
	}
}

func (o *Obs) Blocked(th *core.Thread) {
	o.m.Blocks.Add(1)
	if r := o.rec.Load(); r != nil {
		r.record(EvBlocked, th.ID(), 0)
	}
}

func (o *Obs) Done(th *core.Thread) {
	o.m.Dones.Add(1)
	if r := o.rec.Load(); r != nil {
		r.record(EvDone, th.ID(), 0)
	}
}

func (o *Obs) Pause(th *core.Thread) {
	o.m.Pauses.Add(1)
}

func (o *Obs) Lifecycle(kind core.TraceKind, th *core.Thread) {
	var ev EvKind
	switch kind {
	case core.TraceKill:
		o.m.Kills.Add(1)
		ev = EvKill
	case core.TraceSuspend:
		o.m.Suspends.Add(1)
		ev = EvSuspend
	case core.TraceResume:
		o.m.Resumes.Add(1)
		ev = EvResume
	case core.TraceCondemned:
		o.m.Condemned.Add(1)
		ev = EvCondemn
	case core.TraceYoke:
		o.m.Yokes.Add(1)
		ev = EvYoke
	case core.TraceBreak:
		o.m.Breaks.Add(1)
		ev = EvBreak
	default:
		return
	}
	if r := o.rec.Load(); r != nil {
		var id int64
		if th != nil {
			id = th.ID()
		}
		r.record(ev, id, 0)
	}
}

func (o *Obs) SyncCommit(th *core.Thread, cases, chosen int) {
	o.m.Syncs.Add(1)
	if cases == 1 {
		o.m.SyncFast.Add(1)
	} else {
		o.m.SyncMulti.Add(1)
	}
	if r := o.rec.Load(); r != nil {
		r.record(EvSync, th.ID(), SyncArg(cases, chosen))
	}
}

func (o *Obs) CustodianShutdown(id int64, threads int) {
	o.m.CustodianShutdowns.Add(1)
	o.m.CustodianSwept.Add(int64(threads))
	if r := o.rec.Load(); r != nil {
		r.record(EvShutdown, id, int64(threads))
	}
}

func (o *Obs) AlarmFire(th *core.Thread) {
	o.m.AlarmFires.Add(1)
	if r := o.rec.Load(); r != nil {
		r.record(EvAlarm, th.ID(), 0)
	}
}

// Deterministic is false: Obs observes, it never schedules.
func (o *Obs) Deterministic() bool { return false }

var _ core.Instrumentation = (*Obs)(nil)

// expvar publication. expvar.Publish panics on duplicate names, and the
// Obs behind a name changes when a server restarts, so the registry maps
// each published name to a swappable pointer fetched at render time.

var (
	expvarMu      sync.Mutex
	expvarMap     = map[string]*atomic.Pointer[Obs]{}
	expvarFuncMap = map[string]*atomic.Pointer[func() any]{}
)

// PublishExpvar exposes o's metrics snapshot as the expvar variable
// name (rendered as JSON by /debug/vars). Publishing a second Obs under
// the same name re-points the variable rather than panicking.
func PublishExpvar(name string, o *Obs) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	p, ok := expvarMap[name]
	if !ok {
		p = &atomic.Pointer[Obs]{}
		expvarMap[name] = p
		src := p
		expvar.Publish(name, expvar.Func(func() any {
			if o := src.Load(); o != nil {
				return o.Snapshot()
			}
			return nil
		}))
	}
	p.Store(o)
}

// PublishExpvarFunc exposes fn's return value as the expvar variable
// name, with the same re-point-on-republish semantics as PublishExpvar:
// publishing a second function under the same name swaps the source
// rather than panicking. Useful for documents assembled outside a single
// Obs — a sharded fleet's aggregate serving stats, say — where the
// underlying object is replaced across restarts and drains.
func PublishExpvarFunc(name string, fn func() any) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	p, ok := expvarFuncMap[name]
	if !ok {
		p = &atomic.Pointer[func() any]{}
		expvarFuncMap[name] = p
		src := p
		expvar.Publish(name, expvar.Func(func() any {
			if f := src.Load(); f != nil {
				return (*f)()
			}
			return nil
		}))
	}
	p.Store(&fn)
}
