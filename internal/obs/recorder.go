package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// EvKind classifies flight-recorder events. The vocabulary is the union
// of the runtime's scheduler decisions and lifecycle transitions, chosen
// so a recorded flight can be rendered in the explore trace format (see
// TraceText) and fed back through the systematic replayer.
type EvKind uint8

// Recorder event kinds.
const (
	EvSpawn    EvKind = iota // thread created
	EvDone                   // thread finished
	EvKill                   // thread killed
	EvSuspend                // thread suspended
	EvResume                 // thread resumed
	EvCondemn                // thread lost its last custodian
	EvYoke                   // thread yoked to another
	EvBreak                  // break delivered
	EvRunnable               // parked thread woken (commit wake)
	EvBlocked                // thread parked
	EvSync                   // rendezvous committed (arg: cases<<32 | chosen)
	EvAlarm                  // alarm fired
	EvShutdown               // custodian shut down (thread: custodian id, arg: swept threads)
)

func (k EvKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvDone:
		return "done"
	case EvKill:
		return "kill"
	case EvSuspend:
		return "suspend"
	case EvResume:
		return "resume"
	case EvCondemn:
		return "condemned"
	case EvYoke:
		return "yoke"
	case EvBreak:
		return "break"
	case EvRunnable:
		return "runnable"
	case EvBlocked:
		return "blocked"
	case EvSync:
		return "sync"
	case EvAlarm:
		return "alarm"
	case EvShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("ev(%d)", int(k))
}

// Event is one recorded scheduler event. Seq is the global write order;
// Thread is the subject thread's id (or the custodian id for
// EvShutdown); Arg carries the kind-specific payload.
type Event struct {
	Seq    uint64
	Kind   EvKind
	Thread int64
	Arg    int64
}

// slot is one ring entry. All fields are atomics: the writer stamps a
// per-slot sequence number around the payload (a seqlock), and readers
// discard slots whose sequence changed under them, so recording needs no
// lock even with concurrent writers (taps fire both under the runtime
// lock and, for gate-exit events, outside it).
type slot struct {
	seq    atomic.Uint64 // 0 = being written; otherwise writer's pos+1
	kind   atomic.Uint32
	thread atomic.Int64
	arg    atomic.Int64
}

// Recorder is a lock-free flight recorder: a fixed power-of-two ring of
// the most recent scheduler events. Writes are wait-free (one atomic
// fetch-add to claim a slot, four atomic stores to fill it); the ring
// overwrites oldest-first, so after any crash or on any demand the last
// N decisions that led here are available.
type Recorder struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // next write position (monotonic)
}

// DefaultRecorderSize is the ring capacity used when none is given.
const DefaultRecorderSize = 8192

// NewRecorder creates a recorder holding the most recent n events,
// rounded up to a power of two (minimum 16).
func NewRecorder(n int) *Recorder {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Recorder{slots: make([]slot, size), mask: uint64(size - 1)}
}

// record appends an event. Wait-free; safe from any goroutine.
func (r *Recorder) record(kind EvKind, thread, arg int64) {
	pos := r.pos.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.seq.Store(0) // invalidate for readers while the payload changes
	s.kind.Store(uint32(kind))
	s.thread.Store(thread)
	s.arg.Store(arg)
	s.seq.Store(pos + 1)
}

// Recorded reports the total number of events written (not capped by
// the ring size).
func (r *Recorder) Recorded() uint64 { return r.pos.Load() }

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Snapshot copies the ring's current contents, oldest first. Slots being
// concurrently rewritten (the seqlock moved under the read) are skipped;
// under a quiescent runtime the snapshot is exact.
func (r *Recorder) Snapshot() []Event {
	end := r.pos.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for pos := start; pos < end; pos++ {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if seq != pos+1 {
			continue // overwritten or mid-write; the event is lost
		}
		e := Event{
			Seq:    pos,
			Kind:   EvKind(s.kind.Load()),
			Thread: s.thread.Load(),
			Arg:    s.arg.Load(),
		}
		if s.seq.Load() != seq {
			continue
		}
		out = append(out, e)
	}
	return out
}

// SyncArg packs a rendezvous commit's shape into an event arg.
func SyncArg(cases, chosen int) int64 { return int64(cases)<<32 | int64(chosen) }

// SyncShape unpacks a SyncArg.
func SyncShape(arg int64) (cases, chosen int) {
	return int(arg >> 32), int(arg & 0xffffffff)
}

// TraceText renders the recorded flight in the explore trace format
// (killsafe-explore-trace 1): fault and wake events become action lines
// (k/s/u/b/r with the thread id, c for alarm fires), and everything the
// replay vocabulary cannot express — spawns, dones, rendezvous shapes,
// custodian shutdowns by runtime id — becomes '#' comment lines, which
// the decoder skips. The result parses with explore.DecodeTrace, and a
// lenient explore.Replay can drive a scenario with it, skipping decisions
// that are not available in the reconstructed world.
func (r *Recorder) TraceText(scenario string, seed int64) string {
	var sb strings.Builder
	sb.WriteString("killsafe-explore-trace 1\n")
	fmt.Fprintf(&sb, "scenario %s\n", scenario)
	fmt.Fprintf(&sb, "seed %d\n", seed)
	for _, e := range r.Snapshot() {
		switch e.Kind {
		case EvKill:
			fmt.Fprintf(&sb, "k %d\n", e.Thread)
		case EvSuspend:
			fmt.Fprintf(&sb, "s %d\n", e.Thread)
		case EvResume:
			fmt.Fprintf(&sb, "u %d\n", e.Thread)
		case EvBreak:
			fmt.Fprintf(&sb, "b %d\n", e.Thread)
		case EvRunnable:
			fmt.Fprintf(&sb, "r %d\n", e.Thread)
		case EvAlarm:
			sb.WriteString("c\n")
		case EvSync:
			cases, chosen := SyncShape(e.Arg)
			fmt.Fprintf(&sb, "# %d sync t%d cases=%d chosen=%d\n", e.Seq, e.Thread, cases, chosen)
		case EvShutdown:
			fmt.Fprintf(&sb, "# %d shutdown cust=%d swept=%d\n", e.Seq, e.Thread, e.Arg)
		default:
			fmt.Fprintf(&sb, "# %d %s t%d\n", e.Seq, e.Kind, e.Thread)
		}
	}
	return sb.String()
}
