package core

import "time"

// alarmEvt is an event that becomes ready at an absolute time.
type alarmEvt struct {
	rt *Runtime
	at time.Time
}

func (*alarmEvt) isEvent() {}

// AlarmAt returns an event that is ready (with Unit) at or after the
// absolute time at.
func AlarmAt(rt *Runtime, at time.Time) Event { return &alarmEvt{rt: rt, at: at} }

// After returns an event that is ready (with Unit) once d has elapsed from
// the moment the event is synced on (the timer starts at sync time, via a
// guard, like the paper's one-sec-timeout example). Time is Runtime.Now:
// the virtual clock in deterministic mode, the wall clock otherwise.
func After(rt *Runtime, d time.Duration) Event {
	return Guard(func(*Thread) Event {
		return AlarmAt(rt, rt.Now().Add(d))
	})
}

func (e *alarmEvt) poll(op *syncOp, idx int) bool {
	if e.rt.nowLocked().Before(e.at) {
		return false
	}
	commitOpLocked(op, idx, Unit{})
	return true
}

func (e *alarmEvt) register(w *waiter) {
	rt := e.rt
	if rt.det.Load() {
		// Deterministic mode: no real timer. The registration sits in the
		// runtime's virtual alarm list until the scheduler decides that
		// time passes (AdvanceToNextAlarm).
		rt.addAlarmLocked(w, e.at)
		return
	}
	// The timer callback can outlive the sync (Stop does not wait for an
	// in-flight callback), and waiter records are recycled; the captured
	// generation fences a stale callback off a reused record.
	gen := w.gen
	w.timer = time.AfterFunc(time.Until(e.at), func() {
		rt.mu.Lock()
		// If the thread is suspended this is a no-op; the waiter stays
		// in place and the resume path's re-poll sees the deadline has
		// passed.
		if w.gen == gen && commitSingleLocked(w, Unit{}) {
			if h := rt.hook(); h != nil {
				h.AlarmFire(w.op.th)
			}
		}
		rt.mu.Unlock()
	})
}

func (e *alarmEvt) unregister(*waiter) {}

// Sleep blocks the thread for d. It is a safe point: the sleep is
// interrupted by kill, extended by suspension, and aborted with ErrBreak
// by a break signal when breaks are enabled.
func Sleep(th *Thread, d time.Duration) error {
	_, err := Sync(th, After(th.rt, d))
	return err
}
