package core

import "time"

// alarmEvt is an event that becomes ready at an absolute time.
type alarmEvt struct {
	rt *Runtime
	at time.Time
}

func (*alarmEvt) isEvent() {}

// AlarmAt returns an event that is ready (with Unit) at or after the
// absolute time at.
func AlarmAt(rt *Runtime, at time.Time) Event { return &alarmEvt{rt: rt, at: at} }

// After returns an event that is ready (with Unit) once d has elapsed from
// the moment the event is synced on (the timer starts at sync time, via a
// guard, like the paper's one-sec-timeout example). Time is Runtime.Now:
// the virtual clock in deterministic mode, the wall clock otherwise.
func After(rt *Runtime, d time.Duration) Event {
	return Guard(func(*Thread) Event {
		return AlarmAt(rt, rt.Now().Add(d))
	})
}

func (e *alarmEvt) poll(op *syncOp, idx int) bool {
	if e.rt.now().Before(e.at) {
		return false
	}
	if !op.claim() {
		return false
	}
	finalizeCommit(op, idx, Unit{})
	return true
}

func (e *alarmEvt) enroll(w *waiter) bool {
	rt := e.rt
	// Re-check under no lock: an alarm has no wait queue of its own, and
	// unlike a rendezvous there is no lost-wakeup window to close — a
	// deadline that passes after this check is caught by the timer callback
	// (AfterFunc with a non-positive duration fires immediately) or, in
	// deterministic mode, by the next AdvanceToNextAlarm step.
	if !rt.now().Before(e.at) {
		return e.poll(w.op, w.idx)
	}
	if rt.det.Load() {
		// Deterministic mode: no real timer. The registration sits in the
		// runtime's virtual alarm list until the scheduler decides that
		// time passes (AdvanceToNextAlarm).
		rt.mu.Lock()
		rt.valarms = append(rt.valarms, valarm{
			op: w.op, idx: w.idx, w: w, at: e.at, gen: w.gen.Load(),
		})
		rt.mu.Unlock()
		return false
	}
	// The timer callback can outlive the sync (Stop does not wait for an
	// in-flight callback) and waiter records are recycled, so the callback
	// captures the op and generation now, on the owning goroutine, and
	// validates the generation twice: once before claiming (cheap filter)
	// and once after (the claim's CAS synchronizes with acquireOp's
	// opSyncing store, which is program-ordered after finish's gen bump on
	// the owner — so a stale callback that claims a recycled op is
	// guaranteed to observe the bumped generation and roll back).
	gen := w.gen.Load()
	op, idx := w.op, w.idx
	w.timer = time.AfterFunc(time.Until(e.at), func() {
		if w.gen.Load() != gen {
			return
		}
		if !op.claim() {
			return
		}
		if w.gen.Load() != gen {
			op.unclaim()
			return
		}
		// A suspended thread's alarm is a no-op here; the deadline has
		// passed, so the resume path's re-poll sees it ready.
		if !op.th.matchable.Load() {
			op.unclaim()
			return
		}
		th := op.th // snapshot: the op must not be touched post-commit
		finalizeCommit(op, idx, Unit{})
		if h := rt.hook(); h != nil {
			h.AlarmFire(th)
		}
	})
	return false
}

// cancel is a no-op: real timers are stopped by finish (which owns
// w.timer), and virtual registrations are invalidated by the generation
// bump in the same place.
func (e *alarmEvt) cancel(*waiter) {}

// Sleep blocks the thread for d. It is a safe point: the sleep is
// interrupted by kill, extended by suspension, and aborted with ErrBreak
// by a break signal when breaks are enabled.
func Sleep(th *Thread, d time.Duration) error {
	_, err := Sync(th, After(th.rt, d))
	return err
}
