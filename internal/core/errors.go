package core

import "errors"

// Errors returned by runtime operations.
var (
	// ErrBreak is returned from a blocking operation when a break signal
	// (see Thread.Break) is delivered to the thread while breaks are
	// enabled. It models MzScheme's asynchronous break exception.
	ErrBreak = errors.New("core: break signal")

	// ErrCustodianDead is returned when an operation requires a live
	// custodian but the custodian has been shut down.
	ErrCustodianDead = errors.New("core: custodian is shut down")

	// ErrRuntimeDown is returned when the runtime has been shut down.
	ErrRuntimeDown = errors.New("core: runtime is shut down")
)

// killSentinel is the panic value used to unwind a killed thread's stack.
// It never escapes the thread trampoline.
type killSentinel struct{ th *Thread }

// ThreadPanicError wraps a panic raised by user code running in a runtime
// thread. It is recorded on the thread and reported through Thread.Err.
type ThreadPanicError struct {
	Value any
	Stack []byte
}

func (e *ThreadPanicError) Error() string {
	return "core: thread panicked: " + panicString(e.Value)
}

func panicString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	default:
		return "non-string panic value"
	}
}
