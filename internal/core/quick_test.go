package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: wrap composes like function application — syncing on
// Wrap(Always(v), f) yields f(v), for arbitrary v and f drawn from a
// family of affine transforms.
func TestQuickWrapIsFunctionApplication(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(v, a, b int32) bool {
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			e := core.Wrap(core.Always(int64(v)), func(x core.Value) core.Value {
				return x.(int64)*int64(a) + int64(b)
			})
			got, err := core.Sync(th, e)
			ok = err == nil && got == int64(v)*int64(a)+int64(b)
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: choice of always-events yields one of their values,
// regardless of how many alternatives there are or where they sit.
func TestQuickChoiceYieldsAMember(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			evts := make([]core.Event, len(vals))
			members := map[int16]bool{}
			for i, v := range vals {
				evts[i] = core.Always(v)
				members[v] = true
			}
			got, err := core.Sync(th, core.Choice(evts...))
			ok = err == nil && members[got.(int16)]
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a rendezvous channel delivers exactly the multiset of sent
// values, each exactly once, for arbitrary payload batches.
func TestQuickChannelDeliversExactly(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(vals []uint8) bool {
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			ch := core.NewChan(rt)
			for _, v := range vals {
				v := v
				th.Spawn("sender", func(s *core.Thread) { _ = ch.Send(s, v) })
			}
			counts := map[uint8]int{}
			for range vals {
				v, err := ch.Recv(th)
				if err != nil {
					return
				}
				counts[v.(uint8)]++
			}
			want := map[uint8]int{}
			for _, v := range vals {
				want[v]++
			}
			if len(counts) != len(want) {
				return
			}
			for k, n := range want {
				if counts[k] != n {
					return
				}
			}
			ok = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore counts are conserved — after p posts and w ≤ p+init
// successful waits, the remaining count is init+p−w.
func TestQuickSemaphoreConservation(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(init, posts, waits uint8) bool {
		ini, p := int(init%16), int(posts%16)
		w := int(waits) % (ini + p + 1) // w ≤ init+posts
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			s := core.NewSemaphore(rt, ini)
			for i := 0; i < p; i++ {
				s.Post()
			}
			for i := 0; i < w; i++ {
				if err := s.Wait(th); err != nil {
					return
				}
			}
			ok = s.Count() == ini+p-w
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a thread's suspension state is exactly "no live custodian and
// not explicitly resumed" under arbitrary shutdown orders of a custodian
// set granted via ResumeWith.
func TestQuickCustodianSetSemantics(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	prop := func(order []uint8, size uint8) bool {
		n := int(size%4) + 1
		var ok bool
		_ = rt.Run(func(th *core.Thread) {
			custs := make([]*core.Custodian, n)
			for i := range custs {
				custs[i] = core.NewCustodian(rt.RootCustodian())
			}
			var w *core.Thread
			th.WithCustodian(custs[0], func() {
				w = th.Spawn("w", func(x *core.Thread) {
					for {
						if err := x.Checkpoint(); err != nil {
							return
						}
					}
				})
			})
			for _, c := range custs[1:] {
				core.ResumeWith(w, c)
			}
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			anyAlive := true
			for _, o := range order {
				i := int(o) % n
				custs[i].Shutdown()
				alive[i] = false
				anyAlive = false
				for _, a := range alive {
					anyAlive = anyAlive || a
				}
				if w.Suspended() == anyAlive {
					return // suspended iff no custodian alive
				}
			}
			w.Kill()
			ok = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
