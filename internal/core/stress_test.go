package core_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestStressOneEventObject aims every cancellation path the fine-grained
// design has at a single event object at once: many workers race choices of
// a nack-guarded receive, a send, and a short alarm on ONE channel, while a
// kill-storm shuts down their custodians and replaces them. Every way a
// waiter leaves the channel's queue is exercised concurrently — two-party
// commit (send meets recv), losing a choice to the alarm (cancel +
// nack fire), kill mid-wait (claimAbort + deregistration), and custodian
// suspension (matchable flip mid-match). Run under the race detector this
// is the sharpest probe of the claim protocol; the assertions are liveness
// (survivor operations keep committing through the storm) and nack
// bookkeeping (a nack-guarded case that loses fires its nack exactly once —
// counted fires never exceed losses and eventually match).
func TestStressOneEventObject(t *testing.T) {
	seed := chaosSeed(t)
	rt := core.NewRuntime()
	defer rt.Shutdown()

	ch := core.NewChanNamed(rt, "hot")
	const workers = 10
	const storms = 40

	var ops, nackCreated, nackFired atomic.Int64

	err := rt.Run(func(th *core.Thread) {
		var mu sync.Mutex // guards custs/threads against the storm loop
		custs := make([]*core.Custodian, workers)

		body := func(x *core.Thread) {
			lrng := rand.New(rand.NewSource(seed + int64(x.ID())))
			for {
				var ev core.Event
				switch lrng.Intn(3) {
				case 0:
					// Nack-guarded receive racing the alarm: when the alarm
					// wins, the receive's registration is cancelled and its
					// nack must fire.
					ev = core.Choice(
						core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
							nackCreated.Add(1)
							core.SpawnYoked(g, "nack-watch", func(w *core.Thread) {
								if _, err := core.Sync(w, nack); err == nil {
									nackFired.Add(1)
								}
							})
							return ch.RecvEvt()
						}),
						core.After(rt, time.Duration(lrng.Intn(200))*time.Microsecond),
					)
				case 1:
					ev = ch.SendEvt(core.Unit{})
				default:
					ev = core.Choice(
						ch.RecvEvt(),
						core.After(rt, time.Duration(lrng.Intn(200))*time.Microsecond),
					)
				}
				if _, err := core.Sync(x, ev); err != nil {
					return // stray break; workers are stormed, not broken
				}
				ops.Add(1)
			}
		}

		spawn := func(i int) {
			mu.Lock()
			defer mu.Unlock()
			custs[i] = core.NewCustodian(rt.RootCustodian())
			th.WithCustodian(custs[i], func() {
				th.Spawn("stress-worker", body)
			})
		}
		for i := range custs {
			spawn(i)
		}

		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < storms; s++ {
			if err := core.Sleep(th, time.Duration(1+rng.Intn(3))*time.Millisecond); err != nil {
				t.Errorf("storm sleep: %v", err)
				return
			}
			victim := rng.Intn(workers)
			mu.Lock()
			c := custs[victim]
			mu.Unlock()
			c.Shutdown()
			rt.TerminateCondemned()
			before := ops.Load()
			spawn(victim)
			// Liveness through the storm: survivors plus the replacement
			// keep committing on the hot channel.
			deadline := time.Now().Add(5 * time.Second)
			for ops.Load() == before {
				if time.Now().After(deadline) {
					t.Errorf("storm %d: no operation committed within 5s (ops=%d)", s, before)
					return
				}
				if err := core.Sleep(th, 100*time.Microsecond); err != nil {
					return
				}
			}
		}

		// Tear down the workers so every outstanding nack resolves: a
		// killed sync fires all its nacks, a committed one fires the
		// losers, and the winners' watchers unwind with their owners
		// (they are yoked to the worker's custodian).
		mu.Lock()
		for _, c := range custs {
			c.Shutdown()
		}
		mu.Unlock()
		rt.TerminateCondemned()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if ops.Load() == 0 {
		t.Fatal("no operations completed")
	}
	if created, fired := nackCreated.Load(), nackFired.Load(); fired > created {
		t.Fatalf("nack bookkeeping broken: %d fired > %d created", fired, created)
	}
	t.Logf("ops=%d nacks created=%d fired=%d", ops.Load(), nackCreated.Load(), nackFired.Load())
}

// TestChaosBooksBalance runs a randomized spawn/kill/exit storm with the
// observability layer attached and checks the books: every spawn is
// eventually accounted as exactly one done, kills never exceed dones, and
// live threads return to the baseline — i.e. spawns = exits + kills once
// the storm settles. Under the fine-grained runtime the taps fire from
// lock-free commit paths on many goroutines at once, so this doubles as a
// thread-safety check of the metrics counters under the race detector.
func TestChaosBooksBalance(t *testing.T) {
	seed := chaosSeed(t)
	rt := core.NewRuntime()
	defer rt.Shutdown()
	o := obs.New()
	o.Attach(rt)

	const rounds = 30
	err := rt.Run(func(th *core.Thread) {
		rng := rand.New(rand.NewSource(seed))
		sem := core.NewSemaphore(rt, 0)
		for r := 0; r < rounds; r++ {
			n := 2 + rng.Intn(6)
			c := core.NewCustodian(rt.RootCustodian())
			var live []*core.Thread
			th.WithCustodian(c, func() {
				for i := 0; i < n; i++ {
					exitEarly := rng.Intn(2) == 0
					live = append(live, th.Spawn("balance", func(x *core.Thread) {
						if exitEarly {
							return // a normal exit: books as done, not kill
						}
						_ = sem.Wait(x) // parks until killed
					}))
				}
			})
			if err := core.Sleep(th, time.Duration(rng.Intn(2000))*time.Microsecond); err != nil {
				t.Errorf("sleep: %v", err)
				return
			}
			if rng.Intn(2) == 0 {
				c.Shutdown()
				rt.TerminateCondemned()
			} else {
				for _, x := range live {
					x.Kill()
				}
			}
			for _, x := range live {
				if _, err := core.Sync(th, x.DoneEvt()); err != nil {
					t.Errorf("wait done: %v", err)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	s := o.Snapshot()
	if s.Spawns == 0 {
		t.Fatal("no spawns recorded")
	}
	if s.Exits+s.Kills != s.Dones {
		t.Fatalf("books do not balance: exits %d + kills %d != dones %d", s.Exits, s.Kills, s.Dones)
	}
	// Every storm thread was waited on; only the main thread (done after
	// Run returns, possibly not yet booked) may still be outstanding.
	if outstanding := s.Spawns - s.Dones; outstanding < 0 || outstanding > 1 {
		t.Fatalf("books do not balance: spawns %d vs dones %d (outstanding %d)",
			s.Spawns, s.Dones, outstanding)
	}
	t.Logf("books: spawns=%d dones=%d exits=%d kills=%d", s.Spawns, s.Dones, s.Exits, s.Kills)
}
