package core

import "sync/atomic"

// Instrumentation is the runtime's unified observer interface: one tap
// set covering scheduling, thread lifecycle, rendezvous commits,
// custodian teardown, and alarms. The
// deterministic explorer (internal/explore) implements it with
// Deterministic() == true and drives the runtime sequentially through
// the scheduler taps — and adds the passive taps that power the
// always-on metrics and flight-recorder layer (internal/obs), which
// implements it with Deterministic() == false and never influences
// scheduling.
//
// Cost contract: when no instrumentation is installed every tap site is
// a single atomic pointer load and a nil check, so the uninstrumented
// hot paths are unchanged (the single-event Sync fast path stays
// 0 allocs/op — fenced by TestSingleEventSyncAllocFree). Tap arguments
// are pointers and integers only; calling a tap never allocates.
//
// Locking contract: taps fire from the paths that produce them — some
// under the runtime bookkeeping lock (lifecycle, custodian shutdown),
// some from lock-free commit finalization, possibly with an event lock
// held (SyncCommit, Runnable, AlarmFire), and some from a bare thread
// goroutine (Blocked, Pause). A tap must not block and must not call
// back into the runtime; it may take the implementation's own lock,
// which is always innermost. Outside deterministic mode taps can fire
// concurrently from many goroutines, so a passive implementation must be
// thread-safe (internal/obs uses atomics and a seqlock); a deterministic
// scheduler serializes execution, so its taps arrive sequentially. Pause
// is where a deterministic scheduler blocks the thread until granted; a
// passive observer must return promptly.
type Instrumentation interface {
	// Scheduler taps — the surface a sequential scheduler drives.

	// Spawned reports a newly created thread. The thread is considered
	// runnable; its goroutine will reach a Pause call before touching
	// user code.
	Spawned(th *Thread)
	// Runnable reports that a parked thread may be able to proceed: its
	// sync committed or aborted, it was killed, broken, or resumed.
	// Every wake-up of a parked thread is preceded by a Runnable call
	// under the same critical section — in metrics terms, Runnable is
	// the commit-wake counter.
	Runnable(th *Thread)
	// Blocked reports that a thread is about to park on its condition
	// variable and cannot proceed until a Runnable call.
	Blocked(th *Thread)
	// Done reports that a thread finished (returned or unwound from a
	// kill).
	Done(th *Thread)
	// Pause is the safe point: called (without the runtime lock) each
	// time a thread passes a gate or wakes from a park. A deterministic
	// scheduler blocks the thread here until granted; a passive
	// observer just counts and returns.
	Pause(th *Thread)

	// Lifecycle reports a thread lifecycle transition that is not
	// covered by the scheduler taps: TraceKill, TraceSuspend,
	// TraceResume, TraceCondemned, TraceYoke, TraceBreak (and
	// TraceShutdown with a nil thread, which CustodianShutdown reports
	// with more detail). TraceSpawn and TraceDone are delivered through
	// Spawned and Done, not here.
	Lifecycle(kind TraceKind, th *Thread)

	// SyncCommit reports a committed rendezvous: th's in-flight sync
	// chose case chosen out of cases flattened alternatives. cases == 1
	// is the single-event fast path.
	SyncCommit(th *Thread, cases, chosen int)

	// CustodianShutdown reports a custodian shutdown: its creation-order
	// id and the number of threads it directly controlled at death.
	CustodianShutdown(id int64, threads int)

	// AlarmFire reports an alarm (real timer or virtual clock) waking a
	// parked sync waiter on th.
	AlarmFire(th *Thread)

	// Deterministic reports whether this instrumentation is a
	// sequential scheduler: installing a deterministic instrumentation
	// switches the runtime to deterministic mode (virtual clock, queued
	// External delivery, explicit grants).
	Deterministic() bool
}

// NopInstrumentation is a no-op Instrumentation for embedding:
// implementations override only the taps they care about.
type NopInstrumentation struct{}

func (NopInstrumentation) Spawned(*Thread)                  {}
func (NopInstrumentation) Runnable(*Thread)                 {}
func (NopInstrumentation) Blocked(*Thread)                  {}
func (NopInstrumentation) Done(*Thread)                     {}
func (NopInstrumentation) Pause(*Thread)                    {}
func (NopInstrumentation) Lifecycle(TraceKind, *Thread)     {}
func (NopInstrumentation) SyncCommit(*Thread, int, int)     {}
func (NopInstrumentation) CustodianShutdown(int64, int)     {}
func (NopInstrumentation) AlarmFire(*Thread)                {}
func (NopInstrumentation) Deterministic() bool              { return false }

// teeInstrumentation fans every tap out to two instrumentations, a is
// called first. Deterministic if either is (the usual composition is a
// deterministic controller plus a passive recorder).
type teeInstrumentation struct {
	a, b Instrumentation
}

// TeeInstrumentation composes two instrumentations: every tap reaches
// both, a first. It lets a passive observer (an *obs.Obs with its
// flight recorder) ride along with the deterministic explorer, so a
// systematic run can be recorded with the same vocabulary as a live
// server.
func TeeInstrumentation(a, b Instrumentation) Instrumentation {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &teeInstrumentation{a: a, b: b}
}

func (t *teeInstrumentation) Spawned(th *Thread)  { t.a.Spawned(th); t.b.Spawned(th) }
func (t *teeInstrumentation) Runnable(th *Thread) { t.a.Runnable(th); t.b.Runnable(th) }
func (t *teeInstrumentation) Blocked(th *Thread)  { t.a.Blocked(th); t.b.Blocked(th) }
func (t *teeInstrumentation) Done(th *Thread)     { t.a.Done(th); t.b.Done(th) }
func (t *teeInstrumentation) Pause(th *Thread)    { t.a.Pause(th); t.b.Pause(th) }
func (t *teeInstrumentation) Lifecycle(k TraceKind, th *Thread) {
	t.a.Lifecycle(k, th)
	t.b.Lifecycle(k, th)
}
func (t *teeInstrumentation) SyncCommit(th *Thread, cases, chosen int) {
	t.a.SyncCommit(th, cases, chosen)
	t.b.SyncCommit(th, cases, chosen)
}
func (t *teeInstrumentation) CustodianShutdown(id int64, threads int) {
	t.a.CustodianShutdown(id, threads)
	t.b.CustodianShutdown(id, threads)
}
func (t *teeInstrumentation) AlarmFire(th *Thread) { t.a.AlarmFire(th); t.b.AlarmFire(th) }
func (t *teeInstrumentation) Deterministic() bool {
	return t.a.Deterministic() || t.b.Deterministic()
}

// insBox wraps the interface value so it can be swapped atomically: the
// tap sites load it lock-free (gate and Pause run outside the runtime
// lock), which is what lets a passive instrumentation be installed on a
// live runtime.
type insBox struct{ i Instrumentation }

// hook returns the installed instrumentation, or nil. It is a single
// atomic load; every tap site guards with it so the uninstrumented path
// costs one predictable branch.
func (rt *Runtime) hook() Instrumentation {
	if b := rt.ins.Load(); b != nil {
		return b.i
	}
	return nil
}

// Instrumentation returns the currently installed instrumentation, or
// nil. internal/obs uses it to attach to (or reuse the attachment on) a
// runtime it did not create.
func (rt *Runtime) Instrumentation() Instrumentation { return rt.hook() }

// SetInstrumentation installs (or, with nil, removes) the runtime's
// instrumentation.
//
// A deterministic instrumentation (Deterministic() == true) switches
// the runtime to sequential deterministic mode — the virtual clock
// replaces the wall clock for alarms and External completions are
// queued for explicit delivery — and must be installed before any
// thread is created; so must its removal. A passive instrumentation
// (Deterministic() == false) may be installed or swapped at any time,
// including on a live serving runtime; taps begin flowing with the next
// event on each code path (installation is atomic, not synchronized
// with in-flight operations).
func (rt *Runtime) SetInstrumentation(i Instrumentation) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	det := i != nil && i.Deterministic()
	if det != rt.det.Load() && len(rt.threads) > 0 {
		panic("core: SetInstrumentation cannot change deterministic mode after threads were created")
	}
	if det {
		rt.vnow.Store(detEpoch.UnixNano())
	}
	rt.det.Store(det)
	if i == nil {
		rt.ins.Store(nil)
		return
	}
	rt.ins.Store(&insBox{i: i})
}

// Compile-time checks that the composable pieces satisfy the interface.
var (
	_ Instrumentation = NopInstrumentation{}
	_ Instrumentation = (*teeInstrumentation)(nil)
)

// atomicInsPointer is a type alias kept close to the insBox definition;
// the Runtime field uses it so runtime.go stays focused on scheduling
// state.
type atomicInsPointer = atomic.Pointer[insBox]
