package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, what string, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				if s, ok := r.(string); ok {
					msg = s
				} else {
					msg = "non-string panic"
				}
			}
		}()
		fn()
		t.Fatalf("%s: expected a panic, returned normally", what)
	}()
	return msg
}

// TestCrossRuntimeSyncPanics pins the sharding misuse guard: events built
// on one runtime's primitives must not be synced by another runtime's
// thread. Without the guard this corrupts both runtimes' state under
// different locks; with it, registration fails fast with a message that
// names the offending primitive.
func TestCrossRuntimeSyncPanics(t *testing.T) {
	other := core.NewRuntime()
	defer other.Shutdown()
	foreignChan := core.NewChan(other)
	foreignSem := core.NewSemaphore(other, 1)
	foreignExt := core.NewExternal(other)

	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		for _, tc := range []struct {
			name string
			evt  core.Event
		}{
			{"chan recv", foreignChan.RecvEvt()},
			{"chan send", foreignChan.SendEvt(1)},
			{"semaphore", foreignSem.WaitEvt()},
			{"external", foreignExt.Evt()},
		} {
			msg := mustPanic(t, tc.name, func() { _, _ = core.Sync(th, tc.evt) })
			if !strings.Contains(msg, "different runtime") {
				t.Fatalf("%s: panic %q should name the cross-runtime violation", tc.name, msg)
			}
		}

		// The guard sees through combinators: a foreign base buried in a
		// choice under wraps and guards is still caught at registration.
		wrapped := core.Choice(
			core.Wrap(core.Guard(func(*core.Thread) core.Event { return foreignChan.RecvEvt() }),
				func(v core.Value) core.Value { return v }),
			core.Always(1),
		)
		msg := mustPanic(t, "wrapped choice", func() { _, _ = core.Sync(th, wrapped) })
		if !strings.Contains(msg, "different runtime") {
			t.Fatalf("wrapped choice: panic %q should name the cross-runtime violation", msg)
		}

		// Runtime-agnostic events are exempt: Always carries no base.
		if v, err := core.Sync(th, core.Always("ok")); err != nil || v != "ok" {
			t.Fatalf("Always: (%v, %v)", v, err)
		}
	})
}

// TestCrossRuntimeCustodianPanics pins the spawn-side guard: a custodian
// belongs to one runtime's tree and cannot control threads of another.
func TestCrossRuntimeCustodianPanics(t *testing.T) {
	other := core.NewRuntime()
	defer other.Shutdown()
	foreign := core.NewCustodian(other.RootCustodian())

	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		msg := mustPanic(t, "SpawnIn", func() {
			rt.SpawnIn(foreign, "trespasser", func(*core.Thread) {})
		})
		if !strings.Contains(msg, "different runtime") {
			t.Fatalf("SpawnIn: panic %q should name the cross-runtime violation", msg)
		}
	})
}
