package core_test

import (
	"testing"

	"repro/internal/core"
)

// TestSingleEventSyncAllocFree is the regression fence for the rendezvous
// fast path: a single-event Sync against a ready semaphore must run out
// of the thread's pooled syncOp record — no per-sync heap allocation.
// (The pre-optimization path allocated the op, its case slice, a park
// closure, and rotation bookkeeping on every sync.)
func TestSingleEventSyncAllocFree(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sem := core.NewSemaphore(rt, 1)
		evt := sem.WaitEvt()
		sync1 := func() {
			if _, err := core.Sync(th, evt); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			sem.Post()
		}
		sync1() // warm the thread's op pool
		if n := testing.AllocsPerRun(100, sync1); n > 0 {
			t.Fatalf("single-event Sync allocates %.1f objects/op, want 0", n)
		}
	})
}

// TestChoiceSyncAllocBound fences the multi-way path too: a small choice
// over ready events must stay within the op's inline case/waiter buffers.
// The two allocations allowed are the Wrap result boxing and the choice's
// rotation-free poll bookkeeping headroom; the point is catching a
// regression back to unbounded per-case allocation, not zero.
func TestChoiceSyncAllocBound(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		sem := core.NewSemaphore(rt, 1)
		evt := core.Choice(
			sem.WaitEvt(),
			core.NewExternal(rt).Evt(), // never fires; registers and unregisters
		)
		syncN := func() {
			if _, err := core.Sync(th, evt); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			sem.Post()
		}
		syncN()
		if n := testing.AllocsPerRun(100, syncN); n > 2 {
			t.Fatalf("2-way choice Sync allocates %.1f objects/op, want <= 2", n)
		}
	})
}
