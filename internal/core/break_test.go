package core_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestBreakInterruptsBlockedSync(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		got := make(chan error, 1)
		w := th.Spawn("w", func(x *core.Thread) {
			_, err := core.Sync(x, c.RecvEvt())
			got <- err
		})
		time.Sleep(5 * time.Millisecond)
		w.Break()
		select {
		case err := <-got:
			if err != core.ErrBreak {
				t.Fatalf("err = %v, want ErrBreak", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("break did not interrupt sync")
		}
	})
}

func TestBreakDelayedWhileDisabled(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		phase := make(chan string, 2)
		w := th.Spawn("w", func(x *core.Thread) {
			x.WithBreaks(false, func() {
				// Break delivered here must be delayed.
				if err := core.Sleep(x, 20*time.Millisecond); err != nil {
					phase <- "interrupted-while-disabled"
					return
				}
				phase <- "slept"
			})
			// Breaks re-enabled: the delayed break is delivered at the
			// next blocking primitive.
			_, err := core.Sync(x, c.RecvEvt())
			if err == core.ErrBreak {
				phase <- "broke-after-enable"
			}
		})
		time.Sleep(5 * time.Millisecond)
		w.Break()
		if p := <-phase; p != "slept" {
			t.Fatalf("first phase = %q", p)
		}
		if p := <-phase; p != "broke-after-enable" {
			t.Fatalf("second phase = %q", p)
		}
	})
}

func TestSecondBreakWhilePendingHasNoEffect(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		done := make(chan int, 1)
		w := th.Spawn("w", func(x *core.Thread) {
			breaks := 0
			x.WithBreaks(false, func() {
				_ = core.Sleep(x, 20*time.Millisecond)
			})
			// Only one pending break can be delivered.
			for i := 0; i < 2; i++ {
				if err := x.Checkpoint(); err == core.ErrBreak {
					breaks++
				}
			}
			done <- breaks
		})
		time.Sleep(5 * time.Millisecond)
		w.Break()
		w.Break()
		w.Break()
		if n := <-done; n != 1 {
			t.Fatalf("delivered %d breaks, want 1", n)
		}
	})
}

func TestBreakDoesNotInterruptWrap(t *testing.T) {
	// Breaks are implicitly disabled from commit until the wrap
	// completes: the two-phase swap idiom relies on this.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		phase2 := make(chan error, 1)
		w := th.Spawn("w", func(x *core.Thread) {
			_, err := core.Sync(x, core.Wrap(c.RecvEvt(), func(v core.Value) core.Value {
				// Inside the wrap: a break delivered now must not
				// interrupt this blocking operation.
				phase2 <- core.Sleep(x, 20*time.Millisecond)
				return v
			}))
			if err != nil {
				t.Errorf("sync err: %v", err)
			}
		})
		if err := c.Send(th, 1); err != nil {
			t.Fatalf("send: %v", err)
		}
		w.Break() // lands during the wrap
		select {
		case err := <-phase2:
			if err != nil {
				t.Fatalf("wrap phase interrupted: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	})
}

func TestSyncEnableBreakXor(t *testing.T) {
	// Either the break is raised or an event is chosen, never both.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		for i := 0; i < 100; i++ {
			c := core.NewChan(rt)
			type outcome struct {
				chose bool
				broke bool
			}
			res := make(chan outcome, 1)
			w := th.Spawn("w", func(x *core.Thread) {
				x.WithBreaks(false, func() {
					v, err := core.SyncEnableBreak(x, c.RecvEvt())
					res <- outcome{chose: err == nil && v != nil, broke: err == core.ErrBreak}
				})
			})
			// Race a send against a break.
			th.Spawn("sender", func(s *core.Thread) { _ = c.Send(s, i+1) })
			w.Break()
			select {
			case o := <-res:
				if o.chose == o.broke {
					t.Fatalf("iteration %d: chose=%v broke=%v violates xor", i, o.chose, o.broke)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("timeout")
			}
		}
	})
}

func TestPlainSyncWithBreaksDisabledIgnoresBreak(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		got := make(chan core.Value, 1)
		w := th.Spawn("w", func(x *core.Thread) {
			x.WithBreaks(false, func() {
				v, err := core.Sync(x, c.RecvEvt())
				if err != nil {
					t.Errorf("sync: %v", err)
				}
				got <- v
			})
		})
		time.Sleep(5 * time.Millisecond)
		w.Break() // delayed: breaks disabled
		time.Sleep(5 * time.Millisecond)
		if err := c.Send(th, "v"); err != nil {
			t.Fatalf("send: %v", err)
		}
		select {
		case v := <-got:
			if v != "v" {
				t.Fatalf("got %v", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	})
}

// A break aimed at a breakable sync must never land on the sync that
// recycles the same op record with breaks disabled: Break re-verifies the
// record under a claim before storing the abort. This hammers the recycle
// window — a worker alternating an instantly-ready breakable sync with a
// no-break rendezvous on the same pooled record — and asserts ErrBreak
// never escapes the no-break region.
func TestBreakStormNeverInterruptsNoBreakRegion(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		const iters = 3000
		ping := core.NewChan(rt)
		var violations atomic.Int64
		done := make(chan struct{})
		th.Spawn("feeder", func(x *core.Thread) {
			for i := 0; i < iters; i++ {
				if err := ping.Send(x, i); err != nil {
					return
				}
			}
		})
		w := th.Spawn("w", func(x *core.Thread) {
			defer close(done)
			for i := 0; i < iters; i++ {
				// Breakable and instantly ready: consumes any pending break
				// and briefly publishes a breakable op record for Break to
				// stale-read before it is recycled below.
				_, _ = core.Sync(x, core.Always(nil))
				x.WithBreaks(false, func() {
					_, err := core.Sync(x, ping.RecvEvt())
					for err == core.ErrBreak {
						// An aborted recv consumed no send; retry so the
						// feeder's count stays aligned.
						violations.Add(1)
						_, err = core.Sync(x, ping.RecvEvt())
					}
				})
			}
		})
		go func() {
			for {
				select {
				case <-done:
					return
				default:
					w.Break()
					runtime.Gosched()
				}
			}
		}()
		<-done
		if n := violations.Load(); n != 0 {
			t.Fatalf("%d break(s) delivered inside a no-break region", n)
		}
	})
}

func TestPendingBreakDeliveredAtSyncEntry(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var wg atomic.Int64
		w := th.Spawn("w", func(x *core.Thread) {
			x.WithBreaks(false, func() {
				_ = core.Sleep(x, 15*time.Millisecond)
			})
			// Pending break must be raised at entry, before the
			// always-ready event can be chosen.
			_, err := core.Sync(x, core.Always(1))
			if err == core.ErrBreak {
				wg.Store(1)
			} else {
				wg.Store(2)
			}
		})
		time.Sleep(5 * time.Millisecond)
		w.Break()
		waitUntil(t, "outcome", func() bool { return wg.Load() != 0 })
		if wg.Load() != 1 {
			t.Fatal("pending break was not delivered at sync entry")
		}
	})
}
