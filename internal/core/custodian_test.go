package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

type fakeResource struct{ closed atomic.Bool }

func (r *fakeResource) Close() error { r.closed.Store(true); return nil }

func TestCustodianShutdownSuspendsThreads(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var progressed atomic.Int64
		var w *core.Thread
		th.WithCustodian(c, func() {
			w = th.Spawn("work", func(x *core.Thread) {
				for {
					if err := core.Sleep(x, time.Millisecond); err != nil {
						return
					}
					progressed.Add(1)
				}
			})
		})
		waitUntil(t, "progress", func() bool { return progressed.Load() > 2 })
		c.Shutdown()
		if !w.Suspended() {
			t.Fatal("thread not suspended by custodian shutdown")
		}
		before := progressed.Load()
		time.Sleep(20 * time.Millisecond)
		if after := progressed.Load(); after > before+1 {
			t.Fatalf("suspended thread progressed: %d -> %d", before, after)
		}
	})
}

func TestCustodianShutdownClosesResources(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		r := &fakeResource{}
		if err := c.Register(r); err != nil {
			t.Fatalf("register: %v", err)
		}
		c.Shutdown()
		if !r.closed.Load() {
			t.Fatal("resource not closed")
		}
		// Registering with a dead custodian closes immediately.
		r2 := &fakeResource{}
		if err := c.Register(r2); err != core.ErrCustodianDead {
			t.Fatalf("register on dead custodian: err=%v", err)
		}
		if !r2.closed.Load() {
			t.Fatal("resource registered to dead custodian not closed")
		}
	})
}

func TestCustodianUnregister(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		r := &fakeResource{}
		if err := c.Register(r); err != nil {
			t.Fatalf("register: %v", err)
		}
		c.Unregister(r)
		c.Shutdown()
		if r.closed.Load() {
			t.Fatal("unregistered resource was closed")
		}
	})
}

func TestCustodianShutdownPropagatesToChildren(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		parent := core.NewCustodian(rt.RootCustodian())
		child := core.NewCustodian(parent)
		grandchild := core.NewCustodian(child)
		r := &fakeResource{}
		if err := grandchild.Register(r); err != nil {
			t.Fatalf("register: %v", err)
		}
		var w *core.Thread
		th.WithCustodian(grandchild, func() {
			w = th.Spawn("deep", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		parent.Shutdown()
		if !child.Dead() || !grandchild.Dead() {
			t.Fatal("shutdown did not propagate to sub-custodians")
		}
		if !r.closed.Load() {
			t.Fatal("grandchild resource not closed")
		}
		if !w.Suspended() {
			t.Fatal("grandchild thread not suspended")
		}
	})
}

func TestNewCustodianUnderDeadParentIsDead(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		c.Shutdown()
		sub := core.NewCustodian(c)
		if !sub.Dead() {
			t.Fatal("sub-custodian of dead custodian is alive")
		}
	})
}

func TestShutdownIsIdempotent(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		c.Shutdown()
		c.Shutdown() // must not panic or re-close
		if !c.Dead() {
			t.Fatal("custodian not dead")
		}
	})
}

func TestThreadWithTwoCustodiansSurvivesOne(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		var w *core.Thread
		th.WithCustodian(c1, func() {
			w = th.Spawn("w", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		core.ResumeWith(w, c2)
		c1.Shutdown()
		if w.Suspended() {
			t.Fatal("thread with a second custodian was suspended")
		}
		c2.Shutdown()
		if !w.Suspended() {
			t.Fatal("thread not suspended after losing all custodians")
		}
	})
}

func TestThreadInheritsCurrentCustodian(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		inherited := make(chan *core.Custodian, 1)
		th.WithCustodian(c, func() {
			th.Spawn("child", func(x *core.Thread) {
				inherited <- x.CurrentCustodian()
			})
		})
		select {
		case got := <-inherited:
			if got != c {
				t.Fatal("child did not inherit the current custodian")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	})
}

func TestShutdownReliablyStopsWholeTask(t *testing.T) {
	// A task that spawns many threads and sub-custodians is stopped
	// entirely by shutting down its custodian (the lots-of-work example).
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var spawned atomic.Int64
		var work func(x *core.Thread)
		work = func(x *core.Thread) {
			if spawned.Add(1) < 20 {
				sub := core.NewCustodian(x.CurrentCustodian())
				x.WithCustodian(sub, func() {
					x.Spawn("more", work)
				})
				x.Spawn("more", work)
			}
			_ = core.Sleep(x, time.Hour)
		}
		th.WithCustodian(c, func() { th.Spawn("root-work", work) })
		waitUntil(t, "fan-out", func() bool { return spawned.Load() >= 20 })
		c.Shutdown()
		waitUntil(t, "all suspended", func() bool {
			return rt.SuspendedThreads() >= int(spawned.Load())
		})
		n := rt.TerminateCondemned()
		if n < 20 {
			t.Fatalf("terminated %d threads, want >= 20", n)
		}
	})
}

func TestRootCustodianShutdownViaRuntimeShutdown(t *testing.T) {
	rt := core.NewRuntime()
	var stopped atomic.Bool
	err := rt.Run(func(th *core.Thread) {
		th.Spawn("w", func(x *core.Thread) {
			_ = core.Sleep(x, time.Hour)
			stopped.Store(true)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rt.Shutdown()
	if rt.LiveThreads() != 0 {
		t.Fatalf("%d threads alive after Shutdown", rt.LiveThreads())
	}
}
