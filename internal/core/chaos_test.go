package core_test

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// chaosSeed returns the master seed for a randomized chaos run: the value
// of KILLSAFE_CHAOS_SEED if set, a fresh random seed otherwise. The seed
// is always logged so any failure can be reproduced by re-running with
// the env var set to the logged value.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("KILLSAFE_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("KILLSAFE_CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from KILLSAFE_CHAOS_SEED)", n)
		return n
	}
	n := time.Now().UnixNano()
	t.Logf("chaos seed %d (rerun with KILLSAFE_CHAOS_SEED=%d)", n, n)
	return n
}

// TestChaos hammers the sync engine with many threads doing randomized
// channel choices while a controller randomly suspends, resumes, breaks,
// and kills them. The assertions are global liveness (survivor operations
// keep completing) and clean teardown (every thread reapable, no deadlock
// under the runtime lock). This is the closest thing to a model-checking
// run the repository has; raise iterations with -count for soak testing.
func TestChaos(t *testing.T) {
	seed := chaosSeed(t)
	rt := core.NewRuntime()
	defer rt.Shutdown()

	const workers = 12
	var ops atomic.Int64
	chans := make([]*core.Chan, 4)
	for i := range chans {
		chans[i] = core.NewChanNamed(rt, "chaos")
	}

	err := rt.Run(func(th *core.Thread) {
		rng := rand.New(rand.NewSource(seed))
		threads := make([]*core.Thread, workers)
		custs := make([]*core.Custodian, workers)
		for i := range threads {
			i := i
			custs[i] = core.NewCustodian(rt.RootCustodian())
			th.WithCustodian(custs[i], func() {
				threads[i] = th.Spawn("chaos-worker", func(x *core.Thread) {
					lrng := rand.New(rand.NewSource(seed + int64(i) + 1))
					for {
						a := chans[lrng.Intn(len(chans))]
						b := chans[lrng.Intn(len(chans))]
						_, err := core.Sync(x, core.Choice(
							a.SendEvt(i),
							b.RecvEvt(),
							core.After(x.Runtime(), time.Duration(lrng.Intn(3)+1)*time.Millisecond),
						))
						if err != nil {
							// A break: fine, keep going.
							continue
						}
						ops.Add(1)
					}
				})
			})
		}

		// The controller phase: random control actions against random
		// workers, with liveness probes in between.
		deadline := time.Now().Add(2 * time.Second)
		lastOps := int64(0)
		for time.Now().Before(deadline) {
			victim := rng.Intn(workers)
			switch rng.Intn(10) {
			case 0:
				threads[victim].Suspend()
			case 1:
				core.Resume(threads[victim])
			case 2:
				threads[victim].Break()
			case 3:
				if rng.Intn(4) == 0 { // kills are rarer
					threads[victim].Kill()
				}
			case 4:
				if rng.Intn(8) == 0 {
					custs[victim].Shutdown()
				}
			default:
				// Resume everyone occasionally so global progress is
				// guaranteed for the probe below.
				if rng.Intn(3) == 0 {
					for j := range threads {
						core.ResumeWith(threads[j], rt.RootCustodian())
					}
				}
			}
			if err := core.Sleep(th, 2*time.Millisecond); err != nil {
				t.Errorf("controller sleep: %v", err)
				return
			}
			now := ops.Load()
			if now == lastOps {
				// No progress in this window; resume everyone and
				// require progress next window.
				for j := range threads {
					core.ResumeWith(threads[j], rt.RootCustodian())
				}
			}
			lastOps = now
		}

		// Teardown: every worker must be killable and reaped.
		for _, w := range threads {
			w.Kill()
		}
		for _, w := range threads {
			if _, err := core.Sync(th, core.Choice(
				w.DoneEvt(),
				core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "stuck" }),
			)); err != nil {
				t.Errorf("teardown sync: %v", err)
			}
			if !w.Done() {
				t.Errorf("worker %v not reaped after kill", w)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ops.Load() == 0 {
		t.Fatal("no operations completed during chaos")
	}
	t.Logf("chaos completed %d operations", ops.Load())
}

// TestChaosDeadEvtExactlyOnce pins the delivery contract the supervisor
// and the explorer's zero-leak checks rely on: a custodian's DeadEvt
// commits exactly once per waiting sync — no lost wakeup when the
// shutdown races the watcher's registration, no double commit when
// shutdowns are issued redundantly from concurrent goroutines or arrive
// transitively through a parent. Watchers are harassed with breaks and
// suspend/resume while a custodian tree is torn down in random order;
// every watcher must finish with its counter at exactly 1.
func TestChaosDeadEvtExactlyOnce(t *testing.T) {
	seed := chaosSeed(t)
	rt := core.NewRuntime()
	defer rt.Shutdown()

	const (
		parents         = 4
		watchersPerCust = 3
	)
	err := rt.Run(func(th *core.Thread) {
		rng := rand.New(rand.NewSource(seed))

		// A two-level tree: each parent has one nested child custodian,
		// so half the custodians die transitively when their parent does.
		var custs []*core.Custodian
		for i := 0; i < parents; i++ {
			p := core.NewCustodian(rt.RootCustodian())
			custs = append(custs, p, core.NewCustodian(p))
		}
		n := len(custs)

		// counts[0:n] are single-event watchers (watchersPerCust share a
		// slot via the atomic); counts[n:2n] are Choice watchers whose two
		// arms may both be dead by the time they commit.
		counts := make([]atomic.Int64, 2*n)
		var watchers []*core.Thread
		for i, c := range custs {
			i, c := i, c
			for w := 0; w < watchersPerCust; w++ {
				watchers = append(watchers, th.Spawn("dead-watcher", func(x *core.Thread) {
					for {
						if _, err := core.Sync(x, c.DeadEvt()); err != nil {
							continue // break mid-wait: re-sync, must not double-count
						}
						counts[i].Add(1)
						return
					}
				}))
			}
		}
		for i := range custs {
			i := i
			a, b := custs[i], custs[(i+3)%n]
			watchers = append(watchers, th.Spawn("dead-choice-watcher", func(x *core.Thread) {
				for {
					if _, err := core.Sync(x, core.Choice(a.DeadEvt(), b.DeadEvt())); err != nil {
						continue
					}
					counts[n+i].Add(1)
					return
				}
			}))
		}

		// Tear the tree down in random order, each shutdown issued twice
		// concurrently (Shutdown is idempotent), while watchers are broken
		// and suspended under the shutdowns' feet.
		var wg sync.WaitGroup
		for _, idx := range rng.Perm(n) {
			c := custs[idx]
			for k := 0; k < 2; k++ {
				wg.Add(1)
				go func() { defer wg.Done(); c.Shutdown() }()
			}
			for j := 0; j < 4; j++ {
				w := watchers[rng.Intn(len(watchers))]
				switch rng.Intn(3) {
				case 0:
					w.Break()
				case 1:
					w.Suspend()
				default:
					core.ResumeWith(w, rt.RootCustodian())
				}
			}
			if err := core.Sleep(th, time.Millisecond); err != nil {
				t.Errorf("controller sleep: %v", err)
				return
			}
		}
		wg.Wait()

		// Every custodian is now dead; resume any watcher the chaos left
		// suspended and require all of them to finish.
		for _, w := range watchers {
			core.ResumeWith(w, rt.RootCustodian())
		}
		for _, w := range watchers {
			v, err := core.Sync(th, core.Choice(
				w.DoneEvt(),
				core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "stuck" }),
			))
			if err != nil {
				t.Errorf("waiting for watcher: %v", err)
			} else if v == "stuck" {
				t.Errorf("watcher %v never observed its DeadEvt", w)
			}
		}
		for i := 0; i < n; i++ {
			if got := counts[i].Load(); got != watchersPerCust {
				t.Errorf("custodian %d: DeadEvt commits = %d, want exactly %d", i, got, watchersPerCust)
			}
		}
		for i := 0; i < n; i++ {
			if got := counts[n+i].Load(); got != 1 {
				t.Errorf("choice watcher %d: commits = %d, want exactly 1", i, got)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
