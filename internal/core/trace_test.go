package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
)

func kinds(events []core.TraceEvent) map[core.TraceKind]int {
	out := map[core.TraceKind]int{}
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

func TestTraceRecordsLifecycle(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	rt.EnableTracing()
	err := rt.Run(func(th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var w *core.Thread
		th.WithCustodian(c, func() {
			w = th.Spawn("worker", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		w.Suspend()
		core.Resume(w)
		mgr := th.Spawn("mgr", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		core.ResumeVia(mgr, w)
		w.Break()
		c.Shutdown()
		rt.TerminateCondemned()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := kinds(rt.TraceSnapshot())
	for _, want := range []core.TraceKind{
		core.TraceSpawn, core.TraceSuspend, core.TraceResume, core.TraceYoke,
		core.TraceBreak, core.TraceShutdown, core.TraceCondemned, core.TraceKill,
	} {
		if got[want] == 0 {
			t.Errorf("no %v event recorded; trace kinds: %v", want, got)
		}
	}
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *core.Thread) {
		th.Spawn("w", func(*core.Thread) {})
	})
	if n := len(rt.TraceSnapshot()); n != 0 {
		t.Fatalf("%d events recorded with tracing disabled", n)
	}
}

func TestTraceSequenceIsMonotonic(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	rt.EnableTracing()
	_ = rt.Run(func(th *core.Thread) {
		for i := 0; i < 20; i++ {
			w := th.Spawn("w", func(*core.Thread) {})
			if _, err := core.Sync(th, w.DoneEvt()); err != nil {
				t.Error(err)
			}
		}
	})
	events := rt.TraceSnapshot()
	if len(events) < 40 {
		t.Fatalf("only %d events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("sequence not monotonic at %d: %v then %v", i, events[i-1], events[i])
		}
	}
}

func TestTraceDisableDiscards(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	rt.EnableTracing()
	_ = rt.Run(func(th *core.Thread) { th.Spawn("w", func(*core.Thread) {}) })
	rt.DisableTracing()
	if n := len(rt.TraceSnapshot()); n != 0 {
		t.Fatalf("%d events after disable", n)
	}
}

func TestTraceEventString(t *testing.T) {
	e := core.TraceEvent{Kind: core.TraceKill, Thread: "w#3", Seq: 7}
	if s := e.String(); s != "[7] kill w#3" {
		t.Fatalf("String() = %q", s)
	}
	e = core.TraceEvent{Kind: core.TraceYoke, Thread: "a#1", Extra: "via thread(b#2)", Seq: 9}
	if s := e.String(); s != "[9] yoke a#1 (via thread(b#2))" {
		t.Fatalf("String() = %q", s)
	}
}
