package core

import "io"

// Custodian is a resource controller. Every thread and every registered
// resource is controlled by at least one custodian; shutting a custodian
// down suspends the threads it controls (a thread with several custodians
// is suspended only when all of them are shut down), closes its registered
// resources, shuts down its sub-custodians, and prevents further resource
// allocation under it.
type Custodian struct {
	rt       *Runtime
	id       int64 // creation order; deterministic-mode iteration key
	parent   *Custodian
	children map[*Custodian]struct{}
	threads  map[*Thread]struct{}
	closers  []io.Closer
	dead     bool

	// deadSig fires (with Unit) when the custodian is shut down; DeadEvt
	// is its event view. A custodian created dead fires it at birth.
	deadSig oneshot
}

// NewCustodian creates a sub-custodian of parent. Shutting down the parent
// shuts down the child. If parent is already dead, the new custodian is
// created dead.
func NewCustodian(parent *Custodian) *Custodian {
	rt := parent.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextCustID++
	c := &Custodian{
		rt:       rt,
		id:       rt.nextCustID,
		parent:   parent,
		children: make(map[*Custodian]struct{}),
		threads:  make(map[*Thread]struct{}),
	}
	if parent.dead {
		c.dead = true
		c.deadSig.fire(Unit{})
	} else {
		parent.children[c] = struct{}{}
	}
	return c
}

// Runtime returns the runtime that owns the custodian.
func (c *Custodian) Runtime() *Runtime { return c.rt }

// Dead reports whether the custodian has been shut down.
func (c *Custodian) Dead() bool {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return c.dead
}

// Register places a closable resource under the custodian's control: it
// will be closed when the custodian is shut down. Registering a resource
// with a dead custodian closes it immediately and returns ErrCustodianDead.
// The Close method must not call back into the runtime.
func (c *Custodian) Register(r io.Closer) error {
	c.rt.mu.Lock()
	if c.dead {
		c.rt.mu.Unlock()
		_ = r.Close()
		return ErrCustodianDead
	}
	c.closers = append(c.closers, r)
	c.rt.mu.Unlock()
	return nil
}

// Unregister removes a previously registered resource without closing it.
func (c *Custodian) Unregister(r io.Closer) {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	for i, x := range c.closers {
		if x == r {
			c.closers = append(c.closers[:i], c.closers[i+1:]...)
			return
		}
	}
}

// Shutdown shuts the custodian down: all controlled threads lose this
// custodian (threads left with no live custodian become suspended), all
// registered resources are closed, all sub-custodians are shut down, and
// no further resources can be allocated under it. Shutting down a dead
// custodian has no effect.
//
// Per the paper, shutdown suspends rather than kills threads: a suspended
// thread is "only mostly dead" and a surviving task that shares an
// abstraction with it can resurrect the abstraction's manager thread via
// ResumeVia. Use Runtime.TerminateCondemned to model the eventual
// collection of threads nobody can revive.
func (c *Custodian) Shutdown() {
	c.rt.mu.Lock()
	closers := c.shutdownLocked(nil)
	c.rt.mu.Unlock()
	// Close resources outside the runtime lock; closers must not call
	// back into the runtime, but they may do I/O.
	for _, r := range closers {
		_ = r.Close()
	}
}

func (c *Custodian) shutdownLocked(closers []io.Closer) []io.Closer {
	if c.dead {
		return closers
	}
	c.dead = true
	c.rt.traceBufLocked(TraceShutdown, nil, "custodian")
	if h := c.rt.hook(); h != nil {
		h.CustodianShutdown(c.id, len(c.threads))
	}
	c.deadSig.fire(Unit{})
	if c.parent != nil {
		delete(c.parent.children, c)
	}
	for th := range c.threads {
		delete(th.custodians, c)
		// A thread that just lost its last custodian is now suspended. The
		// cached matchable flag must be recomputed here — it is what peers
		// consult, without rt.mu, before committing a rendezvous with this
		// thread. No wake: the thread itself has nothing to do about
		// becoming unmatchable (a parked sync stays parked; peers skip it),
		// and the resume path re-wakes it.
		th.updateMatchableLocked()
		if len(th.custodians) == 0 {
			c.rt.traceLocked(TraceCondemned, th, "")
		}
	}
	clear(c.threads)
	closers = append(closers, c.closers...)
	c.closers = nil
	if c.rt.det.Load() {
		// Child shutdowns fire dead-event commits; order them by id so
		// deterministic runs do not depend on map iteration order.
		for _, child := range sortedCustodians(c.children) {
			closers = child.shutdownLocked(closers)
		}
	} else {
		for child := range c.children {
			closers = child.shutdownLocked(closers)
		}
	}
	clear(c.children)
	return closers
}

// DeadEvt returns an event that becomes ready (with Unit) when the
// custodian is shut down; it is ready immediately for a custodian that is
// already dead. Like a nack signal it is level-triggered: once the
// custodian dies the event stays ready forever. Watchdog threads use it
// to observe an administrator's custodian shutdown promptly — e.g. to
// close the terminated session's half of a shared stream — without
// polling, and without requiring the dying threads to cooperate.
func (c *Custodian) DeadEvt() Event { return &custodianDeadEvt{c: c} }

type custodianDeadEvt struct {
	c *Custodian
}

func (*custodianDeadEvt) isEvent() {}

func (e *custodianDeadEvt) poll(op *syncOp, idx int) bool { return e.c.deadSig.poll(op, idx) }
func (e *custodianDeadEvt) enroll(w *waiter) bool         { return e.c.deadSig.enroll(w) }
func (e *custodianDeadEvt) cancel(w *waiter)              { e.c.deadSig.cancel(w) }

// ManagedThreads returns the number of live threads directly controlled by
// the custodian.
func (c *Custodian) ManagedThreads() int {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return len(c.threads)
}

// Subcustodians returns the number of live direct sub-custodians.
func (c *Custodian) Subcustodians() int {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return len(c.children)
}

// CustodianInfo is a point-in-time description of one live custodian,
// for the observability surface.
type CustodianInfo struct {
	ID       int64 `json:"id"`
	Parent   int64 `json:"parent"` // 0 for the root custodian
	Threads  int   `json:"threads"`
	Children int   `json:"children"`
	Closers  int   `json:"closers"`
}

// CustodianSnapshot walks the live custodian tree from the root and
// returns one entry per custodian, parents before children, siblings in
// creation order. It is the per-custodian live-thread gauge behind the
// admin surface: gauges are read from the runtime's own accounting, not
// from derived counters.
func (rt *Runtime) CustodianSnapshot() []CustodianInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []CustodianInfo
	var walk func(c *Custodian, parent int64)
	walk = func(c *Custodian, parent int64) {
		out = append(out, CustodianInfo{
			ID:       c.id,
			Parent:   parent,
			Threads:  len(c.threads),
			Children: len(c.children),
			Closers:  len(c.closers),
		})
		for _, child := range sortedCustodians(c.children) {
			walk(child, c.id)
		}
	}
	walk(rt.root, 0)
	return out
}
