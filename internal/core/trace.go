package core

import "fmt"

// TraceKind classifies runtime lifecycle events.
type TraceKind int

// Trace event kinds.
const (
	TraceSpawn     TraceKind = iota // thread created
	TraceDone                       // thread finished (returned or killed)
	TraceKill                       // thread killed
	TraceSuspend                    // thread explicitly suspended
	TraceResume                     // thread resumed
	TraceCondemned                  // thread lost its last custodian
	TraceShutdown                   // custodian shut down
	TraceYoke                       // thread yoked to another (ResumeVia/SpawnYoked)
	TraceBreak                      // break signal delivered to a thread
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceDone:
		return "done"
	case TraceKill:
		return "kill"
	case TraceSuspend:
		return "suspend"
	case TraceResume:
		return "resume"
	case TraceCondemned:
		return "condemned"
	case TraceShutdown:
		return "shutdown"
	case TraceYoke:
		return "yoke"
	case TraceBreak:
		return "break"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TraceEvent is one recorded lifecycle transition.
type TraceEvent struct {
	Kind   TraceKind
	Thread string // thread name#id, if the event concerns a thread
	Extra  string // secondary party (yoke target, custodian note)
	Seq    uint64 // monotonically increasing per runtime
}

func (e TraceEvent) String() string {
	if e.Extra != "" {
		return fmt.Sprintf("[%d] %s %s (%s)", e.Seq, e.Kind, e.Thread, e.Extra)
	}
	return fmt.Sprintf("[%d] %s %s", e.Seq, e.Kind, e.Thread)
}

// traceBuf is a fixed-capacity ring of recent events, recorded under the
// runtime lock; reading takes a snapshot. Tracing costs nothing when
// disabled.
type traceBuf struct {
	events []TraceEvent
	next   int
	full   bool
	seq    uint64
}

const traceCapacity = 4096

// EnableTracing turns on lifecycle tracing, keeping the most recent
// events (up to an internal capacity) for inspection via TraceSnapshot.
func (rt *Runtime) EnableTracing() {
	rt.mu.Lock()
	if rt.trace == nil {
		rt.trace = &traceBuf{events: make([]TraceEvent, traceCapacity)}
	}
	rt.mu.Unlock()
}

// DisableTracing turns tracing off and discards recorded events.
func (rt *Runtime) DisableTracing() {
	rt.mu.Lock()
	rt.trace = nil
	rt.mu.Unlock()
}

// TraceSnapshot returns the recorded events, oldest first.
func (rt *Runtime) TraceSnapshot() []TraceEvent {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tb := rt.trace
	if tb == nil {
		return nil
	}
	var out []TraceEvent
	if tb.full {
		out = append(out, tb.events[tb.next:]...)
	}
	out = append(out, tb.events[:tb.next]...)
	return out
}

// traceLocked delivers a lifecycle transition to the installed
// instrumentation's Lifecycle tap and records it in the trace buffer if
// tracing is enabled. Caller holds rt.mu. Spawn/done transitions go
// through traceBufLocked instead: the instrumentation already receives
// them via the dedicated Spawned/Done taps.
func (rt *Runtime) traceLocked(kind TraceKind, th *Thread, extra string) {
	if h := rt.hook(); h != nil {
		h.Lifecycle(kind, th)
	}
	rt.traceBufLocked(kind, th, extra)
}

// traceBufLocked records an event if tracing is enabled. Caller holds rt.mu.
func (rt *Runtime) traceBufLocked(kind TraceKind, th *Thread, extra string) {
	tb := rt.trace
	if tb == nil {
		return
	}
	tb.seq++
	name := ""
	if th != nil {
		name = fmt.Sprintf("%s#%d", th.name, th.id)
	}
	tb.events[tb.next] = TraceEvent{Kind: kind, Thread: name, Extra: extra, Seq: tb.seq}
	tb.next++
	if tb.next == len(tb.events) {
		tb.next = 0
		tb.full = true
	}
}
