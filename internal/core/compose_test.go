package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestChoiceOfChoicesFlattens(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		th.Spawn("sender", func(s *core.Thread) { _ = c.Send(s, "deep") })
		ev := core.Choice(
			core.Choice(core.Never(), core.Choice(core.Never(), c.RecvEvt())),
			core.Never(),
		)
		v, err := core.Sync(th, ev)
		if err != nil || v != "deep" {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestWrapAroundChoiceAppliesToWinner(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewChan(rt)
		c2 := core.NewChan(rt)
		th.Spawn("s", func(s *core.Thread) { _ = c2.Send(s, 5) })
		ev := core.Wrap(
			core.Choice(c1.RecvEvt(), c2.RecvEvt()),
			func(v core.Value) core.Value { return v.(int) * 10 },
		)
		v, err := core.Sync(th, ev)
		if err != nil || v != 50 {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestGuardInsideNackGuard(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var guardRan, nackFired atomic.Bool
		ev := core.Choice(
			core.Always("fast"),
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				g.Spawn("w", func(w *core.Thread) {
					if _, err := core.Sync(w, nack); err == nil {
						nackFired.Store(true)
					}
				})
				return core.Guard(func(*core.Thread) core.Event {
					guardRan.Store(true)
					return core.Never()
				})
			}),
		)
		v, err := core.Sync(th, ev)
		if err != nil || v != "fast" {
			t.Fatalf("(%v, %v)", v, err)
		}
		if !guardRan.Load() {
			t.Fatal("inner guard did not run")
		}
		waitUntil(t, "nack", nackFired.Load)
	})
}

func TestNackGuardInsideGuard(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var nackFired atomic.Bool
		ev := core.Choice(
			core.Always(1),
			core.Guard(func(*core.Thread) core.Event {
				return core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
					g.Spawn("w", func(w *core.Thread) {
						if _, err := core.Sync(w, nack); err == nil {
							nackFired.Store(true)
						}
					})
					return core.Never()
				})
			}),
		)
		if _, err := core.Sync(th, ev); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "nested nack", nackFired.Load)
	})
}

func TestWrapWithThreadCanBlock(t *testing.T) {
	// The two-phase idiom: the wrap body performs a second, committed
	// communication using the syncing thread.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		phase1 := core.NewChan(rt)
		phase2 := core.NewChan(rt)
		th.Spawn("peer", func(s *core.Thread) {
			_ = phase1.Send(s, "p1")
			v, err := phase2.Recv(s)
			if err != nil || v != "p2" {
				t.Errorf("peer phase2: (%v, %v)", v, err)
			}
		})
		ev := core.WrapWithThread(phase1.RecvEvt(), func(x *core.Thread, v core.Value) core.Value {
			if err := phase2.Send(x, "p2"); err != nil {
				t.Errorf("wrap send: %v", err)
			}
			return v
		})
		v, err := core.Sync(th, ev)
		if err != nil || v != "p1" {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

func TestChoiceMixedBaseKinds(t *testing.T) {
	// One choice over a channel, a semaphore, an alarm, and a done event.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ch := core.NewChan(rt)
		sem := core.NewSemaphore(rt, 0)
		worker := th.Spawn("worker", func(x *core.Thread) {
			_ = core.Sleep(x, 2*time.Millisecond)
		})
		mk := func() core.Event {
			return core.Choice(
				core.Wrap(ch.RecvEvt(), func(core.Value) core.Value { return "chan" }),
				core.Wrap(sem.WaitEvt(), func(core.Value) core.Value { return "sem" }),
				core.Wrap(worker.DoneEvt(), func(core.Value) core.Value { return "done" }),
				core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "alarm" }),
			)
		}
		// First: the worker finishes.
		v, err := core.Sync(th, mk())
		if err != nil || v != "done" {
			t.Fatalf("(%v, %v)", v, err)
		}
		// Then: post the semaphore; done stays ready too, so accept
		// either of the two ready alternatives, then force the other.
		sem.Post()
		seen := map[any]bool{}
		for i := 0; i < 30 && (!seen["sem"] || !seen["done"]); i++ {
			v, err := core.Sync(th, mk())
			if err != nil {
				t.Fatal(err)
			}
			if v == "sem" && !seen["sem"] {
				seen["sem"] = true
				sem.Post() // keep it ready for fairness sampling
			}
			seen[v.(string)] = true
		}
		if !seen["sem"] || !seen["done"] {
			t.Fatalf("fair choice never picked both ready kinds: %v", seen)
		}
	})
}

func TestSyncOnNeverOnlyIsKillable(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		w := th.Spawn("stuck", func(x *core.Thread) {
			_, _ = core.Sync(x, core.Never())
			t.Error("sync on never returned")
		})
		time.Sleep(5 * time.Millisecond)
		w.Kill()
		if _, err := core.Sync(th, w.DoneEvt()); err != nil {
			t.Fatal(err)
		}
	})
}

func TestManyWaitersOneSender(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		const waiters = 20
		got := make(chan core.Value, waiters)
		for i := 0; i < waiters; i++ {
			th.Spawn("waiter", func(x *core.Thread) {
				v, err := c.Recv(x)
				if err == nil {
					got <- v
				}
			})
		}
		time.Sleep(5 * time.Millisecond)
		if err := c.Send(th, "one"); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("no waiter received")
		}
		select {
		case v := <-got:
			t.Fatalf("second waiter received %v from a single send", v)
		case <-time.After(20 * time.Millisecond):
		}
	})
}

func TestAlwaysInChoiceWithBlockedChannel(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		for i := 0; i < 50; i++ {
			v, err := core.Sync(th, core.Choice(c.RecvEvt(), core.Always("now")))
			if err != nil || v != "now" {
				t.Fatalf("(%v, %v)", v, err)
			}
		}
	})
}
