package core

import "sync"

// Chan is a synchronous (rendezvous) channel, the runtime's primitive
// synchronization abstraction. A send and a receive commit simultaneously
// and exchange one value; neither completes without the other. The
// built-in channel is kill-safe: terminating the task on one end does not
// endanger the task on the other end.
//
// Each channel owns its waiter queues under its own mutex: two threads
// rendezvousing on different channels never touch a shared lock. The
// two-party commit itself runs on the op claim protocol (see sync.go) —
// both ops are claimed in thread-id order, validated, and finalized —
// so the channel lock serializes only queue access on this channel, not
// the commit.
//
// A channel's only purpose is to generate events; SendEvt and RecvEvt are
// the primitives, and Send/Recv are Sync shorthands.
type Chan struct {
	rt   *Runtime
	name string

	mu    sync.Mutex
	sendw waitq
	recvw waitq
}

// NewChan creates a channel.
func NewChan(rt *Runtime) *Chan { return &Chan{rt: rt} }

// NewChanNamed creates a channel with a diagnostic name.
func NewChanNamed(rt *Runtime, name string) *Chan { return &Chan{rt: rt, name: name} }

type chanSendEvt struct {
	ch *Chan
	v  Value
}

type chanRecvEvt struct {
	ch *Chan
}

func (*chanSendEvt) isEvent() {}
func (*chanRecvEvt) isEvent() {}

// SendEvt returns an event that is ready when a receiver can accept v
// simultaneously; its value is Unit.
func (c *Chan) SendEvt(v Value) Event { return &chanSendEvt{ch: c, v: v} }

// RecvEvt returns an event that is ready when a sender can provide a value
// simultaneously; its value is the value sent.
func (c *Chan) RecvEvt() Event { return &chanRecvEvt{ch: c} }

// Send performs Sync on SendEvt.
func (c *Chan) Send(th *Thread, v Value) error {
	_, err := Sync(th, c.SendEvt(v))
	return err
}

// Recv performs Sync on RecvEvt.
func (c *Chan) Recv(th *Thread) (Value, error) {
	return Sync(th, c.RecvEvt())
}

// match scans q (the opposite direction's waiter queue) for the first peer
// that can commit against op right now and, on success, performs the
// two-party commit: the receiver's op gets the transferred value, the
// sender's op gets Unit. Caller holds c.mu.
//
// Both ops are claimed in thread-id order; a transiently claimed op is
// spun out inside claim (see sync.go for why skipping would lose a
// rendezvous and why the id order makes the spin deadlock-free). It
// returns committed == true if op was committed here, and decided == true
// if op was found already decided (terminal) — the caller's sync loop
// observes the outcome.
func match(q *waitq, op *syncOp, idx int, recvVal func(peer *waiter) (toPeer, toSelf Value)) (committed, decided bool) {
	q.visit(func(w *waiter) (drop, cont bool) {
		if w.op == op {
			return false, true // self-pairing within one choice
		}
		if s := w.op.state.Load(); s != opSyncing && s != opClaimed {
			return true, true // spent registration; clear the slot
		}
		first, second := op, w.op
		if w.op.th.id < op.th.id {
			first, second = w.op, op
		}
		if !first.claim() {
			if first == op {
				decided = true
				return false, false
			}
			return true, true // peer reached a terminal state; drop it
		}
		if !second.claim() {
			first.unclaim()
			if second == op {
				decided = true
				return false, false
			}
			return true, true
		}
		if !w.op.th.matchable.Load() {
			// Suspended peer: leave it registered (the resume path
			// re-polls it) and keep scanning.
			second.unclaim()
			first.unclaim()
			return false, true
		}
		toPeer, toSelf := recvVal(w)
		commitPair(w.op, w.idx, toPeer, op, idx, toSelf)
		committed = true
		return true, false
	})
	return committed, decided
}

func (e *chanSendEvt) poll(op *syncOp, idx int) bool {
	e.ch.mu.Lock()
	committed, _ := e.matchLocked(op, idx)
	e.ch.mu.Unlock()
	return committed
}

func (e *chanSendEvt) matchLocked(op *syncOp, idx int) (bool, bool) {
	return match(&e.ch.recvw, op, idx, func(*waiter) (Value, Value) {
		return e.v, Unit{}
	})
}

func (e *chanSendEvt) enroll(w *waiter) bool {
	e.ch.mu.Lock()
	committed, decided := e.matchLocked(w.op, w.idx)
	if !committed && !decided {
		e.ch.sendw.enqueue(w)
	}
	e.ch.mu.Unlock()
	return committed
}

func (e *chanSendEvt) cancel(w *waiter) {
	e.ch.mu.Lock()
	e.ch.sendw.cancel(w)
	e.ch.mu.Unlock()
}

func (e *chanRecvEvt) poll(op *syncOp, idx int) bool {
	e.ch.mu.Lock()
	committed, _ := e.matchLocked(op, idx)
	e.ch.mu.Unlock()
	return committed
}

func (e *chanRecvEvt) matchLocked(op *syncOp, idx int) (bool, bool) {
	return match(&e.ch.sendw, op, idx, func(peer *waiter) (Value, Value) {
		return Unit{}, peer.base.(*chanSendEvt).v
	})
}

func (e *chanRecvEvt) enroll(w *waiter) bool {
	e.ch.mu.Lock()
	committed, decided := e.matchLocked(w.op, w.idx)
	if !committed && !decided {
		e.ch.recvw.enqueue(w)
	}
	e.ch.mu.Unlock()
	return committed
}

func (e *chanRecvEvt) cancel(w *waiter) {
	e.ch.mu.Lock()
	e.ch.recvw.cancel(w)
	e.ch.mu.Unlock()
}

// doneEvt is the base event behind Thread.DoneEvt, backed by the thread's
// one-shot done signal.
type doneEvt struct {
	th *Thread
}

func (*doneEvt) isEvent() {}

func (e *doneEvt) poll(op *syncOp, idx int) bool { return e.th.doneSig.poll(op, idx) }
func (e *doneEvt) enroll(w *waiter) bool         { return e.th.doneSig.enroll(w) }
func (e *doneEvt) cancel(w *waiter)              { e.th.doneSig.cancel(w) }
