package core

// Chan is a synchronous (rendezvous) channel, the runtime's primitive
// synchronization abstraction. A send and a receive commit simultaneously
// and exchange one value; neither completes without the other. The
// built-in channel is kill-safe: terminating the task on one end does not
// endanger the task on the other end.
//
// A channel's only purpose is to generate events; SendEvt and RecvEvt are
// the primitives, and Send/Recv are Sync shorthands.
type Chan struct {
	rt    *Runtime
	name  string
	sendq []*waiter
	recvq []*waiter
}

// NewChan creates a channel.
func NewChan(rt *Runtime) *Chan { return &Chan{rt: rt} }

// NewChanNamed creates a channel with a diagnostic name.
func NewChanNamed(rt *Runtime, name string) *Chan { return &Chan{rt: rt, name: name} }

type chanSendEvt struct {
	ch *Chan
	v  Value
}

type chanRecvEvt struct {
	ch *Chan
}

func (*chanSendEvt) isEvent() {}
func (*chanRecvEvt) isEvent() {}

// SendEvt returns an event that is ready when a receiver can accept v
// simultaneously; its value is Unit.
func (c *Chan) SendEvt(v Value) Event { return &chanSendEvt{ch: c, v: v} }

// RecvEvt returns an event that is ready when a sender can provide a value
// simultaneously; its value is the value sent.
func (c *Chan) RecvEvt() Event { return &chanRecvEvt{ch: c} }

// Send performs Sync on SendEvt.
func (c *Chan) Send(th *Thread, v Value) error {
	_, err := Sync(th, c.SendEvt(v))
	return err
}

// Recv performs Sync on RecvEvt.
func (c *Chan) Recv(th *Thread) (Value, error) {
	return Sync(th, c.RecvEvt())
}

// compact drops removed waiters from q in place.
func compact(q []*waiter) []*waiter {
	out := q[:0]
	for _, w := range q {
		if !w.removed {
			out = append(out, w)
		}
	}
	return out
}

// findPeer scans a waiter queue for the first entry that can commit
// against op right now. Caller holds rt.mu.
func findPeer(q []*waiter, op *syncOp) *waiter {
	for _, w := range q {
		if w.removed || w.op == op || w.op.state != opSyncing {
			continue
		}
		if !w.op.th.canCommitLocked() {
			continue
		}
		return w
	}
	return nil
}

func (e *chanSendEvt) poll(op *syncOp, idx int) bool {
	e.ch.recvq = compact(e.ch.recvq)
	peer := findPeer(e.ch.recvq, op)
	if peer == nil {
		return false
	}
	// Two-party commit: receiver gets the value, sender gets Unit.
	commitOpLocked(peer.op, peer.idx, e.v)
	commitOpLocked(op, idx, Unit{})
	return true
}

func (e *chanSendEvt) register(w *waiter) {
	e.ch.sendq = append(e.ch.sendq, w)
}

func (e *chanSendEvt) unregister(*waiter) {
	e.ch.sendq = compact(e.ch.sendq)
}

func (e *chanRecvEvt) poll(op *syncOp, idx int) bool {
	e.ch.sendq = compact(e.ch.sendq)
	peer := findPeer(e.ch.sendq, op)
	if peer == nil {
		return false
	}
	v := peer.base.(*chanSendEvt).v
	commitOpLocked(peer.op, peer.idx, Unit{})
	commitOpLocked(op, idx, v)
	return true
}

func (e *chanRecvEvt) register(w *waiter) {
	e.ch.recvq = append(e.ch.recvq, w)
}

func (e *chanRecvEvt) unregister(*waiter) {
	e.ch.recvq = compact(e.ch.recvq)
}

// doneEvt is the base event behind Thread.DoneEvt.
type doneEvt struct {
	th *Thread
}

func (*doneEvt) isEvent() {}

func (e *doneEvt) poll(op *syncOp, idx int) bool {
	if !e.th.done {
		return false
	}
	commitOpLocked(op, idx, Unit{})
	return true
}

func (e *doneEvt) register(w *waiter) {
	e.th.doneWaiters = append(e.th.doneWaiters, w)
}

func (e *doneEvt) unregister(*waiter) {
	e.th.doneWaiters = compact(e.th.doneWaiters)
}
