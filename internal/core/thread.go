package core

import (
	"fmt"
	"sync"
)

// Thread is a runtime thread: a unit of execution that, unlike a raw
// goroutine, can be suspended, resumed, killed, and sent break signals by
// other threads, and whose right to execute is governed by custodians.
//
// A thread is suspended when it has been explicitly suspended (Suspend) or
// when every custodian controlling it has been shut down. Suspension takes
// effect at the thread's next safe point; every runtime primitive is a safe
// point. A suspended thread cannot commit a rendezvous.
type Thread struct {
	rt   *Runtime
	id   int64
	name string
	// cond is signalled on state changes; shares rt.mu. Invariant: at most
	// one goroutine — the thread's own — ever waits on it (gate and the
	// sync park loop both run on the thread's goroutine), so wake-ups use
	// the cheaper targeted Signal rather than Broadcast.
	cond *sync.Cond

	// Controlling custodians (live ones only). Empty set => suspended.
	custodians map[*Custodian]struct{}
	// current is the thread's current custodian parameter: the custodian
	// that controls resources the thread allocates. It is not necessarily
	// one of the thread's own controllers.
	current *Custodian

	// beneficiaries are threads yoked to this one by ResumeVia: whenever
	// this thread acquires a custodian or is resumed, so are they.
	// yokedOwners is the reverse index, used to unlink finished threads.
	beneficiaries map[*Thread]struct{}
	yokedOwners   map[*Thread]struct{}

	explicitSuspend bool
	killed          bool
	done            bool
	err             *ThreadPanicError

	// Break machinery. breaksOn is the thread's break-enabled parameter
	// (dynamic extent managed by WithBreaks). pendingBreak is a delivered
	// but not yet raised break signal; a second break while one is
	// pending has no effect.
	breaksOn     bool
	pendingBreak bool

	// op is the thread's in-flight sync operation, if it is blocked in
	// Sync. Protected by rt.mu.
	op *syncOp
	// opFree caches one finished sync op for reuse, so steady-state
	// syncing allocates no op records. Protected by rt.mu.
	opFree *syncOp

	// doneWaiters are sync waiters blocked on this thread's done event.
	doneWaiters []*waiter
}

// ID returns the thread's runtime-unique identifier.
func (t *Thread) ID() int64 { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Runtime returns the runtime that owns the thread.
func (t *Thread) Runtime() *Runtime { return t.rt }

func (t *Thread) String() string { return fmt.Sprintf("thread(%s#%d)", t.name, t.id) }

// suspendedLocked reports whether the thread may not run. Caller holds rt.mu.
func (t *Thread) suspendedLocked() bool {
	return t.explicitSuspend || len(t.custodians) == 0
}

// canCommitLocked reports whether the thread may take part in a rendezvous
// commit right now. Caller holds rt.mu.
func (t *Thread) canCommitLocked() bool {
	return !t.done && !t.killed && !t.suspendedLocked()
}

// Spawn creates a new thread running fn, controlled by this thread's
// current custodian (the custodian parameter, not necessarily this thread's
// own controller). If the current custodian is dead, the new thread is
// returned already terminated and fn never runs.
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	t.rt.mu.Lock()
	c := t.current
	t.rt.mu.Unlock()
	return t.rt.spawn(name, c, fn)
}

// CurrentCustodian returns the thread's custodian parameter.
func (t *Thread) CurrentCustodian() *Custodian {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.current
}

// SetCurrentCustodian sets the thread's custodian parameter, controlling
// where subsequently allocated resources (threads, registered closers) are
// placed. It does not change which custodians control this thread.
func (t *Thread) SetCurrentCustodian(c *Custodian) {
	t.rt.mu.Lock()
	t.current = c
	t.rt.mu.Unlock()
}

// WithCustodian runs fn with the thread's custodian parameter set to c,
// restoring the previous value afterwards. It models MzScheme's
// (parameterize ([current-custodian c]) ...).
func (t *Thread) WithCustodian(c *Custodian, fn func()) {
	t.rt.mu.Lock()
	prev := t.current
	t.current = c
	t.rt.mu.Unlock()
	defer func() {
		t.rt.mu.Lock()
		t.current = prev
		t.rt.mu.Unlock()
	}()
	fn()
}

// gate blocks while the thread is suspended and panics with the kill
// sentinel if the thread has been killed. It is the core safe point; in
// deterministic mode it is also a scheduling decision: the thread pauses
// and runs on only when the scheduler hook grants it.
func (t *Thread) gate() {
	t.rt.mu.Lock()
	t.gateLocked()
	t.rt.mu.Unlock()
	if h := t.rt.hook(); h != nil {
		h.Pause(t)
	}
}

func (t *Thread) gateLocked() {
	for {
		if t.killed {
			t.rt.mu.Unlock()
			// The unwind mutates shared state (custodian release, done
			// waiters); in deterministic mode it must wait its turn like
			// any other step.
			if h := t.rt.hook(); h != nil {
				h.Pause(t)
			}
			panic(killSentinel{t})
		}
		if !t.suspendedLocked() {
			return
		}
		if h := t.rt.hook(); h != nil {
			h.Blocked(t)
		}
		t.cond.Wait()
	}
}

// Checkpoint is an explicit safe point: it blocks while the thread is
// suspended, unwinds if the thread has been killed, and returns ErrBreak
// if a break is pending and breaks are enabled. Long-running computations
// that do not otherwise touch runtime primitives should call it
// periodically to remain controllable.
func (t *Thread) Checkpoint() error {
	t.rt.mu.Lock()
	t.gateLocked()
	brk := false
	if t.pendingBreak && t.breaksOn {
		t.pendingBreak = false
		brk = true
	}
	t.rt.mu.Unlock()
	if h := t.rt.hook(); h != nil {
		h.Pause(t)
	}
	if brk {
		return ErrBreak
	}
	return nil
}

// Yield is Checkpoint under a friendlier name.
func (t *Thread) Yield() error { return t.Checkpoint() }

// Suspend explicitly suspends the thread at its next safe point. The
// thread stays suspended until Resume (and, as always, a thread with no
// live custodian cannot run regardless).
func (t *Thread) Suspend() {
	t.rt.mu.Lock()
	if !t.done {
		t.explicitSuspend = true
		t.rt.traceLocked(TraceSuspend, t, "")
	}
	t.rt.mu.Unlock()
}

// Kill terminates the thread: it will never run again and cannot be
// resumed. It models MzScheme's kill-thread and, together with
// Runtime.TerminateCondemned, the collection of unreachable suspended
// threads. Pending nack events of the thread's in-flight sync fire.
func (t *Thread) Kill() {
	t.rt.mu.Lock()
	t.killLocked()
	t.rt.mu.Unlock()
}

func (t *Thread) killLocked() {
	if t.done || t.killed {
		return
	}
	t.killed = true
	t.rt.traceLocked(TraceKill, t, "")
	if t.op != nil && t.op.state == opSyncing {
		t.op.state = opAbortedKill
		// Fire the in-flight sync's nacks immediately so that servers
		// waiting on gave-up events learn of the termination promptly;
		// the killed goroutine unwinds at its next wake-up.
		fireAllNacksLocked(t.op)
	}
	t.cond.Signal()
	if h := t.rt.hook(); h != nil {
		h.Runnable(t) // the goroutine must run once more, to unwind
	}
}

// markDoneLocked finalizes a finished or killed thread. Caller holds rt.mu.
func (t *Thread) markDoneLocked() {
	if t.done {
		return
	}
	t.done = true
	t.killed = true
	t.rt.traceBufLocked(TraceDone, t, "")
	for c := range t.custodians {
		delete(c.threads, t)
	}
	clear(t.custodians)
	for owner := range t.yokedOwners {
		delete(owner.beneficiaries, t)
	}
	clear(t.yokedOwners)
	for b := range t.beneficiaries {
		delete(b.yokedOwners, t)
	}
	clear(t.beneficiaries)
	delete(t.rt.threads, t.id)
	for _, w := range t.doneWaiters {
		commitSingleLocked(w, Unit{})
	}
	t.doneWaiters = nil
	t.cond.Signal()
	if h := t.rt.hook(); h != nil {
		h.Done(t)
	}
}

// Done reports whether the thread has terminated (returned or killed).
// A suspended thread is not done: it is "only mostly dead".
func (t *Thread) Done() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.done
}

// Killed reports whether the thread has been killed, whether or not its
// goroutine has finished unwinding yet. Done implies Killed.
func (t *Thread) Killed() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.killed
}

// Suspended reports whether the thread is currently suspended.
func (t *Thread) Suspended() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return !t.done && t.suspendedLocked()
}

// Err returns the panic error recorded for the thread, if user code
// running on it panicked.
func (t *Thread) Err() error {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.err == nil {
		return nil
	}
	return t.err
}

// Custodians returns a snapshot of the custodians currently controlling
// the thread.
func (t *Thread) Custodians() []*Custodian {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	out := make([]*Custodian, 0, len(t.custodians))
	for c := range t.custodians {
		out = append(out, c)
	}
	return out
}

// addCustodianLocked grants the thread a (live) controlling custodian and
// propagates the grant to the thread's beneficiaries, per the yoking
// semantics of two-argument thread-resume. Caller holds rt.mu.
func (t *Thread) addCustodianLocked(c *Custodian, visited map[*Thread]struct{}) {
	if c == nil || c.dead || t.done {
		return
	}
	if _, ok := visited[t]; ok {
		return
	}
	visited[t] = struct{}{}
	if _, ok := t.custodians[c]; !ok {
		t.custodians[c] = struct{}{}
		c.threads[t] = struct{}{}
		t.wakeIfRunnableLocked()
	}
	if t.rt.det.Load() {
		// Wake-ups can commit syncs; visit beneficiaries in id order so
		// deterministic runs do not depend on map iteration order.
		for _, b := range sortedThreads(t.beneficiaries) {
			b.addCustodianLocked(c, visited)
		}
		return
	}
	for b := range t.beneficiaries {
		b.addCustodianLocked(c, visited)
	}
}

// wakeIfRunnableLocked re-enables a thread that may have just stopped
// being suspended: wakes a gate-parked goroutine and re-polls an in-flight
// sync so that the newly matchable thread can pair with waiting peers.
func (t *Thread) wakeIfRunnableLocked() {
	if t.done || t.suspendedLocked() {
		return
	}
	t.cond.Signal()
	if h := t.rt.hook(); h != nil {
		h.Runnable(t)
	}
	if t.op != nil && t.op.state == opSyncing {
		repollLocked(t.op)
	}
}

// resumeLocked clears explicit suspension (the thread still cannot run if
// it has no custodian) and recursively resumes beneficiaries.
func (t *Thread) resumeLocked(visited map[*Thread]struct{}) {
	if _, ok := visited[t]; ok {
		return
	}
	visited[t] = struct{}{}
	if !t.done {
		if t.explicitSuspend {
			t.rt.traceLocked(TraceResume, t, "")
		}
		t.explicitSuspend = false
		t.wakeIfRunnableLocked()
	}
	if t.rt.det.Load() {
		for _, b := range sortedThreads(t.beneficiaries) {
			b.resumeLocked(visited)
		}
		return
	}
	for b := range t.beneficiaries {
		b.resumeLocked(visited)
	}
}

// Break delivers a break signal to the thread: an asynchronous, polite
// request to unwind, manifest as ErrBreak from the thread's next blocking
// primitive executed with breaks enabled. A break delivered while one is
// already pending has no effect.
func (t *Thread) Break() {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.done || t.pendingBreak {
		return
	}
	t.pendingBreak = true
	t.rt.traceLocked(TraceBreak, t, "")
	if t.op != nil && t.op.state == opSyncing && t.op.breakable {
		t.op.state = opAbortedBreak
		t.cond.Signal()
	} else {
		// Wake a gate-parked thread so Checkpoint can deliver.
		t.cond.Signal()
	}
	if h := t.rt.hook(); h != nil {
		h.Runnable(t)
	}
}

// BreaksEnabled reports the thread's break-enabled parameter.
func (t *Thread) BreaksEnabled() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.breaksOn
}

// WithBreaks runs fn with the thread's break-enabled parameter set to
// enabled, restoring the previous value afterwards. It models
// (parameterize ([break-enabled v]) ...). Note that merely enabling breaks
// around Sync does not provide SyncEnableBreak's exclusive-or guarantee.
func (t *Thread) WithBreaks(enabled bool, fn func()) {
	t.rt.mu.Lock()
	prev := t.breaksOn
	t.breaksOn = enabled
	t.rt.mu.Unlock()
	defer func() {
		t.rt.mu.Lock()
		t.breaksOn = prev
		t.rt.mu.Unlock()
	}()
	fn()
}

// Resume resumes the thread if it is explicitly suspended and still has a
// live custodian. Resuming a thread whose custodians have all been shut
// down has no effect (use ResumeWith or ResumeVia to supply one).
func Resume(t *Thread) {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if len(t.custodians) == 0 {
		return
	}
	t.resumeLocked(make(map[*Thread]struct{}))
}

// ResumeWith adds custodian c to the thread's set of controllers (and, by
// yoking, to its beneficiaries') and then resumes it.
func ResumeWith(t *Thread, c *Custodian) {
	if c.rt != t.rt {
		panic("core: ResumeWith with a custodian from a different runtime; custodians must not be shared across runtimes")
	}
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	t.addCustodianLocked(c, make(map[*Thread]struct{}))
	if len(t.custodians) > 0 {
		t.resumeLocked(make(map[*Thread]struct{}))
	}
}

// ResumeVia is the paper's two-argument thread-resume with a thread as the
// second argument: every custodian of by is added to t's controllers, t is
// registered as a beneficiary of by — so that whenever by is resumed or
// acquires a new custodian, so does t — and then t is resumed if it now
// has a live custodian. The overall effect is that t survives at least as
// long as by: a custodian-based suspension of t entails the suspension of
// by, and t gains no more privilege to run than by has.
//
// Guarding each operation of a shared abstraction with
// ResumeVia(managerThread, currentThread) is the key to kill-safety.
func ResumeVia(t, by *Thread) {
	if t == by {
		return
	}
	if t.rt != by.rt {
		panic("core: ResumeVia across runtimes; threads must not be shared across runtimes")
	}
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.done {
		return
	}
	if !by.done {
		if _, ok := by.beneficiaries[t]; !ok {
			t.rt.traceLocked(TraceYoke, t, "via "+by.String())
		}
		by.beneficiaries[t] = struct{}{}
		t.yokedOwners[by] = struct{}{}
	}
	if t.rt.det.Load() {
		for _, c := range sortedCustodians(by.custodians) {
			t.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	} else {
		for c := range by.custodians {
			t.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	}
	if len(t.custodians) > 0 {
		t.resumeLocked(make(map[*Thread]struct{}))
	}
}

// DoneEvt returns an event that becomes ready (with Unit) when the thread
// terminates — returns or is killed. Suspension is not termination.
func (t *Thread) DoneEvt() Event {
	return &doneEvt{th: t}
}

// SpawnYoked creates a thread that is yoked to owner from birth: it is
// controlled by every custodian currently controlling owner and by every
// custodian owner later acquires, and it is resumed whenever owner is.
// It is the right way for an abstraction's manager thread to spawn helper
// threads (reply deliverers and the like): a plain Spawn would place the
// helper under the manager's creation-time current custodian, which may
// long since be dead even though the manager itself has been promoted
// into its surviving users' custodians.
func SpawnYoked(owner *Thread, name string, fn func(*Thread)) *Thread {
	rt := owner.rt
	rt.mu.Lock()
	if rt.down || owner.done {
		th := rt.newThreadLocked(name, nil)
		th.markDoneLocked()
		rt.mu.Unlock()
		return th
	}
	th := rt.newThreadLocked(name, nil)
	th.current = owner.current
	owner.beneficiaries[th] = struct{}{}
	th.yokedOwners[owner] = struct{}{}
	if rt.det.Load() {
		for _, c := range sortedCustodians(owner.custodians) {
			th.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	} else {
		for c := range owner.custodians {
			th.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	}
	rt.wg.Add(1)
	rt.mu.Unlock()

	go func() {
		defer rt.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if ks, ok := r.(killSentinel); ok && ks.th == th {
					rt.finishThread(th, nil)
					return
				}
				rt.finishThread(th, &ThreadPanicError{Value: r})
				return
			}
			rt.finishThread(th, nil)
		}()
		th.gate()
		fn(th)
	}()
	return th
}
