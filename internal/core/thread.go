package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Thread is a runtime thread: a unit of execution that, unlike a raw
// goroutine, can be suspended, resumed, killed, and sent break signals by
// other threads, and whose right to execute is governed by custodians.
//
// A thread is suspended when it has been explicitly suspended (Suspend) or
// when every custodian controlling it has been shut down. Suspension takes
// effect at the thread's next safe point; every runtime primitive is a safe
// point. A suspended thread cannot commit a rendezvous.
//
// Thread state is split across three synchronization domains:
//
//   - Bookkeeping (custodian sets, yoking, suspension, done) lives under
//     the runtime's bookkeeping lock rt.mu, which no rendezvous path takes.
//   - Flags the lock-free commit and abort paths consult — killed,
//     matchable, breaksOn, pendingBreak, the in-flight op — are atomics.
//     matchable is the single predicate peers check before committing
//     against this thread ("not done, not killed, not suspended"); it is
//     recomputed under rt.mu whenever an input changes.
//   - The park/wake channel is a per-thread mutex + condvar guarding a
//     wake sequence number. A waker bumps the sequence and signals; a
//     parker re-checks the sequence under the park lock, so a wake-up
//     between "read token" and "park" is never lost. The park lock is a
//     leaf: wake() is safe to call from any context, including commit
//     finalization with event locks held.
type Thread struct {
	rt   *Runtime
	id   int64
	name string

	// Park/wake machinery. wakeSeq counts wake-ups; parkCond (on parkMu)
	// carries the signal. Invariant: at most one goroutine — the thread's
	// own — ever parks, so wake-ups use the cheaper targeted Signal.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	wakeSeq  atomic.Uint64

	// killed is set once, under rt.mu, and read lock-free by the owner's
	// sync loop and safe points. matchable is maintained by
	// updateMatchableLocked. breaksOn and pendingBreak are the break
	// machinery: breaksOn is the thread's break-enabled parameter (dynamic
	// extent managed by WithBreaks; written only by the owner outside the
	// wait loop, read by Break), pendingBreak a delivered but not yet
	// raised break signal.
	killed       atomic.Bool
	matchable    atomic.Bool
	breaksOn     atomic.Bool
	pendingBreak atomic.Bool

	// op is the thread's in-flight sync operation, if it is blocked in
	// Sync; published with release ordering after the op is initialized,
	// so Break and Kill can abort it through the claim protocol. opFree
	// caches one finished sync op for reuse (owner-only), so steady-state
	// syncing allocates no op records.
	op     atomic.Pointer[syncOp]
	opFree *syncOp

	// doneSig fires (with Unit) when the thread terminates; DoneEvt is its
	// event view.
	doneSig oneshot

	// ---- Fields below are guarded by rt.mu. ----

	// Controlling custodians (live ones only). Empty set => suspended.
	custodians map[*Custodian]struct{}
	// current is the thread's current custodian parameter: the custodian
	// that controls resources the thread allocates. It is not necessarily
	// one of the thread's own controllers.
	current *Custodian

	// beneficiaries are threads yoked to this one by ResumeVia: whenever
	// this thread acquires a custodian or is resumed, so are they.
	// yokedOwners is the reverse index, used to unlink finished threads.
	beneficiaries map[*Thread]struct{}
	yokedOwners   map[*Thread]struct{}

	explicitSuspend bool
	done            bool
	err             *ThreadPanicError
}

// ID returns the thread's runtime-unique identifier.
func (t *Thread) ID() int64 { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Runtime returns the runtime that owns the thread.
func (t *Thread) Runtime() *Runtime { return t.rt }

func (t *Thread) String() string { return fmt.Sprintf("thread(%s#%d)", t.name, t.id) }

// wakeToken samples the wake sequence. The owner reads it before checking
// any state it might park on; parkUntilWake with that token returns
// immediately if any wake landed in between.
func (t *Thread) wakeToken() uint64 { return t.wakeSeq.Load() }

// wake unparks the thread's goroutine (if parked) and invalidates any
// token read before this call. Callable from any goroutine; parkMu is a
// leaf lock.
func (t *Thread) wake() {
	t.parkMu.Lock()
	t.wakeSeq.Add(1)
	t.parkCond.Signal()
	t.parkMu.Unlock()
}

// parkUntilWake blocks until a wake invalidates tok. Owner goroutine only.
func (t *Thread) parkUntilWake(tok uint64) {
	t.parkMu.Lock()
	for t.wakeSeq.Load() == tok {
		t.parkCond.Wait()
	}
	t.parkMu.Unlock()
}

// parkBlocked is parkUntilWake with the instrumentation protocol around
// it: the thread reports itself blocked first and, in deterministic mode,
// waits to be granted its turn (Pause) before acting on what it observed.
func (t *Thread) parkBlocked(tok uint64) {
	if h := t.rt.hook(); h != nil {
		h.Blocked(t)
		t.parkUntilWake(tok)
		if t.rt.det.Load() {
			h.Pause(t)
		}
		return
	}
	t.parkUntilWake(tok)
}

// suspendedLocked reports whether the thread may not run. Caller holds rt.mu.
func (t *Thread) suspendedLocked() bool {
	return t.explicitSuspend || len(t.custodians) == 0
}

// updateMatchableLocked recomputes the lock-free matchable flag from the
// bookkeeping state. Caller holds rt.mu and calls it after every change to
// done, killed, explicit suspension, or the custodian set. A commit that
// validated matchable just before it flips false linearizes before the
// suspension, which takes effect at the thread's next safe point — the
// same order a global lock would have produced.
func (t *Thread) updateMatchableLocked() {
	t.matchable.Store(!t.done && !t.killed.Load() && !t.suspendedLocked())
}

// Spawn creates a new thread running fn, controlled by this thread's
// current custodian (the custodian parameter, not necessarily this thread's
// own controller). If the current custodian is dead, the new thread is
// returned already terminated and fn never runs.
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	t.rt.mu.Lock()
	c := t.current
	t.rt.mu.Unlock()
	return t.rt.spawn(name, c, fn)
}

// CurrentCustodian returns the thread's custodian parameter.
func (t *Thread) CurrentCustodian() *Custodian {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.current
}

// SetCurrentCustodian sets the thread's custodian parameter, controlling
// where subsequently allocated resources (threads, registered closers) are
// placed. It does not change which custodians control this thread.
func (t *Thread) SetCurrentCustodian(c *Custodian) {
	t.rt.mu.Lock()
	t.current = c
	t.rt.mu.Unlock()
}

// WithCustodian runs fn with the thread's custodian parameter set to c,
// restoring the previous value afterwards. It models MzScheme's
// (parameterize ([current-custodian c]) ...).
func (t *Thread) WithCustodian(c *Custodian, fn func()) {
	t.rt.mu.Lock()
	prev := t.current
	t.current = c
	t.rt.mu.Unlock()
	defer func() {
		t.rt.mu.Lock()
		t.current = prev
		t.rt.mu.Unlock()
	}()
	fn()
}

// gate blocks while the thread is suspended and panics with the kill
// sentinel if the thread has been killed. It is the core safe point; in
// deterministic mode it is also a scheduling decision: the thread pauses
// and runs on only when the scheduler hook grants it.
func (t *Thread) gate() {
	t.gateWait()
	if h := t.rt.hook(); h != nil {
		h.Pause(t)
	}
}

// gateWait is gate without the trailing Pause; Checkpoint uses it so the
// Pause lands after the break check, as a single safe-point decision.
func (t *Thread) gateWait() {
	for {
		tok := t.wakeToken()
		t.rt.mu.Lock()
		if t.killed.Load() {
			t.rt.mu.Unlock()
			// The unwind mutates shared state (custodian release, done
			// waiters); in deterministic mode it must wait its turn like
			// any other step.
			if h := t.rt.hook(); h != nil {
				h.Pause(t)
			}
			panic(killSentinel{t})
		}
		if !t.suspendedLocked() {
			t.rt.mu.Unlock()
			return
		}
		t.rt.mu.Unlock()
		if h := t.rt.hook(); h != nil {
			h.Blocked(t)
		}
		t.parkUntilWake(tok)
	}
}

// Checkpoint is an explicit safe point: it blocks while the thread is
// suspended, unwinds if the thread has been killed, and returns ErrBreak
// if a break is pending and breaks are enabled. Long-running computations
// that do not otherwise touch runtime primitives should call it
// periodically to remain controllable.
func (t *Thread) Checkpoint() error {
	t.gateWait()
	brk := t.breaksOn.Load() && t.pendingBreak.CompareAndSwap(true, false)
	if h := t.rt.hook(); h != nil {
		h.Pause(t)
	}
	if brk {
		return ErrBreak
	}
	return nil
}

// Yield is Checkpoint under a friendlier name.
func (t *Thread) Yield() error { return t.Checkpoint() }

// Suspend explicitly suspends the thread at its next safe point. The
// thread stays suspended until Resume (and, as always, a thread with no
// live custodian cannot run regardless).
func (t *Thread) Suspend() {
	t.rt.mu.Lock()
	if !t.done {
		t.explicitSuspend = true
		t.updateMatchableLocked()
		t.rt.traceLocked(TraceSuspend, t, "")
	}
	t.rt.mu.Unlock()
}

// Kill terminates the thread: it will never run again and cannot be
// resumed. It models MzScheme's kill-thread and, together with
// Runtime.TerminateCondemned, the collection of unreachable suspended
// threads. Pending nack events of the thread's in-flight sync fire.
func (t *Thread) Kill() {
	t.rt.mu.Lock()
	t.killLocked()
	t.rt.mu.Unlock()
}

func (t *Thread) killLocked() {
	if t.done || t.killed.Load() {
		return
	}
	t.killed.Store(true)
	t.updateMatchableLocked()
	t.rt.traceLocked(TraceKill, t, "")
	if op := t.op.Load(); op != nil {
		if op.claimAbort(opAbortedKill) {
			// Fire the in-flight sync's nacks immediately so that servers
			// waiting on gave-up events learn of the termination promptly;
			// the killed goroutine unwinds at its next wake-up.
			op.fireAllNacks()
		}
	}
	t.wake()
	if h := t.rt.hook(); h != nil {
		h.Runnable(t) // the goroutine must run once more, to unwind
	}
}

// markDoneLocked finalizes a finished or killed thread. Caller holds rt.mu.
func (t *Thread) markDoneLocked() {
	if t.done {
		return
	}
	t.done = true
	t.killed.Store(true)
	t.updateMatchableLocked()
	t.rt.traceBufLocked(TraceDone, t, "")
	for c := range t.custodians {
		delete(c.threads, t)
	}
	clear(t.custodians)
	for owner := range t.yokedOwners {
		delete(owner.beneficiaries, t)
	}
	clear(t.yokedOwners)
	for b := range t.beneficiaries {
		delete(b.yokedOwners, t)
	}
	clear(t.beneficiaries)
	delete(t.rt.threads, t.id)
	t.doneSig.fire(Unit{})
	t.wake()
	if h := t.rt.hook(); h != nil {
		h.Done(t)
	}
}

// Done reports whether the thread has terminated (returned or killed).
// A suspended thread is not done: it is "only mostly dead".
func (t *Thread) Done() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return t.done
}

// Killed reports whether the thread has been killed, whether or not its
// goroutine has finished unwinding yet. Done implies Killed.
func (t *Thread) Killed() bool { return t.killed.Load() }

// Suspended reports whether the thread is currently suspended.
func (t *Thread) Suspended() bool {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	return !t.done && t.suspendedLocked()
}

// Err returns the panic error recorded for the thread, if user code
// running on it panicked.
func (t *Thread) Err() error {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.err == nil {
		return nil
	}
	return t.err
}

// Custodians returns a snapshot of the custodians currently controlling
// the thread.
func (t *Thread) Custodians() []*Custodian {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	out := make([]*Custodian, 0, len(t.custodians))
	for c := range t.custodians {
		out = append(out, c)
	}
	return out
}

// addCustodianLocked grants the thread a (live) controlling custodian and
// propagates the grant to the thread's beneficiaries, per the yoking
// semantics of two-argument thread-resume. Caller holds rt.mu.
func (t *Thread) addCustodianLocked(c *Custodian, visited map[*Thread]struct{}) {
	if c == nil || c.dead || t.done {
		return
	}
	if _, ok := visited[t]; ok {
		return
	}
	visited[t] = struct{}{}
	if _, ok := t.custodians[c]; !ok {
		t.custodians[c] = struct{}{}
		c.threads[t] = struct{}{}
		t.wakeIfRunnableLocked()
	}
	if t.rt.det.Load() {
		// Wake-ups can commit syncs; visit beneficiaries in id order so
		// deterministic runs do not depend on map iteration order.
		for _, b := range sortedThreads(t.beneficiaries) {
			b.addCustodianLocked(c, visited)
		}
		return
	}
	for b := range t.beneficiaries {
		b.addCustodianLocked(c, visited)
	}
}

// wakeIfRunnableLocked re-enables a thread that may have just stopped
// being suspended: recomputes matchable, wakes a parked goroutine, and
// re-polls an in-flight sync so that the newly matchable thread can pair
// with waiting peers. Caller holds rt.mu; the re-poll takes each event's
// own lock underneath, per the lock hierarchy.
func (t *Thread) wakeIfRunnableLocked() {
	t.updateMatchableLocked()
	if t.done || t.suspendedLocked() {
		return
	}
	t.wake()
	if h := t.rt.hook(); h != nil {
		h.Runnable(t)
	}
	// No re-poll here: the woken thread's own sync loop re-polls its
	// registered cases (owner-side re-poll). A remote re-poll would have to
	// read op.cases, which only the owner — or a claim holder — may do.
}

// resumeLocked clears explicit suspension (the thread still cannot run if
// it has no custodian) and recursively resumes beneficiaries.
func (t *Thread) resumeLocked(visited map[*Thread]struct{}) {
	if _, ok := visited[t]; ok {
		return
	}
	visited[t] = struct{}{}
	if !t.done {
		if t.explicitSuspend {
			t.rt.traceLocked(TraceResume, t, "")
		}
		t.explicitSuspend = false
		t.wakeIfRunnableLocked()
	}
	if t.rt.det.Load() {
		for _, b := range sortedThreads(t.beneficiaries) {
			b.resumeLocked(visited)
		}
		return
	}
	for b := range t.beneficiaries {
		b.resumeLocked(visited)
	}
}

// Break delivers a break signal to the thread: an asynchronous, polite
// request to unwind, manifest as ErrBreak from the thread's next blocking
// primitive executed with breaks enabled. A break delivered while one is
// already pending has no effect.
func (t *Thread) Break() {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.done || !t.pendingBreak.CompareAndSwap(false, true) {
		return
	}
	t.rt.traceLocked(TraceBreak, t, "")
	if op := t.op.Load(); op != nil && op.breakable.Load() {
		// Abort via claim-then-verify rather than a direct CAS to the
		// aborted state: between the breakable read above and the CAS, the
		// owner can finish this sync, recycle the op record, and start a
		// new sync on it — and the new sync may be running with breaks
		// disabled. Holding the claim freezes the record (the owner's loop
		// cannot exit while the op is claimed), so re-checking that the
		// record is still the thread's current op and still breakable
		// decides against the sync that would actually receive the abort.
		// Either the abort lands (the sync returns ErrBreak and consumes
		// the pending flag) or it is withheld — a lost race to a commit, a
		// kill, or a non-breakable successor — and the pending flag
		// survives for the thread's next breakable safe point.
		if op.claim() {
			if t.op.Load() == op && op.breakable.Load() {
				op.state.Store(opAbortedBreak)
			} else {
				op.unclaim()
			}
		}
	}
	// Wake a parked thread (sync wait or gate) so Checkpoint or the sync
	// loop can deliver.
	t.wake()
	if h := t.rt.hook(); h != nil {
		h.Runnable(t)
	}
}

// BreaksEnabled reports the thread's break-enabled parameter.
func (t *Thread) BreaksEnabled() bool { return t.breaksOn.Load() }

// WithBreaks runs fn with the thread's break-enabled parameter set to
// enabled, restoring the previous value afterwards. It models
// (parameterize ([break-enabled v]) ...). Note that merely enabling breaks
// around Sync does not provide SyncEnableBreak's exclusive-or guarantee.
func (t *Thread) WithBreaks(enabled bool, fn func()) {
	prev := t.breaksOn.Load()
	t.breaksOn.Store(enabled)
	defer t.breaksOn.Store(prev)
	fn()
}

// Resume resumes the thread if it is explicitly suspended and still has a
// live custodian. Resuming a thread whose custodians have all been shut
// down has no effect (use ResumeWith or ResumeVia to supply one).
func Resume(t *Thread) {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if len(t.custodians) == 0 {
		return
	}
	t.resumeLocked(make(map[*Thread]struct{}))
}

// ResumeWith adds custodian c to the thread's set of controllers (and, by
// yoking, to its beneficiaries') and then resumes it.
func ResumeWith(t *Thread, c *Custodian) {
	if c.rt != t.rt {
		panic("core: ResumeWith with a custodian from a different runtime; custodians must not be shared across runtimes")
	}
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	t.addCustodianLocked(c, make(map[*Thread]struct{}))
	if len(t.custodians) > 0 {
		t.resumeLocked(make(map[*Thread]struct{}))
	}
}

// ResumeVia is the paper's two-argument thread-resume with a thread as the
// second argument: every custodian of by is added to t's controllers, t is
// registered as a beneficiary of by — so that whenever by is resumed or
// acquires a new custodian, so does t — and then t is resumed if it now
// has a live custodian. The overall effect is that t survives at least as
// long as by: a custodian-based suspension of t entails the suspension of
// by, and t gains no more privilege to run than by has.
//
// Guarding each operation of a shared abstraction with
// ResumeVia(managerThread, currentThread) is the key to kill-safety.
func ResumeVia(t, by *Thread) {
	if t == by {
		return
	}
	if t.rt != by.rt {
		panic("core: ResumeVia across runtimes; threads must not be shared across runtimes")
	}
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.done {
		return
	}
	if !by.done {
		if _, ok := by.beneficiaries[t]; !ok {
			t.rt.traceLocked(TraceYoke, t, "via "+by.String())
		}
		by.beneficiaries[t] = struct{}{}
		t.yokedOwners[by] = struct{}{}
	}
	if t.rt.det.Load() {
		for _, c := range sortedCustodians(by.custodians) {
			t.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	} else {
		for c := range by.custodians {
			t.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	}
	if len(t.custodians) > 0 {
		t.resumeLocked(make(map[*Thread]struct{}))
	}
}

// DoneEvt returns an event that becomes ready (with Unit) when the thread
// terminates — returns or is killed. Suspension is not termination.
func (t *Thread) DoneEvt() Event {
	return &doneEvt{th: t}
}

// SpawnYoked creates a thread that is yoked to owner from birth: it is
// controlled by every custodian currently controlling owner and by every
// custodian owner later acquires, and it is resumed whenever owner is.
// It is the right way for an abstraction's manager thread to spawn helper
// threads (reply deliverers and the like): a plain Spawn would place the
// helper under the manager's creation-time current custodian, which may
// long since be dead even though the manager itself has been promoted
// into its surviving users' custodians.
func SpawnYoked(owner *Thread, name string, fn func(*Thread)) *Thread {
	rt := owner.rt
	rt.mu.Lock()
	if rt.down || owner.done {
		th := rt.newThreadLocked(name, nil)
		th.markDoneLocked()
		rt.mu.Unlock()
		return th
	}
	th := rt.newThreadLocked(name, nil)
	th.current = owner.current
	owner.beneficiaries[th] = struct{}{}
	th.yokedOwners[owner] = struct{}{}
	if rt.det.Load() {
		for _, c := range sortedCustodians(owner.custodians) {
			th.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	} else {
		for c := range owner.custodians {
			th.addCustodianLocked(c, make(map[*Thread]struct{}))
		}
	}
	rt.wg.Add(1)
	rt.mu.Unlock()

	go func() {
		defer rt.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if ks, ok := r.(killSentinel); ok && ks.th == th {
					rt.finishThread(th, nil)
					return
				}
				rt.finishThread(th, &ThreadPanicError{Value: r})
				return
			}
			rt.finishThread(th, nil)
		}()
		th.gate()
		fn(th)
	}()
	return th
}
