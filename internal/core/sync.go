package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sync engine: flatten → poll → enroll → park → commit/abort.
//
// Matching state is no longer protected by one runtime-wide lock. Each
// event source (channel, semaphore, one-shot signal) owns its waiter queue
// under its own small mutex, and the unit of commitment is the sync
// operation itself: syncOp.state is an atomic state machine and a commit
// is a CAS "claim" of every participating op followed by a release store
// of the final state. Two threads rendezvousing on disjoint events touch
// disjoint locks and disjoint ops and never contend.
//
// The claim protocol (see DESIGN S21 for the full argument):
//
//   - opSyncing → opClaimed is the only transition available to a
//     committer, and only via CAS, so at most one committer ever holds an
//     op. The claimer either finalizes (→ opCommitted) or rolls back
//     (→ opSyncing); kill and break bypass opClaimed and CAS straight to
//     their terminal aborted states.
//   - A claim attempt that observes opClaimed spins (the claim is
//     transient: its holder finalizes or rolls back without blocking on
//     any event lock), and gives up only on a terminal state. Skipping a
//     transiently claimed peer instead of spinning would lose rendezvous:
//     both parties could park with matching waiters enqueued.
//   - Two-party commits claim both ops in thread-id order, so spin-wait
//     edges always point toward higher ids and cannot form a cycle.
//
// Lock hierarchy (outer to inner): runtime bookkeeping lock (rt.mu) →
// per-event lock (Chan.mu, Semaphore.mu, oneshot.mu, External state) →
// op claim (CAS spin) → op.nackMu → per-thread park mutex. Commit paths
// never take rt.mu or any event lock, which is what makes spinning on a
// claim safe from any context, including while holding an event lock.
//
// The rendezvous path is allocation-conscious: syncOp records are pooled
// per thread (a thread has at most one op in flight, plus rare nested ops
// from guard procedures), flattened cases and their waiters live in small
// arrays inside the op, and a sync over a single base event with at most
// one wrap — the overwhelmingly common shape on serving paths — completes
// without any heap allocation at all.

const (
	opSyncing int32 = iota
	opClaimed
	opCommitted
	opAbortedBreak
	opAbortedKill
)

// syncInline is the number of flattened cases (and their waiters) stored
// inline in a syncOp. Serving-path syncs are choices of 1–3 alternatives;
// larger choices spill to the heap.
const syncInline = 4

// syncOp is one in-flight Sync call.
type syncOp struct {
	th    *Thread
	state atomic.Int32
	// breakable: a pending break aborts the wait phase. Atomic because
	// Break reads it through th.op while the record may be mid-recycle on
	// the owner — the read alone is therefore unreliable (the record may
	// already carry the owner's *next* sync, which may have breaks
	// disabled), so Break treats it only as a fast-path filter and
	// re-verifies it under a claim, which freezes the record, before
	// storing the abort (see Thread.Break).
	breakable atomic.Bool
	chosen    int // case index; written by the claimer before the opCommitted store
	result    Value
	prev      *syncOp // saved th.op (nested sync inside a guard procedure)
	cases     []flatCase
	waiters   []*waiter

	// nacks are the nack signals created for this sync's nack-guards.
	// flatten appends to the list while a kill can fire it concurrently,
	// so the slice is guarded by nackMu; nnacks mirrors the length so the
	// overwhelmingly common zero-nack case skips the lock entirely (a
	// fire racing a concurrent append may miss the new signal, which is
	// safe: finish fires every nack of an abandoned op).
	nackMu sync.Mutex
	nnacks atomic.Int32
	nacks  []*nackSignal

	casebuf [syncInline]flatCase
	wbuf    [syncInline]waiter
	wptrbuf [syncInline]*waiter
}

// waiter is a registration of one sync case in a base event's wait queue.
// Its queue position (seg/slot) is guarded by the owning event's lock;
// gen is atomic because alarm callbacks read it from timer goroutines.
type waiter struct {
	op   *syncOp
	idx  int
	base baseEvent
	seg  *wseg // waitq segment holding this waiter, nil when not enqueued
	slot int   // slot index within seg
	// gen invalidates references that can outlive the sync: a real alarm
	// timer callback and a virtual-clock alarm registration both capture
	// the waiter together with its generation, and fire only if the
	// generation still matches. finish bumps it, so a recycled waiter
	// record can never be committed by a stale alarm.
	gen   atomic.Uint32
	timer *time.Timer // real-clock alarm timer, stopped at deregistration
}

// claim moves the op from syncing to claimed, spinning out a transient
// claim held by another committer. It returns false if the op has reached
// a terminal state (committed or aborted). On success the caller owns the
// op and must either finalize or unclaim it without blocking on any event
// lock (spinners may be holding one).
func (op *syncOp) claim() bool {
	for {
		if op.state.CompareAndSwap(opSyncing, opClaimed) {
			return true
		}
		if s := op.state.Load(); s != opClaimed && s != opSyncing {
			return false
		}
		runtime.Gosched()
	}
}

// unclaim rolls a claimed op back to syncing (the commit attempt found the
// pairing invalid — e.g. the peer thread is suspended).
func (op *syncOp) unclaim() { op.state.Store(opSyncing) }

// claimAbort CASes a syncing op directly to an aborted terminal state,
// spinning out transient claims. A committer that wins the race commits
// first — the kill or break then linearizes after the commit, exactly as
// it would have under a global lock.
func (op *syncOp) claimAbort(target int32) bool {
	for {
		if op.state.CompareAndSwap(opSyncing, target) {
			return true
		}
		if s := op.state.Load(); s != opClaimed && s != opSyncing {
			return false
		}
		runtime.Gosched()
	}
}

// acquireOp returns a reset sync op, reusing the thread's cached record
// when available. Owner goroutine only; no lock held.
func (t *Thread) acquireOp() *syncOp {
	op := t.opFree
	if op == nil {
		op = &syncOp{}
	} else {
		t.opFree = nil
	}
	op.th = t
	op.chosen = 0
	op.result = nil
	op.cases = op.casebuf[:0]
	op.waiters = op.wptrbuf[:0]
	// The Syncing store is the fence that makes recycling safe against
	// stale alarm callbacks: a callback that claims a recycled op
	// synchronizes with this store and re-checks the waiter generation
	// (bumped in finish, before the op returned to the pool) afterwards.
	op.state.Store(opSyncing)
	return op
}

// releaseOp clears the op's references and caches it on the thread for
// reuse. Owner goroutine only; no base event holds a pointer to the op or
// its waiters anymore (finish deregistered them), and stale alarm
// references are fenced by the waiter generations bumped in finish.
//
// The quiesce loop below is the recycling fence for transient claims:
// Break's claim-verify (thread.go) can hold the op claimed at a moment
// when the owner is about to recycle it — the pending-break return at
// sync entry, or a guard-procedure panic that user code recovers from.
// Waiting for the claim to resolve here guarantees the holder's final
// state store (abort or rollback) lands before the record can be re-armed
// for a successor sync, so a lagging rollback can never clobber the
// successor's state. Claim holders never block on the owner, so the spin
// terminates; on the fast path this is one uncontended atomic load.
func (t *Thread) releaseOp(op *syncOp) {
	for op.state.Load() == opClaimed {
		runtime.Gosched()
	}
	for i := range op.cases {
		op.cases[i] = flatCase{}
	}
	op.cases = nil
	op.waiters = nil
	if op.nnacks.Load() != 0 {
		op.nackMu.Lock()
		for i := range op.nacks {
			op.nacks[i] = nil
		}
		op.nacks = op.nacks[:0]
		op.nnacks.Store(0)
		op.nackMu.Unlock()
	}
	op.result = nil
	op.prev = nil
	t.opFree = op
}

// newWaiter returns a waiter for case idx, stored inline in the op when a
// slot is free. Owner goroutine only; the record is published to other
// goroutines by the event lock released inside enroll.
func (op *syncOp) newWaiter(idx int) *waiter {
	var w *waiter
	if i := len(op.waiters); i < syncInline {
		w = &op.wbuf[i]
	} else {
		w = &waiter{}
	}
	w.op = op
	w.idx = idx
	w.base = op.cases[idx].base
	w.seg = nil
	w.slot = 0
	w.timer = nil
	return w
}

// finalizeCommit completes a commit: the caller has claimed op (state ==
// opClaimed) and validated the pairing. It publishes the chosen case and
// value, fires the nacks that do not cover the chosen case — promptly, so
// that watchers (e.g. a manager thread's gave-up events) learn of the
// outcome even before the syncing thread is rescheduled — and wakes the
// op's thread.
//
// The opCommitted store is the publication point: the owner's sync loop
// may observe it at any moment (it does not need the wake if it is mid
// loop rather than parked) and race ahead into finish and op recycling.
// Everything the tail needs — the thread, the case count, the losing
// nacks — is therefore snapshotted while the claim is still held, and the
// op is never touched after the store.
func finalizeCommit(op *syncOp, idx int, v Value) {
	th := op.th
	ncases := len(op.cases)
	losers := op.losingNacks(idx)
	op.chosen = idx
	op.result = v
	op.state.Store(opCommitted)
	for _, n := range losers {
		n.fire()
	}
	if h := th.rt.hook(); h != nil {
		h.SyncCommit(th, ncases, idx)
		h.Runnable(th)
	}
	th.wake()
}

// commitPair completes a two-party rendezvous: the caller has claimed and
// validated both ops. Both terminal states are stored before either side's
// nacks fire, so the post-commit cascade (nack fires → further commits →
// further claims) runs with no claim held anywhere — a cascade that
// reaches back to either op observes opCommitted and backs off instead of
// spinning on a claim its own goroutine holds. As in finalizeCommit, the
// post-store tail works only on pre-store snapshots, because either owner
// may observe its commit and recycle its op immediately. a is finalized
// (nacks, hooks, wake) before b, which is the order deterministic traces
// were recorded with (peer first, then self).
func commitPair(a *syncOp, aIdx int, av Value, b *syncOp, bIdx int, bv Value) {
	ath, bth := a.th, b.th
	an, bn := len(a.cases), len(b.cases)
	alosers := a.losingNacks(aIdx)
	blosers := b.losingNacks(bIdx)
	a.chosen, a.result = aIdx, av
	b.chosen, b.result = bIdx, bv
	a.state.Store(opCommitted)
	b.state.Store(opCommitted)
	for _, n := range alosers {
		n.fire()
	}
	if h := ath.rt.hook(); h != nil {
		h.SyncCommit(ath, an, aIdx)
		h.Runnable(ath)
	}
	ath.wake()
	for _, n := range blosers {
		n.fire()
	}
	if h := bth.rt.hook(); h != nil {
		h.SyncCommit(bth, bn, bIdx)
		h.Runnable(bth)
	}
	bth.wake()
}

// commitReady is the single-party commit used by "became ready" event
// sources (thread done, nack fired, cell completed). It is a no-op unless
// the op is still undecided and its thread currently allowed to commit; a
// suspended thread's registration is skipped (the resume path re-polls,
// and level-triggered sources stay ready). The caller passes op and idx
// it snapshotted under the owning event's lock — not the waiter, whose
// fields the owner may already be recycling. Returns true if the commit
// landed.
func commitReady(op *syncOp, idx int, v Value) bool {
	if !op.claim() {
		return false
	}
	if !op.th.matchable.Load() {
		op.unclaim()
		return false
	}
	finalizeCommit(op, idx, v)
	return true
}

// losingNacks snapshots the nack signals that a commit of case idx must
// fire (those not covering idx). Called while the op is claimed, before
// the commit is published, so reading op.cases and op.nacks is safe.
func (op *syncOp) losingNacks(idx int) []*nackSignal {
	if op.nnacks.Load() == 0 {
		return nil
	}
	op.nackMu.Lock()
	covered := op.cases[idx].nackIdx
	var out []*nackSignal
	for i, n := range op.nacks {
		if !containsIdx(covered, i) {
			out = append(out, n)
		}
	}
	op.nackMu.Unlock()
	return out
}

// fireLosingNacks fires every nack of a committed op that does not cover
// the chosen case. Owner-only (finish); remote committers snapshot via
// losingNacks instead. The cover check scans the chosen case's (tiny)
// nack-index list directly; no per-sync map is built.
func (op *syncOp) fireLosingNacks() {
	if op.nnacks.Load() == 0 {
		return
	}
	op.nackMu.Lock()
	var covered []int
	if op.state.Load() == opCommitted {
		covered = op.cases[op.chosen].nackIdx
	}
	for i, n := range op.nacks {
		if !containsIdx(covered, i) {
			n.fire()
		}
	}
	op.nackMu.Unlock()
}

func containsIdx(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// fireAllNacks fires every unfired nack of an abandoned op.
func (op *syncOp) fireAllNacks() {
	if op.nnacks.Load() == 0 {
		return
	}
	op.nackMu.Lock()
	for _, n := range op.nacks {
		n.fire()
	}
	op.nackMu.Unlock()
}

// addNack records a nack signal created during flatten. The lock is
// against a concurrent kill firing the list mid-flatten.
func (op *syncOp) addNack(sig *nackSignal) int {
	op.nackMu.Lock()
	op.nacks = append(op.nacks, sig)
	idx := len(op.nacks) - 1
	op.nnacks.Store(int32(len(op.nacks)))
	op.nackMu.Unlock()
	return idx
}

// finish is the single exit path of syncImpl: restore the op stack,
// deregister waiters from their event queues, fire the nacks appropriate
// to the outcome (all of them if the sync was abandoned; the losers only
// if it committed — those already fired at commit time, and firing is
// idempotent), and recycle the op record.
func (op *syncOp) finish() {
	th := op.th
	th.op.Store(op.prev)
	for _, w := range op.waiters {
		if w.timer != nil {
			w.timer.Stop()
			w.timer = nil
		}
		w.base.cancel(w)
		w.gen.Add(1)
		w.base = nil
	}
	if op.state.Load() == opCommitted {
		op.fireLosingNacks()
	} else {
		op.fireAllNacks()
	}
	th.releaseOp(op)
}

// Sync blocks until one of the communications described by e is ready,
// commits it, applies its wrap functions (with breaks implicitly disabled
// from the commit until the outermost wrap completes), and returns the
// resulting value.
//
// If a break signal is delivered while the thread waits with breaks
// enabled, Sync returns ErrBreak and no event is chosen; every nack
// created for this sync fires. If the thread is killed while waiting, the
// sync's nacks fire and the thread unwinds.
//
// Every event synced must belong to th's runtime: sharing a channel,
// semaphore, custodian, or other event source across runtimes is not
// merely unsupported, it is diagnosed — Sync panics with a clear message
// rather than corrupting the foreign runtime's state under the wrong lock.
func Sync(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, false)
}

// SyncEnableBreak is Sync with breaks enabled during the wait even if the
// thread's break parameter is off, with an exclusive-or guarantee: either
// a break is delivered (ErrBreak, no event chosen) or an event is chosen
// (no break consumed) — never both. Merely wrapping Sync in WithBreaks
// does not provide this guarantee.
func SyncEnableBreak(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, true)
}

func syncImpl(th *Thread, e Event, enableBreak bool) (Value, error) {
	th.gate() // safe point: honor suspension and kill before doing anything

	rt := th.rt

	op := th.acquireOp()
	op.breakable.Store(enableBreak || th.breaksOn.Load())
	op.prev = th.op.Load() // nested sync inside a guard procedure
	th.op.Store(op)
	// A break that is already pending is delivered at sync entry, before
	// any event can be chosen.
	if op.breakable.Load() && th.pendingBreak.CompareAndSwap(true, false) {
		th.op.Store(op.prev)
		th.releaseOp(op)
		return nil, ErrBreak
	}

	defer op.finish()

	// Flatten before touching any queue: guard procedures are arbitrary
	// user code and may block, sync, or spawn. A kill or break arriving
	// during flatten is observed below.
	flatten(th, op, e, nil, nil, nil, 0)

	for {
		// The wake token is read before the state checks: any wake-up
		// that lands after this point bumps the token and makes the park
		// below return immediately, so a commit, kill, break, or resume
		// can never slip between the checks and the park.
		tok := th.wakeToken()
		if th.killed.Load() {
			panic(killSentinel{th})
		}
		switch op.state.Load() {
		case opAbortedBreak:
			th.pendingBreak.Store(false)
			return nil, ErrBreak
		case opAbortedKill:
			panic(killSentinel{th})
		case opCommitted:
			return applyWraps(th, op)
		}
		// A suspended thread must not poll or commit; park until resumed
		// (peers skip it meanwhile — matchable is false).
		if !th.matchable.Load() {
			th.parkBlocked(tok)
			continue
		}
		if len(op.waiters) > 0 {
			// Woken while registered but not decided: the wake was a
			// resume (or a break with breaks disabled). Readiness may have
			// accrued while the thread was unmatchable — peers skip a
			// suspended waiter but keep its registration, and level-
			// triggered sources (a fired signal, a passed alarm deadline)
			// drop it — so re-poll every case. Owner-side re-polling is
			// what keeps this race-free: only the owning goroutine ever
			// reads op.cases outside a claim, so a remote resume path never
			// touches an op that its owner may concurrently recycle. Case
			// order, no fairness tick: this mirrors the re-poll the old
			// global-lock design ran from the resume path itself.
			repolled := false
			for i := range op.cases {
				if op.cases[i].base.poll(op, i) {
					repolled = true
					break
				}
			}
			if repolled || op.state.Load() != opSyncing {
				continue
			}
			th.parkBlocked(tok)
			continue
		}
		{
			// First pass (or re-entry after a lost claim race).
			committed := false
			switch n := len(op.cases); {
			case n == 1:
				// Single-event fast path: no choice bookkeeping. The
				// fairness counter still ticks exactly as in the general
				// path so deterministic-mode schedules (which depend on
				// the rotation state of later multi-way choices) replay
				// unchanged.
				rt.seq.Add(1)
				if op.cases[0].base.poll(op, 0) {
					continue
				}
				if op.state.Load() != opSyncing {
					continue // decided while polling (kill, break, peer)
				}
				// enroll re-polls under the event's own lock, closing the
				// poll-then-register window a global lock used to cover.
				w := op.newWaiter(0)
				if op.cases[0].base.enroll(w) {
					continue
				}
				op.waiters = append(op.waiters, w)
			case n > 1:
				// Poll cases in rotating order for fairness across
				// choice alternatives.
				start := int(rt.seq.Add(1)) % n
				for k := 0; k < n; k++ {
					i := (start + k) % n
					if op.cases[i].base.poll(op, i) {
						committed = true
						break
					}
				}
				if committed {
					continue
				}
				// Nothing ready: enroll in case order. An enroll may
				// itself commit (an event became ready since its poll);
				// later cases are then never registered.
				for i := range op.cases {
					if op.state.Load() != opSyncing {
						committed = true
						break
					}
					w := op.newWaiter(i)
					if op.cases[i].base.enroll(w) {
						committed = true
						break
					}
					op.waiters = append(op.waiters, w)
				}
				if committed {
					continue
				}
			}
		}
		th.parkBlocked(tok)
	}
}

// applyWraps runs the chosen case's wrap procedures, innermost first, with
// breaks implicitly disabled (the paper's rule: a break cannot interrupt
// the post-commit phase unless a wrap explicitly re-enables breaks).
// breaksOn is written only by the owning thread, so the save/restore needs
// no lock.
func applyWraps(th *Thread, op *syncOp) (Value, error) {
	c := &op.cases[op.chosen]
	v := op.result
	if c.wrap1 == nil && len(c.wraps) == 0 {
		return v, nil
	}
	prev := th.breaksOn.Load()
	th.breaksOn.Store(false)
	defer th.breaksOn.Store(prev)
	if c.wraps != nil {
		// wraps were collected outside-in during flatten; apply inside-out.
		for i := len(c.wraps) - 1; i >= 0; i-- {
			v = c.wraps[i](th, v)
		}
		return v, nil
	}
	return c.wrap1(th, v), nil
}

// checkSameRuntime panics if a base event being synced belongs to a
// different runtime than the syncing thread. Multiple runtimes may
// coexist (one per shard in a sharded server), but their channels,
// semaphores, custodians, and threads must never be shared: the match
// would mutate the foreign runtime's queues under the wrong lock, which
// in the best case deadlocks and in the worst silently corrupts a
// rendezvous. The check is one type switch per flattened case.
func checkSameRuntime(th *Thread, b baseEvent) {
	o := eventRuntime(b)
	if o != nil && o != th.rt {
		panic(fmt.Sprintf(
			"core: %T belongs to a different runtime than the syncing thread %v; "+
				"channels, semaphores, externals, and custodians must not be shared across runtimes "+
				"(in a sharded server, shard-local state only — share plain Go state outside the VM instead)",
			b, th))
	}
}

// eventRuntime reports the runtime an event source belongs to, or nil for
// runtime-agnostic events (Always, nack signals created by this very
// sync).
func eventRuntime(b baseEvent) *Runtime {
	switch e := b.(type) {
	case *chanSendEvt:
		return e.ch.rt
	case *chanRecvEvt:
		return e.ch.rt
	case *semEvt:
		return e.s.rt
	case *extEvt:
		return e.x.rt
	case *alarmEvt:
		return e.rt
	case *doneEvt:
		return e.th.rt
	case *custodianDeadEvt:
		return e.c.rt
	}
	return nil
}
