package core

// Sync engine: flatten → poll → register → park → commit/abort.
//
// All matching state is protected by the runtime lock, which makes the
// two-party rendezvous commit atomic: a commit marks both participating
// sync operations committed in one critical section, so an event is chosen
// exactly once and a withdrawal (nack) reliably excludes acceptance and
// vice versa.

const (
	opSyncing = iota
	opCommitted
	opAbortedBreak
	opAbortedKill
)

// syncOp is one in-flight Sync call.
type syncOp struct {
	th        *Thread
	state     int
	breakable bool // a pending break aborts the wait phase
	chosen    int  // case index, valid when committed
	result    Value
	cases     []flatCase
	waiters   []*waiter
	nacks     []*nackSignal
}

// waiter is a registration of one sync case in a base event's wait
// structure.
type waiter struct {
	op      *syncOp
	idx     int
	base    baseEvent
	removed bool
	stop    func() // optional extra cleanup (e.g. alarm timer)
}

// commitOpLocked marks op committed with the given case and value and
// wakes its thread. Caller holds rt.mu and has verified op.state ==
// opSyncing.
func commitOpLocked(op *syncOp, idx int, v Value) {
	op.state = opCommitted
	op.chosen = idx
	op.result = v
	// Fire the nacks that do not cover the chosen case, promptly, so
	// that watchers (e.g. a manager thread's gave-up events) learn of
	// the outcome even before the syncing thread is rescheduled.
	fireLosingNacksLocked(op)
	op.th.cond.Broadcast()
	if h := op.th.rt.sched; h != nil {
		h.Runnable(op.th)
	}
}

// commitSingleLocked commits a blocked waiter from a "became ready" event
// source (alarm fired, thread done, nack fired, semaphore posted). It is a
// no-op unless the waiter is still live, its op undecided, and its thread
// currently allowed to commit; a suspended thread's waiters are left in
// place and re-polled when the thread is resumed.
func commitSingleLocked(w *waiter, v Value) bool {
	if w.removed || w.op.state != opSyncing || !w.op.th.canCommitLocked() {
		return false
	}
	commitOpLocked(w.op, w.idx, v)
	return true
}

// fireLosingNacksLocked fires every nack of a committed op that does not
// cover the chosen case.
func fireLosingNacksLocked(op *syncOp) {
	if len(op.nacks) == 0 {
		return
	}
	var covered map[int]bool
	if op.state == opCommitted {
		c := op.cases[op.chosen].nackIdx
		if len(c) > 0 {
			covered = make(map[int]bool, len(c))
			for _, i := range c {
				covered[i] = true
			}
		}
	}
	for i, n := range op.nacks {
		if covered == nil || !covered[i] {
			n.fireLocked()
		}
	}
}

// fireAllNacksLocked fires every unfired nack of an abandoned op.
func fireAllNacksLocked(op *syncOp) {
	for _, n := range op.nacks {
		n.fireLocked()
	}
}

// repollLocked re-attempts immediate commits for a parked op whose thread
// just became matchable again (resumed, or regained a custodian). Caller
// holds rt.mu.
func repollLocked(op *syncOp) {
	if op.state != opSyncing || !op.th.canCommitLocked() {
		return
	}
	for i := range op.cases {
		if op.cases[i].base.poll(op, i) {
			return
		}
	}
}

// Sync blocks until one of the communications described by e is ready,
// commits it, applies its wrap functions (with breaks implicitly disabled
// from the commit until the outermost wrap completes), and returns the
// resulting value.
//
// If a break signal is delivered while the thread waits with breaks
// enabled, Sync returns ErrBreak and no event is chosen; every nack
// created for this sync fires. If the thread is killed while waiting, the
// sync's nacks fire and the thread unwinds.
func Sync(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, false)
}

// SyncEnableBreak is Sync with breaks enabled during the wait even if the
// thread's break parameter is off, with an exclusive-or guarantee: either
// a break is delivered (ErrBreak, no event chosen) or an event is chosen
// (no break consumed) — never both. Merely wrapping Sync in WithBreaks
// does not provide this guarantee.
func SyncEnableBreak(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, true)
}

func syncImpl(th *Thread, e Event, enableBreak bool) (Value, error) {
	th.gate() // safe point: honor suspension and kill before doing anything

	rt := th.rt
	op := &syncOp{th: th, state: opSyncing}

	rt.mu.Lock()
	op.breakable = enableBreak || th.breaksOn
	prevOp := th.op // nested sync inside a guard procedure
	th.op = op
	// A break that is already pending is delivered at sync entry, before
	// any event can be chosen.
	if op.breakable && th.pendingBreak {
		th.pendingBreak = false
		th.op = prevOp
		rt.mu.Unlock()
		return nil, ErrBreak
	}
	rt.mu.Unlock()

	// On every exit path: restore the op stack, deregister waiters, and
	// fire the nacks appropriate to the outcome (all of them if the sync
	// was abandoned; the losers only if it committed — those already
	// fired at commit time, and firing is idempotent).
	finish := func() {
		rt.mu.Lock()
		th.op = prevOp
		for _, w := range op.waiters {
			w.removed = true
			if w.stop != nil {
				w.stop()
			}
			w.base.unregister(w)
		}
		op.waiters = nil
		if op.state == opCommitted {
			fireLosingNacksLocked(op)
		} else {
			fireAllNacksLocked(op)
		}
		rt.mu.Unlock()
	}
	defer finish()

	// Flatten outside the lock: guard procedures are arbitrary user code
	// and may block, sync, or spawn. A kill or break arriving during
	// flatten is observed below.
	flatten(th, op, e, nil, nil, 0)

	// park blocks until the op's state may have changed. In deterministic
	// mode the thread additionally reports itself blocked and, once woken,
	// waits to be granted its turn before acting on what it observed.
	park := func() {
		if h := rt.sched; h != nil {
			h.Blocked(th)
			th.cond.Wait()
			rt.mu.Unlock()
			h.Pause(th)
			rt.mu.Lock()
			return
		}
		th.cond.Wait()
	}

	rt.mu.Lock()
	for {
		if th.killed {
			rt.mu.Unlock()
			panic(killSentinel{th})
		}
		switch op.state {
		case opAbortedBreak:
			th.pendingBreak = false
			rt.mu.Unlock()
			return nil, ErrBreak
		case opAbortedKill:
			rt.mu.Unlock()
			panic(killSentinel{th})
		case opCommitted:
			rt.mu.Unlock()
			return applyWraps(th, op)
		}
		// A suspended thread must not poll or commit; park until
		// resumed (peers skip it meanwhile).
		if th.suspendedLocked() {
			park()
			continue
		}
		if len(op.waiters) == 0 {
			// First pass (or re-entry after resume without
			// registration): poll cases in rotating order for
			// fairness across choice alternatives.
			n := len(op.cases)
			if n > 0 {
				rt.seq++
				start := int(rt.seq) % n
				for k := 0; k < n; k++ {
					i := (start + k) % n
					if op.cases[i].base.poll(op, i) {
						break
					}
				}
				if op.state == opCommitted {
					continue // handled above
				}
			}
			// Nothing ready: register and park.
			for i := range op.cases {
				w := &waiter{op: op, idx: i, base: op.cases[i].base}
				op.cases[i].base.register(w)
				op.waiters = append(op.waiters, w)
			}
		}
		park()
	}
}

// applyWraps runs the chosen case's wrap procedures, innermost first, with
// breaks implicitly disabled (the paper's rule: a break cannot interrupt
// the post-commit phase unless a wrap explicitly re-enables breaks).
func applyWraps(th *Thread, op *syncOp) (Value, error) {
	wraps := op.cases[op.chosen].wraps
	v := op.result
	if len(wraps) == 0 {
		return v, nil
	}
	th.rt.mu.Lock()
	prev := th.breaksOn
	th.breaksOn = false
	th.rt.mu.Unlock()
	defer func() {
		th.rt.mu.Lock()
		th.breaksOn = prev
		th.rt.mu.Unlock()
	}()
	// wraps were collected outside-in during flatten; apply inside-out.
	for i := len(wraps) - 1; i >= 0; i-- {
		v = wraps[i](th, v)
	}
	return v, nil
}
