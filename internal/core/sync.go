package core

import (
	"fmt"
	"time"
)

// Sync engine: flatten → poll → register → park → commit/abort.
//
// All matching state is protected by the runtime lock, which makes the
// two-party rendezvous commit atomic: a commit marks both participating
// sync operations committed in one critical section, so an event is chosen
// exactly once and a withdrawal (nack) reliably excludes acceptance and
// vice versa.
//
// The rendezvous path is allocation-conscious: syncOp records are pooled
// per thread (a thread has at most one op in flight, plus rare nested ops
// from guard procedures), flattened cases and their waiters live in small
// arrays inside the op, and a sync over a single base event with at most
// one wrap — the overwhelmingly common shape on serving paths — completes
// without any heap allocation at all.

const (
	opSyncing = iota
	opCommitted
	opAbortedBreak
	opAbortedKill
)

// syncInline is the number of flattened cases (and their waiters) stored
// inline in a syncOp. Serving-path syncs are choices of 1–3 alternatives;
// larger choices spill to the heap.
const syncInline = 4

// syncOp is one in-flight Sync call.
type syncOp struct {
	th        *Thread
	state     int
	breakable bool // a pending break aborts the wait phase
	chosen    int  // case index, valid when committed
	result    Value
	prev      *syncOp // saved th.op (nested sync inside a guard procedure)
	cases     []flatCase
	waiters   []*waiter
	nacks     []*nackSignal

	casebuf [syncInline]flatCase
	wbuf    [syncInline]waiter
	wptrbuf [syncInline]*waiter
}

// waiter is a registration of one sync case in a base event's wait
// structure.
type waiter struct {
	op      *syncOp
	idx     int
	base    baseEvent
	removed bool
	// gen invalidates references that can outlive the sync: a real alarm
	// timer callback and a virtual-clock alarm registration both capture
	// the waiter together with its generation, and fire only if the
	// generation still matches. finish bumps it, so a recycled waiter
	// record can never be committed by a stale alarm.
	gen   uint32
	timer *time.Timer // real-clock alarm timer, stopped at deregistration
}

// acquireOpLocked returns a reset sync op, reusing the thread's cached
// record when available. Caller holds rt.mu.
func (t *Thread) acquireOpLocked() *syncOp {
	op := t.opFree
	if op == nil {
		op = &syncOp{}
	} else {
		t.opFree = nil
	}
	op.th = t
	op.state = opSyncing
	op.chosen = 0
	op.result = nil
	op.cases = op.casebuf[:0]
	op.waiters = op.wptrbuf[:0]
	return op
}

// releaseOpLocked clears the op's references and caches it on the thread
// for reuse. Caller holds rt.mu; no base event holds a pointer to the op
// or its waiters anymore (finish deregistered them), and stale alarm
// references are fenced by the waiter generations bumped in finish.
func (t *Thread) releaseOpLocked(op *syncOp) {
	for i := range op.cases {
		op.cases[i] = flatCase{}
	}
	op.cases = nil
	op.waiters = nil
	for i := range op.nacks {
		op.nacks[i] = nil
	}
	op.nacks = op.nacks[:0]
	op.result = nil
	op.prev = nil
	t.opFree = op
}

// newWaiterLocked returns a waiter for case idx, stored inline in the op
// when a slot is free. Caller holds rt.mu.
func (op *syncOp) newWaiterLocked(idx int) *waiter {
	var w *waiter
	if i := len(op.waiters); i < syncInline {
		w = &op.wbuf[i]
	} else {
		w = &waiter{}
	}
	w.op = op
	w.idx = idx
	w.base = op.cases[idx].base
	w.removed = false
	w.timer = nil
	return w
}

// commitOpLocked marks op committed with the given case and value and
// wakes its thread. Caller holds rt.mu and has verified op.state ==
// opSyncing.
func commitOpLocked(op *syncOp, idx int, v Value) {
	op.state = opCommitted
	op.chosen = idx
	op.result = v
	// Fire the nacks that do not cover the chosen case, promptly, so
	// that watchers (e.g. a manager thread's gave-up events) learn of
	// the outcome even before the syncing thread is rescheduled.
	fireLosingNacksLocked(op)
	// A thread's cond has at most one waiter — its own goroutine — so a
	// targeted signal is equivalent to a broadcast and skips the
	// waiter-list scan on every rendezvous.
	op.th.cond.Signal()
	if h := op.th.rt.hook(); h != nil {
		h.SyncCommit(op.th, len(op.cases), idx)
		h.Runnable(op.th)
	}
}

// commitSingleLocked commits a blocked waiter from a "became ready" event
// source (alarm fired, thread done, nack fired, semaphore posted). It is a
// no-op unless the waiter is still live, its op undecided, and its thread
// currently allowed to commit; a suspended thread's waiters are left in
// place and re-polled when the thread is resumed.
func commitSingleLocked(w *waiter, v Value) bool {
	if w.removed || w.op.state != opSyncing || !w.op.th.canCommitLocked() {
		return false
	}
	commitOpLocked(w.op, w.idx, v)
	return true
}

// fireLosingNacksLocked fires every nack of a committed op that does not
// cover the chosen case. The cover check scans the chosen case's (tiny)
// nack-index list directly; no per-sync map is built.
func fireLosingNacksLocked(op *syncOp) {
	if len(op.nacks) == 0 {
		return
	}
	var covered []int
	if op.state == opCommitted {
		covered = op.cases[op.chosen].nackIdx
	}
	for i, n := range op.nacks {
		if !containsIdx(covered, i) {
			n.fireLocked()
		}
	}
}

func containsIdx(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// fireAllNacksLocked fires every unfired nack of an abandoned op.
func fireAllNacksLocked(op *syncOp) {
	for _, n := range op.nacks {
		n.fireLocked()
	}
}

// repollLocked re-attempts immediate commits for a parked op whose thread
// just became matchable again (resumed, or regained a custodian). Caller
// holds rt.mu. It allocates nothing.
func repollLocked(op *syncOp) {
	if op.state != opSyncing || !op.th.canCommitLocked() {
		return
	}
	for i := range op.cases {
		if op.cases[i].base.poll(op, i) {
			return
		}
	}
}

// finish is the single exit path of syncImpl: restore the op stack,
// deregister waiters, fire the nacks appropriate to the outcome (all of
// them if the sync was abandoned; the losers only if it committed — those
// already fired at commit time, and firing is idempotent), and recycle the
// op record.
func (op *syncOp) finish() {
	th := op.th
	rt := th.rt
	rt.mu.Lock()
	th.op = op.prev
	for _, w := range op.waiters {
		w.removed = true
		w.gen++
		if w.timer != nil {
			w.timer.Stop()
			w.timer = nil
		}
		w.base.unregister(w)
		w.base = nil
	}
	if op.state == opCommitted {
		fireLosingNacksLocked(op)
	} else {
		fireAllNacksLocked(op)
	}
	th.releaseOpLocked(op)
	rt.mu.Unlock()
}

// Sync blocks until one of the communications described by e is ready,
// commits it, applies its wrap functions (with breaks implicitly disabled
// from the commit until the outermost wrap completes), and returns the
// resulting value.
//
// If a break signal is delivered while the thread waits with breaks
// enabled, Sync returns ErrBreak and no event is chosen; every nack
// created for this sync fires. If the thread is killed while waiting, the
// sync's nacks fire and the thread unwinds.
//
// Every event synced must belong to th's runtime: sharing a channel,
// semaphore, custodian, or other event source across runtimes is not
// merely unsupported, it is diagnosed — Sync panics with a clear message
// rather than corrupting the foreign runtime's state under the wrong lock.
func Sync(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, false)
}

// SyncEnableBreak is Sync with breaks enabled during the wait even if the
// thread's break parameter is off, with an exclusive-or guarantee: either
// a break is delivered (ErrBreak, no event chosen) or an event is chosen
// (no break consumed) — never both. Merely wrapping Sync in WithBreaks
// does not provide this guarantee.
func SyncEnableBreak(th *Thread, e Event) (Value, error) {
	return syncImpl(th, e, true)
}

func syncImpl(th *Thread, e Event, enableBreak bool) (Value, error) {
	th.gate() // safe point: honor suspension and kill before doing anything

	rt := th.rt

	rt.mu.Lock()
	op := th.acquireOpLocked()
	op.breakable = enableBreak || th.breaksOn
	op.prev = th.op // nested sync inside a guard procedure
	th.op = op
	// A break that is already pending is delivered at sync entry, before
	// any event can be chosen.
	if op.breakable && th.pendingBreak {
		th.pendingBreak = false
		th.op = op.prev
		th.releaseOpLocked(op)
		rt.mu.Unlock()
		return nil, ErrBreak
	}
	rt.mu.Unlock()

	defer op.finish()

	// Flatten outside the lock: guard procedures are arbitrary user code
	// and may block, sync, or spawn. A kill or break arriving during
	// flatten is observed below.
	flatten(th, op, e, nil, nil, nil, 0)

	rt.mu.Lock()
	for {
		if th.killed {
			rt.mu.Unlock()
			panic(killSentinel{th})
		}
		switch op.state {
		case opAbortedBreak:
			th.pendingBreak = false
			rt.mu.Unlock()
			return nil, ErrBreak
		case opAbortedKill:
			rt.mu.Unlock()
			panic(killSentinel{th})
		case opCommitted:
			rt.mu.Unlock()
			return applyWraps(th, op)
		}
		// A suspended thread must not poll or commit; park until
		// resumed (peers skip it meanwhile).
		if th.suspendedLocked() {
			parkLocked(rt, th)
			continue
		}
		if len(op.waiters) == 0 {
			// First pass (or re-entry after resume without registration).
			switch n := len(op.cases); {
			case n == 1:
				// Single-event fast path: no choice bookkeeping. The
				// fairness counter still ticks exactly as in the general
				// path so deterministic-mode schedules (which depend on
				// the rotation state of later multi-way choices) replay
				// unchanged.
				rt.seq++
				if op.cases[0].base.poll(op, 0) {
					continue
				}
				w := op.newWaiterLocked(0)
				op.cases[0].base.register(w)
				op.waiters = append(op.waiters, w)
			case n > 1:
				// Poll cases in rotating order for fairness across
				// choice alternatives.
				rt.seq++
				start := int(rt.seq) % n
				committed := false
				for k := 0; k < n; k++ {
					i := (start + k) % n
					if op.cases[i].base.poll(op, i) {
						committed = true
						break
					}
				}
				if committed {
					continue // handled above
				}
				// Nothing ready: register and park.
				for i := range op.cases {
					w := op.newWaiterLocked(i)
					op.cases[i].base.register(w)
					op.waiters = append(op.waiters, w)
				}
			}
		}
		parkLocked(rt, th)
	}
}

// parkLocked blocks until the thread's state may have changed. With an
// instrumentation installed the thread reports itself blocked first; in
// deterministic mode it additionally, once woken, waits to be granted
// its turn before acting on what it observed. Caller holds rt.mu; it is
// held again on return.
func parkLocked(rt *Runtime, th *Thread) {
	if h := rt.hook(); h != nil {
		h.Blocked(th)
		th.cond.Wait()
		if rt.det.Load() {
			rt.mu.Unlock()
			h.Pause(th)
			rt.mu.Lock()
		}
		return
	}
	th.cond.Wait()
}

// applyWraps runs the chosen case's wrap procedures, innermost first, with
// breaks implicitly disabled (the paper's rule: a break cannot interrupt
// the post-commit phase unless a wrap explicitly re-enables breaks).
func applyWraps(th *Thread, op *syncOp) (Value, error) {
	c := &op.cases[op.chosen]
	v := op.result
	if c.wrap1 == nil && len(c.wraps) == 0 {
		return v, nil
	}
	th.rt.mu.Lock()
	prev := th.breaksOn
	th.breaksOn = false
	th.rt.mu.Unlock()
	defer func() {
		th.rt.mu.Lock()
		th.breaksOn = prev
		th.rt.mu.Unlock()
	}()
	if c.wraps != nil {
		// wraps were collected outside-in during flatten; apply inside-out.
		for i := len(c.wraps) - 1; i >= 0; i-- {
			v = c.wraps[i](th, v)
		}
		return v, nil
	}
	return c.wrap1(th, v), nil
}

// checkSameRuntime panics if a base event being synced belongs to a
// different runtime than the syncing thread. Multiple runtimes may
// coexist (one per shard in a sharded server), but their channels,
// semaphores, custodians, and threads must never be shared: the match
// would mutate the foreign runtime's queues under the wrong lock, which
// in the best case deadlocks and in the worst silently corrupts a
// rendezvous. The check is one type switch per flattened case.
func checkSameRuntime(th *Thread, b baseEvent) {
	o := eventRuntime(b)
	if o != nil && o != th.rt {
		panic(fmt.Sprintf(
			"core: %T belongs to a different runtime than the syncing thread %v; "+
				"channels, semaphores, externals, and custodians must not be shared across runtimes "+
				"(in a sharded server, shard-local state only — share plain Go state outside the VM instead)",
			b, th))
	}
}

// eventRuntime reports the runtime an event source belongs to, or nil for
// runtime-agnostic events (Always, nack signals created by this very
// sync).
func eventRuntime(b baseEvent) *Runtime {
	switch e := b.(type) {
	case *chanSendEvt:
		return e.ch.rt
	case *chanRecvEvt:
		return e.ch.rt
	case *semEvt:
		return e.s.rt
	case *extEvt:
		return e.x.rt
	case *alarmEvt:
		return e.rt
	case *doneEvt:
		return e.th.rt
	case *custodianDeadEvt:
		return e.c.rt
	}
	return nil
}
