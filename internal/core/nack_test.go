package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// nackProbe builds a nack-guarded, never-ready event and reports when its
// nack fires.
func nackProbe(rt *core.Runtime, fired *atomic.Bool) core.Event {
	return core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
		g.Spawn("nack-watcher", func(w *core.Thread) {
			if _, err := core.Sync(w, nack); err == nil {
				fired.Store(true)
			}
		})
		return core.NewChan(rt).RecvEvt() // never ready
	})
}

func TestNackFiresWhenOtherEventChosen(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var fired atomic.Bool
		v, err := core.Sync(th, core.Choice(
			core.Wrap(core.After(rt, time.Millisecond), func(core.Value) core.Value { return "Hello" }),
			nackProbe(rt, &fired),
		))
		if err != nil || v != "Hello" {
			t.Fatalf("got (%v, %v)", v, err)
		}
		waitUntil(t, "nack", fired.Load)
	})
}

func TestNackDoesNotFireWhenChosen(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var fired atomic.Bool
		c := core.NewChan(rt)
		th.Spawn("sender", func(s *core.Thread) { _ = c.Send(s, 42) })
		v, err := core.Sync(th, core.Choice(
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				g.Spawn("watcher", func(w *core.Thread) {
					if _, err := core.Sync(w, nack); err == nil {
						fired.Store(true)
					}
				})
				return c.RecvEvt()
			}),
			core.Never(),
		))
		if err != nil || v != 42 {
			t.Fatalf("got (%v, %v)", v, err)
		}
		time.Sleep(10 * time.Millisecond)
		if fired.Load() {
			t.Fatal("nack fired although its event was chosen")
		}
	})
}

func TestNackFiresOnBreakEscape(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var fired atomic.Bool
		errCh := make(chan error, 1)
		w := th.Spawn("w", func(x *core.Thread) {
			_, err := core.Sync(x, nackProbe(rt, &fired))
			errCh <- err
		})
		time.Sleep(5 * time.Millisecond)
		w.Break()
		if err := <-errCh; err != core.ErrBreak {
			t.Fatalf("err = %v, want ErrBreak", err)
		}
		waitUntil(t, "nack after break", fired.Load)
	})
}

func TestNackFiresOnKill(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var fired atomic.Bool
		w := th.Spawn("w", func(x *core.Thread) {
			_, _ = core.Sync(x, nackProbe(rt, &fired))
			t.Error("sync returned after kill")
		})
		time.Sleep(5 * time.Millisecond)
		w.Kill()
		waitUntil(t, "nack after kill", fired.Load)
	})
}

func TestNackFiresOnTerminateCondemned(t *testing.T) {
	// The paper's termination case: the syncing thread's custodian is
	// shut down and the thread is eventually collected; the nack fires.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var fired atomic.Bool
		c := core.NewCustodian(rt.RootCustodian())
		th.WithCustodian(c, func() {
			th.Spawn("client", func(x *core.Thread) {
				// The watcher must survive the client, so spawn it
				// under the root custodian, as a manager would be.
				x.SetCurrentCustodian(rt.RootCustodian())
				_, _ = core.Sync(x, nackProbe(rt, &fired))
			})
		})
		time.Sleep(5 * time.Millisecond)
		c.Shutdown()
		// Mere suspension must NOT fire the nack: the thread could be
		// resumed and continue the request.
		time.Sleep(10 * time.Millisecond)
		if fired.Load() {
			t.Fatal("nack fired on suspension, before termination")
		}
		rt.TerminateCondemned()
		waitUntil(t, "nack after condemned termination", fired.Load)
	})
}

func TestNackGuardReceivesFreshNackPerSync(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var nacks []core.Event
		ev := core.Choice(
			core.Always("x"),
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				nacks = append(nacks, nack)
				return core.Never()
			}),
		)
		for i := 0; i < 3; i++ {
			if _, err := core.Sync(th, ev); err != nil {
				t.Fatalf("sync: %v", err)
			}
		}
		if len(nacks) != 3 {
			t.Fatalf("guard ran %d times, want 3", len(nacks))
		}
		if nacks[0] == nacks[1] || nacks[1] == nacks[2] {
			t.Fatal("nack events were not fresh per sync")
		}
	})
}

func TestNackIsLevelTriggered(t *testing.T) {
	// A nack that fired stays ready: syncing on it later still succeeds.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var captured core.Event
		_, err := core.Sync(th, core.Choice(
			core.Always(1),
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				captured = nack
				return core.Never()
			}),
		))
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		if _, err := core.Sync(th, captured); err != nil {
			t.Fatalf("sync on fired nack: %v", err)
		}
	})
}

func TestGuardMayBlockAndSync(t *testing.T) {
	// Guard procedures run in the syncing thread and may themselves use
	// channels (the msg-queue request idiom).
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		req := core.NewChan(rt)
		reply := core.NewChan(rt)
		th.Spawn("server", func(s *core.Thread) {
			v, err := req.Recv(s)
			if err != nil {
				return
			}
			_ = reply.Send(s, v.(int)*2)
		})
		v, err := core.Sync(th, core.Guard(func(g *core.Thread) core.Event {
			if err := req.Send(g, 21); err != nil {
				t.Errorf("nested send: %v", err)
			}
			return reply.RecvEvt()
		}))
		if err != nil || v != 42 {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

func TestGuardDepthLimit(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var self core.Event
		self = core.Guard(func(*core.Thread) core.Event { return self })
		defer func() {
			if recover() == nil {
				t.Fatal("self-referential guard did not panic")
			}
		}()
		_, _ = core.Sync(th, self)
	})
}

func TestMultipleNacksOnlyLosersFire(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		th.Spawn("sender", func(s *core.Thread) { _ = c.Send(s, "win") })
		var winFired, loseFired atomic.Bool
		watch := func(g *core.Thread, nack core.Event, flag *atomic.Bool) {
			g.Spawn("watcher", func(w *core.Thread) {
				if _, err := core.Sync(w, nack); err == nil {
					flag.Store(true)
				}
			})
		}
		v, err := core.Sync(th, core.Choice(
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				watch(g, nack, &winFired)
				return c.RecvEvt()
			}),
			core.NackGuard(func(g *core.Thread, nack core.Event) core.Event {
				watch(g, nack, &loseFired)
				return core.Never()
			}),
		))
		if err != nil || v != "win" {
			t.Fatalf("got (%v, %v)", v, err)
		}
		waitUntil(t, "loser nack", loseFired.Load)
		time.Sleep(10 * time.Millisecond)
		if winFired.Load() {
			t.Fatal("winner's nack fired")
		}
	})
}
