package core_test

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// blockedPipe returns an OS pipe with nothing written: a read from r
// blocks in the kernel until the pipe is closed.
func blockedPipe(t *testing.T) (r, w *os.File) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	return r, w
}

func runThread(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExternalCompletesBlockedSync(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		x := core.NewExternal(rt)
		go func() {
			time.Sleep(5 * time.Millisecond)
			x.Complete("result")
		}()
		v, err := core.Sync(th, x.Evt())
		if err != nil || v != "result" {
			t.Fatalf("(%v, %v)", v, err)
		}
		// Level-triggered: a later sync sees the same value.
		v, err = core.Sync(th, x.Evt())
		if err != nil || v != "result" {
			t.Fatalf("re-sync: (%v, %v)", v, err)
		}
	})
}

func TestExternalFirstCompletionWins(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		x := core.NewExternal(rt)
		if !x.Complete(1) {
			t.Fatal("first Complete rejected")
		}
		if x.Complete(2) {
			t.Fatal("second Complete accepted")
		}
		if v, _ := core.Sync(th, x.Evt()); v != 1 {
			t.Fatalf("got %v, want 1", v)
		}
	})
}

func TestExternalLosesChoiceToAlarm(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		x := core.NewExternal(rt) // never completes
		v, err := core.Sync(th, core.Choice(
			x.Evt(),
			core.Wrap(core.After(rt, 2*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("(%v, %v)", v, err)
		}
	})
}

// TestExternalKillWhileBlocked is the safe-point claim: a runtime thread
// waiting on an OS-style completion is killable, its sync's nacks fire,
// and a completion arriving after the kill is harmless.
func TestExternalKillWhileBlocked(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		x := core.NewExternal(rt)
		nacked := make(chan struct{}, 1)
		waiter := th.Spawn("ext-waiter", func(w *core.Thread) {
			_, _ = core.Sync(w, core.NackGuard(func(_ *core.Thread, nack core.Event) core.Event {
				w.Spawn("nack-watch", func(nw *core.Thread) {
					if _, err := core.Sync(nw, nack); err == nil {
						nacked <- struct{}{}
					}
				})
				return x.Evt()
			}))
			t.Error("sync returned after kill")
		})
		if err := core.Sleep(th, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		waiter.Kill()
		select {
		case <-nacked:
		case <-time.After(5 * time.Second):
			t.Fatal("nack did not fire on kill")
		}
		if !waiter.Done() {
			// Kill takes effect at the wait's next wake-up.
			_, _ = core.Sync(th, waiter.DoneEvt())
		}
		x.Complete("late") // must not panic or wedge anything
	})
}

func TestExternalSuspendedThreadCommitsOnResume(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		x := core.NewExternal(rt)
		got := make(chan core.Value, 1)
		waiter := th.Spawn("ext-waiter", func(w *core.Thread) {
			v, err := core.Sync(w, x.Evt())
			if err != nil {
				t.Errorf("sync: %v", err)
				return
			}
			got <- v
		})
		if err := core.Sleep(th, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		waiter.Suspend()
		x.Complete(42) // fires while the waiter is suspended
		select {
		case <-got:
			t.Fatal("suspended thread committed an event")
		case <-time.After(10 * time.Millisecond):
		}
		core.Resume(waiter)
		select {
		case v := <-got:
			if v != 42 {
				t.Fatalf("got %v", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("resumed thread never committed the completion")
		}
	})
}

// TestStartCountsHelpers: Start's helper goroutine is visible in
// PendingExternals while its blocking call is in flight and drops off
// once the call returns.
func TestStartCountsHelpers(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		release := make(chan struct{})
		x := core.NewExternal(rt).Start(func() core.Value {
			<-release
			return "done"
		})
		if n := rt.PendingExternals(); n != 1 {
			t.Fatalf("PendingExternals = %d, want 1", n)
		}
		close(release)
		if v, err := core.Sync(th, x.Evt()); err != nil || v != "done" {
			t.Fatalf("(%v, %v)", v, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for rt.PendingExternals() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := rt.PendingExternals(); n != 0 {
			t.Fatalf("PendingExternals = %d after completion", n)
		}
	})
}

// TestStartEvtRunsOnce: abandoning a sync on a StartEvt event (losing
// the choice to an alarm) and re-syncing the same event re-attaches to
// the in-flight call instead of issuing the blocking operation twice.
func TestStartEvtRunsOnce(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		var starts atomic.Int32
		release := make(chan struct{})
		ev := core.NewExternal(rt).StartEvt(func() core.Value {
			starts.Add(1)
			<-release
			return "io-result"
		})
		v, err := core.Sync(th, core.Choice(
			ev,
			core.Wrap(core.After(rt, 2*time.Millisecond), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "timeout" {
			t.Fatalf("first sync: (%v, %v)", v, err)
		}
		close(release)
		v, err = core.Sync(th, ev)
		if err != nil || v != "io-result" {
			t.Fatalf("second sync: (%v, %v)", v, err)
		}
		if n := starts.Load(); n != 1 {
			t.Fatalf("blocking fn started %d times, want 1", n)
		}
	})
}

func TestCustodianDeadEvt(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		cust := core.NewCustodian(rt.RootCustodian())
		observed := make(chan struct{})
		th.Spawn("watchdog", func(w *core.Thread) {
			if _, err := core.Sync(w, cust.DeadEvt()); err == nil {
				close(observed)
			}
		})
		select {
		case <-observed:
			t.Fatal("dead event fired before shutdown")
		case <-time.After(5 * time.Millisecond):
		}
		cust.Shutdown()
		select {
		case <-observed:
		case <-time.After(5 * time.Second):
			t.Fatal("dead event did not fire on shutdown")
		}
		// Level-triggered, and ready for custodians born dead.
		if _, err := core.Sync(th, cust.DeadEvt()); err != nil {
			t.Fatalf("post-shutdown sync: %v", err)
		}
		stillborn := core.NewCustodian(cust)
		if _, err := core.Sync(th, stillborn.DeadEvt()); err != nil {
			t.Fatalf("stillborn sync: %v", err)
		}
	})
}

// TestExternalBridgesRealBlockingRead drives the intended use end to end
// at the core level: a helper goroutine blocked in a pipe read, the fd
// registered with a custodian, a runtime thread multiplexing the
// completion with an alarm — and custodian shutdown unblocking the helper.
func TestExternalBridgesRealBlockingRead(t *testing.T) {
	runThread(t, func(rt *core.Runtime, th *core.Thread) {
		cust := core.NewCustodian(rt.RootCustodian())
		r, w := blockedPipe(t)
		if err := cust.Register(r); err != nil {
			t.Fatal(err)
		}
		if err := cust.Register(w); err != nil {
			t.Fatal(err)
		}
		ev := core.NewExternal(rt).StartEvt(func() core.Value {
			buf := make([]byte, 8)
			_, err := r.Read(buf)
			return err
		})
		v, err := core.Sync(th, core.Choice(
			ev,
			core.Wrap(core.After(rt, 2*time.Millisecond), func(core.Value) core.Value { return "still-blocked" }),
		))
		if err != nil || v != "still-blocked" {
			t.Fatalf("(%v, %v)", v, err)
		}
		cust.Shutdown() // closes the pipe: the helper's read must return
		v, err = core.Sync(th, ev)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatal("read succeeded after custodian closed the fd")
		}
		deadline := time.Now().Add(5 * time.Second)
		for rt.PendingExternals() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := rt.PendingExternals(); n != 0 {
			t.Fatalf("%d helpers leaked after fd close", n)
		}
	})
}
