package core

import "sync"

// Semaphore is a counting semaphore integrated with the event system. A
// wait event is ready when the count is positive; committing it decrements
// the count atomically with the choice, so a semaphore wait can be
// multiplexed with other events. A suspended thread cannot take a post.
//
// The count and waiter queue live under the semaphore's own mutex;
// disjoint semaphores never contend. Commits go through the op claim
// protocol (sync.go), so posting hands counts only to ops that are still
// undecided and whose threads are matchable.
type Semaphore struct {
	rt    *Runtime
	mu    sync.Mutex
	count int
	q     waitq
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(rt *Runtime, count int) *Semaphore {
	if count < 0 {
		count = 0
	}
	return &Semaphore{rt: rt, count: count}
}

// Post increments the count and wakes a blocked waiter if one can commit.
func (s *Semaphore) Post() {
	s.mu.Lock()
	s.count++
	s.drainLocked()
	s.mu.Unlock()
}

// drainLocked hands available counts to committable blocked waiters.
// Caller holds s.mu. A suspended waiter stays registered (the resume path
// re-polls); a decided waiter's slot is cleared.
func (s *Semaphore) drainLocked() {
	if s.count == 0 {
		return
	}
	s.q.visit(func(w *waiter) (drop, cont bool) {
		if s.count == 0 {
			return false, false
		}
		if !w.op.claim() {
			return true, true // spent registration
		}
		if !w.op.th.matchable.Load() {
			w.op.unclaim()
			return false, true
		}
		s.count--
		finalizeCommit(w.op, w.idx, Unit{})
		return true, true
	})
}

// Count returns the current count.
func (s *Semaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// TryWait decrements the count if it is positive, without blocking.
func (s *Semaphore) TryWait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// WaitEvt returns an event that is ready when the count is positive and
// decrements it upon commit.
func (s *Semaphore) WaitEvt() Event { return &semEvt{s: s} }

// Wait performs Sync on WaitEvt.
func (s *Semaphore) Wait(th *Thread) error {
	_, err := Sync(th, s.WaitEvt())
	return err
}

type semEvt struct {
	s *Semaphore
}

func (*semEvt) isEvent() {}

func (e *semEvt) poll(op *syncOp, idx int) bool {
	s := e.s
	s.mu.Lock()
	committed := s.takeLocked(op, idx)
	s.mu.Unlock()
	return committed
}

// takeLocked attempts to hand one count to op. Caller holds s.mu. The
// count is decremented only after the claim succeeds, so a failed claim
// (op decided elsewhere) never loses a count.
func (s *Semaphore) takeLocked(op *syncOp, idx int) bool {
	if s.count == 0 {
		return false
	}
	if !op.claim() {
		return false
	}
	s.count--
	finalizeCommit(op, idx, Unit{})
	return true
}

func (e *semEvt) enroll(w *waiter) bool {
	s := e.s
	s.mu.Lock()
	committed := s.takeLocked(w.op, w.idx)
	if !committed {
		// Enqueue unless the op is already terminal. opClaimed is a
		// transient state — a concurrent committer's claim can roll back
		// (a two-party pairing that fails on the peer, a commitReady that
		// finds the thread unmatchable) — so skipping the registration in
		// that window would let the op return to opSyncing with no queue
		// entry: a later Post would find no waiter and the thread would
		// sleep forever. A registration enqueued for an op that turns out
		// terminal is harmless — drainLocked drops spent entries.
		if st := w.op.state.Load(); st == opSyncing || st == opClaimed {
			s.q.enqueue(w)
		}
	}
	s.mu.Unlock()
	return committed
}

func (e *semEvt) cancel(w *waiter) {
	e.s.mu.Lock()
	e.s.q.cancel(w)
	e.s.mu.Unlock()
}
