package core

// Semaphore is a counting semaphore integrated with the event system. A
// wait event is ready when the count is positive; committing it decrements
// the count atomically with the choice, so a semaphore wait can be
// multiplexed with other events. A suspended thread cannot take a post.
type Semaphore struct {
	rt      *Runtime
	count   int
	waiters []*waiter
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(rt *Runtime, count int) *Semaphore {
	if count < 0 {
		count = 0
	}
	return &Semaphore{rt: rt, count: count}
}

// Post increments the count and wakes a blocked waiter if one can commit.
func (s *Semaphore) Post() {
	s.rt.mu.Lock()
	s.count++
	s.drainLocked()
	s.rt.mu.Unlock()
}

// drainLocked hands available counts to matchable blocked waiters.
func (s *Semaphore) drainLocked() {
	if s.count == 0 {
		return
	}
	s.waiters = compact(s.waiters)
	for _, w := range s.waiters {
		if s.count == 0 {
			return
		}
		if commitSingleLocked(w, Unit{}) {
			s.count--
		}
	}
}

// Count returns the current count.
func (s *Semaphore) Count() int {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.count
}

// TryWait decrements the count if it is positive, without blocking.
func (s *Semaphore) TryWait() bool {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// WaitEvt returns an event that is ready when the count is positive and
// decrements it upon commit.
func (s *Semaphore) WaitEvt() Event { return &semEvt{s: s} }

// Wait performs Sync on WaitEvt.
func (s *Semaphore) Wait(th *Thread) error {
	_, err := Sync(th, s.WaitEvt())
	return err
}

type semEvt struct {
	s *Semaphore
}

func (*semEvt) isEvent() {}

func (e *semEvt) poll(op *syncOp, idx int) bool {
	if e.s.count == 0 {
		return false
	}
	e.s.count--
	commitOpLocked(op, idx, Unit{})
	return true
}

func (e *semEvt) register(w *waiter) {
	e.s.waiters = append(e.s.waiters, w)
}

func (e *semEvt) unregister(*waiter) {
	e.s.waiters = compact(e.s.waiters)
}
