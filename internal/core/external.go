package core

import "sync"

// External bridges blocking OS calls (socket reads, accepts, file I/O)
// into the event system. It is a one-shot, level-triggered completion
// cell: a plain helper goroutine — *outside* the runtime, not suspendable
// or killable — performs the blocking call and Completes the cell with
// the result, while runtime threads observe the completion as a
// first-class event via Evt.
//
// This is the paper's custodian/port story transplanted to Go: MzScheme
// threads block on OS ports inside the scheduler, remaining suspendable
// and killable, and a custodian shutdown closes the port out from under
// them. Here a runtime thread never issues the OS call itself; it syncs
// on the completion event, which is a safe point like any other, so it
// can be suspended, killed, or choose a timeout alternative while the
// helper is stuck in the kernel. The helper goroutine cannot be stopped —
// Go provides no mechanism — so reclamation is the custodian's job:
// register the fd (net.Conn, net.Listener, os.File) with the owning
// custodian, and its shutdown closes the fd, forcing the blocked call to
// return and the helper to exit.
//
// Complete may be called from any goroutine. Once fired the cell stays
// ready forever (like a nack signal), so every syncing thread — and a
// thread that syncs long after the fact — observes the same value:
// External doubles as a one-shot broadcast, which netsvc uses as its
// drain signal.
//
// The cell's matching state is the shared oneshot core under its own
// lock; the runtime lock is involved only in deterministic mode, where
// completions are queued on the runtime's FIFO delivery queue.
type External struct {
	rt  *Runtime
	sig oneshot

	// Deterministic-mode delivery queue state, guarded by rt.mu: a
	// completion is parked here until the scheduler performs a
	// DeliverNextExternal step, so the commit point is a recorded
	// scheduling decision rather than a race with the completer.
	queued bool
	qv     Value
}

// NewExternal creates an uncompleted cell.
func NewExternal(rt *Runtime) *External { return &External{rt: rt} }

// Complete fires the cell with v and commits any matchable waiters. It
// returns false if the cell had already fired (the first value wins).
// Safe to call from plain goroutines.
func (x *External) Complete(v Value) bool {
	if x.rt.det.Load() {
		x.rt.mu.Lock()
		if x.queued || x.sig.fired.Load() {
			x.rt.mu.Unlock()
			return false
		}
		x.queued = true
		x.qv = v
		x.rt.extq = append(x.rt.extq, x)
		x.rt.mu.Unlock()
		return true
	}
	return x.sig.fire(v)
}

// deliver fires a det-mode queued completion. Called by the scheduler's
// DeliverNextExternal step with rt.mu NOT held (fire commits waiters,
// which must run above only leaf locks).
func (x *External) deliver() { x.sig.fire(x.qv) }

// Completed reports whether Complete has been called (in deterministic
// mode the value may still be queued, awaiting its delivery step).
func (x *External) Completed() bool {
	if x.sig.fired.Load() {
		return true
	}
	if !x.rt.det.Load() {
		return false
	}
	x.rt.mu.Lock()
	defer x.rt.mu.Unlock()
	return x.queued || x.sig.fired.Load()
}

// Evt returns an event that is ready once the cell has completed; its
// value is the completion value.
func (x *External) Evt() Event { return &extEvt{x: x} }

type extEvt struct {
	x *External
}

func (*extEvt) isEvent() {}

func (e *extEvt) poll(op *syncOp, idx int) bool { return e.x.sig.poll(op, idx) }
func (e *extEvt) enroll(w *waiter) bool         { return e.x.sig.enroll(w) }
func (e *extEvt) cancel(w *waiter)              { e.x.sig.cancel(w) }

// Start runs fn on a helper goroutine immediately; the cell completes
// with fn's result. It returns the cell, so the two-step shape
// NewExternal(rt).Start(fn) composes with cells handed out before the
// work is chosen. The
// helper is not tracked by Runtime.Shutdown; the caller must arrange for
// fn to unblock eventually, normally by registering the resource fn
// blocks on with a custodian so that shutdown closes it.
// PendingExternals counts helpers still running, for leak tests.
//
// Start may be called at most once per cell; if the cell was completed
// by other means first, fn's result loses the usual first-value race.
func (x *External) Start(fn func() Value) *External {
	x.rt.externals.Add(1)
	go func() {
		defer x.rt.externals.Add(-1)
		x.Complete(fn())
	}()
	return x
}

// StartEvt wraps a blocking call as an event: the first sync on the
// returned event starts fn on a helper goroutine (via Start), and the
// event becomes ready with fn's result. The start is memoized, so
// abandoning the sync — a lost choice, a break, a kill — and syncing the
// same event again re-attaches to the in-flight call rather than issuing
// it twice. fn therefore runs at most once per returned event, and at
// most once per cell.
func (x *External) StartEvt(fn func() Value) Event {
	var once sync.Once
	return Guard(func(*Thread) Event {
		once.Do(func() { x.Start(fn) })
		return x.Evt()
	})
}

// PendingExternals reports the number of Start helper goroutines whose
// blocking call has not yet returned.
func (rt *Runtime) PendingExternals() int {
	return int(rt.externals.Load())
}
