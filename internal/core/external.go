package core

import "sync"

// External bridges blocking OS calls (socket reads, accepts, file I/O)
// into the event system. It is a one-shot, level-triggered completion
// cell: a plain helper goroutine — *outside* the runtime, not suspendable
// or killable — performs the blocking call and Completes the cell with
// the result, while runtime threads observe the completion as a
// first-class event via Evt.
//
// This is the paper's custodian/port story transplanted to Go: MzScheme
// threads block on OS ports inside the scheduler, remaining suspendable
// and killable, and a custodian shutdown closes the port out from under
// them. Here a runtime thread never issues the OS call itself; it syncs
// on the completion event, which is a safe point like any other, so it
// can be suspended, killed, or choose a timeout alternative while the
// helper is stuck in the kernel. The helper goroutine cannot be stopped —
// Go provides no mechanism — so reclamation is the custodian's job:
// register the fd (net.Conn, net.Listener, os.File) with the owning
// custodian, and its shutdown closes the fd, forcing the blocked call to
// return and the helper to exit.
//
// Complete may be called from any goroutine. Once fired the cell stays
// ready forever (like a nack signal), so every syncing thread — and a
// thread that syncs long after the fact — observes the same value:
// External doubles as a one-shot broadcast, which netsvc uses as its
// drain signal.
type External struct {
	rt      *Runtime
	fired   bool
	queued  bool // deterministic mode: completed but not yet delivered
	v       Value
	waiters []*waiter
}

// NewExternal creates an uncompleted cell.
func NewExternal(rt *Runtime) *External { return &External{rt: rt} }

// Complete fires the cell with v and commits any matchable waiters. It
// returns false if the cell had already fired (the first value wins).
// Safe to call from plain goroutines.
func (x *External) Complete(v Value) bool {
	x.rt.mu.Lock()
	defer x.rt.mu.Unlock()
	if x.fired || x.queued {
		return false
	}
	if x.rt.det.Load() {
		// Deterministic mode: completions are funneled through a FIFO
		// delivery queue and land only when the scheduler performs a
		// DeliverNextExternal step, so the commit point is a recorded
		// scheduling decision rather than a race with the completer.
		x.queued = true
		x.v = v
		x.rt.extq = append(x.rt.extq, x)
		return true
	}
	x.fired = true
	x.v = v
	// A suspended waiter is skipped here and left registered; the resume
	// path re-polls its sync, and poll sees fired. (Same discipline as
	// nackSignal.)
	for _, w := range x.waiters {
		commitSingleLocked(w, x.v)
	}
	x.waiters = nil
	return true
}

// Completed reports whether Complete has been called (in deterministic
// mode the value may still be queued, awaiting its delivery step).
func (x *External) Completed() bool {
	x.rt.mu.Lock()
	defer x.rt.mu.Unlock()
	return x.fired || x.queued
}

// Evt returns an event that is ready once the cell has completed; its
// value is the completion value.
func (x *External) Evt() Event { return &extEvt{x: x} }

type extEvt struct {
	x *External
}

func (*extEvt) isEvent() {}

func (e *extEvt) poll(op *syncOp, idx int) bool {
	if !e.x.fired {
		return false
	}
	commitOpLocked(op, idx, e.x.v)
	return true
}

func (e *extEvt) register(w *waiter) {
	e.x.waiters = append(e.x.waiters, w)
}

func (e *extEvt) unregister(*waiter) {
	e.x.waiters = compact(e.x.waiters)
}

// Start runs fn on a helper goroutine immediately; the cell completes
// with fn's result. It returns the cell, so the two-step shape
// NewExternal(rt).Start(fn) composes with cells handed out before the
// work is chosen. The
// helper is not tracked by Runtime.Shutdown; the caller must arrange for
// fn to unblock eventually, normally by registering the resource fn
// blocks on with a custodian so that shutdown closes it.
// PendingExternals counts helpers still running, for leak tests.
//
// Start may be called at most once per cell; if the cell was completed
// by other means first, fn's result loses the usual first-value race.
func (x *External) Start(fn func() Value) *External {
	x.rt.externals.Add(1)
	go func() {
		defer x.rt.externals.Add(-1)
		x.Complete(fn())
	}()
	return x
}

// StartEvt wraps a blocking call as an event: the first sync on the
// returned event starts fn on a helper goroutine (via Start), and the
// event becomes ready with fn's result. The start is memoized, so
// abandoning the sync — a lost choice, a break, a kill — and syncing the
// same event again re-attaches to the in-flight call rather than issuing
// it twice. fn therefore runs at most once per returned event, and at
// most once per cell.
func (x *External) StartEvt(fn func() Value) Event {
	var once sync.Once
	return Guard(func(*Thread) Event {
		once.Do(func() { x.Start(fn) })
		return x.Evt()
	})
}

// PendingExternals reports the number of Start helper goroutines whose
// blocking call has not yet returned.
func (rt *Runtime) PendingExternals() int {
	return int(rt.externals.Load())
}
