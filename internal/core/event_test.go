package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestChannelRendezvous(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		th.Spawn("sender", func(s *core.Thread) {
			_, _ = core.Sync(s, c.SendEvt("Hello"))
		})
		v, err := core.Sync(th, c.RecvEvt())
		if err != nil || v != "Hello" {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

func TestChannelSendBlocksUntilReceiver(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		var sent atomic.Bool
		th.Spawn("sender", func(s *core.Thread) {
			_ = c.Send(s, 1)
			sent.Store(true)
		})
		time.Sleep(10 * time.Millisecond)
		if sent.Load() {
			t.Fatal("send completed without a receiver")
		}
		if _, err := c.Recv(th); err != nil {
			t.Fatalf("recv: %v", err)
		}
		waitUntil(t, "send completion", sent.Load)
	})
}

func TestChoicePicksReadyEvent(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewChan(rt)
		c2 := core.NewChan(rt)
		th.Spawn("s1", func(s *core.Thread) { _ = c1.Send(s, "Hello") })
		th.Spawn("s2", func(s *core.Thread) { _ = c2.Send(s, "Nihao") })
		cc := core.Choice(c1.RecvEvt(), c2.RecvEvt())
		a, err := core.Sync(th, cc)
		if err != nil {
			t.Fatalf("sync 1: %v", err)
		}
		b, err := core.Sync(th, cc)
		if err != nil {
			t.Fatalf("sync 2: %v", err)
		}
		got := map[any]bool{a: true, b: true}
		if !got["Hello"] || !got["Nihao"] {
			t.Fatalf("expected both strings, got %v and %v", a, b)
		}
	})
}

func TestChoiceCommitsExactlyOne(t *testing.T) {
	// Even if both senders are ready, only one receive in the choice is
	// chosen per sync; the other sender remains blocked.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewChan(rt)
		c2 := core.NewChan(rt)
		var completed atomic.Int64
		th.Spawn("s1", func(s *core.Thread) {
			_ = c1.Send(s, 1)
			completed.Add(1)
		})
		th.Spawn("s2", func(s *core.Thread) {
			_ = c2.Send(s, 2)
			completed.Add(1)
		})
		time.Sleep(5 * time.Millisecond)
		if _, err := core.Sync(th, core.Choice(c1.RecvEvt(), c2.RecvEvt())); err != nil {
			t.Fatalf("sync: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
		if n := completed.Load(); n != 1 {
			t.Fatalf("expected exactly 1 completed sender, got %d", n)
		}
	})
}

func TestChoiceFairness(t *testing.T) {
	// Syncing repeatedly on a choice of two always-ready events must pick
	// both sides: choice is arbitrary but fair.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		counts := map[any]int{}
		ev := core.Choice(core.Always("a"), core.Always("b"))
		for i := 0; i < 200; i++ {
			v, err := core.Sync(th, ev)
			if err != nil {
				t.Fatalf("sync: %v", err)
			}
			counts[v]++
		}
		if counts["a"] == 0 || counts["b"] == 0 {
			t.Fatalf("unfair choice: %v", counts)
		}
	})
}

func TestWrapTransformsValue(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewChan(rt)
		th.Spawn("s", func(s *core.Thread) { _ = c1.Send(s, "Hello") })
		v, err := core.Sync(th, core.Wrap(c1.RecvEvt(), func(x core.Value) core.Value {
			return []any{x, "from 1"}
		}))
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		got := v.([]any)
		if got[0] != "Hello" || got[1] != "from 1" {
			t.Fatalf("wrap result: %v", got)
		}
	})
}

func TestNestedWrapsApplyInsideOut(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		e := core.Wrap(core.Wrap(core.Always(1), func(v core.Value) core.Value {
			return v.(int) + 1 // inner: runs first
		}), func(v core.Value) core.Value {
			return v.(int) * 10 // outer: runs second
		})
		v, err := core.Sync(th, e)
		if err != nil || v != 20 {
			t.Fatalf("got (%v, %v), want 20", v, err)
		}
	})
}

func TestGuardRunsPerSync(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var calls atomic.Int64
		e := core.Guard(func(*core.Thread) core.Event {
			calls.Add(1)
			return core.Always(calls.Load())
		})
		for want := int64(1); want <= 3; want++ {
			v, err := core.Sync(th, e)
			if err != nil || v != want {
				t.Fatalf("sync %d: got (%v, %v)", want, v, err)
			}
		}
	})
}

func TestGuardTimeoutIdiom(t *testing.T) {
	// The paper's one-sec-timeout example: the alarm time is computed at
	// sync time, not at event creation time.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		timeout := core.After(rt, 10*time.Millisecond)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, err := core.Sync(th, timeout); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
				t.Fatalf("iteration %d: timeout fired after %v", i, elapsed)
			}
		}
	})
}

func TestAlwaysAndNever(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		v, err := core.Sync(th, core.Choice(core.Never(), core.Always(42), core.Never()))
		if err != nil || v != 42 {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

func TestAlarmAtAbsoluteTime(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		at := time.Now().Add(15 * time.Millisecond)
		if _, err := core.Sync(th, core.AlarmAt(rt, at)); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if time.Now().Before(at) {
			t.Fatal("alarm fired early")
		}
		// An alarm in the past is immediately ready.
		start := time.Now()
		if _, err := core.Sync(th, core.AlarmAt(rt, time.Now().Add(-time.Hour))); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("past alarm blocked")
		}
	})
}

func TestChoiceSendAndRecvSameChannelDoesNotSelfMatch(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = rt.Run(func(peer *core.Thread) {
				// The peer offers both directions on one channel; it
				// must pair with us, never with itself.
				v, err := core.Sync(peer, core.Choice(
					core.Wrap(c.SendEvt("from-peer"), func(core.Value) core.Value { return "sent" }),
					core.Wrap(c.RecvEvt(), func(v core.Value) core.Value { return v }),
				))
				if err != nil {
					t.Errorf("peer sync: %v", err)
				}
				if v != "sent" && v != "from-main" {
					t.Errorf("peer got %v", v)
				}
			})
		}()
		v, err := core.Sync(th, core.Choice(
			core.Wrap(c.SendEvt("from-main"), func(core.Value) core.Value { return "sent" }),
			core.Wrap(c.RecvEvt(), func(v core.Value) core.Value { return v }),
		))
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		if v != "sent" && v != "from-peer" {
			t.Fatalf("main got %v", v)
		}
		<-done
	})
}

func TestSemaphoreEvt(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := core.NewSemaphore(rt, 0)
		var acquired atomic.Int64
		for i := 0; i < 3; i++ {
			th.Spawn("waiter", func(w *core.Thread) {
				if err := s.Wait(w); err == nil {
					acquired.Add(1)
				}
			})
		}
		time.Sleep(5 * time.Millisecond)
		if acquired.Load() != 0 {
			t.Fatal("semaphore granted without post")
		}
		s.Post()
		waitUntil(t, "one acquisition", func() bool { return acquired.Load() == 1 })
		time.Sleep(5 * time.Millisecond)
		if acquired.Load() != 1 {
			t.Fatalf("posted once, acquired %d", acquired.Load())
		}
		s.Post()
		s.Post()
		waitUntil(t, "all acquisitions", func() bool { return acquired.Load() == 3 })
		if s.Count() != 0 {
			t.Fatalf("count = %d, want 0", s.Count())
		}
	})
}

func TestSemaphoreTryWait(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := core.NewSemaphore(rt, 2)
		if !s.TryWait() || !s.TryWait() {
			t.Fatal("TryWait failed with positive count")
		}
		if s.TryWait() {
			t.Fatal("TryWait succeeded with zero count")
		}
	})
}

func TestSuspendedThreadCannotTakeSemaphore(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		s := core.NewSemaphore(rt, 0)
		var winner atomic.Value
		blocked := th.Spawn("blocked", func(w *core.Thread) {
			if err := s.Wait(w); err == nil {
				winner.CompareAndSwap(nil, "blocked")
			}
		})
		time.Sleep(5 * time.Millisecond)
		blocked.Suspend()
		th.Spawn("runner", func(w *core.Thread) {
			if err := s.Wait(w); err == nil {
				winner.CompareAndSwap(nil, "runner")
			}
		})
		time.Sleep(5 * time.Millisecond)
		s.Post()
		waitUntil(t, "a winner", func() bool { return winner.Load() != nil })
		if winner.Load() != "runner" {
			t.Fatalf("suspended thread took the post: winner=%v", winner.Load())
		}
		blocked.Kill()
	})
}

func TestSyncResumedThreadCompletesRendezvous(t *testing.T) {
	// A thread suspended while blocked in sync becomes matchable again on
	// resume and completes a pending rendezvous.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewChan(rt)
		var got atomic.Value
		receiver := th.Spawn("receiver", func(w *core.Thread) {
			v, err := c.Recv(w)
			if err == nil {
				got.Store(v)
			}
		})
		time.Sleep(5 * time.Millisecond)
		receiver.Suspend()

		sendDone := make(chan struct{})
		go func() {
			defer close(sendDone)
			_ = rt.Run(func(s *core.Thread) { _ = c.Send(s, "late") })
		}()
		time.Sleep(10 * time.Millisecond)
		if got.Load() != nil {
			t.Fatal("rendezvous completed with suspended receiver")
		}
		core.Resume(receiver)
		<-sendDone
		waitUntil(t, "value delivery", func() bool { return got.Load() == "late" })
	})
}

func TestThreadDoneEvtInChoice(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		child := th.Spawn("child", func(w *core.Thread) {
			_ = core.Sleep(w, 5*time.Millisecond)
		})
		v, err := core.Sync(th, core.Choice(
			core.Wrap(child.DoneEvt(), func(core.Value) core.Value { return "done" }),
			core.Wrap(core.After(rt, 5*time.Second), func(core.Value) core.Value { return "timeout" }),
		))
		if err != nil || v != "done" {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}
