package core

import (
	"testing"
	"time"
)

// Regression tests for how registration predicates treat opClaimed. A
// claim is transient — the holder can roll it back via unclaim when its
// pairing fails validation — so any predicate that decides "is this sync
// still interested?" must drop only terminal ops. Treating opClaimed as
// decided loses the registration: the claim rolls back to opSyncing with
// no queue entry left, and the wakeup that entry existed for never comes.
// The rollback window is a few instructions wide, so these tests drive
// the internal state machine directly instead of racing the public API.

// A sync enrolling on a semaphore while a concurrent committer transiently
// holds its op must still be enqueued: if the claim rolls back, a later
// Post has to find the registration, or the thread sleeps forever while
// the count accumulates.
func TestSemEnrollDuringTransientClaimStaysRegistered(t *testing.T) {
	rt := NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *Thread) {
		s := NewSemaphore(rt, 0)
		evt := s.WaitEvt().(*semEvt)
		op := th.acquireOp()
		defer op.finish()
		op.cases = append(op.cases, flatCase{base: evt})
		w := op.newWaiter(0)
		if !op.claim() {
			t.Fatal("claim of a fresh op failed")
		}
		if evt.enroll(w) {
			t.Fatal("enroll committed against a zero count")
		}
		op.waiters = append(op.waiters, w)
		op.unclaim() // the committer's validation failed; the claim rolls back
		s.Post()
		if st := op.state.Load(); st != opCommitted {
			t.Fatalf("op state after Post = %d, want opCommitted — the registration was dropped while the op was transiently claimed", st)
		}
		if n := s.Count(); n != 0 {
			t.Fatalf("count after a committed wait = %d, want 0", n)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// A virtual-alarm registration whose op is transiently claimed must
// survive compaction: PendingAlarms is public API and can run concurrently
// with commit paths, and a compaction that drops the entry in the rollback
// window silently loses the sync's timeout — AdvanceToNextAlarm would
// never wake it.
func TestAlarmCompactionKeepsTransientlyClaimedOp(t *testing.T) {
	rt := NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *Thread) {
		op := th.acquireOp()
		defer op.finish()
		evt := &alarmEvt{rt: rt, at: detEpoch.Add(time.Second)}
		op.cases = append(op.cases, flatCase{base: evt})
		w := op.newWaiter(0)
		op.waiters = append(op.waiters, w)
		rt.mu.Lock()
		rt.valarms = append(rt.valarms, valarm{op: op, idx: 0, w: w, at: evt.at, gen: w.gen.Load()})
		rt.mu.Unlock()

		if !op.claim() {
			t.Fatal("claim of a fresh op failed")
		}
		if n := rt.PendingAlarms(); n != 1 {
			t.Fatalf("PendingAlarms with the op transiently claimed = %d, want 1 (registration compacted away)", n)
		}
		op.unclaim()
		if n := rt.PendingAlarms(); n != 1 {
			t.Fatalf("PendingAlarms after claim rollback = %d, want 1", n)
		}
		if !op.claimAbort(opAbortedKill) {
			t.Fatal("claimAbort of a syncing op failed")
		}
		if n := rt.PendingAlarms(); n != 0 {
			t.Fatalf("PendingAlarms with a terminal op = %d, want 0", n)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
