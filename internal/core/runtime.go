package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Value is the type carried by events and channels in the untyped core.
// The public killsafe package layers Go generics on top.
type Value = any

// Unit is the value produced by events whose result carries no information
// (send events, nack events, alarm events, and so on).
type Unit struct{}

// Runtime is an instance of the task runtime: a scheduler for suspendable
// threads, a custodian hierarchy, and the event system. Multiple runtimes
// may coexist; threads, custodians, channels, and events must not be shared
// across runtimes.
//
// The runtime lock mu guards *bookkeeping only*: the thread registry, the
// custodian tree, suspension and yoking state, tracing, and the
// deterministic-mode queues. No rendezvous path takes it — matching state
// lives under per-event locks (Chan.mu, Semaphore.mu, oneshot.mu) and
// commits go through the per-op claim protocol (sync.go) — so threads
// rendezvousing on disjoint events scale across cores instead of
// serializing on a global lock. mu is the outermost lock in the hierarchy:
// holders may take event locks (the resume re-poll does) but never the
// reverse.
type Runtime struct {
	mu sync.Mutex

	root    *Custodian
	threads map[int64]*Thread // live (not done) threads
	nextID  int64
	down    bool

	// seq rotates poll order for fair choice. Atomic: the sync engine
	// ticks it outside any lock, once per poll pass, exactly as the old
	// global-lock engine did per pass — deterministic schedules depend on
	// that rotation sequence.
	seq atomic.Uint64

	wg sync.WaitGroup // tracks spawned goroutines

	// externals counts in-flight External.Start helper goroutines. They
	// are deliberately not part of wg: a helper stuck in a blocking OS
	// call can only be reclaimed by closing its fd (via a custodian), and
	// Shutdown must not wait on resources nobody registered.
	externals atomic.Int64

	trace *traceBuf // nil unless EnableTracing

	// panicHandler, if non-nil, observes panics raised by user code in
	// runtime threads (after the panic is recorded on the thread).
	panicHandler func(*Thread, *ThreadPanicError)

	// Instrumentation state (see instrument.go) and deterministic-mode
	// state (see sched.go). ins is nil in normal operation; every tap
	// site is nil-guarded so the uninstrumented path is unchanged. It is
	// an atomic pointer because taps fire from lock-free commit paths and
	// a passive instrumentation may be installed on a live runtime. det
	// is true iff the installed instrumentation is a deterministic
	// scheduler; it is atomic so lock-free fast paths (Now, alarm
	// registration) can test it cheaply. vnow is the virtual clock in
	// UnixNano form — atomic so alarm polls (which run under event locks
	// and from the rt.mu-holding resume re-poll) never need a lock for it.
	ins        atomicInsPointer
	det        atomic.Bool
	vnow       atomic.Int64
	valarms    []valarm    // virtual alarm registrations, guarded by mu
	extq       []*External // queued external completions, guarded by mu
	nextCustID int64
}

// NewRuntime creates a fresh runtime with a root custodian.
func NewRuntime() *Runtime {
	rt := &Runtime{threads: make(map[int64]*Thread)}
	rt.nextCustID++
	rt.root = &Custodian{
		rt:       rt,
		id:       rt.nextCustID,
		children: make(map[*Custodian]struct{}),
		threads:  make(map[*Thread]struct{}),
	}
	return rt
}

// RootCustodian returns the runtime's root custodian. Shutting it down
// terminates every task in the runtime.
func (rt *Runtime) RootCustodian() *Custodian { return rt.root }

// SetPanicHandler installs a callback invoked when user code in a runtime
// thread panics. The default behaviour records the panic on the thread
// (see Thread.Err) and otherwise continues.
func (rt *Runtime) SetPanicHandler(h func(*Thread, *ThreadPanicError)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.panicHandler = h
}

func (rt *Runtime) nextThreadID() int64 {
	rt.nextID++
	return rt.nextID
}

// Run binds the calling goroutine to a fresh runtime thread controlled by
// the root custodian, runs fn, and returns after fn does. It is the bridge
// from ordinary Go code (main functions, tests) into the runtime. If the
// bound thread is killed while fn runs, Run returns ErrKilled wrapped in a
// ThreadPanicError-free error; if fn panics, Run re-panics.
func (rt *Runtime) Run(fn func(*Thread)) error {
	return rt.RunIn(rt.root, fn)
}

// RunIn is Run with an explicit controlling custodian.
func (rt *Runtime) RunIn(c *Custodian, fn func(*Thread)) (err error) {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		return ErrRuntimeDown
	}
	if c.dead {
		rt.mu.Unlock()
		return ErrCustodianDead
	}
	th := rt.newThreadLocked("main", c)
	rt.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			if ks, ok := r.(killSentinel); ok && ks.th == th {
				rt.finishThread(th, nil)
				err = fmt.Errorf("core: thread %q was killed", th.name)
				return
			}
			rt.finishThread(th, nil)
			panic(r)
		}
		rt.finishThread(th, nil)
	}()
	fn(th)
	return nil
}

// Spawn creates a thread controlled by the root custodian. See
// Thread.Spawn for spawning under the current custodian of a running
// thread, which is the common case inside the runtime.
func (rt *Runtime) Spawn(name string, fn func(*Thread)) *Thread {
	return rt.spawn(name, rt.root, fn)
}

// spawn creates and starts a thread under custodian c. If c is already
// dead, the returned thread is created in the done state and fn never runs
// (resources cannot be allocated to a dead custodian).
func (rt *Runtime) spawn(name string, c *Custodian, fn func(*Thread)) *Thread {
	if c != nil && c.rt != rt {
		panic(fmt.Sprintf("core: spawn %q under a custodian from a different runtime; custodians must not be shared across runtimes", name))
	}
	rt.mu.Lock()
	if rt.down || c.dead {
		th := rt.newThreadLocked(name, nil)
		th.markDoneLocked()
		rt.mu.Unlock()
		return th
	}
	th := rt.newThreadLocked(name, c)
	rt.wg.Add(1)
	rt.mu.Unlock()

	go func() {
		defer rt.wg.Done()
		var perr *ThreadPanicError
		defer func() {
			if r := recover(); r != nil {
				if ks, ok := r.(killSentinel); ok && ks.th == th {
					rt.finishThread(th, nil)
					return
				}
				perr = &ThreadPanicError{Value: r}
				rt.finishThread(th, perr)
				return
			}
			rt.finishThread(th, nil)
		}()
		// A thread spawned while its custodian is being shut down (or
		// while explicitly suspended) must not run until allowed to.
		th.gate()
		fn(th)
	}()
	return th
}

// newThreadLocked allocates a thread record. c may be nil for a dead-on-
// arrival thread. Caller holds rt.mu.
func (rt *Runtime) newThreadLocked(name string, c *Custodian) *Thread {
	th := &Thread{
		rt:            rt,
		id:            rt.nextThreadID(),
		name:          name,
		custodians:    make(map[*Custodian]struct{}),
		beneficiaries: make(map[*Thread]struct{}),
		yokedOwners:   make(map[*Thread]struct{}),
	}
	th.parkCond = sync.NewCond(&th.parkMu)
	th.breaksOn.Store(true)
	if c != nil {
		th.custodians[c] = struct{}{}
		c.threads[th] = struct{}{}
		th.current = c
	}
	th.updateMatchableLocked()
	rt.threads[th.id] = th
	rt.traceBufLocked(TraceSpawn, th, "")
	if h := rt.hook(); h != nil {
		h.Spawned(th)
	}
	return th
}

// SpawnIn creates a thread controlled by an explicit custodian. It is the
// plain-Go (no current thread) counterpart of Thread.Spawn, used by test
// drivers and the deterministic explorer to place scenario threads under
// specific custodians.
func (rt *Runtime) SpawnIn(c *Custodian, name string, fn func(*Thread)) *Thread {
	return rt.spawn(name, c, fn)
}

// finishThread moves a thread to the done state, releases its custodians,
// fires its done events, and reports any panic.
func (rt *Runtime) finishThread(th *Thread, perr *ThreadPanicError) {
	rt.mu.Lock()
	th.err = perr
	th.markDoneLocked()
	h := rt.panicHandler
	rt.mu.Unlock()
	if perr != nil && h != nil {
		h(th, perr)
	}
}

// TerminateCondemned kills every live thread that currently has no live
// custodian. It is the deterministic substitute for MzScheme's collection
// of unreachable suspended threads: calling it asserts that no surviving
// task will revive the condemned threads with a new custodian. Pending
// nack events of the condemned threads' in-flight syncs fire, so manager
// threads observing gave-up events see the terminations. It returns the
// number of threads terminated.
func (rt *Runtime) TerminateCondemned() int {
	rt.mu.Lock()
	var doomed []*Thread
	for _, th := range rt.threads {
		if !th.done && len(th.custodians) == 0 {
			doomed = append(doomed, th)
		}
	}
	// Kill in id order: the pending-nack fires triggered by each kill can
	// commit watcher syncs, and deterministic mode needs that sequence to
	// be a function of runtime state, not of map iteration order.
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].id < doomed[j].id })
	for _, th := range doomed {
		th.killLocked()
	}
	rt.mu.Unlock()
	return len(doomed)
}

// Shutdown shuts down the root custodian, kills every remaining thread,
// and waits for all thread goroutines to exit. The runtime cannot be used
// afterwards. It is safe to call from ordinary Go code (not from inside a
// runtime thread).
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		rt.wg.Wait()
		return
	}
	rt.down = true
	rt.mu.Unlock()

	rt.root.Shutdown()

	rt.mu.Lock()
	var rest []*Thread
	for _, th := range rt.threads {
		if !th.done {
			rest = append(rest, th)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
	for _, th := range rest {
		th.killLocked()
	}
	rt.mu.Unlock()
	rt.wg.Wait()
}

// LiveThreads reports the number of threads that have not finished
// (running, blocked, or suspended).
func (rt *Runtime) LiveThreads() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, th := range rt.threads {
		if !th.done {
			n++
		}
	}
	return n
}

// SuspendedThreads reports the number of live threads that are currently
// suspended (explicitly or because all their custodians are shut down).
func (rt *Runtime) SuspendedThreads() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, th := range rt.threads {
		if !th.done && th.suspendedLocked() {
			n++
		}
	}
	return n
}
