// Package core implements the task runtime from "Kill-Safe Synchronization
// Abstractions" (Flatt & Findler, PLDI 2004): suspendable, resumable,
// killable user-level threads; custodians for hierarchical resource control;
// the two-argument thread-resume primitive that yokes a manager thread's
// execution rights to its clients; and MzScheme's embedding of the
// Concurrent ML event combinators (sync, channels, choice, wrap, guard, and
// nack-guard with the paper's extended "not chosen" semantics).
//
// Go's goroutines cannot be suspended or killed from outside, so the runtime
// builds its own thread abstraction on top of goroutines. Suspension, kill,
// and break signals take effect at safe points; every runtime primitive is a
// safe point. Because threads in the CML model interact only through runtime
// primitives, a thread can be observed to stop between any two primitive
// operations — which is exactly the hazard window that kill-safe abstraction
// design addresses.
//
// Synchronization state is sharded: every event object (channel, semaphore,
// oneshot) guards its own waiter queue with its own lock, and a rendezvous
// commits by claiming the two syncOps involved (in thread-id order) with a
// per-op CAS — no runtime-wide lock is held on the commit path. A small
// bookkeeping lock (Runtime.mu) still covers thread lifecycle: spawn, kill,
// suspend/resume, custodian membership, and the deterministic-mode trace.
// Rendezvous on disjoint events therefore proceed in parallel; the lock
// hierarchy and claim protocol are specified in DESIGN.md §21 and the
// scaling consequences are measured by the repository's benchmark harness.
package core
