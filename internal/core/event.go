package core

// Event is a first-class synchronization event in the Concurrent ML style.
// Events describe potential communications; Sync blocks until one of the
// described communications is ready, commits it atomically, and returns its
// value. Events compose: Choice selects among events, Wrap post-processes a
// chosen event's value, Guard defers event construction to sync time, and
// NackGuard additionally provides a negative-acknowledgment event that
// becomes ready if the guarded event is not chosen.
type Event interface {
	isEvent()
}

// baseEvent is a primitive event that the sync engine can poll and block
// on. No lock is held at the call sites; each implementation takes its
// own event object's lock internally (per the hierarchy documented in
// sync.go) and commits through the op claim protocol.
type baseEvent interface {
	Event
	// poll attempts to commit op's case idx immediately. It returns true
	// if op was committed (by this base).
	poll(op *syncOp, idx int) bool
	// enroll atomically either commits w's op (the event became ready
	// since it was polled — the check and the enqueue happen under the
	// event's own lock, closing the lost-wakeup window) or adds w to the
	// event's wait queue. It returns true iff this call committed the op.
	enroll(w *waiter) bool
	// cancel removes an abandoned waiter's registration (lost choice,
	// break, kill, sync finished). O(1) for queue-backed events.
	cancel(w *waiter)
}

// wrapFn is a wrap procedure: it receives the syncing thread and the
// chosen event's value. Wrap procedures created via Wrap ignore the
// thread; WrapWithThread exposes it so a wrap body can itself block.
type wrapFn func(*Thread, Value) Value

type wrapEvt struct {
	inner Event
	fn    wrapFn
}

type choiceEvt struct {
	evts []Event
}

type guardEvt struct {
	fn func(*Thread) Event
}

type nackGuardEvt struct {
	fn func(*Thread, Event) Event
}

type alwaysEvt struct {
	v Value
}

type neverEvt struct{}

func (*wrapEvt) isEvent()      {}
func (*choiceEvt) isEvent()    {}
func (*guardEvt) isEvent()     {}
func (*nackGuardEvt) isEvent() {}
func (*alwaysEvt) isEvent()    {}
func (*neverEvt) isEvent()     {}

// Wrap returns an event that is ready when e is ready and whose value is
// fn applied to e's value. The wrap procedure runs in the syncing thread
// with breaks implicitly disabled, after the choice has committed.
func Wrap(e Event, fn func(Value) Value) Event {
	return &wrapEvt{inner: e, fn: func(_ *Thread, v Value) Value { return fn(v) }}
}

// WrapWithThread is Wrap for procedures that need the syncing thread —
// for example to perform a committed second communication phase inside
// the wrap, as the swap-channel implementation does.
func WrapWithThread(e Event, fn func(*Thread, Value) Value) Event {
	return &wrapEvt{inner: e, fn: fn}
}

// Choice combines events into one that is ready when any of them is; if
// several are ready, one is chosen arbitrarily but fairly. Choice of no
// events is never ready.
func Choice(evts ...Event) Event {
	return &choiceEvt{evts: evts}
}

// Guard returns an event that, at each sync, calls fn in the syncing
// thread to produce the event to use in its place. Guard is the hook for
// per-use setup work (such as the ResumeVia guard that makes an
// abstraction kill-safe).
func Guard(fn func(*Thread) Event) Event {
	return &guardEvt{fn: fn}
}

// NackGuard generalizes Guard: fn additionally receives a nack event that
// becomes ready if the guard-generated event is not chosen by the sync.
// "Not chosen" covers all the ways a thread abandons an event (Section 7
// of the paper): the sync chooses another event, control escapes the sync
// via a break or panic, or the syncing thread is terminated.
func NackGuard(fn func(th *Thread, nack Event) Event) Event {
	return &nackGuardEvt{fn: fn}
}

// Always returns an event that is always ready and yields v.
func Always(v Value) Event { return &alwaysEvt{v: v} }

// Never returns an event that is never ready.
func Never() Event { return &neverEvt{} }

func (a *alwaysEvt) poll(op *syncOp, idx int) bool {
	if !op.claim() {
		return false
	}
	finalizeCommit(op, idx, a.v)
	return true
}
func (a *alwaysEvt) enroll(w *waiter) bool { return a.poll(w.op, w.idx) }
func (a *alwaysEvt) cancel(*waiter)        {}

// neverEvt is not a baseEvent: flatten drops it entirely.

// flatCase is one primitive alternative of a flattened sync: a base event,
// the wrap functions to apply to its value (collected outside-in; applied
// inside-out), and the indices into the sync's nack list that cover it.
// The single-wrap case — one Wrap directly over a base event, the common
// serving-path shape — is stored in wrap1 without allocating a slice;
// wraps is non-nil only for chains of two or more.
type flatCase struct {
	base    baseEvent
	wrap1   wrapFn
	wraps   []wrapFn
	nackIdx []int
}

// maxGuardDepth bounds guard recursion so that a guard returning itself
// fails fast instead of diverging.
const maxGuardDepth = 1000

// flatten expands an event tree into primitive cases, running guard
// procedures in the syncing thread. It runs outside the runtime lock, so
// guard procedures may themselves block, sync, and spawn. Nack signals
// created for nack-guards are appended to op.nacks as they are created, so
// that a kill arriving mid-flatten still fires them.
//
// The wrap chain above the current node is carried as (wrap1, wraps):
// wrap1 alone for a single wrap (no allocation), wraps for chains of two
// or more.
func flatten(th *Thread, op *syncOp, e Event, wrap1 wrapFn, wraps []wrapFn, nacks []int, depth int) {
	if depth > maxGuardDepth {
		panic("core: event guard recursion exceeds depth limit")
	}
	switch ev := e.(type) {
	case *choiceEvt:
		for _, sub := range ev.evts {
			flatten(th, op, sub, wrap1, wraps, nacks, depth+1)
		}
	case *wrapEvt:
		switch {
		case wraps == nil && wrap1 == nil:
			flatten(th, op, ev.inner, ev.fn, nil, nacks, depth+1)
		case wraps == nil:
			flatten(th, op, ev.inner, nil, []wrapFn{wrap1, ev.fn}, nacks, depth+1)
		default:
			w := make([]wrapFn, len(wraps)+1)
			copy(w, wraps)
			w[len(wraps)] = ev.fn
			flatten(th, op, ev.inner, nil, w, nacks, depth+1)
		}
	case *guardEvt:
		flatten(th, op, ev.fn(th), wrap1, wraps, nacks, depth+1)
	case *nackGuardEvt:
		sig := newNackSignal()
		idx := op.addNack(sig)
		n := make([]int, len(nacks)+1)
		copy(n, nacks)
		n[len(nacks)] = idx
		flatten(th, op, ev.fn(th, sig.event()), wrap1, wraps, n, depth+1)
	case *neverEvt:
		// contributes no case
	case baseEvent:
		checkSameRuntime(th, ev)
		op.cases = append(op.cases, flatCase{base: ev, wrap1: wrap1, wraps: wraps, nackIdx: nacks})
	case nil:
		panic("core: nil event")
	default:
		panic("core: unknown event type")
	}
}
