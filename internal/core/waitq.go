package core

// waitq is a CQS-style segment queue of parked sync waiters (after "CQS: A
// Formally-Verified Framework for Fair and Abortable Synchronization"): a
// singly-linked list of fixed-size segments with a lazily advancing head,
// where every enqueued node is abortable — cancellation is an O(1) slot
// clear via the (seg, slot) backpointer stored in the waiter, not a queue
// scan. Kill, nack-cover, lost-choice withdrawal, and alarm expiry all
// deregister through the same cancel path.
//
// The queue itself is not lock-free: every operation runs under the owning
// event object's mutex, which is already per-object (the point of the
// refactor is that disjoint events use disjoint locks, not that one queue
// supports lock-free access). What the segment structure buys over the old
// compacting slice is O(1) abort without scans, a stable FIFO order under
// heavy churn, and an embedded first segment so the common one-waiter case
// allocates nothing.
//
// Segments drained of live waiters are dropped to the garbage collector
// rather than pooled: a cancelled waiter may retain a stale seg pointer
// until its sync finishes, and validating `slots[slot] == w` on cancel is
// only sound if segments are never reused for a different queue position.
type waitq struct {
	head, tail *wseg
	hidx       int // first possibly-live slot in head
	tidx       int // next free slot in tail
	first      wseg
}

// segSize is the number of waiter slots per segment. Eight covers every
// steady-state queue in the repo's workloads without a second segment.
const segSize = 8

type wseg struct {
	slots [segSize]*waiter
	next  *wseg
}

// enqueue appends w and records its position for O(1) cancellation.
func (q *waitq) enqueue(w *waiter) {
	if q.tail == nil {
		q.first = wseg{}
		q.head, q.tail = &q.first, &q.first
		q.hidx, q.tidx = 0, 0
	} else if q.tidx == segSize {
		s := &wseg{}
		q.tail.next = s
		q.tail = s
		q.tidx = 0
	}
	q.tail.slots[q.tidx] = w
	w.seg, w.slot = q.tail, q.tidx
	q.tidx++
}

// cancel removes w's registration if it is still enqueued. The slot
// identity check makes a second cancel (or a cancel racing a visit-side
// drop) a no-op.
func (q *waitq) cancel(w *waiter) {
	if w.seg != nil {
		if w.seg.slots[w.slot] == w {
			w.seg.slots[w.slot] = nil
		}
		w.seg, w.slot = nil, 0
	}
	q.shrink()
}

// shrink advances the head past cleared slots and releases drained
// segments; an emptied queue resets so the embedded first segment is
// reused by the next enqueue.
func (q *waitq) shrink() {
	for q.head != nil {
		if q.head == q.tail && q.hidx == q.tidx {
			q.head, q.tail = nil, nil
			q.hidx, q.tidx = 0, 0
			return
		}
		if q.hidx == segSize {
			q.head = q.head.next
			q.hidx = 0
			continue
		}
		if q.head.slots[q.hidx] == nil {
			q.hidx++
			continue
		}
		return
	}
}

// visit calls f on each enqueued waiter in FIFO order. f reports whether
// the waiter's registration is spent (drop: the slot is cleared) and
// whether to continue scanning. Must run under the owning event's lock,
// the same lock cancel runs under.
func (q *waitq) visit(f func(w *waiter) (drop, cont bool)) {
	defer q.shrink()
	for s, i := q.head, q.hidx; s != nil; {
		end := segSize
		if s == q.tail {
			end = q.tidx
		}
		for ; i < end; i++ {
			w := s.slots[i]
			if w == nil {
				continue
			}
			drop, cont := f(w)
			if drop {
				s.slots[i] = nil
				w.seg, w.slot = nil, 0
			}
			if !cont {
				return
			}
		}
		if s == q.tail {
			return
		}
		s, i = s.next, 0
	}
}
