package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// withRuntime runs fn on a fresh runtime bound to the test goroutine and
// shuts the runtime down afterwards.
func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// waitUntil polls cond from outside the runtime until it holds or the
// deadline expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSpawnRunsFunction(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var ran atomic.Bool
		child := th.Spawn("child", func(*core.Thread) { ran.Store(true) })
		if _, err := core.Sync(th, child.DoneEvt()); err != nil {
			t.Fatalf("sync done: %v", err)
		}
		if !ran.Load() {
			t.Fatal("spawned function did not run")
		}
		if !child.Done() {
			t.Fatal("child not done after done event fired")
		}
	})
}

func TestThreadsInterleave(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ch := core.NewChan(rt)
		for i := 0; i < 8; i++ {
			i := i
			th.Spawn("sender", func(s *core.Thread) {
				_ = ch.Send(s, i)
			})
		}
		seen := make(map[int]bool)
		for i := 0; i < 8; i++ {
			v, err := ch.Recv(th)
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			seen[v.(int)] = true
		}
		if len(seen) != 8 {
			t.Fatalf("expected 8 distinct values, got %d", len(seen))
		}
	})
}

func TestSuspendResume(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var steps atomic.Int64
		ch := core.NewChan(rt)
		worker := th.Spawn("worker", func(w *core.Thread) {
			for {
				if _, err := ch.Recv(w); err != nil {
					return
				}
				steps.Add(1)
			}
		})
		if err := ch.Send(th, "a"); err != nil {
			t.Fatalf("send: %v", err)
		}
		waitUntil(t, "first step", func() bool { return steps.Load() == 1 })

		worker.Suspend()
		waitUntil(t, "worker suspended", worker.Suspended)

		// A suspended worker must not complete a rendezvous.
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = rt.Run(func(main2 *core.Thread) {
				_ = ch.Send(main2, "b")
			})
		}()
		select {
		case <-done:
			t.Fatal("send to suspended worker completed")
		case <-time.After(30 * time.Millisecond):
		}

		core.Resume(worker)
		<-done
		waitUntil(t, "second step", func() bool { return steps.Load() == 2 })
	})
}

func TestKillUnblocksAndTerminates(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		ch := core.NewChan(rt)
		victim := th.Spawn("victim", func(w *core.Thread) {
			_, _ = ch.Recv(w) // blocks forever
			t.Error("victim ran past a kill")
		})
		waitUntil(t, "victim blocked", func() bool { return rt.LiveThreads() == 2 })
		victim.Kill()
		if _, err := core.Sync(th, victim.DoneEvt()); err != nil {
			t.Fatalf("sync done: %v", err)
		}
		if !victim.Done() {
			t.Fatal("victim not done after kill")
		}
	})
}

func TestKillIsNotResumable(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		victim := th.Spawn("victim", func(w *core.Thread) {
			_ = core.Sleep(w, time.Hour)
		})
		victim.Kill()
		if _, err := core.Sync(th, victim.DoneEvt()); err != nil {
			t.Fatalf("sync done: %v", err)
		}
		core.Resume(victim)
		core.ResumeWith(victim, rt.RootCustodian())
		if !victim.Done() {
			t.Fatal("killed thread was resurrected")
		}
	})
}

func TestDoneEvtFiresOnReturn(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		child := th.Spawn("child", func(*core.Thread) {})
		v, err := core.Sync(th, core.Wrap(child.DoneEvt(), func(core.Value) core.Value {
			return "finished"
		}))
		if err != nil || v != "finished" {
			t.Fatalf("got (%v, %v)", v, err)
		}
	})
}

func TestSleepElapses(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		start := time.Now()
		if err := core.Sleep(th, 20*time.Millisecond); err != nil {
			t.Fatalf("sleep: %v", err)
		}
		if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
			t.Fatalf("sleep returned after %v", elapsed)
		}
	})
}

func TestThreadPanicIsRecorded(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	var handled atomic.Bool
	rt.SetPanicHandler(func(*core.Thread, *core.ThreadPanicError) { handled.Store(true) })
	err := rt.Run(func(th *core.Thread) {
		child := th.Spawn("boom", func(*core.Thread) { panic("kaboom") })
		if _, err := core.Sync(th, child.DoneEvt()); err != nil {
			t.Fatalf("sync done: %v", err)
		}
		if child.Err() == nil {
			t.Error("panic not recorded on thread")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !handled.Load() {
		t.Fatal("panic handler not invoked")
	}
}

func TestRunReportsKill(t *testing.T) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	started := make(chan *core.Thread, 1)
	go func() {
		th := <-started
		th.Kill()
	}()
	err := rt.Run(func(th *core.Thread) {
		started <- th
		for {
			if err := core.Sleep(th, time.Millisecond); err != nil {
				return
			}
		}
	})
	if err == nil {
		t.Fatal("Run did not report the kill")
	}
}

func TestCheckpointHonorsSuspension(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var count atomic.Int64
		spinner := th.Spawn("spinner", func(w *core.Thread) {
			for {
				if err := w.Checkpoint(); err != nil {
					return
				}
				count.Add(1)
			}
		})
		waitUntil(t, "spinner progress", func() bool { return count.Load() > 10 })
		spinner.Suspend()
		waitUntil(t, "spinner suspended", spinner.Suspended)
		before := count.Load()
		time.Sleep(10 * time.Millisecond)
		if after := count.Load(); after > before+1 {
			t.Fatalf("spinner advanced while suspended: %d -> %d", before, after)
		}
		spinner.Kill()
	})
}

func TestSpawnUnderDeadCustodianNeverRuns(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		c.Shutdown()
		var ran atomic.Bool
		var child *core.Thread
		th.WithCustodian(c, func() {
			child = th.Spawn("stillborn", func(*core.Thread) { ran.Store(true) })
		})
		if !child.Done() {
			t.Fatal("thread under dead custodian is not done")
		}
		time.Sleep(5 * time.Millisecond)
		if ran.Load() {
			t.Fatal("thread under dead custodian ran")
		}
	})
}

func TestYokeResumeChaining(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		var t1, t2 *core.Thread
		th.WithCustodian(c1, func() {
			t1 = th.Spawn("t1", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
		})
		th.WithCustodian(c2, func() {
			t2 = th.Spawn("t2", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
		})
		// Yoke t1 to t2: t1 survives at least as long as t2.
		core.ResumeVia(t1, t2)

		c1.Shutdown() // t1 keeps c2 via the yoke
		if t1.Suspended() {
			t.Fatal("t1 suspended although yoked to t2's custodian")
		}
		c2.Shutdown() // now both are out of custodians
		if !t1.Suspended() || !t2.Suspended() {
			t.Fatal("threads not suspended after all custodians shut down")
		}

		// Resuming t2 with a new custodian must resume t1 too (chaining).
		c3 := core.NewCustodian(rt.RootCustodian())
		core.ResumeWith(t2, c3)
		if t1.Suspended() {
			t.Fatal("resume chaining did not propagate to t1")
		}
	})
}

func TestYokeCustodianPropagationIsTransitive(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var a, b, d *core.Thread
		th.WithCustodian(c, func() {
			a = th.Spawn("a", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
			b = th.Spawn("b", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
			d = th.Spawn("d", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
		})
		core.ResumeVia(a, b) // a yoked to b
		core.ResumeVia(b, d) // b yoked to d
		c.Shutdown()
		if !a.Suspended() {
			t.Fatal("a should be suspended, all custodians dead")
		}
		c2 := core.NewCustodian(rt.RootCustodian())
		core.ResumeWith(d, c2)
		if a.Suspended() || b.Suspended() {
			t.Fatal("custodian grant did not propagate transitively through yokes")
		}
	})
}

func TestNoConspiracy(t *testing.T) {
	// Threads may share custodians via yoking, but when all custodians
	// are shut down, nothing they created can run: the system as a whole
	// can protect itself by terminating all collaborators.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		var t1, t2, mgr *core.Thread
		th.WithCustodian(c1, func() {
			t1 = th.Spawn("t1", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
			mgr = th.Spawn("mgr", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
		})
		th.WithCustodian(c2, func() {
			t2 = th.Spawn("t2", func(w *core.Thread) { _ = core.Sleep(w, time.Hour) })
		})
		core.ResumeVia(mgr, t1)
		core.ResumeVia(mgr, t2)

		c1.Shutdown()
		if mgr.Suspended() {
			t.Fatal("manager suspended while one client custodian lives")
		}
		c2.Shutdown()
		if !mgr.Suspended() {
			t.Fatal("manager still runnable after all client custodians died")
		}
		// TerminateCondemned models GC of unreachable suspended threads.
		n := rt.TerminateCondemned()
		if n < 3 {
			t.Fatalf("expected at least 3 condemned threads, got %d", n)
		}
		waitUntil(t, "condemned threads terminated", func() bool {
			return mgr.Done() && t1.Done() && t2.Done()
		})
	})
}

func TestResumeWithoutCustodianHasNoEffect(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var w *core.Thread
		th.WithCustodian(c, func() {
			w = th.Spawn("w", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		c.Shutdown()
		if !w.Suspended() {
			t.Fatal("thread not suspended after custodian shutdown")
		}
		core.Resume(w) // no custodian: must have no effect
		if !w.Suspended() {
			t.Fatal("custodian-less thread resumed without a custodian")
		}
		core.ResumeWith(w, core.NewCustodian(rt.RootCustodian()))
		if w.Suspended() {
			t.Fatal("thread not resumed after being granted a custodian")
		}
	})
}
