package core

import (
	"sort"
	"time"
)

// detEpoch is where the virtual clock starts in deterministic mode. Any
// fixed value works; a round, recognizably fake timestamp makes traces
// and logs easy to read.
var detEpoch = time.Unix(1_000_000_000, 0)

// Now returns the current time: the virtual clock in deterministic mode,
// the wall clock otherwise. Timeout events (After) are built on it.
func (rt *Runtime) Now() time.Time { return rt.now() }

// now is the internal form. The virtual clock is an atomic nanosecond
// counter so alarm polls — which run under event locks and from the
// resume re-poll path — never need the runtime bookkeeping lock.
func (rt *Runtime) now() time.Time {
	if !rt.det.Load() {
		return time.Now()
	}
	return time.Unix(0, rt.vnow.Load())
}

// valarm is a virtual-clock alarm registration: a parked sync waiter that
// becomes ready when the virtual clock reaches at. The op, case index,
// and generation are captured at registration on the owning goroutine;
// a recycled waiter record (gen bumped) makes the stale entry inert, and
// the captured op means the entry never reads the mutable waiter fields.
type valarm struct {
	op  *syncOp
	idx int
	w   *waiter
	at  time.Time
	gen uint32
}

// compactAlarmsLocked drops registrations whose waiter has been recycled
// or whose sync has reached a terminal state. Caller holds rt.mu. An op
// that is transiently opClaimed is live: the claim may roll back to
// opSyncing (a pairing that fails validation), and since this can run
// concurrently with commit paths (PendingAlarms is public API), dropping
// the registration in that window would silently lose the alarm — a sync
// whose only remaining ready source is its timeout would never be woken
// by AdvanceToNextAlarm.
func (rt *Runtime) compactAlarmsLocked() {
	live := rt.valarms[:0]
	for _, a := range rt.valarms {
		if a.gen != a.w.gen.Load() {
			continue
		}
		if st := a.op.state.Load(); st == opSyncing || st == opClaimed {
			live = append(live, a)
		}
	}
	rt.valarms = live
}

// PendingAlarms reports the number of live virtual-alarm registrations.
// It is always 0 outside deterministic mode (real timers are used there).
func (rt *Runtime) PendingAlarms() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.compactAlarmsLocked()
	return len(rt.valarms)
}

// AdvanceToNextAlarm advances the virtual clock to the earliest pending
// alarm deadline and fires every alarm that is now due. It returns false
// if no alarm is pending. Deterministic mode only; the scheduler calls it
// when it decides that "time passes" is the next step. The due alarms are
// collected under rt.mu but committed after it is released: commits never
// run under the bookkeeping lock.
func (rt *Runtime) AdvanceToNextAlarm() bool {
	rt.mu.Lock()
	rt.compactAlarmsLocked()
	if len(rt.valarms) == 0 {
		rt.mu.Unlock()
		return false
	}
	min := rt.valarms[0].at
	for _, a := range rt.valarms[1:] {
		if a.at.Before(min) {
			min = a.at
		}
	}
	if min.UnixNano() > rt.vnow.Load() {
		rt.vnow.Store(min.UnixNano())
	}
	now := rt.vnow.Load()
	var due []valarm
	rest := rt.valarms[:0]
	for _, a := range rt.valarms {
		if a.at.UnixNano() > now {
			rest = append(rest, a)
			continue
		}
		due = append(due, a)
	}
	rt.valarms = rest
	rt.mu.Unlock()
	for _, a := range due {
		if a.gen != a.w.gen.Load() {
			continue
		}
		if !a.op.claim() {
			continue
		}
		if a.gen != a.w.gen.Load() {
			a.op.unclaim()
			continue
		}
		// A suspended thread's alarm is simply dropped: the clock has
		// passed the deadline, so the resume path's re-poll observes it
		// ready (same discipline as a fired real timer).
		if !a.op.th.matchable.Load() {
			a.op.unclaim()
			continue
		}
		th := a.op.th // snapshot: the op must not be touched post-commit
		finalizeCommit(a.op, a.idx, Unit{})
		if h := rt.hook(); h != nil {
			h.AlarmFire(th)
		}
	}
	return true
}

// PendingDeliveries reports the number of External completions queued for
// deterministic delivery. Always 0 outside deterministic mode.
func (rt *Runtime) PendingDeliveries() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.extq)
}

// DeliverNextExternal delivers the oldest queued External completion:
// the cell becomes fired and its waiters commit. It returns false if the
// queue is empty. Deterministic mode only; completions queue in Complete
// order and the scheduler chooses when each one lands. The fire itself
// runs after rt.mu is released, under the cell's own signal lock.
func (rt *Runtime) DeliverNextExternal() bool {
	rt.mu.Lock()
	if len(rt.extq) == 0 {
		rt.mu.Unlock()
		return false
	}
	x := rt.extq[0]
	rt.extq = rt.extq[1:]
	x.queued = false
	rt.mu.Unlock()
	x.deliver()
	return true
}

// Deterministic-iteration helpers. The yoking and shutdown paths iterate
// sets of threads and custodians; map order is fine in normal mode but a
// wake-up (and hence a possible commit) ordered by map iteration would
// leak nondeterminism into deterministic runs. These return id-sorted
// slices; call sites use them only when rt.det is set so the hot paths
// stay allocation-free.

func sortedThreads(set map[*Thread]struct{}) []*Thread {
	out := make([]*Thread, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func sortedCustodians(set map[*Custodian]struct{}) []*Custodian {
	out := make([]*Custodian, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
