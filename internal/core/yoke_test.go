package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSpawnYokedInheritsOwnersCustodians(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		var mgr *core.Thread
		th.WithCustodian(c1, func() {
			mgr = th.Spawn("mgr", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		core.ResumeWith(mgr, c2)

		helper := core.SpawnYoked(mgr, "helper", func(x *core.Thread) {
			_ = core.Sleep(x, time.Hour)
		})
		if len(helper.Custodians()) != 2 {
			t.Fatalf("helper has %d custodians, want 2", len(helper.Custodians()))
		}
		c1.Shutdown()
		if helper.Suspended() {
			t.Fatal("helper suspended while owner keeps a custodian")
		}
		c2.Shutdown()
		if !helper.Suspended() {
			t.Fatal("helper running with all owner custodians dead")
		}
	})
}

func TestSpawnYokedTracksFutureGrants(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		var mgr *core.Thread
		th.WithCustodian(c1, func() {
			mgr = th.Spawn("mgr", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		helper := core.SpawnYoked(mgr, "helper", func(x *core.Thread) {
			_ = core.Sleep(x, time.Hour)
		})
		c1.Shutdown()
		if !helper.Suspended() {
			t.Fatal("helper should be suspended")
		}
		// Granting the owner a new custodian revives the helper too —
		// this is what keeps reply-delivery threads alive after a
		// manager is promoted by a surviving user.
		c2 := core.NewCustodian(rt.RootCustodian())
		core.ResumeWith(mgr, c2)
		if helper.Suspended() {
			t.Fatal("helper did not follow the owner's new custodian")
		}
	})
}

func TestSpawnYokedRunsItsFunction(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		var ran atomic.Bool
		helper := core.SpawnYoked(th, "helper", func(x *core.Thread) { ran.Store(true) })
		if _, err := core.Sync(th, helper.DoneEvt()); err != nil {
			t.Fatal(err)
		}
		if !ran.Load() {
			t.Fatal("yoked helper did not run")
		}
	})
}

func TestSpawnYokedFromDeadOwnerIsStillborn(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		victim := th.Spawn("victim", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		victim.Kill()
		deadline := time.Now().Add(5 * time.Second)
		for !victim.Done() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		helper := core.SpawnYoked(victim, "helper", func(*core.Thread) {
			t.Error("helper of dead owner ran")
		})
		if !helper.Done() {
			t.Fatal("helper of dead owner is not stillborn")
		}
	})
}

func TestFinishedBeneficiariesAreUnlinked(t *testing.T) {
	// Helpers that finish must not accumulate in the owner's yoke set —
	// resume and custodian grants would otherwise slow down forever.
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		mgr := th.Spawn("mgr", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		for i := 0; i < 100; i++ {
			h := core.SpawnYoked(mgr, "helper", func(*core.Thread) {})
			if _, err := core.Sync(th, h.DoneEvt()); err != nil {
				t.Fatal(err)
			}
		}
		// Observable proxy for unlinking: yoking state stays sane — a
		// grant still propagates and the runtime has no thread leak.
		if n := rt.LiveThreads(); n > 3 {
			t.Fatalf("%d live threads after helpers finished", n)
		}
		c := core.NewCustodian(rt.RootCustodian())
		core.ResumeWith(mgr, c)
		if mgr.Suspended() {
			t.Fatal("grant after helper churn failed")
		}
	})
}

func TestYokeCycleDoesNotDiverge(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		a := th.Spawn("a", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		b := th.Spawn("b", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		core.ResumeVia(a, b)
		core.ResumeVia(b, a) // cycle
		c := core.NewCustodian(rt.RootCustodian())
		done := make(chan struct{})
		go func() {
			defer close(done)
			core.ResumeWith(a, c) // must terminate despite the cycle
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("cyclic yoke diverged")
		}
		if b.Suspended() {
			t.Fatal("grant did not traverse the cycle")
		}
	})
}

func TestResumeViaSelfIsNoop(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		a := th.Spawn("a", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		core.ResumeVia(a, a) // must not deadlock or self-register
		if a.Suspended() {
			t.Fatal("self-yoke changed state")
		}
	})
}

func TestYokeToDoneThreadGrantsNothing(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c := core.NewCustodian(rt.RootCustodian())
		var orphan *core.Thread
		th.WithCustodian(c, func() {
			orphan = th.Spawn("orphan", func(x *core.Thread) { _ = core.Sleep(x, time.Hour) })
		})
		dead := th.Spawn("dead", func(*core.Thread) {})
		if _, err := core.Sync(th, dead.DoneEvt()); err != nil {
			t.Fatal(err)
		}
		c.Shutdown()
		core.ResumeVia(orphan, dead) // dead thread has no custodians
		if !orphan.Suspended() {
			t.Fatal("yoking to a finished thread revived the orphan")
		}
	})
}
