package core

// nackSignal is a one-shot, level-triggered signal backing a nack-guard's
// negative-acknowledgment event. Once fired it stays ready forever, so a
// server can observe a client's withdrawal at any later time.
type nackSignal struct {
	fired   bool
	waiters []*waiter
}

func newNackSignal() *nackSignal { return &nackSignal{} }

func (n *nackSignal) event() Event { return &nackEvt{sig: n} }

// fireLocked makes the signal ready and commits any matchable waiters.
// Idempotent. Caller holds rt.mu.
func (n *nackSignal) fireLocked() {
	if n.fired {
		return
	}
	n.fired = true
	for _, w := range n.waiters {
		commitSingleLocked(w, Unit{})
	}
	n.waiters = nil
}

// nackEvt is the event view of a nack signal.
type nackEvt struct {
	sig *nackSignal
}

func (*nackEvt) isEvent() {}

func (e *nackEvt) poll(op *syncOp, idx int) bool {
	if !e.sig.fired {
		return false
	}
	commitOpLocked(op, idx, Unit{})
	return true
}

func (e *nackEvt) register(w *waiter) {
	e.sig.waiters = append(e.sig.waiters, w)
}

func (e *nackEvt) unregister(*waiter) {
	e.sig.waiters = compact(e.sig.waiters)
}
