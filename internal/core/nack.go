package core

// nackSignal is a one-shot, level-triggered signal backing a nack-guard's
// negative-acknowledgment event. Once fired it stays ready forever, so a
// server can observe a client's withdrawal at any later time. It is a thin
// wrapper over the shared oneshot core; firing takes only the signal's own
// lock, so nack cascades never serialize on runtime-wide state.
type nackSignal struct {
	sig oneshot
}

func newNackSignal() *nackSignal { return &nackSignal{} }

func (n *nackSignal) event() Event { return &nackEvt{sig: n} }

// fire makes the signal ready and commits any committable waiters.
// Idempotent; safe to call from any goroutine with any event lock NOT
// held (it is called from commit finalization and from finish, both of
// which run lock-free above the oneshot leaf lock).
func (n *nackSignal) fire() { n.sig.fire(Unit{}) }

// nackEvt is the event view of a nack signal.
type nackEvt struct {
	sig *nackSignal
}

func (*nackEvt) isEvent() {}

func (e *nackEvt) poll(op *syncOp, idx int) bool { return e.sig.sig.poll(op, idx) }
func (e *nackEvt) enroll(w *waiter) bool         { return e.sig.sig.enroll(w) }
func (e *nackEvt) cancel(w *waiter)              { e.sig.sig.cancel(w) }
