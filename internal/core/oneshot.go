package core

import (
	"sync"
	"sync/atomic"
)

// oneshot is the shared core of every level-triggered, fire-once event
// source: nack signals, External completion cells, thread done events, and
// custodian dead events. Once fired it stays ready forever with a fixed
// value.
//
// Firing uses the swap pattern: the waiter queue is detached under the
// signal's own lock, and the commits run after the lock is released. A
// commit can cascade (committing an op fires its losing nacks, which
// commit further ops …), and the cascade may in principle reach this very
// signal again; because the fired flag is set before any commit and the
// queue is already empty, the re-entry is a cheap no-op instead of a
// self-deadlock.
type oneshot struct {
	mu    sync.Mutex
	fired atomic.Bool
	v     Value
	q     waitq
}

// commitRef is a (op, case) pair snapshotted from a waiter under the
// owning event's lock. The commit runs after the lock is released, by
// which time the waiter record itself may already be recycled by its
// owner — so the ref, not the waiter, crosses the unlock.
type commitRef struct {
	op  *syncOp
	idx int
}

// fire makes the signal ready with v and commits every waiter that can
// commit right now. A suspended waiter is dropped from the queue but not
// lost: the signal is level-triggered, so the resume path's re-poll
// observes it ready. Idempotent; returns true if this call fired it.
func (s *oneshot) fire(v Value) bool {
	s.mu.Lock()
	if s.fired.Load() {
		s.mu.Unlock()
		return false
	}
	s.v = v
	s.fired.Store(true)
	var refs []commitRef
	s.q.visit(func(w *waiter) (drop, cont bool) {
		refs = append(refs, commitRef{w.op, w.idx})
		return true, true
	})
	s.mu.Unlock()
	for _, r := range refs {
		commitReady(r.op, r.idx, v)
	}
	return true
}

// poll attempts an immediate commit of op's case idx if the signal has
// fired. The fired flag is an acquire load, so the value stored before
// the release in fire is visible.
func (s *oneshot) poll(op *syncOp, idx int) bool {
	if !s.fired.Load() {
		return false
	}
	if !op.claim() {
		return false
	}
	finalizeCommit(op, idx, s.v)
	return true
}

// enroll atomically either commits w (the signal fired) or enqueues it.
// The fired check runs under the lock, so a concurrent fire either sees
// the enqueued waiter or the enroll sees fired — never neither.
func (s *oneshot) enroll(w *waiter) bool {
	s.mu.Lock()
	if s.fired.Load() {
		s.mu.Unlock()
		// Commit outside the lock: finalize may cascade through nack
		// signals and the signal lock must stay a leaf.
		if !w.op.claim() {
			return false
		}
		finalizeCommit(w.op, w.idx, s.v)
		return true
	}
	s.q.enqueue(w)
	s.mu.Unlock()
	return false
}

// cancel deregisters an abandoned waiter.
func (s *oneshot) cancel(w *waiter) {
	s.mu.Lock()
	s.q.cancel(w)
	s.mu.Unlock()
}
