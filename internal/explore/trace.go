package explore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ActionKind enumerates the scheduler's decision vocabulary. A schedule is
// a sequence of actions; given the same scenario and the same sequence,
// a deterministic run replays bit-identically.
type ActionKind int

const (
	// ActRun grants one scheduling quantum (safe point to safe point) to
	// the thread identified by Thread.
	ActRun ActionKind = iota
	// ActDeliver delivers the oldest queued External completion.
	ActDeliver
	// ActClock advances the virtual clock to the next pending alarm.
	ActClock
	// ActKill / ActSuspend / ActResume / ActBreak inject a fault against
	// the victim thread identified by Thread.
	ActKill
	ActSuspend
	ActResume
	ActBreak
	// ActShutdown shuts down the victim custodian identified by Cust
	// (an index into the scenario's registered custodian list).
	ActShutdown
)

// Action is one scheduling decision.
type Action struct {
	Kind   ActionKind
	Thread int64 // thread id, for ActRun and the thread faults
	Cust   int   // custodian index, for ActShutdown
}

// Fault reports whether the action is a fault injection rather than a
// progress step.
func (a Action) Fault() bool {
	switch a.Kind {
	case ActKill, ActSuspend, ActResume, ActBreak, ActShutdown:
		return true
	}
	return false
}

func (a Action) String() string {
	switch a.Kind {
	case ActRun:
		return fmt.Sprintf("r %d", a.Thread)
	case ActDeliver:
		return "d"
	case ActClock:
		return "c"
	case ActKill:
		return fmt.Sprintf("k %d", a.Thread)
	case ActSuspend:
		return fmt.Sprintf("s %d", a.Thread)
	case ActResume:
		return fmt.Sprintf("u %d", a.Thread)
	case ActBreak:
		return fmt.Sprintf("b %d", a.Thread)
	case ActShutdown:
		return fmt.Sprintf("x %d", a.Cust)
	}
	return fmt.Sprintf("? %d", int(a.Kind))
}

// Trace is a recorded schedule: the scenario it drives, the seed that
// produced it (for provenance only — replay does not use it), and the
// decision sequence.
type Trace struct {
	Scenario string
	Seed     int64
	Actions  []Action
}

// traceMagic is the first line of every trace file; the trailing number
// is the format version.
const traceMagic = "killsafe-explore-trace 1"

// Encode writes the trace in its line-oriented text format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", traceMagic)
	fmt.Fprintf(bw, "scenario %s\n", t.Scenario)
	fmt.Fprintf(bw, "seed %d\n", t.Seed)
	for _, a := range t.Actions {
		fmt.Fprintf(bw, "%s\n", a.String())
	}
	return bw.Flush()
}

// EncodeToString renders the trace file contents as a string.
func (t *Trace) EncodeToString() string {
	var sb strings.Builder
	_ = t.Encode(&sb)
	return sb.String()
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseActionLine parses one action line of the trace format. ok is
// false for lines that are not actions (headers, handled by the
// caller).
func parseActionLine(text string) (a Action, ok bool, err error) {
	fields := strings.Fields(text)
	arg := func() (int64, error) {
		if len(fields) != 2 {
			return 0, fmt.Errorf("explore: action %q needs one argument", text)
		}
		return strconv.ParseInt(fields[1], 10, 64)
	}
	switch fields[0] {
	case "d":
		return Action{Kind: ActDeliver}, true, nil
	case "c":
		return Action{Kind: ActClock}, true, nil
	case "r", "k", "s", "u", "b":
		n, err := arg()
		if err != nil {
			return Action{}, false, err
		}
		kind := map[string]ActionKind{"r": ActRun, "k": ActKill, "s": ActSuspend, "u": ActResume, "b": ActBreak}[fields[0]]
		return Action{Kind: kind, Thread: n}, true, nil
	case "x":
		n, err := arg()
		if err != nil {
			return Action{}, false, err
		}
		return Action{Kind: ActShutdown, Cust: int(n)}, true, nil
	}
	return Action{}, false, nil
}

// EncodeActions renders a bare action sequence (no header) in the trace
// line format, one action per line. It is the fleet protocol's prefix
// encoding.
func EncodeActions(actions []Action) string {
	var sb strings.Builder
	for _, a := range actions {
		sb.WriteString(a.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DecodeActions parses a bare action sequence as produced by
// EncodeActions.
func DecodeActions(s string) ([]Action, error) {
	var out []Action
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, ok, err := parseActionLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("explore: unknown action %q", line)
		}
		out = append(out, a)
	}
	return out, nil
}

// DecodeTrace parses a trace file.
func DecodeTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() || sc.Text() != traceMagic {
		return nil, fmt.Errorf("explore: not a trace file (want %q header)", traceMagic)
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "scenario":
			if len(fields) != 2 {
				return nil, fmt.Errorf("explore: trace line %d: malformed scenario", line)
			}
			t.Scenario = fields[1]
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("explore: trace line %d: malformed seed", line)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, err
			}
			t.Seed = n
		default:
			a, ok, err := parseActionLine(text)
			if err != nil {
				return nil, fmt.Errorf("explore: trace line %d: %w", line, err)
			}
			if !ok {
				return nil, fmt.Errorf("explore: trace line %d: unknown op %q", line, fields[0])
			}
			t.Actions = append(t.Actions, a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadTraceFile loads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTrace(f)
}
