package explore_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
	"repro/internal/explore"
)

// TestVirtualClockBackoffDeterminism pins the virtual-clock contract the
// resilience layer builds on: in deterministic mode, core.Runtime.Now()
// advances only when the explorer fires an alarm, so the timestamps of a
// retry loop's attempts are a pure function of the backoff arithmetic —
// independent of the seed, the schedule, and how many times the run is
// repeated. Four attempts with a 10ms base delay must land at virtual
// offsets 0, 10, 30 and 70ms under every seed.
func TestVirtualClockBackoffDeterminism(t *testing.T) {
	policy := supervise.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
	}
	want := []time.Duration{
		0,
		policy.Delay(1),
		policy.Delay(1) + policy.Delay(2),
		policy.Delay(1) + policy.Delay(2) + policy.Delay(3),
	}
	transient := errors.New("transient")

	run := func(seed int64) ([]time.Duration, error) {
		var stamps []time.Duration
		sc := explore.Scenario{
			Name: "vclock-retry",
			Desc: "retry backoff stamps are schedule-independent",
			Setup: func(sim *explore.Sim) {
				rt := sim.RT
				base := rt.Now()
				w := rt.Spawn("worker", func(th *core.Thread) {
					_ = supervise.Retry(th, policy, func(attempt int) error {
						stamps = append(stamps, rt.Now().Sub(base))
						if attempt < policy.MaxAttempts {
							return transient
						}
						return nil
					})
				})
				sim.MustFinish(w)
			},
		}
		o := explore.RunOnce(sc, explore.NewRandomPicker(seed, 0.25), seed, explore.Options{})
		if o.Status != explore.StatusPass {
			return nil, fmt.Errorf("seed %d: status %v (err=%v)", seed, o.Status, o.Err)
		}
		return stamps, nil
	}

	for seed := int64(1); seed <= 25; seed++ {
		got, err := run(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d attempts recorded, want %d (%v)", seed, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: attempt %d at virtual offset %v, want %v (all: %v)",
					seed, i+1, got[i], want[i], got)
			}
		}
	}
}
