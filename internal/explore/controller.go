// Package explore is a systematic concurrency-testing subsystem for the
// kill-safe runtime, in the spirit of CHESS and loom, built on the
// runtime's own safe points. It runs a scenario in sequential
// deterministic mode — exactly one runtime thread executes at a time, a
// pluggable Picker chooses the next step at every safe point, alarms fire
// on a virtual clock, and External completions land through a FIFO
// delivery queue — so every interleaving the picker produces is
// reproducible. Each decision (thread granted, fault injected, clock
// advanced) is recorded as a Trace that replays bit-identically, and a
// greedy shrinker minimizes failing traces. Fault injection (Kill,
// Suspend, Resume, Break, custodian Shutdown at explorer-chosen safe
// points) turns the runtime's chaos tests into a search: Explore runs N
// seeded schedules and hands back a replay file for the first failure.
package explore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// threadStatus is the controller's view of one runtime thread.
type threadStatus int

const (
	statusReady   threadStatus = iota // may run (or is unwinding a kill)
	statusBlocked                     // parked on its condition variable
	statusDone                        // finished
)

// tstate tracks one thread. waiting means the goroutine is parked at a
// Pause call, i.e. it is at a safe point and a grant will take effect
// immediately. A thread that is ready but not waiting is "in limbo":
// its wake-up has been signalled but its goroutine has not yet reached
// the next Pause or Blocked call; the controller waits out limbo before
// making decisions so that every decision sees a settled world.
type tstate struct {
	th      *core.Thread
	status  threadStatus
	waiting bool
}

// controller implements core.Instrumentation: the sequential scheduler
// that owns the run token. It overrides the scheduler taps and inherits
// no-ops (via NopInstrumentation) for the passive ones; Deterministic()
// is true, which is what switches the runtime into sequential mode. All
// picking happens on the driver goroutine (in Run); the hook callbacks
// only update state and signal.
//
// Lock order: core's runtime lock → controller.mu. Hook methods are
// called with the runtime lock held and take only controller.mu; driver
// code never calls into core while holding controller.mu.
type controller struct {
	core.NopInstrumentation

	mu      sync.Mutex
	cv      *sync.Cond
	threads map[int64]*tstate
	grantee *core.Thread // thread granted but not yet running
	current *core.Thread // thread currently holding the run token
	free    bool         // teardown: all Pause calls return immediately
	hung    bool         // watchdog tripped; settle/grant return errors
}

func newController() *controller {
	c := &controller{threads: make(map[int64]*tstate)}
	c.cv = sync.NewCond(&c.mu)
	return c
}

// Deterministic marks the controller as a sequential scheduler:
// installing it switches the runtime to deterministic mode (virtual
// clock, queued External delivery, explicit grants).
func (c *controller) Deterministic() bool { return true }

func (c *controller) Spawned(th *core.Thread) {
	c.mu.Lock()
	c.threads[th.ID()] = &tstate{th: th, status: statusReady}
	c.cv.Broadcast()
	c.mu.Unlock()
}

func (c *controller) Runnable(th *core.Thread) {
	c.mu.Lock()
	if st := c.threads[th.ID()]; st != nil && st.status != statusDone {
		st.status = statusReady
	}
	c.cv.Broadcast()
	c.mu.Unlock()
}

func (c *controller) Blocked(th *core.Thread) {
	c.mu.Lock()
	if st := c.threads[th.ID()]; st != nil && st.status != statusDone {
		st.status = statusBlocked
		st.waiting = false
	}
	if c.current == th {
		c.current = nil
	}
	c.cv.Broadcast()
	c.mu.Unlock()
}

func (c *controller) Done(th *core.Thread) {
	c.mu.Lock()
	if st := c.threads[th.ID()]; st != nil {
		st.status = statusDone
		st.waiting = false
	}
	if c.current == th {
		c.current = nil
	}
	if c.grantee == th {
		c.grantee = nil
	}
	c.cv.Broadcast()
	c.mu.Unlock()
}

func (c *controller) Pause(th *core.Thread) {
	c.mu.Lock()
	if c.free {
		c.mu.Unlock()
		return
	}
	st := c.threads[th.ID()]
	if st == nil { // thread from before the controller was installed; run free
		c.mu.Unlock()
		return
	}
	st.waiting = true
	if c.current == th {
		c.current = nil
	}
	c.cv.Broadcast()
	for !c.free && c.grantee != th {
		c.cv.Wait()
	}
	if c.free {
		c.mu.Unlock()
		return
	}
	c.grantee = nil
	c.current = th
	st.waiting = false
	c.cv.Broadcast()
	c.mu.Unlock()
}

// watchdog arms a real-time guard against a scheduling bug (or a thread
// spinning without safe points) hanging the driver forever. It is purely
// an error path: it never influences a healthy run's decisions.
func (c *controller) watchdog(d time.Duration) *time.Timer {
	return time.AfterFunc(d, func() {
		c.mu.Lock()
		c.hung = true
		c.cv.Broadcast()
		c.mu.Unlock()
	})
}

// settle blocks until no thread is in limbo and the token is free: every
// thread is parked at a Pause, parked blocked, or done. Decisions made on
// a settled world are a pure function of prior decisions.
func (c *controller) settle(timeout time.Duration) error {
	t := c.watchdog(timeout)
	defer t.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.hung {
			return fmt.Errorf("explore: scheduler failed to settle within %v (thread without safe points?)", timeout)
		}
		settled := c.current == nil && c.grantee == nil
		if settled {
			for _, st := range c.threads {
				if st.status == statusReady && !st.waiting {
					settled = false
					break
				}
			}
		}
		if settled {
			return nil
		}
		c.cv.Wait()
	}
}

// grant hands the run token to th and blocks until th relinquishes it at
// its next safe point (Pause, Blocked, or Done).
func (c *controller) grant(th *core.Thread, timeout time.Duration) error {
	t := c.watchdog(timeout)
	defer t.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grantee = th
	c.cv.Broadcast()
	for !c.hung && (c.grantee != nil || c.current != nil) {
		c.cv.Wait()
	}
	if c.hung {
		return fmt.Errorf("explore: thread %v did not reach a safe point within %v", th, timeout)
	}
	return nil
}

// release switches to free-run mode for teardown: every parked and future
// Pause returns immediately, restoring ordinary concurrent execution so
// Runtime.Shutdown can reap the world.
func (c *controller) release() {
	c.mu.Lock()
	c.free = true
	c.cv.Broadcast()
	c.mu.Unlock()
}

// runnable returns the threads eligible for a grant, in id order: parked
// at a Pause and, per the controller's bookkeeping, ready. The caller
// filters against core state (suspension) without holding c.mu.
func (c *controller) runnable() []*core.Thread {
	c.mu.Lock()
	ids := make([]int64, 0, len(c.threads))
	for id, st := range c.threads {
		if st.status == statusReady && st.waiting {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*core.Thread, 0, len(ids))
	c.mu.Lock()
	for _, id := range ids {
		out = append(out, c.threads[id].th)
	}
	c.mu.Unlock()
	return out
}

// thread looks up a live thread by id (nil if unknown or done).
func (c *controller) thread(id int64) *core.Thread {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.threads[id]; st != nil && st.status != statusDone {
		return st.th
	}
	return nil
}
