package explore

// Frontier holds novelty-yielding schedule prefixes, tiered by their
// preemption count: a prefix enters the frontier when the run it came
// from produced a footprint the coverage map had not seen, and leaves
// when the driver schedules a mutation of it (replay the prefix, then
// explore a fresh random tail). Popping always drains the lowest tier
// first, so low-preemption schedules are exhausted before deep ones —
// the CHESS discipline, which finds most bugs within a preemption
// budget of two or three.
//
// The frontier is deterministic: Push and Pop orders are pure functions
// of the call sequence, so a driver that feeds it results in job order
// generates the same mutations on every run. It is not safe for
// concurrent use; the driver owns it.
type Frontier struct {
	tiers   [frontierTiers][]frontierEntry
	dedup   map[uint64]struct{}
	entries int
}

type frontierEntry struct {
	prefix   []Action
	srcLen   int // length of the trace the prefix was cut from
	attempts int
}

const (
	// frontierTiers buckets preemption counts; everything at or above
	// frontierTiers-1 preemptions shares the deepest tier.
	frontierTiers = 8
	// frontierTierCap bounds each tier; pushing into a full tier evicts
	// the tier's oldest entry. The newest prefixes come from the most
	// recently discovered footprints — the search's leading edge — and
	// the oldest have already had the most mutation attempts, so when
	// novelty outpaces mutation the queue sheds its stalest material,
	// not its freshest.
	frontierTierCap = 2048
	// frontierMaxAttempts is how many mutation tails each prefix gets
	// before it is retired. One attempt is nowhere near enough: at the
	// default fault probability a fresh tail re-places the fault only a
	// grant or two past the cut, so walking a kill deep into the
	// victim's execution takes a chain of re-tries per prefix. Popping
	// re-queues the entry (round-robin within its tier) until the
	// budget is spent.
	frontierMaxAttempts = 24
)

// Push offers a prefix cut from a trace of srcLen actions. Duplicate
// prefixes (by exact action-sequence hash) are dropped.
func (f *Frontier) Push(prefix []Action, srcLen int) {
	if len(prefix) == 0 {
		return
	}
	if f.dedup == nil {
		f.dedup = make(map[uint64]struct{})
	}
	h := actionsHash(prefix)
	if _, ok := f.dedup[h]; ok {
		return
	}
	tier := Preemptions(&Trace{Actions: prefix})
	if tier >= frontierTiers {
		tier = frontierTiers - 1
	}
	if len(f.tiers[tier]) >= frontierTierCap {
		f.tiers[tier] = f.tiers[tier][1:]
		f.entries--
	}
	f.dedup[h] = struct{}{}
	f.tiers[tier] = append(f.tiers[tier], frontierEntry{prefix: prefix, srcLen: srcLen})
	f.entries++
}

// Pop returns the oldest prefix from the lowest non-empty tier, along
// with the length of the trace it was cut from (so a mutation tail can
// scale its fault placement to the run's actual extent). The entry is
// re-queued at its tier's tail for another attempt later — round-robin
// across the tier's prefixes — until it has been popped
// frontierMaxAttempts times, at which point it is retired for good
// (the dedup mark stays, so it can never re-enter). ok is false when
// the frontier is empty.
func (f *Frontier) Pop() (prefix []Action, srcLen int, ok bool) {
	for t := range f.tiers {
		if q := f.tiers[t]; len(q) > 0 {
			e := q[0]
			e.attempts++
			if e.attempts < frontierMaxAttempts {
				f.tiers[t] = append(q[1:], e)
			} else {
				f.tiers[t] = q[1:]
				f.entries--
			}
			return e.prefix, e.srcLen, true
		}
	}
	return nil, 0, false
}

// Len reports the number of queued prefixes.
func (f *Frontier) Len() int { return f.entries }

// actionsHash hashes an exact action sequence (position-sensitive, no
// coarsening — this is identity, not coverage).
func actionsHash(actions []Action) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, a := range actions {
		mix(uint64(a.Kind))
		mix(uint64(a.Thread))
		mix(uint64(a.Cust))
	}
	return h
}

// mutationPrefixes derives the frontier candidates from a novel trace.
// Two families of cuts:
//
//   - at each injected fault, the prefix that stops just short of it
//     (so a mutated tail re-places the fault elsewhere — this is how
//     the fleet walks kills past the uniform picker's geometric early
//     bias) and the prefix that keeps it (so a second fault can land
//     behind a proven-novel first one);
//   - at a stride across the whole trace, so the walk has anchors at
//     arbitrary depths of the execution, not only where faults have
//     already landed — without these, re-placement is always relative
//     to an old fault position and the deep interior of the
//     fault-placement product space is reachable only by long chains.
//
// Capped to keep one novel run from flooding the frontier.
func mutationPrefixes(tr *Trace) [][]Action {
	const maxPrefixes = 24
	var out [][]Action
	add := func(end int) {
		if end <= 0 || end >= len(tr.Actions) || len(out) >= maxPrefixes {
			return
		}
		out = append(out, append([]Action(nil), tr.Actions[:end]...))
	}
	for i, a := range tr.Actions {
		if a.Fault() {
			add(i)
			add(i + 1)
		}
	}
	stride := len(tr.Actions) / 16
	if stride < 8 {
		stride = 8
	}
	for end := stride; end < len(tr.Actions); end += stride {
		add(end)
	}
	if len(out) == 0 {
		add(len(tr.Actions) / 2)
	}
	return out
}
