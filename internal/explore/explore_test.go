package explore_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/explore/scenarios"
)

// Determinism is the subsystem's load-bearing property: the same scenario
// and seed must produce a byte-identical trace on every run.
func TestSameSeedSameTrace(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var first string
			for i := 0; i < 10; i++ {
				o := explore.RunOnce(sc, explore.NewRandomPicker(42, 0.25), 42, explore.Options{})
				if o.Status == explore.StatusError {
					t.Fatalf("run %d: harness error: %v", i, o.Err)
				}
				enc := o.Trace.EncodeToString()
				if i == 0 {
					first = enc
					continue
				}
				if enc != first {
					t.Fatalf("run %d diverged from run 0:\n--- run 0 ---\n%s--- run %d ---\n%s", i, first, i, enc)
				}
			}
		})
	}
}

// A recorded run must replay to the same outcome under the strict
// replayer.
func TestRecordedRunReplays(t *testing.T) {
	sc := scenarios.QueueKillSafe()
	o := explore.RunOnce(sc, explore.NewRandomPicker(7, 0.25), 7, explore.Options{})
	if o.Status == explore.StatusError {
		t.Fatalf("record run: %v", o.Err)
	}
	r := explore.Replay(sc, o.Trace, explore.Options{})
	if r.Status != o.Status {
		t.Fatalf("replay status %v, recorded %v (err=%v)", r.Status, o.Status, r.Err)
	}
	if r.Trace.EncodeToString() != o.Trace.EncodeToString() {
		t.Fatalf("replay trace differs from recording")
	}
}

// The explorer must find the unsafe queue's wedge within a bounded seed
// budget, the failing trace must replay to the same wedge, and the
// shrinker must cut it to a handful of decisions.
func TestExplorerFindsUnsafeQueueWedge(t *testing.T) {
	sc := scenarios.QueueUnsafe()
	rep := explore.Explore(sc, explore.Options{Seeds: 100, BaseSeed: 1})
	if rep.FirstFailure == nil {
		t.Fatalf("no wedge found in %d schedules (outcomes: %v)", rep.Schedules, rep.Outcomes)
	}
	if rep.FirstFailure.Status != explore.StatusStuck {
		t.Fatalf("failure status %v (err=%v), want stuck", rep.FirstFailure.Status, rep.FirstFailure.Err)
	}
	t.Logf("wedge found at seed %d after %d schedules (%d decisions)",
		rep.FirstFailureSeed, rep.Schedules, len(rep.FirstFailure.Trace.Actions))

	r := explore.Replay(sc, rep.FirstFailure.Trace, explore.Options{})
	if r.Status != explore.StatusStuck {
		t.Fatalf("strict replay of wedge trace: status %v (err=%v), want stuck", r.Status, r.Err)
	}

	shrunk, replays := explore.Shrink(sc, rep.FirstFailure.Trace, explore.Options{}, nil)
	t.Logf("shrunk %d -> %d decisions in %d replays:\n%s",
		len(rep.FirstFailure.Trace.Actions), len(shrunk.Actions), replays, shrunk.EncodeToString())
	if len(shrunk.Actions) > 20 {
		t.Fatalf("shrunk trace has %d decisions, want <= 20", len(shrunk.Actions))
	}
	s := explore.Replay(sc, shrunk, explore.Options{Lenient: true})
	if s.Status != explore.StatusStuck {
		t.Fatalf("shrunk trace replays to %v (err=%v), want stuck", s.Status, s.Err)
	}
}

// Every kill-safe scenario must pass under every explored schedule: the
// whole point of the abstractions is that no interleaving of faults at
// safe points can wedge a survivor or break an invariant.
func TestKillSafeScenariosPassAllSchedules(t *testing.T) {
	for _, sc := range scenarios.All() {
		if sc.Name == "queue-unsafe" {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep := explore.Explore(sc, explore.Options{Seeds: 40, BaseSeed: 1})
			if rep.FirstFailure != nil {
				t.Fatalf("seed %d failed with %v (err=%v):\n%s",
					rep.FirstFailureSeed, rep.FirstFailure.Status, rep.FirstFailure.Err,
					rep.FirstFailure.Trace.EncodeToString())
			}
			t.Logf("%d schedules, %d decisions, %d faults injected (outcomes: %v)",
				rep.Schedules, rep.Steps, rep.Faults, rep.Outcomes)
		})
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &explore.Trace{
		Scenario: "demo",
		Seed:     99,
		Actions: []explore.Action{
			{Kind: explore.ActRun, Thread: 3},
			{Kind: explore.ActDeliver},
			{Kind: explore.ActClock},
			{Kind: explore.ActKill, Thread: 4},
			{Kind: explore.ActSuspend, Thread: 5},
			{Kind: explore.ActResume, Thread: 5},
			{Kind: explore.ActBreak, Thread: 6},
			{Kind: explore.ActShutdown, Cust: 1},
		},
	}
	got, err := explore.DecodeTrace(strings.NewReader(tr.EncodeToString()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.EncodeToString() != tr.EncodeToString() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got.EncodeToString(), tr.EncodeToString())
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	sc := scenarios.QueueKillSafe()
	o := explore.RunOnce(sc, explore.NewRandomPicker(3, 0.25), 3, explore.Options{})
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := o.Trace.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := explore.ReadTraceFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.EncodeToString() != o.Trace.EncodeToString() {
		t.Fatalf("file round trip mismatch")
	}
}

// A strict replay against a world that cannot honor the recorded
// decisions must surface a divergence error, not silently wander off.
func TestStrictReplayDivergence(t *testing.T) {
	tr := &explore.Trace{
		Scenario: "pool",
		Seed:     1,
		Actions:  []explore.Action{{Kind: explore.ActRun, Thread: 999}},
	}
	sc, _ := scenarios.ByName("pool")
	o := explore.Replay(sc, tr, explore.Options{})
	if o.Status != explore.StatusError {
		t.Fatalf("status %v, want error on divergence", o.Status)
	}
}
