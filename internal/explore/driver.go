package explore

import (
	"math/rand"
	"time"
)

// Strategy selects how the explorer generates schedules.
type Strategy int

const (
	// StrategyUniform is the classic sweep: one seeded-random schedule
	// per seed, seeds BaseSeed, BaseSeed+1, …
	StrategyUniform Strategy = iota
	// StrategyCoverage is coverage-guided: fresh schedules cycle
	// through preemption-bound tiers (low-preemption first), every
	// run's footprint feeds a coverage map, and prefixes of
	// novelty-yielding runs are mutated before more fresh seeds are
	// spent.
	StrategyCoverage
)

func (s Strategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyCoverage:
		return "coverage"
	}
	return "strategy(?)"
}

// ParseStrategy parses a -strategy flag value.
func ParseStrategy(s string) (Strategy, bool) {
	switch s {
	case "uniform", "":
		return StrategyUniform, true
	case "coverage":
		return StrategyCoverage, true
	}
	return 0, false
}

// coverageTiers is the preemption-bound schedule for fresh
// coverage-strategy jobs: mostly shallow, occasionally unbounded (-1)
// so the deep tail of the schedule space never starves entirely.
var coverageTiers = []int{0, 1, 1, 2, 2, 3, 3, 4, 6, -1}

// Driver generates exploration jobs and digests their results. It owns
// the coverage map and the mutation frontier; it is the deterministic
// heart shared by the in-process Explore and the multi-process fleet.
// Feed results back in job-ID order (Observe) and the same options
// produce the same job stream on every run, whatever executed them.
// Not safe for concurrent use.
type Driver struct {
	opts     Options
	cov      CoverageMap
	frontier Frontier
	rng      *rand.Rand
	start    time.Time
	issued   int64
	fresh    int64 // fresh (non-mutation) jobs issued
	stopped  bool
}

// NewDriver returns a driver for opts (defaults applied). The budget
// clock starts now.
func NewDriver(opts Options) *Driver {
	opts = opts.withDefaults()
	return &Driver{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.BaseSeed ^ 0x5eedf1ee7)),
		start: time.Now(),
	}
}

// Next returns the next job, or ok=false when the run is over: the
// seed budget is spent, the time budget expired, or Stop was called.
func (d *Driver) Next() (Job, bool) {
	if d.stopped || d.issued >= int64(d.opts.Seeds) {
		return Job{}, false
	}
	if d.opts.Budget > 0 && time.Since(d.start) >= d.opts.Budget {
		return Job{}, false
	}
	j := Job{ID: d.issued, Bound: -1}
	d.issued++
	if d.opts.Strategy != StrategyCoverage {
		j.Seed = d.opts.BaseSeed + int64(d.fresh)
		d.fresh++
		return j, true
	}
	// Coverage: seven mutation jobs for every fresh seed, while the
	// frontier has material — guided placement is where the novelty
	// is; fresh seeds only have to keep feeding the frontier new
	// basins.
	if j.ID%8 != 0 {
		if prefix, srcLen, ok := d.frontier.Pop(); ok {
			j.Prefix = prefix
			j.SrcLen = srcLen
			j.Seed = d.rng.Int63()
			return j, true
		}
	}
	j.Seed = d.opts.BaseSeed + int64(d.fresh)
	j.Bound = coverageTiers[int(d.fresh)%len(coverageTiers)]
	d.fresh++
	return j, true
}

// Observe digests one result (call in job-ID order for reproducible
// runs) and reports whether its schedule footprint was novel. Novel
// traces seed the mutation frontier.
func (d *Driver) Observe(res JobResult) bool {
	if res.Trace == nil {
		return false
	}
	novel := d.cov.Add(Footprint(res.Trace))
	if novel && d.opts.Strategy == StrategyCoverage {
		for _, p := range mutationPrefixes(res.Trace) {
			d.frontier.Push(p, len(res.Trace.Actions))
		}
	}
	return novel
}

// Stop ends job generation; Next returns false from now on.
func (d *Driver) Stop() { d.stopped = true }

// Distinct reports the number of distinct schedule footprints observed.
func (d *Driver) Distinct() int { return d.cov.Distinct() }

// FrontierLen reports the number of queued mutation prefixes.
func (d *Driver) FrontierLen() int { return d.frontier.Len() }

// Elapsed reports time since the driver started.
func (d *Driver) Elapsed() time.Duration { return time.Since(d.start) }

// Issued reports how many jobs have been generated.
func (d *Driver) Issued() int64 { return d.issued }
