package explore

import (
	"hash/fnv"
	"math/bits"
)

// Schedule coverage: the fleet's search signal.
//
// Two schedules are the "same interleaving" for coverage purposes when
// their faults land at the same points of the victims' executions and
// their virtual-clock / delivery traffic has the same shape. The grant
// order between those points is deliberately ignored: it mostly encodes
// how a thread's deterministic straight-line work was sliced, which a
// seeded-random picker varies endlessly without reaching any new
// behavior. Hashing the footprint instead of the raw decision sequence
// is what lets a coverage map saturate — and what makes "distinct
// hashes explored" a meaningful count of distinct interleavings rather
// than a count of schedules run.

// Footprint hashes a trace's (event-id, action-kind) footprint into one
// 64-bit schedule-coverage key:
//
//   - every thread fault (kill, suspend, resume, break) contributes
//     (kind, victim thread, victim's grant ordinal at injection) — the
//     event id is "where in the victim's own execution the fault hit";
//   - every custodian shutdown contributes (kind, custodian index,
//     global grant ordinal);
//   - clock advances and External deliveries contribute their
//     log-bucketed totals (their exact positions are schedule slicing,
//     but how many fired changes which timeouts and completions the run
//     saw at all).
//
// Identical traces always hash equal; moving a single injected kill by
// one victim grant hashes distinct.
func Footprint(tr *Trace) uint64 {
	h := fnv.New64a()
	var b [8]byte
	mix := func(vs ...int64) {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			_, _ = h.Write(b[:])
		}
	}
	grants := make(map[int64]int64)
	var total, clocks, delivers int64
	for _, a := range tr.Actions {
		switch a.Kind {
		case ActRun:
			grants[a.Thread]++
			total++
		case ActClock:
			clocks++
		case ActDeliver:
			delivers++
		case ActShutdown:
			mix(int64(a.Kind), int64(a.Cust), total)
		default: // thread faults
			mix(int64(a.Kind), a.Thread, grants[a.Thread])
		}
	}
	mix(-1, covBucket(clocks), covBucket(delivers))
	return h.Sum64()
}

// covBucket compresses a count: exact up to 4, logarithmic above. The
// first few clock fires or deliveries are individually meaningful (they
// decide which timeout beat which grant); past that only the magnitude
// is.
func covBucket(n int64) int64 {
	if n <= 4 {
		return n
	}
	return 4 + int64(bits.Len64(uint64(n-4)))
}

// Preemptions counts the trace's preemptive context switches: grants to
// a different thread while the previously granted thread was still
// runnable (approximated as "is granted again later"). A switch forced
// by the previous thread blocking or finishing is not a preemption —
// CHESS-style preemption bounding orders the search by exactly this
// number, because most concurrency bugs need only a handful of forced
// switch points.
func Preemptions(tr *Trace) int {
	last := int64(-1)
	lastIdx := make(map[int64]int, 8)
	for i, a := range tr.Actions {
		if a.Kind == ActRun {
			lastIdx[a.Thread] = i
		}
	}
	n := 0
	for i, a := range tr.Actions {
		if a.Kind != ActRun {
			continue
		}
		if last >= 0 && a.Thread != last && lastIdx[last] > i {
			n++
		}
		last = a.Thread
	}
	return n
}

// CoverageMap is a set of schedule footprints. The zero value is ready
// to use. It is not safe for concurrent use; the driver owns it.
type CoverageMap struct {
	seen map[uint64]struct{}
}

// Add records h and reports whether it was novel.
func (m *CoverageMap) Add(h uint64) bool {
	if m.seen == nil {
		m.seen = make(map[uint64]struct{})
	}
	if _, ok := m.seen[h]; ok {
		return false
	}
	m.seen[h] = struct{}{}
	return true
}

// Has reports whether h has been recorded.
func (m *CoverageMap) Has(h uint64) bool {
	_, ok := m.seen[h]
	return ok
}

// Distinct returns the number of distinct footprints recorded.
func (m *CoverageMap) Distinct() int { return len(m.seen) }
