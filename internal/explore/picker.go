package explore

import (
	"fmt"
	"math/rand"
)

// Picker chooses the next action at each settled decision point. progress
// holds the non-fault steps currently available (grants, a delivery, a
// clock advance) and faults holds the injectable faults; both lists are
// deterministic functions of the decisions made so far, so a picker that
// is itself deterministic yields a deterministic run. Either list may be
// empty, but never both (the runner declares the run stuck before asking).
type Picker interface {
	Pick(step int, progress, faults []Action) (Action, error)
}

// RandomPicker explores seeded-random schedules: at each decision point
// it injects a fault with probability FaultProb (when any fault is
// available), otherwise picks uniformly among the progress steps. Two
// pickers with the same seed drive byte-identical runs.
type RandomPicker struct {
	rng       *rand.Rand
	FaultProb float64
}

// NewRandomPicker returns a picker seeded with seed. faultProb is the
// per-decision probability of choosing a fault over a progress step;
// values around 0.1–0.3 keep schedules mostly productive.
func NewRandomPicker(seed int64, faultProb float64) *RandomPicker {
	return &RandomPicker{rng: rand.New(rand.NewSource(seed)), FaultProb: faultProb}
}

func (p *RandomPicker) Pick(step int, progress, faults []Action) (Action, error) {
	if len(faults) > 0 && (len(progress) == 0 || p.rng.Float64() < p.FaultProb) {
		return faults[p.rng.Intn(len(faults))], nil
	}
	if len(progress) > 0 {
		return progress[p.rng.Intn(len(progress))], nil
	}
	return Action{}, fmt.Errorf("explore: picker called with no available actions")
}

// ReplayPicker re-issues a recorded decision sequence. In strict mode
// (the default) a decision that is not currently available is a
// divergence error — the scenario or runtime changed under the trace. In
// lenient mode unavailable decisions are skipped and, once the trace is
// exhausted, the picker falls back to the first available action; the
// shrinker uses lenient replays to test traces with chunks deleted.
type ReplayPicker struct {
	trace   *Trace
	pos     int
	Lenient bool
}

// NewReplayPicker returns a strict replayer for tr; set Lenient before
// the first Pick to tolerate unavailable decisions instead.
func NewReplayPicker(tr *Trace) *ReplayPicker { return &ReplayPicker{trace: tr} }

func available(a Action, progress, faults []Action) bool {
	for _, b := range progress {
		if a == b {
			return true
		}
	}
	for _, b := range faults {
		if a == b {
			return true
		}
	}
	return false
}

func (p *ReplayPicker) Pick(step int, progress, faults []Action) (Action, error) {
	if p.Lenient {
		for p.pos < len(p.trace.Actions) {
			a := p.trace.Actions[p.pos]
			p.pos++
			if available(a, progress, faults) {
				return a, nil
			}
		}
		// Trace exhausted: deterministic fallback keeps the run moving so
		// the runner, not the picker, decides how it ends.
		if len(progress) > 0 {
			return progress[0], nil
		}
		if len(faults) > 0 {
			return faults[0], nil
		}
		return Action{}, fmt.Errorf("explore: lenient replay: no available actions")
	}
	if p.pos >= len(p.trace.Actions) {
		return Action{}, fmt.Errorf("explore: replay diverged: trace exhausted at step %d but the run wants another decision", step)
	}
	a := p.trace.Actions[p.pos]
	if !available(a, progress, faults) {
		return Action{}, fmt.Errorf("explore: replay diverged at step %d: recorded decision %q is not available", step, a.String())
	}
	p.pos++
	return a, nil
}
