package scenarios

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/abstractions/pipe"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/web"
	"repro/internal/wire"
)

func init() {
	Register(PipelineKillMidwrite())
}

// PipelineKillMidwrite models the wire layer's torn-frame claim in
// miniature: a server parses three pipelined HTTP/1.1 requests with the
// wire codec and answers them in two batched flushes ([r0,r1] then
// [r2]), each flush one atomic pipe write — exactly the netsvc contract,
// where complete frames accumulate in a batch buffer and reach the write
// pump whole. The explorer kills the server at any decision point; a
// reaper closes the server's outgoing stream on its death (mirroring
// netsvc's connection custodian). The client must always read to EOF and
// must observe a whole, in-order prefix of the response stream at flush
// granularity — 0, 2, or 3 complete frames and never a trailing partial
// byte.
func PipelineKillMidwrite() explore.Scenario {
	return explore.Scenario{
		Name: "pipeline-kill-midwrite",
		Desc: "killing a server mid-pipeline never leaves a torn response frame",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var received []byte
			var readErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				cli, srv := pipe.NewConnPair(th)
				server := th.Spawn("wire-server", func(x *core.Thread) {
					codec := wire.NewHTTP()
					r := srv.Reader(x)
					var buf, batch []byte
					served := 0
					chunk := make([]byte, 256)
					for served < 3 {
						f, rest, err := codec.Parse(buf)
						if err != nil {
							return
						}
						buf = rest
						if f == nil {
							n, err := r.Read(chunk)
							if err != nil {
								return
							}
							buf = append(buf, chunk[:n]...)
							continue
						}
						resp := web.Response{Status: 200, Body: "hello " + strconv.Itoa(served) + "\n"}
						batch = codec.AppendResponse(batch, f, resp, false)
						served++
						if served == 2 || served == 3 {
							if _, err := srv.Write(x, batch); err != nil {
								return
							}
							batch = nil
						}
					}
					_ = srv.Close(x)
				})
				sim.Victim(server)
				reaper := th.Spawn("conn-reaper", func(x *core.Thread) {
					if _, err := core.Sync(x, server.DoneEvt()); err != nil {
						return
					}
					_ = srv.Close(x)
				})
				sim.MustFinish(reaper)
				client := th.Spawn("wire-client", func(x *core.Thread) {
					var req bytes.Buffer
					for i := 0; i < 3; i++ {
						fmt.Fprintf(&req, "GET /hello?i=%d HTTP/1.1\r\n\r\n", i)
					}
					if _, err := cli.Write(x, req.Bytes()); err != nil {
						return
					}
					received, readErr = io.ReadAll(cli.Reader(x))
				})
				sim.MustFinish(client)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				if readErr != nil {
					return fmt.Errorf("client read failed: %w", readErr)
				}
				bodies, leftover, err := parseHTTPResponses(received)
				if err != nil {
					return err
				}
				if leftover != 0 {
					return fmt.Errorf("torn frame: %d trailing bytes after %d complete frames", leftover, len(bodies))
				}
				if n := len(bodies); n != 0 && n != 2 && n != 3 {
					return fmt.Errorf("got %d complete frames, want 0, 2, or 3 (flush batch granularity)", n)
				}
				for i, b := range bodies {
					if want := fmt.Sprintf("hello %d\n", i); b != want {
						return fmt.Errorf("frame %d body %q, want %q", i, b, want)
					}
				}
				return nil
			})
		},
	}
}

// parseHTTPResponses greedily parses complete HTTP response frames from
// data, returning the bodies in order and the count of leftover bytes
// that do not form a complete frame (0 means the stream ended exactly on
// a frame boundary). A malformed head is an error — torn writes truncate,
// they never corrupt.
func parseHTTPResponses(data []byte) (bodies []string, leftover int, err error) {
	for len(data) > 0 {
		i := bytes.Index(data, []byte("\r\n\r\n"))
		if i < 0 {
			return bodies, len(data), nil
		}
		head := string(data[:i])
		lines := strings.Split(head, "\r\n")
		if !strings.HasPrefix(lines[0], "HTTP/1.1 200 ") {
			return nil, 0, fmt.Errorf("bad status line %q", lines[0])
		}
		contentLn := -1
		for _, ln := range lines[1:] {
			if k, v, ok := strings.Cut(ln, ":"); ok && strings.EqualFold(k, "Content-Length") {
				contentLn, err = strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return nil, 0, err
				}
			}
		}
		if contentLn < 0 {
			return nil, 0, fmt.Errorf("frame without Content-Length: %q", head)
		}
		rest := data[i+4:]
		if len(rest) < contentLn {
			return bodies, len(data), nil
		}
		bodies = append(bodies, string(rest[:contentLn]))
		data = rest[contentLn:]
	}
	return bodies, 0, nil
}
