package scenarios

import (
	"fmt"

	"repro/abstractions/msgqueue"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(MsgQueueRemotePred())
	Register(MsgQueueFIFO())
}

// MsgQueueRemotePred exercises remote predicate evaluation (DESIGN.md
// finding #2): predicates run in fresh threads under the client's
// custodian, and the reply must join the same sync as the request or the
// manager self-deadlocks. A pure scheduling scenario — no faults — whose
// recorded trace pins the regression.
func MsgQueueRemotePred() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-remote-pred",
		Desc: "remote predicates answer without wedging the manager",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var got int
			var gotErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
				cons := th.Spawn("consumer", func(th *core.Thread) {
					v, err := q.Recv(th, func(v int) bool { return v >= 2 })
					got, gotErr = v, err
				})
				sim.MustFinish(cons)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if gotErr != nil {
					return fmt.Errorf("consumer recv failed: %w", gotErr)
				}
				if got != 2 {
					return fmt.Errorf("consumer received %d, want 2 (first value matching v>=2)", got)
				}
				return nil
			})
		},
	}
}

// MsgQueueFIFO exercises selective dequeue ordering (DESIGN.md finding
// #4): a receiver removing a middle element must not let another
// receiver's scan skip untested items (high-water mark, not index). With
// values 1,2,3 queued, the even-receiver must get 2 and the odd-receiver
// must get 1 then 3, in FIFO order, under every schedule.
func MsgQueueFIFO() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-fifo",
		Desc: "selective dequeue preserves FIFO for non-matching receivers",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var even int
			var odd []int
			var evenErr, oddErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.New[int](th)
				x := th.Spawn("even-receiver", func(th *core.Thread) {
					even, evenErr = q.Recv(th, func(v int) bool { return v%2 == 0 })
				})
				sim.MustFinish(x)
				y := th.Spawn("odd-receiver", func(th *core.Thread) {
					for i := 0; i < 2; i++ {
						v, err := q.Recv(th, func(v int) bool { return v%2 == 1 })
						if err != nil {
							oddErr = err
							return
						}
						odd = append(odd, v)
					}
				})
				sim.MustFinish(y)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if evenErr != nil || oddErr != nil {
					return fmt.Errorf("recv failed: even=%v odd=%v", evenErr, oddErr)
				}
				if even != 2 {
					return fmt.Errorf("even receiver got %d, want 2", even)
				}
				if len(odd) != 2 || odd[0] != 1 || odd[1] != 3 {
					return fmt.Errorf("odd receiver got %v, want [1 3] (FIFO)", odd)
				}
				return nil
			})
		},
	}
}
