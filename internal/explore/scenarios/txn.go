package scenarios

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(TxnKillMidlock())
	Register(TxnKillValidate())
}

// crossShardKeys probes deterministic key names until it has two owned by
// shard 0 and two by shard 1, returned alternating [s0, s1, s0, s1] — the
// raw material for deliberately cross-shard transactions.
func crossShardKeys(s *kvtxn.Store) [4]string {
	var byShard [2][]string
	for i := 0; len(byShard[0]) < 2 || len(byShard[1]) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if sh := s.ShardOf(k); sh < 2 && len(byShard[sh]) < 2 {
			byShard[sh] = append(byShard[sh], k)
		}
	}
	return [4]string{byShard[0][0], byShard[1][0], byShard[0][1], byShard[1][1]}
}

// transfer moves amount from src to dst inside tx and commits, returning
// true on commit and false on a clean conflict (the caller aborts and may
// retry). Any other error also returns false with the error.
func transfer(x *core.Thread, tx *kvtxn.Txn, src, dst string, amount int) (bool, error) {
	readInt := func(key string) (int, error) {
		v, found, err := tx.Get(x, key)
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, fmt.Errorf("key %s missing", key)
		}
		return strconv.Atoi(v)
	}
	sv, err := readInt(src)
	if err != nil {
		return false, err
	}
	dv, err := readInt(dst)
	if err != nil {
		return false, err
	}
	_ = tx.Put(src, strconv.Itoa(sv-amount))
	_ = tx.Put(dst, strconv.Itoa(dv+amount))
	switch err := tx.Commit(x); err {
	case nil:
		return true, nil
	case kvtxn.ErrConflict:
		return false, nil
	default:
		return false, err
	}
}

// txnScenario is the shared shape of the two transactional-store
// scenarios: a victim transaction the explorer may kill at any decision
// point, a surviving transaction that must still commit, and a checker
// that waits for both, audits the store to quiescence, and reads back the
// invariant sum. The world is sum-preserving (every transaction is a
// transfer), so any half-commit or wedged lock is visible as a wrong sum
// or a dirty audit.
func txnScenario(name, desc string, strat kvtxn.Strategy) explore.Scenario {
	return explore.Scenario{
		Name: name,
		Desc: desc,
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var mu sync.Mutex
			var audited bool
			var finalSum int
			var checkerErr error

			rt.Spawn("txn-init", func(th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{
					Strategy: strat,
					Shards:   2,
					LockWait: 20 * time.Millisecond,
				})
				keys := crossShardKeys(s)
				for _, k := range keys {
					// The explorer may advance the virtual clock at whim,
					// firing the autocommit lock-wait timeout before the
					// uncontended grant; a conflict here is scheduling
					// noise, not state, so retry it.
					for {
						err := s.Put(th, k, "100")
						if err == nil {
							break
						}
						if err != kvtxn.ErrConflict {
							return
						}
					}
				}

				// The victim transfers across shards: under Locking it is
				// killable while holding one shard's lock and waiting for
				// the other's; under OCC while its commit is mid-validation
				// in the prepare round. It runs under its own custodian so
				// the explorer can terminate it both ways the paper allows:
				// kill-thread at any point of the victim's own execution,
				// or custodian shutdown at any point of anyone's.
				victimCust := core.NewCustodian(rt.RootCustodian())
				var victim *core.Thread
				th.WithCustodian(victimCust, func() {
					victim = th.Spawn("txn-victim", func(x *core.Thread) {
						tx, err := s.Begin(x)
						if err != nil {
							return
						}
						if ok, _ := transfer(x, tx, keys[0], keys[1], 30); !ok {
							_ = tx.Abort(x)
						}
					})
				})
				sim.Victim(victim)
				sim.VictimCustodian(victimCust)

				// The survivor works the same keys in the opposite order —
				// guaranteeing lock and validation interplay. It must
				// always *finish* (wedge-freedom is the claim under test);
				// whether a given adversarial schedule lets it commit is
				// the chaos test's liveness claim, not this one.
				survivor := th.Spawn("txn-survivor", func(x *core.Thread) {
					for i := 0; i < 50; i++ {
						tx, err := s.Begin(x)
						if err != nil {
							return
						}
						ok, err := transfer(x, tx, keys[1], keys[2], 10)
						if ok {
							return
						}
						_ = tx.Abort(x)
						if err != nil {
							return
						}
					}
				})
				sim.MustFinish(survivor)

				checker := th.Spawn("txn-checker", func(x *core.Thread) {
					fail := func(err error) {
						mu.Lock()
						checkerErr = err
						mu.Unlock()
					}
					if _, err := core.Sync(x, survivor.DoneEvt()); err != nil {
						fail(err)
						return
					}
					// The victim may be dead (killed outright) or condemned
					// (its custodian shut down, leaving it suspended with no
					// live custodian — "only mostly dead"). Nobody in this
					// world can revive it, so the checker models the
					// collector: every audit round sweeps unrevivable
					// threads, which fires the victim's done event and lets
					// the store's death watch reclaim whatever it held.
					audit := false
					for i := 0; i < 500; i++ {
						rt.TerminateCondemned()
						if victim.Done() {
							a, err := s.Audit(x)
							if err != nil {
								fail(err)
								return
							}
							if a == (kvtxn.Integrity{}) {
								audit = true
								break
							}
						}
						if core.Sleep(x, time.Millisecond) != nil {
							return
						}
					}
					if audit {
						mu.Lock()
						audited = true
						mu.Unlock()
					}
					sum := 0
					for _, k := range keys {
						v, found, err := s.Get(x, k)
						if err != nil || !found {
							fail(fmt.Errorf("read %s after quiesce: found=%v err=%v", k, found, err))
							return
						}
						n, err := strconv.Atoi(v)
						if err != nil {
							fail(err)
							return
						}
						sum += n
					}
					mu.Lock()
					finalSum = sum
					mu.Unlock()
				})
				sim.MustFinish(checker)
			})
			sim.RestrictFaults(explore.ActKill, explore.ActShutdown)
			sim.Check(func() error {
				mu.Lock()
				defer mu.Unlock()
				if checkerErr != nil {
					return fmt.Errorf("checker: %w", checkerErr)
				}
				if !audited {
					return errors.New("store never quiesced: wedged lock, waiter, prepare, or live txn")
				}
				if finalSum != 400 {
					return fmt.Errorf("sum = %d, want 400: a kill half-committed or lost a transfer", finalSum)
				}
				return nil
			})
		},
	}
}

// TxnKillMidlock kills a locking-strategy transaction client at arbitrary
// points — including between lock acquisition and commit hand-off. The
// nack guarantee unwinds waiting acquires, the death watch releases held
// locks, and the finisher protocol makes the commit itself all-or-
// nothing; the surviving client must always get through.
func TxnKillMidlock() explore.Scenario {
	return txnScenario(
		"txn-kill-midlock",
		"killing a locking txn between lock-acquire and commit wedges no lock and leaks no half-commit",
		kvtxn.Locking,
	)
}

// TxnKillValidate kills an OCC transaction client at arbitrary points —
// including while its cross-shard commit is mid-validation in the
// prepare round. Prepare-marks and the store-owned finisher make the
// install opaque and kill-atomic.
func TxnKillValidate() explore.Scenario {
	return txnScenario(
		"txn-kill-validate",
		"killing an OCC txn during validate-then-install leaves no prepare-marks and no half-commit",
		kvtxn.OCC,
	)
}
