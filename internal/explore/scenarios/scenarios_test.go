package scenarios_test

import (
	"path/filepath"
	"testing"

	"repro/internal/explore"
	"repro/internal/explore/scenarios"
)

// The committed traces under testdata/ pin schedules that once exposed
// real bugs (DESIGN.md findings #2 and #4). A strict replay re-executes
// the exact recorded interleaving; if a regression reintroduces either
// bug, the run wedges or diverges from the recording and this test fails.
//
// To regenerate after an intentional scheduling change:
//
//	go run ./cmd/explore record -scenario <name> -seed 42 -out <file>
func TestRecordedTracesReplay(t *testing.T) {
	cases := []struct {
		file string
		want explore.Status
	}{
		{"msgqueue-remote-pred-finding2.trace", explore.StatusPass},
		{"msgqueue-fifo-finding4.trace", explore.StatusPass},
		// Supervisor: child killed mid-service, backoff driven by the
		// virtual clock, restarted incarnation serves, then the whole
		// supervisor custodian is shut down — no leaked threads.
		{"supervisor-restart-kill-backoff.trace", explore.StatusPass},
		// Breaker: permit holder killed mid-hold; the manager counts
		// the abandonment via DoneEvt and the retrying client crosses
		// the cooldown on the virtual clock and recovers the breaker.
		{"breaker-trip-holder-killed.trace", explore.StatusPass},
		// kvtxn locking: the transfer owner's custodian shut down
		// mid-transaction (condemning it) and the mostly-dead thread
		// then collected; the death watch spawns an aborter, the
		// survivor's transfer commits, and the audit shows no wedged
		// locks, parked waiters, or registry entries.
		{"txn-kill-midlock.trace", explore.StatusPass},
		// kvtxn OCC: the same double termination around
		// validate/install; prepare-marks are reclaimed and the sum
		// invariant holds.
		{"txn-kill-validate.trace", explore.StatusPass},
		// wire: a server killed between the batched flushes of a
		// pipelined response stream; the client sees a whole, in-order
		// frame prefix and never a torn byte.
		{"pipeline-kill-midwrite.trace", explore.StatusPass},
		// netsvc drain in miniature: the drain driver killed between
		// handoff steps while the escrow works a queue whose custodian
		// is already down; the reaper finishes the drain and every job
		// is served exactly once, in order.
		{"drain-kill-midhandoff.trace", explore.StatusPass},
		// Fleet-found, auto-shrunk wedge of the deliberately unsafe
		// queue (no custodian protocol): pinned by
		//
		//	go run ./cmd/explore run -scenario queue-unsafe -workers 4 \
		//	  -strategy coverage -findings 1 -pin .../testdata -expect stuck
		//
		// and expected to stay stuck — if a change accidentally makes the
		// unsafe queue survive this schedule, the explorer's canary is
		// broken.
		{"queue-unsafe-04d53c940648a612.trace", explore.StatusStuck},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			tr, err := explore.ReadTraceFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			sc, ok := scenarios.ByName(tr.Scenario)
			if !ok {
				t.Fatalf("trace names unknown scenario %q", tr.Scenario)
			}
			o := explore.Replay(sc, tr, explore.Options{})
			if o.Status != tc.want {
				t.Fatalf("replay: status %v (err=%v), want %v", o.Status, o.Err, tc.want)
			}
			if got := len(o.Trace.Actions); got != len(tr.Actions) {
				t.Fatalf("replay executed %d decisions, recording has %d", got, len(tr.Actions))
			}
		})
	}
}
