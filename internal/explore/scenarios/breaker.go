package scenarios

import (
	"errors"
	"fmt"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(BreakerTrip())
}

// BreakerTrip drives the circuit breaker through its full state cycle
// under fault injection: a failing client trips it, a permit holder may
// be killed mid-call (the manager must observe the abandonment through
// DoneEvt and count it as a failure), and a retrying survivor — whose
// backoff sleeps advance the virtual clock past the cooldown — must
// eventually be granted the half-open probe and succeed. The breaker's
// transitions live in a single manager thread, so no schedule can
// observe a torn state: the survivor finishing is the invariant.
func BreakerTrip() explore.Scenario {
	return explore.Scenario{
		Name: "breaker-trip",
		Desc: "a killed permit holder cannot wedge the breaker; a retrying client recovers it",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var failerErr, survErr error
			var survOK bool
			var brk *supervise.Breaker
			owner := rt.Spawn("owner", func(th *core.Thread) {
				brk = supervise.NewBreaker(th, supervise.BreakerOptions{
					FailureThreshold: 1,
					Cooldown:         50 * time.Millisecond,
				})
				tripped := core.NewChanNamed(rt, "failer-done")
				failer := th.Spawn("failer", func(x *core.Thread) {
					failerErr = brk.Do(x, func(*core.Thread) error { return errors.New("boom") })
					_, _ = core.Sync(x, tripped.SendEvt(nil))
				})
				sim.MustFinish(failer)
				// The holder keeps a permit in flight for a long virtual
				// stretch — if the explorer kills it mid-hold, the manager
				// must observe the abandonment via DoneEvt; if not, the hold
				// ends in success, so every schedule stays live (an immortal
				// parked holder could legitimately monopolize the half-open
				// probe, which is starvation, not a breaker defect).
				holder := th.Spawn("holder", func(x *core.Thread) {
					_ = brk.Do(x, func(x *core.Thread) error {
						_ = core.Sleep(x, 200*time.Millisecond)
						return nil
					})
				})
				sim.Victim(holder)
				surv := th.Spawn("survivor", func(x *core.Thread) {
					// Start only after the failer's call has returned: its
					// failure outcome is then already in the manager's queue,
					// so the trip is processed before any survivor request —
					// the survivor always faces a tripped breaker.
					_, _ = core.Sync(x, tripped.RecvEvt())
					survErr = supervise.Retry(x, supervise.RetryPolicy{
						MaxAttempts: 12,
						BaseDelay:   60 * time.Millisecond, // > cooldown: each retry crosses it
						MaxDelay:    60 * time.Millisecond,
					}, func(int) error {
						return brk.Do(x, func(*core.Thread) error { return nil })
					})
					survOK = survErr == nil
				})
				sim.MustFinish(surv)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				// The failer normally sees its own error; if the killed
				// holder's abandonment tripped the breaker first, it is
				// rejected instead — both prove a trip happened.
				if failerErr == nil || (failerErr.Error() != "boom" && !errors.Is(failerErr, supervise.ErrBreakerOpen)) {
					return fmt.Errorf("failer error = %v, want boom or breaker-open", failerErr)
				}
				if !survOK {
					return fmt.Errorf("survivor never got through the breaker: %v", survErr)
				}
				if brk.Trips() < 1 {
					return fmt.Errorf("breaker never tripped (trips=%d)", brk.Trips())
				}
				return nil
			})
		},
	}
}
