package scenarios

import (
	"fmt"

	"repro/abstractions/queue"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(QueueUnsafe())
	Register(QueueKillSafe())
}

// queueScenario is the paper's motivating example. A creator task under
// custodian A builds a queue, seeds it, and hands it to a survivor task
// under custodian B. The explorer may shut custodian A down at any
// decision point. With the kill-safe queue the survivor always finishes:
// its operations resurrect the suspended manager via thread-resume. With
// the unsafe queue there is a window — after the handoff, before the
// survivor's last operation commits — where the shutdown suspends the
// manager forever and the survivor wedges: StatusStuck.
func queueScenario(name, desc string, unsafe bool) explore.Scenario {
	return explore.Scenario{
		Name: name,
		Desc: desc,
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			custA := core.NewCustodian(rt.RootCustodian())
			custB := core.NewCustodian(rt.RootCustodian())
			hand := core.NewChanNamed(rt, "handoff")
			var handed bool
			var got []int
			var opErr error
			rt.SpawnIn(custA, "creator", func(th *core.Thread) {
				var q *queue.Queue[int]
				if unsafe {
					q = queue.NewUnsafe[int](th)
				} else {
					q = queue.New[int](th)
				}
				if err := q.Send(th, 1); err != nil {
					return
				}
				_, _ = core.Sync(th, hand.SendEvt(q))
			})
			surv := rt.SpawnIn(custB, "survivor", func(th *core.Thread) {
				// If custodian A dies before the handoff the queue never
				// escaped it; there is nothing for the survivor to use, so
				// it finishes trivially. DeadEvt ready implies the creator
				// is suspended, so the two arms are never both available.
				v, err := core.Sync(th, core.Choice(
					hand.RecvEvt(),
					core.Wrap(custA.DeadEvt(), func(core.Value) core.Value { return nil }),
				))
				if err != nil || v == nil {
					return
				}
				handed = true
				q := v.(*queue.Queue[int])
				a, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				if err := q.Send(th, 2); err != nil {
					opErr = err
					return
				}
				b, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				got = []int{a, b}
			})
			sim.MustFinish(surv)
			sim.VictimCustodian(custA)
			sim.RestrictFaults(explore.ActShutdown)
			sim.Check(func() error {
				if !handed {
					return nil // custodian died pre-handoff; vacuous pass
				}
				if opErr != nil {
					return fmt.Errorf("survivor queue op failed: %w", opErr)
				}
				if len(got) != 2 || got[0] != 1 || got[1] != 2 {
					return fmt.Errorf("survivor received %v, want [1 2]", got)
				}
				return nil
			})
		},
	}
}

// QueueUnsafe is the wedge-finder: the explorer should report StatusStuck
// on some schedule within a small seed budget.
func QueueUnsafe() explore.Scenario {
	return queueScenario("queue-unsafe",
		"custodian shutdown wedges a survivor of the non-kill-safe queue", true)
}

// QueueKillSafe is the same world over the kill-safe queue: every
// schedule must pass.
func QueueKillSafe() explore.Scenario {
	return queueScenario("queue",
		"custodian shutdown never wedges a survivor of the kill-safe queue", false)
}
