package scenarios

import (
	"fmt"

	"repro/abstractions/pool"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(Pool())
}

// Pool kills the holder of a capacity-1 resource pool's only token: the
// kill-safe pool reclaims the token via the holder's done event and the
// surviving acquirer must finish under every schedule. The holder parks
// on Never, so the only way the survivor ever acquires is the reclaim
// path — every passing schedule exercises it.
func Pool() explore.Scenario {
	return explore.Scenario{
		Name: "pool",
		Desc: "killing a token holder returns the token to the kill-safe pool",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var acqErr, relErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				p := pool.New(th, 1)
				holder := th.Spawn("holder", func(th *core.Thread) {
					if err := p.Acquire(th); err != nil {
						return
					}
					_, _ = core.Sync(th, core.Never()) // hold until killed
				})
				sim.Victim(holder)
				surv := th.Spawn("survivor", func(th *core.Thread) {
					acqErr = p.Acquire(th)
					if acqErr == nil {
						relErr = p.Release(th)
					}
				})
				sim.MustFinish(surv)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				if acqErr != nil || relErr != nil {
					return fmt.Errorf("survivor pool ops failed: acquire=%v release=%v", acqErr, relErr)
				}
				return nil
			})
		},
	}
}
