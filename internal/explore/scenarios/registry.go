// Package scenarios holds the explore scenarios for the repository's
// kill-safe abstractions. Each scenario builds a small world on a
// deterministic runtime, names the threads that must finish and the
// faults the explorer may inject, and states the invariant that defines
// success. The unsafe variants exist to be broken: the explorer finds the
// schedule in which a custodian shutdown wedges a surviving task, which
// is the paper's motivating failure.
//
// Scenarios self-register at init time: each scenario file carries an
// init function calling Register, so every enumerator — the test suite,
// cmd/explore -scenario, and the fleet's worker processes — sees the
// identical set. A scenario file without a Register call is caught by
// the registry test, not discovered as a silent gap in CI coverage.
package scenarios

import (
	"fmt"
	"sort"

	"repro/internal/explore"
)

var registry = make(map[string]explore.Scenario)

// Register adds a scenario to the registry. It is meant to be called
// from init functions, one per scenario file; a duplicate or unnamed
// registration panics (it is a programming error, and the panic happens
// at init so any test run in the package reports it).
func Register(sc explore.Scenario) {
	if sc.Name == "" {
		panic("scenarios: Register called with an unnamed scenario")
	}
	if sc.Setup == nil {
		panic(fmt.Sprintf("scenarios: Register(%q) with nil Setup", sc.Name))
	}
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("scenarios: duplicate registration of %q", sc.Name))
	}
	registry[sc.Name] = sc
}

// All returns every registered scenario, sorted by name so every
// enumerator — and every fleet worker — walks the same order.
func All() []explore.Scenario {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]explore.Scenario, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// ByName looks a scenario up by name.
func ByName(name string) (explore.Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}
