package scenarios

import (
	"fmt"

	"repro/abstractions/queue"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(DrainKillMidhandoff())
}

// DrainKillMidhandoff models netsvc's shard drain/handoff protocol in
// miniature. An old shard owns a queue of three jobs under its own
// custodian; it serves job 0 itself, hands the queue handle over, and
// retires — the escrow thread (the fleet's migration machinery, which a
// drain never kills) shuts the old shard's custodian down and then moves
// the remaining jobs to the replacement worker's queue, one per drain
// command. Every escrow operation on the old queue runs *after* its
// manager was suspended by the custodian shutdown, so each passing
// schedule exercises the kill-safe resurrect path — the paper's central
// mechanism is what makes the handoff sound. The drain driver issuing
// the commands is the kill victim; a reaper watches its DoneEvt and
// issues whatever commands remain, so a kill between any two handoff
// steps changes who drives, never what moves. The invariant is exact
// conservation with order: the old shard served [0], the replacement
// serves [1 2], under every schedule and kill point.
func DrainKillMidhandoff() explore.Scenario {
	return explore.Scenario{
		Name: "drain-kill-midhandoff",
		Desc: "killing the drain driver mid-handoff neither loses nor duplicates a queued job",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			custA := core.NewCustodian(rt.RootCustodian())
			handA := core.NewChanNamed(rt, "handoff-a")
			handB := core.NewChanNamed(rt, "handoff-b")
			cmd := core.NewChanNamed(rt, "drain-cmd")
			done := core.NewChanNamed(rt, "drain-done")
			var servedA, servedB []int
			var escErr error
			const jobs = 3

			rt.SpawnIn(custA, "shard-a", func(th *core.Thread) {
				qA := queue.New[int](th)
				for i := 0; i < jobs; i++ {
					if err := qA.Send(th, i); err != nil {
						return
					}
				}
				v, err := qA.Recv(th)
				if err != nil {
					return
				}
				servedA = append(servedA, v)
				_, _ = core.Sync(th, handA.SendEvt(qA))
			})

			workerB := rt.Spawn("worker-b", func(th *core.Thread) {
				qB := queue.New[int](th)
				if _, err := core.Sync(th, handB.SendEvt(qB)); err != nil {
					return
				}
				for i := 0; i < jobs-1; i++ {
					v, err := qB.Recv(th)
					if err != nil {
						return
					}
					servedB = append(servedB, v)
				}
			})
			sim.MustFinish(workerB)

			escrow := rt.Spawn("escrow", func(x *core.Thread) {
				vA, err := core.Sync(x, handA.RecvEvt())
				if err != nil {
					return
				}
				qA := vA.(*queue.Queue[int])
				vB, err := core.Sync(x, handB.RecvEvt())
				if err != nil {
					return
				}
				qB := vB.(*queue.Queue[int])
				// The old shard has handed over: retire it. Everything the
				// escrow does with qA from here on goes through a manager
				// this shutdown just suspended.
				custA.Shutdown()
				for moved := 0; moved < jobs-1; moved++ {
					for {
						if _, err := core.Sync(x, cmd.RecvEvt()); err == nil {
							break
						}
					}
					j, err := qA.Recv(x)
					if err != nil {
						escErr = err
						return
					}
					if err := qB.Send(x, j); err != nil {
						escErr = err
						return
					}
				}
				for {
					if _, err := core.Sync(x, done.SendEvt(nil)); err == nil {
						return
					}
				}
			})
			sim.MustFinish(escrow)

			drainer := rt.Spawn("drainer", func(x *core.Thread) {
				for i := 0; i < jobs-1; i++ {
					for {
						if _, err := core.Sync(x, cmd.SendEvt(nil)); err == nil {
							break
						}
					}
				}
			})
			sim.Victim(drainer)

			reaper := rt.Spawn("drain-reaper", func(x *core.Thread) {
				for {
					if _, err := core.Sync(x, drainer.DoneEvt()); err == nil {
						break
					}
				}
				// Issue whatever commands the drainer did not get to; once
				// the escrow stops accepting commands, only the done arm
				// can commit.
				for {
					v, err := core.Sync(x, core.Choice(
						core.Wrap(cmd.SendEvt(nil), func(core.Value) core.Value { return "sent" }),
						core.Wrap(done.RecvEvt(), func(core.Value) core.Value { return "done" }),
					))
					if err != nil {
						continue
					}
					if v == "done" {
						return
					}
				}
			})
			sim.MustFinish(reaper)

			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				if escErr != nil {
					return fmt.Errorf("escrow queue op failed after custodian shutdown: %w", escErr)
				}
				if len(servedA) != 1 || servedA[0] != 0 {
					return fmt.Errorf("old shard served %v, want [0]", servedA)
				}
				if len(servedB) != 2 || servedB[0] != 1 || servedB[1] != 2 {
					return fmt.Errorf("replacement served %v, want [1 2]: a handoff step lost or reordered a job", servedB)
				}
				return nil
			})
		},
	}
}
