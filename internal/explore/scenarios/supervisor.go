package scenarios

import (
	"fmt"
	"sync"
	"time"

	"repro/abstractions/supervise"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(SupervisorRestart())
}

// SupervisorRestart runs a counter service under a supervisor and lets
// the explorer kill the first incarnation at any decision point —
// including mid-backoff — and shut the supervisor's custodian down. The
// client must always finish: either it collects two values (served
// across a restart if a kill landed) or it observes the supervisor's
// DeadEvt and bails. Values may repeat across a restart (a kill between
// a rendezvous commit and the sender's wrap loses the sender-side
// increment) but must never regress. The leak invariant is the
// acceptance criterion: once an incarnation's custodian is dead, the
// incarnation is done or condemned (no live custodian keeps it
// schedulable), and the dead custodian's accounting has drained.
func SupervisorRestart() explore.Scenario {
	return explore.Scenario{
		Name: "supervisor-restart",
		Desc: "kills and custodian shutdowns never wedge a supervised service's client",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var mu sync.Mutex // incarnation bookkeeping, written under grants
			var incThreads []*core.Thread
			var incCusts []*core.Custodian
			var got []int
			var supDead bool
			var sup *supervise.Supervisor
			owner := rt.Spawn("owner", func(th *core.Thread) {
				sup = supervise.New(th, supervise.Options{
					MaxRestarts: -1, // never escalate: restarts are the point
					Window:      time.Hour,
					BaseBackoff: 10 * time.Millisecond,
					MaxBackoff:  40 * time.Millisecond,
				})
				sim.VictimCustodian(sup.Custodian())
				echo := core.NewChanNamed(rt, "echo")
				next := 0 // service state carried across incarnations
				sup.Start(th, supervise.ChildSpec{Name: "counter", Policy: supervise.Permanent, Start: func(x *core.Thread) {
					mu.Lock()
					incThreads = append(incThreads, x)
					incCusts = append(incCusts, x.CurrentCustodian())
					first := len(incThreads) == 1
					mu.Unlock()
					if first {
						// Only the first incarnation is a kill target; its
						// replacements must be allowed to serve.
						sim.Victim(x)
					}
					for {
						_, _ = core.Sync(x, core.Wrap(echo.SendEvt(next), func(core.Value) core.Value {
							next++
							return nil
						}))
					}
				}})
				client := th.Spawn("client", func(x *core.Thread) {
					for len(got) < 2 {
						v, err := core.Sync(x, core.Choice(
							echo.RecvEvt(),
							core.Wrap(sup.DeadEvt(), func(core.Value) core.Value { return nil }),
						))
						if err != nil {
							continue
						}
						if v == nil {
							supDead = true
							return
						}
						got = append(got, v.(int))
					}
				})
				sim.MustFinish(client)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill, explore.ActShutdown)
			sim.Check(func() error {
				mu.Lock()
				ths := append([]*core.Thread(nil), incThreads...)
				ccs := append([]*core.Custodian(nil), incCusts...)
				mu.Unlock()
				for i := range ths {
					if !ccs[i].Dead() {
						continue // the live current incarnation
					}
					if n := ccs[i].ManagedThreads(); n != 0 {
						return fmt.Errorf("incarnation %d: dead custodian still manages %d threads", i, n)
					}
					if !ths[i].Done() && len(ths[i].Custodians()) > 0 {
						return fmt.Errorf("incarnation %d leaked: custodian dead but thread still owned", i)
					}
				}
				if supDead {
					return nil // client legitimately bailed on supervisor death
				}
				if len(got) != 2 {
					return fmt.Errorf("client got %v, want two values", got)
				}
				if got[1] < got[0] {
					return fmt.Errorf("service state regressed across restart: %v", got)
				}
				return nil
			})
		},
	}
}
