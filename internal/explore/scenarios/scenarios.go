// Package scenarios holds the explore scenarios for the repository's
// kill-safe abstractions. Each scenario builds a small world on a
// deterministic runtime, names the threads that must finish and the
// faults the explorer may inject, and states the invariant that defines
// success. The unsafe variants exist to be broken: the explorer finds the
// schedule in which a custodian shutdown wedges a surviving task, which
// is the paper's motivating failure.
package scenarios

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/abstractions/kvtxn"
	"repro/abstractions/msgqueue"
	"repro/abstractions/pipe"
	"repro/abstractions/pool"
	"repro/abstractions/queue"
	"repro/abstractions/supervise"
	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/web"
	"repro/internal/wire"
)

// All returns every registered scenario, in a fixed order.
func All() []explore.Scenario {
	return []explore.Scenario{
		QueueUnsafe(),
		QueueKillSafe(),
		MsgQueueRemotePred(),
		MsgQueueFIFO(),
		SwapChan(),
		Pool(),
		SupervisorRestart(),
		BreakerTrip(),
		TxnKillMidlock(),
		TxnKillValidate(),
		PipelineKillMidwrite(),
		DrainKillMidhandoff(),
	}
}

// ByName looks a scenario up by name.
func ByName(name string) (explore.Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return explore.Scenario{}, false
}

// queueScenario is the paper's motivating example. A creator task under
// custodian A builds a queue, seeds it, and hands it to a survivor task
// under custodian B. The explorer may shut custodian A down at any
// decision point. With the kill-safe queue the survivor always finishes:
// its operations resurrect the suspended manager via thread-resume. With
// the unsafe queue there is a window — after the handoff, before the
// survivor's last operation commits — where the shutdown suspends the
// manager forever and the survivor wedges: StatusStuck.
func queueScenario(name, desc string, unsafe bool) explore.Scenario {
	return explore.Scenario{
		Name: name,
		Desc: desc,
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			custA := core.NewCustodian(rt.RootCustodian())
			custB := core.NewCustodian(rt.RootCustodian())
			hand := core.NewChanNamed(rt, "handoff")
			var handed bool
			var got []int
			var opErr error
			rt.SpawnIn(custA, "creator", func(th *core.Thread) {
				var q *queue.Queue[int]
				if unsafe {
					q = queue.NewUnsafe[int](th)
				} else {
					q = queue.New[int](th)
				}
				if err := q.Send(th, 1); err != nil {
					return
				}
				_, _ = core.Sync(th, hand.SendEvt(q))
			})
			surv := rt.SpawnIn(custB, "survivor", func(th *core.Thread) {
				// If custodian A dies before the handoff the queue never
				// escaped it; there is nothing for the survivor to use, so
				// it finishes trivially. DeadEvt ready implies the creator
				// is suspended, so the two arms are never both available.
				v, err := core.Sync(th, core.Choice(
					hand.RecvEvt(),
					core.Wrap(custA.DeadEvt(), func(core.Value) core.Value { return nil }),
				))
				if err != nil || v == nil {
					return
				}
				handed = true
				q := v.(*queue.Queue[int])
				a, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				if err := q.Send(th, 2); err != nil {
					opErr = err
					return
				}
				b, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				got = []int{a, b}
			})
			sim.MustFinish(surv)
			sim.VictimCustodian(custA)
			sim.RestrictFaults(explore.ActShutdown)
			sim.Check(func() error {
				if !handed {
					return nil // custodian died pre-handoff; vacuous pass
				}
				if opErr != nil {
					return fmt.Errorf("survivor queue op failed: %w", opErr)
				}
				if len(got) != 2 || got[0] != 1 || got[1] != 2 {
					return fmt.Errorf("survivor received %v, want [1 2]", got)
				}
				return nil
			})
		},
	}
}

// QueueUnsafe is the wedge-finder: the explorer should report StatusStuck
// on some schedule within a small seed budget.
func QueueUnsafe() explore.Scenario {
	return queueScenario("queue-unsafe",
		"custodian shutdown wedges a survivor of the non-kill-safe queue", true)
}

// QueueKillSafe is the same world over the kill-safe queue: every
// schedule must pass.
func QueueKillSafe() explore.Scenario {
	return queueScenario("queue",
		"custodian shutdown never wedges a survivor of the kill-safe queue", false)
}

// MsgQueueRemotePred exercises remote predicate evaluation (DESIGN.md
// finding #2): predicates run in fresh threads under the client's
// custodian, and the reply must join the same sync as the request or the
// manager self-deadlocks. A pure scheduling scenario — no faults — whose
// recorded trace pins the regression.
func MsgQueueRemotePred() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-remote-pred",
		Desc: "remote predicates answer without wedging the manager",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var got int
			var gotErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
				cons := th.Spawn("consumer", func(th *core.Thread) {
					v, err := q.Recv(th, func(v int) bool { return v >= 2 })
					got, gotErr = v, err
				})
				sim.MustFinish(cons)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if gotErr != nil {
					return fmt.Errorf("consumer recv failed: %w", gotErr)
				}
				if got != 2 {
					return fmt.Errorf("consumer received %d, want 2 (first value matching v>=2)", got)
				}
				return nil
			})
		},
	}
}

// MsgQueueFIFO exercises selective dequeue ordering (DESIGN.md finding
// #4): a receiver removing a middle element must not let another
// receiver's scan skip untested items (high-water mark, not index). With
// values 1,2,3 queued, the even-receiver must get 2 and the odd-receiver
// must get 1 then 3, in FIFO order, under every schedule.
func MsgQueueFIFO() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-fifo",
		Desc: "selective dequeue preserves FIFO for non-matching receivers",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var even int
			var odd []int
			var evenErr, oddErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.New[int](th)
				x := th.Spawn("even-receiver", func(th *core.Thread) {
					even, evenErr = q.Recv(th, func(v int) bool { return v%2 == 0 })
				})
				sim.MustFinish(x)
				y := th.Spawn("odd-receiver", func(th *core.Thread) {
					for i := 0; i < 2; i++ {
						v, err := q.Recv(th, func(v int) bool { return v%2 == 1 })
						if err != nil {
							oddErr = err
							return
						}
						odd = append(odd, v)
					}
				})
				sim.MustFinish(y)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if evenErr != nil || oddErr != nil {
					return fmt.Errorf("recv failed: even=%v odd=%v", evenErr, oddErr)
				}
				if even != 2 {
					return fmt.Errorf("even receiver got %d, want 2", even)
				}
				if len(odd) != 2 || odd[0] != 1 || odd[1] != 3 {
					return fmt.Errorf("odd receiver got %v, want [1 3] (FIFO)", odd)
				}
				return nil
			})
		},
	}
}

// SwapChan kills one of two service swappers on the kill-safe swap
// channel: the two client swaps must still finish under every schedule,
// even when the victim dies mid-rendezvous (the manager completes the
// committed exchange on the victim's behalf). One kill at most — with
// both service swappers dead a client can legitimately wait forever for
// a partner, which is starvation, not a kill-safety violation.
func SwapChan() explore.Scenario {
	return explore.Scenario{
		Name: "swapchan",
		Desc: "killing a swapper mid-rendezvous never wedges the kill-safe swap channel",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var errA, errB error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				s := swapchan.NewKillSafe[int](th)
				for i := 0; i < 2; i++ {
					v := th.Spawn(fmt.Sprintf("service-%d", i), func(th *core.Thread) {
						for {
							if _, err := s.Swap(th, 100); err != nil {
								return
							}
						}
					})
					sim.Victim(v)
				}
				a := th.Spawn("client-a", func(th *core.Thread) {
					_, errA = s.Swap(th, 1)
				})
				sim.MustFinish(a)
				b := th.Spawn("client-b", func(th *core.Thread) {
					_, errB = s.Swap(th, 2)
				})
				sim.MustFinish(b)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				if errA != nil || errB != nil {
					return fmt.Errorf("client swap failed: a=%v b=%v", errA, errB)
				}
				return nil
			})
		},
	}
}

// SupervisorRestart runs a counter service under a supervisor and lets
// the explorer kill the first incarnation at any decision point —
// including mid-backoff — and shut the supervisor's custodian down. The
// client must always finish: either it collects two values (served
// across a restart if a kill landed) or it observes the supervisor's
// DeadEvt and bails. Values may repeat across a restart (a kill between
// a rendezvous commit and the sender's wrap loses the sender-side
// increment) but must never regress. The leak invariant is the
// acceptance criterion: once an incarnation's custodian is dead, the
// incarnation is done or condemned (no live custodian keeps it
// schedulable), and the dead custodian's accounting has drained.
func SupervisorRestart() explore.Scenario {
	return explore.Scenario{
		Name: "supervisor-restart",
		Desc: "kills and custodian shutdowns never wedge a supervised service's client",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var mu sync.Mutex // incarnation bookkeeping, written under grants
			var incThreads []*core.Thread
			var incCusts []*core.Custodian
			var got []int
			var supDead bool
			var sup *supervise.Supervisor
			owner := rt.Spawn("owner", func(th *core.Thread) {
				sup = supervise.New(th, supervise.Options{
					MaxRestarts: -1, // never escalate: restarts are the point
					Window:      time.Hour,
					BaseBackoff: 10 * time.Millisecond,
					MaxBackoff:  40 * time.Millisecond,
				})
				sim.VictimCustodian(sup.Custodian())
				echo := core.NewChanNamed(rt, "echo")
				next := 0 // service state carried across incarnations
				sup.Start(th, supervise.ChildSpec{Name: "counter", Policy: supervise.Permanent, Start: func(x *core.Thread) {
					mu.Lock()
					incThreads = append(incThreads, x)
					incCusts = append(incCusts, x.CurrentCustodian())
					first := len(incThreads) == 1
					mu.Unlock()
					if first {
						// Only the first incarnation is a kill target; its
						// replacements must be allowed to serve.
						sim.Victim(x)
					}
					for {
						_, _ = core.Sync(x, core.Wrap(echo.SendEvt(next), func(core.Value) core.Value {
							next++
							return nil
						}))
					}
				}})
				client := th.Spawn("client", func(x *core.Thread) {
					for len(got) < 2 {
						v, err := core.Sync(x, core.Choice(
							echo.RecvEvt(),
							core.Wrap(sup.DeadEvt(), func(core.Value) core.Value { return nil }),
						))
						if err != nil {
							continue
						}
						if v == nil {
							supDead = true
							return
						}
						got = append(got, v.(int))
					}
				})
				sim.MustFinish(client)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill, explore.ActShutdown)
			sim.Check(func() error {
				mu.Lock()
				ths := append([]*core.Thread(nil), incThreads...)
				ccs := append([]*core.Custodian(nil), incCusts...)
				mu.Unlock()
				for i := range ths {
					if !ccs[i].Dead() {
						continue // the live current incarnation
					}
					if n := ccs[i].ManagedThreads(); n != 0 {
						return fmt.Errorf("incarnation %d: dead custodian still manages %d threads", i, n)
					}
					if !ths[i].Done() && len(ths[i].Custodians()) > 0 {
						return fmt.Errorf("incarnation %d leaked: custodian dead but thread still owned", i)
					}
				}
				if supDead {
					return nil // client legitimately bailed on supervisor death
				}
				if len(got) != 2 {
					return fmt.Errorf("client got %v, want two values", got)
				}
				if got[1] < got[0] {
					return fmt.Errorf("service state regressed across restart: %v", got)
				}
				return nil
			})
		},
	}
}

// BreakerTrip drives the circuit breaker through its full state cycle
// under fault injection: a failing client trips it, a permit holder may
// be killed mid-call (the manager must observe the abandonment through
// DoneEvt and count it as a failure), and a retrying survivor — whose
// backoff sleeps advance the virtual clock past the cooldown — must
// eventually be granted the half-open probe and succeed. The breaker's
// transitions live in a single manager thread, so no schedule can
// observe a torn state: the survivor finishing is the invariant.
func BreakerTrip() explore.Scenario {
	return explore.Scenario{
		Name: "breaker-trip",
		Desc: "a killed permit holder cannot wedge the breaker; a retrying client recovers it",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var failerErr, survErr error
			var survOK bool
			var brk *supervise.Breaker
			owner := rt.Spawn("owner", func(th *core.Thread) {
				brk = supervise.NewBreaker(th, supervise.BreakerOptions{
					FailureThreshold: 1,
					Cooldown:         50 * time.Millisecond,
				})
				tripped := core.NewChanNamed(rt, "failer-done")
				failer := th.Spawn("failer", func(x *core.Thread) {
					failerErr = brk.Do(x, func(*core.Thread) error { return errors.New("boom") })
					_, _ = core.Sync(x, tripped.SendEvt(nil))
				})
				sim.MustFinish(failer)
				// The holder keeps a permit in flight for a long virtual
				// stretch — if the explorer kills it mid-hold, the manager
				// must observe the abandonment via DoneEvt; if not, the hold
				// ends in success, so every schedule stays live (an immortal
				// parked holder could legitimately monopolize the half-open
				// probe, which is starvation, not a breaker defect).
				holder := th.Spawn("holder", func(x *core.Thread) {
					_ = brk.Do(x, func(x *core.Thread) error {
						_ = core.Sleep(x, 200*time.Millisecond)
						return nil
					})
				})
				sim.Victim(holder)
				surv := th.Spawn("survivor", func(x *core.Thread) {
					// Start only after the failer's call has returned: its
					// failure outcome is then already in the manager's queue,
					// so the trip is processed before any survivor request —
					// the survivor always faces a tripped breaker.
					_, _ = core.Sync(x, tripped.RecvEvt())
					survErr = supervise.Retry(x, supervise.RetryPolicy{
						MaxAttempts: 12,
						BaseDelay:   60 * time.Millisecond, // > cooldown: each retry crosses it
						MaxDelay:    60 * time.Millisecond,
					}, func(int) error {
						return brk.Do(x, func(*core.Thread) error { return nil })
					})
					survOK = survErr == nil
				})
				sim.MustFinish(surv)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				// The failer normally sees its own error; if the killed
				// holder's abandonment tripped the breaker first, it is
				// rejected instead — both prove a trip happened.
				if failerErr == nil || (failerErr.Error() != "boom" && !errors.Is(failerErr, supervise.ErrBreakerOpen)) {
					return fmt.Errorf("failer error = %v, want boom or breaker-open", failerErr)
				}
				if !survOK {
					return fmt.Errorf("survivor never got through the breaker: %v", survErr)
				}
				if brk.Trips() < 1 {
					return fmt.Errorf("breaker never tripped (trips=%d)", brk.Trips())
				}
				return nil
			})
		},
	}
}

// Pool kills the holder of a capacity-1 resource pool's only token: the
// kill-safe pool reclaims the token via the holder's done event and the
// surviving acquirer must finish under every schedule. The holder parks
// on Never, so the only way the survivor ever acquires is the reclaim
// path — every passing schedule exercises it.
func Pool() explore.Scenario {
	return explore.Scenario{
		Name: "pool",
		Desc: "killing a token holder returns the token to the kill-safe pool",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var acqErr, relErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				p := pool.New(th, 1)
				holder := th.Spawn("holder", func(th *core.Thread) {
					if err := p.Acquire(th); err != nil {
						return
					}
					_, _ = core.Sync(th, core.Never()) // hold until killed
				})
				sim.Victim(holder)
				surv := th.Spawn("survivor", func(th *core.Thread) {
					acqErr = p.Acquire(th)
					if acqErr == nil {
						relErr = p.Release(th)
					}
				})
				sim.MustFinish(surv)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				if acqErr != nil || relErr != nil {
					return fmt.Errorf("survivor pool ops failed: acquire=%v release=%v", acqErr, relErr)
				}
				return nil
			})
		},
	}
}

// crossShardKeys probes deterministic key names until it has two owned by
// shard 0 and two by shard 1, returned alternating [s0, s1, s0, s1] — the
// raw material for deliberately cross-shard transactions.
func crossShardKeys(s *kvtxn.Store) [4]string {
	var byShard [2][]string
	for i := 0; len(byShard[0]) < 2 || len(byShard[1]) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if sh := s.ShardOf(k); sh < 2 && len(byShard[sh]) < 2 {
			byShard[sh] = append(byShard[sh], k)
		}
	}
	return [4]string{byShard[0][0], byShard[1][0], byShard[0][1], byShard[1][1]}
}

// transfer moves amount from src to dst inside tx and commits, returning
// true on commit and false on a clean conflict (the caller aborts and may
// retry). Any other error also returns false with the error.
func transfer(x *core.Thread, tx *kvtxn.Txn, src, dst string, amount int) (bool, error) {
	readInt := func(key string) (int, error) {
		v, found, err := tx.Get(x, key)
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, fmt.Errorf("key %s missing", key)
		}
		return strconv.Atoi(v)
	}
	sv, err := readInt(src)
	if err != nil {
		return false, err
	}
	dv, err := readInt(dst)
	if err != nil {
		return false, err
	}
	_ = tx.Put(src, strconv.Itoa(sv-amount))
	_ = tx.Put(dst, strconv.Itoa(dv+amount))
	switch err := tx.Commit(x); err {
	case nil:
		return true, nil
	case kvtxn.ErrConflict:
		return false, nil
	default:
		return false, err
	}
}

// txnScenario is the shared shape of the two transactional-store
// scenarios: a victim transaction the explorer may kill at any decision
// point, a surviving transaction that must still commit, and a checker
// that waits for both, audits the store to quiescence, and reads back the
// invariant sum. The world is sum-preserving (every transaction is a
// transfer), so any half-commit or wedged lock is visible as a wrong sum
// or a dirty audit.
func txnScenario(name, desc string, strat kvtxn.Strategy) explore.Scenario {
	return explore.Scenario{
		Name: name,
		Desc: desc,
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var mu sync.Mutex
			var audited bool
			var finalSum int
			var checkerErr error

			rt.Spawn("txn-init", func(th *core.Thread) {
				s := kvtxn.NewWith(th, kvtxn.Options{
					Strategy: strat,
					Shards:   2,
					LockWait: 20 * time.Millisecond,
				})
				keys := crossShardKeys(s)
				for _, k := range keys {
					// The explorer may advance the virtual clock at whim,
					// firing the autocommit lock-wait timeout before the
					// uncontended grant; a conflict here is scheduling
					// noise, not state, so retry it.
					for {
						err := s.Put(th, k, "100")
						if err == nil {
							break
						}
						if err != kvtxn.ErrConflict {
							return
						}
					}
				}

				// The victim transfers across shards: under Locking it is
				// killable while holding one shard's lock and waiting for
				// the other's; under OCC while its commit is mid-validation
				// in the prepare round.
				victim := th.Spawn("txn-victim", func(x *core.Thread) {
					tx, err := s.Begin(x)
					if err != nil {
						return
					}
					if ok, _ := transfer(x, tx, keys[0], keys[1], 30); !ok {
						_ = tx.Abort(x)
					}
				})
				sim.Victim(victim)

				// The survivor works the same keys in the opposite order —
				// guaranteeing lock and validation interplay. It must
				// always *finish* (wedge-freedom is the claim under test);
				// whether a given adversarial schedule lets it commit is
				// the chaos test's liveness claim, not this one.
				survivor := th.Spawn("txn-survivor", func(x *core.Thread) {
					for i := 0; i < 50; i++ {
						tx, err := s.Begin(x)
						if err != nil {
							return
						}
						ok, err := transfer(x, tx, keys[1], keys[2], 10)
						if ok {
							return
						}
						_ = tx.Abort(x)
						if err != nil {
							return
						}
					}
				})
				sim.MustFinish(survivor)

				checker := th.Spawn("txn-checker", func(x *core.Thread) {
					fail := func(err error) {
						mu.Lock()
						checkerErr = err
						mu.Unlock()
					}
					if _, err := core.Sync(x, victim.DoneEvt()); err != nil {
						fail(err)
						return
					}
					if _, err := core.Sync(x, survivor.DoneEvt()); err != nil {
						fail(err)
						return
					}
					for i := 0; i < 500; i++ {
						a, err := s.Audit(x)
						if err != nil {
							fail(err)
							return
						}
						if a == (kvtxn.Integrity{}) {
							mu.Lock()
							audited = true
							mu.Unlock()
							break
						}
						if core.Sleep(x, time.Millisecond) != nil {
							return
						}
					}
					sum := 0
					for _, k := range keys {
						v, found, err := s.Get(x, k)
						if err != nil || !found {
							fail(fmt.Errorf("read %s after quiesce: found=%v err=%v", k, found, err))
							return
						}
						n, err := strconv.Atoi(v)
						if err != nil {
							fail(err)
							return
						}
						sum += n
					}
					mu.Lock()
					finalSum = sum
					mu.Unlock()
				})
				sim.MustFinish(checker)
			})
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				mu.Lock()
				defer mu.Unlock()
				if checkerErr != nil {
					return fmt.Errorf("checker: %w", checkerErr)
				}
				if !audited {
					return errors.New("store never quiesced: wedged lock, waiter, prepare, or live txn")
				}
				if finalSum != 400 {
					return fmt.Errorf("sum = %d, want 400: a kill half-committed or lost a transfer", finalSum)
				}
				return nil
			})
		},
	}
}

// TxnKillMidlock kills a locking-strategy transaction client at arbitrary
// points — including between lock acquisition and commit hand-off. The
// nack guarantee unwinds waiting acquires, the death watch releases held
// locks, and the finisher protocol makes the commit itself all-or-
// nothing; the surviving client must always get through.
func TxnKillMidlock() explore.Scenario {
	return txnScenario(
		"txn-kill-midlock",
		"killing a locking txn between lock-acquire and commit wedges no lock and leaks no half-commit",
		kvtxn.Locking,
	)
}

// PipelineKillMidwrite models the wire layer's torn-frame claim in
// miniature: a server parses three pipelined HTTP/1.1 requests with the
// wire codec and answers them in two batched flushes ([r0,r1] then
// [r2]), each flush one atomic pipe write — exactly the netsvc contract,
// where complete frames accumulate in a batch buffer and reach the write
// pump whole. The explorer kills the server at any decision point; a
// reaper closes the server's outgoing stream on its death (mirroring
// netsvc's connection custodian). The client must always read to EOF and
// must observe a whole, in-order prefix of the response stream at flush
// granularity — 0, 2, or 3 complete frames and never a trailing partial
// byte.
func PipelineKillMidwrite() explore.Scenario {
	return explore.Scenario{
		Name: "pipeline-kill-midwrite",
		Desc: "killing a server mid-pipeline never leaves a torn response frame",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var received []byte
			var readErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				cli, srv := pipe.NewConnPair(th)
				server := th.Spawn("wire-server", func(x *core.Thread) {
					codec := wire.NewHTTP()
					r := srv.Reader(x)
					var buf, batch []byte
					served := 0
					chunk := make([]byte, 256)
					for served < 3 {
						f, rest, err := codec.Parse(buf)
						if err != nil {
							return
						}
						buf = rest
						if f == nil {
							n, err := r.Read(chunk)
							if err != nil {
								return
							}
							buf = append(buf, chunk[:n]...)
							continue
						}
						resp := web.Response{Status: 200, Body: "hello " + strconv.Itoa(served) + "\n"}
						batch = codec.AppendResponse(batch, f, resp, false)
						served++
						if served == 2 || served == 3 {
							if _, err := srv.Write(x, batch); err != nil {
								return
							}
							batch = nil
						}
					}
					_ = srv.Close(x)
				})
				sim.Victim(server)
				reaper := th.Spawn("conn-reaper", func(x *core.Thread) {
					if _, err := core.Sync(x, server.DoneEvt()); err != nil {
						return
					}
					_ = srv.Close(x)
				})
				sim.MustFinish(reaper)
				client := th.Spawn("wire-client", func(x *core.Thread) {
					var req bytes.Buffer
					for i := 0; i < 3; i++ {
						fmt.Fprintf(&req, "GET /hello?i=%d HTTP/1.1\r\n\r\n", i)
					}
					if _, err := cli.Write(x, req.Bytes()); err != nil {
						return
					}
					received, readErr = io.ReadAll(cli.Reader(x))
				})
				sim.MustFinish(client)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				if readErr != nil {
					return fmt.Errorf("client read failed: %w", readErr)
				}
				bodies, leftover, err := parseHTTPResponses(received)
				if err != nil {
					return err
				}
				if leftover != 0 {
					return fmt.Errorf("torn frame: %d trailing bytes after %d complete frames", leftover, len(bodies))
				}
				if n := len(bodies); n != 0 && n != 2 && n != 3 {
					return fmt.Errorf("got %d complete frames, want 0, 2, or 3 (flush batch granularity)", n)
				}
				for i, b := range bodies {
					if want := fmt.Sprintf("hello %d\n", i); b != want {
						return fmt.Errorf("frame %d body %q, want %q", i, b, want)
					}
				}
				return nil
			})
		},
	}
}

// parseHTTPResponses greedily parses complete HTTP response frames from
// data, returning the bodies in order and the count of leftover bytes
// that do not form a complete frame (0 means the stream ended exactly on
// a frame boundary). A malformed head is an error — torn writes truncate,
// they never corrupt.
func parseHTTPResponses(data []byte) (bodies []string, leftover int, err error) {
	for len(data) > 0 {
		i := bytes.Index(data, []byte("\r\n\r\n"))
		if i < 0 {
			return bodies, len(data), nil
		}
		head := string(data[:i])
		lines := strings.Split(head, "\r\n")
		if !strings.HasPrefix(lines[0], "HTTP/1.1 200 ") {
			return nil, 0, fmt.Errorf("bad status line %q", lines[0])
		}
		contentLn := -1
		for _, ln := range lines[1:] {
			if k, v, ok := strings.Cut(ln, ":"); ok && strings.EqualFold(k, "Content-Length") {
				contentLn, err = strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return nil, 0, err
				}
			}
		}
		if contentLn < 0 {
			return nil, 0, fmt.Errorf("frame without Content-Length: %q", head)
		}
		rest := data[i+4:]
		if len(rest) < contentLn {
			return bodies, len(data), nil
		}
		bodies = append(bodies, string(rest[:contentLn]))
		data = rest[contentLn:]
	}
	return bodies, 0, nil
}

// DrainKillMidhandoff models netsvc's shard drain/handoff protocol in
// miniature. An old shard owns a queue of three jobs under its own
// custodian; it serves job 0 itself, hands the queue handle over, and
// retires — the escrow thread (the fleet's migration machinery, which a
// drain never kills) shuts the old shard's custodian down and then moves
// the remaining jobs to the replacement worker's queue, one per drain
// command. Every escrow operation on the old queue runs *after* its
// manager was suspended by the custodian shutdown, so each passing
// schedule exercises the kill-safe resurrect path — the paper's central
// mechanism is what makes the handoff sound. The drain driver issuing
// the commands is the kill victim; a reaper watches its DoneEvt and
// issues whatever commands remain, so a kill between any two handoff
// steps changes who drives, never what moves. The invariant is exact
// conservation with order: the old shard served [0], the replacement
// serves [1 2], under every schedule and kill point.
func DrainKillMidhandoff() explore.Scenario {
	return explore.Scenario{
		Name: "drain-kill-midhandoff",
		Desc: "killing the drain driver mid-handoff neither loses nor duplicates a queued job",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			custA := core.NewCustodian(rt.RootCustodian())
			handA := core.NewChanNamed(rt, "handoff-a")
			handB := core.NewChanNamed(rt, "handoff-b")
			cmd := core.NewChanNamed(rt, "drain-cmd")
			done := core.NewChanNamed(rt, "drain-done")
			var servedA, servedB []int
			var escErr error
			const jobs = 3

			rt.SpawnIn(custA, "shard-a", func(th *core.Thread) {
				qA := queue.New[int](th)
				for i := 0; i < jobs; i++ {
					if err := qA.Send(th, i); err != nil {
						return
					}
				}
				v, err := qA.Recv(th)
				if err != nil {
					return
				}
				servedA = append(servedA, v)
				_, _ = core.Sync(th, handA.SendEvt(qA))
			})

			workerB := rt.Spawn("worker-b", func(th *core.Thread) {
				qB := queue.New[int](th)
				if _, err := core.Sync(th, handB.SendEvt(qB)); err != nil {
					return
				}
				for i := 0; i < jobs-1; i++ {
					v, err := qB.Recv(th)
					if err != nil {
						return
					}
					servedB = append(servedB, v)
				}
			})
			sim.MustFinish(workerB)

			escrow := rt.Spawn("escrow", func(x *core.Thread) {
				vA, err := core.Sync(x, handA.RecvEvt())
				if err != nil {
					return
				}
				qA := vA.(*queue.Queue[int])
				vB, err := core.Sync(x, handB.RecvEvt())
				if err != nil {
					return
				}
				qB := vB.(*queue.Queue[int])
				// The old shard has handed over: retire it. Everything the
				// escrow does with qA from here on goes through a manager
				// this shutdown just suspended.
				custA.Shutdown()
				for moved := 0; moved < jobs-1; moved++ {
					for {
						if _, err := core.Sync(x, cmd.RecvEvt()); err == nil {
							break
						}
					}
					j, err := qA.Recv(x)
					if err != nil {
						escErr = err
						return
					}
					if err := qB.Send(x, j); err != nil {
						escErr = err
						return
					}
				}
				for {
					if _, err := core.Sync(x, done.SendEvt(nil)); err == nil {
						return
					}
				}
			})
			sim.MustFinish(escrow)

			drainer := rt.Spawn("drainer", func(x *core.Thread) {
				for i := 0; i < jobs-1; i++ {
					for {
						if _, err := core.Sync(x, cmd.SendEvt(nil)); err == nil {
							break
						}
					}
				}
			})
			sim.Victim(drainer)

			reaper := rt.Spawn("drain-reaper", func(x *core.Thread) {
				for {
					if _, err := core.Sync(x, drainer.DoneEvt()); err == nil {
						break
					}
				}
				// Issue whatever commands the drainer did not get to; once
				// the escrow stops accepting commands, only the done arm
				// can commit.
				for {
					v, err := core.Sync(x, core.Choice(
						core.Wrap(cmd.SendEvt(nil), func(core.Value) core.Value { return "sent" }),
						core.Wrap(done.RecvEvt(), func(core.Value) core.Value { return "done" }),
					))
					if err != nil {
						continue
					}
					if v == "done" {
						return
					}
				}
			})
			sim.MustFinish(reaper)

			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				if escErr != nil {
					return fmt.Errorf("escrow queue op failed after custodian shutdown: %w", escErr)
				}
				if len(servedA) != 1 || servedA[0] != 0 {
					return fmt.Errorf("old shard served %v, want [0]", servedA)
				}
				if len(servedB) != 2 || servedB[0] != 1 || servedB[1] != 2 {
					return fmt.Errorf("replacement served %v, want [1 2]: a handoff step lost or reordered a job", servedB)
				}
				return nil
			})
		},
	}
}

// TxnKillValidate kills an OCC transaction client at arbitrary points —
// including while its cross-shard commit is mid-validation in the
// prepare round. Prepare-marks and the store-owned finisher make the
// install opaque and kill-atomic.
func TxnKillValidate() explore.Scenario {
	return txnScenario(
		"txn-kill-validate",
		"killing an OCC txn during validate-then-install leaves no prepare-marks and no half-commit",
		kvtxn.OCC,
	)
}
